// Package repro is a Go reproduction of "Performance Measurement and
// Modeling of Component Applications in a High Performance Computing
// Environment: A Case Study" (Ray, Trebon, Armstrong, Shende, Malony;
// IPDPS/PMEO 2004, SAND2003-8631).
//
// The repository implements the paper's full stack from scratch:
//
//   - a CCA component framework in the style of CCAFFEINE (ports, services,
//     assembly scripts, SCMD parallel execution);
//   - an MPI-1 subset running P simulated ranks over goroutines with
//     deterministic virtual clocks;
//   - a TAU-style measurement library (timers, groups, events, hardware
//     counters, profile dumps);
//   - the paper's PMM infrastructure: proxies, the Mastermind, per-invocation
//     records, call-trace capture;
//   - the scientific case study: a structured-AMR simulation of a Mach 1.5
//     shock hitting an Air/Freon interface, built from States,
//     EFMFlux/GodunovFlux, RK2, AMRMesh and ShockDriver components;
//   - regression-based performance models (Eqs. 1-2) and the composite-model
//     dual graph with implementation-choice optimization (Fig. 10);
//   - a campaign engine (internal/campaign) that runs the evaluation as a
//     parallel job graph: every sweep, case study and model fit is an
//     independent simulated-machine job executed by a worker pool.
//
// # Campaigns
//
// The paper's evaluation is a campaign: three kernel sweeps (Figs. 4-8),
// a case study (Figs. 3/9/10) and a cache-size study, each a run of a
// self-contained simulated machine. The campaign engine executes such runs
// concurrently with deterministic results:
//
//   - a job graph (CampaignJob, with After dependencies) is submitted via
//     RunCampaign and executed by CampaignConfig.Workers workers;
//   - every job's machine draws its randomness from its own config seed,
//     never from scheduling, so output is byte-identical for any worker
//     count;
//   - Grid cross-products world parameters (ranks x network model x cache
//     size x seed replications) into scenario job sets (RunSweepGrid),
//     deriving each scenario's seed via DeriveSeed(base, key) so
//     replications draw independent streams;
//   - errors aggregate across jobs (errors.Join) and progress events
//     stream serially through CampaignConfig.OnProgress.
//
// See examples/campaign for a grid study and cmd/figures for the full
// figure-regeneration graph.
//
// This package is the facade: it re-exports the experiment harness and the
// campaign engine that regenerate every figure of the paper's evaluation.
// The underlying packages live in internal/.
package repro
