// Package repro is a Go reproduction of "Performance Measurement and
// Modeling of Component Applications in a High Performance Computing
// Environment: A Case Study" (Ray, Trebon, Armstrong, Shende, Malony;
// IPDPS/PMEO 2004, SAND2003-8631).
//
// The repository implements the paper's full stack from scratch:
//
//   - a CCA component framework in the style of CCAFFEINE (ports, services,
//     assembly scripts, SCMD parallel execution);
//   - an MPI-1 subset running P simulated ranks over goroutines with
//     deterministic virtual clocks;
//   - a TAU-style measurement library (timers, groups, events, hardware
//     counters, profile dumps);
//   - the paper's PMM infrastructure: proxies, the Mastermind, per-invocation
//     records, call-trace capture;
//   - the scientific case study: a structured-AMR simulation of a Mach 1.5
//     shock hitting an Air/Freon interface, built from States,
//     EFMFlux/GodunovFlux, RK2, AMRMesh and ShockDriver components;
//   - regression-based performance models (Eqs. 1-2) and the composite-model
//     dual graph with implementation-choice optimization (Fig. 10).
//
// This package is the facade: it re-exports the experiment harness that
// regenerates every figure of the paper's evaluation. The underlying
// packages live in internal/.
package repro
