// Package repro is a Go reproduction of "Performance Measurement and
// Modeling of Component Applications in a High Performance Computing
// Environment: A Case Study" (Ray, Trebon, Armstrong, Shende, Malony;
// IPDPS/PMEO 2004, SAND2003-8631).
//
// The repository implements the paper's full stack from scratch:
//
//   - a CCA component framework in the style of CCAFFEINE (ports, services,
//     assembly scripts, SCMD parallel execution);
//   - an MPI-1 subset running P simulated ranks over goroutines with
//     deterministic virtual clocks;
//   - a TAU-style measurement library (timers, groups, events, hardware
//     counters, profile dumps);
//   - the paper's PMM infrastructure: proxies, the Mastermind, per-invocation
//     records, call-trace capture;
//   - the scientific case study: a structured-AMR simulation of a Mach 1.5
//     shock hitting an Air/Freon interface, built from States,
//     EFMFlux/GodunovFlux, RK2, AMRMesh and ShockDriver components;
//   - regression-based performance models (Eqs. 1-2) and the composite-model
//     dual graph with implementation-choice optimization (Fig. 10);
//   - a campaign engine (internal/campaign) that runs the evaluation as a
//     parallel job graph: every sweep, case study and model fit is an
//     independent simulated-machine job executed by a worker pool;
//   - a streaming result subsystem (internal/results) — row sinks,
//     a content-addressed checkpoint store, and cross-scenario trend
//     reports — so campaigns scale to thousands of scenarios and resume
//     after interruption.
//
// # Campaigns
//
// The paper's evaluation is a campaign: three kernel sweeps (Figs. 4-8),
// a case study (Figs. 3/9/10) and a cache-size study, each a run of a
// self-contained simulated machine. The campaign engine executes such runs
// concurrently with deterministic results:
//
//   - a job graph (CampaignJob, with After dependencies) is submitted via
//     RunCampaign and executed by CampaignConfig.Workers workers;
//   - every job's machine draws its randomness from its own config seed,
//     never from scheduling, so output is byte-identical for any worker
//     count;
//   - errors aggregate across jobs (errors.Join) and progress events
//     stream serially through CampaignConfig.OnProgress.
//
// # Scheduler modes
//
// Every simulated world schedules its ranks under one of three modes
// (WorldConfig.Sched):
//
//   - SchedSerial (the zero value) is a conservative token scheduler:
//     exactly one rank goroutine executes at a time, and when the running
//     rank blocks inside MPI the token passes to the runnable rank with
//     the smallest virtual clock. One world uses one core.
//   - SchedConservativeParallel is a conservative parallel-discrete-event
//     scheduler: rank compute segments — which touch only rank-local
//     state (virtual clock, cache model, RNG, TAU profile) — run
//     concurrently on real goroutines, each rank running ahead to its
//     next interaction (its lookahead horizon: the next receive, wait or
//     collective that could observe another rank, bounded below by
//     pending message arrivals and the network model's minimum latency).
//     Every operation on order-sensitive shared state (mailbox matching,
//     collective completion, communicator-id allocation, collective-cost
//     noise draws) commits under the same token discipline in the same
//     total order the serial scheduler produces; sends are buffered
//     rank-locally during run-ahead and flushed at the sender's commit
//     turn. MaxParallelRanks caps concurrent ranks (0 = no cap).
//   - SchedOptimisticParallel is an optimistic (Time Warp) scheduler: on
//     top of concurrent compute, ranks speculate past order-sensitive
//     communication instead of waiting for their commit turn. Sends
//     publish immediately; a receive from a specific source completes the
//     moment its message is found (the pipelined fast path — per-sender
//     publication order equals committed order, so no speculation is
//     needed); wildcard (AnySource) matches and multi-request Waitsome
//     picks are speculative: the rank checkpoints its local state (virtual
//     clock, cache model, RNG position, TAU counters, request buffers)
//     into an undo log, and a commit automaton replays the serial token
//     discipline over the recorded per-rank event streams to validate
//     every pick. A mispredicted pick rolls the rank back to its
//     checkpoint and re-executes against the committed truth, so results
//     stay bit-identical to Serial. Collectives speculate too: a rank
//     whose peers have all published their contributions computes the
//     collective result itself — running ahead without a verdict when the
//     completion is provably exact (no network noise, or a
//     full-membership collective whose cost-noise draw index is pinned by
//     the commit order), and otherwise parking on a checkpointed
//     tentative result that the commit replay confirms or rolls back.
//     Speculation depth is bounded by a per-rank adaptive window
//     (WorldConfig.SpecWindowMin/Max, "-specwindow min:max"): windows
//     start at the max, halve on every rollback and creep back up after
//     batches of clean commits, so conflict-prone ranks throttle
//     themselves while clean ones run deep. The default keeps the fixed
//     4096-event window (and with it every existing scenario key and
//     checkpoint hash); a rank past its window parks until the automaton
//     catches up, which also guarantees quiescence for deadlock
//     detection. Telemetry — published sends, pipelined ops, speculated
//     ops, conflicts, rollbacks, re-executed virtual time, window stalls,
//     window grows/shrinks and observed min/max, speculative-collective
//     hits and rollbacks — is exposed via World.SpecStats and printed in
//     the deadlock dump.
//
// The determinism guarantee is bit-for-bit, proven by test, not hoped
// for: for every scenario of the golden grid both parallel schedulers
// produce identical profiles, virtual clocks, message orders and
// rendered CSV/report bytes (see TestGoldenGridParallelEquivalence,
// TestPropertySchedulerEquivalence and the forced-conflict rollback
// tests), so the zero-value config keeps checkpoint hashes, scenario keys
// and seeds byte-identical, and a non-default scheduler hashes
// distinctly.
//
// When does parallel-rank pay off? The conservative mode parallelizes
// compute inside one world, so it wins on compute-dominated bodies with
// many ranks — the BenchmarkWorldRun compute segment — while
// communication-dominated workloads serialize at their commit points
// anyway. That serialization is exactly what the optimistic mode attacks:
// a ghost-exchange loop of specific-source receives never blocks on the
// commit token (BenchmarkWorldRun's ghost variant), and speculative
// collectives let collective-heavy bodies run ahead of the commit
// automaton too (BenchmarkWorldRun's coll variant) — so prefer "opt" over
// "par" when the body is communication-heavy with mostly specific-source
// or collective traffic and few wildcards; heavy AnySource traffic with
// genuine races costs rollbacks (watch SpecStats.Conflicts, and tighten
// "-specwindow" so conflict-prone ranks throttle themselves), and pure
// compute gains nothing over the conservative mode. Across-world
// campaign parallelism (CampaignConfig.Workers) is the first lever: whole
// scenarios are embarrassingly parallel. The two compose multiplicatively
// (worlds x ranks); prefer campaign workers when the grid has many
// scenarios, and add parallel ranks ("-rankmode"/"-rankpar" on
// cmd/figures and cmd/pmmcase, or a SchedAxis grid dimension) when
// individual worlds are
// large or few. The SchedAxis/SchedModeAxis grid dimension is seed-inert
// — scenarios differing only in scheduler share a derived seed — so a
// grid can sweep serial vs the parallel modes and verify their
// equivalence at scale (see examples/campaign).
//
// # Grids and dimensions
//
// A Grid is the cross product of first-class axes times seed
// replications. Each axis is a Dimension — a stable name plus an ordered
// value list, where every value carries a stable key token (one segment
// of the scenario key) and an optional mutation of the scenario's
// simulated machine:
//
//   - built-in machine axes: RankAxis (world size), NetAxis
//     (interconnect), CacheAxis (per-rank cache kB), and CPUAxis /
//     CPUClockAxis (CPUTune: clock scale, cache hit/miss penalty
//     multipliers — the Section 6 "parameterized by processor speed"
//     knobs);
//   - built-in app-level axes: MeshAxis (case-study base grid) and
//     FluxAxis (godunov/efm/states), mapped onto harness configs through
//     the scenario's coordinates;
//   - custom axes are Dimension literals — a user-defined name, keys and
//     Apply hooks — with no library change (see examples/campaign, which
//     sweeps network load noise);
//   - expansion (Grid.Scenarios) is deterministic, derives each
//     scenario's seed via DeriveSeed(base, key) so replications draw
//     independent streams, and rejects duplicate axis names or value keys,
//     which would silently alias scenario keys and checkpoint entries;
//   - unswept rank/net/cache axes contribute implicit single-valued
//     defaults (key segments "p3", "base", "c512kB"), and any other
//     unswept axis contributes nothing, so scenario keys, seeds and
//     checkpoint hashes are stable as the axis library grows.
//
// A Scenario carries its coordinate on every axis ([]Coord) rather than
// one struct field per dimension, so consumers — RunSweepGrid,
// StreamSweepGrid, trend reports — handle any axis generically.
//
// See examples/campaign for a grid study and cmd/figures for the full
// figure-regeneration graph.
//
// # Results and checkpointing
//
// Campaign jobs do not have to buffer whole results in memory: they stream
// rows into a Sink (CampaignConfig.Sink), and the streaming grid driver
// (StreamSweepGrid) keeps only a small GridPoint per scenario, so a
// thousand-scenario grid runs in bounded memory:
//
//   - a Row is an ordered list of named, typed fields; jobs emit rows
//     under their campaign key via EmitRow;
//   - sinks are concurrency-safe and deterministic (rows keep per-key
//     order): NewCSVShardSink writes one CSV file per key, NewBinShardSink
//     writes the same rows in the length-prefixed binary shard format
//     (see "Results service" below), NewAggSink keeps running
//     mean/min/max/stddev per (key, field) and drops the rows,
//     NewMemorySink buffers for tests, NewTee fans out to several sinks
//     at once; ReadRowsFile decodes either shard format back into rows;
//   - every harness job is checkpointable: with CampaignConfig.Store set
//     (OpenStore), finished payloads persist content-addressed by
//     (job key, config hash), so an interrupted campaign — a killed
//     cmd/figures run, a canceled grid — resumes re-running zero
//     completed jobs and produces byte-identical output, with cached
//     jobs replaying their rows into the sink;
//   - the cross-scenario trend report (BuildTrends, WriteTrendCSV,
//     WriteTrendReport) fits every model coefficient against any swept
//     numeric dimension, selected by a TrendAxis (TrendCacheKB,
//     TrendCPUClock, TrendRanks, TrendMeshCells, or TrendByAxis for a
//     custom dimension) — the paper's Section 6 "coefficients
//     parameterized by processor speed and a cache model" — and is
//     emitted by "cmd/figures -fig trend [-axis cpu_clock]" and
//     "cmd/pmmcase -report [-axis cpu_clock]".
//
// # Distributed campaigns
//
// The checkpoint store is content-addressed and atomic, so several hosts
// can share one store directory over a network filesystem — and the lease
// protocol (results/store/lease, re-exported as LeaseManager) lets N
// independent processes partition one grid through it with no
// coordinator. Set CampaignConfig.Claimer (OpenLeaseManager, or
// DistributedCampaignConfig to wire store and claimer together) and point
// every process at the same store:
//
//   - lease lifecycle: a worker claims a job by creating its lease file
//     exclusively (the record is written to a temp file and link(2)ed
//     into place, so it appears atomically and fully written); a held
//     lease is rewritten with a fresh heartbeat timestamp every
//     LeaseOptions.Heartbeat; the claim is released — audit line first,
//     then lease removal — after the job's checkpoint is stored, at which
//     point the payload answers every later claim with "done";
//   - jobs claimed by another live process are deferred, not blocked on:
//     workers move to other ready jobs and re-probe every
//     CampaignConfig.ClaimBackoff, decoding the payload (and replaying
//     its rows) once it appears — so each process's sinks and rendered
//     files stay byte-identical to a single-process run while each
//     scenario executes exactly once across the fleet, as the per-owner
//     audit logs under <store>/leases/ prove;
//   - crashed workers stop heartbeating: once a lease's heartbeat is
//     older than LeaseOptions.TTL, any claimant steals it (rename-aside
//     with exactly one winner, then an ordinary exclusive re-claim), so
//     the grid always drains;
//   - heartbeat/expiry knobs: TTL defaults to 30s and the renewal
//     interval to TTL/4. Choose TTL well above worst-case clock skew
//     between hosts and the filesystem's attribute-cache delay; a live
//     worker that stalls past TTL can have its job stolen and executed
//     twice, which the deterministic byte-identical payloads make
//     harmless but the audit makes visible;
//   - NFS caveats: the exclusive-link claim and rename-based steal need
//     NFSv3+ semantics, hosts should be NTP-synchronized, and attribute
//     caching (acregmin/acregmax) delays cross-host visibility of fresh
//     checkpoints — generous TTLs and ClaimBackoffs absorb both.
//
// "cmd/figures -distributed -owner <id> -cache <shared dir>" and
// "cmd/pmmcase -distributed -owner <id> -cache <shared dir>" run this
// mode from the command line; hosts x campaign workers x parallel ranks
// compose multiplicatively.
//
// # Results service
//
// A finished campaign's rows directory is itself a queryable performance
// model: cmd/resultsd (internal/results/serve, re-exported here as
// ResultsService / NewResultsService) serves it over HTTP without
// re-running a single simulation. Point it at a rows directory — or a
// campaign output directory containing rows/ — and it fits the paper's
// regression models on demand:
//
//	resultsd -dir campaign-out -addr 127.0.0.1:9190
//
// Endpoints (GET only; JSON):
//
//   - /          service summary: rows dir, scenarios, axes, backends,
//     endpoints;
//   - /healthz   liveness;
//   - /metrics   obs registry text exposition;
//   - /scenarios catalog metadata (no shard decoded); optional ?name=;
//   - /scenario  full detail — rows, fitted coefficients and model
//     descriptions per backend — for scenarios matching the selectors;
//   - /predict   evaluate one measure of one scenario at a point;
//   - /trend     fitted-coefficient-vs-axis curves across the scenarios
//     matching a filter.
//
// The query grammar mirrors the scenario-key grammar: a key like
// "p4_base_c256kB_cpu1.5x_opt_r0" parses into coordinates on the
// ranks, cache_kb, cpu_clock (and, when swept, mesh_cells) and rep
// axes, a scheduler, and free tags (any unrecognized token — "base"
// above), so /scenario and /trend accept selectors by name ("name="),
// by scheduler ("sched=serial|par|opt"), by tag ("tag=base") and by
// numeric axis value ("cache_kb=256", "ranks=4", ...). /predict takes scenario, measure
// (mean_us, sigma_us, throughput, response_us, utilization), model
// (fitted — the default — or queue), and the evaluation point: q,
// optional lambda (arrival rate, 1/s) and dcm (L2 data-cache misses).
// The fitted backend serves the AIC-selected regression (linear,
// quadratic or power-law; Eqs. 1-2, plus the multivariate fit over
// (Q, DCM) when cache counters are present); the queue backend treats
// the measured service demand as an M/M/1 server (Section 5's queueing
// view) and answers response_us and utilization from (q, lambda).
//
// Scenario shards load through a read-through model cache: first touch
// decodes the shard and fits every backend, concurrent requests for the
// same scenario share one load (singleflight), and an LRU bound (-cache,
// default 256 scenarios) evicts the coldest entry. Hits, misses,
// evictions and load latency are exported as resultsd_cache_* counters
// and the resultsd_scenario_load_us histogram on /metrics; failed loads
// are never cached. The determinism contract extends to the service:
// responses carry no timestamps, no absolute paths and no map-ordered
// JSON, so two resultsd instances over byte-identical stores return
// byte-identical bodies for every request — CI curls a live instance
// and diffs against the documented examples.
//
// Binary row shards are the service's preferred input: NewBinShardSink
// writes one <key>-<hash>.bin file per campaign key (the same naming as
// the CSV shards) — magic "RRBS", one version byte, then
// per row a uvarint body length and a body of uvarint-counted fields
// (uvarint name length + name, a tag byte, then the value: 1 = int as
// zigzag varint, 2 = float64 as little-endian IEEE 754 bits, 3 = string
// as uvarint length + bytes, 4 = bool as one byte). Encoding is a pure
// function of the rows, so equal rows give byte-identical shards, and a
// binary shard re-encoded as CSV reproduces the sibling CSV shard byte
// for byte ("cmd/figures -rowformat csv|bin|both" writes either or
// both; resultsd and "cmd/obsreport -rows" read both, preferring .bin
// when a stem has both). The full request/response contract — parameter
// tables, example bodies, error codes (400/404/405/422) and a curl
// walkthrough — lives in docs/resultsd-api.md.
//
// # Observability
//
// The stack observes itself (internal/obs, re-exported here as Observer,
// EnableObserver and friends): a span tracer and a metrics registry that
// the campaign engine, the lease protocol, the checkpoint store and the
// simulated MPI world record into. The design holds two invariants:
//
//   - Determinism: observation is write-only. Nothing recorded feeds
//     back into scheduling, scenario keys, checkpoint hashes or seeds,
//     so an observed run renders byte-identical output to an unobserved
//     one (TestObservedRunByteIdentical pins this over the golden grid).
//   - Nil-safety: every tracer and registry method no-ops on a nil
//     receiver. Layers capture possibly-nil instrument handles when they
//     are constructed, so disabled observability costs one nil check per
//     event. Because capture happens at construction, EnableObserver
//     must run before OpenStore / OpenLeaseManager / NewWorld /
//     RunCampaign.
//
// The tracer keeps one track — a fixed-size ring buffer under its own
// mutex, oldest events overwritten and the drop count exported — per
// campaign worker ("campaign"/"worker NN": one span per job, annotated
// run/cached/error, plus claim-deferral instants), per simulated rank
// ("mpi"/"wW rank R": one span per MPI call, compute-gap spans between
// calls, and speculation instants — speculate, conflict, rollback,
// window stall), and per lease owner ("lease"/<owner>: hold spans,
// claim/steal instants). Export produces Chrome trace-event JSON that
// chrome://tracing and Perfetto load directly.
//
// The registry exposes counters, gauges and fixed-bucket histograms in
// a Prometheus-flavoured text format. Metric names follow
// <layer>_<what>_total for counters and <layer>_<what>_us for latency
// histograms: campaign_jobs_settled_total, campaign_job_us,
// store_puts_total, store_get_us, lease_claims_total, lease_steals_total,
// lease_hold_us, mpi_token_grants_total, mpi_spec_conflicts_total,
// mpi_spec_rollbacks_total and so on — World.SpecStats folds into the
// mpi_spec_* family at the end of every optimistic run.
//
// From the command line, "cmd/figures -trace run.json" writes the trace,
// "-metrics localhost:9090" serves live /metrics and /trace endpoints
// while the campaign executes, and "-metricsdump metrics.txt" writes the
// final registry for CI. "cmd/obsreport -store <shared dir> -trace
// run.json" turns a finished distributed run's lease audit and trace
// into per-owner and per-track throughput tables, and validates the
// trace schema (-require campaign,lease,mpi) so CI fails when an
// instrumentation layer goes silent. Non-serial sweep jobs additionally
// emit their SpecStats as a "spec/<job key>" row shard — conflict and
// rollback rates, the adaptive window's grows/shrinks and observed
// min/max, and speculative-collective hits and rollbacks — so speculation
// behavior lands in the campaign's CSV output next to the measurements it
// explains, and "cmd/obsreport -rows <dir>" aggregates those shards into
// a per-scenario speculation table after the fact.
//
// # Static analysis
//
// The determinism and responsiveness invariants above are enforced
// statically, not just by golden tests: internal/lint implements six
// repository-specific analyzers in the go/analysis style (self-contained
// on the standard library — packages load via "go list -export" and the
// gc export-data importer, so the suite runs offline), and cmd/repolint
// is the multichecker driver:
//
//   - wallclock: time.Now/Since/Until, the global math/rand functions and
//     process identity (os.Getpid, os.Hostname) in deterministic
//     packages — values must derive from config and seeds;
//   - mapiter: map iteration whose order leaks into an io.Writer, a
//     results Sink or a returned slice without sorting first;
//   - gostringpin: %#v-pinned structs (checkpoint config hashing) whose
//     GoString shim fails to handle a declared field, which would
//     silently change stored hashes when the field is first set;
//   - lockio: file/network I/O or blocking channel operations while a
//     mutex acquired in the same function is held — the lease-heartbeat
//     starvation bug class;
//   - obscapture: obs.Active() or instrument lookups inside loops,
//     violating the capture-at-construction rule above;
//   - pkgdoc: packages without a package doc comment — the written API
//     contract (this overview, docs/resultsd-api.md) is anchored in
//     per-package docs, so an undocumented package fails the lint gate.
//
// "go run ./cmd/repolint ./..." must exit 0; CI gates on it. Legitimate
// exceptions are annotated in place:
//
//	//repolint:allow wallclock -- lease heartbeats are wall-clock by protocol
//
// The reason after "--" is mandatory and the directive covers its own
// line, the line below it, or — when placed in a function's doc
// comment — the whole function. Malformed or unknown-name directives are
// themselves diagnostics. Suppressed findings stay visible in
// "repolint -json" output, so the allowlist is auditable: every
// wall-clock read (lease heartbeats, obs span timestamps, bench
// fingerprints) and every I/O-under-lock design decision is annotated
// with its justification.
//
// Benchmark trajectory: cmd/benchlog records the benchmark suite into
// the checked-in BENCH_*.json log and gates pull requests at +25% ns/op
// against the newest baseline from a comparable host class. The gate
// arms per host class via "benchlog -out BENCH_0006.json -ifnew" on
// pushes to main (see cmd/benchlog's doc for the CI wiring).
//
// This package is the facade: it re-exports the experiment harness and the
// campaign engine that regenerate every figure of the paper's evaluation.
// The underlying packages live in internal/.
package repro
