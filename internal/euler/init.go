package euler

import "math"

// ShockInterfaceProblem describes the paper's case study: a Mach-Ms planar
// shock in air travelling toward a (perturbed) interface with Freon
// (Samtaney & Zabusky's shock-accelerated density-stratified interface).
// Lengths are in domain units on [0,Lx] x [0,Ly].
type ShockInterfaceProblem struct {
	// Lx, Ly are the domain extents.
	Lx, Ly float64
	// Mach is the incident shock Mach number (paper: 1.5).
	Mach float64
	// ShockX is the initial shock position.
	ShockX float64
	// InterfaceX is the mean position of the air/Freon interface.
	InterfaceX float64
	// Amplitude and Modes shape the sinusoidal interface perturbation that
	// seeds the Richtmyer–Meshkov roll-up.
	Amplitude float64
	Modes     int
	// DensityRatio is rho_Freon / rho_air at pressure equilibrium
	// (~3 for Freon-22 vs air by molecular weight).
	DensityRatio float64
}

// DefaultShockInterface returns the case-study configuration: a Mach 1.5
// shock hitting a perturbed Air/Freon interface.
func DefaultShockInterface() ShockInterfaceProblem {
	return ShockInterfaceProblem{
		Lx: 4, Ly: 1,
		Mach:         1.5,
		ShockX:       0.8,
		InterfaceX:   1.6,
		Amplitude:    0.08,
		Modes:        2,
		DensityRatio: 3.0,
	}
}

// PostShockAir returns the state behind a Mach-M shock moving in +x into
// quiescent air at (rho=1, p=1), from the normal-shock Rankine–Hugoniot
// relations.
func PostShockAir(mach float64) Prim {
	g := GammaAir
	m2 := mach * mach
	p2 := 1 + 2*g/(g+1)*(m2-1)
	rho2 := (g + 1) * m2 / ((g-1)*m2 + 2)
	c1 := math.Sqrt(g) // sound speed of (1,1) air
	u2 := mach * c1 * (1 - 1/rho2)
	return Prim{Rho: rho2, U: u2, V: 0, P: p2, Y: 0}
}

// AheadAir is quiescent pre-shock air.
func AheadAir() Prim { return Prim{Rho: 1, U: 0, V: 0, P: 1, Y: 0} }

// interfaceAt returns the perturbed interface x-position at height y.
func (pr ShockInterfaceProblem) interfaceAt(y float64) float64 {
	if pr.Modes <= 0 || pr.Amplitude == 0 {
		return pr.InterfaceX
	}
	return pr.InterfaceX + pr.Amplitude*math.Cos(2*math.Pi*float64(pr.Modes)*y/pr.Ly)
}

// StateAt returns the initial primitive state at physical point (x, y).
func (pr ShockInterfaceProblem) StateAt(x, y float64) Prim {
	switch {
	case x < pr.ShockX:
		return PostShockAir(pr.Mach)
	case x < pr.interfaceAt(y):
		return AheadAir()
	default:
		return Prim{Rho: pr.DensityRatio, U: 0, V: 0, P: 1, Y: 1}
	}
}

// InitBlock fills the block (interior plus ghosts) with the initial
// condition, given the physical origin (x0, y0) of the first interior cell
// corner and the cell sizes.
func (pr ShockInterfaceProblem) InitBlock(b *Block, x0, y0, dx, dy float64) {
	for j := -b.Ng; j < b.Ny+b.Ng; j++ {
		for i := -b.Ng; i < b.Nx+b.Ng; i++ {
			x := x0 + (float64(i)+0.5)*dx
			y := y0 + (float64(j)+0.5)*dy
			b.SetPrim(i, j, pr.StateAt(x, y))
		}
	}
}

// GradientIndicator returns a refinement indicator for cell (i, j): the
// maximum relative jump of density and mass fraction against its neighbors.
// SAMR flags cells whose indicator exceeds a threshold (shocks and the
// material interface).
func GradientIndicator(b *Block, i, j int) float64 {
	c := b.PrimAt(i, j)
	indicator := 0.0
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		n := b.PrimAt(i+d[0], j+d[1])
		dr := math.Abs(n.Rho-c.Rho) / c.Rho
		if dr > indicator {
			indicator = dr
		}
		dy := math.Abs(n.Y - c.Y)
		if dy > indicator {
			indicator = dy
		}
		dp := math.Abs(n.P-c.P) / c.P
		if dp > indicator {
			indicator = dp
		}
	}
	return indicator
}
