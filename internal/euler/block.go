package euler

import (
	"fmt"

	"repro/internal/platform"
)

// Block is a rectangular patch of cells with ghost layers, storing NVars
// conserved-variable planes in row-major order. It is the "data array"
// passed between the paper's components: X sweeps walk it sequentially,
// Y sweeps stride by a full row.
type Block struct {
	// Nx, Ny are the interior extents in cells; Ng is the ghost width.
	Nx, Ny, Ng int
	// Stride is the padded row length, Nx + 2*Ng.
	Stride int
	// rows is the padded column count, Ny + 2*Ng.
	rows int
	// U holds one plane per conserved variable.
	U [NVars][]float64
	// addr holds per-plane virtual base addresses for cache accounting
	// (zero when the block is not bound to a simulated processor).
	addr [NVars]uint64
}

// NewBlock allocates a block of nx-by-ny interior cells with ng ghost
// layers. If proc is non-nil the planes receive virtual addresses on that
// rank's heap so kernels can charge their access streams.
func NewBlock(proc *platform.Proc, nx, ny, ng int) *Block {
	if nx <= 0 || ny <= 0 || ng < 0 {
		panic(fmt.Sprintf("euler: invalid block geometry %dx%d ghost %d", nx, ny, ng))
	}
	b := &Block{Nx: nx, Ny: ny, Ng: ng, Stride: nx + 2*ng, rows: ny + 2*ng}
	n := b.Stride * b.rows
	for v := 0; v < NVars; v++ {
		b.U[v] = make([]float64, n)
		if proc != nil {
			b.addr[v] = proc.Alloc(8 * n)
		}
	}
	return b
}

// Cells returns the number of interior cells (the paper's array size Q).
func (b *Block) Cells() int { return b.Nx * b.Ny }

// Idx returns the flat index of cell (i, j); i in [-Ng, Nx+Ng) and
// j in [-Ng, Ny+Ng), with (0,0) the first interior cell.
func (b *Block) Idx(i, j int) int {
	return (j+b.Ng)*b.Stride + (i + b.Ng)
}

// At returns the conserved state of cell (i, j).
func (b *Block) At(i, j int) Cons {
	k := b.Idx(i, j)
	var u Cons
	for v := 0; v < NVars; v++ {
		u[v] = b.U[v][k]
	}
	return u
}

// Set stores the conserved state of cell (i, j).
func (b *Block) Set(i, j int, u Cons) {
	k := b.Idx(i, j)
	for v := 0; v < NVars; v++ {
		b.U[v][k] = u[v]
	}
}

// SetPrim stores a primitive state in cell (i, j).
func (b *Block) SetPrim(i, j int, w Prim) { b.Set(i, j, ConsFromPrim(w)) }

// PrimAt returns the primitive state of cell (i, j).
func (b *Block) PrimAt(i, j int) Prim { return PrimFromCons(b.At(i, j)) }

// CopyFrom copies all planes (including ghosts) from src, which must have
// identical geometry.
func (b *Block) CopyFrom(src *Block) {
	if src.Nx != b.Nx || src.Ny != b.Ny || src.Ng != b.Ng {
		panic("euler: CopyFrom geometry mismatch")
	}
	for v := 0; v < NVars; v++ {
		copy(b.U[v], src.U[v])
	}
}

// Clone allocates a new block (bound to proc if non-nil) with the same
// geometry and contents.
func (b *Block) Clone(proc *platform.Proc) *Block {
	nb := NewBlock(proc, b.Nx, b.Ny, b.Ng)
	nb.CopyFrom(b)
	return nb
}

// planeAddr returns the virtual address of element k of plane v, or 0 when
// the block is unbound.
func (b *Block) planeAddr(v, k int) uint64 {
	if b.addr[v] == 0 {
		return 0
	}
	return b.addr[v] + uint64(8*k)
}

// chargeRowSegment charges a sequential sweep over n cells of plane v
// starting at cell (i, j).
func (b *Block) chargeRowSegment(proc *platform.Proc, v, i, j, n int) {
	if proc == nil || b.addr[v] == 0 {
		return
	}
	proc.ChargeStream(b.planeAddr(v, b.Idx(i, j)), n, 8)
}

// chargeColSegment charges a strided sweep over n cells of plane v starting
// at cell (i, j), striding one full padded row per element.
func (b *Block) chargeColSegment(proc *platform.Proc, v, i, j, n int) {
	if proc == nil || b.addr[v] == 0 {
		return
	}
	proc.ChargeStream(b.planeAddr(v, b.Idx(i, j)), n, 8*b.Stride)
}

// chargeSweep charges one directional pass over the interior of plane v
// (plus the reconstruction halo), in the access pattern of dir.
func (b *Block) chargeSweep(proc *platform.Proc, v int, dir Dir) {
	if proc == nil || b.addr[v] == 0 {
		return
	}
	if dir == X {
		for j := 0; j < b.Ny; j++ {
			b.chargeRowSegment(proc, v, -1, j, b.Nx+2)
		}
	} else {
		for i := 0; i < b.Nx; i++ {
			b.chargeColSegment(proc, v, i, -1, b.Ny+2)
		}
	}
}

// MaxWaveSpeed returns the largest |u|+c over the interior, the quantity
// the CFL condition needs (reduced across ranks by the driver).
func (b *Block) MaxWaveSpeed() float64 {
	maxS := 0.0
	for j := 0; j < b.Ny; j++ {
		for i := 0; i < b.Nx; i++ {
			w := b.PrimAt(i, j)
			c := w.SoundSpeed()
			if s := abs(w.U) + c; s > maxS {
				maxS = s
			}
			if s := abs(w.V) + c; s > maxS {
				maxS = s
			}
		}
	}
	return maxS
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FillBoundary applies physical boundary conditions to the ghost layers of
// sides that touch the domain boundary: zero-gradient (transmissive) in x,
// reflecting walls in y — the shock-tube setup of the case study.
// The four flags say whether each side is a physical boundary.
func (b *Block) FillBoundary(left, right, bottom, top bool) {
	if left {
		for j := -b.Ng; j < b.Ny+b.Ng; j++ {
			for g := 1; g <= b.Ng; g++ {
				b.Set(-g, j, b.At(0, j))
			}
		}
	}
	if right {
		for j := -b.Ng; j < b.Ny+b.Ng; j++ {
			for g := 1; g <= b.Ng; g++ {
				b.Set(b.Nx-1+g, j, b.At(b.Nx-1, j))
			}
		}
	}
	if bottom {
		for i := -b.Ng; i < b.Nx+b.Ng; i++ {
			for g := 1; g <= b.Ng; g++ {
				u := b.At(i, g-1)
				u[IMy] = -u[IMy] // reflect
				b.Set(i, -g, u)
			}
		}
	}
	if top {
		for i := -b.Ng; i < b.Nx+b.Ng; i++ {
			for g := 1; g <= b.Ng; g++ {
				u := b.At(i, b.Ny-g)
				u[IMy] = -u[IMy]
				b.Set(i, b.Ny-1+g, u)
			}
		}
	}
}
