// Package euler implements the gas-dynamics kernels of the paper's case
// study: the compressible Euler equations for two gases (Air and Freon,
// mixed through an effective-gamma model), solved with MUSCL reconstruction
// ("States"), a kinetic Equilibrium Flux Method flux ("EFMFlux"), an exact
// Riemann-solver flux ("GodunovFlux"), and a two-stage Runge-Kutta update
// ("RK2"). These are the numerical bodies of the CCA components measured in
// the paper's Section 5.
//
// Every kernel does its real floating-point work on real Go slices and, when
// given a platform processor, charges that work (FLOPs and memory-access
// streams) to the simulated machine, so TAU observes virtual times with the
// paper's cache-driven sequential/strided behaviour.
package euler

import (
	"fmt"
	"math"
)

// Conserved variable indices.
const (
	IRho  = 0 // density
	IMx   = 1 // x-momentum
	IMy   = 2 // y-momentum
	IEner = 3 // total energy density
	IRhoY = 4 // partial density of the heavy gas (rho * mass fraction)
	// NVars is the number of conserved fields.
	NVars = 5
)

// Dir selects the sweep direction of a kernel: X sweeps are sequential in
// memory (row-major layout), Y sweeps are strided — the two operating modes
// the paper's Figures 4 and 5 compare.
type Dir int

// Sweep directions.
const (
	X Dir = iota
	Y
)

// String returns "X" or "Y".
func (d Dir) String() string {
	if d == X {
		return "X"
	}
	return "Y"
}

// Gas gamma constants: air and Freon-22 (the Samtaney–Zabusky pairing the
// paper simulates).
const (
	GammaAir   = 1.4
	GammaFreon = 1.172
)

// MixGamma returns the effective ratio of specific heats for a mixture with
// heavy-gas mass fraction y, from mass-fraction-weighted internal-energy
// partition (the standard gamma model for multi-species Euler).
func MixGamma(y float64) float64 {
	if y <= 0 {
		return GammaAir
	}
	if y >= 1 {
		return GammaFreon
	}
	return 1 + 1/(y/(GammaFreon-1)+(1-y)/(GammaAir-1))
}

// Prim holds primitive variables at a point.
type Prim struct {
	Rho float64 // density
	U   float64 // x-velocity
	V   float64 // y-velocity
	P   float64 // pressure
	Y   float64 // heavy-gas mass fraction
}

// Gamma returns the effective gamma of the mixture at this state.
func (p Prim) Gamma() float64 { return MixGamma(p.Y) }

// SoundSpeed returns the local speed of sound.
func (p Prim) SoundSpeed() float64 { return math.Sqrt(p.Gamma() * p.P / p.Rho) }

// Cons holds conserved variables at a point.
type Cons [NVars]float64

// ConsFromPrim converts primitive variables to conserved variables.
func ConsFromPrim(w Prim) Cons {
	e := w.P/(MixGamma(w.Y)-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V)
	return Cons{w.Rho, w.Rho * w.U, w.Rho * w.V, e, w.Rho * w.Y}
}

// PrimFromCons converts conserved variables to primitive variables. It
// clamps vacuum-adjacent states to a small positive floor rather than
// producing NaNs, which is the usual defensive choice in SAMR codes where
// freshly interpolated ghost values may undershoot.
func PrimFromCons(u Cons) Prim {
	rho := u[IRho]
	if rho < 1e-12 {
		rho = 1e-12
	}
	y := u[IRhoY] / rho
	if y < 0 {
		y = 0
	} else if y > 1 {
		y = 1
	}
	vx := u[IMx] / rho
	vy := u[IMy] / rho
	p := (MixGamma(y) - 1) * (u[IEner] - 0.5*rho*(vx*vx+vy*vy))
	if p < 1e-12 {
		p = 1e-12
	}
	return Prim{Rho: rho, U: vx, V: vy, P: p, Y: y}
}

// PhysFlux returns the exact Euler flux of state w along the normal
// direction (normal velocity un = U for X sweeps after rotation).
func PhysFlux(w Prim) Cons {
	g := MixGamma(w.Y)
	e := w.P/(g-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V)
	return Cons{
		w.Rho * w.U,
		w.Rho*w.U*w.U + w.P,
		w.Rho * w.U * w.V,
		w.U * (e + w.P),
		w.Rho * w.U * w.Y,
	}
}

// rotate swaps normal/transverse velocity for Y sweeps so that all flux
// kernels can treat index 1 as the normal momentum.
func rotate(u Cons, d Dir) Cons {
	if d == X {
		return u
	}
	u[IMx], u[IMy] = u[IMy], u[IMx]
	return u
}

// unrotate undoes rotate.
func unrotate(u Cons, d Dir) Cons { return rotate(u, d) }

// validState panics if a state is non-physical beyond repair (NaN); solver
// bugs should fail loudly rather than silently corrupt a simulation.
func validState(u Cons, where string) {
	for v := 0; v < NVars; v++ {
		if math.IsNaN(u[v]) || math.IsInf(u[v], 0) {
			panic(fmt.Sprintf("euler: non-finite state %v at %s", u, where))
		}
	}
}
