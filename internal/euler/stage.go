package euler

import (
	"math"

	"repro/internal/platform"
)

// applyFlops is the per-cell floating-point work of a flux-divergence
// update over all variables.
const applyFlops = 4 * NVars

// ApplyFluxes writes out = in - dt/dx (Fx_{i+1}-Fx_i) - dt/dy (Fy_{j+1}-Fy_j)
// over the interior. in and out may be the same block. This is the RK2
// component's own (exclusive) work between its calls to States and the flux
// components.
func ApplyFluxes(proc *platform.Proc, in, out *Block, fx, fy *EdgeField, dt, dx, dy float64) {
	if fx.Dir != X || fy.Dir != Y {
		panic("euler: ApplyFluxes wants an X and a Y edge field")
	}
	if fx.NxCells != in.Nx || fx.NyCells != in.Ny || fy.NxCells != in.Nx || fy.NyCells != in.Ny {
		panic("euler: ApplyFluxes geometry mismatch")
	}
	lx := dt / dx
	ly := dt / dy
	for j := 0; j < in.Ny; j++ {
		for i := 0; i < in.Nx; i++ {
			u := in.At(i, j)
			fxm := fx.AtFace(i, j)
			fxp := fx.AtFace(i+1, j)
			fym := fy.AtFace(j, i)
			fyp := fy.AtFace(j+1, i)
			for v := 0; v < NVars; v++ {
				u[v] -= lx*(fxp[v]-fxm[v]) + ly*(fyp[v]-fym[v])
			}
			validState(u, "ApplyFluxes")
			out.Set(i, j, u)
		}
	}
	for v := 0; v < NVars; v++ {
		in.chargeSweep(proc, v, X)
		out.chargeSweep(proc, v, X)
		fx.chargeSweep(proc, v)
		fy.chargeSweep(proc, v)
	}
	if proc != nil {
		proc.ChargeFlops(applyFlops * in.Cells())
	}
}

// Average writes out = (a + b) / 2 over the interior: the combination step
// of Heun's RK2.
func Average(proc *platform.Proc, a, b, out *Block) {
	if a.Nx != b.Nx || a.Ny != b.Ny || a.Nx != out.Nx || a.Ny != out.Ny {
		panic("euler: Average geometry mismatch")
	}
	for j := 0; j < a.Ny; j++ {
		for i := 0; i < a.Nx; i++ {
			ua, ub := a.At(i, j), b.At(i, j)
			for v := 0; v < NVars; v++ {
				ua[v] = 0.5 * (ua[v] + ub[v])
			}
			out.Set(i, j, ua)
		}
	}
	for v := 0; v < NVars; v++ {
		a.chargeSweep(proc, v, X)
		b.chargeSweep(proc, v, X)
		out.chargeSweep(proc, v, X)
	}
	if proc != nil {
		proc.ChargeFlops(2 * NVars * a.Cells())
	}
}

// FluxKernel is the signature shared by EFMFlux and GodunovFlux: the two
// interchangeable implementations of the paper's InviscidFlux functionality.
type FluxKernel func(proc *platform.Proc, qL, qR, flux *EdgeField) int

// EFMKernel adapts EFMFlux to the FluxKernel signature (it has no iteration
// count; it reports zero).
func EFMKernel(proc *platform.Proc, qL, qR, flux *EdgeField) int {
	EFMFlux(proc, qL, qR, flux)
	return 0
}

// GodunovKernel adapts GodunovFlux to the FluxKernel signature.
func GodunovKernel(proc *platform.Proc, qL, qR, flux *EdgeField) int {
	return GodunovFlux(proc, qL, qR, flux)
}

// CFLTimeStep returns the stable time step for the given mesh spacing and
// global maximum wave speed under the given CFL number.
func CFLTimeStep(cfl, dx, dy, maxSpeed float64) float64 {
	if maxSpeed <= 0 {
		return math.Inf(1)
	}
	h := dx
	if dy < h {
		h = dy
	}
	return cfl * h / maxSpeed
}
