package euler

import (
	"math"

	"repro/internal/platform"
)

// efmFlopsPerFace approximates the floating-point work of one EFM face:
// two one-sided kinetic flux evaluations, each dominated by an erf and an
// exp (costed as multi-flop library calls, as PAPI would count them).
const efmFlopsPerFace = 150

// godunovBaseFlops and godunovIterFlops cost the exact Riemann solver:
// a fixed setup plus Newton iterations whose count is data-dependent —
// the source of GodunovFlux's growing timing variability (Fig. 7).
const (
	godunovBaseFlops = 160
	godunovIterFlops = 110
)

// checkFaceGeom validates that the three edge fields agree.
func checkFaceGeom(qL, qR, flux *EdgeField) {
	if qL.Dir != qR.Dir || qL.Dir != flux.Dir ||
		qL.NxCells != qR.NxCells || qL.NxCells != flux.NxCells ||
		qL.NyCells != qR.NyCells || qL.NyCells != flux.NyCells {
		panic("euler: flux edge-field geometry mismatch")
	}
}

// forEachFace visits every face of e in its directional sweep order
// (rows for X, columns for Y).
func forEachFace(e *EdgeField, visit func(f, t int)) {
	if e.Dir == X {
		for j := 0; j < e.NyCells; j++ {
			for f := 0; f <= e.NxCells; f++ {
				visit(f, j)
			}
		}
	} else {
		for i := 0; i < e.NxCells; i++ {
			for f := 0; f <= e.NyCells; f++ {
				visit(f, i)
			}
		}
	}
}

// chargeFluxKernel accounts the memory traffic of a flux kernel: read both
// state fields, write the flux field, interleaved per row/column as the
// kernel walks the faces. overlapped marks kernels whose dense independent
// arithmetic hides strided-miss latency (EFM, per Fig. 8's
// near-mode-independent timings).
func chargeFluxKernel(proc *platform.Proc, qL, qR, flux *EdgeField, overlapped bool) {
	if proc == nil {
		return
	}
	nt := flux.NyCells
	if flux.Dir == Y {
		nt = flux.NxCells
	}
	for t := 0; t < nt; t++ {
		for v := 0; v < NVars; v++ {
			qL.chargeLineSegment(proc, v, t, overlapped)
			qR.chargeLineSegment(proc, v, t, overlapped)
			flux.chargeLineSegment(proc, v, t, overlapped)
		}
	}
}

// EFMFlux computes interface fluxes with the Equilibrium Flux Method
// (kinetic flux-vector splitting): F = F⁺(qL) + F⁻(qR). Its per-face cost
// is fixed — heavy on transcendentals, light on memory — which is why the
// paper finds EFMFlux cheaper than GodunovFlux with far smaller variance
// (Fig. 8), making it the better-performing implementation choice.
func EFMFlux(proc *platform.Proc, qL, qR, flux *EdgeField) {
	checkFaceGeom(qL, qR, flux)
	d := flux.Dir
	forEachFace(flux, func(f, t int) {
		l := primRot(qL.AtFace(f, t), d)
		r := primRot(qR.AtFace(f, t), d)
		fl := kfvsSplit(l, +1)
		fr := kfvsSplit(r, -1)
		var out Cons
		for v := 0; v < NVars; v++ {
			out[v] = fl[v] + fr[v]
		}
		flux.setFace(f, t, unrotate(out, d))
	})
	chargeFluxKernel(proc, qL, qR, flux, true)
	if proc != nil {
		proc.ChargeFlops(efmFlopsPerFace * flux.Len())
	}
}

// primRot converts a conserved face state to primitives with the sweep
// direction rotated onto the normal axis.
func primRot(u Cons, d Dir) Prim {
	return PrimFromCons(rotate(u, d))
}

// kfvsSplit returns the one-sided kinetic flux of state w: sign=+1 gives
// the right-moving half-Maxwellian flux F⁺, sign=-1 gives F⁻. The split is
// exactly consistent: F⁺(w)+F⁻(w) equals the physical flux of w.
func kfvsSplit(w Prim, sign float64) Cons {
	g := w.Gamma()
	beta := w.Rho / (2 * w.P)
	s := w.U * math.Sqrt(beta)
	a := 0.5 * (1 + sign*math.Erf(s))
	bterm := sign * 0.5 * math.Exp(-s*s) / math.Sqrt(math.Pi*beta)
	e := w.P/(g-1) + 0.5*w.Rho*(w.U*w.U+w.V*w.V)
	massFlux := w.Rho * (w.U*a + bterm)
	return Cons{
		massFlux,
		(w.Rho*w.U*w.U+w.P)*a + w.Rho*w.U*bterm,
		massFlux * w.V,
		w.U*(e+w.P)*a + (e+0.5*w.P)*bterm,
		massFlux * w.Y,
	}
}

// GodunovFlux computes interface fluxes from the exact solution of the
// Riemann problem at each face (iterative Newton solve for the star-region
// pressure). It returns the total number of Newton iterations performed —
// data-dependent work that makes its timing variance grow with array size.
// GodunovFlux is the more accurate, more expensive alternative to EFMFlux:
// the paper's Quality-of-Service discussion (Section 5) weighs exactly this
// substitution.
func GodunovFlux(proc *platform.Proc, qL, qR, flux *EdgeField) int {
	checkFaceGeom(qL, qR, flux)
	d := flux.Dir
	totalIters := 0
	forEachFace(flux, func(f, t int) {
		l := primRot(qL.AtFace(f, t), d)
		r := primRot(qR.AtFace(f, t), d)
		w, iters := RiemannSample(l, r)
		totalIters += iters
		flux.setFace(f, t, unrotate(PhysFlux(w), d))
	})
	chargeFluxKernel(proc, qL, qR, flux, false)
	if proc != nil {
		proc.ChargeFlops(godunovBaseFlops*flux.Len() + godunovIterFlops*totalIters)
	}
	return totalIters
}

// riemannTol is the Newton convergence tolerance on the star pressure.
const riemannTol = 1e-8

// riemannMaxIter bounds the Newton iteration; the two-rarefaction initial
// guess converges in a handful of steps for all physical inputs.
const riemannMaxIter = 25

// pressureFn evaluates Toro's f_K(p) and its derivative for one side.
func pressureFn(p float64, w Prim, g float64) (fk, dfk float64) {
	a := math.Sqrt(g * w.P / w.Rho)
	if p > w.P { // shock
		ak := 2 / ((g + 1) * w.Rho)
		bk := (g - 1) / (g + 1) * w.P
		q := math.Sqrt(ak / (p + bk))
		fk = (p - w.P) * q
		dfk = q * (1 - (p-w.P)/(2*(p+bk)))
		return fk, dfk
	}
	// rarefaction
	pr := p / w.P
	fk = 2 * a / (g - 1) * (math.Pow(pr, (g-1)/(2*g)) - 1)
	dfk = 1 / (w.Rho * a) * math.Pow(pr, -(g+1)/(2*g))
	return fk, dfk
}

// RiemannStar solves for the star-region pressure and velocity between
// states l and r (normal velocity in U), using a Newton iteration on the
// pressure function with a two-rarefaction initial guess. It returns the
// star pressure, star velocity and the number of iterations used.
func RiemannStar(l, r Prim) (pstar, ustar float64, iters int) {
	g := 0.5 * (l.Gamma() + r.Gamma()) // single-gamma approximation
	al := math.Sqrt(g * l.P / l.Rho)
	ar := math.Sqrt(g * r.P / r.Rho)
	du := r.U - l.U

	// Two-rarefaction initial guess (robust for all pressure ratios).
	z := (g - 1) / (2 * g)
	num := al + ar - 0.5*(g-1)*du
	den := al/math.Pow(l.P, z) + ar/math.Pow(r.P, z)
	p := math.Pow(num/den, 1/z)
	if p < riemannTol {
		p = riemannTol
	}

	for iters = 1; iters <= riemannMaxIter; iters++ {
		fl, dfl := pressureFn(p, l, g)
		fr, dfr := pressureFn(p, r, g)
		f := fl + fr + du
		df := dfl + dfr
		dp := f / df
		pNew := p - dp
		if pNew < riemannTol {
			pNew = riemannTol
		}
		if math.Abs(pNew-p) < riemannTol*(0.5*(pNew+p)) {
			p = pNew
			break
		}
		p = pNew
	}
	fl, _ := pressureFn(p, l, g)
	fr, _ := pressureFn(p, r, g)
	ustar = 0.5*(l.U+r.U) + 0.5*(fr-fl)
	return p, ustar, iters
}

// RiemannSample solves the Riemann problem between l and r and samples the
// self-similar solution on the interface ray x/t = 0, returning the state
// there (with transverse velocity and mass fraction taken from the upwind
// side) and the Newton iteration count.
func RiemannSample(l, r Prim) (Prim, int) {
	g := 0.5 * (l.Gamma() + r.Gamma())
	pstar, ustar, iters := RiemannStar(l, r)

	var w Prim
	if ustar >= 0 {
		w = sampleSide(l, pstar, ustar, g, +1)
		w.V, w.Y = l.V, l.Y
	} else {
		w = sampleSide(r, pstar, ustar, g, -1)
		w.V, w.Y = r.V, r.Y
	}
	return w, iters
}

// sampleSide samples the wave fan on one side of the contact at x/t = 0.
// side = +1 for the left wave (moving left), -1 for the right wave.
func sampleSide(k Prim, pstar, ustar, g float64, side float64) Prim {
	a := math.Sqrt(g * k.P / k.Rho)
	if pstar > k.P {
		// Shock on this side.
		sqrtTerm := math.Sqrt((g+1)/(2*g)*pstar/k.P + (g-1)/(2*g))
		sShock := k.U - side*a*sqrtTerm
		if side*sShock >= 0 {
			return k // ahead of the shock
		}
		rr := pstar / k.P
		gm := (g - 1) / (g + 1)
		rho := k.Rho * (rr + gm) / (gm*rr + 1)
		return Prim{Rho: rho, U: ustar, V: k.V, P: pstar, Y: k.Y}
	}
	// Rarefaction on this side.
	astar := a * math.Pow(pstar/k.P, (g-1)/(2*g))
	sHead := k.U - side*a
	sTail := ustar - side*astar
	switch {
	case side*sHead >= 0:
		return k // ahead of the head
	case side*sTail <= 0:
		rho := k.Rho * math.Pow(pstar/k.P, 1/g)
		return Prim{Rho: rho, U: ustar, V: k.V, P: pstar, Y: k.Y}
	default:
		// Inside the fan: self-similar state at x/t = 0.
		u := (2 / (g + 1)) * (side*a + (g-1)/2*k.U)
		c := (2 / (g + 1)) * (a + side*(g-1)/2*k.U)
		rho := k.Rho * math.Pow(c/a, 2/(g-1))
		p := k.P * math.Pow(c/a, 2*g/(g-1))
		return Prim{Rho: rho, U: u, V: k.V, P: p, Y: k.Y}
	}
}
