package euler

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMixGammaEndpoints(t *testing.T) {
	if g := MixGamma(0); g != GammaAir {
		t.Errorf("MixGamma(0) = %g, want air %g", g, GammaAir)
	}
	if g := MixGamma(1); g != GammaFreon {
		t.Errorf("MixGamma(1) = %g, want Freon %g", g, GammaFreon)
	}
	if g := MixGamma(-0.5); g != GammaAir {
		t.Errorf("MixGamma clamps below: got %g", g)
	}
	if g := MixGamma(2); g != GammaFreon {
		t.Errorf("MixGamma clamps above: got %g", g)
	}
	mid := MixGamma(0.5)
	if mid <= GammaFreon || mid >= GammaAir {
		t.Errorf("MixGamma(0.5) = %g, want strictly between %g and %g", mid, GammaFreon, GammaAir)
	}
}

func TestPrimConsRoundTrip(t *testing.T) {
	states := []Prim{
		{Rho: 1, U: 0, V: 0, P: 1, Y: 0},
		{Rho: 3, U: 0.8, V: -0.2, P: 2.45, Y: 1},
		{Rho: 0.125, U: 0, V: 0, P: 0.1, Y: 0.5},
		{Rho: 5.5, U: -2, V: 3, P: 10, Y: 0.25},
	}
	for _, w := range states {
		got := PrimFromCons(ConsFromPrim(w))
		if !almostEq(got.Rho, w.Rho, 1e-12) || !almostEq(got.U, w.U, 1e-12) ||
			!almostEq(got.V, w.V, 1e-12) || !almostEq(got.P, w.P, 1e-12) ||
			!almostEq(got.Y, w.Y, 1e-12) {
			t.Errorf("round trip %+v -> %+v", w, got)
		}
	}
}

// Property: prim->cons->prim is the identity for physical states.
func TestPropertyPrimConsRoundTrip(t *testing.T) {
	f := func(rho, u, v, p, y float64) bool {
		w := Prim{
			Rho: 0.01 + math.Abs(math.Mod(rho, 100)),
			U:   math.Mod(u, 10),
			V:   math.Mod(v, 10),
			P:   0.01 + math.Abs(math.Mod(p, 100)),
			Y:   math.Abs(math.Mod(y, 1)),
		}
		got := PrimFromCons(ConsFromPrim(w))
		return almostEq(got.Rho, w.Rho, 1e-10) && almostEq(got.P, w.P, 1e-10) &&
			almostEq(got.U, w.U, 1e-10) && almostEq(got.Y, w.Y, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrimFromConsFloorsVacuum(t *testing.T) {
	w := PrimFromCons(Cons{0, 0, 0, 0, 0})
	if w.Rho <= 0 || w.P <= 0 {
		t.Errorf("vacuum state not floored: %+v", w)
	}
	if math.IsNaN(w.U) {
		t.Error("vacuum produced NaN velocity")
	}
}

func TestRotateRoundTrip(t *testing.T) {
	u := Cons{1, 2, 3, 4, 5}
	if got := unrotate(rotate(u, Y), Y); got != u {
		t.Errorf("rotate/unrotate Y = %v", got)
	}
	if got := rotate(u, X); got != u {
		t.Errorf("rotate X should be identity, got %v", got)
	}
	r := rotate(u, Y)
	if r[IMx] != 3 || r[IMy] != 2 {
		t.Errorf("rotate Y swapped wrong: %v", r)
	}
}

func TestPostShockAirRankineHugoniot(t *testing.T) {
	w := PostShockAir(1.5)
	// Canonical M=1.5 air values.
	if !almostEq(w.P, 2.4583333, 1e-6) {
		t.Errorf("post-shock pressure = %g, want 2.45833", w.P)
	}
	if !almostEq(w.Rho, 1.8620690, 1e-6) {
		t.Errorf("post-shock density = %g, want 1.86207", w.Rho)
	}
	if w.U <= 0 {
		t.Errorf("post-shock velocity %g must push toward the interface", w.U)
	}
	// RH mass flux consistency in the shock frame.
	ws := 1.5 * math.Sqrt(GammaAir) // shock speed into quiescent air
	m1 := 1.0 * ws
	m2 := w.Rho * (ws - w.U)
	if !almostEq(m1, m2, 1e-9) {
		t.Errorf("mass flux mismatch across shock: %g vs %g", m1, m2)
	}
}

func TestKFVSConsistency(t *testing.T) {
	// F+(w) + F-(w) must equal the exact physical flux for any state.
	states := []Prim{
		{Rho: 1, U: 0, V: 0, P: 1, Y: 0},
		{Rho: 1.86, U: 0.82, V: 0.1, P: 2.46, Y: 0},
		{Rho: 3, U: -1.5, V: 0.7, P: 0.9, Y: 1},
		{Rho: 0.2, U: 4, V: 0, P: 0.3, Y: 0.4},
	}
	for _, w := range states {
		plus := kfvsSplit(w, +1)
		minus := kfvsSplit(w, -1)
		exact := PhysFlux(w)
		for v := 0; v < NVars; v++ {
			if !almostEq(plus[v]+minus[v], exact[v], 1e-10) {
				t.Errorf("state %+v var %d: split %g+%g != exact %g",
					w, v, plus[v], minus[v], exact[v])
			}
		}
	}
}

// Property: KFVS split consistency over random physical states.
func TestPropertyKFVSConsistency(t *testing.T) {
	f := func(rho, u, p, y float64) bool {
		w := Prim{
			Rho: 0.05 + math.Abs(math.Mod(rho, 20)),
			U:   math.Mod(u, 5),
			V:   0.3,
			P:   0.05 + math.Abs(math.Mod(p, 20)),
			Y:   math.Abs(math.Mod(y, 1)),
		}
		plus := kfvsSplit(w, +1)
		minus := kfvsSplit(w, -1)
		exact := PhysFlux(w)
		for v := 0; v < NVars; v++ {
			if !almostEq(plus[v]+minus[v], exact[v], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRiemannSodProblem(t *testing.T) {
	// Sod's shock tube with gamma=1.4 on both sides (Y=0): the star values
	// are tabulated in Toro: p* = 0.30313, u* = 0.92745.
	l := Prim{Rho: 1, U: 0, V: 0, P: 1, Y: 0}
	r := Prim{Rho: 0.125, U: 0, V: 0, P: 0.1, Y: 0}
	pstar, ustar, iters := RiemannStar(l, r)
	if !almostEq(pstar, 0.30313, 2e-4) {
		t.Errorf("Sod p* = %g, want 0.30313", pstar)
	}
	if !almostEq(ustar, 0.92745, 2e-4) {
		t.Errorf("Sod u* = %g, want 0.92745", ustar)
	}
	if iters < 2 || iters > riemannMaxIter {
		t.Errorf("Sod Newton iterations = %d, implausible", iters)
	}
}

func TestRiemannTwoShock(t *testing.T) {
	// Colliding streams produce two shocks: p* greater than both inputs.
	l := Prim{Rho: 1, U: 2, V: 0, P: 1, Y: 0}
	r := Prim{Rho: 1, U: -2, V: 0, P: 1, Y: 0}
	pstar, ustar, _ := RiemannStar(l, r)
	if pstar <= 1 {
		t.Errorf("two-shock p* = %g, want > 1", pstar)
	}
	if !almostEq(ustar, 0, 1e-9) {
		t.Errorf("symmetric collision u* = %g, want 0", ustar)
	}
}

func TestRiemannTwoRarefaction(t *testing.T) {
	// Receding streams produce two rarefactions: p* below both inputs.
	l := Prim{Rho: 1, U: -0.5, V: 0, P: 1, Y: 0}
	r := Prim{Rho: 1, U: 0.5, V: 0, P: 1, Y: 0}
	pstar, ustar, _ := RiemannStar(l, r)
	if pstar >= 1 {
		t.Errorf("two-rarefaction p* = %g, want < 1", pstar)
	}
	if !almostEq(ustar, 0, 1e-9) {
		t.Errorf("symmetric expansion u* = %g, want 0", ustar)
	}
}

func TestRiemannIdenticalStates(t *testing.T) {
	w := Prim{Rho: 2, U: 0.3, V: 0.1, P: 1.7, Y: 0.5}
	pstar, ustar, _ := RiemannStar(w, w)
	if !almostEq(pstar, w.P, 1e-7) || !almostEq(ustar, w.U, 1e-7) {
		t.Errorf("identical states: p*=%g u*=%g, want %g/%g", pstar, ustar, w.P, w.U)
	}
	sampled, _ := RiemannSample(w, w)
	if !almostEq(sampled.Rho, w.Rho, 1e-6) || !almostEq(sampled.P, w.P, 1e-6) {
		t.Errorf("sampling identical states returned %+v", sampled)
	}
}

func TestRiemannSampleUpwindsPassives(t *testing.T) {
	l := Prim{Rho: 1, U: 1, V: 0.7, P: 1, Y: 0.9} // flow moving right
	r := Prim{Rho: 1, U: 1, V: -0.3, P: 1, Y: 0.1}
	w, _ := RiemannSample(l, r)
	if w.V != l.V || w.Y != l.Y {
		t.Errorf("right-moving contact should carry left passives, got V=%g Y=%g", w.V, w.Y)
	}
	l2 := Prim{Rho: 1, U: -1, V: 0.7, P: 1, Y: 0.9}
	r2 := Prim{Rho: 1, U: -1, V: -0.3, P: 1, Y: 0.1}
	w2, _ := RiemannSample(l2, r2)
	if w2.V != r2.V || w2.Y != r2.Y {
		t.Errorf("left-moving contact should carry right passives, got V=%g Y=%g", w2.V, w2.Y)
	}
}

// Property: the Godunov interface flux between identical states equals the
// physical flux (consistency), for random physical states.
func TestPropertyGodunovConsistency(t *testing.T) {
	f := func(rho, u, p float64) bool {
		w := Prim{
			Rho: 0.05 + math.Abs(math.Mod(rho, 20)),
			U:   math.Mod(u, 3),
			V:   0.1,
			P:   0.05 + math.Abs(math.Mod(p, 20)),
			Y:   0,
		}
		s, _ := RiemannSample(w, w)
		got := PhysFlux(s)
		want := PhysFlux(w)
		for v := 0; v < NVars; v++ {
			if !almostEq(got[v], want[v], 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMinmod(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{1, 2, 1}, {2, 1, 1}, {-1, -3, -1}, {-3, -1, -1},
		{1, -1, 0}, {-1, 1, 0}, {0, 5, 0}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := minmod(c.a, c.b); got != c.want {
			t.Errorf("minmod(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestBlockIndexingAndAccessors(t *testing.T) {
	b := NewBlock(nil, 4, 3, 2)
	if b.Stride != 8 || b.Cells() != 12 {
		t.Fatalf("block geometry stride=%d cells=%d", b.Stride, b.Cells())
	}
	w := Prim{Rho: 2, U: 1, V: -1, P: 3, Y: 0.5}
	b.SetPrim(-2, -2, w) // corner ghost
	b.SetPrim(3, 2, w)   // last interior
	got := b.PrimAt(3, 2)
	if !almostEq(got.Rho, 2, 1e-12) || !almostEq(got.P, 3, 1e-12) {
		t.Errorf("PrimAt round trip: %+v", got)
	}
}

func TestBlockInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBlock(0,..) did not panic")
		}
	}()
	NewBlock(nil, 0, 3, 2)
}

func TestCopyFromAndClone(t *testing.T) {
	a := NewBlock(nil, 3, 3, 2)
	a.SetPrim(1, 1, Prim{Rho: 9, U: 0, V: 0, P: 9, Y: 0})
	b := a.Clone(nil)
	if got := b.PrimAt(1, 1); !almostEq(got.Rho, 9, 1e-12) {
		t.Errorf("clone content %+v", got)
	}
	c := NewBlock(nil, 4, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched geometry did not panic")
		}
	}()
	c.CopyFrom(a)
}

func TestFillBoundaryReflection(t *testing.T) {
	b := NewBlock(nil, 4, 4, 2)
	pr := DefaultShockInterface()
	pr.InitBlock(b, 0, 0, pr.Lx/4, pr.Ly/4)
	// Inject vertical momentum near the bottom wall.
	u := b.At(1, 0)
	u[IMy] = 0.5
	b.Set(1, 0, u)
	b.FillBoundary(true, true, true, true)
	g := b.At(1, -1)
	if g[IMy] != -0.5 {
		t.Errorf("bottom wall ghost IMy = %g, want -0.5 (reflection)", g[IMy])
	}
	if g[IRho] != u[IRho] {
		t.Errorf("bottom wall ghost density %g, want %g", g[IRho], u[IRho])
	}
	// Transmissive sides copy the edge cell.
	edge := b.At(0, 2)
	ghost := b.At(-2, 2)
	if ghost != edge {
		t.Errorf("left ghost %v != edge %v", ghost, edge)
	}
}

func TestStatesReconstructionConstantField(t *testing.T) {
	// A constant field must reconstruct to exactly itself on every face.
	b := NewBlock(nil, 8, 6, 2)
	w := Prim{Rho: 1.5, U: 0.2, V: -0.1, P: 2, Y: 0.3}
	for j := -2; j < b.Ny+2; j++ {
		for i := -2; i < b.Nx+2; i++ {
			b.SetPrim(i, j, w)
		}
	}
	for _, dir := range []Dir{X, Y} {
		qL := NewEdgeField(nil, b.Nx, b.Ny, dir)
		qR := NewEdgeField(nil, b.Nx, b.Ny, dir)
		States(nil, b, dir, qL, qR)
		want := ConsFromPrim(w)
		for k := 0; k < qL.Len(); k++ {
			for v := 0; v < NVars; v++ {
				if !almostEq(qL.Q[v][k], want[v], 1e-12) || !almostEq(qR.Q[v][k], want[v], 1e-12) {
					t.Fatalf("dir %v face %d var %d: qL=%g qR=%g want %g",
						dir, k, v, qL.Q[v][k], qR.Q[v][k], want[v])
				}
			}
		}
	}
}

func TestStatesLinearFieldExactInX(t *testing.T) {
	// Minmod reproduces linear data exactly away from extrema: face states
	// from both sides must agree on a linear profile.
	b := NewBlock(nil, 8, 4, 2)
	for j := -2; j < b.Ny+2; j++ {
		for i := -2; i < b.Nx+2; i++ {
			val := 2 + 0.1*float64(i)
			b.Set(i, j, Cons{val, 0, 0, 10 + val, 0})
		}
	}
	qL := NewEdgeField(nil, b.Nx, b.Ny, X)
	qR := NewEdgeField(nil, b.Nx, b.Ny, X)
	States(nil, b, X, qL, qR)
	for j := 0; j < b.Ny; j++ {
		for f := 0; f <= b.Nx; f++ {
			k := qL.FaceIdx(f, j)
			want := 2 + 0.1*(float64(f)-0.5)
			if !almostEq(qL.Q[IRho][k], want, 1e-12) {
				t.Fatalf("face %d qL rho = %g, want %g", f, qL.Q[IRho][k], want)
			}
			if !almostEq(qL.Q[IRho][k], qR.Q[IRho][k], 1e-12) {
				t.Fatalf("face %d: linear data should give qL == qR", f)
			}
		}
	}
}

// Property: minmod reconstruction never creates values outside the range of
// the two adjacent cells (a TVD-type bound).
func TestPropertyStatesBounded(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 4 {
			return true
		}
		b := NewBlock(nil, 6, 1, 2)
		for i := -2; i < 8; i++ {
			v := vals[(i+2)%len(vals)]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = math.Mod(v, 1000)
			b.Set(i, 0, Cons{v, 0, 0, 1, 0})
		}
		qL := NewEdgeField(nil, 6, 1, X)
		qR := NewEdgeField(nil, 6, 1, X)
		States(nil, b, X, qL, qR)
		for fc := 0; fc <= 6; fc++ {
			k := qL.FaceIdx(fc, 0)
			lo := math.Min(b.At(fc-1, 0)[IRho], b.At(fc, 0)[IRho])
			hi := math.Max(b.At(fc-1, 0)[IRho], b.At(fc, 0)[IRho])
			if qL.Q[IRho][k] < lo-1e-9 || qL.Q[IRho][k] > hi+1e-9 {
				return false
			}
			if qR.Q[IRho][k] < lo-1e-9 || qR.Q[IRho][k] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStatesNeedsGhostsPanics(t *testing.T) {
	b := NewBlock(nil, 4, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("States with 1 ghost layer did not panic")
		}
	}()
	States(nil, b, X, NewEdgeField(nil, 4, 4, X), NewEdgeField(nil, 4, 4, X))
}

func TestEdgeFieldLayoutStrides(t *testing.T) {
	ex := NewEdgeField(nil, 4, 3, X)
	if ex.Len() != 15 {
		t.Errorf("X faces = %d, want (4+1)*3", ex.Len())
	}
	if ex.FaceIdx(1, 0)-ex.FaceIdx(0, 0) != 1 {
		t.Error("X faces must be contiguous along the sweep")
	}
	ey := NewEdgeField(nil, 4, 3, Y)
	if ey.Len() != 16 {
		t.Errorf("Y faces = %d, want 4*(3+1)", ey.Len())
	}
	if ey.FaceIdx(1, 0)-ey.FaceIdx(0, 0) != 4 {
		t.Error("Y faces must stride one row per step along the sweep")
	}
}
