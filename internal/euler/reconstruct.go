package euler

import (
	"fmt"

	"repro/internal/platform"
)

// EdgeField stores one value per cell interface for each conserved
// variable, in the same row-major orientation as the owning Block. X-face
// fields are written sequentially; Y-face fields are written with a stride
// of one row — which is why the paper's States/Flux components show two
// distinct operating modes.
type EdgeField struct {
	// Dir is the sweep direction the faces are normal to.
	Dir Dir
	// NxCells, NyCells are the interior cell extents of the owning block.
	NxCells, NyCells int
	// Q holds one plane per conserved variable; X faces have
	// (Nx+1)*Ny entries, Y faces Nx*(Ny+1).
	Q [NVars][]float64
	// Iters optionally counts per-face nonlinear-solver iterations
	// (Godunov); it shares the faces' layout and is nil otherwise.
	addr [NVars]uint64
}

// NewEdgeField allocates the face storage for a block of nx-by-ny cells.
func NewEdgeField(proc *platform.Proc, nx, ny int, dir Dir) *EdgeField {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("euler: invalid edge field geometry %dx%d", nx, ny))
	}
	e := &EdgeField{Dir: dir, NxCells: nx, NyCells: ny}
	n := e.Len()
	for v := 0; v < NVars; v++ {
		e.Q[v] = make([]float64, n)
		if proc != nil {
			e.addr[v] = proc.Alloc(8 * n)
		}
	}
	return e
}

// Len returns the number of faces.
func (e *EdgeField) Len() int {
	if e.Dir == X {
		return (e.NxCells + 1) * e.NyCells
	}
	return e.NxCells * (e.NyCells + 1)
}

// FaceIdx returns the flat index of face f along the sweep at transverse
// position t: for X fields, face (f, j=t) between cells (f-1, j) and (f, j);
// for Y fields, face (i=t, f) between cells (i, f-1) and (i, f).
func (e *EdgeField) FaceIdx(f, t int) int {
	if e.Dir == X {
		return t*(e.NxCells+1) + f
	}
	return f*e.NxCells + t
}

// AtFace returns the state vector stored at face (f, t).
func (e *EdgeField) AtFace(f, t int) Cons {
	k := e.FaceIdx(f, t)
	var u Cons
	for v := 0; v < NVars; v++ {
		u[v] = e.Q[v][k]
	}
	return u
}

// setFace stores a state vector at face (f, t).
func (e *EdgeField) setFace(f, t int, u Cons) {
	k := e.FaceIdx(f, t)
	for v := 0; v < NVars; v++ {
		e.Q[v][k] = u[v]
	}
}

// chargeSweep charges one directional pass over plane v of the face field
// (plane-major; used where interleaving does not matter).
func (e *EdgeField) chargeSweep(proc *platform.Proc, v int) {
	if proc == nil || e.addr[v] == 0 {
		return
	}
	if e.Dir == X {
		for j := 0; j < e.NyCells; j++ {
			e.chargeLineSegment(proc, v, j, false)
		}
	} else {
		for i := 0; i < e.NxCells; i++ {
			e.chargeLineSegment(proc, v, i, false)
		}
	}
}

// chargeLineSegment charges one row (X fields) or one column (Y fields) of
// plane v at transverse index t.
func (e *EdgeField) chargeLineSegment(proc *platform.Proc, v, t int, overlapped bool) {
	if proc == nil || e.addr[v] == 0 {
		return
	}
	if e.Dir == X {
		proc.ChargeStreamHinted(e.addr[v]+uint64(8*e.FaceIdx(0, t)), e.NxCells+1, 8, overlapped)
		return
	}
	proc.ChargeStreamHinted(e.addr[v]+uint64(8*e.FaceIdx(0, t)), e.NyCells+1, 8*e.NxCells, overlapped)
}

// minmod is the slope limiter used by the MUSCL reconstruction.
func minmod(a, b float64) float64 {
	if a > 0 && b > 0 {
		if a < b {
			return a
		}
		return b
	}
	if a < 0 && b < 0 {
		if a > b {
			return a
		}
		return b
	}
	return 0
}

// statesFlops is the floating-point work per cell of one States sweep
// (slope differences, limiter branches and extrapolation over NVars
// planes, costed as PAPI would count them).
const statesFlops = 9 * NVars

// States performs the paper's States computation: a second-order MUSCL
// reconstruction of left/right interface states along dir, reading the
// block (sequentially for X, strided for Y) and writing qL and qR in the
// same access pattern. The block needs at least 2 ghost layers.
func States(proc *platform.Proc, b *Block, dir Dir, qL, qR *EdgeField) {
	if b.Ng < 2 {
		panic("euler: States needs >= 2 ghost layers")
	}
	if qL.Dir != dir || qR.Dir != dir || qL.NxCells != b.Nx || qL.NyCells != b.Ny ||
		qR.NxCells != b.Nx || qR.NyCells != b.Ny {
		panic("euler: States edge-field geometry mismatch")
	}
	if dir == X {
		for j := 0; j < b.Ny; j++ {
			for f := 0; f <= b.Nx; f++ {
				reconstructFace(b, dir, f, j, qL, qR)
			}
		}
	} else {
		for i := 0; i < b.Nx; i++ {
			for f := 0; f <= b.Ny; f++ {
				reconstructFace(b, dir, f, i, qL, qR)
			}
		}
	}
	// Account the work: one read sweep per input plane and one write sweep
	// per output plane, interleaved per row/column exactly as the stencil
	// walks them — the interleaving determines whether a strided pass's
	// working set (all planes of one column) still fits the cache, which
	// is what separates tall from wide patches in Figs. 4/5.
	chargeStatesPass(proc, b, dir, qL, qR)
	if proc != nil {
		proc.ChargeFlops(statesFlops * b.Cells())
	}
}

// chargeStatesPass charges the memory traffic of one States sweep with
// per-line (row or column) interleaving across all planes.
func chargeStatesPass(proc *platform.Proc, b *Block, dir Dir, qL, qR *EdgeField) {
	if proc == nil {
		return
	}
	if dir == X {
		for j := 0; j < b.Ny; j++ {
			for v := 0; v < NVars; v++ {
				b.chargeRowSegment(proc, v, -1, j, b.Nx+2)
				qL.chargeLineSegment(proc, v, j, false)
				qR.chargeLineSegment(proc, v, j, false)
			}
		}
		return
	}
	for i := 0; i < b.Nx; i++ {
		for v := 0; v < NVars; v++ {
			b.chargeColSegment(proc, v, i, -1, b.Ny+2)
			qL.chargeLineSegment(proc, v, i, false)
			qR.chargeLineSegment(proc, v, i, false)
		}
	}
}

// reconstructFace computes the limited left/right states at face f along
// dir at transverse index t.
func reconstructFace(b *Block, dir Dir, f, t int, qL, qR *EdgeField) {
	var um2, um1, u0, up1 Cons
	if dir == X {
		um2, um1 = b.At(f-2, t), b.At(f-1, t)
		u0, up1 = b.At(f, t), b.At(f+1, t)
	} else {
		um2, um1 = b.At(t, f-2), b.At(t, f-1)
		u0, up1 = b.At(t, f), b.At(t, f+1)
	}
	var l, r Cons
	for v := 0; v < NVars; v++ {
		l[v] = um1[v] + 0.5*minmod(um1[v]-um2[v], u0[v]-um1[v])
		r[v] = u0[v] - 0.5*minmod(u0[v]-um1[v], up1[v]-u0[v])
	}
	qL.setFace(f, t, l)
	qR.setFace(f, t, r)
}
