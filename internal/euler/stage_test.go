package euler

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/platform"
)

// sodBlock builds a 1D-ish Sod shock tube along x.
func sodBlock(nx int) *Block {
	b := NewBlock(nil, nx, 4, 2)
	for j := -2; j < b.Ny+2; j++ {
		for i := -2; i < b.Nx+2; i++ {
			if i < nx/2 {
				b.SetPrim(i, j, Prim{Rho: 1, U: 0, V: 0, P: 1, Y: 0})
			} else {
				b.SetPrim(i, j, Prim{Rho: 0.125, U: 0, V: 0, P: 0.1, Y: 0})
			}
		}
	}
	return b
}

// advance runs n forward-Euler steps of the full kernel pipeline.
func advance(b *Block, n int, kernel FluxKernel) {
	dx := 1.0 / float64(b.Nx)
	dy := dx
	for s := 0; s < n; s++ {
		b.FillBoundary(true, true, true, true)
		dt := CFLTimeStep(0.4, dx, dy, b.MaxWaveSpeed())
		qLX := NewEdgeField(nil, b.Nx, b.Ny, X)
		qRX := NewEdgeField(nil, b.Nx, b.Ny, X)
		States(nil, b, X, qLX, qRX)
		fx := NewEdgeField(nil, b.Nx, b.Ny, X)
		kernel(nil, qLX, qRX, fx)
		qLY := NewEdgeField(nil, b.Nx, b.Ny, Y)
		qRY := NewEdgeField(nil, b.Nx, b.Ny, Y)
		States(nil, b, Y, qLY, qRY)
		fy := NewEdgeField(nil, b.Nx, b.Ny, Y)
		kernel(nil, qLY, qRY, fy)
		ApplyFluxes(nil, b, b, fx, fy, dt, dx, dy)
	}
}

func checkSodSolution(t *testing.T, b *Block, name string) {
	t.Helper()
	// After some steps the solution must stay positive, bounded, and
	// monotone-ish: density within [0.125, 1], a right-moving shock.
	minRho, maxRho := math.Inf(1), math.Inf(-1)
	for i := 0; i < b.Nx; i++ {
		w := b.PrimAt(i, 1)
		if w.Rho < minRho {
			minRho = w.Rho
		}
		if w.Rho > maxRho {
			maxRho = w.Rho
		}
		if w.P <= 0 || w.Rho <= 0 {
			t.Fatalf("%s: non-physical state at %d: %+v", name, i, w)
		}
	}
	if minRho < 0.124 || maxRho > 1.001 {
		t.Errorf("%s: density out of Sod bounds: [%g, %g]", name, minRho, maxRho)
	}
	// The left end should still be (1, 1) and the right end (0.125, 0.1).
	lw := b.PrimAt(0, 1)
	rw := b.PrimAt(b.Nx-1, 1)
	if !almostEq(lw.Rho, 1, 1e-6) || !almostEq(rw.Rho, 0.125, 1e-6) {
		t.Errorf("%s: end states disturbed: left %+v right %+v", name, lw, rw)
	}
	// Mid-tube density must have left its initial discontinuity: an
	// intermediate plateau exists.
	found := false
	for i := 0; i < b.Nx; i++ {
		w := b.PrimAt(i, 1)
		if w.Rho > 0.2 && w.Rho < 0.9 {
			found = true
		}
	}
	if !found {
		t.Errorf("%s: no intermediate density plateau; solver not evolving", name)
	}
}

func TestSodEvolutionGodunov(t *testing.T) {
	b := sodBlock(64)
	advance(b, 20, GodunovKernel)
	checkSodSolution(t, b, "godunov")
}

func TestSodEvolutionEFM(t *testing.T) {
	b := sodBlock(64)
	advance(b, 20, EFMKernel)
	checkSodSolution(t, b, "efm")
}

func TestGodunovAndEFMAgreeQualitatively(t *testing.T) {
	bg := sodBlock(64)
	be := sodBlock(64)
	advance(bg, 15, GodunovKernel)
	advance(be, 15, EFMKernel)
	var diff, norm float64
	for i := 0; i < bg.Nx; i++ {
		d := bg.PrimAt(i, 1).Rho - be.PrimAt(i, 1).Rho
		diff += d * d
		norm += bg.PrimAt(i, 1).Rho * bg.PrimAt(i, 1).Rho
	}
	rel := math.Sqrt(diff / norm)
	if rel > 0.08 {
		t.Errorf("Godunov and EFM diverge: relative L2 difference %g", rel)
	}
	if rel == 0 {
		t.Error("identical solutions; the two flux kernels are not distinct")
	}
}

func TestConservationOfMassNoBoundaryFlow(t *testing.T) {
	// Uniform axial flow (no wall-normal velocity, so the reflecting walls
	// are no-ops): zero divergence, mass constant, state untouched.
	b := NewBlock(nil, 16, 8, 2)
	w := Prim{Rho: 1.3, U: 0.4, V: 0, P: 1.1, Y: 0.5}
	for j := -2; j < b.Ny+2; j++ {
		for i := -2; i < b.Nx+2; i++ {
			b.SetPrim(i, j, w)
		}
	}
	before := totalMass(b)
	advance(b, 5, GodunovKernel)
	// Uniform flow stays uniform (fluxes cancel), so mass is conserved and
	// the state unchanged.
	after := totalMass(b)
	if !almostEq(before, after, 1e-10) {
		t.Errorf("mass changed in uniform flow: %g -> %g", before, after)
	}
	got := b.PrimAt(7, 3)
	if !almostEq(got.Rho, w.Rho, 1e-9) || !almostEq(got.U, w.U, 1e-9) {
		t.Errorf("uniform flow disturbed: %+v", got)
	}
}

func totalMass(b *Block) float64 {
	var m float64
	for j := 0; j < b.Ny; j++ {
		for i := 0; i < b.Nx; i++ {
			m += b.At(i, j)[IRho]
		}
	}
	return m
}

func TestXYSymmetry(t *testing.T) {
	// A Sod tube along y must evolve exactly like one along x, transposed.
	nx := 32
	bx := sodBlock(nx)
	by := NewBlock(nil, 4, nx, 2)
	for j := -2; j < by.Ny+2; j++ {
		for i := -2; i < by.Nx+2; i++ {
			if j < nx/2 {
				by.SetPrim(i, j, Prim{Rho: 1, U: 0, V: 0, P: 1, Y: 0})
			} else {
				by.SetPrim(i, j, Prim{Rho: 0.125, U: 0, V: 0, P: 0.1, Y: 0})
			}
		}
	}
	// For the transposed run, x must be the wall direction: swap BC roles by
	// using the same transmissive treatment on all sides (open box).
	dxx := 1.0 / float64(nx)
	for s := 0; s < 10; s++ {
		bx.FillBoundary(true, true, true, true)
		by.FillBoundary(true, true, true, true)
		dt := CFLTimeStep(0.4, dxx, dxx, bx.MaxWaveSpeed())
		stepOnce(bx, dt, dxx)
		stepOnce(by, dt, dxx)
	}
	for i := 0; i < nx; i++ {
		wx := bx.PrimAt(i, 1)
		wy := by.PrimAt(1, i)
		if !almostEq(wx.Rho, wy.Rho, 1e-9) {
			t.Fatalf("transpose symmetry broken at %d: %g vs %g", i, wx.Rho, wy.Rho)
		}
		if !almostEq(wx.U, wy.V, 1e-9) {
			t.Fatalf("velocity mapping broken at %d: u=%g vs v=%g", i, wx.U, wy.V)
		}
	}
}

func stepOnce(b *Block, dt, dx float64) {
	qLX := NewEdgeField(nil, b.Nx, b.Ny, X)
	qRX := NewEdgeField(nil, b.Nx, b.Ny, X)
	States(nil, b, X, qLX, qRX)
	fx := NewEdgeField(nil, b.Nx, b.Ny, X)
	GodunovFlux(nil, qLX, qRX, fx)
	qLY := NewEdgeField(nil, b.Nx, b.Ny, Y)
	qRY := NewEdgeField(nil, b.Nx, b.Ny, Y)
	States(nil, b, Y, qLY, qRY)
	fy := NewEdgeField(nil, b.Nx, b.Ny, Y)
	GodunovFlux(nil, qLY, qRY, fy)
	ApplyFluxes(nil, b, b, fx, fy, dt, dx, dx)
}

func TestCFLTimeStep(t *testing.T) {
	if dt := CFLTimeStep(0.5, 0.1, 0.2, 2); dt != 0.025 {
		t.Errorf("dt = %g, want 0.025", dt)
	}
	if dt := CFLTimeStep(0.5, 0.1, 0.1, 0); !math.IsInf(dt, 1) {
		t.Errorf("zero wave speed should give +Inf dt, got %g", dt)
	}
}

func TestMaxWaveSpeedQuiescent(t *testing.T) {
	b := NewBlock(nil, 4, 4, 2)
	for j := -2; j < 6; j++ {
		for i := -2; i < 6; i++ {
			b.SetPrim(i, j, AheadAir())
		}
	}
	want := math.Sqrt(GammaAir) // |u|+c with u=0
	if got := b.MaxWaveSpeed(); !almostEq(got, want, 1e-12) {
		t.Errorf("MaxWaveSpeed = %g, want %g", got, want)
	}
}

func TestShockInterfaceInit(t *testing.T) {
	pr := DefaultShockInterface()
	b := NewBlock(nil, 64, 16, 2)
	pr.InitBlock(b, 0, 0, pr.Lx/64, pr.Ly/16)
	// Left of shock: post-shock air moving right.
	w := b.PrimAt(2, 8)
	if w.U <= 0 || w.P <= 1 {
		t.Errorf("post-shock region wrong: %+v", w)
	}
	// Between shock and interface: quiescent air.
	w = b.PrimAt(20, 8)
	if !almostEq(w.Rho, 1, 1e-12) || !almostEq(w.P, 1, 1e-12) || w.Y != 0 {
		t.Errorf("pre-shock air wrong: %+v", w)
	}
	// Far right: Freon.
	w = b.PrimAt(60, 8)
	if !almostEq(w.Rho, pr.DensityRatio, 1e-12) || w.Y != 1 {
		t.Errorf("Freon region wrong: %+v", w)
	}
	// The interface must actually be perturbed: its x-position differs
	// between two heights.
	if pr.interfaceAt(0) == pr.interfaceAt(pr.Ly/4) {
		t.Error("interface not perturbed")
	}
}

func TestGradientIndicatorFlagsInterface(t *testing.T) {
	pr := DefaultShockInterface()
	b := NewBlock(nil, 64, 16, 2)
	pr.InitBlock(b, 0, 0, pr.Lx/64, pr.Ly/16)
	// Quiescent mid-air region: indicator ~ 0.
	if ind := GradientIndicator(b, 20, 8); ind > 1e-12 {
		t.Errorf("smooth region indicator = %g, want 0", ind)
	}
	// Find the largest indicator along the row; it must be significant
	// (shock or interface).
	maxInd := 0.0
	for i := 1; i < 63; i++ {
		if ind := GradientIndicator(b, i, 8); ind > maxInd {
			maxInd = ind
		}
	}
	if maxInd < 0.5 {
		t.Errorf("no cell flagged near discontinuities: max indicator %g", maxInd)
	}
}

func TestShockInterfaceEvolves(t *testing.T) {
	pr := DefaultShockInterface()
	nx, ny := 64, 16
	b := NewBlock(nil, nx, ny, 2)
	pr.InitBlock(b, 0, 0, pr.Lx/float64(nx), pr.Ly/float64(ny))
	dx := pr.Lx / float64(nx)
	dy := pr.Ly / float64(ny)
	for s := 0; s < 20; s++ {
		b.FillBoundary(true, true, true, true)
		dt := CFLTimeStep(0.4, dx, dy, b.MaxWaveSpeed())
		stepOnce(b, dt, dx) // dy==dx not true here; use full call
		_ = dy
	}
	// All states remain physical and the shock has moved: the pressure
	// max has advanced past the initial shock position.
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			w := b.PrimAt(i, j)
			if w.P <= 0 || w.Rho <= 0 || math.IsNaN(w.P) {
				t.Fatalf("non-physical state at (%d,%d): %+v", i, j, w)
			}
		}
	}
	// Pressure jump location: find rightmost cell with p > 1.5.
	shockCell := 0
	for i := 0; i < nx; i++ {
		if b.PrimAt(i, 8).P > 1.5 {
			shockCell = i
		}
	}
	initialCell := int(pr.ShockX / dx)
	if shockCell <= initialCell {
		t.Errorf("shock did not advance: cell %d vs initial %d", shockCell, initialCell)
	}
}

// Virtual-cost behaviour: the same kernel on the same data must cost more
// virtual time in strided (Y) mode than sequential (X) mode for blocks that
// overflow the cache — the Fig. 4 mechanism end to end.
func TestStatesChargingSeqVsStrided(t *testing.T) {
	run := func(dir Dir) float64 {
		proc := platform.NewProc(0, platform.XeonModel(), cache.XeonL2(), 1)
		b := NewBlock(proc, 384, 384, 2) // ~1.2 MB per plane: exceeds 512 kB
		pr := DefaultShockInterface()
		pr.InitBlock(b, 0, 0, pr.Lx/384, pr.Ly/384)
		qL := NewEdgeField(proc, b.Nx, b.Ny, dir)
		qR := NewEdgeField(proc, b.Nx, b.Ny, dir)
		t0 := proc.Now()
		States(proc, b, dir, qL, qR)
		return proc.Now() - t0
	}
	seq := run(X)
	str := run(Y)
	if str <= seq {
		t.Errorf("strided States (%g us) not slower than sequential (%g us)", str, seq)
	}
	if ratio := str / seq; ratio < 1.5 {
		t.Errorf("strided/sequential ratio = %g, want >= 1.5 for out-of-cache block", ratio)
	}
}

func TestSmallBlockModesComparable(t *testing.T) {
	// Cache-resident block: the two modes should cost nearly the same
	// (paper Fig. 4, small arrays).
	run := func(dir Dir) float64 {
		proc := platform.NewProc(0, platform.XeonModel(), cache.XeonL2(), 1)
		b := NewBlock(proc, 48, 48, 2) // ~18 kB per plane
		pr := DefaultShockInterface()
		pr.InitBlock(b, 0, 0, pr.Lx/48, pr.Ly/48)
		qL := NewEdgeField(proc, b.Nx, b.Ny, dir)
		qR := NewEdgeField(proc, b.Nx, b.Ny, dir)
		// Warm pass, then measure the steady-state pass.
		States(proc, b, dir, qL, qR)
		t0 := proc.Now()
		States(proc, b, dir, qL, qR)
		return proc.Now() - t0
	}
	seq := run(X)
	str := run(Y)
	if ratio := str / seq; ratio > 1.4 {
		t.Errorf("cache-resident ratio = %g, want ~1", ratio)
	}
}

func TestGodunovCostsMoreThanEFM(t *testing.T) {
	mk := func() (*platform.Proc, *EdgeField, *EdgeField, *EdgeField) {
		proc := platform.NewProc(0, platform.XeonModel(), cache.XeonL2(), 1)
		b := NewBlock(proc, 128, 128, 2)
		pr := DefaultShockInterface()
		pr.InitBlock(b, 0, 0, pr.Lx/128, pr.Ly/128)
		qL := NewEdgeField(proc, b.Nx, b.Ny, X)
		qR := NewEdgeField(proc, b.Nx, b.Ny, X)
		States(proc, b, X, qL, qR)
		f := NewEdgeField(proc, b.Nx, b.Ny, X)
		return proc, qL, qR, f
	}
	procG, qL, qR, f := mk()
	t0 := procG.Now()
	iters := GodunovFlux(procG, qL, qR, f)
	gTime := procG.Now() - t0
	if iters <= 0 {
		t.Fatal("Godunov reported no Newton iterations")
	}
	procE, qL2, qR2, f2 := mk()
	t0 = procE.Now()
	EFMFlux(procE, qL2, qR2, f2)
	eTime := procE.Now() - t0
	if gTime <= eTime {
		t.Errorf("GodunovFlux (%g us) not more expensive than EFMFlux (%g us)", gTime, eTime)
	}
}

func TestAverageBlendsStates(t *testing.T) {
	a := NewBlock(nil, 4, 4, 2)
	b := NewBlock(nil, 4, 4, 2)
	out := NewBlock(nil, 4, 4, 2)
	a.Set(1, 1, Cons{2, 0, 0, 4, 0})
	b.Set(1, 1, Cons{4, 0, 0, 8, 0})
	Average(nil, a, b, out)
	got := out.At(1, 1)
	if got[IRho] != 3 || got[IEner] != 6 {
		t.Errorf("Average = %v, want rho 3 E 6", got)
	}
}

func TestApplyFluxesGeometryPanics(t *testing.T) {
	b := NewBlock(nil, 4, 4, 2)
	fx := NewEdgeField(nil, 4, 4, X)
	fyWrong := NewEdgeField(nil, 4, 4, X) // wrong direction
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyFluxes with two X fields did not panic")
		}
	}()
	ApplyFluxes(nil, b, b, fx, fyWrong, 0.1, 1, 1)
}
