package euler

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKFVSSupersonicUpwinding(t *testing.T) {
	// For strongly supersonic right-moving flow, F⁻ vanishes and F⁺ is the
	// full physical flux: the split becomes pure upwinding.
	w := Prim{Rho: 1, U: 10, V: 0, P: 1, Y: 0} // Mach ~8.5
	plus := kfvsSplit(w, +1)
	minus := kfvsSplit(w, -1)
	exact := PhysFlux(w)
	for v := 0; v < NVars; v++ {
		if math.Abs(minus[v]) > 1e-8*(1+math.Abs(exact[v])) {
			t.Errorf("supersonic F- component %d = %g, want ~0", v, minus[v])
		}
		if !almostEq(plus[v], exact[v], 1e-8) {
			t.Errorf("supersonic F+ component %d = %g, want %g", v, plus[v], exact[v])
		}
	}
}

func TestKFVSMassFluxSign(t *testing.T) {
	// F⁺ mass flux is nonnegative and F⁻ nonpositive for any state: they
	// are half-range Maxwellian moments.
	states := []Prim{
		{Rho: 1, U: 0, V: 0, P: 1},
		{Rho: 2, U: -3, V: 1, P: 0.5},
		{Rho: 0.1, U: 5, V: -2, P: 4},
	}
	for _, w := range states {
		if kfvsSplit(w, +1)[IRho] < 0 {
			t.Errorf("F+ mass flux negative for %+v", w)
		}
		if kfvsSplit(w, -1)[IRho] > 0 {
			t.Errorf("F- mass flux positive for %+v", w)
		}
	}
}

func TestRiemannSonicRarefactionSampled(t *testing.T) {
	// A strong left rarefaction whose fan straddles x/t = 0 must sample
	// smoothly inside the fan (no jump): the sampled state's u - c ~ 0.
	l := Prim{Rho: 1, U: 0.2, V: 0, P: 1, Y: 0}
	r := Prim{Rho: 0.01, U: 2.5, V: 0, P: 0.01, Y: 0}
	w, iters := RiemannSample(l, r)
	if iters <= 0 {
		t.Fatal("no iterations recorded")
	}
	if w.Rho <= 0 || w.P <= 0 {
		t.Fatalf("non-physical sampled state %+v", w)
	}
	g := 0.5 * (l.Gamma() + r.Gamma())
	c := math.Sqrt(g * w.P / w.Rho)
	if math.Abs(w.U-c) > 0.05*c {
		t.Errorf("sonic-point sample u=%g c=%g; |u-c| should be ~0 inside the fan", w.U, c)
	}
}

// Property: the star pressure is positive and the Newton iteration stays
// within its budget for random physical inputs.
func TestPropertyRiemannStarWellBehaved(t *testing.T) {
	f := func(rl, ul, pl, rr, ur, pr float64) bool {
		l := Prim{
			Rho: 0.05 + math.Abs(math.Mod(rl, 10)),
			U:   math.Mod(ul, 4),
			P:   0.05 + math.Abs(math.Mod(pl, 10)),
		}
		r := Prim{
			Rho: 0.05 + math.Abs(math.Mod(rr, 10)),
			U:   math.Mod(ur, 4),
			P:   0.05 + math.Abs(math.Mod(pr, 10)),
		}
		pstar, _, iters := RiemannStar(l, r)
		return pstar > 0 && iters >= 1 && iters <= riemannMaxIter &&
			!math.IsNaN(pstar) && !math.IsInf(pstar, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the star velocity lies between uL - aL-ish and uR + aR-ish
// bounds (monotonicity of the pressure function), loosely checked.
func TestPropertyRiemannStarVelocityBounded(t *testing.T) {
	f := func(pl, pr float64) bool {
		l := Prim{Rho: 1, U: 0, P: 0.1 + math.Abs(math.Mod(pl, 10))}
		r := Prim{Rho: 1, U: 0, P: 0.1 + math.Abs(math.Mod(pr, 10))}
		_, ustar, _ := RiemannStar(l, r)
		// With equal densities and zero velocities, the contact moves
		// toward the lower-pressure side.
		switch {
		case l.P > r.P:
			return ustar > -1e-12
		case l.P < r.P:
			return ustar < 1e-12
		default:
			return math.Abs(ustar) < 1e-9
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGodunovIterationCountGrowsNearShocks(t *testing.T) {
	// Newton iterations on smooth (identical-state) faces converge faster
	// than on strong-jump faces — the mechanism behind GodunovFlux's
	// growing variance (Fig. 7).
	smoothL := Prim{Rho: 1, U: 0.1, P: 1}
	_, itSmooth := RiemannSample(smoothL, smoothL)
	jumpL := Prim{Rho: 1, U: 2, P: 10}
	jumpR := Prim{Rho: 0.1, U: -2, P: 0.05}
	_, itJump := RiemannSample(jumpL, jumpR)
	if itJump <= itSmooth {
		t.Errorf("strong jump iterations (%d) should exceed smooth (%d)", itJump, itSmooth)
	}
}

func TestEFMFluxMatchesGodunovOnUniformFlow(t *testing.T) {
	// On a uniform field both kernels must return the exact physical flux.
	w := Prim{Rho: 1.7, U: 0.6, V: -0.2, P: 2.2, Y: 0.4}
	b := NewBlock(nil, 8, 4, 2)
	for j := -2; j < 6; j++ {
		for i := -2; i < 10; i++ {
			b.SetPrim(i, j, w)
		}
	}
	qL := NewEdgeField(nil, 8, 4, X)
	qR := NewEdgeField(nil, 8, 4, X)
	States(nil, b, X, qL, qR)
	fe := NewEdgeField(nil, 8, 4, X)
	EFMFlux(nil, qL, qR, fe)
	fg := NewEdgeField(nil, 8, 4, X)
	GodunovFlux(nil, qL, qR, fg)
	exact := PhysFlux(w)
	for v := 0; v < NVars; v++ {
		k := fe.FaceIdx(3, 1)
		if !almostEq(fe.Q[v][k], exact[v], 1e-6) {
			t.Errorf("EFM var %d = %g, want %g", v, fe.Q[v][k], exact[v])
		}
		if !almostEq(fg.Q[v][k], exact[v], 1e-6) {
			t.Errorf("Godunov var %d = %g, want %g", v, fg.Q[v][k], exact[v])
		}
	}
}
