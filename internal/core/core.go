// Package core implements the paper's primary contribution: the performance
// measurement and modeling (PMM) infrastructure for CCA component
// applications (paper §4). It defines the two ports the infrastructure is
// built from —
//
//   - MeasurementPort, the generic performance-component interface the TAU
//     component provides (timing, events, control, query);
//   - MonitorPort, the port proxies use to start/stop monitoring around each
//     forwarded method invocation;
//
// — and the Mastermind, which owns a record object per monitored method,
// snapshots the (cumulative) TAU measurements before and after every
// invocation, stores per-invocation rows of {parameters, wall time, MPI
// time, compute time, hardware-metric deltas}, captures the caller/callee
// trace, and dumps everything for model construction.
package core

import (
	"fmt"
	"io"
	"sort"
)

// MeasurementPort is the generic performance-measurement interface of the
// paper's §4.1 TAU component: timing, atomic events, timer-group control
// and measurement query.
type MeasurementPort interface {
	// StartTimer starts (creating if needed) the named timer in a group.
	StartTimer(name, group string)
	// StopTimer stops the named timer (must be the innermost running one).
	StopTimer(name string)
	// SetGroupEnabled enables or disables all timers of a group at
	// runtime (e.g. the MPI group).
	SetGroupEnabled(group string, enabled bool)
	// TriggerEvent records an occurrence of a named atomic event.
	TriggerEvent(name string, value float64)
	// MetricNames lists the measured metrics; index 0 is wall-clock.
	MetricNames() []string
	// QueryMetrics returns the current cumulative value of every metric
	// (the TAU_GET_FUNCTION_VALUES-style query the Mastermind uses).
	QueryMetrics() []float64
	// GroupInclusive returns the summed inclusive wall-clock microseconds
	// of all completed timers in a group; the Mastermind's "MPI time" is
	// GroupInclusive("MPI").
	GroupInclusive(group string) float64
	// Now returns the current time in microseconds.
	Now() float64
}

// MonitorPort is what a proxy holds: it notifies the Mastermind immediately
// before forwarding a method invocation and immediately after it returns
// (paper §4.2). Parameters that influence the method's performance (array
// sizes, mode flags) are extracted by the proxy and passed along.
type MonitorPort interface {
	// StartMonitoring opens an invocation record for the named method
	// (e.g. "sc_proxy::compute()"). Parameter extraction happens before
	// any timers start, so it is not charged to the component.
	StartMonitoring(method string, params []Param)
	// StopMonitoring closes the invocation and stores its measurements.
	StopMonitoring(method string)
	// RecordCall notes one caller→callee invocation for the application
	// call trace (the edge weights of the Fig. 10 dual).
	RecordCall(caller, callee, method string)
}

// Param is one performance-relevant input parameter of an invocation.
type Param struct {
	Name  string
	Value float64
}

// Invocation is one row of a record object: the parameters passed in and
// the measurement deltas across the forwarded call.
type Invocation struct {
	Params []Param
	// WallUS is the total execution time of the method call.
	WallUS float64
	// MPIUS is the total inclusive time spent in MPI during the call.
	MPIUS float64
	// ComputeUS is WallUS - MPIUS: the cache-sensitive computation time.
	ComputeUS float64
	// MetricDeltas holds the change of each hardware metric (indexed as
	// MeasurementPort.MetricNames, entry 0 = wall clock again).
	MetricDeltas []float64
}

// Param returns the named parameter's value.
func (inv *Invocation) Param(name string) (float64, bool) {
	for _, p := range inv.Params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return 0, false
}

// Record stores every invocation of a single monitored method, as the
// paper's record objects do.
type Record struct {
	// Method is the monitored method's timer name, e.g. "g_proxy::compute()".
	Method string
	// MetricNames mirrors the measurement component's metric list.
	MetricNames []string
	// Invocations holds one row per forwarded call.
	Invocations []Invocation
}

// Series extracts (param value, wall-time) pairs for model fitting,
// skipping invocations that lack the parameter.
func (r *Record) Series(param string) (x, wallUS []float64) {
	for i := range r.Invocations {
		if v, ok := r.Invocations[i].Param(param); ok {
			x = append(x, v)
			wallUS = append(wallUS, r.Invocations[i].WallUS)
		}
	}
	return x, wallUS
}

// ComputeSeries is Series but returning compute (wall − MPI) times.
func (r *Record) ComputeSeries(param string) (x, computeUS []float64) {
	for i := range r.Invocations {
		if v, ok := r.Invocations[i].Param(param); ok {
			x = append(x, v)
			computeUS = append(computeUS, r.Invocations[i].ComputeUS)
		}
	}
	return x, computeUS
}

// MPISeries is Series but returning MPI times.
func (r *Record) MPISeries(param string) (x, mpiUS []float64) {
	for i := range r.Invocations {
		if v, ok := r.Invocations[i].Param(param); ok {
			x = append(x, v)
			mpiUS = append(mpiUS, r.Invocations[i].MPIUS)
		}
	}
	return x, mpiUS
}

// WriteCSV dumps the record rows (what the paper's record objects write to
// file when destroyed).
func (r *Record) WriteCSV(w io.Writer) error {
	// Header: union of parameter names in first-seen order.
	var pnames []string
	seen := map[string]bool{}
	for i := range r.Invocations {
		for _, p := range r.Invocations[i].Params {
			if !seen[p.Name] {
				seen[p.Name] = true
				pnames = append(pnames, p.Name)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "method,invocation"); err != nil {
		return err
	}
	for _, n := range pnames {
		fmt.Fprintf(w, ",%s", n)
	}
	fmt.Fprintf(w, ",wall_us,mpi_us,compute_us")
	for _, m := range r.MetricNames {
		fmt.Fprintf(w, ",d_%s", m)
	}
	fmt.Fprintln(w)
	for i := range r.Invocations {
		inv := &r.Invocations[i]
		fmt.Fprintf(w, "%s,%d", r.Method, i)
		for _, n := range pnames {
			v, _ := inv.Param(n)
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintf(w, ",%g,%g,%g", inv.WallUS, inv.MPIUS, inv.ComputeUS)
		for _, d := range inv.MetricDeltas {
			fmt.Fprintf(w, ",%g", d)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// CallEdge is one caller→callee relationship in the recorded call trace.
type CallEdge struct {
	Caller, Callee, Method string
}

// openInvocation holds the before-call snapshot.
type openInvocation struct {
	params  []Param
	wall0   float64
	mpi0    float64
	metric0 []float64
}

// Mastermind gathers, stores and reports measurement data (paper §4.3).
// One Mastermind serves every proxy of a rank's assembly. TAU measurements
// are cumulative, so each invocation is measured by differencing snapshots
// taken immediately before and after the forwarded call.
type Mastermind struct {
	meas    MeasurementPort
	records map[string]*Record
	order   []string
	open    map[string]*openInvocation
	edges   map[CallEdge]int
}

// NewMastermind builds a Mastermind on top of a measurement component.
func NewMastermind(meas MeasurementPort) *Mastermind {
	return &Mastermind{
		meas:    meas,
		records: make(map[string]*Record),
		open:    make(map[string]*openInvocation),
		edges:   make(map[CallEdge]int),
	}
}

var _ MonitorPort = (*Mastermind)(nil)

// StartMonitoring implements MonitorPort: parameters are stored first (no
// timer running), then the method's TAU timer starts and the cumulative
// counters are snapshotted.
func (m *Mastermind) StartMonitoring(method string, params []Param) {
	if m.open[method] != nil {
		panic(fmt.Sprintf("core: StartMonitoring(%q) re-entered", method))
	}
	if _, ok := m.records[method]; !ok {
		m.records[method] = &Record{Method: method, MetricNames: m.meas.MetricNames()}
		m.order = append(m.order, method)
	}
	cp := make([]Param, len(params))
	copy(cp, params)
	m.meas.StartTimer(method, "PROXY")
	m.open[method] = &openInvocation{
		params:  cp,
		wall0:   m.meas.Now(),
		mpi0:    m.meas.GroupInclusive("MPI"),
		metric0: m.meas.QueryMetrics(),
	}
}

// StopMonitoring implements MonitorPort: it snapshots the counters again,
// stores the difference as one invocation, and stops the TAU timer.
func (m *Mastermind) StopMonitoring(method string) {
	o := m.open[method]
	if o == nil {
		panic(fmt.Sprintf("core: StopMonitoring(%q) without StartMonitoring", method))
	}
	delete(m.open, method)
	wall := m.meas.Now() - o.wall0
	mpi := m.meas.GroupInclusive("MPI") - o.mpi0
	metric1 := m.meas.QueryMetrics()
	deltas := make([]float64, len(metric1))
	for i := range metric1 {
		deltas[i] = metric1[i] - o.metric0[i]
	}
	m.meas.StopTimer(method)
	rec := m.records[method]
	rec.Invocations = append(rec.Invocations, Invocation{
		Params:       o.params,
		WallUS:       wall,
		MPIUS:        mpi,
		ComputeUS:    wall - mpi,
		MetricDeltas: deltas,
	})
}

// RecordCall implements MonitorPort's call-trace capture.
func (m *Mastermind) RecordCall(caller, callee, method string) {
	m.edges[CallEdge{Caller: caller, Callee: callee, Method: method}]++
}

// Record returns the record object for a method, or nil.
func (m *Mastermind) Record(method string) *Record { return m.records[method] }

// Records returns every record in first-monitored order.
func (m *Mastermind) Records() []*Record {
	out := make([]*Record, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.records[name])
	}
	return out
}

// Edges returns the recorded call trace with invocation counts, sorted for
// determinism.
func (m *Mastermind) Edges() map[CallEdge]int {
	out := make(map[CallEdge]int, len(m.edges))
	for e, n := range m.edges {
		out[e] = n
	}
	return out
}

// SortedEdges returns the call-trace edges in a stable order.
func (m *Mastermind) SortedEdges() []CallEdge {
	out := make([]CallEdge, 0, len(m.edges))
	for e := range m.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return a.Method < b.Method
	})
	return out
}

// WriteAll dumps every record (the "output to a file" the paper's record
// objects perform on destruction).
func (m *Mastermind) WriteAll(w io.Writer) error {
	for _, rec := range m.Records() {
		if err := rec.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}
