package core

import (
	"strings"
	"testing"
)

// fakeMeas is a scriptable MeasurementPort for unit tests.
type fakeMeas struct {
	now     float64
	mpi     float64
	flops   float64
	started []string
	stopped []string
	events  map[string]float64
}

func newFakeMeas() *fakeMeas { return &fakeMeas{events: map[string]float64{}} }

func (f *fakeMeas) StartTimer(name, group string)    { f.started = append(f.started, name) }
func (f *fakeMeas) StopTimer(name string)            { f.stopped = append(f.stopped, name) }
func (f *fakeMeas) SetGroupEnabled(string, bool)     {}
func (f *fakeMeas) TriggerEvent(n string, v float64) { f.events[n] += v }
func (f *fakeMeas) MetricNames() []string            { return []string{"WALL_CLOCK", "PAPI_FP_OPS"} }
func (f *fakeMeas) QueryMetrics() []float64          { return []float64{f.now, f.flops} }
func (f *fakeMeas) GroupInclusive(group string) float64 {
	if group == "MPI" {
		return f.mpi
	}
	return 0
}
func (f *fakeMeas) Now() float64 { return f.now }

func TestMastermindRecordsInvocation(t *testing.T) {
	meas := newFakeMeas()
	mm := NewMastermind(meas)
	mm.StartMonitoring("sc_proxy::compute()", []Param{{Name: "Q", Value: 4096}, {Name: "mode", Value: 1}})
	meas.now += 250
	meas.mpi += 40
	meas.flops += 1e6
	mm.StopMonitoring("sc_proxy::compute()")

	rec := mm.Record("sc_proxy::compute()")
	if rec == nil || len(rec.Invocations) != 1 {
		t.Fatalf("record missing or wrong count: %+v", rec)
	}
	inv := rec.Invocations[0]
	if inv.WallUS != 250 {
		t.Errorf("wall = %g, want 250", inv.WallUS)
	}
	if inv.MPIUS != 40 {
		t.Errorf("mpi = %g, want 40", inv.MPIUS)
	}
	if inv.ComputeUS != 210 {
		t.Errorf("compute = %g, want 210", inv.ComputeUS)
	}
	if q, ok := inv.Param("Q"); !ok || q != 4096 {
		t.Errorf("Q param = %g/%v", q, ok)
	}
	if inv.MetricDeltas[1] != 1e6 {
		t.Errorf("FP_OPS delta = %g, want 1e6", inv.MetricDeltas[1])
	}
	if _, ok := inv.Param("nonexistent"); ok {
		t.Error("unknown param reported present")
	}
}

func TestMastermindCumulativeSnapshots(t *testing.T) {
	// Two invocations: each must see only its own delta even though TAU
	// counters are cumulative.
	meas := newFakeMeas()
	mm := NewMastermind(meas)
	for i, d := range []float64{100, 300} {
		mm.StartMonitoring("m()", []Param{{Name: "Q", Value: float64(i)}})
		meas.now += d
		mm.StopMonitoring("m()")
	}
	rec := mm.Record("m()")
	if rec.Invocations[0].WallUS != 100 || rec.Invocations[1].WallUS != 300 {
		t.Errorf("walls = %g/%g, want 100/300",
			rec.Invocations[0].WallUS, rec.Invocations[1].WallUS)
	}
}

func TestMastermindTimerBracketsInvocation(t *testing.T) {
	meas := newFakeMeas()
	mm := NewMastermind(meas)
	mm.StartMonitoring("x()", nil)
	mm.StopMonitoring("x()")
	if len(meas.started) != 1 || meas.started[0] != "x()" {
		t.Errorf("started timers = %v", meas.started)
	}
	if len(meas.stopped) != 1 || meas.stopped[0] != "x()" {
		t.Errorf("stopped timers = %v", meas.stopped)
	}
}

func TestMastermindReentryPanics(t *testing.T) {
	mm := NewMastermind(newFakeMeas())
	mm.StartMonitoring("a()", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-entrant StartMonitoring did not panic")
		}
	}()
	mm.StartMonitoring("a()", nil)
}

func TestMastermindStopWithoutStartPanics(t *testing.T) {
	mm := NewMastermind(newFakeMeas())
	defer func() {
		if recover() == nil {
			t.Fatal("StopMonitoring without start did not panic")
		}
	}()
	mm.StopMonitoring("never()")
}

func TestNestedMonitoringAttributesMPIInclusively(t *testing.T) {
	// Outer monitored region contains an inner one plus MPI time: the
	// outer record's MPI time includes the inner's (inclusive semantics).
	meas := newFakeMeas()
	mm := NewMastermind(meas)
	mm.StartMonitoring("outer()", nil)
	meas.now += 10
	mm.StartMonitoring("inner()", nil)
	meas.now += 50
	meas.mpi += 30
	mm.StopMonitoring("inner()")
	meas.now += 5
	mm.StopMonitoring("outer()")
	outer := mm.Record("outer()").Invocations[0]
	inner := mm.Record("inner()").Invocations[0]
	if inner.MPIUS != 30 || inner.WallUS != 50 {
		t.Errorf("inner = %+v", inner)
	}
	if outer.MPIUS != 30 || outer.WallUS != 65 {
		t.Errorf("outer = %+v", outer)
	}
}

func TestSeries(t *testing.T) {
	meas := newFakeMeas()
	mm := NewMastermind(meas)
	for i := 1; i <= 3; i++ {
		mm.StartMonitoring("k()", []Param{{Name: "Q", Value: float64(i * 100)}})
		meas.now += float64(i * 10)
		meas.mpi += float64(i)
		mm.StopMonitoring("k()")
	}
	rec := mm.Record("k()")
	x, w := rec.Series("Q")
	if len(x) != 3 || x[0] != 100 || w[2] != 30 {
		t.Errorf("series = %v / %v", x, w)
	}
	_, c := rec.ComputeSeries("Q")
	if c[0] != 9 || c[1] != 18 || c[2] != 27 {
		t.Errorf("compute series = %v", c)
	}
	_, m := rec.MPISeries("Q")
	if m[0] != 1 || m[2] != 3 {
		t.Errorf("mpi series = %v", m)
	}
	// A record without the parameter yields empty series.
	mm.StartMonitoring("other()", nil)
	mm.StopMonitoring("other()")
	if x, _ := mm.Record("other()").Series("Q"); len(x) != 0 {
		t.Errorf("paramless series = %v", x)
	}
}

func TestRecordsOrderAndWriteCSV(t *testing.T) {
	meas := newFakeMeas()
	mm := NewMastermind(meas)
	mm.StartMonitoring("b()", []Param{{Name: "Q", Value: 7}})
	meas.now += 3
	mm.StopMonitoring("b()")
	mm.StartMonitoring("a()", nil)
	mm.StopMonitoring("a()")
	recs := mm.Records()
	if len(recs) != 2 || recs[0].Method != "b()" || recs[1].Method != "a()" {
		t.Fatalf("records order wrong: %v", recs)
	}
	var sb strings.Builder
	if err := mm.WriteAll(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"method,invocation", "b(),0", ",Q", "wall_us", "d_PAPI_FP_OPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestCallTrace(t *testing.T) {
	mm := NewMastermind(newFakeMeas())
	mm.RecordCall("rk20", "icc_proxy", "ghostUpdate")
	mm.RecordCall("rk20", "icc_proxy", "ghostUpdate")
	mm.RecordCall("inviscidflux0", "sc_proxy", "compute")
	edges := mm.Edges()
	if edges[CallEdge{Caller: "rk20", Callee: "icc_proxy", Method: "ghostUpdate"}] != 2 {
		t.Errorf("edges = %v", edges)
	}
	sorted := mm.SortedEdges()
	if len(sorted) != 2 || sorted[0].Caller != "inviscidflux0" {
		t.Errorf("sorted edges = %v", sorted)
	}
}
