package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// job builds a trivial successful job returning its key.
func okJob(key string, after ...string) Job {
	return Job{Key: key, After: after, Run: func(context.Context, map[string]any) (any, error) {
		return key, nil
	}}
}

func TestRunPreservesSubmissionOrder(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4, 32} {
		var jobs []Job
		for i := 0; i < 20; i++ {
			i := i
			jobs = append(jobs, Job{
				Key: fmt.Sprintf("j%02d", i),
				Run: func(context.Context, map[string]any) (any, error) { return i * i, nil },
			})
		}
		res, err := Run(context.Background(), Config{Workers: workers}, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != 20 {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
		for i, r := range res {
			if r.Key != fmt.Sprintf("j%02d", i) || r.Value.(int) != i*i {
				t.Errorf("workers=%d result %d = %+v", workers, i, r)
			}
		}
	}
}

func TestDependenciesSeeUpstreamValues(t *testing.T) {
	t.Parallel()
	jobs := []Job{
		okJob("a"),
		okJob("b"),
		{Key: "sum", After: []string{"a", "b"}, Run: func(_ context.Context, deps map[string]any) (any, error) {
			return deps["a"].(string) + "+" + deps["b"].(string), nil
		}},
	}
	res, err := Run(context.Background(), Config{Workers: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[2].Value != "a+b" {
		t.Errorf("sum = %v", res[2].Value)
	}
}

func TestDependencyFailureSkipsTransitively(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	jobs := []Job{
		{Key: "bad", Run: func(context.Context, map[string]any) (any, error) { return nil, boom }},
		okJob("child", "bad"),
		okJob("grandchild", "child"),
		okJob("independent"),
	}
	res, err := Run(context.Background(), Config{Workers: 2}, jobs)
	if err == nil {
		t.Fatal("no aggregate error")
	}
	if !errors.Is(res[0].Err, boom) {
		t.Errorf("bad err = %v", res[0].Err)
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(res[i].Err, ErrDependency) {
			t.Errorf("%s err = %v, want ErrDependency", res[i].Key, res[i].Err)
		}
	}
	if res[3].Err != nil || res[3].Value != "independent" {
		t.Errorf("independent job harmed: %+v", res[3])
	}
	if !errors.Is(err, boom) || !errors.Is(err, ErrDependency) {
		t.Errorf("aggregate error misses causes: %v", err)
	}
}

func TestFailFastCancelsRemaining(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	started := make(chan struct{})
	jobs := []Job{
		{Key: "blocker", Run: func(ctx context.Context, _ map[string]any) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}},
		{Key: "bad", Run: func(context.Context, map[string]any) (any, error) {
			<-started
			return nil, boom
		}},
	}
	res, err := Run(context.Background(), Config{Workers: 2, FailFast: true}, jobs)
	if err == nil {
		t.Fatal("no aggregate error")
	}
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Errorf("blocker err = %v, want canceled", res[0].Err)
	}
	if !errors.Is(res[1].Err, boom) {
		t.Errorf("bad err = %v", res[1].Err)
	}
}

func TestCanceledContextSettlesEverything(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Config{Workers: 2}, []Job{okJob("a"), okJob("b", "a")})
	if err == nil {
		t.Fatal("no error from canceled campaign")
	}
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Errorf("a err = %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Error("b settled without error")
	}
}

func TestStructuralValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		jobs []Job
	}{
		{"empty key", []Job{okJob("")}},
		{"nil run", []Job{{Key: "x"}}},
		{"duplicate key", []Job{okJob("x"), okJob("x")}},
		{"unknown dep", []Job{okJob("x", "ghost")}},
		{"self dep", []Job{okJob("x", "x")}},
		{"cycle", []Job{okJob("a", "b"), okJob("b", "a")}},
	}
	for _, c := range cases {
		if _, err := Run(context.Background(), Config{}, c.jobs); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestProgressEventsAreSerializedAndComplete(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var events []Event
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, okJob(fmt.Sprintf("j%d", i)))
	}
	_, err := Run(context.Background(), Config{Workers: 4, OnProgress: func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 12 {
		t.Fatalf("%d events", len(events))
	}
	for i, e := range events {
		if e.Done != i+1 || e.Total != 12 {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}

// TestBlockedProgressCallbackDoesNotStallWorkers pins the dispatcher
// decoupling: the first progress callback refuses to return until every
// job has run. If callbacks executed under the scheduler lock, the pool
// would deadlock and the test would time out.
func TestBlockedProgressCallbackDoesNotStallWorkers(t *testing.T) {
	t.Parallel()
	const n = 6
	var ran sync.WaitGroup
	ran.Add(n)
	var jobs []Job
	for i := 0; i < n; i++ {
		jobs = append(jobs, Job{
			Key: fmt.Sprintf("j%d", i),
			Run: func(context.Context, map[string]any) (any, error) {
				ran.Done()
				return nil, nil
			},
		})
	}
	var events int
	_, err := Run(context.Background(), Config{Workers: 2, OnProgress: func(Event) {
		if events == 0 {
			ran.Wait() // block until every job has executed
		}
		events++
	}}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if events != n {
		t.Errorf("%d events, want %d", events, n)
	}
}

func TestEmptyCampaign(t *testing.T) {
	t.Parallel()
	res, err := Run(context.Background(), Config{}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	t.Parallel()
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Error("seed not deterministic")
	}
	seen := map[int64]string{}
	for _, base := range []int64{0, 1, 42} {
		for _, key := range []string{"a", "b", "p3/eth/c512kB/r0", "p3/eth/c512kB/r1"} {
			s := DeriveSeed(base, key)
			if s < 0 {
				t.Errorf("negative seed %d for (%d, %q)", s, base, key)
			}
			id := fmt.Sprintf("%d/%s", base, key)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s and %s -> %d", prev, id, s)
			}
			seen[s] = id
		}
	}
}
