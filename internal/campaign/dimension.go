package campaign

import (
	"encoding/gob"
	"fmt"

	"repro/internal/mpi"
)

// This file is the first-class axis abstraction of the experiment grid.
// A Dimension is an axis as data — a stable name plus an ordered value
// list — instead of a dedicated struct field on Grid, so adding a machine
// or application parameter to the sweep space is one Dimension value, not
// a cross-cutting edit through grid expansion, scenario keys, seed
// derivation and checkpoint hashing. The constructors below rebuild the
// historical axes (ranks, interconnect, cache size, mesh, flux) on top of
// it and add the CPU-model axis the paper's Section 6 calls for.

// Canonical axis names. Grid expansion and the harness's scenario-to-config
// mapping recognize these; user-defined dimensions may use any other name.
const (
	AxisRank  = "rank"
	AxisNet   = "net"
	AxisCache = "cache"
	AxisMesh  = "mesh"
	AxisFlux  = "flux"
	AxisCPU   = "cpu"
	AxisSched = "sched"
)

// DimValue is one value along a Dimension.
type DimValue struct {
	// Key is the value's stable token: it becomes one segment of every
	// containing scenario's key ("c512kB", "eth", "m96x24"), so it must be
	// non-empty and unique within its axis. Changing a token re-keys — and
	// therefore re-seeds and re-checkpoints — every scenario built from it.
	Key string
	// Value is the payload carried onto the scenario's coordinate.
	// Numeric payloads (int, int64, float64) can feed cross-scenario trend
	// fits; richer payloads (MeshSize, mpi.CPUTune) are decoded by the
	// axis's consumers.
	Value any
	// Apply mutates the scenario's machine. Nil for app-level axes whose
	// consumers read the coordinate instead (mesh, flux).
	Apply func(*mpi.WorldConfig)
}

// Dimension is one first-class grid axis: a stable name and an ordered
// value list. Grid.Axes cross-products dimensions into scenarios.
type Dimension struct {
	// Name identifies the axis ("cache", "cpu", ...) within its grid.
	Name string
	// Values is the ordered sweep list.
	Values []DimValue
	// SeedInert marks an axis whose values change how the experiment
	// executes, not what it simulates (the scheduler axis): the axis still
	// contributes a key segment — scenarios stay uniquely keyed and
	// checkpointed — but is excluded from seed derivation, so scenarios
	// differing only on this axis share a seed and must produce identical
	// results. That is what lets a grid verify scheduler equivalence at
	// scale.
	SeedInert bool
}

// Coord locates a scenario along one axis: the axis name, the value's key
// token, and the value payload.
type Coord struct {
	Axis  string
	Key   string
	Value any
}

func init() {
	// Coord.Value travels as an interface inside gob-encoded checkpoint
	// payloads (GridPoint carries a Scenario); register the payload types
	// the built-in axes use.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(MeshSize{})
	gob.Register(mpi.CPUTune{})
	gob.Register(SchedChoice{})
}

// RankAxis sweeps the world size. Keys are "p<n>"; values apply
// WorldConfig.Procs.
func RankAxis(procs ...int) Dimension {
	d := Dimension{Name: AxisRank}
	for _, p := range procs {
		p := p
		d.Values = append(d.Values, DimValue{
			Key: fmt.Sprintf("p%d", p), Value: p,
			Apply: func(w *mpi.WorldConfig) { w.Procs = p },
		})
	}
	return d
}

// NetAxis sweeps the interconnect model. Keys are the nets' names (an
// empty name reads "base"); values apply WorldConfig.Net.
func NetAxis(nets ...NamedNet) Dimension {
	d := Dimension{Name: AxisNet}
	for _, n := range nets {
		n := n
		name := n.Name
		if name == "" {
			name = "base"
		}
		d.Values = append(d.Values, DimValue{
			Key: name, Value: name,
			Apply: func(w *mpi.WorldConfig) { w.Net = n.Model },
		})
	}
	return d
}

// CacheAxis sweeps the per-rank cache capacity in kB. Keys are "c<n>kB";
// values apply WorldConfig.Cache.SizeBytes.
func CacheAxis(kbs ...int) Dimension {
	d := Dimension{Name: AxisCache}
	for _, kb := range kbs {
		kb := kb
		d.Values = append(d.Values, DimValue{
			Key: fmt.Sprintf("c%dkB", kb), Value: kb,
			Apply: func(w *mpi.WorldConfig) { w.Cache.SizeBytes = kb * 1024 },
		})
	}
	return d
}

// MeshAxis sweeps the app-level base mesh size. Keys are "m<nx>x<ny>"; the
// world is untouched — consumers read the MeshSize coordinate (the harness
// maps it onto the case study's base grid).
func MeshAxis(meshes ...MeshSize) Dimension {
	d := Dimension{Name: AxisMesh}
	for _, m := range meshes {
		d.Values = append(d.Values, DimValue{Key: "m" + m.String(), Value: m})
	}
	return d
}

// FluxAxis sweeps the app-level flux choice ("godunov", "efm", "states").
// Keys are the names themselves; the world is untouched — consumers read
// the coordinate (the harness maps it onto the measured kernel in sweep
// grids and the assembly's flux implementation in case-study runs).
func FluxAxis(fluxes ...string) Dimension {
	d := Dimension{Name: AxisFlux}
	for _, f := range fluxes {
		d.Values = append(d.Values, DimValue{Key: f, Value: f})
	}
	return d
}

// cpuKey renders a CPU tune as a stable key token: the clock scale always
// ("cpu1.5x"), hit/miss penalty scales only when set ("cpu1x-h2-m0.5").
func cpuKey(t mpi.CPUTune) string {
	scale := func(v float64) float64 {
		if v == 0 {
			return 1
		}
		return v
	}
	s := fmt.Sprintf("cpu%gx", scale(t.ClockScale))
	if h := scale(t.HitScale); h != 1 {
		s += fmt.Sprintf("-h%g", h)
	}
	if m := scale(t.MissScale); m != 1 {
		s += fmt.Sprintf("-m%g", m)
	}
	return s
}

// CPUAxis sweeps the processor model — clock scale and cache hit/miss
// penalty multipliers — through WorldConfig.Tune: the Section 6
// "parameterized by processor speed" machine axis.
func CPUAxis(tunes ...mpi.CPUTune) Dimension {
	d := Dimension{Name: AxisCPU}
	for _, t := range tunes {
		t := t
		d.Values = append(d.Values, DimValue{
			Key: cpuKey(t), Value: t,
			Apply: func(w *mpi.WorldConfig) { w.Tune = t },
		})
	}
	return d
}

// CPUClockAxis is CPUAxis over clock scales alone: CPUClockAxis(0.5, 1, 2)
// sweeps machines at half, calibrated and double clock speed.
func CPUClockAxis(scales ...float64) Dimension {
	tunes := make([]mpi.CPUTune, len(scales))
	for i, s := range scales {
		tunes[i] = mpi.CPUTune{ClockScale: s}
	}
	return CPUAxis(tunes...)
}

// SchedChoice is one value of the scheduler axis: a scheduler mode plus
// its parallel-rank cap and speculation-window bounds.
type SchedChoice struct {
	Mode mpi.SchedulerMode
	// MaxParallelRanks caps concurrent ranks under the parallel schedulers
	// (conservative and optimistic); zero means no cap. Ignored by the
	// serial scheduler.
	MaxParallelRanks int
	// SpecWindowMin and SpecWindowMax bound the optimistic scheduler's
	// adaptive speculation window; both zero keeps the fixed default.
	// Ignored outside OptimisticParallel.
	SpecWindowMin int
	SpecWindowMax int
}

// schedKey renders a scheduler choice as a stable key token ("serial",
// "par", "par4", "opt", "opt8", "opt-w256-8192"). The cap suffix applies
// to any non-serial mode and the window suffix to any mode that sets the
// bounds — neither knob means anything under the serial scheduler, so
// default choices keep the bare tokens (and their byte-stable scenario
// keys).
func (s SchedChoice) schedKey() string {
	k := s.Mode.String()
	if s.Mode != mpi.Serial && s.MaxParallelRanks > 0 {
		k = fmt.Sprintf("%s%d", k, s.MaxParallelRanks)
	}
	if s.SpecWindowMin != 0 || s.SpecWindowMax != 0 {
		k = fmt.Sprintf("%s-w%d-%d", k, s.SpecWindowMin, s.SpecWindowMax)
	}
	return k
}

// SchedAxis sweeps the rank scheduler (serial, conservative parallel,
// optimistic parallel).
// The axis is seed-inert: scenarios differing only in scheduler share a
// derived seed, because the scheduler is proven not to change results —
// sweeping it lets a grid verify that equivalence at scale while keeping
// distinct scenario keys (and so distinct checkpoint entries and telemetry
// shards) per mode.
func SchedAxis(choices ...SchedChoice) Dimension {
	d := Dimension{Name: AxisSched, SeedInert: true}
	for _, c := range choices {
		c := c
		d.Values = append(d.Values, DimValue{
			Key: c.schedKey(), Value: c,
			Apply: func(w *mpi.WorldConfig) {
				w.Sched = c.Mode
				w.MaxParallelRanks = c.MaxParallelRanks
				w.SpecWindowMin = c.SpecWindowMin
				w.SpecWindowMax = c.SpecWindowMax
			},
		})
	}
	return d
}

// SchedModeAxis is SchedAxis over bare modes with no rank cap:
// SchedModeAxis(mpi.Serial, mpi.ConservativeParallel) is the
// equivalence-verification sweep.
func SchedModeAxis(modes ...mpi.SchedulerMode) Dimension {
	choices := make([]SchedChoice, len(modes))
	for i, m := range modes {
		choices[i] = SchedChoice{Mode: m}
	}
	return SchedAxis(choices...)
}
