package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/results"
)

// memStore is an in-memory Store for tests.
type memStore struct {
	mu      sync.Mutex
	entries map[string][]byte
	puts    int
}

func newMemStore() *memStore { return &memStore{entries: map[string][]byte{}} }

func (m *memStore) Get(key, hash string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.entries[key+"\x00"+hash]
	return data, ok, nil
}

func (m *memStore) Put(key, hash string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key+"\x00"+hash] = payload
	m.puts++
	return nil
}

// countingJob is a checkpointable job whose executions are counted.
func countingJob(key, hash string, runs *atomic.Int64) Job {
	return Job{
		Key:    key,
		Hash:   hash,
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(_ context.Context, data []byte) (any, error) {
			var v string
			err := json.Unmarshal(data, &v)
			return v, err
		},
		Run: func(context.Context, map[string]any) (any, error) {
			runs.Add(1)
			return "value-" + key, nil
		},
	}
}

func TestStoreSatisfiesCompletedJobs(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	var runs atomic.Int64
	jobs := func() []Job {
		var js []Job
		for i := 0; i < 6; i++ {
			js = append(js, countingJob(fmt.Sprintf("job/%d", i), "h1", &runs))
		}
		return js
	}

	res, err := Run(context.Background(), Config{Store: st}, jobs())
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 6 {
		t.Fatalf("first run executed %d jobs, want 6", got)
	}
	for _, r := range res {
		if r.Cached {
			t.Errorf("%s cached on first run", r.Key)
		}
	}

	res2, err := Run(context.Background(), Config{Store: st}, jobs())
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 6 {
		t.Fatalf("second run re-executed %d jobs, want 0", got-6)
	}
	for i, r := range res2 {
		if !r.Cached {
			t.Errorf("%s not cached on second run", r.Key)
		}
		if r.Value != res[i].Value {
			t.Errorf("%s: cached value %v != original %v", r.Key, r.Value, res[i].Value)
		}
	}
}

func TestStoreIgnoresChangedHash(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	var runs atomic.Int64
	if _, err := Run(context.Background(), Config{Store: st},
		[]Job{countingJob("k", "cfgA", &runs)}); err != nil {
		t.Fatal(err)
	}
	// Same key, different config hash: the stored payload must not match.
	if _, err := Run(context.Background(), Config{Store: st},
		[]Job{countingJob("k", "cfgB", &runs)}); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("executed %d, want 2 (changed hash must re-run)", got)
	}
}

func TestUndecodablePayloadDegradesToMiss(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	if err := st.Put("k", "h", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	res, err := Run(context.Background(), Config{Store: st}, []Job{countingJob("k", "h", &runs)})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 || res[0].Cached {
		t.Errorf("corrupt payload not treated as miss: runs=%d cached=%v", runs.Load(), res[0].Cached)
	}
	// The re-run overwrote the corrupt entry.
	if data, ok, _ := st.Get("k", "h"); !ok || string(data) == "not json" {
		t.Error("corrupt entry not replaced")
	}
}

func TestInterruptedCampaignResumesWithZeroReruns(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	var runs atomic.Int64
	const total, interruptAt = 8, 3
	jobs := func(cancel context.CancelFunc) []Job {
		var js []Job
		for i := 0; i < total; i++ {
			j := countingJob(fmt.Sprintf("job/%d", i), "h", &runs)
			if i == interruptAt && cancel != nil {
				// The interrupting job kills the campaign mid-run, like a
				// SIGINT landing while job 3 executes: jobs 0..2 have
				// already checkpointed, 3 fails, 4..7 never run.
				j.Run = func(context.Context, map[string]any) (any, error) {
					runs.Add(1)
					cancel()
					return nil, fmt.Errorf("interrupted")
				}
			}
			js = append(js, j)
		}
		return js
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, Config{Workers: 1, Store: st}, jobs(cancel))
	if err == nil {
		t.Fatal("interrupted campaign reported success")
	}
	if runs.Load() != interruptAt+1 {
		t.Fatalf("%d jobs ran before the interrupt, want %d", runs.Load(), interruptAt+1)
	}
	if st.puts != interruptAt {
		t.Fatalf("%d checkpoints stored, want %d", st.puts, interruptAt)
	}

	// Resume: only the unfinished jobs run; the finished ones come back
	// Cached with their stored values.
	var resumedCached int
	res, err := Run(context.Background(), Config{Store: st, OnProgress: func(e Event) {
		if e.Cached {
			resumedCached++
		}
	}}, jobs(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rerun := runs.Load() - (interruptAt + 1); rerun != total-interruptAt {
		t.Errorf("resume re-executed %d jobs, want %d (completed %d must not re-run)",
			rerun, total-interruptAt, interruptAt)
	}
	if resumedCached != interruptAt {
		t.Errorf("resume reported %d cached, want %d", resumedCached, interruptAt)
	}
	for i, r := range res {
		if want := fmt.Sprintf("value-job/%d", i); r.Value != want {
			t.Errorf("resumed value[%d] = %v, want %s", i, r.Value, want)
		}
	}
}

func TestReplayFailureFailsJobInsteadOfRerunning(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	if err := st.Put("k", "h", []byte(`5`)); err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int64
	job := Job{
		Key:  "k",
		Hash: "h",
		Decode: func(context.Context, []byte) (any, error) {
			// The payload decoded but replaying its rows failed partway: a
			// re-run would duplicate the rows already in the sink.
			return nil, fmt.Errorf("%w: disk full", ErrReplay)
		},
		Run: func(context.Context, map[string]any) (any, error) {
			runs.Add(1)
			return "fresh", nil
		},
	}
	res, err := Run(context.Background(), Config{Store: st}, []Job{job})
	if err == nil || !errors.Is(err, ErrReplay) {
		t.Fatalf("campaign error = %v, want ErrReplay", err)
	}
	if runs.Load() != 0 {
		t.Errorf("job re-ran %d times after a replay failure", runs.Load())
	}
	if !res[0].Cached || res[0].Value != nil {
		t.Errorf("result = %+v, want cached failure with nil value", res[0])
	}
}

func TestConfigSinkReachesJobsAndReplays(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	emittingJob := func(key string) Job {
		row := results.Row{results.F("v", 1.5)}
		return Job{
			Key:    key,
			Hash:   "h",
			Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
			Decode: func(ctx context.Context, data []byte) (any, error) {
				// Replay the emission from the checkpoint, like harness
				// jobs do.
				var v int
				if err := json.Unmarshal(data, &v); err != nil {
					return nil, err
				}
				return v, Emit(ctx, key, row)
			},
			Run: func(ctx context.Context, _ map[string]any) (any, error) {
				return 7, Emit(ctx, key, row)
			},
		}
	}

	live := results.NewMemorySink()
	if _, err := Run(context.Background(), Config{Store: st, Sink: live},
		[]Job{emittingJob("a"), emittingJob("b")}); err != nil {
		t.Fatal(err)
	}
	replayed := results.NewMemorySink()
	res, err := Run(context.Background(), Config{Store: st, Sink: replayed},
		[]Job{emittingJob("a"), emittingJob("b")})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.Cached {
			t.Errorf("%s not cached", r.Key)
		}
	}
	for _, key := range []string{"a", "b"} {
		if len(live.Rows(key)) != 1 || len(replayed.Rows(key)) != 1 {
			t.Fatalf("rows live=%d replayed=%d for %s",
				len(live.Rows(key)), len(replayed.Rows(key)), key)
		}
		if fmt.Sprint(live.Rows(key)[0]) != fmt.Sprint(replayed.Rows(key)[0]) {
			t.Errorf("replayed row differs for %s", key)
		}
	}
	// Without a sink, Emit is a harmless no-op (fresh store forces Run).
	if _, err := Run(context.Background(), Config{}, []Job{emittingJob("a")}); err != nil {
		t.Fatal(err)
	}
}
