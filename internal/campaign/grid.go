package campaign

import (
	"fmt"
	"strings"

	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// NamedNet labels an interconnect model for scenario keys ("eth",
// "loaded", ...).
type NamedNet struct {
	Name  string
	Model netmodel.Model
}

// MeshSize is one app-level base-mesh dimension choice (cells in x and y).
type MeshSize struct {
	Nx, Ny int
}

// String renders the mesh the way scenario keys do ("96x24").
func (m MeshSize) String() string { return fmt.Sprintf("%dx%d", m.Nx, m.Ny) }

// Grid is a scenario specification: the cross product of first-class axes
// (Dimension values — ranks, interconnect, cache size, CPU model, mesh,
// flux, or any user-defined machine or application parameter) times seed
// replications. Expanding a Grid yields one Scenario (and hence one
// campaign job) per combination, each with a deterministic per-scenario
// seed derived from the base seed and the scenario key.
//
// Three axes describe the machine identity every scenario key has always
// carried: rank count, interconnect and cache size. Expansion slots them
// into the canonical leading key positions — the swept axis when the grid
// lists one, otherwise a single-valued default derived from Base (key
// segments "p3", "base", "c512kB") — so keys, and hence derived seeds and
// checkpoint hashes, are stable whether or not those axes are swept, and
// grids written against the pre-Dimension API expand byte-identically no
// matter which subset of machine axes they swept. Other unswept axes
// simply do not appear, so adding a dimension to the library never
// perturbs existing grids.
type Grid struct {
	// Base is the template world; every scenario starts from a copy.
	Base mpi.WorldConfig
	// Axes lists the swept dimensions, outermost first. Axis names and
	// value keys must be non-empty and unique (names across the grid, keys
	// within their axis); Scenarios rejects violations, because colliding
	// keys would silently alias scenario seeds and checkpoint entries.
	Axes []Dimension
	// Replications is the number of independently seeded repetitions of
	// each combination. Zero or negative means 1.
	Replications int
	// BaseSeed feeds per-scenario seed derivation. Zero means Base.Seed.
	BaseSeed int64
}

// Scenario is one expanded grid point: a fully specified simulated machine
// plus the coordinates it came from.
type Scenario struct {
	// Key is the stable scenario identifier ("p3/eth/c512kB/r0"), unique
	// within the grid and the input to seed derivation.
	Key string
	// World is the scenario's machine, seed already derived.
	World mpi.WorldConfig
	// Coords locates the scenario along every grid axis, in axis order —
	// including the implicit rank/net/cache defaults when unswept.
	Coords []Coord
	// Replication is the repetition index in [0, Replications).
	Replication int
}

// Coord returns the scenario's coordinate on the named axis.
func (sc Scenario) Coord(axis string) (Coord, bool) {
	for _, c := range sc.Coords {
		if c.Axis == axis {
			return c, true
		}
	}
	return Coord{}, false
}

// Label returns the scenario's key token on the named axis, or "" when the
// axis is not part of the scenario's grid.
func (sc Scenario) Label(axis string) string {
	c, _ := sc.Coord(axis)
	return c.Key
}

// Num returns the scenario's numeric coordinate on the named axis. Axes
// whose payloads are not int, int64 or float64 report false.
func (sc Scenario) Num(axis string) (float64, bool) {
	c, ok := sc.Coord(axis)
	if !ok {
		return 0, false
	}
	switch v := c.Value.(type) {
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	case float64:
		return v, true
	}
	return 0, false
}

// legacyScenario mirrors Scenario's pre-Dimension field set; see GoString.
type legacyScenario struct {
	Key         string
	World       mpi.WorldConfig
	Net         string
	CacheKB     int
	Mesh        MeshSize
	Flux        string
	Replication int
}

// GoString implements fmt.GoStringer (%#v). Checkpoint hashes are SHA-256
// digests of a scenario's %#v rendering, so scenarios whose coordinates
// all lie on the pre-Dimension axes (rank, net, cache, mesh, flux — the
// rank/net/cache values are already visible through World) render exactly
// as the old named-field struct did, keeping stored campaign payloads
// addressable across the API redesign. Coordinates on any other axis are
// appended, so new-axis scenarios hash distinctly.
func (sc Scenario) GoString() string {
	legacy := legacyScenario{
		Key: sc.Key, World: sc.World,
		Net: sc.Label(AxisNet), Flux: sc.Label(AxisFlux),
		Replication: sc.Replication,
	}
	if c, ok := sc.Coord(AxisCache); ok {
		if kb, isInt := c.Value.(int); isInt {
			legacy.CacheKB = kb
		}
	}
	if c, ok := sc.Coord(AxisMesh); ok {
		if m, isMesh := c.Value.(MeshSize); isMesh {
			legacy.Mesh = m
		}
	}
	s := "campaign.Scenario" + strings.TrimPrefix(fmt.Sprintf("%#v", legacy), "campaign.legacyScenario")
	var extra []Coord
	for _, c := range sc.Coords {
		switch c.Axis {
		case AxisRank, AxisNet, AxisCache, AxisMesh, AxisFlux:
		default:
			extra = append(extra, c)
		}
	}
	if len(extra) > 0 {
		s = strings.TrimSuffix(s, "}") + fmt.Sprintf(", Coords:%#v}", extra)
	}
	return s
}

// defaultAxis builds the single-valued implicit axis for an unswept
// rank/net/cache dimension. Values carry no Apply: the base world already
// holds the right setting (and, for the cache, possibly a byte size that
// is not kB-aligned and must not be rounded through a kB count).
func defaultAxis(name string, base mpi.WorldConfig) Dimension {
	switch name {
	case AxisRank:
		return Dimension{Name: AxisRank, Values: []DimValue{
			{Key: fmt.Sprintf("p%d", base.Procs), Value: base.Procs},
		}}
	case AxisNet:
		return Dimension{Name: AxisNet, Values: []DimValue{
			{Key: "base", Value: "base"},
		}}
	default:
		kb := base.Cache.SizeBytes / 1024
		return Dimension{Name: AxisCache, Values: []DimValue{
			{Key: fmt.Sprintf("c%dkB", kb), Value: kb},
		}}
	}
}

// axes returns the grid's effective axis list. The three machine-identity
// axes always occupy the canonical leading positions rank, net, cache —
// swept or defaulted — because scenario keys have always started with
// "p3/eth/c512kB" regardless of which of those dimensions a grid sweeps;
// slotting a swept rank axis anywhere else would re-key (and so re-seed
// and re-checkpoint) grids that used to spell Ranks as a struct field.
// The remaining explicit axes follow in the order given.
func (g Grid) axes() []Dimension {
	used := make([]bool, len(g.Axes))
	out := make([]Dimension, 0, len(g.Axes)+3)
	for _, name := range []string{AxisRank, AxisNet, AxisCache} {
		slotted := false
		for i, d := range g.Axes {
			if d.Name == name && !used[i] {
				out = append(out, d)
				used[i] = true
				slotted = true
				break
			}
		}
		if !slotted {
			out = append(out, defaultAxis(name, g.Base))
		}
	}
	// Any leftover duplicate of a canonical name stays in the list so
	// validate rejects it.
	for i, d := range g.Axes {
		if !used[i] {
			out = append(out, d)
		}
	}
	return out
}

// validate rejects axis sets whose expansion would alias scenario keys —
// and therefore seeds and checkpoint entries — or drop combinations.
func validate(axes []Dimension) error {
	seen := map[string]bool{}
	for _, d := range axes {
		if d.Name == "" {
			return fmt.Errorf("campaign: grid axis with empty name")
		}
		if seen[d.Name] {
			return fmt.Errorf("campaign: duplicate grid axis %q", d.Name)
		}
		seen[d.Name] = true
		if len(d.Values) == 0 {
			return fmt.Errorf("campaign: grid axis %q has no values", d.Name)
		}
		keys := map[string]bool{}
		for _, v := range d.Values {
			if v.Key == "" {
				return fmt.Errorf("campaign: grid axis %q has a value with an empty key", d.Name)
			}
			if keys[v.Key] {
				return fmt.Errorf("campaign: grid axis %q has duplicate value key %q", d.Name, v.Key)
			}
			keys[v.Key] = true
		}
	}
	return nil
}

// Scenarios expands the grid in deterministic nested order: the first axis
// outermost, the last axis innermost, replications innermost of all. Each
// value's key token becomes one segment of the scenario key
// ("p3/eth/c512kB/m96x24/efm/r0"); unswept axes other than the implicit
// rank/net/cache defaults contribute nothing, keeping existing grids' keys
// — and hence their derived seeds and checkpoint hashes — stable.
// Seed-inert axes (SchedAxis) keep their key segment but are excluded from
// seed derivation, so scenarios differing only on such an axis share a
// seed and must produce identical results. It returns an error for
// duplicate axis names, duplicate value keys within an axis (either would
// silently alias scenario keys), or a scenario whose expanded world fails
// mpi validation — a bad tune or scheduler config surfaces here with the
// offending scenario key instead of panicking mid-campaign.
func (g Grid) Scenarios() ([]Scenario, error) {
	axes := g.axes()
	if err := validate(axes); err != nil {
		return nil, err
	}
	reps := g.Replications
	if reps <= 0 {
		reps = 1
	}
	base := g.BaseSeed
	if base == 0 {
		base = g.Base.Seed
	}
	seedInert := false
	for _, d := range axes {
		if d.SeedInert {
			seedInert = true
		}
	}
	total := reps
	for _, d := range axes {
		total *= len(d.Values)
	}
	out := make([]Scenario, 0, total)
	idx := make([]int, len(axes))
	var sb, seedSB strings.Builder
	for {
		for rep := 0; rep < reps; rep++ {
			sb.Reset()
			seedSB.Reset()
			w := g.Base
			coords := make([]Coord, len(axes))
			for ai, d := range axes {
				v := d.Values[idx[ai]]
				if ai > 0 {
					sb.WriteByte('/')
				}
				sb.WriteString(v.Key)
				if !d.SeedInert {
					if seedSB.Len() > 0 {
						seedSB.WriteByte('/')
					}
					seedSB.WriteString(v.Key)
				}
				coords[ai] = Coord{Axis: d.Name, Key: v.Key, Value: v.Value}
				if v.Apply != nil {
					v.Apply(&w)
				}
			}
			fmt.Fprintf(&sb, "/r%d", rep)
			key := sb.String()
			seedKey := key
			if seedInert {
				fmt.Fprintf(&seedSB, "/r%d", rep)
				seedKey = seedSB.String()
			}
			w.Seed = DeriveSeed(base, seedKey)
			if err := w.Validate(); err != nil {
				return nil, fmt.Errorf("campaign: scenario %q: %w", key, err)
			}
			out = append(out, Scenario{
				Key: key, World: w, Coords: coords, Replication: rep,
			})
		}
		// Advance the mixed-radix odometer, last axis fastest.
		ai := len(axes) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return out, nil
		}
	}
}
