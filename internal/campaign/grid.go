package campaign

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// NamedNet labels an interconnect model for scenario keys ("eth",
// "loaded", ...).
type NamedNet struct {
	Name  string
	Model netmodel.Model
}

// MeshSize is one app-level base-mesh dimension choice (cells in x and y).
type MeshSize struct {
	Nx, Ny int
}

// String renders the mesh the way scenario keys do ("96x24").
func (m MeshSize) String() string { return fmt.Sprintf("%dx%d", m.Nx, m.Ny) }

// Grid is a scenario specification: the cross product of the parameters
// the paper's evaluation varies — world-level dimensions (rank count,
// interconnect, cache size) and app-level dimensions (base mesh size, flux
// implementation) — times seed replications. Expanding a Grid yields one
// Scenario (and hence one campaign job) per combination, each with a
// deterministic per-scenario seed derived from the base seed and the
// scenario key.
//
// App-level dimensions are carried as plain labels on the Scenario; the
// harness maps them onto its configs (Flux selects the measured flux
// kernel in sweep grids and the assembly's flux implementation in
// case-study runs; Mesh sets the case study's base grid). An unswept
// dimension contributes no key segment, so adding dimensions never
// perturbs the seeds of existing grids.
type Grid struct {
	// Base is the template world; every scenario starts from a copy.
	Base mpi.WorldConfig
	// Ranks lists the world sizes to sweep. Empty keeps Base.Procs.
	Ranks []int
	// Nets lists the interconnect models to sweep. Empty keeps Base.Net.
	Nets []NamedNet
	// CacheKBs lists per-rank cache capacities in kB. Empty keeps
	// Base.Cache.SizeBytes.
	CacheKBs []int
	// Meshes lists app-level base mesh sizes to sweep. Empty leaves
	// Scenario.Mesh zero (callers keep their configured mesh).
	Meshes []MeshSize
	// Fluxes lists app-level flux choices to sweep ("godunov", "efm").
	// Empty leaves Scenario.Flux empty (callers keep their configured
	// flux / kernel).
	Fluxes []string
	// Replications is the number of independently seeded repetitions of
	// each combination. Zero or negative means 1.
	Replications int
	// BaseSeed feeds per-scenario seed derivation. Zero means Base.Seed.
	BaseSeed int64
}

// Scenario is one expanded grid point: a fully specified simulated machine
// plus the coordinates it came from.
type Scenario struct {
	// Key is the stable scenario identifier ("p3/eth/c512kB/r0"), unique
	// within the grid and the input to seed derivation.
	Key string
	// World is the scenario's machine, seed already derived.
	World mpi.WorldConfig
	// Net names the interconnect dimension value ("base" if unswept).
	Net string
	// CacheKB is the cache capacity in kB.
	CacheKB int
	// Mesh is the app-level base mesh size; zero when the dimension is
	// unswept.
	Mesh MeshSize
	// Flux is the app-level flux choice ("godunov", "efm"); empty when the
	// dimension is unswept.
	Flux string
	// Replication is the repetition index in [0, Replications).
	Replication int
}

// Scenarios expands the grid in deterministic nested order (ranks
// outermost, then nets, caches, meshes, fluxes, with replications
// innermost). A swept app-level dimension adds its segment to the key
// ("p3/eth/c512kB/m96x24/efm/r0"); unswept dimensions contribute nothing,
// keeping existing grids' keys — and hence their derived seeds — stable.
func (g Grid) Scenarios() []Scenario {
	ranks := g.Ranks
	if len(ranks) == 0 {
		ranks = []int{g.Base.Procs}
	}
	nets := g.Nets
	if len(nets) == 0 {
		nets = []NamedNet{{Name: "base", Model: g.Base.Net}}
	}
	// Cache choices carry exact byte sizes so an unswept dimension keeps
	// Base.Cache.SizeBytes untouched (it need not be kB-aligned).
	type cacheChoice struct{ kb, bytes int }
	var caches []cacheChoice
	for _, kb := range g.CacheKBs {
		caches = append(caches, cacheChoice{kb: kb, bytes: kb * 1024})
	}
	if len(caches) == 0 {
		caches = []cacheChoice{{kb: g.Base.Cache.SizeBytes / 1024, bytes: g.Base.Cache.SizeBytes}}
	}
	meshes := g.Meshes
	if len(meshes) == 0 {
		meshes = []MeshSize{{}}
	}
	fluxes := g.Fluxes
	if len(fluxes) == 0 {
		fluxes = []string{""}
	}
	reps := g.Replications
	if reps <= 0 {
		reps = 1
	}
	base := g.BaseSeed
	if base == 0 {
		base = g.Base.Seed
	}
	out := make([]Scenario, 0, len(ranks)*len(nets)*len(caches)*len(meshes)*len(fluxes)*reps)
	for _, p := range ranks {
		for _, net := range nets {
			name := net.Name
			if name == "" {
				name = "base"
			}
			for _, c := range caches {
				for _, mesh := range meshes {
					for _, flux := range fluxes {
						for rep := 0; rep < reps; rep++ {
							key := fmt.Sprintf("p%d/%s/c%dkB", p, name, c.kb)
							if mesh != (MeshSize{}) {
								key += fmt.Sprintf("/m%s", mesh)
							}
							if flux != "" {
								key += "/" + flux
							}
							key += fmt.Sprintf("/r%d", rep)
							w := g.Base
							w.Procs = p
							w.Net = net.Model
							w.Cache.SizeBytes = c.bytes
							w.Seed = DeriveSeed(base, key)
							out = append(out, Scenario{
								Key: key, World: w,
								Net: name, CacheKB: c.kb,
								Mesh: mesh, Flux: flux,
								Replication: rep,
							})
						}
					}
				}
			}
		}
	}
	return out
}
