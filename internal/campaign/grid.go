package campaign

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// NamedNet labels an interconnect model for scenario keys ("eth",
// "loaded", ...).
type NamedNet struct {
	Name  string
	Model netmodel.Model
}

// Grid is a scenario specification: the cross product of world parameters
// the paper's evaluation varies — rank count, interconnect, cache size —
// times seed replications. Expanding a Grid yields one Scenario (and hence
// one campaign job) per combination, each with a deterministic per-scenario
// seed derived from the base seed and the scenario key.
type Grid struct {
	// Base is the template world; every scenario starts from a copy.
	Base mpi.WorldConfig
	// Ranks lists the world sizes to sweep. Empty keeps Base.Procs.
	Ranks []int
	// Nets lists the interconnect models to sweep. Empty keeps Base.Net.
	Nets []NamedNet
	// CacheKBs lists per-rank cache capacities in kB. Empty keeps
	// Base.Cache.SizeBytes.
	CacheKBs []int
	// Replications is the number of independently seeded repetitions of
	// each combination. Zero or negative means 1.
	Replications int
	// BaseSeed feeds per-scenario seed derivation. Zero means Base.Seed.
	BaseSeed int64
}

// Scenario is one expanded grid point: a fully specified simulated machine
// plus the coordinates it came from.
type Scenario struct {
	// Key is the stable scenario identifier ("p3/eth/c512kB/r0"), unique
	// within the grid and the input to seed derivation.
	Key string
	// World is the scenario's machine, seed already derived.
	World mpi.WorldConfig
	// Net names the interconnect dimension value ("base" if unswept).
	Net string
	// CacheKB is the cache capacity in kB.
	CacheKB int
	// Replication is the repetition index in [0, Replications).
	Replication int
}

// Scenarios expands the grid in deterministic nested order (ranks
// outermost, replications innermost).
func (g Grid) Scenarios() []Scenario {
	ranks := g.Ranks
	if len(ranks) == 0 {
		ranks = []int{g.Base.Procs}
	}
	nets := g.Nets
	if len(nets) == 0 {
		nets = []NamedNet{{Name: "base", Model: g.Base.Net}}
	}
	// Cache choices carry exact byte sizes so an unswept dimension keeps
	// Base.Cache.SizeBytes untouched (it need not be kB-aligned).
	type cacheChoice struct{ kb, bytes int }
	var caches []cacheChoice
	for _, kb := range g.CacheKBs {
		caches = append(caches, cacheChoice{kb: kb, bytes: kb * 1024})
	}
	if len(caches) == 0 {
		caches = []cacheChoice{{kb: g.Base.Cache.SizeBytes / 1024, bytes: g.Base.Cache.SizeBytes}}
	}
	reps := g.Replications
	if reps <= 0 {
		reps = 1
	}
	base := g.BaseSeed
	if base == 0 {
		base = g.Base.Seed
	}
	out := make([]Scenario, 0, len(ranks)*len(nets)*len(caches)*reps)
	for _, p := range ranks {
		for _, net := range nets {
			name := net.Name
			if name == "" {
				name = "base"
			}
			for _, c := range caches {
				for rep := 0; rep < reps; rep++ {
					key := fmt.Sprintf("p%d/%s/c%dkB/r%d", p, name, c.kb, rep)
					w := g.Base
					w.Procs = p
					w.Net = net.Model
					w.Cache.SizeBytes = c.bytes
					w.Seed = DeriveSeed(base, key)
					out = append(out, Scenario{
						Key: key, World: w,
						Net: name, CacheKB: c.kb, Replication: rep,
					})
				}
			}
		}
	}
	return out
}
