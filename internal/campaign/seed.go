package campaign

// DeriveSeed maps a campaign base seed and a job's stable key to the seed
// that job's simulated machine should use. Seeds depend only on (base,
// key) — never on worker count, submission order or scheduling — so a
// campaign's random streams are reproducible run to run and replications
// with distinct keys draw statistically independent streams.
//
// The key is folded with FNV-1a and the combined state is finalized with
// the splitmix64 mixer; the result is kept non-negative so it can feed
// rand.NewSource-style APIs that dislike the sign bit.
func DeriveSeed(base int64, key string) int64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	x := h ^ uint64(base)*0x9e3779b97f4a7c15
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x & 0x7fffffffffffffff)
}
