package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClaimer scripts claim verdicts per key and records releases.
type fakeClaimer struct {
	mu       sync.Mutex
	verdict  map[string]func() (ClaimState, error)
	claims   map[string]int
	released map[string]bool // key -> completed flag of the last release
}

func newFakeClaimer() *fakeClaimer {
	return &fakeClaimer{
		verdict:  map[string]func() (ClaimState, error){},
		claims:   map[string]int{},
		released: map[string]bool{},
	}
}

func (f *fakeClaimer) TryClaim(key, hash string) (ClaimState, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.claims[key]++
	if v, ok := f.verdict[key]; ok {
		return v()
	}
	return ClaimRun, nil
}

func (f *fakeClaimer) Release(key, hash string, completed bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.released[key] = completed
	return nil
}

func TestClaimRunExecutesAndReleasesCompleted(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	cl := newFakeClaimer()
	var runs atomic.Int64
	res, err := Run(context.Background(), Config{Store: st, Claimer: cl},
		[]Job{countingJob("job/a", "h", &runs)})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 || res[0].Cached {
		t.Fatalf("runs=%d cached=%v", runs.Load(), res[0].Cached)
	}
	if completed, ok := cl.released["job/a"]; !ok || !completed {
		t.Errorf("release recorded %v, %v; want completed=true", completed, ok)
	}
	if _, ok, _ := st.Get("job/a", "h"); !ok {
		t.Error("payload not stored before release")
	}
}

func TestClaimReleasesFailedJobsUncompleted(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	cl := newFakeClaimer()
	boom := errors.New("boom")
	_, err := Run(context.Background(), Config{Store: st, Claimer: cl}, []Job{{
		Key: "job/f", Hash: "h",
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(_ context.Context, data []byte) (any, error) { return nil, nil },
		Run:    func(context.Context, map[string]any) (any, error) { return nil, boom },
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if completed, ok := cl.released["job/f"]; !ok || completed {
		t.Errorf("release recorded %v, %v; want completed=false", completed, ok)
	}
}

func TestClaimDoneDecodesOtherProcessesPayload(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	payload, _ := json.Marshal("value-from-elsewhere")
	if err := st.Put("job/d", "h", payload); err != nil {
		t.Fatal(err)
	}
	cl := newFakeClaimer()
	// The initial store probe in execute already satisfies the job, so the
	// claimer must never even be consulted when the payload pre-exists.
	res, err := Run(context.Background(), Config{Store: st, Claimer: cl}, []Job{{
		Key: "job/d", Hash: "h",
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(_ context.Context, data []byte) (any, error) {
			var v string
			err := json.Unmarshal(data, &v)
			return v, err
		},
		Run: func(context.Context, map[string]any) (any, error) {
			t.Error("job ran despite stored payload")
			return nil, nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Cached || res[0].Value != "value-from-elsewhere" {
		t.Fatalf("result = %+v", res[0])
	}
	if cl.claims["job/d"] != 0 {
		t.Errorf("claimer consulted %d times for a store hit", cl.claims["job/d"])
	}
}

func TestBusyJobsDeferUntilDoneElsewhere(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	cl := newFakeClaimer()
	// job/busy is held by a fictitious other process; after two probes the
	// other process "completes" it (payload appears) and the claimer
	// reports done.
	var probes atomic.Int64
	cl.verdict["job/busy"] = func() (ClaimState, error) {
		if probes.Add(1) < 3 {
			return ClaimBusy, nil
		}
		payload, _ := json.Marshal("value-elsewhere")
		st.Put("job/busy", "h", payload)
		return ClaimDone, nil
	}
	var runs atomic.Int64
	jobs := []Job{
		{
			Key: "job/busy", Hash: "h",
			Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
			Decode: func(_ context.Context, data []byte) (any, error) {
				var v string
				err := json.Unmarshal(data, &v)
				return v, err
			},
			Run: func(context.Context, map[string]any) (any, error) {
				t.Error("busy job executed locally")
				return nil, nil
			},
		},
		countingJob("job/local", "h", &runs),
	}
	res, err := Run(context.Background(),
		Config{Store: st, Claimer: cl, ClaimBackoff: time.Millisecond, Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Value != "value-elsewhere" || !res[0].Cached {
		t.Fatalf("busy job result = %+v", res[0])
	}
	if res[1].Value != "value-job/local" || runs.Load() != 1 {
		t.Fatalf("local job result = %+v (runs %d)", res[1], runs.Load())
	}
	if probes.Load() < 3 {
		t.Errorf("busy job probed %d times, want >= 3", probes.Load())
	}
}

func TestBusyJobsSettleWithContextErrorOnCancel(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	cl := newFakeClaimer()
	cl.verdict["job/stuck"] = func() (ClaimState, error) { return ClaimBusy, nil }
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	var runs atomic.Int64
	jobs := []Job{
		{
			Key: "job/stuck", Hash: "h",
			Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
			Decode: func(_ context.Context, data []byte) (any, error) { return nil, nil },
			Run:    func(context.Context, map[string]any) (any, error) { return "never", nil },
		},
		countingJob("job/ok", "h", &runs),
	}
	res, err := Run(ctx, Config{Store: st, Claimer: cl, ClaimBackoff: time.Millisecond, Workers: 2}, jobs)
	if err == nil {
		t.Fatal("campaign succeeded despite a permanently busy job")
	}
	if !errors.Is(res[0].Err, context.Canceled) {
		t.Errorf("stuck job err = %v, want context.Canceled", res[0].Err)
	}
	if res[1].Err != nil {
		t.Errorf("healthy job err = %v", res[1].Err)
	}
}

func TestClaimDoneWithMissingPayloadFailsLoudly(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	cl := newFakeClaimer()
	cl.verdict["job/ghost"] = func() (ClaimState, error) { return ClaimDone, nil }
	_, err := Run(context.Background(), Config{Store: st, Claimer: cl}, []Job{{
		Key: "job/ghost", Hash: "h",
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Decode: func(_ context.Context, data []byte) (any, error) { return "v", nil },
		Run:    func(context.Context, map[string]any) (any, error) { return "v", nil },
	}})
	if err == nil {
		t.Fatal("done-without-payload did not fail the job")
	}
}

func TestClaimerSkippedForUncheckpointableJobs(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	cl := newFakeClaimer()
	var runs atomic.Int64
	// No Decode: the job cannot consume another process's payload, so it
	// must run locally without consulting the claimer.
	_, err := Run(context.Background(), Config{Store: st, Claimer: cl}, []Job{{
		Key: "job/nodecode", Hash: "h",
		Encode: func(v any) ([]byte, error) { return json.Marshal(v) },
		Run: func(context.Context, map[string]any) (any, error) {
			runs.Add(1)
			return "v", nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 || cl.claims["job/nodecode"] != 0 {
		t.Errorf("runs=%d claims=%d, want 1 and 0", runs.Load(), cl.claims["job/nodecode"])
	}
}

func TestDeferredJobsKeepDependentsCorrect(t *testing.T) {
	t.Parallel()
	st := newMemStore()
	cl := newFakeClaimer()
	// The dependency is busy for a while, then this process wins it; the
	// dependent must see its value.
	var probes atomic.Int64
	cl.verdict["dep"] = func() (ClaimState, error) {
		if probes.Add(1) < 3 {
			return ClaimBusy, nil
		}
		return ClaimRun, nil
	}
	var runs atomic.Int64
	jobs := []Job{
		countingJob("dep", "h", &runs),
		{
			Key: "down", After: []string{"dep"},
			Run: func(_ context.Context, deps map[string]any) (any, error) {
				return fmt.Sprintf("saw %v", deps["dep"]), nil
			},
		},
	}
	res, err := Run(context.Background(),
		Config{Store: st, Claimer: cl, ClaimBackoff: time.Millisecond, Workers: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Value != "saw value-dep" {
		t.Fatalf("dependent saw %v", res[1].Value)
	}
}
