// Package campaign runs the repository's experiment campaigns — kernel
// sweeps, cache studies, case-study runs, figure regeneration — as a graph
// of independent jobs executed by a worker pool.
//
// Each job owns a self-contained simulated machine (an mpi.World carries
// its own virtual clocks, caches and seeded RNG streams), so independent
// jobs parallelize without perturbing each other's measurements: a campaign
// produces byte-identical results whether it runs on one worker or many.
// Randomness is derived per job from a base seed and the job's stable key
// (DeriveSeed), never from scheduling order.
//
// The executor supports job dependencies (Job.After), context
// cancellation, fail-fast or run-to-completion error aggregation, and
// serialized progress reporting.
//
// With a Store, completed jobs checkpoint and interrupted campaigns
// resume; with a Claimer on top (results/store/lease), N independent
// campaign processes sharing one store partition the job set among
// themselves — each job executes in exactly one process and the rest
// replay its stored payload, so every process's output stays
// byte-identical to a single-process run.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/results"
)

// Job is one schedulable unit of a campaign: typically a full
// simulated-machine run (a sweep, a case study, a model fit) identified by
// a stable key.
type Job struct {
	// Key identifies the job within its campaign. Keys must be unique and
	// non-empty; they name results, seed derivation and progress events.
	Key string
	// After lists the keys of jobs that must complete successfully before
	// this one starts. Their values are handed to Run.
	After []string
	// Run performs the work. deps maps each After key to that job's value.
	// The context is canceled when the campaign aborts.
	Run func(ctx context.Context, deps map[string]any) (any, error)

	// Hash, when non-empty, makes the job checkpointable: before Run, the
	// campaign store (Config.Store) is consulted at (Key, Hash) and a hit
	// settles the job with the decoded payload instead of running it; after
	// a successful run the encoded value is saved. The hash must fingerprint
	// everything the job's output depends on (its full configuration).
	Hash string
	// Encode marshals the job's value for the store. Nil disables saving.
	Encode func(v any) ([]byte, error)
	// Decode unmarshals a stored payload back into the job's value. Nil
	// disables lookup; a decode error is treated as a cache miss and the
	// job runs. The context is the same one Run would have received
	// (carrying the campaign sink), so Decode can replay side effects —
	// typically re-emitting the job's result rows via Emit — and a resumed
	// campaign streams exactly what an uninterrupted one would. Errors
	// from such replays must be wrapped with ErrReplay: they fail the job
	// rather than re-run it, because the rows already emitted cannot be
	// taken back.
	Decode func(ctx context.Context, data []byte) (any, error)
}

// Result is one job's outcome, reported in submission order.
type Result struct {
	// Key is the job's key.
	Key string
	// Value is what Run returned (nil on error or skip).
	Value any
	// Err is the job's failure, a dependency skip (errors.Is ErrDependency)
	// or the campaign context's error if the job never ran.
	Err error
	// Elapsed is the job's real (host) execution time; zero if it never ran.
	Elapsed time.Duration
	// Cached reports that the value came from the checkpoint store and Run
	// was never invoked.
	Cached bool
}

// Event is one progress report, delivered serially as jobs settle.
type Event struct {
	// Key is the job that settled.
	Key string
	// Err is the job's outcome (nil on success).
	Err error
	// Elapsed is the job's real execution time.
	Elapsed time.Duration
	// Done and Total count settled jobs against the campaign size.
	Done, Total int
	// Cached reports that the job was satisfied from the checkpoint store.
	Cached bool
}

// Config tunes a campaign run.
type Config struct {
	// Workers caps concurrent jobs. Zero or negative means
	// runtime.NumCPU(). Worker count never changes results, only wall time.
	Workers int
	// FailFast cancels the remaining jobs after the first failure. The
	// default runs every reachable job and aggregates all errors.
	FailFast bool
	// OnProgress, when set, receives one Event per settled job. Events are
	// delivered serially, in settle order, by a dedicated dispatcher
	// goroutine: a slow callback delays event delivery (and Run's return),
	// never job execution. The callback must not call back into the
	// campaign.
	OnProgress func(Event)
	// Store, when set, checkpoints jobs that carry a Hash: completed
	// payloads are saved under (key, hash) and consulted before running, so
	// an interrupted campaign resumes without re-running finished jobs.
	Store Store
	// Sink, when set, receives the rows jobs emit via Emit(ctx, ...). The
	// sink is flushed (not closed) when the campaign returns; flush errors
	// join the campaign error.
	Sink results.Sink
	// Claimer, when set alongside Store, coordinates this campaign with
	// other independent processes partitioning the same job set over the
	// same store (results/store/lease implements it). Before running a
	// fully checkpointable job (Hash, Encode and Decode all set) that the
	// store does not yet hold, the worker claims it: a ClaimRun runs the
	// job here and releases the claim after the checkpoint is saved; a
	// ClaimDone decodes the payload another process stored (replaying its
	// rows), so this campaign's sink output stays byte-identical to a
	// single-process run; a ClaimBusy defers the job — the worker moves on
	// to other ready jobs and re-tries claimed-elsewhere ones every
	// ClaimBackoff until each is won, stolen or completed.
	Claimer Claimer
	// ClaimBackoff is the poll interval while every runnable job is
	// claimed by another process. Zero means 25ms.
	ClaimBackoff time.Duration
}

// ClaimState is a Claimer's verdict on one job.
type ClaimState int

const (
	// ClaimBusy: another live process holds the job; re-try later.
	ClaimBusy ClaimState = iota
	// ClaimRun: the caller now owns the job and must Release it when the
	// run (and checkpoint save) finishes.
	ClaimRun
	// ClaimDone: another process completed the job; the store holds its
	// payload.
	ClaimDone
)

// String renders the state for diagnostics.
func (s ClaimState) String() string {
	switch s {
	case ClaimBusy:
		return "busy"
	case ClaimRun:
		return "run"
	case ClaimDone:
		return "done"
	}
	return fmt.Sprintf("ClaimState(%d)", int(s))
}

// Claimer arbitrates job ownership among independent campaign processes
// sharing one checkpoint store. TryClaim must grant ClaimRun for a given
// (key, hash) to at most one live claimant at a time, and must report
// ClaimDone once the store holds the job's payload; Release gives a granted
// claim back, with completed reporting whether the payload was stored.
// Implementations must be safe for concurrent use by campaign workers.
type Claimer interface {
	TryClaim(key, hash string) (ClaimState, error)
	Release(key, hash string, completed bool) error
}

// Store is the checkpoint interface the campaign consults for jobs with a
// Hash (results/store.Store implements it). Get reports a missing entry
// with ok=false, not an error; Put must be atomic under concurrent use.
type Store interface {
	Get(key, hash string) (payload []byte, ok bool, err error)
	Put(key, hash string, payload []byte) error
}

// sinkKey carries the campaign sink through job contexts.
type sinkKey struct{}

// WithSink returns a context through which Emit reaches the given sink.
// Run installs the Config.Sink automatically; this is exported for tests
// and for running job closures outside a campaign.
func WithSink(ctx context.Context, s results.Sink) context.Context {
	return context.WithValue(ctx, sinkKey{}, s)
}

// Emit streams one result row from a job to the campaign sink under the
// given key (by convention the emitting job's key). Without a sink in the
// context it is a no-op, so jobs emit unconditionally and stay usable in
// sink-less campaigns.
func Emit(ctx context.Context, key string, row results.Row) error {
	if s, ok := ctx.Value(sinkKey{}).(results.Sink); ok && s != nil {
		return s.Emit(key, row)
	}
	return nil
}

// ErrDependency marks a job skipped because a prerequisite failed.
var ErrDependency = errors.New("campaign: dependency failed")

// ErrReplay marks a Decode failure that happened while replaying a
// checkpointed job's side effects (row emission), after the payload itself
// decoded. Decode hooks wrap such errors so the campaign fails the job
// loudly instead of re-running it — a re-run would emit the already
// replayed rows a second time, silently corrupting sink output.
var ErrReplay = errors.New("campaign: checkpoint replay failed")

// state tracks one job through the scheduler.
type state struct {
	waiting    int   // unmet prerequisites
	dependents []int // jobs waiting on this one
	settled    bool
}

// Run executes the jobs under cfg and returns their results in submission
// order. The returned error aggregates every job failure (errors.Join),
// wrapped with the failing job's key; it is nil only if every job
// succeeded. Structural problems — duplicate or empty keys, unknown or
// cyclic dependencies, a nil Run — fail the whole campaign before any job
// starts.
func Run(ctx context.Context, cfg Config, jobs []Job) ([]Result, error) {
	n := len(jobs)
	results := make([]Result, n)
	index := make(map[string]int, n)
	for i, j := range jobs {
		results[i].Key = j.Key
		if j.Key == "" {
			return nil, fmt.Errorf("campaign: job %d has an empty key", i)
		}
		if j.Run == nil {
			return nil, fmt.Errorf("campaign: job %q has a nil Run", j.Key)
		}
		if prev, dup := index[j.Key]; dup {
			return nil, fmt.Errorf("campaign: duplicate job key %q (jobs %d and %d)", j.Key, prev, i)
		}
		index[j.Key] = i
	}
	states := make([]state, n)
	for i, j := range jobs {
		for _, dep := range j.After {
			di, ok := index[dep]
			if !ok {
				return nil, fmt.Errorf("campaign: job %q waits on unknown job %q", j.Key, dep)
			}
			if di == i {
				return nil, fmt.Errorf("campaign: job %q waits on itself", j.Key)
			}
			states[i].waiting++
			states[di].dependents = append(states[di].dependents, i)
		}
	}
	if err := checkAcyclic(jobs, states); err != nil {
		return nil, err
	}
	if n == 0 {
		return results, nil
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Sink != nil {
		ctx = WithSink(ctx, cfg.Sink)
	}

	// Observability (when globally enabled) records one trace track per
	// worker plus lifecycle counters. It is strictly write-only: nothing
	// here feeds back into scheduling, so observed and unobserved
	// campaigns produce byte-identical results.
	var tracks []*obs.Track
	var met campMetrics
	if o := obs.Active(); o != nil {
		tracks = make([]*obs.Track, workers)
		for w := range tracks {
			//repolint:allow obscapture -- one Track per worker, resolved once here at campaign construction, then reused for every job
			tracks[w] = o.Tracer().Track("campaign", fmt.Sprintf("worker %02d", w))
		}
		met = newCampMetrics(o.Metrics())
	}

	run := &runState{
		ctx:    ctx,
		cancel: cancel,
		cfg:    cfg,
		tracks: tracks,
		met:    met,
		// Jobs are copied so settled entries can be dropped without
		// mutating the caller's slice: a job's closures (and anything they
		// capture, like a streaming job's emitted rows awaiting Encode)
		// become collectable as soon as it settles, keeping campaign
		// memory bounded by the jobs in flight.
		jobs:    append([]Job(nil), jobs...),
		states:  states,
		index:   index,
		results: results,
		total:   n,
	}
	run.cond = sync.NewCond(&run.mu)
	run.mu.Lock()
	for i := range jobs {
		if states[i].waiting == 0 {
			run.ready = append(run.ready, i)
		}
	}
	run.mu.Unlock()

	var dispatchDone chan struct{}
	if cfg.OnProgress != nil {
		dispatchDone = make(chan struct{})
		go run.dispatch(dispatchDone)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run.work(w)
		}(w)
	}
	wg.Wait()
	if dispatchDone != nil {
		run.mu.Lock()
		run.cond.Broadcast()
		run.mu.Unlock()
		<-dispatchDone
	}

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("job %q: %w", results[i].Key, results[i].Err))
		}
	}
	if cfg.Sink != nil {
		if err := cfg.Sink.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("campaign: sink flush: %w", err))
		}
	}
	return results, errors.Join(errs...)
}

// campMetrics caches the campaign's registry instruments. The zero
// value (all nil, observability disabled) is valid: every update is a
// nil-safe no-op.
type campMetrics struct {
	settled  *obs.Counter
	cached   *obs.Counter
	failed   *obs.Counter
	skipped  *obs.Counter
	deferred *obs.Counter
	polls    *obs.Counter
	jobUS    *obs.Histogram
}

func newCampMetrics(reg *obs.Registry) campMetrics {
	return campMetrics{
		settled:  reg.Counter("campaign_jobs_settled_total"),
		cached:   reg.Counter("campaign_jobs_cached_total"),
		failed:   reg.Counter("campaign_jobs_failed_total"),
		skipped:  reg.Counter("campaign_jobs_skipped_total"),
		deferred: reg.Counter("campaign_jobs_deferred_total"),
		polls:    reg.Counter("campaign_claim_polls_total"),
		jobUS:    reg.Histogram("campaign_job_us", obs.LatencyBucketsUS),
	}
}

// runState is the scheduler shared by a campaign's workers.
type runState struct {
	ctx    context.Context
	cancel context.CancelFunc
	cfg    Config
	jobs   []Job
	states []state
	index  map[string]int // job key -> slice position
	tracks []*obs.Track   // per-worker trace lanes; nil when unobserved
	met    campMetrics

	mu       sync.Mutex
	cond     *sync.Cond
	ready    []int // indices with no unmet deps, ascending
	deferred []int // runnable jobs currently claimed by another process
	polling  bool  // one worker is sleeping a claim-backoff interval
	results  []Result
	pending  []Event // settled but undelivered progress events
	done     int
	total    int
}

// dispatch delivers queued progress events in settle order, decoupling the
// user's callback from the scheduler: workers only append to the queue.
func (r *runState) dispatch(done chan struct{}) {
	defer close(done)
	r.mu.Lock()
	for {
		for len(r.pending) == 0 && r.done < r.total {
			r.cond.Wait()
		}
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return
		}
		batch := r.pending
		r.pending = nil
		r.mu.Unlock()
		for _, e := range batch {
			r.cfg.OnProgress(e)
		}
		r.mu.Lock()
	}
}

// work is one worker's loop: claim the lowest-index ready job, run it,
// settle it, repeat until every job has settled. Jobs a Claimer reports
// busy (claimed by another process) are deferred, not settled: when the
// ready list drains with deferred jobs outstanding, one worker sleeps a
// claim-backoff interval and requeues them, so the campaign keeps probing
// until every job is won, stolen or observed completed in the store.
func (r *runState) work(w int) {
	var tr *obs.Track
	if r.tracks != nil {
		tr = r.tracks[w]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		for len(r.ready) == 0 && r.done < r.total {
			if len(r.deferred) > 0 && !r.polling {
				r.pollLocked()
				continue
			}
			r.cond.Wait()
		}
		if len(r.ready) == 0 {
			return // every job settled
		}
		i := r.ready[0]
		r.ready = r.ready[1:]

		if err := r.ctx.Err(); err != nil {
			r.settleLocked(i, nil, err, 0, false)
			continue
		}
		job := r.jobs[i]
		deps := make(map[string]any, len(job.After))
		for _, dep := range job.After {
			deps[dep] = r.results[r.index[dep]].Value
		}
		r.mu.Unlock()
		v, elapsed, cached, busy, err := r.execute(tr, job, deps)
		r.mu.Lock()
		if busy {
			r.deferred = append(r.deferred, i)
			continue
		}
		r.settleLocked(i, v, err, elapsed, cached)
	}
}

// pollLocked parks the calling worker for one claim-backoff interval and
// then requeues every deferred job. Exactly one worker polls at a time
// (r.polling); the rest wait on the condition variable and wake when the
// poller broadcasts. Caller holds r.mu; the lock is released while
// sleeping. Context cancellation cuts the sleep short — the requeued jobs
// then settle with the context's error as workers pick them up.
func (r *runState) pollLocked() {
	r.polling = true
	backoff := r.cfg.ClaimBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	r.met.polls.Inc()
	r.mu.Unlock()
	t := time.NewTimer(backoff)
	select {
	case <-t.C:
	case <-r.ctx.Done():
		t.Stop()
	}
	r.mu.Lock()
	r.ready = append(r.ready, r.deferred...)
	sort.Ints(r.ready)
	r.deferred = r.deferred[:0]
	r.polling = false
	r.cond.Broadcast()
}

// execute satisfies one claimed job: from the checkpoint store when the
// job is checkpointable and a payload exists, otherwise by running it (and
// saving the new payload). A store read failure or an undecodable payload
// degrades to a cache miss; a replay failure (ErrReplay: the payload
// decoded but re-emitting its rows failed partway) fails the job instead
// of re-running it, since a re-run would duplicate the replayed rows; and
// a failure to save a finished result is a job error — silently losing the
// checkpoint would make "resume re-runs nothing" a lie.
//
// With a Claimer configured, a fully checkpointable job that misses the
// store is arbitrated before running: busy=true reports that another
// process holds it (the scheduler defers and re-tries), ClaimDone decodes
// the payload that process stored, and ClaimRun runs the job here under
// the claim, releasing it after the checkpoint save so other processes
// flip from busy to done without ever re-executing the job.
//
//repolint:allow wallclock -- job elapsed time is measurement metadata (progress events, obs spans, lease audit); it never reaches rendered output or hashes
func (r *runState) execute(tr *obs.Track, job Job, deps map[string]any) (v any, elapsed time.Duration, cached, busy bool, err error) {
	sp := tr.Begin("job", job.Key)
	defer func() {
		if busy {
			// A busy probe is a moment, not an occupancy: record it as an
			// instant so the worker lane shows the retry pattern without a
			// wall of zero-width spans.
			tr.Instant("claim", job.Key, obs.Arg{Name: "state", Value: "busy"})
			r.met.deferred.Inc()
			return
		}
		status := "run"
		switch {
		case err != nil:
			status = "error"
		case cached:
			status = "cached"
		}
		sp.End(obs.Arg{Name: "status", Value: status})
	}()
	start := time.Now()
	checkpointed := job.Hash != "" && r.cfg.Store != nil
	if checkpointed && job.Decode != nil {
		if data, ok, gerr := r.cfg.Store.Get(job.Key, job.Hash); gerr == nil && ok {
			v, derr := job.Decode(r.ctx, data)
			if derr == nil {
				return v, time.Since(start), true, false, nil
			}
			if errors.Is(derr, ErrReplay) {
				return nil, time.Since(start), true, false, derr
			}
		}
	}
	claimed := false
	if r.cfg.Claimer != nil && checkpointed && job.Encode != nil && job.Decode != nil {
		state, cerr := r.cfg.Claimer.TryClaim(job.Key, job.Hash)
		if cerr != nil {
			return nil, time.Since(start), false, false, fmt.Errorf("claim: %w", cerr)
		}
		switch state {
		case ClaimBusy:
			return nil, 0, false, true, nil
		case ClaimDone:
			// The store holds the payload another process saved. A decode
			// failure here is a loud job error, not a cache miss: re-running
			// a job the protocol proved completed elsewhere would duplicate
			// its execution (and its replayed rows).
			data, ok, gerr := r.cfg.Store.Get(job.Key, job.Hash)
			if gerr != nil || !ok {
				return nil, time.Since(start), false, false,
					fmt.Errorf("claim reported done but store get failed (ok=%v): %w", ok, gerr)
			}
			dv, derr := job.Decode(r.ctx, data)
			if derr != nil {
				return nil, time.Since(start), true, false, fmt.Errorf("claimed checkpoint decode: %w", derr)
			}
			return dv, time.Since(start), true, false, nil
		case ClaimRun:
			claimed = true
		}
	}
	v, err = job.Run(r.ctx, deps)
	if err == nil && checkpointed && job.Encode != nil {
		if data, eerr := job.Encode(v); eerr != nil {
			err = fmt.Errorf("checkpoint encode: %w", eerr)
		} else if perr := r.cfg.Store.Put(job.Key, job.Hash, data); perr != nil {
			err = fmt.Errorf("checkpoint save: %w", perr)
		}
	}
	if claimed {
		if rerr := r.cfg.Claimer.Release(job.Key, job.Hash, err == nil); rerr != nil && err == nil {
			err = fmt.Errorf("claim release: %w", rerr)
		}
	}
	if err != nil {
		v = nil
	}
	return v, time.Since(start), false, false, err
}

// settleLocked records a job's outcome, releases or skips its dependents,
// and emits the progress event. Caller holds r.mu.
func (r *runState) settleLocked(i int, v any, err error, elapsed time.Duration, cached bool) {
	r.results[i].Value = v
	r.results[i].Err = err
	r.results[i].Elapsed = elapsed
	r.results[i].Cached = cached
	r.states[i].settled = true
	r.jobs[i] = Job{Key: r.jobs[i].Key} // release the job's closures
	r.done++
	r.met.settled.Inc()
	if cached {
		r.met.cached.Inc()
	}
	r.met.jobUS.Observe(float64(elapsed) / 1e3)
	if err != nil {
		r.met.failed.Inc()
		if r.cfg.FailFast {
			r.cancel()
		}
		r.skipDependentsLocked(i)
	} else {
		for _, d := range r.states[i].dependents {
			r.states[d].waiting--
			if r.states[d].waiting == 0 {
				r.insertReadyLocked(d)
			}
		}
	}
	if r.cfg.OnProgress != nil {
		r.pending = append(r.pending, Event{
			Key: r.results[i].Key, Err: err, Elapsed: elapsed,
			Done: r.done, Total: r.total, Cached: cached,
		})
	}
	r.cond.Broadcast()
}

// skipDependentsLocked settles every job downstream of a failed one with
// ErrDependency, transitively.
func (r *runState) skipDependentsLocked(failed int) {
	for _, d := range r.states[failed].dependents {
		if r.states[d].settled {
			continue
		}
		r.states[d].settled = true
		r.results[d].Err = fmt.Errorf("%w: %q", ErrDependency, r.results[failed].Key)
		r.done++
		r.met.settled.Inc()
		r.met.skipped.Inc()
		if r.cfg.OnProgress != nil {
			r.pending = append(r.pending, Event{
				Key: r.results[d].Key, Err: r.results[d].Err,
				Done: r.done, Total: r.total,
			})
		}
		r.skipDependentsLocked(d)
	}
}

// insertReadyLocked adds index i to the ready list keeping it ascending, so
// workers always claim the earliest-submitted runnable job.
func (r *runState) insertReadyLocked(i int) {
	at := sort.SearchInts(r.ready, i)
	r.ready = append(r.ready, 0)
	copy(r.ready[at+1:], r.ready[at:])
	r.ready[at] = i
}

// checkAcyclic rejects dependency cycles with a Kahn pass over the
// already-built dependents adjacency, O(jobs + edges).
func checkAcyclic(jobs []Job, states []state) error {
	waiting := make([]int, len(jobs))
	var queue []int
	for i := range states {
		waiting[i] = states[i].waiting
		if waiting[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range states[i].dependents {
			waiting[d]--
			if waiting[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(jobs) {
		var cyclic []string
		for i, j := range jobs {
			if waiting[i] > 0 {
				cyclic = append(cyclic, j.Key)
			}
		}
		return fmt.Errorf("campaign: dependency cycle among %v", cyclic)
	}
	return nil
}
