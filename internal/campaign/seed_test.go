package campaign

import (
	"fmt"
	"testing"
)

// TestDeriveSeedGolden pins the exact seed values: DeriveSeed is part of
// every checkpoint hash's provenance (a scenario's seed feeds its world
// config), so silently changing the mixing function would orphan every
// stored campaign payload and change every regenerated figure. Update
// these values only with a deliberate, documented format break.
func TestDeriveSeedGolden(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		base int64
		key  string
		want int64
	}{
		{1, "p3/eth/c512kB/r0", 5732272385581717469},
		{1, "p3/eth/c512kB/r1", 4467539322364264211},
		{42, "sweep/states", 1542933958950888846},
		{0, "", 8442584544778250395},
	} {
		if got := DeriveSeed(tc.base, tc.key); got != tc.want {
			t.Errorf("DeriveSeed(%d, %q) = %d, want %d", tc.base, tc.key, got, tc.want)
		}
	}
}

// TestDeriveSeedNoCollisionsAcrossWideGrid sweeps a 10k-key grid shaped
// like real campaign keys and requires every derived seed to be unique:
// replications with colliding seeds would silently measure the same
// simulated machine twice.
func TestDeriveSeedNoCollisionsAcrossWideGrid(t *testing.T) {
	t.Parallel()
	seen := make(map[int64]string, 10_000)
	n := 0
	for _, p := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32} {
		for _, net := range []string{"eth", "loaded", "quiet", "base", "myrinet"} {
			for _, kb := range []int{64, 128, 256, 512, 1024} {
				for rep := 0; rep < 20; rep++ {
					for _, base := range []int64{1, 7} {
						key := fmt.Sprintf("p%d/%s/c%dkB/r%d", p, net, kb, rep)
						s := DeriveSeed(base, key)
						id := fmt.Sprintf("base%d/%s", base, key)
						if prev, dup := seen[s]; dup {
							t.Fatalf("seed collision: %s and %s -> %d", prev, id, s)
						}
						seen[s] = id
						n++
					}
				}
			}
		}
	}
	if n != 10_000 {
		t.Fatalf("grid produced %d keys, want 10000", n)
	}
}

// TestDeriveSeedIndependentOfSharedState re-derives interleaved with other
// derivations: the function must be pure (stability across runs within a
// process; the golden test pins stability across builds).
func TestDeriveSeedIndependentOfSharedState(t *testing.T) {
	t.Parallel()
	first := make([]int64, 100)
	for i := range first {
		first[i] = DeriveSeed(int64(i), fmt.Sprintf("k%d", i))
	}
	for i := 99; i >= 0; i-- {
		if got := DeriveSeed(int64(i), fmt.Sprintf("k%d", i)); got != first[i] {
			t.Fatalf("re-derivation %d drifted: %d vs %d", i, got, first[i])
		}
	}
}
