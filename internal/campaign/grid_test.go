package campaign

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/netmodel"
)

func TestGridCrossProduct(t *testing.T) {
	t.Parallel()
	g := Grid{
		Base:         mpi.DefaultConfig(),
		Ranks:        []int{2, 3},
		Nets:         []NamedNet{{Name: "eth", Model: netmodel.FastEthernet()}, {Name: "quiet", Model: netmodel.Model{LatencyUS: 10, BytesPerUS: 100}}},
		CacheKBs:     []int{128, 512},
		Replications: 3,
	}
	scs := g.Scenarios()
	if len(scs) != 2*2*2*3 {
		t.Fatalf("%d scenarios, want 24", len(scs))
	}
	keys := map[string]bool{}
	seeds := map[int64]bool{}
	for _, sc := range scs {
		if keys[sc.Key] {
			t.Errorf("duplicate key %s", sc.Key)
		}
		keys[sc.Key] = true
		if seeds[sc.World.Seed] {
			t.Errorf("duplicate seed for %s", sc.Key)
		}
		seeds[sc.World.Seed] = true
		if sc.World.Cache.SizeBytes != sc.CacheKB*1024 {
			t.Errorf("%s: cache %d bytes vs %d kB", sc.Key, sc.World.Cache.SizeBytes, sc.CacheKB)
		}
	}
	if scs[0].Key != "p2/eth/c128kB/r0" {
		t.Errorf("first key = %s", scs[0].Key)
	}
	// Expansion is deterministic.
	again := g.Scenarios()
	for i := range scs {
		if scs[i].Key != again[i].Key || scs[i].World.Seed != again[i].World.Seed {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
}

func TestGridEmptyDimensionsKeepBase(t *testing.T) {
	t.Parallel()
	base := mpi.DefaultConfig()
	scs := Grid{Base: base}.Scenarios()
	if len(scs) != 1 {
		t.Fatalf("%d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.World.Procs != base.Procs || sc.World.Cache.SizeBytes != base.Cache.SizeBytes {
		t.Errorf("scenario departed from base: %+v", sc)
	}
	if sc.World.Net != base.Net {
		t.Errorf("net departed from base")
	}

	// An unswept cache dimension must keep the exact byte size even when it
	// is not kB-aligned.
	odd := mpi.DefaultConfig()
	odd.Cache.SizeBytes = 98_816 // 96.5 kB
	got := Grid{Base: odd}.Scenarios()
	if got[0].World.Cache.SizeBytes != 98_816 {
		t.Errorf("unswept cache size rounded: %d bytes", got[0].World.Cache.SizeBytes)
	}

	// Unswept app-level dimensions contribute neither key segments nor
	// scenario values, keeping pre-existing grids' keys (and seeds) stable.
	sc = got[0]
	if sc.Mesh != (MeshSize{}) || sc.Flux != "" {
		t.Errorf("unswept app dims populated: %+v", sc)
	}
	if want := "p3/base/c96kB/r0"; sc.Key != want {
		t.Errorf("key = %s, want %s", sc.Key, want)
	}
}

func TestGridAppDimensions(t *testing.T) {
	t.Parallel()
	g := Grid{
		Base:         mpi.DefaultConfig(),
		CacheKBs:     []int{128, 512},
		Meshes:       []MeshSize{{96, 24}, {192, 48}},
		Fluxes:       []string{"godunov", "efm"},
		Replications: 2,
	}
	scs := g.Scenarios()
	if len(scs) != 2*2*2*2 {
		t.Fatalf("%d scenarios, want 16", len(scs))
	}
	// Deterministic nested order: caches > meshes > fluxes > reps, with
	// the swept app dims appearing as key segments.
	wantKeys := []string{
		"p3/base/c128kB/m96x24/godunov/r0",
		"p3/base/c128kB/m96x24/godunov/r1",
		"p3/base/c128kB/m96x24/efm/r0",
		"p3/base/c128kB/m96x24/efm/r1",
		"p3/base/c128kB/m192x48/godunov/r0",
	}
	for i, want := range wantKeys {
		if scs[i].Key != want {
			t.Errorf("key[%d] = %s, want %s", i, scs[i].Key, want)
		}
	}
	seeds := map[int64]bool{}
	for _, sc := range scs {
		if sc.Mesh.Nx == 0 || sc.Flux == "" {
			t.Errorf("%s: app dims not populated: %+v", sc.Key, sc)
		}
		if seeds[sc.World.Seed] {
			t.Errorf("%s: duplicate seed", sc.Key)
		}
		seeds[sc.World.Seed] = true
	}
	// Expansion determinism: two expansions agree field by field.
	again := g.Scenarios()
	for i := range scs {
		if scs[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, scs[i], again[i])
		}
	}
}
