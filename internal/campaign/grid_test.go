package campaign

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// expand fails the test on a grid expansion error.
func expand(t *testing.T, g Grid) []Scenario {
	t.Helper()
	scs, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

func TestGridCrossProduct(t *testing.T) {
	t.Parallel()
	g := Grid{
		Base: mpi.DefaultConfig(),
		Axes: []Dimension{
			RankAxis(2, 3),
			NetAxis(NamedNet{Name: "eth", Model: netmodel.FastEthernet()},
				NamedNet{Name: "quiet", Model: netmodel.Model{LatencyUS: 10, BytesPerUS: 100}}),
			CacheAxis(128, 512),
		},
		Replications: 3,
	}
	scs := expand(t, g)
	if len(scs) != 2*2*2*3 {
		t.Fatalf("%d scenarios, want 24", len(scs))
	}
	keys := map[string]bool{}
	seeds := map[int64]bool{}
	for _, sc := range scs {
		if keys[sc.Key] {
			t.Errorf("duplicate key %s", sc.Key)
		}
		keys[sc.Key] = true
		if seeds[sc.World.Seed] {
			t.Errorf("duplicate seed for %s", sc.Key)
		}
		seeds[sc.World.Seed] = true
		kb, ok := sc.Num(AxisCache)
		if !ok || sc.World.Cache.SizeBytes != int(kb)*1024 {
			t.Errorf("%s: cache %d bytes vs %g kB coordinate", sc.Key, sc.World.Cache.SizeBytes, kb)
		}
		if p, ok := sc.Num(AxisRank); !ok || sc.World.Procs != int(p) {
			t.Errorf("%s: procs %d vs %g rank coordinate", sc.Key, sc.World.Procs, p)
		}
	}
	if scs[0].Key != "p2/eth/c128kB/r0" {
		t.Errorf("first key = %s", scs[0].Key)
	}
	// Expansion is deterministic.
	again := expand(t, g)
	for i := range scs {
		if scs[i].Key != again[i].Key || scs[i].World.Seed != again[i].World.Seed {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
}

func TestGridEmptyDimensionsKeepBase(t *testing.T) {
	t.Parallel()
	base := mpi.DefaultConfig()
	scs := expand(t, Grid{Base: base})
	if len(scs) != 1 {
		t.Fatalf("%d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.World.Procs != base.Procs || sc.World.Cache.SizeBytes != base.Cache.SizeBytes {
		t.Errorf("scenario departed from base: %+v", sc)
	}
	if sc.World.Net != base.Net {
		t.Errorf("net departed from base")
	}

	// An unswept cache dimension must keep the exact byte size even when it
	// is not kB-aligned.
	odd := mpi.DefaultConfig()
	odd.Cache.SizeBytes = 98_816 // 96.5 kB
	got := expand(t, Grid{Base: odd})
	if got[0].World.Cache.SizeBytes != 98_816 {
		t.Errorf("unswept cache size rounded: %d bytes", got[0].World.Cache.SizeBytes)
	}

	// Unswept axes beyond the implicit rank/net/cache defaults contribute
	// neither key segments nor coordinates, keeping pre-existing grids'
	// keys (and seeds) stable.
	sc = got[0]
	if _, ok := sc.Coord(AxisMesh); ok {
		t.Errorf("unswept mesh axis has a coordinate: %+v", sc.Coords)
	}
	if sc.Label(AxisFlux) != "" {
		t.Errorf("unswept flux axis has a coordinate: %+v", sc.Coords)
	}
	if want := "p3/base/c96kB/r0"; sc.Key != want {
		t.Errorf("key = %s, want %s", sc.Key, want)
	}
	if sc.Label(AxisNet) != "base" {
		t.Errorf("default net coordinate = %q, want base", sc.Label(AxisNet))
	}
}

func TestGridAppDimensions(t *testing.T) {
	t.Parallel()
	g := Grid{
		Base: mpi.DefaultConfig(),
		Axes: []Dimension{
			CacheAxis(128, 512),
			MeshAxis(MeshSize{96, 24}, MeshSize{192, 48}),
			FluxAxis("godunov", "efm"),
		},
		Replications: 2,
	}
	scs := expand(t, g)
	if len(scs) != 2*2*2*2 {
		t.Fatalf("%d scenarios, want 16", len(scs))
	}
	// Deterministic nested order: caches > meshes > fluxes > reps, with
	// the swept app axes appearing as key segments.
	wantKeys := []string{
		"p3/base/c128kB/m96x24/godunov/r0",
		"p3/base/c128kB/m96x24/godunov/r1",
		"p3/base/c128kB/m96x24/efm/r0",
		"p3/base/c128kB/m96x24/efm/r1",
		"p3/base/c128kB/m192x48/godunov/r0",
	}
	for i, want := range wantKeys {
		if scs[i].Key != want {
			t.Errorf("key[%d] = %s, want %s", i, scs[i].Key, want)
		}
	}
	seeds := map[int64]bool{}
	for _, sc := range scs {
		mc, ok := sc.Coord(AxisMesh)
		if !ok || mc.Value.(MeshSize).Nx == 0 || sc.Label(AxisFlux) == "" {
			t.Errorf("%s: app coordinates not populated: %+v", sc.Key, sc.Coords)
		}
		if seeds[sc.World.Seed] {
			t.Errorf("%s: duplicate seed", sc.Key)
		}
		seeds[sc.World.Seed] = true
	}
	// Expansion determinism: two expansions agree field by field.
	again := expand(t, g)
	for i := range scs {
		if scs[i].Key != again[i].Key || scs[i].World != again[i].World ||
			scs[i].Replication != again[i].Replication ||
			fmt.Sprint(scs[i].Coords) != fmt.Sprint(again[i].Coords) {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, scs[i], again[i])
		}
	}
}

// TestGridCPUAxis checks the new machine axis end to end: key tokens,
// coordinates, and the world tune that scenarios carry.
func TestGridCPUAxis(t *testing.T) {
	t.Parallel()
	g := Grid{
		Base: mpi.DefaultConfig(),
		Axes: []Dimension{CPUAxis(
			mpi.CPUTune{ClockScale: 0.5},
			mpi.CPUTune{},
			mpi.CPUTune{ClockScale: 2, MissScale: 1.5},
		)},
	}
	scs := expand(t, g)
	if len(scs) != 3 {
		t.Fatalf("%d scenarios, want 3", len(scs))
	}
	wantKeys := []string{
		"p3/base/c512kB/cpu0.5x/r0",
		"p3/base/c512kB/cpu1x/r0",
		"p3/base/c512kB/cpu2x-m1.5/r0",
	}
	for i, want := range wantKeys {
		if scs[i].Key != want {
			t.Errorf("key[%d] = %s, want %s", i, scs[i].Key, want)
		}
	}
	if scs[0].World.Tune != (mpi.CPUTune{ClockScale: 0.5}) {
		t.Errorf("tune not applied: %+v", scs[0].World.Tune)
	}
	if !scs[1].World.Tune.IsZero() {
		t.Errorf("identity tune perturbed the world: %+v", scs[1].World.Tune)
	}
	c, ok := scs[2].Coord(AxisCPU)
	if !ok || c.Value.(mpi.CPUTune).MissScale != 1.5 {
		t.Errorf("cpu coordinate = %+v", c)
	}
}

// TestGridRejectsCollisions pins the duplicate-detection contract: aliased
// axis names or value keys would silently collide scenario keys — and
// hence seeds and checkpoint entries — so expansion must refuse them.
func TestGridRejectsCollisions(t *testing.T) {
	t.Parallel()
	base := mpi.DefaultConfig()
	for name, g := range map[string]Grid{
		"duplicate axis name": {Base: base, Axes: []Dimension{
			CacheAxis(128), CacheAxis(512),
		}},
		"duplicate value key": {Base: base, Axes: []Dimension{
			CacheAxis(128, 256, 128),
		}},
		"empty axis name": {Base: base, Axes: []Dimension{
			{Name: "", Values: []DimValue{{Key: "x"}}},
		}},
		"empty value key": {Base: base, Axes: []Dimension{
			{Name: "mode", Values: []DimValue{{Key: ""}}},
		}},
		"no values": {Base: base, Axes: []Dimension{
			{Name: "mode"},
		}},
		"shadowed implicit axis duplicated": {Base: base, Axes: []Dimension{
			RankAxis(2), RankAxis(3),
		}},
	} {
		if _, err := g.Scenarios(); err == nil {
			t.Errorf("%s: expansion succeeded", name)
		}
	}

	// Distinct keys across different axes are fine (segments are
	// positional), as is sweeping an implicit axis explicitly once.
	ok := Grid{Base: base, Axes: []Dimension{
		RankAxis(2, 3),
		FluxAxis("godunov"),
		{Name: "mode", Values: []DimValue{{Key: "godunov"}}},
	}}
	if _, err := ok.Scenarios(); err != nil {
		t.Errorf("legitimate grid rejected: %v", err)
	}
}

// TestGridCanonicalMachineAxisOrder pins the key-position contract: the
// rank/net/cache axes occupy the canonical leading key segments whether
// swept or defaulted and wherever the caller listed them, because the
// pre-Dimension API always spelled keys "p<r>/<net>/c<kb>kB/..." — a
// rank-only or net-only grid migrated mechanically must keep its keys
// (and so its seeds and checkpoint entries).
func TestGridCanonicalMachineAxisOrder(t *testing.T) {
	t.Parallel()
	base := mpi.DefaultConfig()
	for _, tc := range []struct {
		name string
		axes []Dimension
		want string
	}{
		{"rank only", []Dimension{RankAxis(2, 3)}, "p2/base/c512kB/r0"},
		{"net only", []Dimension{NetAxis(NamedNet{Name: "eth", Model: netmodel.FastEthernet()})}, "p3/eth/c512kB/r0"},
		{"cache listed after flux", []Dimension{FluxAxis("efm"), CacheAxis(128)}, "p3/base/c128kB/efm/r0"},
		{"machine axes in scrambled order", []Dimension{CacheAxis(128), RankAxis(2)}, "p2/base/c128kB/r0"},
	} {
		scs := expand(t, Grid{Base: base, Axes: tc.axes})
		if scs[0].Key != tc.want {
			t.Errorf("%s: key = %s, want %s", tc.name, scs[0].Key, tc.want)
		}
	}
}

// TestGridCustomDimension exercises a user-defined axis: a name the
// library has never heard of, value keys in the scenario key, and an Apply
// mutating the world.
func TestGridCustomDimension(t *testing.T) {
	t.Parallel()
	lat := Dimension{Name: "latency", Values: []DimValue{
		{Key: "lat10", Value: 10.0, Apply: func(w *mpi.WorldConfig) { w.Net.LatencyUS = 10 }},
		{Key: "lat100", Value: 100.0, Apply: func(w *mpi.WorldConfig) { w.Net.LatencyUS = 100 }},
	}}
	scs := expand(t, Grid{Base: mpi.DefaultConfig(), Axes: []Dimension{lat}})
	if len(scs) != 2 {
		t.Fatalf("%d scenarios, want 2", len(scs))
	}
	if scs[0].Key != "p3/base/c512kB/lat10/r0" || scs[1].Key != "p3/base/c512kB/lat100/r0" {
		t.Errorf("keys = %s, %s", scs[0].Key, scs[1].Key)
	}
	if scs[0].World.Net.LatencyUS != 10 || scs[1].World.Net.LatencyUS != 100 {
		t.Errorf("latency not applied: %g, %g", scs[0].World.Net.LatencyUS, scs[1].World.Net.LatencyUS)
	}
	if v, ok := scs[1].Num("latency"); !ok || v != 100 {
		t.Errorf("numeric coordinate = %g, %v", v, ok)
	}
	// Custom coordinates hash distinctly: the legacy GoString rendering
	// appends them.
	if !strings.Contains(fmt.Sprintf("%#v", scs[0]), `Coords:[]campaign.Coord{campaign.Coord{Axis:"latency"`) {
		t.Errorf("custom coordinate missing from GoString: %#v", scs[0])
	}
}

// BenchmarkGridScenarios expands a 10k-scenario grid — the allocation
// budget of grid expansion must stay flat as axes are added, because
// cmd/figures expands the grid twice per run (job build + trend join).
func BenchmarkGridScenarios(b *testing.B) {
	g := Grid{
		Base: mpi.DefaultConfig(),
		Axes: []Dimension{
			RankAxis(1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
			NetAxis(NamedNet{Name: "eth", Model: netmodel.FastEthernet()},
				NamedNet{Name: "quiet", Model: netmodel.Model{LatencyUS: 10, BytesPerUS: 100}}),
			CacheAxis(64, 128, 256, 512, 1024),
			CPUClockAxis(0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3, 4),
			FluxAxis("godunov", "efm"),
		},
		Replications: 5,
	}
	scs, err := g.Scenarios()
	if err != nil {
		b.Fatal(err)
	}
	if len(scs) != 10_000 {
		b.Fatalf("%d scenarios, want 10000", len(scs))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Scenarios(); err != nil {
			b.Fatal(err)
		}
	}
}
