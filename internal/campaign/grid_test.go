package campaign

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/netmodel"
)

func TestGridCrossProduct(t *testing.T) {
	t.Parallel()
	g := Grid{
		Base:         mpi.DefaultConfig(),
		Ranks:        []int{2, 3},
		Nets:         []NamedNet{{Name: "eth", Model: netmodel.FastEthernet()}, {Name: "quiet", Model: netmodel.Model{LatencyUS: 10, BytesPerUS: 100}}},
		CacheKBs:     []int{128, 512},
		Replications: 3,
	}
	scs := g.Scenarios()
	if len(scs) != 2*2*2*3 {
		t.Fatalf("%d scenarios, want 24", len(scs))
	}
	keys := map[string]bool{}
	seeds := map[int64]bool{}
	for _, sc := range scs {
		if keys[sc.Key] {
			t.Errorf("duplicate key %s", sc.Key)
		}
		keys[sc.Key] = true
		if seeds[sc.World.Seed] {
			t.Errorf("duplicate seed for %s", sc.Key)
		}
		seeds[sc.World.Seed] = true
		if sc.World.Cache.SizeBytes != sc.CacheKB*1024 {
			t.Errorf("%s: cache %d bytes vs %d kB", sc.Key, sc.World.Cache.SizeBytes, sc.CacheKB)
		}
	}
	if scs[0].Key != "p2/eth/c128kB/r0" {
		t.Errorf("first key = %s", scs[0].Key)
	}
	// Expansion is deterministic.
	again := g.Scenarios()
	for i := range scs {
		if scs[i].Key != again[i].Key || scs[i].World.Seed != again[i].World.Seed {
			t.Fatalf("expansion not deterministic at %d", i)
		}
	}
}

func TestGridEmptyDimensionsKeepBase(t *testing.T) {
	t.Parallel()
	base := mpi.DefaultConfig()
	scs := Grid{Base: base}.Scenarios()
	if len(scs) != 1 {
		t.Fatalf("%d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.World.Procs != base.Procs || sc.World.Cache.SizeBytes != base.Cache.SizeBytes {
		t.Errorf("scenario departed from base: %+v", sc)
	}
	if sc.World.Net != base.Net {
		t.Errorf("net departed from base")
	}

	// An unswept cache dimension must keep the exact byte size even when it
	// is not kB-aligned.
	odd := mpi.DefaultConfig()
	odd.Cache.SizeBytes = 98_816 // 96.5 kB
	got := Grid{Base: odd}.Scenarios()
	if got[0].World.Cache.SizeBytes != 98_816 {
		t.Errorf("unswept cache size rounded: %d bytes", got[0].World.Cache.SizeBytes)
	}
}
