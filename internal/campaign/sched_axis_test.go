package campaign

import (
	"strings"
	"testing"

	"repro/internal/mpi"
)

// TestSchedAxisExpansion: the scheduler axis contributes key segments but
// not seeds — scenarios differing only in scheduler share a derived seed
// (they are the same experiment executed differently), while every other
// identity (key, world seed per cache value, coordinates) stays intact.
func TestSchedAxisExpansion(t *testing.T) {
	t.Parallel()
	base := mpi.DefaultConfig()
	plain := Grid{
		Base:         base,
		Axes:         []Dimension{CacheAxis(128, 512)},
		Replications: 2,
	}
	swept := plain
	swept.Axes = append([]Dimension{}, plain.Axes...)
	swept.Axes = append(swept.Axes, SchedAxis(
		SchedChoice{Mode: mpi.Serial},
		SchedChoice{Mode: mpi.ConservativeParallel, MaxParallelRanks: 4},
	))

	plainScs, err := plain.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	scs, err := swept.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2*len(plainScs) {
		t.Fatalf("swept grid has %d scenarios, want %d", len(scs), 2*len(plainScs))
	}
	seedOf := map[string]int64{}
	for _, sc := range plainScs {
		seedOf[sc.Key] = sc.World.Seed
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Key] {
			t.Fatalf("duplicate scenario key %q", sc.Key)
		}
		seen[sc.Key] = true
		label := sc.Label(AxisSched)
		if label != "serial" && label != "par4" {
			t.Fatalf("scenario %q: sched label %q", sc.Key, label)
		}
		// Strip the sched segment: the remaining key must be a plain-grid
		// scenario with the SAME derived seed (the axis is seed-inert).
		bare := strings.Replace(sc.Key, "/"+label, "", 1)
		want, ok := seedOf[bare]
		if !ok {
			t.Fatalf("scenario %q has no plain counterpart %q", sc.Key, bare)
		}
		if sc.World.Seed != want {
			t.Errorf("scenario %q: seed %d, want %d (sched axis must be seed-inert)", sc.Key, sc.World.Seed, want)
		}
		choice := sc.Coords[len(sc.Coords)-1].Value.(SchedChoice)
		if sc.World.Sched != choice.Mode || sc.World.MaxParallelRanks != choice.MaxParallelRanks {
			t.Errorf("scenario %q: world sched %v/%d does not reflect coordinate %+v",
				sc.Key, sc.World.Sched, sc.World.MaxParallelRanks, choice)
		}
	}
}

// TestSchedModeAxisKeys pins the stable key tokens.
func TestSchedModeAxisKeys(t *testing.T) {
	t.Parallel()
	d := SchedModeAxis(mpi.Serial, mpi.ConservativeParallel)
	if d.Name != AxisSched || !d.SeedInert {
		t.Fatalf("SchedModeAxis = %+v, want seed-inert %q axis", d, AxisSched)
	}
	if d.Values[0].Key != "serial" || d.Values[1].Key != "par" {
		t.Fatalf("keys = %q, %q; want serial, par", d.Values[0].Key, d.Values[1].Key)
	}
}

// TestScenariosRejectsInvalidWorld: an invalid tune or scheduler config is
// rejected at expansion with the offending scenario key, instead of a late
// NewWorld panic inside a campaign worker.
func TestScenariosRejectsInvalidWorld(t *testing.T) {
	t.Parallel()
	base := mpi.DefaultConfig()
	base.MaxParallelRanks = -1
	if _, err := (Grid{Base: base}).Scenarios(); err == nil ||
		!strings.Contains(err.Error(), "MaxParallelRanks -1") {
		t.Errorf("negative MaxParallelRanks accepted: %v", err)
	}

	tuned := Grid{
		Base: mpi.DefaultConfig(),
		Axes: []Dimension{CPUAxis(mpi.CPUTune{ClockScale: -2})},
	}
	_, err := tuned.Scenarios()
	if err == nil || !strings.Contains(err.Error(), "CPU tune") {
		t.Errorf("negative clock scale accepted: %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "scenario") {
		t.Errorf("error does not name the scenario: %v", err)
	}
}
