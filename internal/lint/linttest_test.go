package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture copies internal/lint/testdata/src/<name> into a throwaway
// module, loads it, runs exactly one analyzer plus the suppression
// layer, and checks the unsuppressed diagnostics against the fixtures'
// `// want "regexp"` comments — the analysistest contract, stdlib-only.
// Suppressed diagnostics must not match a want (that is how fixtures
// prove //repolint:allow works) but are returned for extra assertions.
func runFixture(t *testing.T, a *Analyzer, name string) []Diagnostic {
	t.Helper()
	src := filepath.Join("testdata", "src", name)
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := copyTree(src, dir); err != nil {
		t.Fatal(err)
	}

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on fixture %s: %v", a.Name, name, err)
	}

	wants := collectWants(t, dir)
	matched := map[*want]bool{}
	for _, d := range Unsuppressed(diags) {
		rel, _ := filepath.Rel(dir, d.Path)
		w := findWant(wants, rel, d.Line)
		if w == nil {
			t.Errorf("unexpected diagnostic %s:%d: [%s] %s", rel, d.Line, d.Analyzer, d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want %q", rel, d.Line, d.Message, w.re)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
	return diags
}

// want is one `// want "re"` expectation parsed from a fixture.
type want struct {
	file string // relative to the fixture module root
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// collectWants parses every fixture file's trailing want comments.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	var out []*want
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		rel, _ := filepath.Rel(dir, path)
		for _, group := range f.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, rerr := regexp.Compile(m[1])
				if rerr != nil {
					return fmt.Errorf("%s: bad want %q: %w", path, m[1], rerr)
				}
				out = append(out, &want{file: rel, line: fset.Position(c.Pos()).Line, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func findWant(wants []*want, file string, line int) *want {
	for _, w := range wants {
		if w.file == file && w.line == line {
			return w
		}
	}
	return nil
}

// copyTree mirrors src into dst (regular files only).
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// countSuppressed tallies diagnostics an allow directive absorbed.
func countSuppressed(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Suppressed {
			n++
		}
	}
	return n
}
