package lint

import (
	"go/ast"
	"go/types"
)

// Wallclock flags reads of nondeterministic ambient state — wall
// clocks, the global math/rand stream, process identity — anywhere in
// production code. Deterministic paths (mpi, platform, cache, tau,
// campaign, harness, results, perfmodel) must derive every value from
// config and seeds so reruns are byte-identical; the legitimate
// exceptions (lease heartbeats, obs span timestamps, bench
// fingerprints, distributed owner ids) carry //repolint:allow
// annotations that double as documentation of intent.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flags wall-clock reads, global math/rand and process identity in deterministic paths",
	Run:  runWallclock,
}

// seededRandConstructors are the math/rand entry points that are fine in
// deterministic code: they consume an explicit seed or source, which is
// exactly the discipline the invariant demands.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// wallclockKind classifies a function object, or returns "".
func wallclockKind(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "" // methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are seeded/derived state
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "wall clock"
		}
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[fn.Name()] {
			return "global RNG"
		}
	case "os":
		switch fn.Name() {
		case "Getpid", "Getppid", "Hostname":
			return "process identity"
		}
	}
	return ""
}

func runWallclock(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if kind := wallclockKind(fn); kind != "" {
				p.Reportf(id.Pos(), "%s.%s reads %s; deterministic paths must derive values from config and seeds (annotate `%s wallclock -- why` if intentional)",
					fn.Pkg().Name(), fn.Name(), kind, directivePrefix)
			}
			return true
		})
	}
	return nil
}
