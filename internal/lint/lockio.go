package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockio flags file/network I/O and blocking channel operations
// performed while a mutex acquired in the same function is still held —
// the starvation shape the distributed-lease review found: slow lease
// file I/O under the manager mutex delayed heartbeat renewal until live
// leases went stale and were stolen. The check is intraprocedural and
// source-ordered (an Unlock textually before the operation clears the
// hold; a deferred Unlock holds to the end), which matches how the
// store/lease code is written. Locks that exist precisely to serialize
// one slot's I/O carry //repolint:allow lockio annotations explaining
// the design.
var Lockio = &Analyzer{
	Name: "lockio",
	Doc:  "flags file/network I/O and blocking channel ops while a locally acquired mutex is held",
	Run:  runLockio,
}

// pureOSFuncs are os-package functions that read process state without
// touching the filesystem or network; they are safe under a lock.
var pureOSFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true, "ExpandEnv": true,
	"Getpid": true, "Getppid": true, "Getuid": true, "Geteuid": true, "Getgid": true, "Getegid": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
	"IsPathSeparator": true, "TempDir": true, "UserHomeDir": true, "UserCacheDir": true, "UserConfigDir": true,
	"NewSyscallError": true, "Exit": true,
}

// lockMethods maps sync mutex method names to +1 (acquire) / -1
// (release), keyed by the method's types.Func full name.
var lockMethods = map[string]int{
	"(*sync.Mutex).Lock":      +1,
	"(*sync.Mutex).TryLock":   +1,
	"(*sync.Mutex).Unlock":    -1,
	"(*sync.RWMutex).Lock":    +1,
	"(*sync.RWMutex).RLock":   +1,
	"(*sync.RWMutex).Unlock":  -1,
	"(*sync.RWMutex).RUnlock": -1,
}

func runLockio(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockIO(p, fn.Body)
				}
				return false
			case *ast.FuncLit:
				checkLockIO(p, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// lockEvent classifies a call as a lock acquire/release on a rendered
// receiver expression ("m.mu"), or returns delta 0.
func lockEvent(p *Pass, call *ast.CallExpr) (recv string, delta int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", 0
	}
	d, ok := lockMethods[fn.FullName()]
	if !ok {
		return "", 0
	}
	return types.ExprString(sel.X), d
}

// ioOperation classifies a call as file or network I/O, or returns "".
func ioOperation(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	path := fn.Pkg().Path()
	if sig.Recv() != nil {
		// Methods on *os.File (and the net Conn/Listener families) are
		// I/O; other methods from those packages (error types, address
		// stringers) are not.
		recv := sig.Recv().Type()
		if ptr, okp := recv.(*types.Pointer); okp {
			recv = ptr.Elem()
		}
		named, okn := recv.(*types.Named)
		if !okn {
			return ""
		}
		switch {
		case path == "os" && named.Obj().Name() == "File":
			if fn.Name() == "Name" || fn.Name() == "Fd" {
				return "" // accessors on the handle, no filesystem round trip
			}
			return "os.File." + fn.Name()
		case path == "net" && (named.Obj().Name() == "TCPConn" || named.Obj().Name() == "UDPConn" ||
			named.Obj().Name() == "UnixConn" || named.Obj().Name() == "TCPListener"):
			return "net." + named.Obj().Name() + "." + fn.Name()
		}
		return ""
	}
	switch path {
	case "os":
		if !pureOSFuncs[fn.Name()] {
			return "os." + fn.Name()
		}
	case "net":
		return "net." + fn.Name()
	case "os/exec", "io/ioutil":
		return path + "." + fn.Name()
	}
	return ""
}

// checkLockIO walks one function body in source order, tracking which
// locally acquired mutexes are held, and reports I/O and blocking
// channel operations performed while any are. Nested function literals
// are skipped (they run on their own goroutine or at defer time, with
// their own analysis); defer statements' calls run after the body, so
// only a deferred Unlock is interpreted (as "held to the end").
func checkLockIO(p *Pass, body *ast.BlockStmt) {
	held := map[string]token.Pos{}
	heldCount := 0
	// skipSelects collects channel ops inside a select that has a
	// default clause: those are non-blocking by construction.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, okc := clause.(*ast.CommClause); okc && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			ast.Inspect(sel, func(inner ast.Node) bool {
				switch inner.(type) {
				case *ast.SendStmt, *ast.UnaryExpr:
					nonBlocking[inner] = true
				}
				return true
			})
		}
		return true
	})

	report := func(pos token.Pos, what string) {
		if heldCount == 0 {
			return
		}
		// Pick the lexically smallest held lock so the message is stable.
		lockName := ""
		for name := range held {
			if lockName == "" || name < lockName {
				lockName = name
			}
		}
		p.Reportf(pos, "%s while mutex %q is held; move the I/O off the critical section (a slow operation here starves every other holder — the lease-heartbeat starvation bug class)", what, lockName)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// Only a deferred Unlock is meaningful here: it keeps the
			// lock held for the rest of the body. Deferred I/O runs
			// after the function's own statements; skip it.
			if recv, delta := lockEvent(p, n.Call); delta < 0 {
				_ = recv // deferred unlock: leave the lock held to the end
			}
			return false
		case *ast.CallExpr:
			if recv, delta := lockEvent(p, n); delta != 0 {
				switch {
				case delta > 0:
					if _, already := held[recv]; !already {
						held[recv] = n.Pos()
						heldCount++
					}
				case delta < 0:
					if _, ok := held[recv]; ok {
						delete(held, recv)
						heldCount--
					}
				}
				return true
			}
			if what := ioOperation(p, n); what != "" {
				report(n.Pos(), what)
			}
		case *ast.SendStmt:
			if !nonBlocking[n] {
				report(n.Pos(), "blocking channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !nonBlocking[n] {
				report(n.Pos(), "blocking channel receive")
			}
		}
		return true
	})
}
