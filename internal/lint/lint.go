// Package lint is repolint's static-analysis engine: six custom
// analyzers that enforce, at build time, the determinism invariants the
// rest of the repository proves at run time with golden tests.
//
// Every guarantee this reproduction makes — byte-identical output across
// worker counts, resumed checkpoints, scheduler modes and distributed
// owners — rests on hygiene rules (no wall clocks or global RNG in
// deterministic paths, no unsorted map iteration feeding sinks or
// hashes, %#v-pinned structs whose GoString shims cover every field, no
// mutex held across lease I/O, obs instruments captured at
// construction, a package doc comment on every package so the written
// API contract stays anchored in the source). Violations used to
// surface only when a golden test
// caught changed bytes; the analyzers here catch them before the code
// runs.
//
// The engine is deliberately self-contained: it is a small reimplementation
// of the golang.org/x/tools/go/analysis shape (Analyzer, Pass, Diagnostic,
// testdata fixtures with "want" comments) on the standard library alone —
// packages are listed with `go list -export`, parsed with go/parser and
// type-checked with go/types against compiler export data, so the suite
// needs no network access and no third-party modules.
//
// Intentional nondeterminism is annotated in the source:
//
//	//repolint:allow wallclock -- lease heartbeats are wall-clock by design
//
// The directive suppresses the named analyzer (comma-separate several) on
// its own line and the line below it; placed in a function's doc comment
// it covers the whole function. The reason after " -- " is mandatory —
// the allowlist doubles as documentation of every site where
// nondeterminism is intentional. Malformed directives are themselves
// diagnostics.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //repolint:allow directives.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run reports the analyzer's findings on one package through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Path:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, suppressed or not. Suppressed findings stay
// visible (cmd/repolint -json emits them) so the allowlist is auditable.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Path     string `json:"path"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Suppressed marks a diagnostic covered by a //repolint:allow
	// directive; Reason carries the directive's mandatory justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// String renders the conventional file:line:col prefix form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Path, d.Line, d.Col, d.Analyzer, d.Message)
}
