package lint

import (
	"go/ast"
	"go/types"
)

// Mapiter flags ranging over a map when the iteration order can leak
// into rendered bytes: the loop body writes to an io.Writer (fmt.Fprint*
// or a Write/WriteString-family method — string builders and hashes
// included), emits into a results sink, or appends to a slice the
// function returns without sorting it first. Go randomizes map order per
// run, so any such loop silently breaks byte-identity — the exact bug
// class the obs text-exposition fix caught at run time. Collecting keys
// into a slice, sorting, and iterating the slice is the sanctioned
// pattern and is not flagged.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration whose order can reach writers, sinks, hashes or returned slices",
	Run:  runMapiter,
}

// orderSinkCall classifies a call inside a map-range body as
// order-sensitive, or returns "".
func orderSinkCall(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg().Path() == "fmt" && len(fn.Name()) > 6 && fn.Name()[:6] == "Fprint" {
			return "an io.Writer via fmt." + fn.Name()
		}
		return ""
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo":
		return "a writer via " + fn.Name()
	case "Emit":
		return "a results sink via Emit"
	}
	return ""
}

func runMapiter(p *Pass) error {
	for _, f := range p.Files {
		// Analyze each function body independently so the
		// append-to-returned-slice check sees the right return
		// statements.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkMapRanges(p, fn.Body, fn.Type.Results)
				}
				return false
			case *ast.FuncLit:
				checkMapRanges(p, fn.Body, fn.Type.Results)
				return false
			}
			return true
		})
	}
	return nil
}

// checkMapRanges scans one function body (excluding nested function
// literals' own ranges, which get their own call) for order-leaking map
// range statements.
func checkMapRanges(p *Pass, body *ast.BlockStmt, results *ast.FieldList) {
	returned := returnedObjects(p, body, results)
	sorted := sortedObjects(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkMapRanges(p, n.Body, n.Type.Results)
			return false
		case *ast.RangeStmt:
			tv, ok := p.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			reportOrderLeaks(p, n, returned, sorted)
		}
		return true
	})
}

// reportOrderLeaks inspects one map-range body for order-sensitive
// effects. Nested function literals are included: code in a literal
// declared inside the loop still runs per iteration.
func reportOrderLeaks(p *Pass, rng *ast.RangeStmt, returned, sorted map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what := orderSinkCall(p, n); what != "" {
				p.Reportf(n.Pos(), "map iteration order feeds %s; iterate sorted keys instead (map order is randomized per run)", what)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				obj := exprObject(p, n.Lhs[i])
				if obj != nil && returned[obj] && !sorted[obj] {
					p.Reportf(n.Pos(), "map iteration appends to %q, which this function returns unsorted; sort it (or the keys) before returning (map order is randomized per run)", obj.Name())
				}
			}
		}
		return true
	})
}

// returnedObjects collects the variables a function returns: named
// results plus any identifier appearing directly in a return statement
// of this body (nested function literals excluded).
func returnedObjects(p *Pass, body *ast.BlockStmt, results *ast.FieldList) map[types.Object]bool {
	out := map[types.Object]bool{}
	if results != nil {
		for _, field := range results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := exprObject(p, res); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// sortedObjects collects variables passed anywhere in the body to a
// sort.* or slices.Sort* call — the "keys are sorted first" escape
// hatch: append-then-sort-then-return is deterministic.
func sortedObjects(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if obj := exprObject(p, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// exprObject resolves an identifier or selector expression to its
// variable object, unwrapping parentheses.
func exprObject(p *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}
