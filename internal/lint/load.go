package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matching patterns
// under dir. Only the matched packages are loaded from source; every
// dependency — standard library included — is imported from the
// compiler export data `go list -export` materializes in the build
// cache, so loading works offline with no modules beyond the stdlib.
// Test files are not loaded: the invariants guard production paths, and
// tests legitimately use wall clocks and ad-hoc RNG.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, exports, alias, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if resolved, ok := alias[path]; ok {
			path = resolved
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, lp := range pkgs {
		p, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// goList shells out to `go list -deps -export -json` and splits the
// result into root packages to analyze, an ImportPath -> export-data
// map covering every dependency, and the union of the packages'
// ImportMaps (vendored stdlib import renames).
func goList(dir string, patterns []string) (roots []listPkg, exports, alias map[string]string, err error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,ImportMap,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	exports = map[string]string{}
	alias = map[string]string{}
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, nil, fmt.Errorf("lint: go list output: %w", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			alias[from] = to
		}
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, nil, nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		roots = append(roots, lp)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	return roots, exports, alias, nil
}

// typeCheck parses one listed package's files and type-checks them with
// full use/def/selection information.
func typeCheck(fset *token.FileSet, imp types.Importer, lp listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if n := len(typeErrs); n > 5 {
			typeErrs = append(typeErrs[:5], fmt.Sprintf("... and %d more", n-5))
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", lp.ImportPath, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
