package lint

// All returns the repolint analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Gostringpin, Lockio, Mapiter, Obscapture, Pkgdoc, Wallclock}
}
