// Package obs mirrors the real observability package's lookup shape
// (package name, type names, method names) so the obscapture fixtures
// can exercise the analyzer without importing the real module.
package obs

type Observer struct {
	reg Registry
	tr  Tracer
}

func Active() *Observer { return nil }

func (o *Observer) Metrics() *Registry { return &o.reg }
func (o *Observer) Tracer() *Tracer    { return &o.tr }

type Counter struct{}

func (c *Counter) Inc() {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter                { return nil }
func (r *Registry) Gauge(name string) *Counter                  { return nil }
func (r *Registry) Histogram(name string, b []float64) *Counter { return nil }

type Track struct{}

type Tracer struct{}

func (t *Tracer) Track(process, name string) *Track { return nil }
