// Package clean is the obscapture negative fixture: instruments are
// captured once outside every loop.
package clean

import "fixture/obs"

type worker struct {
	jobs *obs.Counter
}

func newWorker(reg *obs.Registry) *worker {
	return &worker{jobs: reg.Counter("jobs_total")}
}

// Run updates the captured instrument per job — no lookups in the loop.
func (w *worker) Run(n int) {
	for i := 0; i < n; i++ {
		w.jobs.Inc()
	}
}
