// Package a exercises the obscapture analyzer: per-iteration instrument
// lookups versus capture at construction.
package a

import "fixture/obs"

// PerCallLookups resolve instruments inside the loop — flagged.
func PerCallLookups(tr *obs.Tracer, n int) {
	for i := 0; i < n; i++ {
		if o := obs.Active(); o != nil { // want "obs.Active\(\) looked up inside a loop"
			o.Metrics().Counter("x").Inc() // want "Registry.Counter looked up inside a loop"
		}
		_ = tr.Track("p", "n") // want "Tracer.Track looked up inside a loop"
	}
}

// CapturedAtConstruction resolves once, then updates in the loop.
func CapturedAtConstruction(reg *obs.Registry, n int) {
	c := reg.Counter("x")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// ConstructionLoop builds one track per worker once, at setup — the
// sanctioned shape, annotated the way the real construction loops are.
func ConstructionLoop(tr *obs.Tracer, workers int) []*obs.Track {
	tracks := make([]*obs.Track, workers)
	for w := range tracks {
		//repolint:allow obscapture -- fixture: one track per worker, resolved once at construction
		tracks[w] = tr.Track("campaign", "worker")
	}
	return tracks
}
