// Package clean is documented, so pkgdoc stays silent. The doc comment
// may live in any one file of the package; extra.go has none and that
// is fine.
package clean

func Clean() int { return 1 }
