// Command cmd shows the main-package doc style; it counts as a package
// doc comment like any other.
package main

func main() {}
