package clean

func Extra() int { return 2 }
