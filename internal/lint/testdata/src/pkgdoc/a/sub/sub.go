package sub //repolint:allow pkgdoc -- fixture: proves the directive suppresses the package-doc diagnostic

func Sub() int { return 3 }
