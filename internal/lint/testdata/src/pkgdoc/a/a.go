package a // want "package a has no package doc comment"

func A() int { return 1 }
