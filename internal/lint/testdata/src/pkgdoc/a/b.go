package a

// B is documented, but the package itself is not: declaration docs do
// not substitute for a package clause doc comment. Only the
// alphabetically first file (a.go) carries the diagnostic.
func B() int { return 2 }
