// Package clean is the mapiter negative fixture: the sanctioned
// collect-sort-iterate pattern and order-insensitive reductions.
package clean

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys collects, sorts, then writes — deterministic despite the
// map range, because only the sorted slice reaches the writer.
func SortedKeys(w io.Writer, m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
	return keys
}

// Reduce consumes the map order-insensitively.
func Reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// LocalScratch appends map keys to a slice that never escapes.
func LocalScratch(m map[string]int) int {
	var scratch []string
	for k := range m {
		scratch = append(scratch, k)
	}
	return len(scratch)
}
