// Package a exercises the mapiter analyzer: map iteration order leaking
// into writers, sinks and returned slices.
package a

import (
	"fmt"
	"io"
	"strings"
)

// Sink mirrors the results sink shape.
type Sink interface {
	Emit(key string, v int) error
}

// WriteDirect leaks map order into the writer.
func WriteDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "map iteration order feeds an io.Writer"
	}
}

// BuildString leaks map order through a strings.Builder.
func BuildString(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "map iteration order feeds a writer"
	}
	return sb.String()
}

// EmitAll leaks map order into a results sink.
func EmitAll(s Sink, m map[string]int) {
	for k, v := range m {
		s.Emit(k, v) // want "results sink"
	}
}

// ReturnUnsorted returns keys in map order.
func ReturnUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "returns unsorted"
	}
	return keys
}
