// Package clean is the wallclock negative fixture: derived time and
// seeded RNG only — the analyzer must stay silent here.
package clean

import "math/rand"

// Step advances a virtual clock deterministically.
func Step(virtualUS float64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return virtualUS + rng.Float64()
}
