// Package a exercises the wallclock analyzer: ambient nondeterminism is
// flagged, seeded derivation is not, and annotated sites are allowed.
package a

import (
	"math/rand"
	"os"
	"time"
)

func Flagged() (int64, float64, int) {
	t := time.Now()     // want "time.Now reads wall clock"
	d := time.Since(t)  // want "time.Since reads wall clock"
	f := rand.Float64() // want "rand.Float64 reads global RNG"
	pid := os.Getpid()  // want "os.Getpid reads process identity"
	_ = d
	return t.UnixNano(), f, pid
}

// Clean derives every value from an explicit seed — the sanctioned
// pattern.
func Clean(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Allowed is annotated: suppressed, but still visible in -json output.
func Allowed() time.Time {
	//repolint:allow wallclock -- fixture: heartbeat timestamps are wall-clock by design
	return time.Now()
}

//repolint:allow wallclock // want "directive needs a reason"
//repolint:allow nosuchanalyzer -- x // want "unknown analyzer"
