// Package a exercises the gostringpin analyzer: a %#v-pinned struct
// whose GoString shim forgot a field.
package a

import "fmt"

// Pinned grew an Extra field nobody taught the shim about — setting it
// would silently change every %#v-derived checkpoint hash.
type Pinned struct {
	A     int
	B     string
	Extra float64
}

func (p Pinned) GoString() string { // want "does not handle field \"Extra\""
	return fmt.Sprintf("a.Pinned{A:%d, B:%q}", p.A, p.B)
}
