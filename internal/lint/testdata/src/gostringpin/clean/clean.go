// Package clean is the gostringpin negative fixture: every field is
// handled, including one folded through a legacy mirror struct the way
// the real shims work.
package clean

import (
	"fmt"
	"strings"
)

type legacyPinned struct {
	A int
	B string
}

// Pinned renders through a legacy mirror plus an appended new field.
type Pinned struct {
	A   int
	B   string
	New float64
}

func (p Pinned) GoString() string {
	legacy := legacyPinned{A: p.A, B: p.B}
	s := "clean.Pinned" + strings.TrimPrefix(fmt.Sprintf("%#v", legacy), "clean.legacyPinned")
	if p.New != 0 {
		s = strings.TrimSuffix(s, "}") + fmt.Sprintf(", New:%v}", p.New)
	}
	return s
}

// Unshimmed has no GoString method and is never checked.
type Unshimmed struct {
	Whatever int
}
