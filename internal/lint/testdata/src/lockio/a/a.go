// Package a exercises the lockio analyzer: file I/O and blocking
// channel operations while a locally acquired mutex is held.
package a

import (
	"os"
	"sync"
)

type Guarded struct {
	mu   sync.Mutex
	path string
	ch   chan int
}

// WriteUnder holds the lock (deferred unlock) across file I/O.
func (g *Guarded) WriteUnder(data []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return os.WriteFile(g.path, data, 0o644) // want "os.WriteFile while mutex"
}

// SendUnder blocks on a channel with the lock held.
func (g *Guarded) SendUnder(v int) {
	g.mu.Lock()
	g.ch <- v // want "blocking channel send"
	g.mu.Unlock()
}

// WriteAfter unlocks before the I/O — clean.
func (g *Guarded) WriteAfter(data []byte) error {
	g.mu.Lock()
	p := g.path
	g.mu.Unlock()
	return os.WriteFile(p, data, 0o644)
}

// TrySend is non-blocking by construction — clean.
func (g *Guarded) TrySend(v int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.ch <- v:
		return true
	default:
		return false
	}
}

// Allowed documents a lock that exists precisely to serialize this
// file's I/O; the doc-comment directive covers the whole function.
//
//repolint:allow lockio -- fixture: the slot lock serializes this one file by design
func (g *Guarded) Allowed(data []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return os.WriteFile(g.path, data, 0o644)
}
