// Package clean is the lockio negative fixture: locks guard memory,
// I/O runs outside the critical section.
package clean

import (
	"os"
	"sync"
)

type Cache struct {
	mu    sync.Mutex
	items map[string][]byte
}

// Store snapshots under the lock, writes after releasing it.
func (c *Cache) Store(path, key string) error {
	c.mu.Lock()
	data := c.items[key]
	c.mu.Unlock()
	return os.WriteFile(path, data, 0o644)
}

// Pure state reads under a lock are fine.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
