package lint

import (
	"path/filepath"
	"testing"
)

func TestWallclockFixture(t *testing.T) {
	diags := runFixture(t, Wallclock, filepath.Join("wallclock", "a"))
	if got := countSuppressed(diags); got < 1 {
		t.Errorf("wallclock fixture: want at least 1 suppressed diagnostic (the Allowed func), got %d", got)
	}
}

func TestWallclockClean(t *testing.T) {
	runFixture(t, Wallclock, filepath.Join("wallclock", "clean"))
}

func TestMapiterFixture(t *testing.T) {
	runFixture(t, Mapiter, filepath.Join("mapiter", "a"))
}

func TestMapiterClean(t *testing.T) {
	runFixture(t, Mapiter, filepath.Join("mapiter", "clean"))
}

func TestGostringpinFixture(t *testing.T) {
	runFixture(t, Gostringpin, filepath.Join("gostringpin", "a"))
}

func TestGostringpinClean(t *testing.T) {
	runFixture(t, Gostringpin, filepath.Join("gostringpin", "clean"))
}

func TestLockioFixture(t *testing.T) {
	diags := runFixture(t, Lockio, filepath.Join("lockio", "a"))
	if got := countSuppressed(diags); got < 1 {
		t.Errorf("lockio fixture: want at least 1 suppressed diagnostic (the Allowed func), got %d", got)
	}
}

func TestLockioClean(t *testing.T) {
	runFixture(t, Lockio, filepath.Join("lockio", "clean"))
}

func TestObscaptureFixture(t *testing.T) {
	diags := runFixture(t, Obscapture, "obscapture")
	if got := countSuppressed(diags); got < 1 {
		t.Errorf("obscapture fixture: want at least 1 suppressed diagnostic (ConstructionLoop), got %d", got)
	}
}

func TestPkgdocFixture(t *testing.T) {
	diags := runFixture(t, Pkgdoc, filepath.Join("pkgdoc", "a"))
	if got := countSuppressed(diags); got < 1 {
		t.Errorf("pkgdoc fixture: want at least 1 suppressed diagnostic (package sub), got %d", got)
	}
}

func TestPkgdocClean(t *testing.T) {
	runFixture(t, Pkgdoc, filepath.Join("pkgdoc", "clean"))
}

// TestRepoClean is the gate the CI lint job enforces, as a unit test:
// the repository itself must carry zero unsuppressed diagnostics from
// the full suite. Every allowed finding stays visible in -json output.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load is slow; skipped with -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("unsuppressed: %s", d)
	}
	if countSuppressed(diags) == 0 {
		t.Error("expected the documented allowlist (lease heartbeats, obs clocks, bench fingerprints) to register as suppressed diagnostics")
	}
}
