package lint

import (
	"go/ast"
	"go/types"
)

// Gostringpin guards the %#v-pinned structs (mpi.WorldConfig,
// campaign.Scenario, and anything else that grows a GoString shim):
// checkpoint hashes are SHA-256 digests of a value's %#v rendering, and
// the shims reproduce the legacy rendering byte-for-byte so stored
// payloads stay addressable. Adding a struct field without teaching the
// shim about it would silently change every checkpoint hash the moment
// the field is set — a golden-TSV surprise. The analyzer makes it a
// build-time error instead: every field of a struct with a GoString
// method must be read somewhere inside that method.
var Gostringpin = &Analyzer{
	Name: "gostringpin",
	Doc:  "checks every field of a GoString-shimmed struct is handled by the shim",
	Run:  runGostringpin,
}

func runGostringpin(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "GoString" || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			st := receiverStruct(p, fd)
			if st == nil {
				continue
			}
			handled := fieldsRead(p, fd.Body)
			for i := 0; i < st.NumFields(); i++ {
				field := st.Field(i)
				if !handled[field] {
					p.Reportf(fd.Name.Pos(), "GoString does not handle field %q; %%#v-derived checkpoint hashes would silently change when it is set — extend the shim (render the field, or fold it into the legacy mirror)", field.Name())
				}
			}
		}
	}
	return nil
}

// receiverStruct resolves a method's receiver to its struct type, or
// nil when the receiver is not a (pointer to a) struct.
func receiverStruct(p *Pass, fd *ast.FuncDecl) *types.Struct {
	field := fd.Recv.List[0]
	tv, ok := p.Info.Types[field.Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// fieldsRead collects every struct field object selected anywhere in
// the body, nested function literals included.
func fieldsRead(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
			out[obj] = true
		}
		return true
	})
	return out
}
