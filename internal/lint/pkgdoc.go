package lint

import (
	"go/ast"
	"strings"
)

// Pkgdoc flags packages without a package doc comment. Every package in
// this repository — internal layers included — is expected to open with
// a real "// Package foo ..." (or "// Command foo ..." for mains)
// comment stating its role and its invariants; the doc.go overview and
// the API contract in docs/ lean on those comments staying present. A
// package is documented when any one of its files carries a doc comment
// on the package clause; the diagnostic points at the first file (by
// name) of an undocumented package.
var Pkgdoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "flags packages lacking a package doc comment on any file",
	Run:  runPkgdoc,
}

func runPkgdoc(p *Pass) error {
	if len(p.Files) == 0 {
		return nil
	}
	var first *ast.File
	var firstName string
	for _, f := range p.Files {
		if hasPkgDoc(f) {
			return nil
		}
		name := p.Fset.Position(f.Package).Filename
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	// Report on the package clause, deterministically in the
	// alphabetically first file.
	p.Reportf(first.Package, "package %s has no package doc comment; document it in one file (// Package %s ... states the package's role and invariants)",
		first.Name.Name, first.Name.Name)
	return nil
}

// hasPkgDoc reports whether f carries a real package doc comment.
// Machine directives (//go:build, //repolint:allow ...) that the parser
// attaches to the package clause do not count as documentation.
func hasPkgDoc(f *ast.File) bool {
	if f.Doc == nil {
		return false
	}
	for _, c := range f.Doc.List {
		text := c.Text
		if strings.HasPrefix(text, "//go:") || strings.HasPrefix(text, directivePrefix) {
			continue
		}
		if strings.Trim(text, "/* \t") != "" {
			return true
		}
	}
	return false
}
