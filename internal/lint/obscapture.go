package lint

import (
	"go/ast"
	"go/types"
)

// Obscapture enforces the observability layer's capture-at-construction
// rule: obs.Active() and instrument lookups (Registry.Counter / Gauge /
// Histogram, Tracer.Track) resolve through locks or atomics and must run
// once when a component is built — never per iteration on a hot path.
// The analyzer flags those lookups inside any loop body.
var Obscapture = &Analyzer{
	Name: "obscapture",
	Doc:  "flags per-call obs.Active()/instrument lookups inside loops; capture instruments at construction",
	Run:  runObscapture,
}

// obsLookup classifies a call as an observability lookup, or returns "".
// Matching is by package name + type name so fixtures can model the obs
// package shape without importing the real one.
func obsLookup(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Name() == "Active" {
			return "obs.Active()"
		}
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	switch tn, m := named.Obj().Name(), fn.Name(); {
	case tn == "Registry" && (m == "Counter" || m == "Gauge" || m == "Histogram"):
		return "Registry." + m
	case tn == "Tracer" && m == "Track":
		return "Tracer.Track"
	}
	return ""
}

func runObscapture(p *Pass) error {
	if p.Pkg.Name() == "obs" {
		return nil // the layer's own internals manage their registries
	}
	for _, f := range p.Files {
		walkLoopDepth(f, 0, func(n ast.Node, depth int) {
			call, ok := n.(*ast.CallExpr)
			if !ok || depth == 0 {
				return
			}
			if what := obsLookup(p, call); what != "" {
				p.Reportf(call.Pos(), "%s looked up inside a loop; capture the instrument once at construction (obs capture-at-construction rule)", what)
			}
		})
	}
	return nil
}

// walkLoopDepth walks the AST tracking how many enclosing for/range
// loops each node has. Function literals inside a loop keep the loop
// depth: the literal's body still executes per iteration when invoked
// there.
func walkLoopDepth(root ast.Node, depth int, visit func(n ast.Node, depth int)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			visitLoopParts(n.Init, n.Cond, n.Post, depth, visit)
			if n.Body != nil {
				walkLoopDepth(n.Body, depth+1, visit)
			}
			return false
		case *ast.RangeStmt:
			if n.X != nil {
				walkLoopDepth(n.X, depth, visit)
			}
			if n.Body != nil {
				walkLoopDepth(n.Body, depth+1, visit)
			}
			return false
		}
		visit(n, depth)
		return true
	})
}

// visitLoopParts walks a for statement's header at the enclosing depth
// (the init/cond/post run per iteration too, but cond/post misuse is
// rare and init runs once; keeping the header at the outer depth avoids
// double-flagging the body).
func visitLoopParts(init ast.Stmt, cond ast.Expr, post ast.Stmt, depth int, visit func(ast.Node, int)) {
	for _, n := range []ast.Node{init, cond, post} {
		if n != nil {
			walkLoopDepth(n, depth, visit)
		}
	}
}
