package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// directivePrefix introduces an allow annotation:
//
//	//repolint:allow wallclock -- lease heartbeats are wall-clock by design
//
// Comma-separate analyzer names to allow several at once. The reason
// after " -- " is mandatory; a directive without one is itself reported.
const directivePrefix = "//repolint:allow"

// directive is one parsed allow annotation.
type directive struct {
	names  []string
	reason string
	line   int
}

// allows reports whether the directive covers the named analyzer.
func (d directive) allows(name string) bool {
	for _, n := range d.names {
		if n == name {
			return true
		}
	}
	return false
}

// funcSpan is a directive hoisted from a function's doc comment: it
// covers every line of the function, so one annotation can document a
// function whose whole body is intentionally nondeterministic.
type funcSpan struct {
	directive
	from, to int
}

// suppressor indexes one package's allow directives by file.
type suppressor struct {
	lines map[string][]directive // file -> line/inline directives
	spans map[string][]funcSpan  // file -> function-doc directives
	bad   []Diagnostic           // malformed or unknown-name directives
}

// metaAnalyzer names the engine's own diagnostics (malformed
// directives); it is not suppressible.
const metaAnalyzer = "repolint"

// newSuppressor parses every //repolint:allow directive in the package.
// known is the set of valid analyzer names; directives naming anything
// else are reported rather than silently ignored, because a typo in an
// allowlist entry would otherwise disable nothing and hide a violation.
func newSuppressor(p *Package, known map[string]bool) *suppressor {
	s := &suppressor{lines: map[string][]directive{}, spans: map[string][]funcSpan{}}
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename

		// Index doc-comment spans first so line directives inside a doc
		// comment can be promoted to whole-function coverage.
		docLines := map[int]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for ln := p.Fset.Position(fd.Doc.Pos()).Line; ln <= p.Fset.Position(fd.Doc.End()).Line; ln++ {
				docLines[ln] = fd
			}
		}

		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d, err := parseDirective(c.Text, pos.Line, known)
				if err != nil {
					s.bad = append(s.bad, Diagnostic{
						Analyzer: metaAnalyzer,
						Path:     filename, Line: pos.Line, Col: pos.Column,
						Message: err.Error(),
					})
					continue
				}
				if fd, ok := docLines[pos.Line]; ok {
					s.spans[filename] = append(s.spans[filename], funcSpan{
						directive: d,
						from:      p.Fset.Position(fd.Pos()).Line,
						to:        p.Fset.Position(fd.End()).Line,
					})
					continue
				}
				s.lines[filename] = append(s.lines[filename], d)
			}
		}
	}
	return s
}

// parseDirective validates one annotation's syntax.
func parseDirective(text string, line int, known map[string]bool) (directive, error) {
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return directive{}, fmt.Errorf("malformed %s directive: %q", directivePrefix, text)
	}
	namesPart, reason, ok := strings.Cut(rest, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return directive{}, fmt.Errorf("%s directive needs a reason: %q (syntax: %s <analyzer> -- <why>)", directivePrefix, text, directivePrefix)
	}
	names := strings.Fields(strings.ReplaceAll(namesPart, ",", " "))
	if len(names) == 0 {
		return directive{}, fmt.Errorf("%s directive names no analyzer: %q", directivePrefix, text)
	}
	for _, n := range names {
		if !known[n] {
			return directive{}, fmt.Errorf("%s directive names unknown analyzer %q", directivePrefix, n)
		}
	}
	return directive{names: names, reason: strings.TrimSpace(reason), line: line}, nil
}

// apply marks the diagnostic suppressed when an allow directive covers
// it: on its own line, on the line directly above it, or hoisted from
// the enclosing function's doc comment.
func (s *suppressor) apply(d *Diagnostic) {
	if d.Analyzer == metaAnalyzer {
		return
	}
	for _, dir := range s.lines[d.Path] {
		if (dir.line == d.Line || dir.line == d.Line-1) && dir.allows(d.Analyzer) {
			d.Suppressed, d.Reason = true, dir.reason
			return
		}
	}
	for _, sp := range s.spans[d.Path] {
		if sp.from <= d.Line && d.Line <= sp.to && sp.allows(d.Analyzer) {
			d.Suppressed, d.Reason = true, sp.reason
			return
		}
	}
}

// Run executes the analyzers over the packages, applies the allow
// directives, and returns every diagnostic — suppressed ones included,
// flagged as such — sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		sup := newSuppressor(p, known)
		diags = append(diags, sup.bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     p.Fset,
				Files:    p.Files,
				Pkg:      p.Types,
				Info:     p.Info,
				report: func(d Diagnostic) {
					sup.apply(&d)
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, p.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Unsuppressed filters to the diagnostics that fail the gate.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
