package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"xeon", XeonL2(), true},
		{"direct mapped", Config{SizeBytes: 64 * 1024, LineBytes: 64, Assoc: 1}, true},
		{"fully associative", Config{SizeBytes: 4096, LineBytes: 64, Assoc: 64}, true},
		{"tiny", Config{SizeBytes: 256, LineBytes: 64, Assoc: 2}, true},
		{"zero size", Config{SizeBytes: 0, LineBytes: 64, Assoc: 1}, false},
		{"negative assoc", Config{SizeBytes: 1024, LineBytes: 64, Assoc: -1}, false},
		{"line not pow2", Config{SizeBytes: 1024, LineBytes: 48, Assoc: 2}, false},
		{"size not multiple of line", Config{SizeBytes: 1000, LineBytes: 64, Assoc: 2}, false},
		{"lines not divisible by assoc", Config{SizeBytes: 64 * 3, LineBytes: 64, Assoc: 2}, false},
		{"sets not pow2", Config{SizeBytes: 64 * 12, LineBytes: 64, Assoc: 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tt.cfg, err, tt.ok)
			}
		})
	}
}

func TestXeonGeometry(t *testing.T) {
	cfg := XeonL2()
	if got, want := cfg.Sets(), 1024; got != want {
		t.Errorf("Sets() = %d, want %d", got, want)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 64, Assoc: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(XeonL2())
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access to same address should hit")
	}
	if !c.Access(0x1008) {
		t.Error("same-line access should hit")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 3/2/1", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache with 2 sets: size = 2*2*64 bytes.
	c := New(Config{SizeBytes: 256, LineBytes: 64, Assoc: 2})
	// Three distinct lines mapping to set 0: line IDs 0, 2, 4 (even => set 0).
	a := uint64(0 * 64)
	b := uint64(2 * 64)
	d := uint64(4 * 64)
	c.Access(a) // miss, {a}
	c.Access(b) // miss, {b,a}
	c.Access(a) // hit,  {a,b}
	c.Access(d) // miss, evicts b => {d,a}
	if !c.Resident(a) {
		t.Error("a should remain resident (was MRU before d)")
	}
	if c.Resident(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Resident(d) {
		t.Error("d should be resident")
	}
	if c.Access(b) { // must miss again
		t.Error("evicted line b should miss")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(Config{SizeBytes: 128, LineBytes: 64, Assoc: 1}) // 2 sets
	a := uint64(0)
	b := uint64(128) // same set as a
	c.Access(a)
	c.Access(b) // evicts a
	if c.Access(a) {
		t.Error("direct-mapped conflict: a should have been evicted by b")
	}
}

func TestAccessRangeSequentialMissRate(t *testing.T) {
	c := New(XeonL2())
	// 8 doubles per 64 B line: sequential pass should miss once per line.
	n := 4096
	hits, misses := c.AccessRange(0, n, 8)
	if hits+misses != uint64(n) {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, n)
	}
	if want := uint64(n / 8); misses != want {
		t.Errorf("sequential misses = %d, want %d (one per line)", misses, want)
	}
}

func TestAccessRangeStridedMissRate(t *testing.T) {
	c := New(XeonL2())
	// Stride of one full line: every access a distinct line, all cold misses.
	n := 1024
	hits, misses := c.AccessRange(0, n, 64)
	if hits != 0 || misses != uint64(n) {
		t.Errorf("strided cold pass: hits=%d misses=%d, want 0/%d", hits, misses, n)
	}
}

func TestAccessRangeCacheResidentReuse(t *testing.T) {
	c := New(XeonL2())
	n := 1000 // 8000 B, far below 512 kB
	c.AccessRange(0, n, 8)
	hits, misses := c.AccessRange(0, n, 8)
	if misses != 0 {
		t.Errorf("warm resident pass misses = %d, want 0", misses)
	}
	if hits != uint64(n) {
		t.Errorf("warm resident pass hits = %d, want %d", hits, n)
	}
}

func TestCapacityEviction(t *testing.T) {
	cfg := XeonL2()
	c := New(cfg)
	// Stream 4x the cache capacity sequentially, then re-stream: the first
	// portion must have been evicted, so the second pass misses once per line
	// again (within rounding).
	bytes := 4 * cfg.SizeBytes
	n := bytes / 8
	c.AccessRange(0, n, 8)
	_, misses := c.AccessRange(0, n, 8)
	if want := uint64(n / 8); misses < want/2 {
		t.Errorf("second pass over 4x-capacity stream: misses=%d, want close to %d", misses, want)
	}
}

func TestAccessRangeZeroAndNegative(t *testing.T) {
	c := New(XeonL2())
	if h, m := c.AccessRange(0, 0, 8); h != 0 || m != 0 {
		t.Errorf("n=0: got %d/%d, want 0/0", h, m)
	}
	if h, m := c.AccessRange(0, -5, 8); h != 0 || m != 0 {
		t.Errorf("n<0: got %d/%d, want 0/0", h, m)
	}
	if c.Stats().Accesses != 0 {
		t.Error("no accesses should have been recorded")
	}
}

func TestFlushInvalidates(t *testing.T) {
	c := New(XeonL2())
	c.Access(0x40)
	c.Flush()
	if c.Resident(0x40) {
		t.Error("line resident after Flush")
	}
	st := c.Stats()
	if st.Accesses != 1 {
		t.Errorf("Flush disturbed counters: %+v", st)
	}
}

func TestResetStats(t *testing.T) {
	c := New(XeonL2())
	c.Access(0x40)
	c.ResetStats()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v, want zero", st)
	}
	if !c.Resident(0x40) {
		t.Error("ResetStats must not invalidate contents")
	}
}

func TestMissRate(t *testing.T) {
	if got := (Stats{}).MissRate(); got != 0 {
		t.Errorf("empty MissRate = %g, want 0", got)
	}
	if got := (Stats{Accesses: 10, Misses: 4}).MissRate(); got != 0.4 {
		t.Errorf("MissRate = %g, want 0.4", got)
	}
}

// Property: for any access sequence, accesses == hits + misses, and
// replaying the identical sequence immediately can only raise the hit count.
func TestPropertyCountsConsistent(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%200) + 1
		c := New(Config{SizeBytes: 4096, LineBytes: 64, Assoc: 2})
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1 << 16))
		}
		var hits1 uint64
		for _, a := range addrs {
			if c.Access(a) {
				hits1++
			}
		}
		st := c.Stats()
		if st.Accesses != st.Hits+st.Misses || st.Hits != hits1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a fully-associative cache streaming a working set that fits
// entirely has zero misses on the second pass (LRU inclusion property).
func TestPropertyInclusionSmallWorkingSet(t *testing.T) {
	f := func(nRaw uint8) bool {
		lines := int(nRaw%32) + 1                                      // <= 32 lines
		c := New(Config{SizeBytes: 64 * 64, LineBytes: 64, Assoc: 64}) // 64-line fully assoc
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
		for i := 0; i < lines; i++ {
			if !c.Access(uint64(i * 64)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: higher associativity never increases misses for a repeated
// small-conflict workload (stack property holds for this access pattern).
func TestAssociativityReducesConflictMisses(t *testing.T) {
	workload := func(c *Cache) uint64 {
		// Two lines that conflict in a direct-mapped cache of 2 sets.
		for i := 0; i < 50; i++ {
			c.Access(0)
			c.Access(128)
		}
		return c.Stats().Misses
	}
	direct := workload(New(Config{SizeBytes: 128, LineBytes: 64, Assoc: 1}))
	assoc := workload(New(Config{SizeBytes: 128, LineBytes: 64, Assoc: 2}))
	if assoc >= direct {
		t.Errorf("2-way misses (%d) should be < direct-mapped misses (%d)", assoc, direct)
	}
	if assoc != 2 {
		t.Errorf("2-way misses = %d, want 2 cold misses only", assoc)
	}
}

func BenchmarkAccessRangeSequential(b *testing.B) {
	c := New(XeonL2())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AccessRange(0, 8192, 8)
	}
}

func BenchmarkAccessRangeStrided(b *testing.B) {
	c := New(XeonL2())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AccessRange(0, 8192, 1024)
	}
}
