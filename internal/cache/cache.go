// Package cache implements a set-associative, write-allocate cache simulator
// with true-LRU replacement and a bulk stream-access API.
//
// The simulator stands in for the hardware performance counters (PAPI/PCL)
// used by the paper: kernels feed their actual memory-access streams through
// the simulator, which accounts hits and misses; the platform's CPU model
// converts those counts into virtual time. The default configuration mirrors
// the paper's testbed (dual 2.8 GHz Pentium Xeon, 512 kB L2, 64 B lines).
package cache

import "fmt"

// Config describes the geometry of a simulated cache.
type Config struct {
	// SizeBytes is the total capacity of the cache in bytes.
	SizeBytes int
	// LineBytes is the cache-line size in bytes. Must be a power of two.
	LineBytes int
	// Assoc is the number of ways per set. Assoc == 1 is a direct-mapped
	// cache; Assoc == SizeBytes/LineBytes is fully associative.
	Assoc int
}

// XeonL2 returns the configuration of the paper testbed's L2 cache:
// 512 kB, 8-way set associative, 64-byte lines.
func XeonL2() Config {
	return Config{SizeBytes: 512 * 1024, LineBytes: 64, Assoc: 8}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Assoc }

// Stats holds cumulative access counters, in the style of PAPI event counts.
type Stats struct {
	// Accesses is the total number of data accesses (PAPI_L2_DCA analog).
	Accesses uint64
	// Hits is the number of accesses satisfied by the cache.
	Hits uint64
	// Misses is the number of accesses that required a line fill
	// (PAPI_L2_DCM analog).
	Misses uint64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a simulated set-associative cache. It is not safe for concurrent
// use; in the SCMD model each simulated rank owns a private Cache.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	// ways holds, per set, the resident line IDs in LRU order
	// (index 0 = most recently used). A zero entry means "empty" and is
	// disambiguated by the valid bitmask.
	ways  []uint64
	valid []bool
	assoc int
	stats Stats
}

// New constructs a cache simulator for the given geometry.
// It panics if the configuration is invalid, as a cache is always
// constructed from static, programmer-chosen parameters.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		ways:      make([]uint64, sets*cfg.Assoc),
		valid:     make([]bool, sets*cfg.Assoc),
		assoc:     cfg.Assoc,
	}
}

// Config returns the geometry the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// RestoreStats rewinds the counters to a previously captured Stats value
// without disturbing cache contents. Rollback paths use it to undo the
// counter side of accesses whose line-state side never happened.
func (c *Cache) RestoreStats(s Stats) { c.stats = s }

// State is a deep snapshot of a cache's full mutable state: resident lines,
// LRU order, valid bits and counters. It is opaque; use Checkpoint/Restore.
type State struct {
	ways  []uint64
	valid []bool
	stats Stats
}

// Checkpoint captures the complete cache state (lines, LRU order, counters)
// for a later Restore. The copy is proportional to the cache's line count
// (~8k entries for the 512 kB testbed cache), so callers on hot paths that
// know their region performs no accesses should checkpoint Stats alone.
func (c *Cache) Checkpoint() State {
	s := State{
		ways:  make([]uint64, len(c.ways)),
		valid: make([]bool, len(c.valid)),
		stats: c.stats,
	}
	copy(s.ways, c.ways)
	copy(s.valid, c.valid)
	return s
}

// Restore rewinds the cache to a previously captured State. The checkpoint
// must come from a cache of the same geometry; restoring a snapshot from a
// differently shaped cache panics.
func (c *Cache) Restore(s State) {
	if len(s.ways) != len(c.ways) || len(s.valid) != len(c.valid) {
		panic(fmt.Sprintf("cache: checkpoint geometry mismatch: %d/%d lines vs %d/%d",
			len(s.ways), len(s.valid), len(c.ways), len(c.valid)))
	}
	copy(c.ways, s.ways)
	copy(c.valid, s.valid)
	c.stats = s.stats
}

// Flush invalidates every line and leaves the counters untouched.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// accessLine looks up (and on miss, fills) the given line ID,
// maintaining LRU order. It reports whether the access hit.
func (c *Cache) accessLine(line uint64) bool {
	set := int(line&c.setMask) * c.assoc
	ways := c.ways[set : set+c.assoc]
	valid := c.valid[set : set+c.assoc]
	for i := 0; i < c.assoc; i++ {
		if valid[i] && ways[i] == line {
			// Move to MRU position.
			copy(ways[1:i+1], ways[0:i])
			ways[0] = line
			return true
		}
	}
	// Miss: evict LRU (last way), shift, insert at MRU.
	copy(ways[1:], ways[:c.assoc-1])
	copy(valid[1:], valid[:c.assoc-1])
	ways[0] = line
	valid[0] = true
	return false
}

// Access simulates a single data access at the given virtual byte address
// and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	if c.accessLine(addr >> c.lineShift) {
		c.stats.Hits++
		return true
	}
	c.stats.Misses++
	return false
}

// AccessRange simulates n accesses starting at base with the given byte
// stride between consecutive accesses, and returns the hit and miss counts
// for this stream. Consecutive accesses that fall on the same line as the
// previous access are counted as hits without a directory lookup, which is
// exact for monotone streams.
func (c *Cache) AccessRange(base uint64, n, strideBytes int) (hits, misses uint64) {
	if n <= 0 {
		return 0, 0
	}
	lastLine := ^uint64(0)
	addr := base
	for i := 0; i < n; i++ {
		line := addr >> c.lineShift
		if line == lastLine {
			hits++
		} else {
			lastLine = line
			if c.accessLine(line) {
				hits++
			} else {
				misses++
			}
		}
		addr += uint64(strideBytes)
	}
	c.stats.Accesses += uint64(n)
	c.stats.Hits += hits
	c.stats.Misses += misses
	return hits, misses
}

// Touch loads the [base, base+bytes) range sequentially, warming the cache.
// It is the write-allocate analog of initializing an array.
func (c *Cache) Touch(base uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	n := (bytes + c.cfg.LineBytes - 1) / c.cfg.LineBytes
	c.AccessRange(base, n, c.cfg.LineBytes)
}

// Resident reports whether the line containing addr is currently cached,
// without affecting LRU order or counters.
func (c *Cache) Resident(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line&c.setMask) * c.assoc
	for i := 0; i < c.assoc; i++ {
		if c.valid[set+i] && c.ways[set+i] == line {
			return true
		}
	}
	return false
}
