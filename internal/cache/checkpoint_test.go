package cache

import "testing"

// TestCheckpointRestoresLinesAndStats verifies Restore rewinds resident
// lines, LRU order and counters to the snapshot.
func TestCheckpointRestoresLinesAndStats(t *testing.T) {
	cfg := Config{SizeBytes: 4096, LineBytes: 64, Assoc: 2}
	c := New(cfg)
	c.AccessRange(0, 32, 64)
	cp := c.Checkpoint()
	wantStats := c.Stats()

	// Evict everything with a conflicting sweep, then restore.
	c.AccessRange(1<<20, 256, 64)
	if c.Resident(0) {
		t.Fatal("line 0 should have been evicted by the sweep")
	}
	c.Restore(cp)
	if c.Stats() != wantStats {
		t.Errorf("stats: got %+v, want %+v", c.Stats(), wantStats)
	}
	if !c.Resident(0) || !c.Resident(31*64) {
		t.Error("restored cache lost lines resident at checkpoint")
	}
	if c.Resident(1 << 20) {
		t.Error("restored cache kept a line accessed after checkpoint")
	}

	// Hit/miss behaviour after restore must match a fresh replay: the next
	// access to a checkpointed line hits.
	h, m := c.AccessRange(0, 1, 64)
	if h != 1 || m != 0 {
		t.Errorf("post-restore access: got %d hits %d misses, want 1/0", h, m)
	}
}

// TestRestoreRejectsGeometryMismatch verifies snapshots cannot cross cache
// geometries.
func TestRestoreRejectsGeometryMismatch(t *testing.T) {
	a := New(Config{SizeBytes: 4096, LineBytes: 64, Assoc: 2})
	b := New(Config{SizeBytes: 8192, LineBytes: 64, Assoc: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic restoring a mismatched snapshot")
		}
	}()
	b.Restore(a.Checkpoint())
}
