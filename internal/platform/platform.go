// Package platform provides the simulated execution platform underlying the
// reproduction: a per-rank virtual clock, a CPU cost model, a virtual memory
// allocator, and deterministic per-rank random state.
//
// The paper's measurements were taken on a cluster of dual 2.8 GHz Pentium
// Xeons with 512 kB L2 caches. This repository replaces the physical machine
// with a model: every kernel performs its real floating-point work on real Go
// slices, then charges the platform for that work (FLOPs plus the cache
// behaviour of its access streams). TAU timers read the resulting virtual
// clock, so all reported times are deterministic virtual microseconds.
package platform

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
)

// Time is virtual time in microseconds.
type Time = float64

// CPUModel converts abstract work (FLOPs, cache hits and misses) into cycles
// and cycles into virtual microseconds.
type CPUModel struct {
	// ClockGHz is the core clock; the paper's testbed ran at 2.8 GHz.
	ClockGHz float64
	// CyclesPerFlop is the average cost of one floating-point operation
	// when its operands are already in registers or L1.
	CyclesPerFlop float64
	// HitCycles is the average cost of a data access that hits in the
	// simulated (L2) cache, folding in the L1 behaviour we do not model.
	HitCycles float64
	// MissCycles is the main-memory penalty for a cache miss.
	MissCycles float64
	// SeqMissFactor discounts miss penalties for sequential streams, which
	// hardware prefetchers largely hide. Strided streams pay full price.
	SeqMissFactor float64
	// CallCycles is the fixed overhead of a (virtual) method invocation
	// through a CCA port.
	CallCycles float64
}

// XeonModel returns the CPU model calibrated against the paper's testbed
// (2.8 GHz Pentium 4 Xeon class machine).
func XeonModel() CPUModel {
	return CPUModel{
		ClockGHz:      2.8,
		CyclesPerFlop: 2.0,
		HitCycles:     4.0,
		MissCycles:    140.0, // effective latency with ~2 misses in flight
		SeqMissFactor: 0.40,
		CallCycles:    40.0,
	}
}

// CyclesToMicros converts a cycle count to virtual microseconds.
func (m CPUModel) CyclesToMicros(cycles float64) Time {
	return cycles / (m.ClockGHz * 1e3)
}

// StreamCycles returns the cycle cost of a stream with the given hit and
// miss counts. Sequential streams receive the prefetch discount.
func (m CPUModel) StreamCycles(hits, misses uint64, sequential bool) float64 {
	missCost := m.MissCycles
	if sequential {
		missCost *= m.SeqMissFactor
	}
	return float64(hits)*m.HitCycles + float64(misses)*missCost
}

// Counters holds the PAPI-style event counts accumulated by a Proc.
type Counters struct {
	// FPOps is the number of floating-point operations (PAPI_FP_OPS).
	FPOps uint64
	// L2DCA is the number of L2 data-cache accesses (PAPI_L2_DCA).
	L2DCA uint64
	// L2DCM is the number of L2 data-cache misses (PAPI_L2_DCM).
	L2DCM uint64
}

// Proc is one simulated processor: the execution context of a single SCMD
// rank. It owns a virtual clock, a private cache, a virtual address space,
// and a deterministic random stream. A Proc is not safe for concurrent use;
// each rank goroutine owns exactly one.
type Proc struct {
	rank  int
	cpu   CPUModel
	cache *cache.Cache
	rng   *rand.Rand
	src   *countingSource

	clock    Time
	nextAddr uint64
	fpOps    uint64
}

// countingSource wraps the standard random source and counts how many times
// it has stepped. Because the generator is deterministic, the step count is
// a complete checkpoint of the stream: rewinding rebuilds the source from
// its seed and replays the recorded number of steps. Both Int63 and Uint64
// advance the underlying generator exactly once, so replaying with Uint64
// reproduces the state regardless of which method originally drew.
type countingSource struct {
	seed  int64
	src   rand.Source64
	steps uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.steps++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.steps++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.seed = seed
	s.steps = 0
	s.src.Seed(seed)
}

// rewindTo restores the source to the state it had after n steps. n must not
// exceed the current step count: a random stream can be rewound, never
// fast-forwarded past draws that have not happened.
func (s *countingSource) rewindTo(n uint64) {
	if n > s.steps {
		panic(fmt.Sprintf("platform: cannot advance RNG checkpoint from %d to %d steps", s.steps, n))
	}
	if n == s.steps {
		return
	}
	s.src = rand.NewSource(s.seed).(rand.Source64)
	for s.steps = 0; s.steps < n; s.steps++ {
		s.src.Uint64()
	}
}

// ProcState is a checkpoint of a Proc's mutable rank-local state: the
// virtual clock, the heap cursor, the FLOP counter, the random stream (as a
// draw count) and the cache counters. Cache *contents* (resident lines and
// LRU order) are not included — use cache.Cache.Checkpoint alongside when
// the checkpointed region touches memory. The optimistic rank scheduler
// checkpoints Procs around speculative MPI operations, which never access
// the cache, so the cheap state here is exactly what rollback must restore.
type ProcState struct {
	Clock      Time
	NextAddr   uint64
	FPOps      uint64
	RNGSteps   uint64
	CacheStats cache.Stats
}

// Checkpoint captures the Proc's mutable state for a later Restore.
func (p *Proc) Checkpoint() ProcState {
	return ProcState{
		Clock:      p.clock,
		NextAddr:   p.nextAddr,
		FPOps:      p.fpOps,
		RNGSteps:   p.src.steps,
		CacheStats: p.cache.Stats(),
	}
}

// Restore rewinds the Proc to a previously captured checkpoint: clock, heap
// cursor, FLOP counter, cache counters, and the random stream (replayed
// deterministically to the recorded draw count, so future draws are
// bit-identical to a run that never went past the checkpoint). It panics if
// the checkpoint is from the future (more RNG draws than have happened).
func (p *Proc) Restore(s ProcState) {
	p.clock = s.Clock
	p.nextAddr = s.NextAddr
	p.fpOps = s.FPOps
	p.src.rewindTo(s.RNGSteps)
	p.cache.RestoreStats(s.CacheStats)
}

// lineAlign is the alignment of virtual allocations; matching the cache line
// keeps stream simulation exact.
const lineAlign = 64

// baseAddr is where the virtual heap starts; nonzero so that address 0 can
// mean "no allocation".
const baseAddr = 1 << 20

// NewProc creates the execution context for one rank.
// seed disambiguates the random streams of different ranks and runs.
func NewProc(rank int, cpu CPUModel, cacheCfg cache.Config, seed int64) *Proc {
	src := newCountingSource(seed ^ int64(rank)*0x5E3779B97F4A7C15)
	return &Proc{
		rank:     rank,
		cpu:      cpu,
		cache:    cache.New(cacheCfg),
		rng:      rand.New(src),
		src:      src,
		nextAddr: baseAddr,
	}
}

// Rank returns the SCMD rank this Proc simulates.
func (p *Proc) Rank() int { return p.rank }

// CPU returns the processor cost model.
func (p *Proc) CPU() CPUModel { return p.cpu }

// Cache exposes the rank-private cache simulator.
func (p *Proc) Cache() *cache.Cache { return p.cache }

// RNG returns the rank's deterministic random stream.
func (p *Proc) RNG() *rand.Rand { return p.rng }

// Now returns the current virtual time in microseconds.
func (p *Proc) Now() Time { return p.clock }

// Advance moves the virtual clock forward by d microseconds.
// Negative advances are a programming error and panic.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("platform: negative time advance %g on rank %d", d, p.rank))
	}
	p.clock += d
}

// AdvanceCycles moves the clock forward by a cycle count.
func (p *Proc) AdvanceCycles(cycles float64) {
	p.Advance(p.cpu.CyclesToMicros(cycles))
}

// SyncTo moves the clock forward to t if t is in the future; it never moves
// the clock backward. It returns the (possibly unchanged) clock value.
func (p *Proc) SyncTo(t Time) Time {
	if t > p.clock {
		p.clock = t
	}
	return p.clock
}

// Alloc reserves n bytes of virtual address space, line-aligned, and returns
// the base address. The virtual heap is append-only: the simulation never
// frees, which keeps addresses unique for the cache model.
func (p *Proc) Alloc(n int) uint64 {
	if n < 0 {
		panic("platform: negative allocation")
	}
	addr := p.nextAddr
	sz := (uint64(n) + lineAlign - 1) &^ (lineAlign - 1)
	p.nextAddr += sz + lineAlign // guard line between allocations
	return addr
}

// ChargeFlops accounts n floating-point operations: the counter is bumped
// and the clock advanced per the CPU model.
func (p *Proc) ChargeFlops(n int) {
	if n <= 0 {
		return
	}
	p.fpOps += uint64(n)
	p.AdvanceCycles(float64(n) * p.cpu.CyclesPerFlop)
}

// ChargeStream simulates a memory access stream of n elements starting at
// base with the given byte stride, charging the clock for hits and misses.
// Streams whose stride is within one cache line are treated as sequential
// (prefetch-friendly).
func (p *Proc) ChargeStream(base uint64, n, strideBytes int) (hits, misses uint64) {
	return p.ChargeStreamHinted(base, n, strideBytes, false)
}

// ChargeStreamHinted is ChargeStream with an explicit latency-overlap hint:
// kernels whose long independent arithmetic chains hide memory latency
// (the paper's EFMFlux, whose timings are nearly mode-independent, Fig. 8)
// charge even strided misses at the prefetched rate.
func (p *Proc) ChargeStreamHinted(base uint64, n, strideBytes int, overlapped bool) (hits, misses uint64) {
	if n <= 0 {
		return 0, 0
	}
	hits, misses = p.cache.AccessRange(base, n, strideBytes)
	seq := overlapped || strideBytes <= p.cache.LineBytes()
	p.AdvanceCycles(p.cpu.StreamCycles(hits, misses, seq))
	return hits, misses
}

// ChargeCall accounts the fixed overhead of one port-mediated method call.
func (p *Proc) ChargeCall() {
	p.AdvanceCycles(p.cpu.CallCycles)
}

// Counters returns a snapshot of the PAPI-style event counters.
func (p *Proc) Counters() Counters {
	st := p.cache.Stats()
	return Counters{FPOps: p.fpOps, L2DCA: st.Accesses, L2DCM: st.Misses}
}
