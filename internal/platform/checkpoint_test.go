package platform

import (
	"testing"

	"repro/internal/cache"
)

// TestProcCheckpointRestoresRNGStream verifies that restoring a checkpoint
// rewinds the random stream exactly: draws after the restore reproduce the
// draws made after the checkpoint bit-for-bit.
func TestProcCheckpointRestoresRNGStream(t *testing.T) {
	p := NewProc(2, XeonModel(), cache.XeonL2(), 42)
	for i := 0; i < 17; i++ {
		p.RNG().Float64()
	}
	cp := p.Checkpoint()

	var first []float64
	for i := 0; i < 9; i++ {
		first = append(first, p.RNG().NormFloat64()) // rejection sampling: variable step count
	}
	p.Restore(cp)
	for i, want := range first {
		if got := p.RNG().NormFloat64(); got != want {
			t.Fatalf("draw %d after restore: got %v, want %v", i, got, want)
		}
	}
}

// TestProcCheckpointRestoresClockAndCounters verifies clock, heap cursor,
// FLOP counter and cache counters all rewind.
func TestProcCheckpointRestoresClockAndCounters(t *testing.T) {
	p := NewProc(0, XeonModel(), cache.XeonL2(), 7)
	base := p.Alloc(4096)
	p.ChargeFlops(100)
	p.ChargeStream(base, 512, 8)
	cp := p.Checkpoint()
	wantCtr := p.Counters()
	wantClock := p.Now()
	wantAddr := p.nextAddr

	p.Advance(123.5)
	p.ChargeFlops(999)
	p.ChargeStream(base, 64, 8)
	p.Alloc(64)

	p.Restore(cp)
	if p.Now() != wantClock {
		t.Errorf("clock: got %v, want %v", p.Now(), wantClock)
	}
	if p.Counters() != wantCtr {
		t.Errorf("counters: got %+v, want %+v", p.Counters(), wantCtr)
	}
	if p.nextAddr != wantAddr {
		t.Errorf("heap cursor: got %d, want %d", p.nextAddr, wantAddr)
	}
}

// TestProcRestoreRejectsFutureCheckpoint verifies a checkpoint with more RNG
// draws than have happened cannot be applied.
func TestProcRestoreRejectsFutureCheckpoint(t *testing.T) {
	p := NewProc(0, XeonModel(), cache.XeonL2(), 7)
	p.RNG().Float64()
	cp := p.Checkpoint()
	q := NewProc(0, XeonModel(), cache.XeonL2(), 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic restoring a future RNG checkpoint")
		}
	}()
	q.Restore(cp)
}
