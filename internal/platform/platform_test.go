package platform

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func newTestProc() *Proc {
	return NewProc(0, XeonModel(), cache.XeonL2(), 42)
}

func TestClockStartsAtZero(t *testing.T) {
	p := newTestProc()
	if p.Now() != 0 {
		t.Fatalf("Now() = %g, want 0", p.Now())
	}
}

func TestAdvance(t *testing.T) {
	p := newTestProc()
	p.Advance(1.5)
	p.Advance(2.5)
	if got := p.Now(); got != 4.0 {
		t.Errorf("Now() = %g, want 4", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	newTestProc().Advance(-1)
}

func TestSyncTo(t *testing.T) {
	p := newTestProc()
	p.Advance(10)
	if got := p.SyncTo(5); got != 10 {
		t.Errorf("SyncTo(past) = %g, want clock unchanged at 10", got)
	}
	if got := p.SyncTo(25); got != 25 {
		t.Errorf("SyncTo(future) = %g, want 25", got)
	}
}

func TestCyclesToMicros(t *testing.T) {
	m := XeonModel() // 2.8 GHz => 2800 cycles per microsecond
	if got := m.CyclesToMicros(2800); got != 1.0 {
		t.Errorf("2800 cycles = %g us, want 1", got)
	}
}

func TestAdvanceCycles(t *testing.T) {
	p := newTestProc()
	p.AdvanceCycles(5600)
	if got := p.Now(); got != 2.0 {
		t.Errorf("Now() after 5600 cycles = %g us, want 2", got)
	}
}

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	p := newTestProc()
	a := p.Alloc(100)
	b := p.Alloc(1)
	c := p.Alloc(0)
	for _, addr := range []uint64{a, b, c} {
		if addr%lineAlign != 0 {
			t.Errorf("allocation %#x not %d-byte aligned", addr, lineAlign)
		}
	}
	if b < a+100 {
		t.Errorf("allocations overlap: a=%#x(+100) b=%#x", a, b)
	}
	if a < baseAddr {
		t.Errorf("first allocation %#x below heap base %#x", a, uint64(baseAddr))
	}
}

func TestAllocNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Alloc did not panic")
		}
	}()
	newTestProc().Alloc(-1)
}

func TestChargeFlops(t *testing.T) {
	p := newTestProc()
	p.ChargeFlops(2800) // 2 cycles/flop => 5600 cycles => 2 us
	if got := p.Now(); got != 2.0 {
		t.Errorf("Now() = %g, want 2", got)
	}
	if got := p.Counters().FPOps; got != 2800 {
		t.Errorf("FPOps = %d, want 2800", got)
	}
	p.ChargeFlops(0)
	p.ChargeFlops(-3)
	if got := p.Counters().FPOps; got != 2800 {
		t.Errorf("FPOps after no-op charges = %d, want 2800", got)
	}
}

func TestChargeStreamAdvancesClockAndCounters(t *testing.T) {
	p := newTestProc()
	base := p.Alloc(8 * 1024)
	before := p.Now()
	hits, misses := p.ChargeStream(base, 1024, 8)
	if hits+misses != 1024 {
		t.Fatalf("hits+misses = %d, want 1024", hits+misses)
	}
	if p.Now() <= before {
		t.Error("clock did not advance for stream")
	}
	ctr := p.Counters()
	if ctr.L2DCA != 1024 {
		t.Errorf("L2DCA = %d, want 1024", ctr.L2DCA)
	}
	if ctr.L2DCM != misses {
		t.Errorf("L2DCM = %d, want %d", ctr.L2DCM, misses)
	}
}

func TestStridedStreamCostsMoreThanSequential(t *testing.T) {
	// Same element count, cold cache both times, large array: strided must
	// be substantially more expensive (the Fig. 4/5 mechanism).
	n := 64 * 1024 // 512 kB of doubles: fills the cache
	seq := newTestProc()
	base := seq.Alloc(n * 8)
	seq.ChargeStream(base, n, 8)
	seqTime := seq.Now()

	str := newTestProc()
	base2 := str.Alloc(n * 64)
	str.ChargeStream(base2, n, 512) // 64-double stride: new line every access
	strTime := str.Now()

	if strTime < 2*seqTime {
		t.Errorf("strided time %g not >> sequential time %g", strTime, seqTime)
	}
}

func TestChargeCall(t *testing.T) {
	p := newTestProc()
	p.ChargeCall()
	want := XeonModel().CyclesToMicros(XeonModel().CallCycles)
	if got := p.Now(); got != want {
		t.Errorf("call overhead = %g, want %g", got, want)
	}
}

func TestRankSeparatesRNGStreams(t *testing.T) {
	p0 := NewProc(0, XeonModel(), cache.XeonL2(), 7)
	p1 := NewProc(1, XeonModel(), cache.XeonL2(), 7)
	same := true
	for i := 0; i < 8; i++ {
		if p0.RNG().Float64() != p1.RNG().Float64() {
			same = false
		}
	}
	if same {
		t.Error("ranks 0 and 1 produced identical random streams")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (Time, Counters) {
		p := NewProc(2, XeonModel(), cache.XeonL2(), 99)
		b := p.Alloc(1 << 16)
		p.ChargeStream(b, 4096, 8)
		p.ChargeFlops(1000)
		p.ChargeStream(b, 4096, 128)
		return p.Now(), p.Counters()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Errorf("non-deterministic platform: (%g,%+v) vs (%g,%+v)", t1, c1, t2, c2)
	}
}

// Property: the clock is monotone under any sequence of charges.
func TestPropertyClockMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		p := newTestProc()
		base := p.Alloc(1 << 20)
		prev := p.Now()
		for _, op := range ops {
			switch op % 4 {
			case 0:
				p.ChargeFlops(int(op))
			case 1:
				p.ChargeStream(base, int(op), 8)
			case 2:
				p.ChargeStream(base, int(op), 256)
			case 3:
				p.ChargeCall()
			}
			if p.Now() < prev {
				return false
			}
			prev = p.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStreamCyclesPrefetchDiscount(t *testing.T) {
	m := XeonModel()
	seq := m.StreamCycles(0, 100, true)
	str := m.StreamCycles(0, 100, false)
	if seq >= str {
		t.Errorf("sequential miss cycles %g should be < strided %g", seq, str)
	}
}
