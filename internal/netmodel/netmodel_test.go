package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanIsAlphaBeta(t *testing.T) {
	m := Model{LatencyUS: 10, BytesPerUS: 100}
	if got := m.Mean(0); got != 10 {
		t.Errorf("Mean(0) = %g, want 10", got)
	}
	if got := m.Mean(1000); got != 20 {
		t.Errorf("Mean(1000) = %g, want 20", got)
	}
}

func TestPointToPointNoNoiseEqualsMean(t *testing.T) {
	m := Model{LatencyUS: 10, BytesPerUS: 100}
	rng := rand.New(rand.NewSource(1))
	if got, want := m.PointToPoint(500, rng), m.Mean(500); got != want {
		t.Errorf("PointToPoint = %g, want %g", got, want)
	}
}

func TestPointToPointNilRNG(t *testing.T) {
	m := FastEthernet()
	if got, want := m.PointToPoint(128, nil), m.Mean(128); got != want {
		t.Errorf("nil-rng PointToPoint = %g, want mean %g", got, want)
	}
}

func TestNegativeBytesClamped(t *testing.T) {
	m := Model{LatencyUS: 10, BytesPerUS: 100}
	if got := m.PointToPoint(-64, nil); got != 10 {
		t.Errorf("PointToPoint(-64) = %g, want latency only (10)", got)
	}
}

func TestNoiseMeanIsApproximatelyOne(t *testing.T) {
	m := FastEthernet()
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.PointToPoint(1000, rng)
	}
	mean := sum / n
	want := m.Mean(1000)
	if rel := math.Abs(mean-want) / want; rel > 0.03 {
		t.Errorf("empirical mean %g deviates from model mean %g by %.1f%%", mean, want, rel*100)
	}
}

func TestNoiseProducesScatter(t *testing.T) {
	m := FastEthernet()
	rng := rand.New(rand.NewSource(3))
	a := m.PointToPoint(1000, rng)
	b := m.PointToPoint(1000, rng)
	if a == b {
		t.Error("two noisy samples identical; noise not applied")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	m := FastEthernet()
	sample := func() []float64 {
		rng := rand.New(rand.NewSource(11))
		out := make([]float64, 5)
		for i := range out {
			out[i] = m.PointToPoint(256, rng)
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical seeds: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for p, want := range cases {
		if got := ceilLog2(p); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestCollectiveShapes(t *testing.T) {
	m := Model{LatencyUS: 10, BytesPerUS: 100}
	// P=4 => 2 rounds.
	if got := m.Collective(Barrier, 4, 0, nil); got != 20 {
		t.Errorf("Barrier(4) = %g, want 20", got)
	}
	if got := m.Collective(Reduce, 4, 1000, nil); got != 40 {
		t.Errorf("Reduce(4,1000) = %g, want 40", got)
	}
	if got := m.Collective(Allreduce, 4, 1000, nil); got != 80 {
		t.Errorf("Allreduce(4,1000) = %g, want 80", got)
	}
	if got := m.Collective(Bcast, 4, 1000, nil); got != 40 {
		t.Errorf("Bcast(4,1000) = %g, want 40", got)
	}
	if got := m.Collective(Allgather, 4, 1000, nil); got != 60 {
		t.Errorf("Allgather(4,1000) = %g, want 60 (3 ring steps)", got)
	}
}

func TestCollectiveSingleRankCheap(t *testing.T) {
	m := FastEthernet()
	if got := m.Collective(Allreduce, 1, 8, nil); got != 0 {
		t.Errorf("Allreduce over P=1 = %g, want 0 (no rounds)", got)
	}
	if got := m.Collective(Barrier, 0, 0, nil); got != 0 {
		t.Errorf("Barrier over P=0 = %g, want 0", got)
	}
}

// Property: costs are nonnegative and monotone in message size.
func TestPropertyMonotoneInSize(t *testing.T) {
	m := FastEthernet()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.Mean(x) <= m.Mean(y) && m.Mean(x) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: collective cost is monotone in P for every kind.
func TestPropertyCollectiveMonotoneInP(t *testing.T) {
	m := FastEthernet()
	kinds := []CollectiveKind{Barrier, Reduce, Allreduce, Bcast, Gather, Allgather}
	for _, k := range kinds {
		prev := 0.0
		for p := 1; p <= 64; p *= 2 {
			got := m.Collective(k, p, 512, nil)
			if got < prev {
				t.Errorf("kind %d: cost decreased from %g to %g at P=%d", k, prev, got, p)
			}
			prev = got
		}
	}
}
