// Package netmodel provides the interconnect cost model for the simulated
// cluster: a latency/bandwidth (alpha-beta) model with multiplicative,
// seeded lognormal noise standing in for the fluctuating network load the
// paper observed on its shared cluster (Fig. 9).
package netmodel

import (
	"math"
	"math/rand"
)

// Model describes point-to-point and collective communication costs.
// All times are virtual microseconds.
type Model struct {
	// LatencyUS is the per-message latency (the alpha term).
	LatencyUS float64
	// BytesPerUS is the link bandwidth (the 1/beta term).
	BytesPerUS float64
	// NoiseSigma is the sigma of the lognormal noise multiplier applied to
	// each transfer. Zero disables noise. The multiplier has mean 1.
	NoiseSigma float64
	// SoftwareUS is the fixed per-call software overhead charged to the
	// caller even when no data moves (e.g. MPI_Comm_dup, MPI_Wtime).
	SoftwareUS float64
}

// FastEthernet returns a model of the paper-era commodity cluster
// interconnect (a ~100 Mb/s switched network with tens-of-microseconds
// latency and visible load fluctuation).
func FastEthernet() Model {
	return Model{
		LatencyUS:  55,
		BytesPerUS: 11.5, // ~92 Mb/s effective
		NoiseSigma: 0.35,
		SoftwareUS: 0.9,
	}
}

// noise draws a mean-1 lognormal multiplier from rng.
func (m Model) noise(rng *rand.Rand) float64 {
	if m.NoiseSigma <= 0 || rng == nil {
		return 1
	}
	s := m.NoiseSigma
	return math.Exp(s*rng.NormFloat64() - s*s/2)
}

// PointToPoint returns the transfer time for a message of the given size.
// The rng supplies the load-fluctuation noise; it may be nil for a
// noise-free estimate.
func (m Model) PointToPoint(bytes int, rng *rand.Rand) float64 {
	if bytes < 0 {
		bytes = 0
	}
	base := m.LatencyUS + float64(bytes)/m.BytesPerUS
	return base * m.noise(rng)
}

// Mean returns the expected (noise-free) point-to-point time.
func (m Model) Mean(bytes int) float64 {
	return m.LatencyUS + float64(bytes)/m.BytesPerUS
}

// CollectiveKind selects the algorithm shape used to cost a collective.
type CollectiveKind int

// Collective kinds.
const (
	// Barrier is a pure synchronization; costed as a dissemination
	// barrier: ceil(log2 P) latency-only rounds.
	Barrier CollectiveKind = iota
	// Reduce and Allreduce move a fixed-size buffer up (and for Allreduce
	// back down) a binomial tree.
	Reduce
	Allreduce
	// Bcast moves the buffer down a binomial tree.
	Bcast
	// Gather and Allgather aggregate per-rank contributions; the payload
	// grows with P.
	Gather
	Allgather
)

// Collective returns the time a rank spends inside a collective over P
// ranks with a per-rank payload of the given size. The cost follows the
// usual binomial-tree shapes; noise is applied once per call.
func (m Model) Collective(kind CollectiveKind, p, bytes int, rng *rand.Rand) float64 {
	if p < 1 {
		p = 1
	}
	if bytes < 0 {
		bytes = 0
	}
	rounds := float64(ceilLog2(p))
	var base float64
	switch kind {
	case Barrier:
		base = rounds * m.LatencyUS
	case Reduce, Bcast:
		base = rounds * (m.LatencyUS + float64(bytes)/m.BytesPerUS)
	case Allreduce:
		base = 2 * rounds * (m.LatencyUS + float64(bytes)/m.BytesPerUS)
	case Gather, Allgather:
		// Ring-style: P-1 steps each moving one contribution.
		base = float64(p-1) * (m.LatencyUS + float64(bytes)/m.BytesPerUS)
	default:
		base = rounds * m.LatencyUS
	}
	return base * m.noise(rng)
}

// ceilLog2 returns ceil(log2(p)) with ceilLog2(1) == 0.
func ceilLog2(p int) int {
	n, v := 0, 1
	for v < p {
		v <<= 1
		n++
	}
	return n
}
