package obs

import (
	"net"
	"net/http"
)

// MetricsServer is a live introspection endpoint started by Serve.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:9100", or
// ":0" for an ephemeral port) exposing the observer live:
//
//	/metrics  text exposition of the registry
//	/trace    Chrome trace-event JSON of everything recorded so far
//
// The server runs until Close; it never blocks the observed program.
func (o *Observer) Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = o.Metrics().WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Tracer().WriteTrace(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("obs endpoints:\n  /metrics  registry text exposition\n  /trace    Chrome trace-event JSON\n"))
	})
	s := &MetricsServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *MetricsServer) Close() error { return s.srv.Close() }
