// Package obs is the repository's self-observability layer: a span
// tracer exporting Chrome trace-event JSON, a metrics registry with
// text exposition, and report helpers that turn a finished run's trace
// and lease audit into per-owner / per-track throughput tables.
//
// The package is built around two invariants:
//
//   - Determinism: observation never perturbs the observed run. Nothing
//     in this package feeds back into simulation state, scenario keys,
//     checkpoint hashes, or seeds; instrumented layers consult the
//     observer only to record, never to decide.
//   - Nil-safety: every method on Observer, Tracer, Track, Span,
//     Registry, Counter, Gauge and Histogram is safe on a nil receiver
//     and does nothing. Hot paths hold possibly-nil handles and call
//     through unconditionally, so the disabled cost is a nil check.
//
// Layers pick up the process-global observer installed with Enable; a
// nil global (the default) disables everything. Explicit Tracer and
// Registry values can also be used directly, which is what the unit
// tests do.
package obs

import "sync/atomic"

// Observer bundles the tracer and the metrics registry that the
// instrumented layers record into.
type Observer struct {
	tracer  *Tracer
	metrics *Registry
}

// Options configures a new Observer.
type Options struct {
	// TrackCapacity is the per-track event ring capacity. Zero means
	// DefaultTrackCapacity. Oldest events are overwritten when a track
	// overflows; the drop count is reported in the exported trace.
	TrackCapacity int
}

// DefaultTrackCapacity is the per-track ring size used when Options
// does not override it.
const DefaultTrackCapacity = 8192

// New builds an Observer with a fresh tracer and registry.
func New(opts Options) *Observer {
	c := opts.TrackCapacity
	if c <= 0 {
		c = DefaultTrackCapacity
	}
	return &Observer{tracer: NewTracer(c), metrics: NewRegistry()}
}

// Tracer returns the observer's tracer, or nil for a nil observer.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Metrics returns the observer's registry, or nil for a nil observer.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// active is the process-global observer; nil when observability is off.
var active atomic.Pointer[Observer]

// Enable installs o as the process-global observer picked up by the
// campaign engine, the MPI world, the store and the lease manager.
func Enable(o *Observer) { active.Store(o) }

// Disable removes the process-global observer.
func Disable() { active.Store(nil) }

// Active returns the process-global observer, or nil when disabled.
func Active() *Observer { return active.Load() }
