package obs

import (
	"fmt"
	"io"
	"sort"
)

// TrackStat summarises one trace track: how many spans and instants it
// recorded, the busy time inside spans, and the window they cover.
type TrackStat struct {
	Process  string
	Track    string
	Spans    int
	Instants int
	BusyUS   float64
	FirstUS  float64
	LastUS   float64
}

// TraceStats aggregates a parsed trace into per-track statistics,
// ordered by (process, track) metadata registration order.
func TraceStats(tf *TraceFile) []TrackStat {
	type key struct{ pid, tid int }
	names := map[int]string{}
	order := []key{}
	stats := map[key]*TrackStat{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		switch ev.Name {
		case "process_name":
			if n, ok := ev.Args["name"].(string); ok {
				names[ev.PID] = n
			}
		case "thread_name":
			k := key{ev.PID, ev.TID}
			if _, dup := stats[k]; !dup {
				n, _ := ev.Args["name"].(string)
				stats[k] = &TrackStat{Process: names[ev.PID], Track: n}
				order = append(order, k)
			}
		}
	}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		k := key{ev.PID, ev.TID}
		st := stats[k]
		if st == nil {
			st = &TrackStat{Process: names[ev.PID], Track: fmt.Sprintf("tid %d", ev.TID)}
			stats[k] = st
			order = append(order, k)
		}
		end := ev.TS
		switch ev.Ph {
		case "X":
			st.Spans++
			if ev.Dur != nil {
				st.BusyUS += *ev.Dur
				end += *ev.Dur
			}
		case "i":
			st.Instants++
		}
		if st.Spans+st.Instants == 1 || ev.TS < st.FirstUS {
			st.FirstUS = ev.TS
		}
		if end > st.LastUS {
			st.LastUS = end
		}
	}
	out := make([]TrackStat, 0, len(order))
	for _, k := range order {
		out = append(out, *stats[k])
	}
	return out
}

// OwnerExec is one completed job execution attributed to a lease
// owner, as recovered from the store's lease audit log. ElapsedUS and
// EndUnixNS are zero for audit lines written before they were recorded.
type OwnerExec struct {
	Owner     string
	Key       string
	ElapsedUS float64
	EndUnixNS int64
}

// OwnerStat is one fleet member's row in the throughput report.
type OwnerStat struct {
	Owner   string
	Jobs    int
	BusyUS  float64 // sum of recorded job elapsed times
	SpanUS  float64 // first job start to last job end, when timestamps exist
	PerSec  float64 // jobs per second of span (0 when span unknown)
	SharePC float64 // percent of all executed jobs
}

// OwnerStats aggregates audit executions into per-owner rows, sorted
// by owner name.
func OwnerStats(execs []OwnerExec) []OwnerStat {
	byOwner := map[string]*OwnerStat{}
	firstStart := map[string]int64{}
	lastEnd := map[string]int64{}
	for _, e := range execs {
		st := byOwner[e.Owner]
		if st == nil {
			st = &OwnerStat{Owner: e.Owner}
			byOwner[e.Owner] = st
		}
		st.Jobs++
		st.BusyUS += e.ElapsedUS
		if e.EndUnixNS > 0 {
			start := e.EndUnixNS - int64(e.ElapsedUS*1e3)
			if f, ok := firstStart[e.Owner]; !ok || start < f {
				firstStart[e.Owner] = start
			}
			if l, ok := lastEnd[e.Owner]; !ok || e.EndUnixNS > l {
				lastEnd[e.Owner] = e.EndUnixNS
			}
		}
	}
	total := len(execs)
	out := make([]OwnerStat, 0, len(byOwner))
	for owner, st := range byOwner {
		if f, ok := firstStart[owner]; ok {
			st.SpanUS = float64(lastEnd[owner]-f) / 1e3
			if st.SpanUS > 0 {
				st.PerSec = float64(st.Jobs) / (st.SpanUS / 1e6)
			}
		}
		if total > 0 {
			st.SharePC = 100 * float64(st.Jobs) / float64(total)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// WriteOwnerReport renders the per-owner throughput table the ROADMAP's
// elastic-fleet item asks for.
func WriteOwnerReport(w io.Writer, execs []OwnerExec) error {
	stats := OwnerStats(execs)
	if len(stats) == 0 {
		_, err := fmt.Fprintln(w, "owner throughput: no executions recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %6s %12s %12s %10s %7s\n",
		"owner", "jobs", "busy_ms", "span_ms", "jobs/s", "share"); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "%-16s %6d %12.3f %12.3f %10.3f %6.1f%%\n",
			st.Owner, st.Jobs, st.BusyUS/1e3, st.SpanUS/1e3, st.PerSec, st.SharePC); err != nil {
			return err
		}
	}
	return nil
}

// WriteTrackReport renders the per-track (per worker / per rank /
// per owner) side of the throughput report from a parsed trace. Tracks
// that recorded nothing (ranks that never communicated) are summarized
// in one closing line instead of listed.
func WriteTrackReport(w io.Writer, tf *TraceFile) error {
	stats := TraceStats(tf)
	if len(stats) == 0 {
		_, err := fmt.Fprintln(w, "trace: no tracks recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %-20s %7s %9s %12s %12s\n",
		"process", "track", "spans", "instants", "busy_ms", "window_ms"); err != nil {
		return err
	}
	idle := 0
	for _, st := range stats {
		if st.Spans == 0 && st.Instants == 0 {
			idle++
			continue
		}
		if _, err := fmt.Fprintf(w, "%-10s %-20s %7d %9d %12.3f %12.3f\n",
			st.Process, st.Track, st.Spans, st.Instants, st.BusyUS/1e3, (st.LastUS-st.FirstUS)/1e3); err != nil {
			return err
		}
	}
	if idle > 0 {
		if _, err := fmt.Fprintf(w, "(%d idle track(s) with no events omitted)\n", idle); err != nil {
			return err
		}
	}
	return nil
}
