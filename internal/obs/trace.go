package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records spans and instants onto named tracks and exports them
// as Chrome trace-event JSON (the array-of-events format that
// chrome://tracing and Perfetto load). Each track maps to one (pid,
// tid) pair: the track's process groups related tracks ("campaign",
// "mpi", "lease") and the track name is the lane within it ("worker
// 00", "w1 rank 3", owner name).
//
// Every track buffers events in its own fixed-size ring under its own
// mutex, so concurrent writers on different tracks never contend and a
// long run cannot grow memory without bound — the ring keeps the most
// recent events and counts what it dropped.
type Tracer struct {
	capacity int
	epoch    time.Time
	now      func() int64 // ns since epoch; nil means wall clock

	mu     sync.Mutex
	tracks []*Track
	index  map[trackKey]*Track
}

type trackKey struct{ process, name string }

// NewTracer returns a tracer whose tracks buffer up to capacity events
// each. Timestamps count from the call to NewTracer.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTrackCapacity
	}
	//repolint:allow wallclock -- span timestamps are wall-clock by design; traces are write-only observability, never simulation input
	return &Tracer{capacity: capacity, epoch: time.Now(), index: map[trackKey]*Track{}}
}

// NewTracerWithClock is NewTracer with an injected clock returning
// nanoseconds since the trace epoch. Tests use it to produce
// byte-stable golden traces.
func NewTracerWithClock(capacity int, clock func() int64) *Tracer {
	t := NewTracer(capacity)
	t.now = clock
	return t
}

func (t *Tracer) clock() int64 {
	if t.now != nil {
		return t.now()
	}
	//repolint:allow wallclock -- span timestamps are wall-clock by design; tests inject a fixed clock for byte-stable goldens
	return int64(time.Since(t.epoch))
}

// Track returns the track for (process, name), creating it on first
// use. Returns nil on a nil tracer; all Track methods accept nil.
func (t *Tracer) Track(process, name string) *Track {
	if t == nil {
		return nil
	}
	k := trackKey{process, name}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.index[k]; tr != nil {
		return tr
	}
	tr := &Track{tracer: t, process: process, name: name, capacity: t.capacity}
	t.index[k] = tr
	t.tracks = append(t.tracks, tr)
	return tr
}

// Arg is one key/value annotation on an event.
type Arg struct {
	Name  string
	Value any
}

// Event is one recorded trace event. TS and Dur are nanoseconds since
// the tracer epoch; Phase follows the Chrome trace-event phases this
// package emits ('X' complete, 'i' instant).
type Event struct {
	Name  string
	Cat   string
	Phase byte
	TS    int64
	Dur   int64
	Args  []Arg
}

// Track is one trace lane. A nil *Track records nothing.
type Track struct {
	tracer   *Tracer
	process  string
	name     string
	capacity int

	mu      sync.Mutex
	ring    []Event
	head    int    // next overwrite position once the ring is full
	dropped uint64 // events overwritten
}

func (tr *Track) record(ev Event) {
	tr.mu.Lock()
	switch {
	case len(tr.ring) < tr.capacity:
		// The ring grows geometrically up to its capacity instead of
		// allocating it all up front: idle tracks (ranks that never
		// communicate) then cost one small struct, not a full ring.
		if len(tr.ring) == cap(tr.ring) {
			grown := cap(tr.ring) * 2
			if grown == 0 {
				grown = 64
			}
			if grown > tr.capacity {
				grown = tr.capacity
			}
			next := make([]Event, len(tr.ring), grown)
			copy(next, tr.ring)
			tr.ring = next
		}
		tr.ring = append(tr.ring, ev)
	default:
		tr.ring[tr.head] = ev
		tr.head = (tr.head + 1) % len(tr.ring)
		tr.dropped++
	}
	tr.mu.Unlock()
}

// Instant records a zero-duration marker event.
func (tr *Track) Instant(cat, name string, args ...Arg) {
	if tr == nil {
		return
	}
	tr.record(Event{Name: name, Cat: cat, Phase: 'i', TS: tr.tracer.clock(), Args: args})
}

// Span records a complete event covering [start, start+dur), both in
// nanoseconds since the tracer epoch. Callers that already measured a
// duration use this; callers bracketing live code use Begin/End.
func (tr *Track) Span(cat, name string, start, dur int64, args ...Arg) {
	if tr == nil {
		return
	}
	tr.record(Event{Name: name, Cat: cat, Phase: 'X', TS: start, Dur: dur, Args: args})
}

// Now returns the tracer's clock reading, or 0 on a nil track. Use it
// with Span when bracketing code that measures itself.
func (tr *Track) Now() int64 {
	if tr == nil {
		return 0
	}
	return tr.tracer.clock()
}

// Begin opens a span; End closes and records it. The returned value is
// a cheap handle — no allocation, nothing recorded until End.
func (tr *Track) Begin(cat, name string) SpanHandle {
	if tr == nil {
		return SpanHandle{}
	}
	return SpanHandle{track: tr, cat: cat, name: name, start: tr.tracer.clock()}
}

// SpanHandle is an open span returned by Track.Begin. The zero value
// (and any handle from a nil track) is inert.
type SpanHandle struct {
	track *Track
	cat   string
	name  string
	start int64
}

// End records the span opened by Begin, annotated with args.
func (s SpanHandle) End(args ...Arg) {
	if s.track == nil {
		return
	}
	end := s.track.tracer.clock()
	s.track.record(Event{Name: s.name, Cat: s.cat, Phase: 'X', TS: s.start, Dur: end - s.start, Args: args})
}

// snapshot returns the track's events in record order plus the drop
// count. A nonzero drop count means the ring rotated, so record order
// starts at head.
func (tr *Track) snapshot() ([]Event, uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Event, 0, len(tr.ring))
	if tr.dropped > 0 {
		out = append(out, tr.ring[tr.head:]...)
		out = append(out, tr.ring[:tr.head]...)
	} else {
		out = append(out, tr.ring...)
	}
	return out, tr.dropped
}

// TraceEvent is one event in the exported (and parsed) Chrome
// trace-event JSON. Timestamps and durations are microseconds, per the
// format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the exported document: the object form of the Chrome
// trace-event format.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func usPtr(ns int64) *float64 {
	v := float64(ns) / 1e3
	return &v
}

func argMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Name] = a.Value
	}
	return m
}

// Export snapshots every track into a TraceFile. Processes get pids in
// first-registration order starting at 1; tracks get tids in
// first-registration order within their process. Metadata events name
// both, and events are sorted by (ts, pid, tid) so equal inputs yield
// equal bytes.
func (t *Tracer) Export() *TraceFile {
	tf := &TraceFile{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	if t == nil {
		return tf
	}
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()

	pids := map[string]int{}
	tids := map[string]int{} // per-process next tid
	var meta, events []TraceEvent
	for _, tr := range tracks {
		pid, ok := pids[tr.process]
		if !ok {
			pid = len(pids) + 1
			pids[tr.process] = pid
			meta = append(meta, TraceEvent{Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": tr.process}})
		}
		tids[tr.process]++
		tid := tids[tr.process]
		meta = append(meta, TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": tr.name}})
		evs, dropped := tr.snapshot()
		for _, ev := range evs {
			te := TraceEvent{Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Phase),
				TS: float64(ev.TS) / 1e3, PID: pid, TID: tid, Args: argMap(ev.Args)}
			switch ev.Phase {
			case 'X':
				te.Dur = usPtr(ev.Dur)
			case 'i':
				te.S = "t"
			}
			events = append(events, te)
		}
		if dropped > 0 {
			events = append(events, TraceEvent{Name: "ring overflow", Cat: "obs", Ph: "i",
				TS: 0, PID: pid, TID: tid, S: "t",
				Args: map[string]any{"dropped": dropped}})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.TID < b.TID
	})
	tf.TraceEvents = append(meta, events...)
	return tf
}

// WriteTrace exports the tracer and writes the JSON document to w.
func (t *Tracer) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Export())
}

// ParseTrace reads a Chrome trace-event JSON document produced by
// WriteTrace (or any compatible tool emitting the object form).
func ParseTrace(data []byte) (*TraceFile, error) {
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	return &tf, nil
}

// ValidateTrace checks the structural rules chrome://tracing and
// Perfetto rely on: every event has a name and a known phase, complete
// events carry a non-negative duration, timestamps are non-negative,
// and metadata names every (pid, tid) that events reference.
func ValidateTrace(tf *TraceFile) error {
	if tf == nil {
		return fmt.Errorf("obs: nil trace")
	}
	namedProc := map[int]bool{}
	namedThread := map[[2]int]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			switch ev.Name {
			case "process_name":
				namedProc[ev.PID] = true
			case "thread_name":
				namedThread[[2]int{ev.PID, ev.TID}] = true
			}
		}
	}
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("obs: event %d has no name", i)
		}
		switch ev.Ph {
		case "M":
			continue
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("obs: complete event %d (%q) has no valid dur", i, ev.Name)
			}
		case "i", "B", "E", "b", "e", "C":
			// fine
		default:
			return fmt.Errorf("obs: event %d (%q) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			return fmt.Errorf("obs: event %d (%q) has negative ts", i, ev.Name)
		}
		if !namedProc[ev.PID] {
			return fmt.Errorf("obs: event %d (%q) references unnamed pid %d", i, ev.Name, ev.PID)
		}
		if !namedThread[[2]int{ev.PID, ev.TID}] {
			return fmt.Errorf("obs: event %d (%q) references unnamed tid %d/%d", i, ev.Name, ev.PID, ev.TID)
		}
	}
	return nil
}

// Processes returns the distinct process names in metadata order.
func (tf *TraceFile) Processes() []string {
	var out []string
	seen := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if name, ok := ev.Args["name"].(string); ok && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}
