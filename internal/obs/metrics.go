package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and fixed-bucket histograms.
// Lookup takes a read lock; the returned instruments are lock-free
// atomics, so hot paths cache the handle once and update it freely. A
// nil *Registry hands out nil instruments, and every instrument method
// is nil-safe, so disabled observability costs a nil check.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. bounds are
// inclusive upper bounds in ascending order; an implicit +Inf bucket
// catches the rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; cumulative only at exposition
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBucketsUS is the fixed microsecond bucket ladder the store,
// lease and campaign layers observe latencies into.
var LatencyBucketsUS = []float64{10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// Counter returns the named counter, creating it on first use. Nil
// registry returns nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil
// registry returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on
// first use (later callers get the original regardless of bounds). Nil
// registry returns nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText writes the registry in a Prometheus-flavoured text format:
// one "name value" line per counter and gauge, and per histogram the
// cumulative "name_bucket{le=...}" series plus "name_sum" and
// "name_count". Lines are sorted by name so equal registries expose
// equal bytes.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	// The read lock covers the whole exposition: the maps may gain
	// entries concurrently (instrument creation takes the write lock),
	// and map iteration concurrent with assignment is a data race even
	// though the instruments themselves are lock-free.
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	counters, gauges, hists := r.counters, r.gauges, r.hists
	sort.Strings(names)
	for _, n := range names {
		if c, ok := counters[n]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", n, c.Value()); err != nil {
				return err
			}
			continue
		}
		if g, ok := gauges[n]; ok {
			if _, err := fmt.Fprintf(w, "%s %s\n", n, formatFloat(g.Value())); err != nil {
				return err
			}
			continue
		}
		h := hists[n]
		var cum uint64
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, formatFloat(h.Sum()), n, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// DumpFile writes the text exposition to path (the one-shot CI mode).
func (r *Registry) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
