package obs

// Speculation report: aggregate the optimistic scheduler's per-scenario
// telemetry shards (the "spec/..." rows the harness emits next to every
// non-serial sweep job) into one table — conflict and rollback rates plus
// the adaptive window's observed range per scenario. This is the
// run-level view the per-world SpecStats counters cannot give: one line
// per grid scenario, read back from the rows directory a campaign left
// behind, with no re-execution.

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SpecShardPrefix is the file-name prefix of a speculation telemetry
// shard: the harness emits them under keys "spec/<job>", which the CSV
// shard sink sanitizes to "spec_<job>-<hash>.csv".
const SpecShardPrefix = "spec_"

// SpecScenario is one scenario's parsed speculation telemetry row.
type SpecScenario struct {
	// Scenario is the shard's sanitized scenario name (the "spec_" prefix
	// and the sink's hash suffix stripped).
	Scenario string
	// Sched is the scheduler mode token the row recorded ("opt", "par").
	Sched string
	// Procs is the scenario's rank count.
	Procs int64

	SpeculatedOps     int64
	PipelinedOps      int64
	Conflicts         int64
	Rollbacks         int64
	WindowMin         int64
	WindowMax         int64
	SpecCollHits      int64
	SpecCollRollbacks int64
	ConflictRate      float64
	RollbackRate      float64
}

// ReadSpecShards parses every speculation shard under a campaign's rows
// directory into one SpecScenario per data row. Shards written before the
// window telemetry existed parse with those columns zero; files matching
// the prefix that are not valid CSV fail loudly rather than vanish from
// the report.
func ReadSpecShards(dir string) ([]SpecScenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, SpecShardPrefix+"*.csv"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []SpecScenario
	for _, path := range paths {
		scens, err := readSpecShard(path)
		if err != nil {
			return nil, fmt.Errorf("obs: %s: %w", path, err)
		}
		out = append(out, scens...)
	}
	return out, nil
}

// specShardScenario recovers the scenario name from a shard file name:
// "spec_states_opt_r0-1a2b3c4d.csv" -> "states_opt_r0".
func specShardScenario(path string) string {
	name := strings.TrimSuffix(filepath.Base(path), ".csv")
	name = strings.TrimPrefix(name, SpecShardPrefix)
	// The sink appends "-<8 hex>" whenever sanitization changed the key,
	// which it always did for "spec/..." keys (the slash).
	if i := strings.LastIndex(name, "-"); i > 0 && len(name)-i-1 == 8 {
		if _, err := strconv.ParseUint(name[i+1:], 16, 32); err == nil {
			name = name[:i]
		}
	}
	return name
}

func readSpecShard(path string) ([]SpecScenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	records, err := rd.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, nil // header only, or empty: nothing to report
	}
	col := map[string]int{}
	for i, name := range records[0] {
		col[name] = i
	}
	scenario := specShardScenario(path)
	var out []SpecScenario
	for _, rec := range records[1:] {
		str := func(name string) string {
			if i, ok := col[name]; ok && i < len(rec) {
				return rec[i]
			}
			return ""
		}
		num := func(name string) int64 {
			v, _ := strconv.ParseInt(str(name), 10, 64)
			return v
		}
		flt := func(name string) float64 {
			v, _ := strconv.ParseFloat(str(name), 64)
			return v
		}
		out = append(out, SpecScenario{
			Scenario:          scenario,
			Sched:             str("sched"),
			Procs:             num("procs"),
			SpeculatedOps:     num("speculated_ops"),
			PipelinedOps:      num("pipelined_ops"),
			Conflicts:         num("conflicts"),
			Rollbacks:         num("rollbacks"),
			WindowMin:         num("window_min"),
			WindowMax:         num("window_max"),
			SpecCollHits:      num("spec_coll_hits"),
			SpecCollRollbacks: num("spec_coll_rollbacks"),
			ConflictRate:      flt("conflict_rate"),
			RollbackRate:      flt("rollback_rate"),
		})
	}
	return out, nil
}

// WriteSpecReport renders the per-scenario speculation summary table.
func WriteSpecReport(w io.Writer, scens []SpecScenario) error {
	if len(scens) == 0 {
		_, err := fmt.Fprintln(w, "  no speculation shards (serial-only run, or rows directory without spec_* files)")
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-44s %-6s %5s %9s %9s %9s %9s %12s %10s\n",
		"scenario", "sched", "procs", "spec-ops", "conflicts", "rollbacks", "window", "spec-coll", "rates"); err != nil {
		return err
	}
	for _, s := range scens {
		if _, err := fmt.Fprintf(w, "  %-44s %-6s %5d %9d %9d %9d %4d..%-4d %5d/%-6d %4.1f%%/%4.1f%%\n",
			s.Scenario, s.Sched, s.Procs, s.SpeculatedOps, s.Conflicts, s.Rollbacks,
			s.WindowMin, s.WindowMax, s.SpecCollHits, s.SpecCollRollbacks,
			s.ConflictRate*100, s.RollbackRate*100); err != nil {
			return err
		}
	}
	return nil
}
