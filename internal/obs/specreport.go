package obs

// Speculation report: aggregate the optimistic scheduler's per-scenario
// telemetry shards (the "spec/..." rows the harness emits next to every
// non-serial sweep job) into one table — conflict and rollback rates plus
// the adaptive window's observed range per scenario. This is the
// run-level view the per-world SpecStats counters cannot give: one line
// per grid scenario, read back from the rows directory a campaign left
// behind, with no re-execution.

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/results"
)

// SpecShardPrefix is the file-name prefix of a speculation telemetry
// shard: the harness emits them under keys "spec/<job>", which a shard
// sink sanitizes to "spec_<job>-<hash>.csv" (or ".bin" under a binary
// sink).
const SpecShardPrefix = "spec_"

// SpecScenario is one scenario's parsed speculation telemetry row.
type SpecScenario struct {
	// Scenario is the shard's sanitized scenario name (the "spec_" prefix
	// and the sink's hash suffix stripped).
	Scenario string
	// Sched is the scheduler mode token the row recorded ("opt", "par").
	Sched string
	// Procs is the scenario's rank count.
	Procs int64

	SpeculatedOps     int64
	PipelinedOps      int64
	Conflicts         int64
	Rollbacks         int64
	WindowMin         int64
	WindowMax         int64
	SpecCollHits      int64
	SpecCollRollbacks int64
	ConflictRate      float64
	RollbackRate      float64
}

// ReadSpecShards parses every speculation shard under a campaign's rows
// directory into one SpecScenario per data row. Both shard formats are
// read — CSV and the binary row format a BinShardSink writes — and when
// one scenario has a shard in each (a teed campaign), only the binary
// one is parsed. Shards written before the window telemetry existed
// parse with those columns zero; files matching the prefix that are not
// valid shards fail loudly rather than vanish from the report.
func ReadSpecShards(dir string) ([]SpecScenario, error) {
	csvPaths, err := filepath.Glob(filepath.Join(dir, SpecShardPrefix+"*.csv"))
	if err != nil {
		return nil, err
	}
	binPaths, err := filepath.Glob(filepath.Join(dir, SpecShardPrefix+"*.bin"))
	if err != nil {
		return nil, err
	}
	hasBin := map[string]bool{}
	for _, p := range binPaths {
		hasBin[strings.TrimSuffix(p, ".bin")] = true
	}
	paths := binPaths
	for _, p := range csvPaths {
		if !hasBin[strings.TrimSuffix(p, ".csv")] {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	var out []SpecScenario
	for _, path := range paths {
		scens, err := readSpecShard(path)
		if err != nil {
			return nil, fmt.Errorf("obs: %s: %w", path, err)
		}
		out = append(out, scens...)
	}
	return out, nil
}

// specShardScenario recovers the scenario name from a shard file name:
// "spec_states_opt_r0-1a2b3c4d.csv" -> "states_opt_r0".
func specShardScenario(path string) string {
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	name = strings.TrimPrefix(name, SpecShardPrefix)
	// The sink appends "-<8 hex>" whenever sanitization changed the key,
	// which it always did for "spec/..." keys (the slash).
	if i := strings.LastIndex(name, "-"); i > 0 && len(name)-i-1 == 8 {
		if _, err := strconv.ParseUint(name[i+1:], 16, 32); err == nil {
			name = name[:i]
		}
	}
	return name
}

func readSpecShard(path string) ([]SpecScenario, error) {
	rows, err := results.ReadRowsFile(path)
	if err != nil {
		return nil, err
	}
	scenario := specShardScenario(path)
	var out []SpecScenario
	for _, row := range rows {
		field := func(name string) any {
			for _, f := range row {
				if f.Name == name {
					return f.Value
				}
			}
			return nil
		}
		str := func(name string) string {
			s, _ := field(name).(string)
			return s
		}
		num := func(name string) int64 {
			switch v := field(name).(type) {
			case int64:
				return v
			case float64:
				return int64(v)
			}
			return 0
		}
		flt := func(name string) float64 {
			switch v := field(name).(type) {
			case float64:
				return v
			case int64:
				return float64(v)
			}
			return 0
		}
		out = append(out, SpecScenario{
			Scenario:          scenario,
			Sched:             str("sched"),
			Procs:             num("procs"),
			SpeculatedOps:     num("speculated_ops"),
			PipelinedOps:      num("pipelined_ops"),
			Conflicts:         num("conflicts"),
			Rollbacks:         num("rollbacks"),
			WindowMin:         num("window_min"),
			WindowMax:         num("window_max"),
			SpecCollHits:      num("spec_coll_hits"),
			SpecCollRollbacks: num("spec_coll_rollbacks"),
			ConflictRate:      flt("conflict_rate"),
			RollbackRate:      flt("rollback_rate"),
		})
	}
	return out, nil
}

// WriteSpecReport renders the per-scenario speculation summary table.
func WriteSpecReport(w io.Writer, scens []SpecScenario) error {
	if len(scens) == 0 {
		_, err := fmt.Fprintln(w, "  no speculation shards (serial-only run, or rows directory without spec_* files)")
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-44s %-6s %5s %9s %9s %9s %9s %12s %10s\n",
		"scenario", "sched", "procs", "spec-ops", "conflicts", "rollbacks", "window", "spec-coll", "rates"); err != nil {
		return err
	}
	for _, s := range scens {
		if _, err := fmt.Fprintf(w, "  %-44s %-6s %5d %9d %9d %9d %4d..%-4d %5d/%-6d %4.1f%%/%4.1f%%\n",
			s.Scenario, s.Sched, s.Procs, s.SpeculatedOps, s.Conflicts, s.Rollbacks,
			s.WindowMin, s.WindowMax, s.SpecCollHits, s.SpecCollRollbacks,
			s.ConflictRate*100, s.RollbackRate*100); err != nil {
			return err
		}
	}
	return nil
}
