package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeShard(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadSpecShards(t *testing.T) {
	dir := t.TempDir()
	writeShard(t, dir, "spec_states_opt_r0-1a2b3c4d.csv",
		"sched,procs,published_sends,pipelined_ops,speculated_ops,committed_ops,conflicts,rollbacks,window_stalls,window_grows,window_shrinks,window_min,window_max,spec_coll_hits,spec_coll_rollbacks,reexecuted_us,conflict_rate,rollback_rate\n"+
			"opt,4,10,20,40,60,8,6,1,2,3,256,4096,12,1,99.5,0.2,0.15\n")
	// A pre-window-telemetry shard: the new columns parse as zero.
	writeShard(t, dir, "spec_states_par_r0-ffffffff.csv",
		"sched,procs,published_sends,pipelined_ops,speculated_ops,committed_ops,conflicts,rollbacks,window_stalls,reexecuted_us,conflict_rate,rollback_rate\n"+
			"par,4,0,0,0,0,0,0,0,0,0,0\n")
	// Header-only shards and non-spec files are skipped.
	writeShard(t, dir, "spec_empty-00000000.csv", "sched,procs\n")
	writeShard(t, dir, "states_opt_r0-12345678.csv", "rank,q\n0,100\n")

	scens, err := ReadSpecShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2 {
		t.Fatalf("got %d scenarios, want 2: %+v", len(scens), scens)
	}
	s := scens[0]
	if s.Scenario != "states_opt_r0" {
		t.Errorf("scenario = %q, want states_opt_r0", s.Scenario)
	}
	if s.Sched != "opt" || s.Procs != 4 || s.SpeculatedOps != 40 ||
		s.Conflicts != 8 || s.Rollbacks != 6 ||
		s.WindowMin != 256 || s.WindowMax != 4096 ||
		s.SpecCollHits != 12 || s.SpecCollRollbacks != 1 ||
		s.ConflictRate != 0.2 || s.RollbackRate != 0.15 {
		t.Errorf("parsed scenario mismatch: %+v", s)
	}
	old := scens[1]
	if old.Scenario != "states_par_r0" || old.WindowMin != 0 || old.WindowMax != 0 {
		t.Errorf("legacy shard mismatch: %+v", old)
	}
}

func TestWriteSpecReport(t *testing.T) {
	var sb strings.Builder
	if err := WriteSpecReport(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no speculation shards") {
		t.Errorf("empty report = %q", sb.String())
	}
	sb.Reset()
	scens := []SpecScenario{{
		Scenario: "states_opt_r0", Sched: "opt", Procs: 4,
		SpeculatedOps: 40, Conflicts: 8, Rollbacks: 6,
		WindowMin: 256, WindowMax: 4096, SpecCollHits: 12,
		ConflictRate: 0.2, RollbackRate: 0.15,
	}}
	if err := WriteSpecReport(&sb, scens); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"states_opt_r0", "opt", "256..4096", "20.0%/15.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
