package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// fakeClock returns a deterministic nanosecond clock stepping by step
// per reading.
func fakeClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

// TestTraceGolden pins the exported Chrome trace-event JSON for a fixed
// event sequence under an injected clock: the schema (traceEvents /
// displayTimeUnit / metadata / phases), the pid/tid assignment and the
// byte-stable sorting are all covered by one byte comparison.
func TestTraceGolden(t *testing.T) {
	tr := NewTracerWithClock(16, fakeClock(1000)) // 1 us per clock reading
	w0 := tr.Track("campaign", "worker 00")
	r0 := tr.Track("mpi", "w1 rank 0")
	w0.Span("job", "sweep/states", 0, 5000, Arg{Name: "status", Value: "run"})
	r0.Instant("spec", "conflict", Arg{Name: "op", Value: "MPI_Recv()"})
	sp := w0.Begin("job", "trend") // third clock reading: start=2000
	sp.End()                       // fourth: end=3000

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "campaign"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "worker 00"
   }
  },
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 2,
   "tid": 0,
   "args": {
    "name": "mpi"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 2,
   "tid": 1,
   "args": {
    "name": "w1 rank 0"
   }
  },
  {
   "name": "sweep/states",
   "cat": "job",
   "ph": "X",
   "ts": 0,
   "dur": 5,
   "pid": 1,
   "tid": 1,
   "args": {
    "status": "run"
   }
  },
  {
   "name": "conflict",
   "cat": "spec",
   "ph": "i",
   "ts": 1,
   "pid": 2,
   "tid": 1,
   "s": "t",
   "args": {
    "op": "MPI_Recv()"
   }
  },
  {
   "name": "trend",
   "cat": "job",
   "ph": "X",
   "ts": 2,
   "dur": 1,
   "pid": 1,
   "tid": 1
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got := buf.String(); got != want {
		t.Errorf("trace JSON mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	tf, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tf); err != nil {
		t.Errorf("golden trace fails validation: %v", err)
	}
	if got := tf.Processes(); len(got) != 2 || got[0] != "campaign" || got[1] != "mpi" {
		t.Errorf("Processes() = %v, want [campaign mpi]", got)
	}
}

func TestTraceRoundTripValidates(t *testing.T) {
	tr := NewTracer(8)
	tr.Track("lease", "w1").Instant("claim", "k", Arg{Name: "state", Value: "busy"})
	tr.Track("lease", "w1").Span("hold", "k", 10, 20)
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tf); err != nil {
		t.Error(err)
	}
}

func TestValidateTraceRejects(t *testing.T) {
	dur := -1.0
	cases := []struct {
		name string
		tf   *TraceFile
		want string
	}{
		{"nil", nil, "nil trace"},
		{"unnamed event", &TraceFile{TraceEvents: []TraceEvent{{Ph: "i", PID: 1, TID: 1}}}, "no name"},
		{"unknown phase", &TraceFile{TraceEvents: []TraceEvent{{Name: "x", Ph: "?", PID: 1, TID: 1}}}, "unknown phase"},
		{"complete without dur", &TraceFile{TraceEvents: []TraceEvent{{Name: "x", Ph: "X", PID: 1, TID: 1}}}, "no valid dur"},
		{"negative dur", &TraceFile{TraceEvents: []TraceEvent{{Name: "x", Ph: "X", Dur: &dur, PID: 1, TID: 1}}}, "no valid dur"},
		{"unnamed pid", &TraceFile{TraceEvents: []TraceEvent{{Name: "x", Ph: "i", PID: 9, TID: 1}}}, "unnamed pid"},
	}
	for _, c := range cases {
		err := ValidateTrace(c.tf)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestTrackRingOverflow checks the ring keeps the newest events and the
// export reports the drop count as an instant.
func TestTrackRingOverflow(t *testing.T) {
	tr := NewTracerWithClock(4, fakeClock(1))
	trk := tr.Track("p", "t")
	for i := 0; i < 10; i++ {
		trk.Instant("c", string(rune('a'+i)))
	}
	tf := tr.Export()
	var names []string
	var overflow map[string]any
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Name == "ring overflow" {
			overflow = ev.Args
			continue
		}
		names = append(names, ev.Name)
	}
	if want := []string{"g", "h", "i", "j"}; len(names) != 4 || names[0] != want[0] || names[3] != want[3] {
		t.Errorf("surviving events = %v, want %v", names, want)
	}
	if overflow == nil {
		t.Fatal("no ring overflow marker exported")
	}
	if d, ok := overflow["dropped"].(uint64); !ok || d != 6 {
		t.Errorf("dropped = %v (%T), want uint64 6", overflow["dropped"], overflow["dropped"])
	}
	if err := ValidateTrace(tf); err != nil {
		t.Error(err)
	}
}

// TestTraceNilSafety drives every tracer-side entry point through nil
// receivers; any panic fails the test.
func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	trk := tr.Track("p", "t")
	if trk != nil {
		t.Fatal("nil tracer returned non-nil track")
	}
	trk.Instant("c", "n")
	trk.Span("c", "n", 0, 1)
	if trk.Now() != 0 {
		t.Error("nil track Now() != 0")
	}
	sp := trk.Begin("c", "n")
	sp.End()
	(SpanHandle{}).End()
	if tf := tr.Export(); len(tf.TraceEvents) != 0 {
		t.Error("nil tracer exported events")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Error(err)
	}
}

// TestTracerConcurrent hammers one shared track and many distinct
// tracks from concurrent goroutines while a reader exports repeatedly.
// Run under -race this is the tracer's data-race proof.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	shared := tr.Track("campaign", "shared")
	var writers sync.WaitGroup
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			own := tr.Track("mpi", string(rune('A'+g)))
			for i := 0; i < 500; i++ {
				shared.Instant("c", "tick")
				own.Span("c", "op", int64(i), 1)
				sp := own.Begin("c", "live")
				sp.End(Arg{Name: "i", Value: i})
			}
		}(g)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := ValidateTrace(tr.Export()); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if err := ValidateTrace(tr.Export()); err != nil {
		t.Error(err)
	}
}
