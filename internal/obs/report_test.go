package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestOwnerStats(t *testing.T) {
	execs := []OwnerExec{
		{Owner: "w1", Key: "a", ElapsedUS: 1000, EndUnixNS: 2_000_000},
		{Owner: "w1", Key: "b", ElapsedUS: 2000, EndUnixNS: 5_000_000},
		{Owner: "w2", Key: "c", ElapsedUS: 500, EndUnixNS: 3_000_000},
	}
	stats := OwnerStats(execs)
	if len(stats) != 2 {
		t.Fatalf("got %d owners, want 2", len(stats))
	}
	w1 := stats[0]
	if w1.Owner != "w1" || w1.Jobs != 2 || w1.BusyUS != 3000 {
		t.Errorf("w1 = %+v", w1)
	}
	// w1 span: first start = 2ms-1ms = 1ms; last end = 5ms -> 4000 us.
	if w1.SpanUS != 4000 {
		t.Errorf("w1 span = %g us, want 4000", w1.SpanUS)
	}
	if w1.PerSec != 2/(4000/1e6) {
		t.Errorf("w1 jobs/s = %g", w1.PerSec)
	}
	if w1.SharePC < 66 || w1.SharePC > 67 {
		t.Errorf("w1 share = %g%%", w1.SharePC)
	}
	if stats[1].Owner != "w2" || stats[1].Jobs != 1 {
		t.Errorf("w2 = %+v", stats[1])
	}
}

// TestOwnerStatsLegacyLines: audit lines from before the elapsed/end
// fields parse to zero-valued timings; the report must not divide by
// the unknown span.
func TestOwnerStatsLegacy(t *testing.T) {
	stats := OwnerStats([]OwnerExec{{Owner: "w1", Key: "a"}, {Owner: "w1", Key: "b"}})
	if len(stats) != 1 {
		t.Fatal("want one owner")
	}
	st := stats[0]
	if st.Jobs != 2 || st.SpanUS != 0 || st.PerSec != 0 {
		t.Errorf("legacy stats = %+v", st)
	}
	if st.SharePC != 100 {
		t.Errorf("share = %g, want 100", st.SharePC)
	}
}

func TestWriteOwnerReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOwnerReport(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no executions") {
		t.Errorf("empty report = %q", buf.String())
	}
	buf.Reset()
	execs := []OwnerExec{{Owner: "w1", Key: "a", ElapsedUS: 1500, EndUnixNS: 2_000_000}}
	if err := WriteOwnerReport(&buf, execs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"owner", "jobs/s", "w1", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTraceStatsAndTrackReport(t *testing.T) {
	tr := NewTracerWithClock(16, fakeClock(1000))
	w := tr.Track("campaign", "worker 00")
	w.Span("job", "a", 0, 4000)
	w.Span("job", "b", 5000, 3000)
	w.Instant("claim", "c")
	tf := tr.Export()

	stats := TraceStats(tf)
	if len(stats) != 1 {
		t.Fatalf("got %d tracks, want 1", len(stats))
	}
	st := stats[0]
	if st.Process != "campaign" || st.Track != "worker 00" {
		t.Errorf("track identity = %+v", st)
	}
	if st.Spans != 2 || st.Instants != 1 {
		t.Errorf("counts = %+v", st)
	}
	if st.BusyUS != 7 { // 4 us + 3 us
		t.Errorf("busy = %g us, want 7", st.BusyUS)
	}
	if st.FirstUS != 0 || st.LastUS != 8 { // span b ends at 5+3 us
		t.Errorf("window = [%g, %g], want [0, 8]", st.FirstUS, st.LastUS)
	}

	var buf bytes.Buffer
	if err := WriteTrackReport(&buf, tf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "worker 00") {
		t.Errorf("track report = %q", buf.String())
	}
}
