package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Error("counter lookup not idempotent")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}

	h := r.Histogram("lat_us", []float64{10, 100})
	for _, v := range []float64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("hist count = %d, want 4", got)
	}
	if got := h.Sum(); got != 1026 {
		t.Errorf("hist sum = %g, want 1026", got)
	}
	if r.Histogram("lat_us", nil) != h {
		t.Error("histogram lookup not idempotent")
	}
}

// TestWriteTextGolden pins the text exposition format, including
// cumulative histogram buckets and sorted names.
func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Gauge("a_depth").Set(1.5)
	h := r.Histogram("c_us", []float64{10, 100})
	for _, v := range []float64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `a_depth 1.5
b_total 3
c_us_bucket{le="10"} 2
c_us_bucket{le="100"} 3
c_us_bucket{le="+Inf"} 4
c_us_sum 1026
c_us_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned non-nil counter")
	}
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	h := r.Histogram("x", LatencyBucketsUS)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	if err := r.WriteText(io.Discard); err != nil {
		t.Error(err)
	}

	var o *Observer
	if o.Tracer() != nil || o.Metrics() != nil {
		t.Error("nil observer handed out non-nil components")
	}
}

// TestRegistryConcurrent updates instruments from many goroutines while
// a reader exposes the registry; with -race this is the registry's
// data-race proof, and the final counts prove no lost updates.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 1000
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared_total").Inc()
				r.Counter(fmt.Sprintf("own_%d_total", g)).Inc()
				r.Gauge("depth").Set(float64(i))
				r.Histogram("lat_us", LatencyBucketsUS).Observe(float64(i))
			}
		}(g)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*iters {
		t.Errorf("shared counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("lat_us", nil).Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

func TestDumpFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	path := filepath.Join(t.TempDir(), "metrics.txt")
	if err := r.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "x_total 1\n" {
		t.Errorf("dump = %q", data)
	}
}

// TestServe exercises the live endpoint end to end on an ephemeral port.
func TestServe(t *testing.T) {
	o := New(Options{TrackCapacity: 16})
	o.Metrics().Counter("live_total").Add(7)
	o.Tracer().Track("campaign", "worker 00").Instant("c", "tick")
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	if got := get("/metrics"); !bytes.Contains([]byte(got), []byte("live_total 7")) {
		t.Errorf("/metrics = %q", got)
	}
	tf, err := ParseTrace([]byte(get("/trace")))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tf); err != nil {
		t.Error(err)
	}
	sc := bufio.NewScanner(bytes.NewReader([]byte(get("/"))))
	if !sc.Scan() || sc.Text() != "obs endpoints:" {
		t.Error("index page missing")
	}
}
