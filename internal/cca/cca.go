// Package cca implements the slice of the Common Component Architecture
// that the paper's environment (the CCAFFEINE framework, paper §3.1) rests
// on: peer components with ProvidesPorts and UsesPorts, a framework that
// instantiates components and connects ports by handing interface pointers
// from provider to user, an assembly script, and the SCMD parallel model
// (identical frameworks with identical components on every rank,
// communicating via MPI within a component cohort).
//
// As in CCAFFEINE, all components on a rank live in the same address space;
// connecting a port is just moving an interface value, and a method call on
// a UsesPort costs one virtual dispatch (charged to the platform model by
// the proxies in internal/components).
package cca

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/mpi"
)

// Port is the marker for CCA port interfaces. Concrete ports are Go
// interfaces; a component provides a port by registering a value that
// implements one.
type Port interface{}

// GoPort is CCAFFEINE's entry-point port: the framework's "go" command
// invokes it on the driver component.
type GoPort interface {
	Go() error
}

// Services is the interface handed to each component at creation
// (setServices in the CCA spec): components use it to register the ports
// they provide and declare the ports they use, then fetch connected ports.
type Services interface {
	// AddProvidesPort registers a port implementation under a port name
	// and type.
	AddProvidesPort(port Port, name, portType string) error
	// RegisterUsesPort declares that this component will use a port of the
	// given type under the given name.
	RegisterUsesPort(name, portType string) error
	// GetPort returns the port connected to the named UsesPort.
	GetPort(name string) (Port, error)
	// ReleasePort releases a port obtained with GetPort.
	ReleasePort(name string) error
	// Context returns the rank's execution context (processor, TAU
	// profile, communicator) — the framework service that replaces
	// CCAFFEINE's environment access. It is nil in serial assemblies.
	Context() *mpi.Rank
	// InstanceName returns the component instance's name in the assembly
	// (CCAFFEINE's getInstanceName), which proxies use to label their
	// monitoring records ("sc_proxy::compute()").
	InstanceName() string
}

// Component is the root abstract class of all CCAFFEINE components: a
// data-less object with one deferred method.
type Component interface {
	// SetServices is invoked by the framework at component creation.
	SetServices(svc Services) error
}

// Factory constructs a fresh component instance.
type Factory func() Component

type providesEntry struct {
	port     Port
	portType string
}

type usesEntry struct {
	portType string
	provider *instance
	portName string
	fetched  bool
}

type instance struct {
	name     string
	class    string
	comp     Component
	provides map[string]*providesEntry
	uses     map[string]*usesEntry
	fw       *Framework
}

// services is the per-instance Services implementation.
type services struct{ inst *instance }

func (s *services) AddProvidesPort(port Port, name, portType string) error {
	if port == nil {
		return fmt.Errorf("cca: %s: nil provides port %q", s.inst.name, name)
	}
	if _, dup := s.inst.provides[name]; dup {
		return fmt.Errorf("cca: %s: provides port %q already registered", s.inst.name, name)
	}
	s.inst.provides[name] = &providesEntry{port: port, portType: portType}
	return nil
}

func (s *services) RegisterUsesPort(name, portType string) error {
	if _, dup := s.inst.uses[name]; dup {
		return fmt.Errorf("cca: %s: uses port %q already registered", s.inst.name, name)
	}
	s.inst.uses[name] = &usesEntry{portType: portType}
	return nil
}

func (s *services) GetPort(name string) (Port, error) {
	u, ok := s.inst.uses[name]
	if !ok {
		return nil, fmt.Errorf("cca: %s: unknown uses port %q", s.inst.name, name)
	}
	if u.provider == nil {
		return nil, fmt.Errorf("cca: %s: uses port %q is not connected", s.inst.name, name)
	}
	u.fetched = true
	return u.provider.provides[u.portName].port, nil
}

func (s *services) ReleasePort(name string) error {
	u, ok := s.inst.uses[name]
	if !ok {
		return fmt.Errorf("cca: %s: unknown uses port %q", s.inst.name, name)
	}
	u.fetched = false
	return nil
}

func (s *services) Context() *mpi.Rank { return s.inst.fw.rank }

func (s *services) InstanceName() string { return s.inst.name }

// Connection records one port wiring for introspection (the "wiring
// diagram" the Mastermind combines with the call trace, Fig. 10).
type Connection struct {
	User, UsesPort, Provider, ProvidesPort, PortType string
}

// Framework is one rank's CCAFFEINE instance: a registry of component
// classes, the set of live instances, and their connections. Under SCMD
// every rank builds an identical Framework.
type Framework struct {
	rank        *mpi.Rank
	classes     map[string]Factory
	instances   map[string]*instance
	order       []string
	connections []Connection
}

// NewFramework creates an empty framework bound to a rank context
// (nil for serial use).
func NewFramework(rank *mpi.Rank) *Framework {
	return &Framework{
		rank:      rank,
		classes:   make(map[string]Factory),
		instances: make(map[string]*instance),
	}
}

// Rank returns the framework's rank context (nil in serial assemblies).
func (f *Framework) Rank() *mpi.Rank { return f.rank }

// RegisterClass adds a component class to the framework's repository.
func (f *Framework) RegisterClass(class string, factory Factory) {
	f.classes[class] = factory
}

// Classes returns the registered class names, sorted.
func (f *Framework) Classes() []string {
	out := make([]string, 0, len(f.classes))
	for c := range f.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Instantiate creates a named instance of a registered class and invokes
// its SetServices.
func (f *Framework) Instantiate(name, class string) error {
	factory, ok := f.classes[class]
	if !ok {
		return fmt.Errorf("cca: unknown component class %q", class)
	}
	if _, dup := f.instances[name]; dup {
		return fmt.Errorf("cca: instance %q already exists", name)
	}
	inst := &instance{
		name: name, class: class, comp: factory(),
		provides: make(map[string]*providesEntry),
		uses:     make(map[string]*usesEntry),
		fw:       f,
	}
	f.instances[name] = inst
	f.order = append(f.order, name)
	if err := inst.comp.SetServices(&services{inst: inst}); err != nil {
		delete(f.instances, name)
		f.order = f.order[:len(f.order)-1]
		return fmt.Errorf("cca: %s.setServices: %w", name, err)
	}
	return nil
}

// Connect wires user's UsesPort to provider's ProvidesPort. Port types must
// match, mirroring CCAFFEINE's type checking.
func (f *Framework) Connect(user, usesPort, provider, providesPort string) error {
	ui, ok := f.instances[user]
	if !ok {
		return fmt.Errorf("cca: unknown instance %q", user)
	}
	pi, ok := f.instances[provider]
	if !ok {
		return fmt.Errorf("cca: unknown instance %q", provider)
	}
	ue, ok := ui.uses[usesPort]
	if !ok {
		return fmt.Errorf("cca: %s has no uses port %q", user, usesPort)
	}
	pe, ok := pi.provides[providesPort]
	if !ok {
		return fmt.Errorf("cca: %s has no provides port %q", provider, providesPort)
	}
	if ue.portType != pe.portType {
		return fmt.Errorf("cca: port type mismatch connecting %s.%s (%s) to %s.%s (%s)",
			user, usesPort, ue.portType, provider, providesPort, pe.portType)
	}
	if ue.provider != nil {
		return fmt.Errorf("cca: %s.%s already connected", user, usesPort)
	}
	ue.provider = pi
	ue.portName = providesPort
	f.connections = append(f.connections, Connection{
		User: user, UsesPort: usesPort,
		Provider: provider, ProvidesPort: providesPort, PortType: ue.portType,
	})
	return nil
}

// Disconnect severs a user's UsesPort wiring (the AbstractFramework
// surgery Fig. 10 alludes to for dynamic component replacement). The user
// component must re-fetch the port after a reconnect.
func (f *Framework) Disconnect(user, usesPort string) error {
	ui, ok := f.instances[user]
	if !ok {
		return fmt.Errorf("cca: unknown instance %q", user)
	}
	ue, ok := ui.uses[usesPort]
	if !ok {
		return fmt.Errorf("cca: %s has no uses port %q", user, usesPort)
	}
	if ue.provider == nil {
		return fmt.Errorf("cca: %s.%s is not connected", user, usesPort)
	}
	ue.provider = nil
	ue.portName = ""
	ue.fetched = false
	for i, c := range f.connections {
		if c.User == user && c.UsesPort == usesPort {
			f.connections = append(f.connections[:i], f.connections[i+1:]...)
			break
		}
	}
	return nil
}

// Connections returns the wiring diagram in connection order.
func (f *Framework) Connections() []Connection {
	out := make([]Connection, len(f.connections))
	copy(out, f.connections)
	return out
}

// Instances returns the instance names in creation order.
func (f *Framework) Instances() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// ClassOf returns the class of a named instance.
func (f *Framework) ClassOf(name string) (string, bool) {
	inst, ok := f.instances[name]
	if !ok {
		return "", false
	}
	return inst.class, true
}

// LookupProvides returns the named provides port of an instance, as the
// framework's "go" command needs it.
func (f *Framework) LookupProvides(instName, portName string) (Port, error) {
	inst, ok := f.instances[instName]
	if !ok {
		return nil, fmt.Errorf("cca: unknown instance %q", instName)
	}
	pe, ok := inst.provides[portName]
	if !ok {
		return nil, fmt.Errorf("cca: %s has no provides port %q", instName, portName)
	}
	return pe.port, nil
}

// Go invokes the GoPort named portName on the driver instance — the
// framework "go" command that starts a CCAFFEINE application.
func (f *Framework) Go(instName, portName string) error {
	p, err := f.LookupProvides(instName, portName)
	if err != nil {
		return err
	}
	gp, ok := p.(GoPort)
	if !ok {
		return fmt.Errorf("cca: %s.%s is not a GoPort", instName, portName)
	}
	return gp.Go()
}

// RunScript executes a CCAFFEINE-style assembly script: one command per
// line — "instantiate <class> <name>", "connect <user> <usesPort>
// <provider> <providesPort>", "go <instance> <port>" — with '#' comments.
func (f *Framework) RunScript(script string) error {
	for lineNo, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "instantiate":
			if len(fields) != 3 {
				err = fmt.Errorf("want: instantiate <class> <name>")
			} else {
				err = f.Instantiate(fields[2], fields[1])
			}
		case "connect":
			if len(fields) != 5 {
				err = fmt.Errorf("want: connect <user> <usesPort> <provider> <providesPort>")
			} else {
				err = f.Connect(fields[1], fields[2], fields[3], fields[4])
			}
		case "go":
			if len(fields) != 3 {
				err = fmt.Errorf("want: go <instance> <port>")
			} else {
				err = f.Go(fields[1], fields[2])
			}
		default:
			err = fmt.Errorf("unknown command %q", fields[0])
		}
		if err != nil {
			return fmt.Errorf("cca: script line %d (%q): %w", lineNo+1, line, err)
		}
	}
	return nil
}

// WriteDOT emits the component assembly as a Graphviz digraph (the Fig. 2
// wiring snapshot). Proxy-to-Mastermind monitoring connections are drawn
// dashed, as in the paper's figure.
func (f *Framework) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box];\n", title); err != nil {
		return err
	}
	for _, name := range f.order {
		inst := f.instances[name]
		fmt.Fprintf(w, "  %q [label=\"%s\\n(%s)\"];\n", name, name, inst.class)
	}
	for _, c := range f.connections {
		style := ""
		if c.PortType == "MonitorPort" || c.PortType == "MeasurementPort" {
			style = " [style=dashed, color=blue]"
		}
		fmt.Fprintf(w, "  %q -> %q [label=%q]%s;\n", c.User, c.Provider, c.UsesPort, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// RunSCMD runs the same assembly on every rank of the world (the SCMD
// model: P identical frameworks, P instances of each component forming a
// cohort). setup builds and runs the assembly for one rank.
func RunSCMD(w *mpi.World, setup func(f *Framework, r *mpi.Rank) error) error {
	return w.Run(func(r *mpi.Rank) {
		f := NewFramework(r)
		if err := setup(f, r); err != nil {
			panic(fmt.Sprintf("cca: rank %d setup: %v", r.Rank(), err))
		}
	})
}
