package cca

import (
	"strings"
	"testing"

	"repro/internal/mpi"
)

// adderPort is a toy port for wiring tests.
type adderPort interface {
	Add(a, b int) int
}

// adder provides adderPort.
type adder struct{ calls int }

func (a *adder) SetServices(svc Services) error {
	return svc.AddProvidesPort(a, "sum", "AdderPort")
}
func (a *adder) Add(x, y int) int { a.calls++; return x + y }

// client uses adderPort and provides a GoPort.
type client struct {
	svc    Services
	result int
}

func (c *client) SetServices(svc Services) error {
	c.svc = svc
	if err := svc.RegisterUsesPort("adder", "AdderPort"); err != nil {
		return err
	}
	return svc.AddProvidesPort(c, "go", "GoPort")
}

func (c *client) Go() error {
	p, err := c.svc.GetPort("adder")
	if err != nil {
		return err
	}
	c.result = p.(adderPort).Add(19, 23)
	return c.svc.ReleasePort("adder")
}

func newTestFramework() (*Framework, *adder, *client) {
	f := NewFramework(nil)
	a := &adder{}
	c := &client{}
	f.RegisterClass("Adder", func() Component { return a })
	f.RegisterClass("Client", func() Component { return c })
	return f, a, c
}

func TestInstantiateAndConnectAndGo(t *testing.T) {
	f, a, c := newTestFramework()
	if err := f.Instantiate("adder0", "Adder"); err != nil {
		t.Fatal(err)
	}
	if err := f.Instantiate("client0", "Client"); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect("client0", "adder", "adder0", "sum"); err != nil {
		t.Fatal(err)
	}
	if err := f.Go("client0", "go"); err != nil {
		t.Fatal(err)
	}
	if c.result != 42 || a.calls != 1 {
		t.Errorf("result=%d calls=%d, want 42/1", c.result, a.calls)
	}
}

func TestInstantiateUnknownClass(t *testing.T) {
	f, _, _ := newTestFramework()
	if err := f.Instantiate("x", "NoSuchClass"); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestDuplicateInstance(t *testing.T) {
	f, _, _ := newTestFramework()
	if err := f.Instantiate("a", "Adder"); err != nil {
		t.Fatal(err)
	}
	if err := f.Instantiate("a", "Adder"); err == nil {
		t.Fatal("expected duplicate-instance error")
	}
}

func TestConnectTypeMismatch(t *testing.T) {
	f, _, _ := newTestFramework()
	badClient := &struct {
		Component
	}{}
	_ = badClient
	f.RegisterClass("Bad", func() Component { return badComponent{} })
	if err := f.Instantiate("adder0", "Adder"); err != nil {
		t.Fatal(err)
	}
	if err := f.Instantiate("bad0", "Bad"); err != nil {
		t.Fatal(err)
	}
	err := f.Connect("bad0", "adder", "adder0", "sum")
	if err == nil || !strings.Contains(err.Error(), "type mismatch") {
		t.Fatalf("expected type mismatch, got %v", err)
	}
}

// badComponent registers a uses port with the wrong type.
type badComponent struct{}

func (badComponent) SetServices(svc Services) error {
	return svc.RegisterUsesPort("adder", "WrongType")
}

func TestConnectUnknownEndpoints(t *testing.T) {
	f, _, _ := newTestFramework()
	if err := f.Instantiate("adder0", "Adder"); err != nil {
		t.Fatal(err)
	}
	cases := [][4]string{
		{"ghost", "adder", "adder0", "sum"},
		{"adder0", "nope", "adder0", "sum"},
		{"adder0", "adder", "ghost", "sum"},
	}
	for _, c := range cases {
		if err := f.Connect(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("Connect(%v) should fail", c)
		}
	}
}

func TestDoubleConnectRejected(t *testing.T) {
	f, _, _ := newTestFramework()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(f.Instantiate("adder0", "Adder"))
	must(f.Instantiate("client0", "Client"))
	must(f.Connect("client0", "adder", "adder0", "sum"))
	if err := f.Connect("client0", "adder", "adder0", "sum"); err == nil {
		t.Fatal("double connect should fail")
	}
}

func TestGetPortUnconnected(t *testing.T) {
	f, _, c := newTestFramework()
	if err := f.Instantiate("client0", "Client"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.svc.GetPort("adder"); err == nil {
		t.Fatal("GetPort on unconnected uses port should fail")
	}
	if _, err := c.svc.GetPort("nonexistent"); err == nil {
		t.Fatal("GetPort on unknown port should fail")
	}
}

func TestGoOnNonGoPort(t *testing.T) {
	f, _, _ := newTestFramework()
	if err := f.Instantiate("adder0", "Adder"); err != nil {
		t.Fatal(err)
	}
	if err := f.Go("adder0", "sum"); err == nil || !strings.Contains(err.Error(), "GoPort") {
		t.Fatalf("expected GoPort error, got %v", err)
	}
}

func TestRunScript(t *testing.T) {
	f, _, c := newTestFramework()
	script := `
# assemble the toy application
instantiate Adder adder0
instantiate Client client0
connect client0 adder adder0 sum   # wire them
go client0 go
`
	if err := f.RunScript(script); err != nil {
		t.Fatal(err)
	}
	if c.result != 42 {
		t.Errorf("script run result = %d, want 42", c.result)
	}
	if got := f.Instances(); len(got) != 2 || got[0] != "adder0" {
		t.Errorf("Instances() = %v", got)
	}
	if cls, ok := f.ClassOf("adder0"); !ok || cls != "Adder" {
		t.Errorf("ClassOf(adder0) = %s/%v", cls, ok)
	}
}

func TestRunScriptErrors(t *testing.T) {
	cases := []string{
		"frobnicate x y",
		"instantiate OnlyOneArg",
		"connect a b c",
		"go onlyname",
		"instantiate NoSuchClass inst",
	}
	for _, s := range cases {
		f, _, _ := newTestFramework()
		if err := f.RunScript(s); err == nil {
			t.Errorf("script %q should fail", s)
		}
	}
}

func TestConnectionsRecorded(t *testing.T) {
	f, _, _ := newTestFramework()
	_ = f.Instantiate("adder0", "Adder")
	_ = f.Instantiate("client0", "Client")
	_ = f.Connect("client0", "adder", "adder0", "sum")
	conns := f.Connections()
	if len(conns) != 1 {
		t.Fatalf("connections = %d, want 1", len(conns))
	}
	want := Connection{User: "client0", UsesPort: "adder", Provider: "adder0", ProvidesPort: "sum", PortType: "AdderPort"}
	if conns[0] != want {
		t.Errorf("connection = %+v, want %+v", conns[0], want)
	}
}

func TestWriteDOT(t *testing.T) {
	f, _, _ := newTestFramework()
	_ = f.Instantiate("adder0", "Adder")
	_ = f.Instantiate("client0", "Client")
	_ = f.Connect("client0", "adder", "adder0", "sum")
	var sb strings.Builder
	if err := f.WriteDOT(&sb, "fig2"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", `"client0" -> "adder0"`, "Adder", "Client"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestClassesSorted(t *testing.T) {
	f := NewFramework(nil)
	f.RegisterClass("Zeta", func() Component { return &adder{} })
	f.RegisterClass("Alpha", func() Component { return &adder{} })
	got := f.Classes()
	if len(got) != 2 || got[0] != "Alpha" || got[1] != "Zeta" {
		t.Errorf("Classes() = %v", got)
	}
}

func TestRunSCMDBuildsPerRankFrameworks(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.Procs = 3
	w := mpi.NewWorld(cfg)
	var ranksSeen [3]bool
	err := RunSCMD(w, func(f *Framework, r *mpi.Rank) error {
		if f.Rank() != r {
			t.Error("framework not bound to its rank")
		}
		ranksSeen[r.Rank()] = true
		f.RegisterClass("Adder", func() Component { return &adder{} })
		return f.Instantiate("a", "Adder")
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, seen := range ranksSeen {
		if !seen {
			t.Errorf("rank %d never built a framework", i)
		}
	}
}

func TestRunSCMDSetupErrorPropagates(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.Procs = 2
	w := mpi.NewWorld(cfg)
	err := RunSCMD(w, func(f *Framework, r *mpi.Rank) error {
		return f.Instantiate("x", "MissingClass")
	})
	if err == nil || !strings.Contains(err.Error(), "MissingClass") {
		t.Fatalf("setup error not propagated: %v", err)
	}
}

func TestSetServicesFailureRollsBack(t *testing.T) {
	f := NewFramework(nil)
	f.RegisterClass("Bad", func() Component { return failingComponent{} })
	if err := f.Instantiate("b", "Bad"); err == nil {
		t.Fatal("expected SetServices failure")
	}
	if got := f.Instances(); len(got) != 0 {
		t.Errorf("failed instance left behind: %v", got)
	}
}

type failingComponent struct{}

func (failingComponent) SetServices(Services) error {
	return errFail
}

var errFail = &scriptError{"setServices failed"}

type scriptError struct{ s string }

func (e *scriptError) Error() string { return e.s }
