package results

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary row shards: a compact, length-prefixed, byte-deterministic
// encoding of the same rows the CSV shards carry, so serving and replay
// are bandwidth-bound instead of parse-bound. The format:
//
//	header   magic "RRBS" + one version byte (currently 1)
//	row      uvarint body length, then the body:
//	  body   uvarint field count, then per field:
//	    uvarint name length, name bytes
//	    1 tag byte, value:
//	      1 int     zigzag varint (int and int64 collapse here, as both
//	                render identically in CSV)
//	      2 float64 8 bytes, IEEE 754 bits little-endian
//	      3 string  uvarint length + bytes (fmt.Stringer and any other
//	                value type are rendered through the CSV formatter
//	                first, so the two formats agree on every byte)
//	      4 bool    1 byte, 0 or 1
//
// The row-level length prefix lets a reader skip rows without decoding
// fields and makes truncation detectable: a body shorter than its prefix
// is an error, never a silently short row. Encoding is a pure function of
// the rows — no timestamps, no padding, no map iteration — so a shard
// written twice from the same rows is byte-identical, and a binary shard
// decoded and re-encoded as CSV reproduces the sibling CSV shard byte for
// byte.

const (
	// binMagic opens every binary row shard.
	binMagic = "RRBS"
	// binVersion is the current format version, the byte after the magic.
	binVersion = 1

	binTagInt    = 1
	binTagFloat  = 2
	binTagString = 3
	binTagBool   = 4

	// maxBinRowLen bounds a row body so a corrupt length prefix fails
	// immediately instead of attempting a giant allocation.
	maxBinRowLen = 1 << 26
)

// BinEncoder writes rows in the binary shard format. Like CSVEncoder,
// the file header (magic + version) is written before the first row;
// HeaderDone/SetHeaderDone carry that state across a shard sink's append
// reopens.
type BinEncoder struct {
	w      io.Writer
	header bool
	buf    []byte
}

// NewBinEncoder returns an encoder writing to w.
func NewBinEncoder(w io.Writer) *BinEncoder {
	return &BinEncoder{w: w}
}

// HeaderDone reports whether the magic+version header has been written.
func (e *BinEncoder) HeaderDone() bool { return e.header }

// SetHeaderDone overrides the header state (used by shard sinks when
// reopening an existing file in append mode).
func (e *BinEncoder) SetHeaderDone(done bool) { e.header = done }

// Encode writes one row (preceded by the header if this is the first).
func (e *BinEncoder) Encode(row Row) error {
	if !e.header {
		if _, err := io.WriteString(e.w, binMagic); err != nil {
			return err
		}
		if _, err := e.w.Write([]byte{binVersion}); err != nil {
			return err
		}
		e.header = true
	}
	body := e.buf[:0]
	body = binary.AppendUvarint(body, uint64(len(row)))
	for _, f := range row {
		body = binary.AppendUvarint(body, uint64(len(f.Name)))
		body = append(body, f.Name...)
		body = appendBinValue(body, f.Value)
	}
	e.buf = body
	var pre [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pre[:], uint64(len(body)))
	if _, err := e.w.Write(pre[:n]); err != nil {
		return err
	}
	_, err := e.w.Write(body)
	return err
}

// appendBinValue encodes one field value. The type partition mirrors
// formatValue's: anything that is not an int, float64 or bool is carried
// as the string CSV would have written, so decode+re-encode round-trips
// between the two formats byte for byte.
func appendBinValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		b = append(b, binTagInt)
		return binary.AppendVarint(b, int64(x))
	case int64:
		b = append(b, binTagInt)
		return binary.AppendVarint(b, x)
	case float64:
		b = append(b, binTagFloat)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	case bool:
		b = append(b, binTagBool)
		if x {
			return append(b, 1)
		}
		return append(b, 0)
	default:
		s := formatValue(v)
		b = append(b, binTagString)
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	}
}

// BinReader reads rows from a binary shard. Integers decode as int64,
// floats as float64, booleans as bool and everything else as string — the
// exact value set the CSV side renders, so a decoded row re-encodes
// identically in either format.
type BinReader struct {
	br  *bufio.Reader
	buf []byte
}

// NewBinReader validates the shard header and returns a reader positioned
// at the first row.
func NewBinReader(r io.Reader) (*BinReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(binMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("results: binary shard header: %w", err)
	}
	if string(head[:len(binMagic)]) != binMagic {
		return nil, fmt.Errorf("results: not a binary row shard (bad magic %q)", head[:len(binMagic)])
	}
	if head[len(binMagic)] != binVersion {
		return nil, fmt.Errorf("results: binary shard version %d, reader supports %d", head[len(binMagic)], binVersion)
	}
	return &BinReader{br: br}, nil
}

// Next returns the next row, or io.EOF at a clean end of the shard. A
// shard that ends mid-row (truncated write, corrupt length) is an error,
// never a short row.
func (r *BinReader) Next() (Row, error) {
	length, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("results: binary shard row length: %w", err)
	}
	if length > maxBinRowLen {
		return nil, fmt.Errorf("results: binary shard row length %d exceeds limit %d (corrupt shard?)", length, maxBinRowLen)
	}
	if uint64(cap(r.buf)) < length {
		r.buf = make([]byte, length)
	}
	body := r.buf[:length]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return nil, fmt.Errorf("results: binary shard truncated mid-row: %w", err)
	}
	return decodeBinRow(body)
}

// decodeBinRow parses one row body.
func decodeBinRow(body []byte) (Row, error) {
	nf, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("results: binary shard: bad field count")
	}
	body = body[n:]
	if nf > uint64(len(body)) {
		return nil, fmt.Errorf("results: binary shard: field count %d exceeds row body", nf)
	}
	row := make(Row, 0, nf)
	for i := uint64(0); i < nf; i++ {
		nameLen, n := binary.Uvarint(body)
		if n <= 0 || nameLen > uint64(len(body)-n) {
			return nil, fmt.Errorf("results: binary shard: bad field name length")
		}
		body = body[n:]
		name := string(body[:nameLen])
		body = body[nameLen:]
		if len(body) == 0 {
			return nil, fmt.Errorf("results: binary shard: field %q missing value tag", name)
		}
		tag := body[0]
		body = body[1:]
		var value any
		switch tag {
		case binTagInt:
			v, n := binary.Varint(body)
			if n <= 0 {
				return nil, fmt.Errorf("results: binary shard: field %q: bad varint", name)
			}
			body = body[n:]
			value = v
		case binTagFloat:
			if len(body) < 8 {
				return nil, fmt.Errorf("results: binary shard: field %q: short float", name)
			}
			value = math.Float64frombits(binary.LittleEndian.Uint64(body))
			body = body[8:]
		case binTagString:
			sl, n := binary.Uvarint(body)
			if n <= 0 || sl > uint64(len(body)-n) {
				return nil, fmt.Errorf("results: binary shard: field %q: bad string length", name)
			}
			body = body[n:]
			value = string(body[:sl])
			body = body[sl:]
		case binTagBool:
			if len(body) < 1 {
				return nil, fmt.Errorf("results: binary shard: field %q: short bool", name)
			}
			value = body[0] != 0
			body = body[1:]
		default:
			return nil, fmt.Errorf("results: binary shard: field %q: unknown tag %d", name, tag)
		}
		row = append(row, Field{Name: name, Value: value})
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("results: binary shard: %d trailing bytes after row", len(body))
	}
	return row, nil
}

// ReadBinRows reads a whole binary shard into memory.
func ReadBinRows(r io.Reader) ([]Row, error) {
	br, err := NewBinReader(r)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for {
		row, err := br.Next()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
}
