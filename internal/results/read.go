package results

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The read side of the shard formats: both the CSV shards and their
// binary siblings decode back into []Row, so consumers (the results
// service, obsreport -rows, ad-hoc tooling) accept either format through
// one call. Binary shards decode losslessly; CSV shards decode
// best-effort typed — integers as int64, floats as float64, everything
// else as string — which is exact for every row this repository's
// encoders write (CSV rendering is %d / %g / verbatim, all of which
// round-trip through the parse below).

// ReadRowsFile reads one shard file, dispatching on its extension:
// ".bin" is the binary row format, anything else is CSV.
func ReadRowsFile(path string) ([]Row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if filepath.Ext(path) == ".bin" {
		rows, err := ReadBinRows(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return rows, nil
	}
	rows, err := ReadCSVRows(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// ReadCSVRows decodes a CSV shard written by CSVEncoder: the first line
// is the header, each following line one row. Values parse as int64 when
// they are valid integers, float64 when they are valid numbers, and stay
// strings otherwise — the inverse of the encoder's %d / %g / verbatim
// rendering.
func ReadCSVRows(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, nil // empty shard: no header, no rows
	}
	names := strings.Split(sc.Text(), ",")
	var rows []Row
	for sc.Scan() {
		cells := strings.Split(sc.Text(), ",")
		if len(cells) != len(names) {
			return nil, fmt.Errorf("results: csv row has %d cells, header has %d", len(cells), len(names))
		}
		row := make(Row, len(cells))
		for i, cell := range cells {
			row[i] = Field{Name: names[i], Value: parseCSVValue(cell)}
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

// parseCSVValue recovers a typed value from one CSV cell.
func parseCSVValue(cell string) any {
	if v, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return v
	}
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		return v
	}
	return cell
}
