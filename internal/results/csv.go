package results

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CSVEncoder writes rows as CSV: a header line derived from the first
// row's field names, then one line per row. It reproduces the byte format
// of the repository's original hand-rolled writers (ints as %d, floats as
// %g), so regenerated figure files stay identical. Values are written
// verbatim — the encoder targets the numeric telemetry this repository
// emits and does not quote separators.
type CSVEncoder struct {
	w      io.Writer
	header bool
	sb     strings.Builder
}

// NewCSVEncoder returns an encoder writing to w.
func NewCSVEncoder(w io.Writer) *CSVEncoder {
	return &CSVEncoder{w: w}
}

// Header writes the header line immediately. Normally the header is
// derived from the first encoded row; writers that must produce a header
// even for zero rows call this first. Calling it after output has begun is
// a no-op.
func (e *CSVEncoder) Header(names ...string) error {
	if e.header {
		return nil
	}
	e.header = true
	e.sb.Reset()
	for i, n := range names {
		if i > 0 {
			e.sb.WriteByte(',')
		}
		e.sb.WriteString(n)
	}
	e.sb.WriteByte('\n')
	_, err := io.WriteString(e.w, e.sb.String())
	return err
}

// Encode writes one row (preceded by the header if this is the first).
// Every row should carry the same field names in the same order; the
// encoder trusts the emitter and does not re-check.
func (e *CSVEncoder) Encode(row Row) error {
	e.sb.Reset()
	if !e.header {
		for i, f := range row {
			if i > 0 {
				e.sb.WriteByte(',')
			}
			e.sb.WriteString(f.Name)
		}
		e.sb.WriteByte('\n')
		e.header = true
	}
	for i, f := range row {
		if i > 0 {
			e.sb.WriteByte(',')
		}
		e.sb.WriteString(formatValue(f.Value))
	}
	e.sb.WriteByte('\n')
	_, err := io.WriteString(e.w, e.sb.String())
	return err
}

// shard is one key's CSV file, open or evicted.
type shard struct {
	path string
	// mu serializes writes and eviction on this shard, so encode I/O does
	// not happen under the sink-wide lock. Lock order: CSVShardSink.mu
	// before shard.mu, always.
	mu sync.Mutex
	// created records that the file exists on disk (first open truncates,
	// later reopens append).
	created bool
	// headerDone carries the encoder's header state across evictions.
	headerDone bool
	// f, bw, enc are non-nil only while the shard is open.
	f   *os.File
	bw  *bufio.Writer
	enc *CSVEncoder
}

// DefaultMaxOpenShards bounds how many shard files a CSVShardSink keeps
// open at once. Shards beyond the bound are flushed, closed (oldest
// first) and transparently reopened in append mode on their next row, so
// a grid may have arbitrarily many keys without exhausting file
// descriptors.
const DefaultMaxOpenShards = 128

// CSVShardSink writes one CSV shard file per key under a directory.
// Shards are created lazily on the key's first row (truncating any
// previous file of the same name, so re-running a campaign rewrites its
// shards from scratch) and buffered; at most DefaultMaxOpenShards files
// are open at a time, so both memory and file descriptors stay bounded by
// the keys emitting concurrently, not by the grid size or row count. Emit
// is safe for concurrent use; rows within one key keep their emission
// order.
type CSVShardSink struct {
	dir     string
	maxOpen int
	mu      sync.Mutex
	shards  map[string]*shard
	open    []*shard // open shards, oldest first
	closed  bool
}

// NewCSVShardSink creates the directory (if needed) and returns the sink.
func NewCSVShardSink(dir string) (*CSVShardSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: shard sink: %w", err)
	}
	return &CSVShardSink{dir: dir, maxOpen: DefaultMaxOpenShards, shards: map[string]*shard{}}, nil
}

// Dir returns the sink's shard directory.
func (s *CSVShardSink) Dir() string { return s.dir }

// ShardPath returns the file a key's rows are written to. Keys map to file
// names by replacing path-hostile characters; when that sanitization loses
// information an FNV suffix keeps distinct keys in distinct files.
func (s *CSVShardSink) ShardPath(key string) string {
	return filepath.Join(s.dir, shardFile(key))
}

// shardFile maps a key to its shard file name.
func shardFile(key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, key)
	if clean != key {
		h := fnv.New32a()
		io.WriteString(h, key)
		clean = fmt.Sprintf("%s-%08x", clean, h.Sum32())
	}
	return clean + ".csv"
}

// Emit implements Sink. The sink-wide lock covers only the shard lookup
// (and the rare open/evict); the row's encode and buffered write happen
// under the shard's own lock, so jobs streaming to different keys write
// concurrently.
func (s *CSVShardSink) Emit(key string, row Row) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("results: emit %q on closed shard sink", key)
	}
	sh := s.shards[key]
	if sh == nil {
		sh = &shard{path: s.ShardPath(key)}
		s.shards[key] = sh
	}
	if sh.f == nil {
		if err := s.openLocked(sh); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("results: shard for %q: %w", key, err)
		}
	}
	// Taking sh.mu while still holding s.mu guarantees the shard cannot
	// be evicted (eviction needs s.mu) before the write claims it.
	sh.mu.Lock()
	s.mu.Unlock()
	defer sh.mu.Unlock()
	return sh.enc.Encode(row)
}

// openLocked opens (or reopens in append mode) a shard, evicting the
// oldest open shards while the bound is exceeded. Caller holds s.mu.
func (s *CSVShardSink) openLocked(sh *shard) error {
	for len(s.open) >= s.maxOpen {
		if err := s.evictLocked(s.open[0]); err != nil {
			return err
		}
	}
	var f *os.File
	var err error
	if sh.created {
		f, err = os.OpenFile(sh.path, os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		f, err = os.Create(sh.path)
	}
	if err != nil {
		return err
	}
	sh.created = true
	sh.f = f
	sh.bw = bufio.NewWriter(f)
	sh.enc = NewCSVEncoder(sh.bw)
	sh.enc.header = sh.headerDone
	s.open = append(s.open, sh)
	return nil
}

// evictLocked flushes and closes one open shard, remembering its encoder
// state for a later append reopen. Caller holds s.mu; the shard's own
// lock is taken to wait out any in-flight write.
//
//repolint:allow lockio -- eviction must close the file under the shard lock, or a racing writer could append to a closed handle; shard files are local buffered writes, bounded by the FD cap
func (s *CSVShardSink) evictLocked(sh *shard) error {
	for i, o := range s.open {
		if o == sh {
			s.open = append(s.open[:i], s.open[i+1:]...)
			break
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.bw.Flush()
	if cerr := sh.f.Close(); err == nil {
		err = cerr
	}
	sh.headerDone = sh.enc.header
	sh.f, sh.bw, sh.enc = nil, nil, nil
	return err
}

// Flush implements Sink: every open shard's buffer is forced to disk.
func (s *CSVShardSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, sh := range s.open {
		sh.mu.Lock()
		if err := sh.bw.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Close implements Sink: flushes and closes every open shard file.
func (s *CSVShardSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var firstErr error
	for len(s.open) > 0 {
		if err := s.evictLocked(s.open[0]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Keys returns every key the sink has seen, sorted.
func (s *CSVShardSink) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.shards))
	for k := range s.shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
