package results

import (
	"io"
	"strings"
)

// CSVEncoder writes rows as CSV: a header line derived from the first
// row's field names, then one line per row. It reproduces the byte format
// of the repository's original hand-rolled writers (ints as %d, floats as
// %g), so regenerated figure files stay identical. Values are written
// verbatim — the encoder targets the numeric telemetry this repository
// emits and does not quote separators.
type CSVEncoder struct {
	w      io.Writer
	header bool
	sb     strings.Builder
}

// NewCSVEncoder returns an encoder writing to w.
func NewCSVEncoder(w io.Writer) *CSVEncoder {
	return &CSVEncoder{w: w}
}

// Header writes the header line immediately. Normally the header is
// derived from the first encoded row; writers that must produce a header
// even for zero rows call this first. Calling it after output has begun is
// a no-op.
func (e *CSVEncoder) Header(names ...string) error {
	if e.header {
		return nil
	}
	e.header = true
	e.sb.Reset()
	for i, n := range names {
		if i > 0 {
			e.sb.WriteByte(',')
		}
		e.sb.WriteString(n)
	}
	e.sb.WriteByte('\n')
	_, err := io.WriteString(e.w, e.sb.String())
	return err
}

// Encode writes one row (preceded by the header if this is the first).
// Every row should carry the same field names in the same order; the
// encoder trusts the emitter and does not re-check.
func (e *CSVEncoder) Encode(row Row) error {
	e.sb.Reset()
	if !e.header {
		for i, f := range row {
			if i > 0 {
				e.sb.WriteByte(',')
			}
			e.sb.WriteString(f.Name)
		}
		e.sb.WriteByte('\n')
		e.header = true
	}
	for i, f := range row {
		if i > 0 {
			e.sb.WriteByte(',')
		}
		e.sb.WriteString(formatValue(f.Value))
	}
	e.sb.WriteByte('\n')
	_, err := io.WriteString(e.w, e.sb.String())
	return err
}

// HeaderDone reports whether the header line has been written — the
// encoder state a shard sink carries across append reopens.
func (e *CSVEncoder) HeaderDone() bool { return e.header }

// SetHeaderDone overrides the header state (used by shard sinks when
// reopening an existing file in append mode).
func (e *CSVEncoder) SetHeaderDone(done bool) { e.header = done }
