package results

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type dirStringer int

func (dirStringer) String() string { return "X" }

func TestCSVEncoderByteFormat(t *testing.T) {
	// The encoder must reproduce the original hand-rolled writers' bytes:
	// ints via %d, floats via %g, strings and Stringers verbatim.
	var sb strings.Builder
	enc := NewCSVEncoder(&sb)
	rows := []Row{
		{F("rank", 0), F("q", 1000), F("mode", dirStringer(0)), F("wall_us", 123.456)},
		{F("rank", 2), F("q", 150000), F("mode", "Y"), F("wall_us", 1.5e-07)},
	}
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	want := "rank,q,mode,wall_us\n0,1000,X,123.456\n2,150000,Y,1.5e-07\n"
	if sb.String() != want {
		t.Errorf("encoded = %q, want %q", sb.String(), want)
	}
}

func TestCSVEncoderExplicitHeader(t *testing.T) {
	var sb strings.Builder
	enc := NewCSVEncoder(&sb)
	if err := enc.Header("a", "b"); err != nil {
		t.Fatal(err)
	}
	// A second Header and the first row's implicit header are no-ops.
	if err := enc.Header("c", "d"); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(Row{F("a", 1), F("b", 2)}); err != nil {
		t.Fatal(err)
	}
	if want := "a,b\n1,2\n"; sb.String() != want {
		t.Errorf("encoded = %q, want %q", sb.String(), want)
	}
}

func TestMemorySinkConcurrentPerKeyOrder(t *testing.T) {
	s := NewMemorySink()
	const keys, rows = 8, 200
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("job/%d", k)
			for i := 0; i < rows; i++ {
				if err := s.Emit(key, Row{F("i", i), F("k", k)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	if got := len(s.Keys()); got != keys {
		t.Fatalf("keys = %d, want %d", got, keys)
	}
	for _, key := range s.Keys() {
		got := s.Rows(key)
		if len(got) != rows {
			t.Fatalf("%s: rows = %d, want %d", key, len(got), rows)
		}
		for i, r := range got {
			if r[0].Value.(int) != i {
				t.Fatalf("%s: row %d out of order: %v", key, i, r)
			}
		}
	}
}

func TestAggSinkMatchesDirectStatistics(t *testing.T) {
	s := NewAggSink()
	vals := []float64{3, 1, 4, 1, 5, 9, 2.5, 6}
	for i, v := range vals {
		if err := s.Emit("k", Row{F("wall_us", v), F("rep", i), F("label", "skip-me")}); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := s.Stat("k", "wall_us")
	if !ok {
		t.Fatal("no wall_us stat")
	}
	var sum, sumSq float64
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		sum += v
		sumSq += v * v
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	mean := sum / float64(len(vals))
	sd := math.Sqrt(sumSq/float64(len(vals)) - mean*mean)
	if st.N != len(vals) || st.Min != mn || st.Max != mx {
		t.Errorf("stat = %+v", st)
	}
	if math.Abs(st.Mean-mean) > 1e-12 || math.Abs(st.StdDev-sd) > 1e-12 {
		t.Errorf("mean/sd = %g/%g, want %g/%g", st.Mean, st.StdDev, mean, sd)
	}
	// Non-numeric fields are ignored; numeric ones keep first-seen order.
	if fields := s.Fields("k"); len(fields) != 2 || fields[0] != "wall_us" || fields[1] != "rep" {
		t.Errorf("fields = %v", fields)
	}
	if _, ok := s.Stat("k", "label"); ok {
		t.Error("string field aggregated")
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "key,field,n,mean,stddev,min,max\n") {
		t.Errorf("agg CSV header wrong: %q", sb.String())
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewMemorySink(), NewAggSink()
	tee := NewTee(a, b)
	if err := tee.Emit("k", Row{F("v", 2.0)}); err != nil {
		t.Fatal(err)
	}
	if err := tee.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Rows("k")) != 1 {
		t.Error("memory sink missed the row")
	}
	if st, ok := b.Stat("k", "v"); !ok || st.N != 1 || st.Mean != 2 {
		t.Errorf("agg sink missed the row: %+v", st)
	}
}

func TestCSVShardSinkConcurrentMatchesSerial(t *testing.T) {
	emit := func(s *CSVShardSink, parallel bool) {
		t.Helper()
		const keys, rows = 6, 50
		var wg sync.WaitGroup
		for k := 0; k < keys; k++ {
			job := func(k int) {
				key := fmt.Sprintf("p%d/eth/c512kB/r0", k)
				for i := 0; i < rows; i++ {
					if err := s.Emit(key, Row{F("i", i), F("v", float64(k)+0.5)}); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if parallel {
				wg.Add(1)
				go func(k int) { defer wg.Done(); job(k) }(k)
			} else {
				job(k)
			}
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	serialDir, parDir := t.TempDir(), t.TempDir()
	serial, err := NewCSVShardSink(serialDir)
	if err != nil {
		t.Fatal(err)
	}
	emit(serial, false)
	par, err := NewCSVShardSink(parDir)
	if err != nil {
		t.Fatal(err)
	}
	emit(par, true)

	for _, key := range serial.Keys() {
		want, err := os.ReadFile(serial.ShardPath(key))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(par.ShardPath(key))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: concurrent shard differs from serial", key)
		}
		if !strings.HasPrefix(string(want), "i,v\n0,") {
			t.Errorf("%s: unexpected shard content %q", key, want[:20])
		}
	}
}

func TestShardFileNamesDistinctAfterSanitization(t *testing.T) {
	// "p3/eth" and "p3_eth" sanitize to the same base name; the FNV suffix
	// must keep their shards apart.
	a, b := shardFile("p3/eth", ".csv"), shardFile("p3_eth", ".csv")
	if a == b {
		t.Errorf("colliding shard files %q", a)
	}
	if strings.ContainsAny(a, "/\\") {
		t.Errorf("shard file %q not sanitized", a)
	}
	if got := shardFile("plain-key_1.0", ".csv"); got != "plain-key_1.0.csv" {
		t.Errorf("clean key renamed to %q", got)
	}
}

func TestCSVShardSinkRejectsEmitAfterClose(t *testing.T) {
	s, err := NewCSVShardSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit("k", Row{F("v", 1)}); err == nil {
		t.Error("emit after close succeeded")
	}
}

func TestDiscardSink(t *testing.T) {
	if err := Discard.Emit("k", Row{F("v", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := Discard.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := Discard.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardEvictionReopensInAppendMode(t *testing.T) {
	// With a tiny open-file bound, interleaved keys force shards to be
	// evicted and reopened; every shard must still hold all its rows in
	// order under a single header.
	s, err := NewCSVShardSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.maxOpen = 2
	const keys, rounds = 5, 4
	for r := 0; r < rounds; r++ {
		for k := 0; k < keys; k++ {
			if err := s.Emit(fmt.Sprintf("key%d", k), Row{F("round", r), F("k", k)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(s.open) > 2 {
		t.Fatalf("%d shards open, bound is 2", len(s.open))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		data, err := os.ReadFile(s.ShardPath(fmt.Sprintf("key%d", k)))
		if err != nil {
			t.Fatal(err)
		}
		want := "round,k\n"
		for r := 0; r < rounds; r++ {
			want += fmt.Sprintf("%d,%d\n", r, k)
		}
		if string(data) != want {
			t.Errorf("key%d shard = %q, want %q", k, data, want)
		}
	}
}

func TestThousandScenarioGridStreams(t *testing.T) {
	// The acceptance shape for the streaming subsystem: a 1000-scenario
	// grid's keys stream through a shard sink, one file per scenario, with
	// nothing buffered in the sink itself.
	s, err := NewCSVShardSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const scenarios = 1000
	for i := 0; i < scenarios; i++ {
		key := fmt.Sprintf("p3/eth/c%dkB/r%d", 128+(i%8)*64, i)
		for r := 0; r < 3; r++ {
			if err := s.Emit(key, Row{F("q", 1000*r), F("wall_us", float64(i)+0.25)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := len(s.Keys()); got != scenarios {
		t.Fatalf("%d shards, want %d", got, scenarios)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.ShardPath("p3/eth/c128kB/r0"))
	if err != nil {
		t.Fatal(err)
	}
	if want := "q,wall_us\n0,0.25\n1000,0.25\n2000,0.25\n"; string(data) != want {
		t.Errorf("shard content = %q, want %q", data, want)
	}
}

// BenchmarkCSVShardSink measures sink throughput: rows/sec streamed into a
// handful of shard files from one goroutine (the per-job emission
// pattern).
func BenchmarkCSVShardSink(b *testing.B) {
	dir := b.TempDir()
	s, err := NewCSVShardSink(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("p3/eth/c%dkB/r0", 128<<i)
	}
	row := Row{F("rank", 1), F("q", 52345), F("mode", "Y"), F("wall_us", 12345.678), F("l2_dcm", 9876.0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Emit(keys[i%len(keys)], row); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	_ = filepath.Join(dir, "flushed")
}
