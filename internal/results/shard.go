package results

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file is the shared per-key shard machinery behind CSVShardSink and
// BinShardSink: lazy file creation, an FD cap with oldest-first eviction
// and transparent append reopen, and per-shard write locks so encoding
// never happens under the sink-wide lock. The two sinks differ only in
// their row encoder and file extension.

// rowEncoder is one shard file's row writer. HeaderDone/SetHeaderDone
// carry the "file preamble already written" state across evictions, so an
// append reopen continues the file instead of restarting it: the CSV
// encoder's header line and the binary encoder's magic+version header are
// both written exactly once per file lifetime.
type rowEncoder interface {
	Encode(Row) error
	HeaderDone() bool
	SetHeaderDone(bool)
}

// shard is one key's shard file, open or evicted.
type shard struct {
	path string
	// mu serializes writes and eviction on this shard, so encode I/O does
	// not happen under the sink-wide lock. Lock order: shardSink.mu
	// before shard.mu, always.
	mu sync.Mutex
	// created records that the file exists on disk (first open truncates,
	// later reopens append).
	created bool
	// headerDone carries the encoder's header state across evictions.
	headerDone bool
	// f, bw, enc are non-nil only while the shard is open.
	f   *os.File
	bw  *bufio.Writer
	enc rowEncoder
}

// DefaultMaxOpenShards bounds how many shard files a shard sink keeps
// open at once. Shards beyond the bound are flushed, closed (oldest
// first) and transparently reopened in append mode on their next row, so
// a grid may have arbitrarily many keys without exhausting file
// descriptors.
const DefaultMaxOpenShards = 128

// shardSink is the generic one-file-per-key sink core. Emit is safe for
// concurrent use; rows within one key keep their emission order.
type shardSink struct {
	dir     string
	ext     string
	newEnc  func(io.Writer) rowEncoder
	maxOpen int
	mu      sync.Mutex
	shards  map[string]*shard
	open    []*shard // open shards, oldest first
	closed  bool
}

func newShardSink(dir, ext string, newEnc func(io.Writer) rowEncoder) (*shardSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: shard sink: %w", err)
	}
	return &shardSink{
		dir: dir, ext: ext, newEnc: newEnc,
		maxOpen: DefaultMaxOpenShards, shards: map[string]*shard{},
	}, nil
}

// Dir returns the sink's shard directory.
func (s *shardSink) Dir() string { return s.dir }

// ShardPath returns the file a key's rows are written to. Keys map to file
// names by replacing path-hostile characters; when that sanitization loses
// information an FNV suffix keeps distinct keys in distinct files.
func (s *shardSink) ShardPath(key string) string {
	return filepath.Join(s.dir, shardFile(key, s.ext))
}

// shardFile maps a key to its shard file name with the given extension
// (".csv", ".bin").
func shardFile(key, ext string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, key)
	if clean != key {
		h := fnv.New32a()
		io.WriteString(h, key)
		clean = fmt.Sprintf("%s-%08x", clean, h.Sum32())
	}
	return clean + ext
}

// Emit implements Sink. The sink-wide lock covers only the shard lookup
// (and the rare open/evict); the row's encode and buffered write happen
// under the shard's own lock, so jobs streaming to different keys write
// concurrently.
func (s *shardSink) Emit(key string, row Row) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("results: emit %q on closed shard sink", key)
	}
	sh := s.shards[key]
	if sh == nil {
		sh = &shard{path: s.ShardPath(key)}
		s.shards[key] = sh
	}
	if sh.f == nil {
		if err := s.openLocked(sh); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("results: shard for %q: %w", key, err)
		}
	}
	// Taking sh.mu while still holding s.mu guarantees the shard cannot
	// be evicted (eviction needs s.mu) before the write claims it.
	sh.mu.Lock()
	s.mu.Unlock()
	defer sh.mu.Unlock()
	return sh.enc.Encode(row)
}

// openLocked opens (or reopens in append mode) a shard, evicting the
// oldest open shards while the bound is exceeded. Caller holds s.mu.
func (s *shardSink) openLocked(sh *shard) error {
	for len(s.open) >= s.maxOpen {
		if err := s.evictLocked(s.open[0]); err != nil {
			return err
		}
	}
	var f *os.File
	var err error
	if sh.created {
		f, err = os.OpenFile(sh.path, os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		f, err = os.Create(sh.path)
	}
	if err != nil {
		return err
	}
	sh.created = true
	sh.f = f
	sh.bw = bufio.NewWriter(f)
	sh.enc = s.newEnc(sh.bw)
	sh.enc.SetHeaderDone(sh.headerDone)
	s.open = append(s.open, sh)
	return nil
}

// evictLocked flushes and closes one open shard, remembering its encoder
// state for a later append reopen. Caller holds s.mu; the shard's own
// lock is taken to wait out any in-flight write.
//
//repolint:allow lockio -- eviction must close the file under the shard lock, or a racing writer could append to a closed handle; shard files are local buffered writes, bounded by the FD cap
func (s *shardSink) evictLocked(sh *shard) error {
	for i, o := range s.open {
		if o == sh {
			s.open = append(s.open[:i], s.open[i+1:]...)
			break
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.bw.Flush()
	if cerr := sh.f.Close(); err == nil {
		err = cerr
	}
	sh.headerDone = sh.enc.HeaderDone()
	sh.f, sh.bw, sh.enc = nil, nil, nil
	return err
}

// Flush implements Sink: every open shard's buffer is forced to disk.
func (s *shardSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, sh := range s.open {
		sh.mu.Lock()
		if err := sh.bw.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
		sh.mu.Unlock()
	}
	return firstErr
}

// Close implements Sink: flushes and closes every open shard file.
func (s *shardSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var firstErr error
	for len(s.open) > 0 {
		if err := s.evictLocked(s.open[0]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Keys returns every key the sink has seen, sorted.
func (s *shardSink) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.shards))
	for k := range s.shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CSVShardSink writes one CSV shard file per key under a directory.
// Shards are created lazily on the key's first row (truncating any
// previous file of the same name, so re-running a campaign rewrites its
// shards from scratch) and buffered; at most DefaultMaxOpenShards files
// are open at a time, so both memory and file descriptors stay bounded by
// the keys emitting concurrently, not by the grid size or row count. Emit
// is safe for concurrent use; rows within one key keep their emission
// order.
type CSVShardSink struct {
	*shardSink
}

// NewCSVShardSink creates the directory (if needed) and returns the sink.
func NewCSVShardSink(dir string) (*CSVShardSink, error) {
	core, err := newShardSink(dir, ".csv", func(w io.Writer) rowEncoder { return NewCSVEncoder(w) })
	if err != nil {
		return nil, err
	}
	return &CSVShardSink{shardSink: core}, nil
}

// BinShardSink writes one binary row shard (see BinEncoder for the
// format) per key under a directory — the compact sibling of
// CSVShardSink for serving and replay: same key-to-file-name mapping
// (with a ".bin" extension), same FD cap and eviction behavior, same
// concurrency contract. A campaign that tees a CSVShardSink and a
// BinShardSink over the same directory produces byte-deterministic
// sibling shards carrying identical logical rows in both formats.
type BinShardSink struct {
	*shardSink
}

// NewBinShardSink creates the directory (if needed) and returns the sink.
func NewBinShardSink(dir string) (*BinShardSink, error) {
	core, err := newShardSink(dir, ".bin", func(w io.Writer) rowEncoder { return NewBinEncoder(w) })
	if err != nil {
		return nil, err
	}
	return &BinShardSink{shardSink: core}, nil
}
