package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("sweep result bytes \x00\x01\x02")
	if err := s.Put("sweep/states", "hash1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("sweep/states", "hash1")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mismatch: %q", got)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("len = %d, %v", n, err)
	}
}

func TestGetMissesAreNotErrors(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("never", "stored"); ok || err != nil {
		t.Errorf("miss: ok=%v err=%v", ok, err)
	}
}

func TestDistinctIdentitiesDistinctSlots(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job", "hashA", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job", "hashB", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job2", "hashA", []byte("c")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key, hash, want string
	}{
		{"job", "hashA", "a"}, {"job", "hashB", "b"}, {"job2", "hashA", "c"},
	} {
		got, ok, err := s.Get(tc.key, tc.hash)
		if err != nil || !ok || string(got) != tc.want {
			t.Errorf("get(%s,%s) = %q ok=%v err=%v", tc.key, tc.hash, got, ok, err)
		}
	}
}

func TestPutOverwrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "h", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "h", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("k", "h")
	if string(got) != "new" {
		t.Errorf("got %q", got)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("len = %d after overwrite", n)
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "h", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// TestConcurrentSameSlotPutGet pins the read-after-rename guarantee the
// package comment documents: a Get racing overwriting Puts of one slot
// sees either the complete old payload, the complete new one, or (before
// the first Put lands) a clean miss — never a torn prefix or a mix. Run
// under -race in CI, this also proves Put/Get share no unsynchronized
// process state.
func TestConcurrentSameSlotPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Two full-sized distinguishable payloads: a torn read would mix them
	// or truncate one.
	a := bytes.Repeat([]byte{'a'}, 8192)
	b := bytes.Repeat([]byte{'b'}, 8192)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w, payload := range [][]byte{a, b} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				if err := s.Put("slot", "h", payload); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				got, ok, err := s.Get("slot", "h")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if !ok {
					continue // before the first Put lands: a clean miss
				}
				if !bytes.Equal(got, a) && !bytes.Equal(got, b) {
					t.Errorf("torn read: %d bytes starting %q", len(got), got[:min(8, len(got))])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	got, ok, err := s.Get("slot", "h")
	if err != nil || !ok || (!bytes.Equal(got, a) && !bytes.Equal(got, b)) {
		t.Fatalf("final read: ok=%v err=%v len=%d", ok, err, len(got))
	}
}

func TestAddrMatchesEntryFileName(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "h", []byte("x")); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr("k", "h")
	if len(addr) != 64 {
		t.Fatalf("addr length %d", len(addr))
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), addr+".ckpt")); err != nil {
		t.Errorf("entry not at Addr-derived path: %v", err)
	}
	if ok, err := s.Has("k", "h"); err != nil || !ok {
		t.Errorf("has = %v, %v", ok, err)
	}
	if ok, err := s.Has("k", "other"); err != nil || ok {
		t.Errorf("has missing = %v, %v", ok, err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	type cfg struct {
		Procs int
		Seed  int64
	}
	a := Hash("v1", "sweep", cfg{3, 1})
	b := Hash("v1", "sweep", cfg{3, 1})
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == Hash("v1", "sweep", cfg{3, 2}) {
		t.Error("hash ignores config changes")
	}
	if a == Hash("v2", "sweep", cfg{3, 1}) {
		t.Error("hash ignores version salt")
	}
	if a == Hash("v1", "case", cfg{3, 1}) {
		t.Error("hash ignores job kind")
	}
	if len(a) != 64 {
		t.Errorf("hash length %d", len(a))
	}
}
