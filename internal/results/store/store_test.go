package store

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("sweep result bytes \x00\x01\x02")
	if err := s.Put("sweep/states", "hash1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("sweep/states", "hash1")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload mismatch: %q", got)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Errorf("len = %d, %v", n, err)
	}
}

func TestGetMissesAreNotErrors(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("never", "stored"); ok || err != nil {
		t.Errorf("miss: ok=%v err=%v", ok, err)
	}
}

func TestDistinctIdentitiesDistinctSlots(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job", "hashA", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job", "hashB", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job2", "hashA", []byte("c")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key, hash, want string
	}{
		{"job", "hashA", "a"}, {"job", "hashB", "b"}, {"job2", "hashA", "c"},
	} {
		got, ok, err := s.Get(tc.key, tc.hash)
		if err != nil || !ok || string(got) != tc.want {
			t.Errorf("get(%s,%s) = %q ok=%v err=%v", tc.key, tc.hash, got, ok, err)
		}
	}
}

func TestPutOverwrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "h", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "h", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("k", "h")
	if string(got) != "new" {
		t.Errorf("got %q", got)
	}
	if n, _ := s.Len(); n != 1 {
		t.Errorf("len = %d after overwrite", n)
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", "h", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	type cfg struct {
		Procs int
		Seed  int64
	}
	a := Hash("v1", "sweep", cfg{3, 1})
	b := Hash("v1", "sweep", cfg{3, 1})
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == Hash("v1", "sweep", cfg{3, 2}) {
		t.Error("hash ignores config changes")
	}
	if a == Hash("v2", "sweep", cfg{3, 1}) {
		t.Error("hash ignores version salt")
	}
	if a == Hash("v1", "case", cfg{3, 1}) {
		t.Error("hash ignores job kind")
	}
	if len(a) != 64 {
		t.Errorf("hash length %d", len(a))
	}
}
