package lease

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/results/store"
)

// BenchmarkLeaseClaim measures contended claim throughput: four workers
// race every slot, exactly one wins it, runs "the job" (stores a
// payload), releases, and the losers re-probe to the done verdict — the
// full per-job protocol cost of a distributed campaign. ReportAllocs
// guards the protocol's allocation footprint in CI at -benchtime=1x.
func BenchmarkLeaseClaim(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	const workers = 4
	mgrs := make([]*Manager, workers)
	for i := range mgrs {
		m, err := Open(st, fmt.Sprintf("w%d", i), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		mgrs[i] = m
	}
	payload := []byte("payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("job/%d", i)
		var wg sync.WaitGroup
		for _, m := range mgrs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := m.TryClaim(key, "h")
				if err != nil {
					b.Error(err)
					return
				}
				if s != campaign.ClaimRun {
					return
				}
				if err := st.Put(key, "h", payload); err != nil {
					b.Error(err)
					return
				}
				if err := m.Release(key, "h", true); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	// The protocol invariant holds under contention: every slot was
	// executed at least once, and a slot re-claimed after a completed
	// release is impossible because the store answers done.
	audit, err := ReadAudit(st)
	if err != nil {
		b.Fatal(err)
	}
	if len(audit) != b.N {
		b.Fatalf("audit covers %d of %d jobs", len(audit), b.N)
	}
}

// BenchmarkLeaseClaimUncontended is the single-worker floor: one claim,
// store put and release per job, no racing peers.
func BenchmarkLeaseClaimUncontended(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	m, err := Open(st, "solo", Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	payload := []byte("payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("job/%d", i)
		s, err := m.TryClaim(key, "h")
		if err != nil || s != campaign.ClaimRun {
			b.Fatalf("claim = %v, %v", s, err)
		}
		if err := st.Put(key, "h", payload); err != nil {
			b.Fatal(err)
		}
		if err := m.Release(key, "h", true); err != nil {
			b.Fatal(err)
		}
	}
}
