package lease

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/results"
	"repro/internal/results/store"
)

// openStore opens a fresh store in a test temp dir.
func openStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// openMgr opens a manager and registers its Close.
func openMgr(t *testing.T, st *store.Store, owner string, opts Options) *Manager {
	t.Helper()
	m, err := Open(st, owner, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestClaimLifecycle(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	a := openMgr(t, st, "a", Options{})
	b := openMgr(t, st, "b", Options{})

	// A wins the vacant slot; B sees a live holder.
	if s, err := a.TryClaim("job/1", "h"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("a claim = %v, %v", s, err)
	}
	if s, err := b.TryClaim("job/1", "h"); err != nil || s != campaign.ClaimBusy {
		t.Fatalf("b claim while held = %v, %v", s, err)
	}

	// A fails the job: the slot reopens and B wins it.
	if err := a.Release("job/1", "h", false); err != nil {
		t.Fatal(err)
	}
	if s, err := b.TryClaim("job/1", "h"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("b claim after failed release = %v, %v", s, err)
	}

	// B completes: payload stored, lease released — everyone sees done.
	if err := st.Put("job/1", "h", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := b.Release("job/1", "h", true); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Manager{a, b} {
		if s, err := m.TryClaim("job/1", "h"); err != nil || s != campaign.ClaimDone {
			t.Fatalf("%s claim after completion = %v, %v", m.Owner(), s, err)
		}
	}
	if got := b.Executed(); !reflect.DeepEqual(got, []string{"job/1"}) {
		t.Errorf("b executed %v", got)
	}
	if got := a.Executed(); len(got) != 0 {
		t.Errorf("a executed %v", got)
	}
}

func TestClaimDoneWhenStoreAlreadyHolds(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	if err := st.Put("job/prev", "h", []byte("old run")); err != nil {
		t.Fatal(err)
	}
	m := openMgr(t, st, "w", Options{})
	if s, err := m.TryClaim("job/prev", "h"); err != nil || s != campaign.ClaimDone {
		t.Fatalf("claim = %v, %v", s, err)
	}
	// No lease file was left behind.
	if _, err := os.Stat(m.leasePath(st.Addr("job/prev", "h"))); !os.IsNotExist(err) {
		t.Errorf("lease file exists after done verdict: %v", err)
	}
}

func TestHeartbeatKeepsLeaseFreshUntilCrash(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	opts := Options{TTL: 400 * time.Millisecond, Heartbeat: 50 * time.Millisecond}
	a := openMgr(t, st, "a", opts)
	b := openMgr(t, st, "b", opts)

	if s, err := a.TryClaim("job/hb", "h"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("a claim = %v, %v", s, err)
	}
	// Well past TTL: the heartbeat must have kept the lease un-stealable.
	time.Sleep(2 * opts.TTL)
	if s, err := b.TryClaim("job/hb", "h"); err != nil || s != campaign.ClaimBusy {
		t.Fatalf("b claim against heartbeating holder = %v, %v", s, err)
	}

	// A "crashes": heartbeat stops, lease goes stale, B steals.
	a.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := b.TryClaim("job/hb", "h")
		if err != nil {
			t.Fatal(err)
		}
		if s == campaign.ClaimRun {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("b never stole the stale lease (last state %v)", s)
		}
		time.Sleep(20 * time.Millisecond)
	}
	rec, err := readLease(b.leasePath(st.Addr("job/hb", "h")))
	if err != nil || rec.Owner != "b" {
		t.Fatalf("stolen lease record = %+v, %v", rec, err)
	}
}

func TestStolenLeaseCountsAsLostNotReleased(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	opts := Options{TTL: 150 * time.Millisecond, Heartbeat: 25 * time.Millisecond}
	a := openMgr(t, st, "a", opts)
	b := openMgr(t, st, "b", opts)
	if s, err := a.TryClaim("job/s", "h"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("a claim = %v, %v", s, err)
	}
	a.Close() // renewal stops; the lease goes stale and B steals it
	time.Sleep(2 * opts.TTL)
	if s, err := b.TryClaim("job/s", "h"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("b steal = %v, %v", s, err)
	}
	// A finishes anyway and releases: it must not remove B's lease.
	if err := a.Release("job/s", "h", false); err != nil {
		t.Fatal(err)
	}
	if a.Lost() != 1 {
		t.Errorf("a lost = %d, want 1", a.Lost())
	}
	if rec, err := readLease(b.leasePath(st.Addr("job/s", "h"))); err != nil || rec.Owner != "b" {
		t.Errorf("b's lease after a's release: %+v, %v", rec, err)
	}
}

func TestAuditRecordsExactlyOnceExecutions(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	a := openMgr(t, st, "a", Options{})
	b := openMgr(t, st, "b", Options{})
	complete := func(m *Manager, key string) {
		t.Helper()
		if s, err := m.TryClaim(key, "h"); err != nil || s != campaign.ClaimRun {
			t.Fatalf("%s claim %s = %v, %v", m.Owner(), key, s, err)
		}
		if err := st.Put(key, "h", []byte(key)); err != nil {
			t.Fatal(err)
		}
		if err := m.Release(key, "h", true); err != nil {
			t.Fatal(err)
		}
	}
	complete(a, "job/1")
	complete(b, "job/2")
	complete(a, "job/3")

	audit, err := ReadAudit(st)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{"job/1": {"a"}, "job/2": {"b"}, "job/3": {"a"}}
	if !reflect.DeepEqual(audit, want) {
		t.Errorf("audit = %v, want %v", audit, want)
	}
}

func TestMalformedLeaseIsStolenAsWreckage(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	m := openMgr(t, st, "w", Options{})
	path := m.leasePath(st.Addr("job/wreck", "h"))
	// Wreckage the complete-write discipline never produces: a torn or
	// foreign file squatting on the slot must not wedge the job forever.
	if err := os.WriteFile(path, []byte("not a lease"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err := m.TryClaim("job/wreck", "h"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("claim over wreckage = %v, %v", s, err)
	}
	rec, err := readLease(path)
	if err != nil || rec.Owner != "w" {
		t.Fatalf("lease after wreckage steal = %+v, %v", rec, err)
	}
}

func TestOpenRejectsBadOwners(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	for _, owner := range []string{"", "a/b", "a\\b", ".hidden", "a\tb", "a\nb"} {
		if _, err := Open(st, owner, Options{}); err == nil {
			t.Errorf("Open accepted owner %q", owner)
		}
	}
	if _, err := Open(nil, "ok", Options{}); err == nil {
		t.Error("Open accepted nil store")
	}
	if _, err := Open(st, "ok", Options{TTL: -1}); err == nil {
		t.Error("Open accepted negative TTL")
	}
	// A heartbeat unable to outpace expiry would make every live lease
	// stealable: rejected, as is a TTL so small the derived heartbeat
	// vanishes.
	if _, err := Open(st, "ok", Options{TTL: time.Second, Heartbeat: time.Minute}); err == nil {
		t.Error("Open accepted Heartbeat >= TTL")
	}
	if _, err := Open(st, "ok", Options{TTL: 3 * time.Nanosecond}); err == nil {
		t.Error("Open accepted a TTL too small to heartbeat under")
	}
}

func TestConcurrentClaimantsSingleWinner(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	const workers = 8
	mgrs := make([]*Manager, workers)
	for i := range mgrs {
		mgrs[i] = openMgr(t, st, fmt.Sprintf("w%d", i), Options{})
	}
	for round := 0; round < 20; round++ {
		key := fmt.Sprintf("job/%d", round)
		var wg sync.WaitGroup
		wins := make([]int, workers)
		for i, m := range mgrs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := m.TryClaim(key, "h")
				if err != nil {
					t.Error(err)
					return
				}
				if s == campaign.ClaimRun {
					wins[i] = 1
				}
			}()
		}
		wg.Wait()
		total := 0
		for _, w := range wins {
			total += w
		}
		if total != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, total)
		}
	}
}

// claimJob is a minimal checkpointable campaign job for protocol tests:
// it returns (and stores) a deterministic string and emits one row.
func claimJob(key string) campaign.Job {
	return campaign.Job{
		Key:  key,
		Hash: "h-" + key,
		Encode: func(v any) ([]byte, error) {
			return json.Marshal(v.(string))
		},
		Decode: func(ctx context.Context, data []byte) (any, error) {
			var s string
			if err := json.Unmarshal(data, &s); err != nil {
				return nil, err
			}
			return s, campaign.Emit(ctx, key, results.Row{results.F("value", s)})
		},
		Run: func(ctx context.Context, _ map[string]any) (any, error) {
			v := "value-of-" + key
			return v, campaign.Emit(ctx, key, results.Row{results.F("value", v)})
		},
	}
}

// TestDistributedCampaignPartition is the protocol end to end: three
// concurrent campaign processes (simulated as goroutines with their own
// managers and sinks) share one store, execute every job exactly once in
// total, and each still observes the complete result and row set.
func TestDistributedCampaignPartition(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	const jobs, procs = 24, 3
	keys := make([]string, jobs)
	for i := range keys {
		keys[i] = fmt.Sprintf("grid/%02d", i)
	}

	var wg sync.WaitGroup
	sinks := make([]*results.MemorySink, procs)
	errs := make([]error, procs)
	values := make([][]campaign.Result, procs)
	for p := 0; p < procs; p++ {
		m := openMgr(t, st, fmt.Sprintf("w%d", p), Options{})
		sinks[p] = results.NewMemorySink()
		js := make([]campaign.Job, jobs)
		for i, k := range keys {
			js[i] = claimJob(k)
		}
		cfg := campaign.Config{
			Workers: 2, Store: st, Claimer: m, Sink: sinks[p],
			ClaimBackoff: time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			values[p], errs[p] = campaign.Run(context.Background(), cfg, js)
		}()
	}
	wg.Wait()

	for p := 0; p < procs; p++ {
		if errs[p] != nil {
			t.Fatalf("process %d: %v", p, errs[p])
		}
		if len(values[p]) != jobs {
			t.Fatalf("process %d: %d results", p, len(values[p]))
		}
		for i, r := range values[p] {
			if want := "value-of-" + keys[i]; r.Value != want {
				t.Errorf("process %d result %s = %v, want %v", p, r.Key, r.Value, want)
			}
		}
		// Byte-consistent sinks: every process replayed what it did not run.
		for _, k := range keys {
			rows := sinks[p].Rows(k)
			if len(rows) != 1 || rows[0][0].Value != "value-of-"+k {
				t.Errorf("process %d rows for %s = %v", p, k, rows)
			}
		}
	}

	// The audit proves the partition: every key executed exactly once,
	// across all owners together.
	audit, err := ReadAudit(st)
	if err != nil {
		t.Fatal(err)
	}
	var audited []string
	for k, owners := range audit {
		if len(owners) != 1 {
			t.Errorf("key %s executed %d times by %v", k, len(owners), owners)
		}
		audited = append(audited, k)
	}
	sort.Strings(audited)
	if !reflect.DeepEqual(audited, keys) {
		t.Errorf("audited keys %v, want %v", audited, keys)
	}
}

// TestCampaignStealsFromCrashedProcess kills a simulated worker mid-grid:
// its manager claimed a job and stopped heartbeating without releasing.
// A second worker must steal the stale lease and finish the whole grid.
func TestCampaignStealsFromCrashedProcess(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	opts := Options{TTL: 150 * time.Millisecond, Heartbeat: 25 * time.Millisecond}

	crashed, err := Open(st, "crashed", opts)
	if err != nil {
		t.Fatal(err)
	}
	if s, err := crashed.TryClaim("grid/00", "h-grid/00"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("crashed claim = %v, %v", s, err)
	}
	crashed.Close() // heartbeat stops; the lease will go stale

	survivor := openMgr(t, st, "survivor", opts)
	sink := results.NewMemorySink()
	keys := []string{"grid/00", "grid/01", "grid/02"}
	js := make([]campaign.Job, len(keys))
	for i, k := range keys {
		js[i] = claimJob(k)
	}
	cfg := campaign.Config{
		Workers: 2, Store: st, Claimer: survivor, Sink: sink,
		ClaimBackoff: 10 * time.Millisecond,
	}
	res, err := campaign.Run(context.Background(), cfg, js)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if want := "value-of-" + keys[i]; r.Value != want {
			t.Errorf("result %s = %v", r.Key, r.Value)
		}
	}
	audit, err := ReadAudit(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if owners := audit[k]; !reflect.DeepEqual(owners, []string{"survivor"}) {
			t.Errorf("key %s executed by %v, want survivor only", k, owners)
		}
	}
}

func TestReadAuditEmptyWithoutLeaseDir(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	audit, err := ReadAudit(st)
	if err != nil || len(audit) != 0 {
		t.Fatalf("audit = %v, %v", audit, err)
	}
}

func TestLeaseFilesLiveUnderStoreDir(t *testing.T) {
	t.Parallel()
	st := openStore(t)
	m := openMgr(t, st, "w", Options{})
	if s, err := m.TryClaim("job/x", "h"); err != nil || s != campaign.ClaimRun {
		t.Fatalf("claim = %v, %v", s, err)
	}
	// The lease lives in <store>/leases and does not disturb the store's
	// entry count.
	if _, err := os.Stat(filepath.Join(st.Dir(), dirName)); err != nil {
		t.Fatal(err)
	}
	if n, err := st.Len(); err != nil || n != 0 {
		t.Errorf("store len with held lease = %d, %v", n, err)
	}
	// No stray temp files remain from claims.
	entries, err := os.ReadDir(filepath.Join(st.Dir(), dirName))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".claim-") || strings.HasPrefix(e.Name(), ".reap-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
