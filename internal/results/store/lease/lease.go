// Package lease is the coordinator-free claim protocol that lets several
// independent campaign processes — typically on different hosts sharing
// one checkpoint store directory over a network filesystem — partition one
// job grid with zero duplicated executions and no central scheduler.
//
// The protocol piggybacks on the store's atomicity discipline. Each job
// (identified by the store's (key, hash) pair) maps to one lease file
// under <store dir>/leases/, named by the same content address as the
// job's checkpoint entry. A worker claims a job by creating that file
// exclusively: the lease record (owner id, key, hash, heartbeat
// timestamp) is written to a temp file first and then link(2)ed to the
// canonical name, which fails with EEXIST when any other live worker
// holds the lease — the same create-exclusively-or-lose atomicity as
// O_CREATE|O_EXCL, but the file is never visible half-written. Renewals
// and steals go through temp + rename, the store's own write discipline.
//
// Lease lifecycle:
//
//	claim    exclusive link of a fresh record; at most one winner per slot
//	run      the winner executes the job and saves its checkpoint
//	beat     a background goroutine rewrites held leases every Heartbeat
//	release  audit line appended, lease file removed; the stored payload
//	         now answers every later claim with "done"
//	steal    a lease whose heartbeat is older than TTL belongs to a dead
//	         worker: any claimant renames it aside (exactly one such
//	         rename succeeds) and races the vacant slot afresh
//
// A claim always checks the store first (and once more just after
// winning, closing the race with a holder that completed between the two
// steps), so a job is executed at most once per lease tenure and exactly
// once overall when no worker dies mid-run. Completed executions append
// the job key to a per-owner audit log (leases/audit-<owner>.log), which
// is how tests and CI prove the no-duplicates property.
//
// NFS caveats: the exclusive-link claim and rename-based steal are atomic
// on NFSv3+; heartbeat staleness compares the timestamp inside the lease
// against the local clock, so hosts must be NTP-synchronized and TTL must
// be chosen far above both the worst clock skew and the attribute-cache
// delay with which one host sees another's writes (the defaults — 30s
// TTL, 7.5s heartbeat — absorb typical setups). If a live worker stalls
// past TTL (GC pause, NFS outage), its job can be stolen and executed
// twice; both executions store byte-identical payloads, so the output is
// still correct — only the audit shows the duplicate.
package lease

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/results/store"
)

// DefaultTTL is the heartbeat age beyond which a lease counts as stale
// and may be stolen.
const DefaultTTL = 30 * time.Second

// dirName is the lease subdirectory under the store directory.
const dirName = "leases"

// claimAttempts bounds one TryClaim's create/steal retries; losing every
// race simply reports busy and the campaign re-tries after its backoff.
const claimAttempts = 4

// Options tunes a lease manager.
type Options struct {
	// TTL is the heartbeat age beyond which other workers may steal the
	// lease. Zero means DefaultTTL. Choose it far above the expected clock
	// skew and filesystem attribute-cache delay between hosts.
	TTL time.Duration
	// Heartbeat is the renewal interval for held leases. Zero means TTL/4.
	Heartbeat time.Duration
}

// Manager claims, renews and releases job leases for one worker process.
// It implements campaign.Claimer; give it to campaign.Config.Claimer
// alongside the same store. Safe for concurrent use by campaign workers.
type Manager struct {
	st    *store.Store
	dir   string
	owner string
	opts  Options

	seq  atomic.Uint64 // uniquifies reap file names
	stop chan struct{}
	done chan struct{}

	trk *obs.Track // this owner's trace lane; nil when unobserved
	met leaseMetrics

	mu        sync.Mutex
	held      map[string]heldLease   // addr -> claim, for heartbeat renewal
	addrLocks map[string]*sync.Mutex // addr -> lease-file I/O serialization
	executed  []string               // job keys completed under our leases
	lost      int                    // leases observed stolen or vanished
	closed    bool
}

// leaseMetrics caches the registry instruments for the claim protocol.
// All-nil (observability disabled at Open) makes every update a no-op.
type leaseMetrics struct {
	claims, busy, run, done *obs.Counter
	steals, beats, lost     *obs.Counter
	releases                *obs.Counter
	holdUS                  *obs.Histogram
}

// heldLease is one claim awaiting release.
type heldLease struct {
	key, hash string
	since     time.Time // claim grant time, for audit elapsed
	traceNS   int64     // tracer clock at grant; meaningful only when trk != nil
}

// record is a parsed lease file.
type record struct {
	Owner     string
	Key, Hash string
	Beat      time.Time
}

// Open attaches a lease manager for the given worker identity to a
// store's lease directory (created if needed) and starts the heartbeat
// goroutine. Call Close when the campaign ends; a process that dies
// without Close simply stops heartbeating and its leases go stale.
func Open(st *store.Store, owner string, opts Options) (*Manager, error) {
	if st == nil {
		return nil, fmt.Errorf("lease: nil store")
	}
	if err := validOwner(owner); err != nil {
		return nil, err
	}
	if opts.TTL < 0 || opts.Heartbeat < 0 {
		return nil, fmt.Errorf("lease: negative TTL or Heartbeat")
	}
	if opts.TTL == 0 {
		opts.TTL = DefaultTTL
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = opts.TTL / 4
	}
	// A heartbeat that cannot outpace expiry breaks the protocol's
	// exactly-once property quietly: every live lease would go stale
	// between renewals and get stolen. Reject the configuration instead.
	if opts.Heartbeat <= 0 || opts.Heartbeat >= opts.TTL {
		return nil, fmt.Errorf("lease: Heartbeat (%v) must be positive and below TTL (%v)", opts.Heartbeat, opts.TTL)
	}
	dir := filepath.Join(st.Dir(), dirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: %w", err)
	}
	m := &Manager{
		st: st, dir: dir, owner: owner, opts: opts,
		stop: make(chan struct{}), done: make(chan struct{}),
		held: make(map[string]heldLease), addrLocks: make(map[string]*sync.Mutex),
	}
	if o := obs.Active(); o != nil {
		m.trk = o.Tracer().Track("lease", owner)
		reg := o.Metrics()
		m.met = leaseMetrics{
			claims:   reg.Counter("lease_claims_total"),
			busy:     reg.Counter("lease_claim_busy_total"),
			run:      reg.Counter("lease_claim_run_total"),
			done:     reg.Counter("lease_claim_done_total"),
			steals:   reg.Counter("lease_steals_total"),
			beats:    reg.Counter("lease_heartbeats_total"),
			lost:     reg.Counter("lease_lost_total"),
			releases: reg.Counter("lease_releases_total"),
			holdUS:   reg.Histogram("lease_hold_us", obs.LatencyBucketsUS),
		}
	}
	go m.heartbeat()
	return m, nil
}

// validOwner rejects identities that would not survive as a file-name
// component of lease and audit files.
func validOwner(owner string) error {
	if owner == "" {
		return fmt.Errorf("lease: empty owner id")
	}
	if strings.ContainsAny(owner, "/\\\x00\n\t") || strings.HasPrefix(owner, ".") {
		return fmt.Errorf("lease: owner id %q must be a plain file-name component", owner)
	}
	return nil
}

// Owner returns the manager's worker identity.
func (m *Manager) Owner() string { return m.owner }

// Executed returns the job keys completed under this manager's leases, in
// completion order — this process's share of the campaign partition.
func (m *Manager) Executed() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.executed...)
}

// Lost counts held leases observed stolen or vanished at renewal time —
// nonzero only when this process stalled past TTL and another worker
// reclaimed its jobs.
func (m *Manager) Lost() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost
}

// Close stops the heartbeat goroutine. Held leases are left on disk: a
// clean shutdown releases them through the campaign first, and an unclean
// one wants them to go stale so other workers steal the jobs.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
	return nil
}

// leasePath maps a content address to its lease file.
func (m *Manager) leasePath(addr string) string {
	return filepath.Join(m.dir, addr+".lease")
}

// TryClaim arbitrates one job. It reports ClaimDone when the store
// already holds the job's payload, ClaimRun when this worker won the
// lease (run the job, then Release), and ClaimBusy when another live
// worker holds it. Stale leases — heartbeat older than TTL — are stolen
// en passant: renamed aside (one winner) and the vacant slot re-raced.
func (m *Manager) TryClaim(key, hash string) (campaign.ClaimState, error) {
	state, err := m.tryClaim(key, hash)
	m.met.claims.Inc()
	switch state {
	case campaign.ClaimBusy:
		m.met.busy.Inc()
		m.trk.Instant("claim", key, obs.Arg{Name: "state", Value: "busy"})
	case campaign.ClaimDone:
		m.met.done.Inc()
		m.trk.Instant("claim", key, obs.Arg{Name: "state", Value: "done"})
	case campaign.ClaimRun:
		m.met.run.Inc() // the hold span on this owner's track covers run→release
	}
	return state, err
}

// tryClaim is TryClaim's protocol body, free of observability concerns.
//
//repolint:allow wallclock -- lease staleness and grant times are wall-clock by protocol design (heartbeat age vs TTL); they arbitrate who runs, never what the run produces
func (m *Manager) tryClaim(key, hash string) (campaign.ClaimState, error) {
	addr := m.st.Addr(key, hash)
	path := m.leasePath(addr)
	for attempt := 0; attempt < claimAttempts; attempt++ {
		if ok, err := m.st.Has(key, hash); err != nil {
			return campaign.ClaimBusy, err
		} else if ok {
			return campaign.ClaimDone, nil
		}
		// Probe the slot by reading first: the common held-elsewhere case
		// costs one read, and the temp-file/link cycle is paid only for
		// slots that look vacant or stealable. The exclusive link below is
		// still the only thing that grants ownership.
		rec, rerr := readLease(path)
		switch {
		case rerr == nil && time.Since(rec.Beat) <= m.opts.TTL:
			return campaign.ClaimBusy, nil // live holder
		case rerr == nil, errors.Is(rerr, errMalformed):
			// Stale, or wreckage no complete write discipline produces:
			// steal. Renaming aside succeeds for exactly one claimant; the
			// rename grants nothing by itself, the winner just races the
			// vacant slot's exclusive create like everyone else. A rename
			// losing to another reaper (ErrNotExist) joins that race too.
			reap := filepath.Join(m.dir, fmt.Sprintf(".reap-%s-%d", m.owner, m.seq.Add(1)))
			switch err := os.Rename(path, reap); {
			case err == nil:
				m.met.steals.Inc()
				m.trk.Instant("steal", key, obs.Arg{Name: "from", Value: rec.Owner})
			case !errors.Is(err, fs.ErrNotExist):
				return campaign.ClaimBusy, fmt.Errorf("lease: steal %q: %w", key, err)
			}
			os.Remove(reap)
		case errors.Is(rerr, fs.ErrNotExist):
			// Vacant: fall through to the create race.
		default:
			// A transient read error (ESTALE/EIO on NFS, typically racing a
			// holder's heartbeat rename) proves nothing about the holder:
			// never steal on it, just report busy and let the campaign's
			// backoff re-probe.
			return campaign.ClaimBusy, nil
		}
		created, err := m.tryCreate(path, key, hash)
		if err != nil {
			return campaign.ClaimBusy, err
		}
		if !created {
			continue // lost the create race; re-probe the new lease
		}
		// Close the completion race: the previous holder may have saved
		// the payload and released between our store probe and the link.
		ok, err := m.st.Has(key, hash)
		if err != nil || ok {
			os.Remove(path)
			if err != nil {
				return campaign.ClaimBusy, err
			}
			return campaign.ClaimDone, nil
		}
		m.mu.Lock()
		m.held[addr] = heldLease{key: key, hash: hash, since: time.Now(), traceNS: m.trk.Now()}
		m.mu.Unlock()
		return campaign.ClaimRun, nil
	}
	return campaign.ClaimBusy, nil
}

// tryCreate attempts the exclusive claim: the record is written to a temp
// file and link(2)ed to the canonical lease name, so the lease appears
// atomically and fully written, or not at all. created=false means a
// lease already exists.
//
//repolint:allow wallclock -- the lease record carries a wall-clock heartbeat timestamp by protocol design
func (m *Manager) tryCreate(path, key, hash string) (created bool, err error) {
	tmp, err := os.CreateTemp(m.dir, ".claim-*")
	if err != nil {
		return false, fmt.Errorf("lease: claim %q: %w", key, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	_, werr := tmp.WriteString(formatLease(record{Owner: m.owner, Key: key, Hash: hash, Beat: time.Now()}))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return false, fmt.Errorf("lease: claim %q: %w", key, werr)
	}
	switch err := os.Link(tmpName, path); {
	case err == nil:
		return true, nil
	case errors.Is(err, fs.ErrExist):
		return false, nil
	default:
		return false, fmt.Errorf("lease: claim %q: %w", key, err)
	}
}

// Release gives a claim back. completed=true records the execution in the
// owner's audit log first — the audit never misses a finished run — and
// then removes the lease file, at which point the stored payload answers
// every later TryClaim with done. completed=false just removes the lease
// so another worker can retry the failed job. A lease that was stolen in
// the meantime (this process stalled past TTL) is left alone and counted
// in Lost.
//
//repolint:allow wallclock -- audit hold times and end timestamps are wall-clock measurement by design; they feed the throughput report, never rendered results
//repolint:allow lockio -- lease-file I/O runs under the per-address lock precisely so it can be slow (NFS) without starving the manager lock that heartbeat renewal needs
func (m *Manager) Release(key, hash string, completed bool) error {
	addr := m.st.Addr(key, hash)
	// Per-address lock, not the manager lock: lease-file I/O can be slow
	// (NFS round trips) and must never delay heartbeat renewal of the
	// other held leases — a starved heartbeat would let live leases go
	// stale and be stolen. The address lock still serializes against
	// renewal of this lease, so a released lease is never resurrected by
	// a racing heartbeat rewrite.
	al := m.addrLock(addr)
	al.Lock()
	defer al.Unlock()
	m.mu.Lock()
	h, washeld := m.held[addr]
	delete(m.held, addr)
	m.mu.Unlock()
	m.met.releases.Inc()
	var elapsed time.Duration
	if washeld {
		elapsed = time.Since(h.since)
		m.met.holdUS.Observe(float64(elapsed) / 1e3)
		if m.trk != nil {
			m.trk.Span("hold", key, h.traceNS, m.trk.Now()-h.traceNS,
				obs.Arg{Name: "completed", Value: completed})
		}
	}
	if completed {
		if err := m.appendAudit(key, elapsed, time.Now()); err != nil {
			return err
		}
		m.mu.Lock()
		m.executed = append(m.executed, key)
		m.mu.Unlock()
	}
	path := m.leasePath(addr)
	rec, err := readLease(path)
	if errors.Is(err, fs.ErrNotExist) {
		m.countLost(washeld)
		return nil
	}
	if err != nil {
		return fmt.Errorf("lease: release %q: %w", key, err)
	}
	if rec.Owner != m.owner {
		m.countLost(washeld) // stolen while we ran; the thief owns the slot
		return nil
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("lease: release %q: %w", key, err)
	}
	return nil
}

// addrLock returns the mutex serializing file I/O on one lease slot. One
// mutex per claimed job lives for the manager's lifetime — trivial memory
// next to the job's checkpoint payload.
func (m *Manager) addrLock(addr string) *sync.Mutex {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.addrLocks[addr]
	if !ok {
		l = &sync.Mutex{}
		m.addrLocks[addr] = l
	}
	return l
}

// countLost bumps the lost counter when the caller actually held the
// claim it just found gone.
func (m *Manager) countLost(washeld bool) {
	if !washeld {
		return
	}
	m.met.lost.Inc()
	m.mu.Lock()
	m.lost++
	m.mu.Unlock()
}

// heartbeat renews every held lease each Heartbeat interval until Close.
func (m *Manager) heartbeat() {
	defer close(m.done)
	t := time.NewTicker(m.opts.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.renew()
		}
	}
}

// renew rewrites each held lease with a fresh heartbeat timestamp via
// temp + rename. The held set is snapshotted under the manager lock but
// the file I/O runs outside it, under the per-address lock shared with
// Release: renewal never delays claims or state reads, and a racing
// Release cannot be interleaved into a read-rewrite (which would
// resurrect a released lease) — membership is re-checked under the
// address lock before rewriting. A lease whose file no longer carries our
// owner id was stolen (we stalled past TTL): it is dropped from the held
// set and counted, never overwritten — the thief is running the job now.
func (m *Manager) renew() {
	m.mu.Lock()
	held := make([]string, 0, len(m.held))
	for addr := range m.held {
		held = append(held, addr)
	}
	m.mu.Unlock()
	for _, addr := range held {
		m.renewOne(addr)
	}
}

// renewOne refreshes a single held lease under its address lock.
//
//repolint:allow wallclock -- heartbeat renewal stamps the lease with the current wall clock; that is the protocol's liveness signal
//repolint:allow lockio -- the rewrite runs under the per-address lock so a racing Release cannot resurrect a released lease; the manager lock is never held here
func (m *Manager) renewOne(addr string) {
	al := m.addrLock(addr)
	al.Lock()
	defer al.Unlock()
	m.mu.Lock()
	_, stillHeld := m.held[addr]
	m.mu.Unlock()
	if !stillHeld {
		return // released since the snapshot
	}
	path := m.leasePath(addr)
	rec, err := readLease(path)
	switch {
	case err == nil && rec.Owner == m.owner:
		// Still ours: refresh below.
	case err == nil, errors.Is(err, fs.ErrNotExist), errors.Is(err, errMalformed):
		// Proof of theft: another owner's record, a reaped (vanished)
		// slot, or wreckage where our complete write should be. Drop the
		// lease — the thief is running the job now — and count it.
		m.mu.Lock()
		if _, ok := m.held[addr]; ok {
			delete(m.held, addr)
			m.lost++
			m.met.lost.Inc()
		}
		m.mu.Unlock()
		return
	default:
		// Transient read error (ESTALE/EIO): proves nothing — keep the
		// lease held and let the next tick retry the renewal.
		return
	}
	rec.Beat = time.Now()
	tmp, err := os.CreateTemp(m.dir, ".beat-*")
	if err != nil {
		return // disk hiccup: the next tick retries
	}
	tmpName := tmp.Name()
	_, werr := tmp.WriteString(formatLease(rec))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil || os.Rename(tmpName, path) != nil {
		os.Remove(tmpName)
		return
	}
	m.met.beats.Inc()
}

// appendAudit records one completed execution in this owner's audit log
// as "key<TAB>elapsed_us<TAB>end_unix_ns". The key is always the first
// tab-separated field, so field-unaware consumers (`cut -f1`, older
// parsers) keep working; the trailing fields feed the per-owner
// throughput report. O_APPEND writes of one short line are atomic, so
// concurrent releases need no extra lock here.
func (m *Manager) appendAudit(key string, elapsed time.Duration, end time.Time) error {
	f, err := os.OpenFile(filepath.Join(m.dir, "audit-"+m.owner+".log"),
		os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("lease: audit: %w", err)
	}
	line := fmt.Sprintf("%s\t%.3f\t%d\n", key, float64(elapsed)/1e3, end.UnixNano())
	_, werr := f.WriteString(line)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("lease: audit: %w", werr)
	}
	return nil
}

// formatLease renders a lease record; one "name\tvalue" line per field.
func formatLease(r record) string {
	return fmt.Sprintf("owner\t%s\nkey\t%s\nhash\t%s\nbeat\t%d\n",
		r.Owner, r.Key, r.Hash, r.Beat.UnixNano())
}

// errMalformed marks a lease file that read fine but does not parse —
// wreckage the complete-write discipline never produces, safe to treat
// as stale. Transient I/O errors deliberately do NOT carry this mark:
// callers must never steal or abandon a lease on evidence that weak.
var errMalformed = errors.New("lease: malformed lease file")

// readLease parses a lease file. fs.ErrNotExist passes through so callers
// can distinguish a vacant slot, and parse failures wrap errMalformed so
// wreckage is distinguishable from a transient read error.
func readLease(path string) (record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return record{}, err
	}
	var r record
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		name, value, ok := strings.Cut(line, "\t")
		if !ok {
			return record{}, fmt.Errorf("%w: line %q in %s", errMalformed, line, filepath.Base(path))
		}
		switch name {
		case "owner":
			r.Owner = value
		case "key":
			r.Key = value
		case "hash":
			r.Hash = value
		case "beat":
			ns, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return record{}, fmt.Errorf("%w: bad beat in %s: %v", errMalformed, filepath.Base(path), err)
			}
			r.Beat = time.Unix(0, ns)
		}
	}
	if r.Owner == "" {
		return record{}, fmt.Errorf("%w: no owner in %s", errMalformed, filepath.Base(path))
	}
	return r, nil
}

// AuditEntry is one completed execution recovered from an owner's audit
// log. ElapsedUS and EndUnixNS are zero for lines written before the
// audit recorded timings.
type AuditEntry struct {
	Owner     string
	Key       string
	ElapsedUS float64
	EndUnixNS int64
}

// ReadAuditEntries collects every owner's audit log under the store's
// lease directory into typed entries, owners in sorted order and lines
// in file order within each owner. Lines are parsed tolerantly: the
// first tab-separated field is the job key, the optional trailing
// fields are the execution's elapsed microseconds and end timestamp.
func ReadAuditEntries(st *store.Store) ([]AuditEntry, error) {
	dir := filepath.Join(st.Dir(), dirName)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("lease: audit: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "audit-") && strings.HasSuffix(n, ".log") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []AuditEntry
	for _, n := range names {
		owner := strings.TrimSuffix(strings.TrimPrefix(n, "audit-"), ".log")
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, fmt.Errorf("lease: audit: %w", err)
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			if line == "" {
				continue
			}
			fields := strings.Split(line, "\t")
			ae := AuditEntry{Owner: owner, Key: fields[0]}
			if len(fields) > 1 {
				ae.ElapsedUS, _ = strconv.ParseFloat(fields[1], 64)
			}
			if len(fields) > 2 {
				ae.EndUnixNS, _ = strconv.ParseInt(fields[2], 10, 64)
			}
			out = append(out, ae)
		}
	}
	return out, nil
}

// ReadAudit collects every owner's audit log under the store's lease
// directory into a map from job key to the owners that completed it, each
// owner appearing once per completed execution. A campaign with no
// duplicated executions has exactly one owner entry per key; tests and
// the CI distributed job assert exactly that.
func ReadAudit(st *store.Store) (map[string][]string, error) {
	entries, err := ReadAuditEntries(st)
	if err != nil {
		return nil, err
	}
	out := map[string][]string{}
	for _, e := range entries {
		out[e.Key] = append(out[e.Key], e.Owner)
	}
	return out, nil
}
