// Package store is the campaign checkpoint store: a content-addressed,
// filesystem-backed map from (job key, config hash) to a finished job's
// encoded payload. The campaign engine consults it before scheduling a
// checkpointable job and saves the payload after a successful run, so an
// interrupted campaign resumed against the same store re-runs zero
// completed jobs and reproduces its output byte for byte.
//
// Addressing is content-addressed over the identity pair: the file name is
// the SHA-256 digest of (key, hash), so a job whose configuration changes
// gets a fresh slot while stale entries from earlier configurations are
// simply never consulted again. Writes go through a temp file plus rename,
// so a crash mid-Put never leaves a torn entry behind.
//
// # Concurrent Put and Get ordering
//
// The store's only mutation is rename(2), which replaces a directory entry
// atomically, so the read-after-rename guarantee is: a Get concurrent with
// a Put of the same slot observes either the complete previous state — the
// old payload, or absence if the slot was empty — or the complete new
// payload, never a torn prefix or a mix. Once Put has returned, every Get
// that happens after it (in the usual happens-before sense: same process
// synchronization, or cross-process ordering such as the lease protocol's
// claim handoff) observes the new payload on a POSIX filesystem. Multiple
// concurrent Puts to one slot are each atomic and last-writer-wins; the
// campaign layer only ever writes deterministic, byte-identical payloads
// for one (key, hash), so the race is benign there. Over NFS, client
// attribute caching can delay another host's view of a fresh entry — see
// the lease package for the knobs that absorb that delay.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
)

// Store is a filesystem-backed checkpoint store. The zero value is not
// usable; call Open. A Store may be shared by concurrent campaign workers:
// Get reads are plain file reads and Put writes are atomic renames.
type Store struct {
	dir string
	met storeMetrics
}

// storeMetrics caches the registry instruments for the store's I/O.
// All-nil (observability disabled at Open) makes every update a no-op.
type storeMetrics struct {
	gets, getMisses, puts *obs.Counter
	getBytes, putBytes    *obs.Counter
	getUS, putUS          *obs.Histogram
}

// Open creates the cache directory (if needed) and returns the store.
// If the process-global observer (internal/obs) is enabled at this
// point, the store records put/get counts, bytes and latencies into it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir}
	if o := obs.Active(); o != nil {
		reg := o.Metrics()
		s.met = storeMetrics{
			gets:      reg.Counter("store_gets_total"),
			getMisses: reg.Counter("store_get_misses_total"),
			puts:      reg.Counter("store_puts_total"),
			getBytes:  reg.Counter("store_get_bytes_total"),
			putBytes:  reg.Counter("store_put_bytes_total"),
			getUS:     reg.Histogram("store_get_us", obs.LatencyBucketsUS),
			putUS:     reg.Histogram("store_put_us", obs.LatencyBucketsUS),
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Addr returns the content address of the identity pair: the hex SHA-256
// digest that names the entry's file (without the ".ckpt" extension).
// Companion subsystems key their own per-job files by the same address —
// the lease claim protocol (store/lease) names its lease files this way so
// one job maps to exactly one lease slot and one checkpoint slot.
func (s *Store) Addr(key, hash string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s", key, hash)
	return hex.EncodeToString(h.Sum(nil))
}

// path maps an identity pair to its entry file.
func (s *Store) path(key, hash string) string {
	return filepath.Join(s.dir, s.Addr(key, hash)+".ckpt")
}

// Has reports whether an entry exists for (key, hash) without reading its
// payload — one stat, cheap enough for claim-protocol polling loops.
func (s *Store) Has(key, hash string) (bool, error) {
	if _, err := os.Stat(s.path(key, hash)); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("store: has %q: %w", key, err)
	}
	return true, nil
}

// Get returns the payload stored for (key, hash), with ok reporting
// whether an entry exists. A missing entry is not an error.
//
//repolint:allow wallclock -- store latency histograms are wall-clock observability; the payload bytes are untouched
func (s *Store) Get(key, hash string) ([]byte, bool, error) {
	var start time.Time
	if s.met.gets != nil {
		start = time.Now()
	}
	data, err := os.ReadFile(s.path(key, hash))
	if s.met.gets != nil {
		s.met.gets.Inc()
		s.met.getBytes.Add(uint64(len(data)))
		s.met.getUS.Observe(float64(time.Since(start)) / 1e3)
		if err != nil && os.IsNotExist(err) {
			s.met.getMisses.Inc()
		}
	}
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: get %q: %w", key, err)
	}
	return data, true, nil
}

// Put stores the payload for (key, hash), replacing any previous entry.
// The write is atomic: concurrent readers see either the old entry or the
// new one, never a prefix.
//
//repolint:allow wallclock -- store latency histograms are wall-clock observability; the payload bytes are untouched
func (s *Store) Put(key, hash string, payload []byte) error {
	if s.met.puts != nil {
		start := time.Now()
		defer func() {
			s.met.puts.Inc()
			s.met.putBytes.Add(uint64(len(payload)))
			s.met.putUS.Observe(float64(time.Since(start)) / 1e3)
		}()
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := os.Rename(tmpName, s.path(key, hash)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	return nil
}

// Len counts the stored entries (a full directory scan; meant for tests
// and tooling, not hot paths).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".ckpt") {
			n++
		}
		return nil
	})
	return n, err
}

// Hash fingerprints a job configuration: each part is rendered with %#v
// (deterministic for the plain config structs this repository uses) and
// folded into one SHA-256 digest. Callers should include a format-version
// salt so stored payloads are invalidated when their encoding changes.
func Hash(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x00", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
