package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Options configures a Service.
type Options struct {
	// CacheCap bounds the number of decoded-and-fitted scenarios kept
	// resident. Zero means DefaultCacheCap.
	CacheCap int
	// Obs supplies the observer whose registry and tracer the service
	// records into. Nil means the process-global obs.Active() (which may
	// itself be nil; everything is nil-safe and /metrics is then empty).
	Obs *obs.Observer
}

// Service answers model queries over one campaign rows directory. Build
// one with New; it is safe for concurrent use.
type Service struct {
	catalog *Catalog
	cache   *modelCache
	reg     *obs.Registry
	track   *obs.Track
	axisSet map[string]bool

	requests *obs.Counter
	errors   *obs.Counter
	queryUS  *obs.Histogram
}

// New opens the rows directory (or a campaign directory containing one)
// and builds the query service over it.
func New(dir string, opts Options) (*Service, error) {
	catalog, err := Open(dir)
	if err != nil {
		return nil, err
	}
	o := opts.Obs
	if o == nil {
		o = obs.Active()
	}
	reg := o.Metrics()
	s := &Service{
		catalog:  catalog,
		cache:    newModelCache(opts.CacheCap, o),
		reg:      reg,
		track:    o.Tracer().Track("resultsd", "http"),
		axisSet:  map[string]bool{},
		requests: reg.Counter("resultsd_http_requests_total"),
		errors:   reg.Counter("resultsd_http_errors_total"),
		queryUS:  reg.Histogram("resultsd_query_us", obs.LatencyBucketsUS),
	}
	for _, a := range catalog.Axes() {
		s.axisSet[a] = true
	}
	return s, nil
}

// Catalog returns the scenario catalog the service was opened over.
func (s *Service) Catalog() *Catalog { return s.catalog }

// Handler returns the service's HTTP handler. All endpoints are GET;
// responses are JSON except /metrics (text exposition). Identical
// catalogs produce byte-identical responses for identical queries.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.wrap("index", s.handleIndex))
	mux.HandleFunc("/healthz", s.wrap("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/scenarios", s.wrap("scenarios", s.handleScenarios))
	mux.HandleFunc("/scenario", s.wrap("scenario", s.handleScenario))
	mux.HandleFunc("/predict", s.wrap("predict", s.handlePredict))
	mux.HandleFunc("/trend", s.wrap("trend", s.handleTrend))
	return mux
}

// httpError carries a status code up from a handler; its message is the
// response body's "error" field.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// errUnprocessable covers semantically valid queries the model cannot
// answer: unsupported measures, saturated queues, unservable shards.
func errUnprocessable(err error) error {
	return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
}

// wrap adapts a handler to the common envelope: GET-only, request
// counting, a span and a latency sample per query, JSON rendering with
// sorted struct fields, and the {"error": ...} error shape.
//
//repolint:allow wallclock -- query latency histograms are wall-clock observability; responses never include it
func (s *Service) wrap(name string, h func(*http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		span := s.track.Begin("http", name)
		start := time.Now()
		var status int
		var body any
		err := error(&httpError{status: http.StatusMethodNotAllowed, msg: "GET only"})
		if r.Method == http.MethodGet {
			body, err = h(r)
		}
		if err != nil {
			s.errors.Inc()
			status = http.StatusInternalServerError
			if he, ok := err.(*httpError); ok {
				status = he.status
			}
			writeJSON(w, status, struct {
				Error string `json:"error"`
			}{err.Error()})
		} else {
			status = http.StatusOK
			writeJSON(w, status, body)
		}
		s.queryUS.Observe(float64(time.Since(start).Microseconds()))
		span.End(obs.Arg{Name: "status", Value: status})
	}
}

// writeJSON renders v indented with a trailing newline — the exact bytes
// the API document's examples carry.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// checkParams rejects query parameters outside the allowed set, so typos
// fail loudly instead of silently matching everything.
func checkParams(v url.Values, allowed ...string) error {
	ok := map[string]bool{}
	for _, a := range allowed {
		ok[a] = true
	}
	var unknown []string
	for k := range v {
		if !ok[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return errBadRequest("unknown parameter %q (allowed: %v)", unknown[0], allowed)
	}
	return nil
}

// floatParam parses an optional float query parameter.
func floatParam(v url.Values, name string) (float64, bool, error) {
	raw := v.Get(name)
	if raw == "" {
		return 0, false, nil
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false, errBadRequest("parameter %q: %q is not a number", name, raw)
	}
	return f, true, nil
}

// filterParams is the parameter set shared by the scenario-selecting
// endpoints: "sched", repeatable "tag", and one parameter per catalog
// axis ("ranks", "cache_kb", ...).
func (s *Service) filterParams() []string {
	params := append([]string{"sched", "tag"}, s.catalog.Axes()...)
	return params
}

// parseFilter builds a Filter from query parameters.
func (s *Service) parseFilter(v url.Values) (Filter, error) {
	f := Filter{Sched: v.Get("sched"), Tags: v["tag"]}
	for _, axis := range s.catalog.Axes() {
		val, ok, err := floatParam(v, axis)
		if err != nil {
			return Filter{}, err
		}
		if ok {
			f.Coords = append(f.Coords, Coord{Axis: axis, Value: val})
		}
	}
	return f, nil
}

// indexResponse is the "/" body: what is being served and how to ask.
type indexResponse struct {
	Service   string   `json:"service"`
	RowsDir   string   `json:"rows_dir"`
	Scenarios int      `json:"scenarios"`
	Axes      []string `json:"axes"`
	Backends  []string `json:"backends"`
	Endpoints []string `json:"endpoints"`
}

func (s *Service) handleIndex(r *http.Request) (any, error) {
	if r.URL.Path != "/" {
		return nil, errNotFound("no such endpoint %q", r.URL.Path)
	}
	if err := checkParams(r.URL.Query()); err != nil {
		return nil, err
	}
	return indexResponse{
		Service:   "resultsd",
		RowsDir:   s.catalog.Dir(),
		Scenarios: len(s.catalog.Scenarios()),
		Axes:      s.catalog.Axes(),
		Backends:  backendNames,
		Endpoints: []string{"/healthz", "/metrics", "/predict", "/scenario", "/scenarios", "/trend"},
	}, nil
}

func (s *Service) handleHealthz(r *http.Request) (any, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return nil, err
	}
	return struct {
		OK        bool `json:"ok"`
		Scenarios int  `json:"scenarios"`
	}{true, len(s.catalog.Scenarios())}, nil
}

// handleMetrics is the text exposition of the obs registry: cache and
// query counters live here, never in query responses (responses must be
// byte-identical regardless of cache state).
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.WriteText(w)
}

// scenariosResponse lists matching scenarios, catalog metadata only — no
// shard is decoded.
type scenariosResponse struct {
	Count     int         `json:"count"`
	Scenarios []*Scenario `json:"scenarios"`
}

func (s *Service) handleScenarios(r *http.Request) (any, error) {
	v := r.URL.Query()
	if err := checkParams(v, append([]string{"name"}, s.filterParams()...)...); err != nil {
		return nil, err
	}
	f, err := s.parseFilter(v)
	if err != nil {
		return nil, err
	}
	f.Name = v.Get("name")
	matched := s.catalog.Match(f)
	return scenariosResponse{Count: len(matched), Scenarios: matched}, nil
}

// backendDetail is one fitted backend in a scenario response.
type backendDetail struct {
	Backend      string        `json:"backend"`
	Measures     []Measure     `json:"measures"`
	Describe     string        `json:"describe"`
	Coefficients []Coefficient `json:"coefficients"`
}

// scenarioDetail is one fully loaded scenario: metadata plus every
// backend's fitted coefficients.
type scenarioDetail struct {
	*Scenario
	Rows     int             `json:"rows"`
	Backends []backendDetail `json:"backends"`
}

type scenarioResponse struct {
	Count     int              `json:"count"`
	Scenarios []scenarioDetail `json:"scenarios"`
}

func (s *Service) handleScenario(r *http.Request) (any, error) {
	v := r.URL.Query()
	if err := checkParams(v, append([]string{"name"}, s.filterParams()...)...); err != nil {
		return nil, err
	}
	if len(v) == 0 {
		return nil, errBadRequest("at least one selector required (name, sched, tag, or an axis: %v); use /scenarios to browse", s.catalog.Axes())
	}
	f, err := s.parseFilter(v)
	if err != nil {
		return nil, err
	}
	f.Name = v.Get("name")
	matched := s.catalog.Match(f)
	if len(matched) == 0 {
		return nil, errNotFound("no scenario matches the query")
	}
	resp := scenarioResponse{Count: len(matched)}
	for _, sc := range matched {
		e, err := s.cache.get(sc)
		if err != nil {
			return nil, errUnprocessable(err)
		}
		d := scenarioDetail{Scenario: sc, Rows: e.rows}
		for _, b := range backendNames {
			m := e.backends[b]
			d.Backends = append(d.Backends, backendDetail{
				Backend:      b,
				Measures:     m.Measures(),
				Describe:     m.Describe(),
				Coefficients: m.Coefficients(),
			})
		}
		resp.Scenarios = append(resp.Scenarios, d)
	}
	return resp, nil
}

// predictAt echoes the evaluated coordinate.
type predictAt struct {
	Q      float64  `json:"q"`
	Lambda float64  `json:"lambda,omitempty"`
	DCM    *float64 `json:"dcm,omitempty"`
}

type predictResponse struct {
	Scenario string    `json:"scenario"`
	Backend  string    `json:"backend"`
	Measure  Measure   `json:"measure"`
	At       predictAt `json:"at"`
	Value    float64   `json:"value"`
	Model    string    `json:"model"`
	Rows     int       `json:"rows"`
}

func (s *Service) handlePredict(r *http.Request) (any, error) {
	v := r.URL.Query()
	if err := checkParams(v, "scenario", "measure", "model", "q", "lambda", "dcm"); err != nil {
		return nil, err
	}
	name := v.Get("scenario")
	if name == "" {
		return nil, errBadRequest("parameter \"scenario\" required (a name from /scenarios)")
	}
	sc, ok := s.catalog.Lookup(name)
	if !ok {
		return nil, errNotFound("unknown scenario %q", name)
	}
	measure := Measure(v.Get("measure"))
	if measure == "" {
		return nil, errBadRequest("parameter \"measure\" required")
	}
	backend := v.Get("model")
	if backend == "" {
		backend = backendNames[0]
	}
	q, qok, err := floatParam(v, "q")
	if err != nil {
		return nil, err
	}
	if !qok {
		return nil, errBadRequest("parameter \"q\" required (the array size to predict at)")
	}
	lambda, _, err := floatParam(v, "lambda")
	if err != nil {
		return nil, err
	}
	dcm, hasDCM, err := floatParam(v, "dcm")
	if err != nil {
		return nil, err
	}
	e, err := s.cache.get(sc)
	if err != nil {
		return nil, errUnprocessable(err)
	}
	m, ok := e.backends[backend]
	if !ok {
		return nil, errBadRequest("unknown model backend %q (have %v)", backend, backendNames)
	}
	at := Point{Q: q, Lambda: lambda, DCM: dcm, HasDCM: hasDCM}
	value, err := m.Predict(measure, at)
	if err != nil {
		return nil, errUnprocessable(err)
	}
	resp := predictResponse{
		Scenario: sc.Name,
		Backend:  backend,
		Measure:  measure,
		At:       predictAt{Q: q, Lambda: lambda},
		Value:    value,
		Model:    m.Describe(),
		Rows:     e.rows,
	}
	if hasDCM {
		resp.At.DCM = &dcm
	}
	return resp, nil
}

// trendPoint is one scenario's coefficient value at its axis coordinate.
type trendPoint struct {
	X        float64 `json:"x"`
	Scenario string  `json:"scenario"`
	Value    float64 `json:"value"`
}

// trendSeries is one coefficient's curve along the axis — the paper's
// "coefficients parameterized by a machine parameter" view.
type trendSeries struct {
	Model       string       `json:"model"`
	Coefficient string       `json:"coefficient"`
	Points      []trendPoint `json:"points"`
}

type trendResponse struct {
	Axis      string        `json:"axis"`
	Backend   string        `json:"backend"`
	Scenarios int           `json:"scenarios"`
	Series    []trendSeries `json:"series"`
}

func (s *Service) handleTrend(r *http.Request) (any, error) {
	v := r.URL.Query()
	if err := checkParams(v, append([]string{"axis", "model"}, s.filterParams()...)...); err != nil {
		return nil, err
	}
	axis := v.Get("axis")
	if axis == "" {
		return nil, errBadRequest("parameter \"axis\" required (one of %v)", s.catalog.Axes())
	}
	if !s.axisSet[axis] {
		return nil, errNotFound("axis %q not present in this campaign (have %v)", axis, s.catalog.Axes())
	}
	backend := v.Get("model")
	if backend == "" {
		backend = backendNames[0]
	}
	f, err := s.parseFilter(v)
	if err != nil {
		return nil, err
	}
	var scens []*Scenario
	for _, sc := range s.catalog.Match(f) {
		if _, ok := sc.Coord(axis); ok {
			scens = append(scens, sc)
		}
	}
	if len(scens) == 0 {
		return nil, errNotFound("no scenario matches the query on axis %q", axis)
	}
	type seriesKey struct{ model, name string }
	series := map[seriesKey]*trendSeries{}
	var order []seriesKey
	for _, sc := range scens {
		x, _ := sc.Coord(axis)
		e, err := s.cache.get(sc)
		if err != nil {
			return nil, errUnprocessable(err)
		}
		m, ok := e.backends[backend]
		if !ok {
			return nil, errBadRequest("unknown model backend %q (have %v)", backend, backendNames)
		}
		for _, c := range m.Coefficients() {
			k := seriesKey{c.Model, c.Name}
			ts := series[k]
			if ts == nil {
				ts = &trendSeries{Model: c.Model, Coefficient: c.Name}
				series[k] = ts
				order = append(order, k)
			}
			ts.Points = append(ts.Points, trendPoint{X: x, Scenario: sc.Name, Value: c.Value})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].model != order[j].model {
			return order[i].model < order[j].model
		}
		return order[i].name < order[j].name
	})
	resp := trendResponse{Axis: axis, Backend: backend, Scenarios: len(scens)}
	for _, k := range order {
		ts := series[k]
		sort.Slice(ts.Points, func(i, j int) bool {
			if ts.Points[i].X != ts.Points[j].X {
				return ts.Points[i].X < ts.Points[j].X
			}
			return ts.Points[i].Scenario < ts.Points[j].Scenario
		})
		resp.Series = append(resp.Series, *ts)
	}
	return resp, nil
}
