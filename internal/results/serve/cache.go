package serve

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/results"
)

// DefaultCacheCap is the number of decoded-and-fitted scenarios the
// read-through cache keeps resident when Options does not override it.
// An entry is a few fitted coefficients plus group statistics — small —
// but the bound keeps a scan over a huge campaign from pinning every
// shard's models at once.
const DefaultCacheCap = 256

// entry is one cached scenario: the decoded row count and every fitted
// backend. Entries are immutable after load; concurrent queries share
// them freely.
type entry struct {
	sc       *Scenario
	rows     int
	backends map[string]PerformanceModel
}

// modelCache is the read-through cache in front of shard decoding and
// model fitting. Lookups are LRU; concurrent misses on the same scenario
// are deduplicated singleflight-style so a shard is decoded once no
// matter how many queries race for it. Hits, misses, evictions and load
// latency go to the obs registry; instruments are captured at
// construction per the obscapture rule.
type modelCache struct {
	cap   int
	track *obs.Track

	mu       sync.Mutex
	lru      *list.List // front = most recently used; values are *entry
	byName   map[string]*list.Element
	inflight map[string]*flight

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	loadUS    *obs.Histogram
}

// flight is one in-progress load shared by every query that missed on
// the same scenario while it was loading.
type flight struct {
	done chan struct{}
	e    *entry
	err  error
}

func newModelCache(capacity int, o *obs.Observer) *modelCache {
	if capacity <= 0 {
		capacity = DefaultCacheCap
	}
	reg := o.Metrics()
	return &modelCache{
		cap:       capacity,
		track:     o.Tracer().Track("resultsd", "cache"),
		lru:       list.New(),
		byName:    map[string]*list.Element{},
		inflight:  map[string]*flight{},
		hits:      reg.Counter("resultsd_cache_hits_total"),
		misses:    reg.Counter("resultsd_cache_misses_total"),
		evictions: reg.Counter("resultsd_cache_evictions_total"),
		loadUS:    reg.Histogram("resultsd_scenario_load_us", obs.LatencyBucketsUS),
	}
}

// get returns the scenario's cached entry, loading (decode + fit) on
// first use. Every concurrent miss for one scenario waits on a single
// load; each waiter still counts as a miss (the counters measure lookup
// outcomes, not disk reads — the load histogram counts actual decodes).
//
//repolint:allow wallclock -- cache load latency is wall-clock observability; nothing downstream consumes it
func (c *modelCache) get(sc *Scenario) (*entry, error) {
	c.mu.Lock()
	if el, ok := c.byName[sc.Name]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Inc()
		return el.Value.(*entry), nil
	}
	c.misses.Inc()
	if fl, ok := c.inflight[sc.Name]; ok {
		c.mu.Unlock()
		<-fl.done
		return fl.e, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[sc.Name] = fl
	c.mu.Unlock()

	span := c.track.Begin("cache", "load")
	start := time.Now()
	fl.e, fl.err = loadEntry(sc)
	c.loadUS.Observe(float64(time.Since(start).Microseconds()))
	span.End(obs.Arg{Name: "scenario", Value: sc.Name}, obs.Arg{Name: "ok", Value: fl.err == nil})

	c.mu.Lock()
	delete(c.inflight, sc.Name)
	if fl.err == nil {
		c.byName[sc.Name] = c.lru.PushFront(fl.e)
		for c.lru.Len() > c.cap {
			old := c.lru.Back()
			c.lru.Remove(old)
			delete(c.byName, old.Value.(*entry).sc.Name)
			c.evictions.Inc()
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.e, fl.err
}

// loadEntry decodes a scenario's shard (either format) and fits every
// backend.
func loadEntry(sc *Scenario) (*entry, error) {
	rows, err := results.ReadRowsFile(sc.File)
	if err != nil {
		return nil, err
	}
	backends, err := buildBackends(sc.Name, rows)
	if err != nil {
		return nil, err
	}
	return &entry{sc: sc, rows: len(rows), backends: backends}, nil
}

// len returns the resident entry count (test hook).
func (c *modelCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
