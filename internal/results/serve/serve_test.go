package serve

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/results"
)

var update = flag.Bool("update", false, "rewrite the golden response files")

// fixtureDir builds a deterministic mini-campaign rows directory with
// the real shard sinks: three cache sizes under one sweep (CSV), one
// scenario in both formats, one binary-only scenario, and a speculation
// shard that must be skipped.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	csvSink, err := results.NewCSVShardSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	binSink, err := results.NewBinShardSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(sink results.Sink, key string, cacheKB int) {
		slope := 0.25 + 64.0/float64(cacheKB)
		for _, q := range []int{1000, 2000, 4000, 8000} {
			for rep := 0; rep < 3; rep++ {
				mode := "X"
				if rep%2 == 1 {
					mode = "Y"
				}
				row := results.Row{
					results.F("rank", rep%2),
					results.F("q", q),
					results.F("mode", mode),
					results.F("wall_us", 50+slope*float64(q)+10*float64(rep)),
					results.F("l2_dcm", float64(q)/8+100*float64(rep)),
				}
				if err := sink.Emit(key, row); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, kb := range []int{128, 256, 512} {
		emit(csvSink, fmt.Sprintf("p2/base/c%dkB/cpu1x/quiet/opt/r0", kb), kb)
	}
	// One scenario in both formats (the binary sibling must win) and one
	// binary-only scenario.
	emit(csvSink, "p4/base/c128kB/cpu1x/loaded/par/r0", 128)
	emit(binSink, "p4/base/c128kB/cpu1x/loaded/par/r0", 128)
	emit(binSink, "p8/base/c128kB/cpu1x/loaded/serial/r0", 128)
	if err := csvSink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := binSink.Close(); err != nil {
		t.Fatal(err)
	}
	// A speculation telemetry shard is not a scenario.
	spec := filepath.Join(dir, obs.SpecShardPrefix+"states_opt_r0-1a2b3c4d.csv")
	if err := os.WriteFile(spec, []byte("sched,procs\nopt,4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func newTestService(t *testing.T, capacity int) (*Service, *obs.Observer) {
	t.Helper()
	o := obs.New(obs.Options{})
	s, err := New(fixtureDir(t), Options{CacheCap: capacity, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	return s, o
}

func TestCatalogParsesScenarioNames(t *testing.T) {
	s, _ := newTestService(t, 0)
	c := s.Catalog()
	if got := len(c.Scenarios()); got != 5 {
		var names []string
		for _, sc := range c.Scenarios() {
			names = append(names, sc.Name)
		}
		t.Fatalf("%d scenarios (%v), want 5", got, names)
	}
	sc, ok := c.Lookup("p2_base_c128kB_cpu1x_quiet_opt_r0")
	if !ok {
		t.Fatal("128kB scenario not found")
	}
	for _, want := range []Coord{{"cache_kb", 128}, {"cpu_clock", 1}, {"ranks", 2}, {"rep", 0}} {
		if v, ok := sc.Coord(want.Axis); !ok || v != want.Value {
			t.Errorf("%s = %v (ok=%v), want %v", want.Axis, v, ok, want.Value)
		}
	}
	if sc.Sched != "opt" || !sc.HasTag("quiet") || !sc.HasTag("base") {
		t.Errorf("sched=%q tags=%v", sc.Sched, sc.Tags)
	}
	// The dual-format scenario serves its binary shard.
	dual, ok := c.Lookup("p4_base_c128kB_cpu1x_loaded_par_r0")
	if !ok {
		t.Fatal("dual-format scenario not found")
	}
	if dual.Format != "bin" || !strings.HasSuffix(dual.File, ".bin") {
		t.Errorf("dual-format scenario served as %q (%s), want bin", dual.Format, dual.File)
	}
	if axes := c.Axes(); strings.Join(axes, ",") != "cache_kb,cpu_clock,ranks,rep" {
		t.Errorf("axes = %v", axes)
	}
	// Spec shards are skipped.
	for _, sc := range c.Scenarios() {
		if strings.HasPrefix(sc.Name, "states") {
			t.Errorf("speculation shard surfaced as scenario %q", sc.Name)
		}
	}
}

// get performs one request against the service handler.
func get(t *testing.T, h http.Handler, target string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec.Code, rec.Body.String()
}

func TestHandlersGolden(t *testing.T) {
	s, _ := newTestService(t, 0)
	h := s.Handler()
	cases := []struct {
		name   string
		target string
		status int
	}{
		{"predict_fitted", "/predict?scenario=p2_base_c128kB_cpu1x_quiet_opt_r0&measure=mean_us&q=3000", http.StatusOK},
		{"predict_sigma", "/predict?scenario=p2_base_c128kB_cpu1x_quiet_opt_r0&measure=sigma_us&q=3000", http.StatusOK},
		{"predict_queue", "/predict?scenario=p2_base_c128kB_cpu1x_quiet_opt_r0&measure=response_us&model=queue&q=3000&lambda=100", http.StatusOK},
		{"predict_queue_capacity", "/predict?scenario=p8_base_c128kB_cpu1x_loaded_serial_r0&measure=throughput_per_s&model=queue&q=8000", http.StatusOK},
		{"predict_multi", "/predict?scenario=p4_base_c128kB_cpu1x_loaded_par_r0&measure=mean_us&q=3000&dcm=500", http.StatusOK},
		{"scenario_by_coord", "/scenario?cache_kb=512", http.StatusOK},
		{"scenarios_by_sched", "/scenarios?sched=opt", http.StatusOK},
		{"trend_cache", "/trend?axis=cache_kb&sched=opt", http.StatusOK},
		{"trend_queue", "/trend?axis=cache_kb&model=queue&sched=opt", http.StatusOK},
		{"healthz", "/healthz", http.StatusOK},
		{"err_unknown_param", "/predict?scenario=x&measure=mean_us&q=1&bogus=1", http.StatusBadRequest},
		{"err_unknown_scenario", "/predict?scenario=nope&measure=mean_us&q=1", http.StatusNotFound},
		{"err_bad_measure", "/predict?scenario=p2_base_c128kB_cpu1x_quiet_opt_r0&measure=bogus&q=1", http.StatusUnprocessableEntity},
		{"err_saturated", "/predict?scenario=p2_base_c128kB_cpu1x_quiet_opt_r0&measure=response_us&model=queue&q=8000&lambda=1000000", http.StatusUnprocessableEntity},
		{"err_no_selector", "/scenario", http.StatusBadRequest},
		{"err_bad_axis", "/trend?axis=bogus", http.StatusNotFound},
		{"err_no_endpoint", "/nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := get(t, h, tc.target)
			if status != tc.status {
				t.Fatalf("status = %d, want %d; body:\n%s", status, tc.status, body)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run go test -run Golden -update ./internal/results/serve to regenerate)", err)
			}
			if body != string(want) {
				t.Errorf("response drifted from %s:\n got: %s\nwant: %s", golden, body, want)
			}
		})
	}
}

func TestResponsesByteIdenticalAcrossInstances(t *testing.T) {
	// Two independent services over two independently written (but
	// identical) fixtures must serve identical bytes: the determinism
	// contract the API document leans on.
	s1, _ := newTestService(t, 0)
	s2, _ := newTestService(t, 0)
	targets := []string{
		"/predict?scenario=p2_base_c256kB_cpu1x_quiet_opt_r0&measure=mean_us&q=5000",
		"/trend?axis=cache_kb&sched=opt",
		"/scenario?name=p8_base_c128kB_cpu1x_loaded_serial_r0",
	}
	for _, target := range targets {
		_, a := get(t, s1.Handler(), target)
		// Query s1 twice: a cache hit must not change the bytes.
		_, aAgain := get(t, s1.Handler(), target)
		_, b := get(t, s2.Handler(), target)
		if a != aAgain {
			t.Errorf("%s: cache hit changed the response bytes", target)
		}
		if a != b {
			t.Errorf("%s: responses differ across instances:\n%s\nvs\n%s", target, a, b)
		}
	}
}

func TestBinAndCSVShardsServeIdenticalModels(t *testing.T) {
	// The dual-format scenario decodes from its binary shard; a catalog
	// over a copy of the fixture with the .bin files removed serves the
	// same scenario from CSV. Fitted coefficients must agree exactly.
	dir := fixtureDir(t)
	csvOnly := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".bin" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(csvOnly, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sBin, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sCSV, err := New(csvOnly, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const target = "/predict?scenario=p4_base_c128kB_cpu1x_loaded_par_r0&measure=mean_us&q=3333"
	_, a := get(t, sBin.Handler(), target)
	_, b := get(t, sCSV.Handler(), target)
	if a != b {
		t.Errorf("binary-served and CSV-served predictions differ:\n%s\nvs\n%s", a, b)
	}
}

func TestCacheAccounting(t *testing.T) {
	s, o := newTestService(t, 2)
	h := s.Handler()
	reg := o.Metrics()
	names := []string{
		"p2_base_c128kB_cpu1x_quiet_opt_r0",
		"p2_base_c256kB_cpu1x_quiet_opt_r0",
		"p2_base_c512kB_cpu1x_quiet_opt_r0",
	}
	predict := func(name string) {
		status, body := get(t, h, "/predict?scenario="+name+"&measure=mean_us&q=2000")
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, status, body)
		}
	}
	// Three loads through a 2-entry cache: all misses, one eviction.
	for _, n := range names {
		predict(n)
	}
	if got := reg.Counter("resultsd_cache_misses_total").Value(); got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := reg.Counter("resultsd_cache_hits_total").Value(); got != 0 {
		t.Errorf("hits = %d, want 0", got)
	}
	if got := reg.Counter("resultsd_cache_evictions_total").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := s.cache.len(); got != 2 {
		t.Errorf("resident entries = %d, want 2", got)
	}
	// The two resident scenarios hit; the evicted one misses and reloads.
	predict(names[2])
	predict(names[1])
	predict(names[0])
	if got := reg.Counter("resultsd_cache_hits_total").Value(); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
	if got := reg.Counter("resultsd_cache_misses_total").Value(); got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
	if got := reg.Histogram("resultsd_scenario_load_us", obs.LatencyBucketsUS).Count(); got != 4 {
		t.Errorf("load histogram count = %d, want 4 (one per actual decode)", got)
	}
	// /metrics exposes all of it.
	status, body := get(t, h, "/metrics")
	if status != http.StatusOK || !strings.Contains(body, "resultsd_cache_hits_total 2") {
		t.Errorf("metrics exposition missing cache counters:\n%s", body)
	}
}

func TestConcurrentQueries(t *testing.T) {
	// Hammer one service from many goroutines (run under -race in CI).
	// The singleflight load means each scenario decodes exactly once even
	// though every goroutine asks for every scenario.
	s, o := newTestService(t, 0)
	h := s.Handler()
	var names []string
	for _, sc := range s.Catalog().Scenarios() {
		names = append(names, sc.Name)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := names[(g+i)%len(names)]
				status, body := get(t, h, "/predict?scenario="+name+"&measure=mean_us&q=4000")
				if status != http.StatusOK {
					errs <- fmt.Sprintf("%s: status %d: %s", name, status, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	loads := o.Metrics().Histogram("resultsd_scenario_load_us", obs.LatencyBucketsUS).Count()
	if loads != uint64(len(names)) {
		t.Errorf("%d shard decodes for %d scenarios; singleflight should collapse them", loads, len(names))
	}
}

func TestIndexAndBackendsAgree(t *testing.T) {
	s, _ := newTestService(t, 0)
	status, body := get(t, s.Handler(), "/")
	if status != http.StatusOK {
		t.Fatalf("index status %d", status)
	}
	var idx indexResponse
	if err := json.Unmarshal([]byte(body), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Service != "resultsd" || idx.Scenarios != 5 {
		t.Errorf("index = %+v", idx)
	}
	if strings.Join(idx.Backends, ",") != "fitted,queue" {
		t.Errorf("backends = %v", idx.Backends)
	}
	// Every advertised backend answers its advertised measures at a
	// benign point, and rejects nothing it advertises.
	sc, _ := s.catalog.Lookup("p2_base_c128kB_cpu1x_quiet_opt_r0")
	e, err := s.cache.get(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range idx.Backends {
		m := e.backends[b]
		if m == nil {
			t.Fatalf("backend %q advertised but not built", b)
		}
		for _, meas := range m.Measures() {
			if _, err := m.Predict(meas, Point{Q: 2000, Lambda: 10}); err != nil {
				t.Errorf("%s/%s: %v", b, meas, err)
			}
		}
	}
	// POST is rejected everywhere.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", rec.Code)
	}
}

func TestUnservableShardIs422(t *testing.T) {
	// A scenario whose rows have a single distinct q cannot be fitted:
	// the query must fail loudly, and the failure must not poison the
	// cache (a later fixed shard would reload).
	dir := t.TempDir()
	sink, err := results.NewCSVShardSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		if err := sink.Emit("p2/flat/r0", results.Row{
			results.F("q", 1000),
			results.F("wall_us", 10.0+float64(rep)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := New(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	status, body := get(t, s.Handler(), "/predict?scenario=p2_flat_r0&measure=mean_us&q=1000")
	if status != http.StatusUnprocessableEntity || !strings.Contains(body, "distinct") {
		t.Errorf("status = %d, body = %s", status, body)
	}
	if got := s.cache.len(); got != 0 {
		t.Errorf("failed load cached: %d resident entries", got)
	}
}

func TestOpenPrefersRowsSubdirOverReportCSVs(t *testing.T) {
	// A figures output directory holds rendered reports (trend.csv) next
	// to rows/; the shards under rows/ are the catalog, not the reports.
	out := t.TempDir()
	rows := filepath.Join(out, "rows")
	if err := os.MkdirAll(rows, 0o755); err != nil {
		t.Fatal(err)
	}
	sink, err := results.NewCSVShardSink(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1000, 2000, 4000} {
		row := results.Row{results.F("q", q), results.F("wall_us", 50+0.75*float64(q))}
		if err := sink.Emit("p2/base/c128kB/cpu1x/quiet/opt/r0", row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(out, "trend.csv"), []byte("axis,c0,c1\n128,60,0.75\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dir() != rows {
		t.Errorf("catalog dir = %s, want %s", c.Dir(), rows)
	}
	if _, ok := c.Lookup("trend"); ok {
		t.Error("rendered report trend.csv surfaced as a scenario")
	}
	if _, ok := c.Lookup("p2_base_c128kB_cpu1x_quiet_opt_r0"); !ok {
		t.Error("shard under rows/ missing from the catalog")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("empty dir opened")
	}
	if _, err := New(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Error("missing dir opened")
	}
}
