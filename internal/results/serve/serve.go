// Package serve is the results-as-a-service query tier: it loads a
// finished campaign's rows directory (the CSV shards and/or their binary
// siblings a shard sink left behind) and answers model-prediction, trend
// and scenario-lookup queries over HTTP — "what would this app do on that
// machine", served from fitted performance models instead of re-running a
// simulation.
//
// The design target is the inverse of the campaign engine's: thousands of
// expensive simulations were already paid for; millions of cheap reads
// follow. A scenario's shard is decoded and its models fitted at most
// once per cache residency — queries go through a read-through cache
// (singleflight-deduplicated loads, LRU over decoded scenarios) and every
// load, hit, miss and query latency is counted in the internal/obs
// registry the service exposes at /metrics.
//
// Serving is read-only and deterministic: the service never writes to the
// campaign directory, and identical shard bytes produce byte-identical
// JSON responses for identical queries — the HTTP layer renders through
// ordered structs, never map iteration, and the fitted coefficients are a
// pure function of the decoded rows.
//
// Two interchangeable PerformanceModel backends answer predictions (the
// dcs-eesim shape: measures by category, backends swappable per query):
// "fitted" evaluates the regression models (AIC-best univariate mean and
// sigma fits, plus a multilinear fit over array size and cache misses
// when the telemetry carries them), "queue" treats the measured kernel as
// an M/M/1 server and answers open-system response time, utilization and
// throughput from the interpolated service demand. See doc.go "Results
// service" and docs/resultsd-api.md for the HTTP contract.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Coord is one parsed numeric coordinate of a scenario: a grid axis name
// and the scenario's value on it.
type Coord struct {
	Axis  string  `json:"axis"`
	Value float64 `json:"value"`
}

// Scenario is one servable grid scenario discovered in the rows
// directory. Name is the shard stem (the campaign scenario key with "/"
// sanitized to "_" and the sink's hash suffix stripped); Coords holds the
// numeric axis values recovered from the key's tokens; Sched is the
// scheduler token when present; Tags collects the remaining tokens
// (user-defined axis keys such as "quiet"/"loaded") for exact-match
// lookup.
type Scenario struct {
	Name string `json:"name"`
	// File is the shard path on disk; it is serving detail, not part of
	// the JSON contract (responses must not depend on where the campaign
	// directory happens to live).
	File   string   `json:"-"`
	Format string   `json:"format"`
	Coords []Coord  `json:"coords"`
	Sched  string   `json:"sched,omitempty"`
	Tags   []string `json:"tags,omitempty"`
}

// Coord returns the scenario's value on an axis.
func (s *Scenario) Coord(axis string) (float64, bool) {
	for _, c := range s.Coords {
		if c.Axis == axis {
			return c.Value, true
		}
	}
	return 0, false
}

// HasTag reports whether the scenario carries the exact token.
func (s *Scenario) HasTag(tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Catalog is the discovered scenario set of one campaign rows directory.
type Catalog struct {
	dir       string
	scenarios []*Scenario
	byName    map[string]*Scenario
}

// The built-in token recognizers, mirroring the campaign axis key
// grammar: "p3" (ranks), "c512kB" (cache_kb), "cpu1.5x" (cpu_clock),
// "m96x24" (mesh_cells), "r0" (replication). Scheduler tokens are
// "serial", "par[-N]" and "opt[-N][-wMIN-MAX]".
var (
	reRanks = regexp.MustCompile(`^p(\d+)$`)
	reCache = regexp.MustCompile(`^c(\d+)kB$`)
	reClock = regexp.MustCompile(`^cpu(\d+(?:\.\d+)?)x$`)
	reMesh  = regexp.MustCompile(`^m(\d+)x(\d+)$`)
	reRep   = regexp.MustCompile(`^r(\d+)$`)
	reSched = regexp.MustCompile(`^(serial|par|opt)(-.*)?$`)
)

// Open scans a campaign rows directory into a catalog. dir may be the
// rows directory itself or a campaign output directory containing a
// "rows" subdirectory. Speculation telemetry shards ("spec_*") are not
// scenarios and are skipped; when a scenario exists in both formats the
// binary shard is served (identical logical rows, cheaper decode).
func Open(dir string) (*Catalog, error) {
	// A "rows" subdirectory with shards always wins: a campaign output
	// directory's own top-level CSVs (trend.csv, figure tables) are
	// rendered reports, not row shards.
	if fi, err := os.Stat(filepath.Join(dir, "rows")); err == nil && fi.IsDir() {
		if has, _ := dirHasShards(filepath.Join(dir, "rows")); has {
			dir = filepath.Join(dir, "rows")
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	c := &Catalog{dir: dir, byName: map[string]*Scenario{}}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		ext := filepath.Ext(name)
		if ext != ".csv" && ext != ".bin" {
			continue
		}
		if strings.HasPrefix(name, obs.SpecShardPrefix) {
			continue
		}
		stem := shardStem(strings.TrimSuffix(name, ext))
		format := strings.TrimPrefix(ext, ".")
		if prev, ok := c.byName[stem]; ok {
			// Prefer the binary sibling; the logical rows are identical.
			if format == "bin" {
				prev.File, prev.Format = filepath.Join(dir, name), "bin"
			}
			continue
		}
		sc := parseScenario(stem)
		sc.File = filepath.Join(dir, name)
		sc.Format = format
		c.byName[stem] = sc
		c.scenarios = append(c.scenarios, sc)
	}
	if len(c.scenarios) == 0 {
		return nil, fmt.Errorf("serve: no row shards under %s", dir)
	}
	sort.Slice(c.scenarios, func(i, j int) bool { return c.scenarios[i].Name < c.scenarios[j].Name })
	return c, nil
}

// dirHasShards reports whether dir itself contains shard files (in which
// case a "rows" subdirectory is not consulted).
func dirHasShards(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".csv", ".bin":
			return true, nil
		}
	}
	return false, nil
}

// shardStem strips the sink's "-<8 hex>" disambiguation suffix when
// present: the campaign keys contain "/", so sanitization always appended
// one.
func shardStem(stem string) string {
	if i := strings.LastIndex(stem, "-"); i > 0 && len(stem)-i-1 == 8 {
		if _, err := strconv.ParseUint(stem[i+1:], 16, 32); err == nil {
			return stem[:i]
		}
	}
	return stem
}

// parseScenario recovers coordinates from a scenario name's "_"-separated
// key tokens. Unrecognized tokens become tags; tokens from user-defined
// axes whose keys themselves contain "_" split into several tags (the
// documented limitation of serving from sanitized shard names).
func parseScenario(stem string) *Scenario {
	sc := &Scenario{Name: stem}
	for _, tok := range strings.Split(stem, "_") {
		switch {
		case reRanks.MatchString(tok):
			v, _ := strconv.ParseFloat(reRanks.FindStringSubmatch(tok)[1], 64)
			sc.Coords = append(sc.Coords, Coord{Axis: "ranks", Value: v})
		case reCache.MatchString(tok):
			v, _ := strconv.ParseFloat(reCache.FindStringSubmatch(tok)[1], 64)
			sc.Coords = append(sc.Coords, Coord{Axis: "cache_kb", Value: v})
		case reClock.MatchString(tok):
			v, _ := strconv.ParseFloat(reClock.FindStringSubmatch(tok)[1], 64)
			sc.Coords = append(sc.Coords, Coord{Axis: "cpu_clock", Value: v})
		case reMesh.MatchString(tok):
			m := reMesh.FindStringSubmatch(tok)
			nx, _ := strconv.ParseFloat(m[1], 64)
			ny, _ := strconv.ParseFloat(m[2], 64)
			sc.Coords = append(sc.Coords, Coord{Axis: "mesh_cells", Value: nx * ny})
		case reRep.MatchString(tok):
			v, _ := strconv.ParseFloat(reRep.FindStringSubmatch(tok)[1], 64)
			sc.Coords = append(sc.Coords, Coord{Axis: "rep", Value: v})
		case reSched.MatchString(tok):
			sc.Sched = tok
		default:
			sc.Tags = append(sc.Tags, tok)
		}
	}
	sort.Slice(sc.Coords, func(i, j int) bool { return sc.Coords[i].Axis < sc.Coords[j].Axis })
	return sc
}

// Dir returns the catalog's rows directory.
func (c *Catalog) Dir() string { return c.dir }

// Scenarios returns every discovered scenario, sorted by name.
func (c *Catalog) Scenarios() []*Scenario { return c.scenarios }

// Lookup returns a scenario by exact name.
func (c *Catalog) Lookup(name string) (*Scenario, bool) {
	sc, ok := c.byName[name]
	return sc, ok
}

// Axes returns the sorted union of coordinate axes across scenarios.
func (c *Catalog) Axes() []string {
	seen := map[string]bool{}
	var axes []string
	for _, sc := range c.scenarios {
		for _, co := range sc.Coords {
			if !seen[co.Axis] {
				seen[co.Axis] = true
				axes = append(axes, co.Axis)
			}
		}
	}
	sort.Strings(axes)
	return axes
}

// Filter is a conjunctive scenario predicate: every set field must match.
type Filter struct {
	// Name, when non-empty, selects the single exactly-named scenario.
	Name string
	// Coords matches numeric coordinates exactly, axis by axis.
	Coords []Coord
	// Sched matches the scheduler token exactly.
	Sched string
	// Tags must all be present.
	Tags []string
}

// Match returns the scenarios satisfying the filter, in name order.
func (c *Catalog) Match(f Filter) []*Scenario {
	var out []*Scenario
	for _, sc := range c.scenarios {
		if f.Name != "" && sc.Name != f.Name {
			continue
		}
		if f.Sched != "" && sc.Sched != f.Sched {
			continue
		}
		ok := true
		for _, want := range f.Coords {
			v, has := sc.Coord(want.Axis)
			if !has || v != want.Value {
				ok = false
				break
			}
		}
		for _, tag := range f.Tags {
			if !sc.HasTag(tag) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, sc)
		}
	}
	return out
}
