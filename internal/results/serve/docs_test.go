package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// docPath locates the API contract relative to this package.
var docPath = filepath.Join("..", "..", "..", "docs", "resultsd-api.md")

// verifyRE matches the machine-checkable example markers in the API
// document: <!-- verify: GET /predict?... status=200 --> followed by a
// fenced JSON block holding the exact response body.
var verifyRE = regexp.MustCompile(`^<!-- verify: (GET|POST) (\S+) status=(\d+) -->$`)

// docExample is one verified request/response pair from the document.
type docExample struct {
	line   int
	method string
	target string
	status int
	body   string
}

// parseDocExamples extracts every verify marker and its JSON fence.
func parseDocExamples(t *testing.T) []docExample {
	t.Helper()
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("API document: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	var out []docExample
	for i := 0; i < len(lines); i++ {
		m := verifyRE.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		status, _ := strconv.Atoi(m[3])
		ex := docExample{line: i + 1, method: m[1], target: m[2], status: status}
		if i+1 >= len(lines) || lines[i+1] != "```json" {
			t.Fatalf("%s:%d: verify marker not followed by a ```json fence", docPath, ex.line)
		}
		j := i + 2
		for ; j < len(lines) && lines[j] != "```"; j++ {
			ex.body += lines[j] + "\n"
		}
		if j == len(lines) {
			t.Fatalf("%s:%d: unterminated ```json fence", docPath, ex.line)
		}
		i = j
		out = append(out, ex)
	}
	if len(out) == 0 {
		t.Fatalf("%s: no verify markers found", docPath)
	}
	return out
}

// TestDocExamplesMatchLiveService replays every example in
// docs/resultsd-api.md against a live handler and requires the exact
// documented status and body bytes — the written contract cannot drift
// from the implementation without failing this test.
func TestDocExamplesMatchLiveService(t *testing.T) {
	s, _ := newTestService(t, 0)
	h := s.Handler()
	for _, ex := range parseDocExamples(t) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(ex.method, ex.target, nil))
		if rec.Code != ex.status {
			t.Errorf("%s:%d: %s %s: status %d, want %d", docPath, ex.line, ex.method, ex.target, rec.Code, ex.status)
			continue
		}
		if got := rec.Body.String(); got != ex.body {
			t.Errorf("%s:%d: %s %s: body drifted from the document\n got: %s\nwant: %s",
				docPath, ex.line, ex.method, ex.target, got, ex.body)
		}
	}
}

// TestDocCoversEveryEndpoint requires the API document to mention every
// route the handler actually serves, and an example for every error
// status the handlers can produce.
func TestDocCoversEveryEndpoint(t *testing.T) {
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("API document: %v", err)
	}
	doc := string(data)
	for _, ep := range []string{"/", "/healthz", "/metrics", "/scenarios", "/scenario", "/predict", "/trend"} {
		if !strings.Contains(doc, "`GET "+ep+"`") {
			t.Errorf("%s: endpoint %q not documented (want a `GET %s` entry)", docPath, ep, ep)
		}
	}
	examples := parseDocExamples(t)
	statuses := map[int]bool{}
	for _, ex := range examples {
		statuses[ex.status] = true
	}
	for _, want := range []int{http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
		http.StatusMethodNotAllowed, http.StatusUnprocessableEntity} {
		if !statuses[want] {
			t.Errorf("%s: no verified example with status %d", docPath, want)
		}
	}
}
