package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/perfmodel"
	"repro/internal/results"
)

// The row fields a scenario shard must carry to be modeled: the sweep
// harness emits one row per kernel invocation with the array size, the
// measured wall time and (when the platform counters were on) the L2
// data-cache-miss delta.
const (
	fieldQ    = "q"
	fieldWall = "wall_us"
	fieldDCM  = "l2_dcm"
)

// Measure names one predictable quantity. The two backends support
// overlapping but distinct subsets — Measures() on a model lists its
// own.
type Measure string

// The measures the built-in backends answer.
const (
	// MeasureMeanUS is the expected wall time of one invocation at Q,
	// microseconds.
	MeasureMeanUS Measure = "mean_us"
	// MeasureSigmaUS is the fitted standard deviation of the wall time
	// at Q, microseconds (the paper's error-bar model).
	MeasureSigmaUS Measure = "sigma_us"
	// MeasureThroughput is invocations per second: back-to-back
	// completion rate for the fitted backend, carried load for the
	// queueing backend.
	MeasureThroughput Measure = "throughput_per_s"
	// MeasureResponseUS is the open-system response time at arrival
	// rate lambda, microseconds (queue backend only).
	MeasureResponseUS Measure = "response_us"
	// MeasureUtilization is the offered load rho = lambda * service
	// demand (queue backend only).
	MeasureUtilization Measure = "utilization"
)

// Point is a prediction coordinate: the array size Q, the open-system
// arrival rate Lambda (requests per second, used by the queue measures)
// and optionally a cache-miss count for the multivariate fitted model.
type Point struct {
	Q      float64
	Lambda float64
	DCM    float64
	HasDCM bool
}

// Coefficient is one named fitted parameter, grouped by the submodel it
// belongs to ("mean", "sigma", "multi", "service_us").
type Coefficient struct {
	Model string  `json:"model"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// PerformanceModel answers predictions for one scenario. Implementations
// are immutable once built — the cache shares one instance across
// concurrent queries.
type PerformanceModel interface {
	// Backend names the implementation ("fitted", "queue").
	Backend() string
	// Measures lists what this backend can predict, in a fixed order.
	Measures() []Measure
	// Predict evaluates a measure at a point. Unsupported measures and
	// out-of-domain points (e.g. a saturated queue) return errors.
	Predict(m Measure, at Point) (float64, error)
	// Coefficients returns every fitted parameter, deterministically
	// ordered — the trend endpoint's raw material.
	Coefficients() []Coefficient
	// Describe renders the model in the paper's equation style.
	Describe() string
}

// backendNames lists the built-in backends in serving order; "fitted" is
// the default when a query names none.
var backendNames = []string{"fitted", "queue"}

// buildBackends fits every backend for one decoded scenario. A backend
// that cannot be built from the rows (too few distinct Q values, say) is
// reported, not silently dropped: the scenario is unservable.
func buildBackends(name string, rows []results.Row) (map[string]PerformanceModel, error) {
	q, wall, dcm, hasDCM := modelSeries(rows)
	if len(q) == 0 {
		return nil, fmt.Errorf("serve: scenario %s has no rows with %q and %q fields", name, fieldQ, fieldWall)
	}
	stats := perfmodel.GroupStats(q, wall)
	if len(stats) < 2 {
		return nil, fmt.Errorf("serve: scenario %s has %d distinct %s value(s); need at least 2 to fit", name, len(stats), fieldQ)
	}
	f, err := buildFitted(q, wall, dcm, hasDCM, stats)
	if err != nil {
		return nil, fmt.Errorf("serve: scenario %s: %w", name, err)
	}
	return map[string]PerformanceModel{
		"fitted": f,
		"queue":  buildQueue(stats),
	}, nil
}

// modelSeries extracts the modeling series from decoded rows. Rows
// missing either Q or the wall time are skipped; the cache-miss series is
// only kept when every used row carries it (a partial counter column
// cannot feed one regression).
func modelSeries(rows []results.Row) (q, wall, dcm []float64, hasDCM bool) {
	hasDCM = true
	for _, row := range rows {
		qv, qok := numericField(row, fieldQ)
		wv, wok := numericField(row, fieldWall)
		if !qok || !wok {
			continue
		}
		q = append(q, qv)
		wall = append(wall, wv)
		if dv, ok := numericField(row, fieldDCM); ok {
			dcm = append(dcm, dv)
		} else {
			hasDCM = false
		}
	}
	if len(dcm) != len(q) {
		hasDCM = false
	}
	if !hasDCM {
		dcm = nil
	}
	return q, wall, dcm, hasDCM
}

// numericField returns a row field as float64. Decoded shards carry
// int64 (both formats), float64, and int (in-memory rows).
func numericField(row results.Row, name string) (float64, bool) {
	for _, f := range row {
		if f.Name != name {
			continue
		}
		switch v := f.Value.(type) {
		case float64:
			return v, true
		case int64:
			return float64(v), true
		case int:
			return float64(v), true
		}
		return 0, false
	}
	return 0, false
}

// fitCandidates fits the paper's model family on (x, y) and returns the
// AIC-best: degree-1 and degree-2 polynomials and the power law (Eqs.
// 1-2). At least the linear fit always succeeds given 2+ distinct points.
func fitCandidates(x, y []float64) (perfmodel.Model, error) {
	var cands []perfmodel.Model
	if lin, err := perfmodel.LinFit(x, y); err == nil {
		cands = append(cands, lin)
	}
	if len(x) >= 3 {
		if p2, err := perfmodel.PolyFit(x, y, 2); err == nil {
			cands = append(cands, p2)
		}
	}
	if pl, err := perfmodel.PowerLawFit(x, y); err == nil {
		cands = append(cands, pl)
	}
	best := perfmodel.SelectBest(cands, x, y)
	if best == nil {
		return nil, fmt.Errorf("no model candidate fits %d grouped points", len(x))
	}
	return best, nil
}

// fitted is the regression backend: the AIC-best univariate mean and
// sigma models over grouped statistics, plus a multilinear model over
// (Q, DCM) when the cache-miss telemetry is present in every row.
type fitted struct {
	mean    perfmodel.Model
	sigma   perfmodel.Model
	meanR2  float64
	sigmaR2 float64
	multi   *perfmodel.MultiLin
	multiR2 float64
	n       int
	qMin    float64
	qMax    float64
}

func buildFitted(q, wall, dcm []float64, hasDCM bool, stats []perfmodel.GroupStat) (*fitted, error) {
	gq, gmean := perfmodel.MeanSeries(stats)
	_, gsd := perfmodel.StdDevSeries(stats)
	mean, err := fitCandidates(gq, gmean)
	if err != nil {
		return nil, fmt.Errorf("mean fit: %w", err)
	}
	sigma, err := fitCandidates(gq, gsd)
	if err != nil {
		return nil, fmt.Errorf("sigma fit: %w", err)
	}
	f := &fitted{
		mean:    mean,
		sigma:   sigma,
		meanR2:  perfmodel.R2(mean, gq, gmean),
		sigmaR2: perfmodel.R2(sigma, gq, gsd),
		n:       len(q),
		qMin:    gq[0],
		qMax:    gq[len(gq)-1],
	}
	if hasDCM && len(q) >= 3 {
		feats := make([][]float64, len(q))
		for i := range q {
			feats[i] = []float64{q[i], dcm[i]}
		}
		if ml, err := perfmodel.MultiLinFit([]string{"Q", "DCM"}, feats, wall); err == nil {
			f.multi = &ml
			f.multiR2 = perfmodel.R2Multi(ml, feats, wall)
		}
	}
	return f, nil
}

func (f *fitted) Backend() string { return "fitted" }

func (f *fitted) Measures() []Measure {
	return []Measure{MeasureMeanUS, MeasureSigmaUS, MeasureThroughput}
}

func (f *fitted) Predict(m Measure, at Point) (float64, error) {
	switch m {
	case MeasureMeanUS:
		if at.HasDCM && f.multi != nil {
			return f.multi.PredictVec([]float64{at.Q, at.DCM}), nil
		}
		return f.mean.Predict(at.Q), nil
	case MeasureSigmaUS:
		return f.sigma.Predict(at.Q), nil
	case MeasureThroughput:
		mean, err := f.Predict(MeasureMeanUS, at)
		if err != nil {
			return 0, err
		}
		if mean <= 0 {
			return 0, fmt.Errorf("serve: fitted mean %g us at Q=%g is not positive; no throughput", mean, at.Q)
		}
		return 1e6 / mean, nil
	}
	return 0, fmt.Errorf("serve: measure %q not supported by the fitted backend (supports mean_us, sigma_us, throughput_per_s)", m)
}

func (f *fitted) Coefficients() []Coefficient {
	var out []Coefficient
	names, values := perfmodel.Coefficients(f.mean)
	for i := range names {
		out = append(out, Coefficient{Model: "mean", Name: names[i], Value: values[i]})
	}
	names, values = perfmodel.Coefficients(f.sigma)
	for i := range names {
		out = append(out, Coefficient{Model: "sigma", Name: names[i], Value: values[i]})
	}
	if f.multi != nil {
		out = append(out, Coefficient{Model: "multi", Name: "c0", Value: f.multi.Coeffs[0]})
		for i, n := range f.multi.Names {
			out = append(out, Coefficient{Model: "multi", Name: n, Value: f.multi.Coeffs[i+1]})
		}
	}
	return out
}

func (f *fitted) Describe() string {
	s := fmt.Sprintf("mean_us = %s (R2=%.4g); sigma_us = %s (R2=%.4g)",
		f.mean.String(), f.meanR2, f.sigma.String(), f.sigmaR2)
	if f.multi != nil {
		s += fmt.Sprintf("; multi: wall_us = %s (R2=%.4g)", f.multi.String(), f.multiR2)
	}
	return s + fmt.Sprintf("; fit over %d rows, Q in [%g, %g]", f.n, f.qMin, f.qMax)
}

// queue is the closed-form backend: the scenario's grouped mean wall
// time is the service demand s(Q) of an M/M/1 server (interpolated
// piecewise-linearly between measured Q values, clamped outside them),
// and the open-system measures follow from rho = lambda * s(Q):
// response R = s / (1 - rho), utilization rho, throughput lambda.
type queue struct {
	knots []perfmodel.GroupStat
}

func buildQueue(stats []perfmodel.GroupStat) *queue {
	return &queue{knots: stats}
}

// service interpolates the service demand at Q, microseconds.
func (qm *queue) service(q float64) float64 {
	k := qm.knots
	if q <= k[0].Q {
		return k[0].Mean
	}
	if q >= k[len(k)-1].Q {
		return k[len(k)-1].Mean
	}
	i := sort.Search(len(k), func(i int) bool { return k[i].Q >= q })
	lo, hi := k[i-1], k[i]
	t := (q - lo.Q) / (hi.Q - lo.Q)
	return lo.Mean + t*(hi.Mean-lo.Mean)
}

func (qm *queue) Backend() string { return "queue" }

func (qm *queue) Measures() []Measure {
	return []Measure{MeasureMeanUS, MeasureResponseUS, MeasureUtilization, MeasureThroughput}
}

func (qm *queue) Predict(m Measure, at Point) (float64, error) {
	s := qm.service(at.Q)
	switch m {
	case MeasureMeanUS:
		return s, nil
	case MeasureUtilization:
		if at.Lambda <= 0 {
			return 0, fmt.Errorf("serve: measure %q needs lambda > 0 (arrivals per second)", m)
		}
		return at.Lambda * s / 1e6, nil
	case MeasureResponseUS:
		rho, err := qm.Predict(MeasureUtilization, at)
		if err != nil {
			return 0, err
		}
		if rho >= 1 {
			return 0, fmt.Errorf("serve: queue saturated at Q=%g, lambda=%g: utilization %.4g >= 1", at.Q, at.Lambda, rho)
		}
		return s / (1 - rho), nil
	case MeasureThroughput:
		if at.Lambda <= 0 {
			if s <= 0 {
				return 0, fmt.Errorf("serve: service demand %g us at Q=%g is not positive; no throughput", s, at.Q)
			}
			return 1e6 / s, nil // capacity: the saturation rate
		}
		rho := at.Lambda * s / 1e6
		if rho >= 1 {
			return 0, fmt.Errorf("serve: queue saturated at Q=%g, lambda=%g: utilization %.4g >= 1", at.Q, at.Lambda, rho)
		}
		return at.Lambda, nil // stable open system: out = in
	}
	return 0, fmt.Errorf("serve: measure %q not supported by the queue backend (supports mean_us, response_us, utilization, throughput_per_s)", m)
}

func (qm *queue) Coefficients() []Coefficient {
	out := make([]Coefficient, 0, len(qm.knots))
	for _, k := range qm.knots {
		out = append(out, Coefficient{Model: "service_us", Name: fmt.Sprintf("s(%g)", k.Q), Value: k.Mean})
	}
	return out
}

func (qm *queue) Describe() string {
	k := qm.knots
	var capPerS float64
	if m := k[len(k)-1].Mean; m > 0 {
		capPerS = 1e6 / m
	}
	return fmt.Sprintf("M/M/1 over measured service demand: %d knots, Q in [%g, %g], s in [%g, %g] us, capacity at Qmax %.4g/s",
		len(k), k[0].Q, k[len(k)-1].Q, minMean(k), maxMean(k), capPerS)
}

func minMean(k []perfmodel.GroupStat) float64 {
	m := math.Inf(1)
	for _, s := range k {
		m = math.Min(m, s.Mean)
	}
	return m
}

func maxMean(k []perfmodel.GroupStat) float64 {
	m := math.Inf(-1)
	for _, s := range k {
		m = math.Max(m, s.Mean)
	}
	return m
}
