// Package results is the streaming result subsystem of the experiment
// campaigns: instead of buffering whole sweep or case-study values in
// memory, jobs emit rows into a Sink as they complete, so a grid can grow
// to thousands of scenarios without proportional memory.
//
// A Row is an ordered list of named, typed fields. A Sink consumes rows
// under a result key (typically the emitting job's campaign key); every
// Sink in this package is safe for concurrent Emit from worker goroutines,
// and output is deterministic because rows are ordered per key: one job
// owns one key and emits its rows in order, so interleaving across keys
// never changes what any key's consumer sees.
//
// Implementations: MemorySink buffers rows per key (tests, small studies);
// AggSink folds rows into on-the-fly mean/min/max/stddev statistics per
// key and never retains them; CSVShardSink writes one CSV shard file per
// key; Tee fans rows out to several sinks at once. The checkpoint store
// that complements this package lives in results/store.
package results

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Field is one named value of a row. Value should be an int, int64,
// float64, string, bool or fmt.Stringer; CSV encoding renders anything
// else with fmt.Sprint.
type Field struct {
	Name  string
	Value any
}

// Row is one emitted result record: an ordered list of named fields. The
// first row emitted under a key fixes the key's column set.
type Row []Field

// F is shorthand for constructing a Field.
func F(name string, value any) Field { return Field{Name: name, Value: value} }

// Names returns the row's field names in order.
func (r Row) Names() []string {
	names := make([]string, len(r))
	for i, f := range r {
		names[i] = f.Name
	}
	return names
}

// Float returns the field's value as a float64 when it is numeric.
func (f Field) Float() (float64, bool) {
	switch v := f.Value.(type) {
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	case float64:
		return v, true
	}
	return 0, false
}

// Sink consumes result rows emitted by campaign jobs. Emit may be called
// concurrently from many goroutines; rows emitted under one key must come
// from one goroutine at a time if their relative order matters (which is
// how campaign jobs behave: one job, one key). Flush forces buffered data
// out; Close flushes and releases resources, after which Emit fails.
type Sink interface {
	Emit(key string, row Row) error
	Flush() error
	Close() error
}

// MemorySink buffers rows per key in memory — the buffered compatibility
// sink for tests and small studies.
type MemorySink struct {
	mu   sync.Mutex
	rows map[string][]Row
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink {
	return &MemorySink{rows: map[string][]Row{}}
}

// Emit implements Sink.
func (s *MemorySink) Emit(key string, row Row) error {
	r := make(Row, len(row))
	copy(r, row)
	s.mu.Lock()
	s.rows[key] = append(s.rows[key], r)
	s.mu.Unlock()
	return nil
}

// Flush implements Sink (no-op).
func (s *MemorySink) Flush() error { return nil }

// Close implements Sink (no-op; the buffered rows stay readable).
func (s *MemorySink) Close() error { return nil }

// Keys returns the emitted keys, sorted.
func (s *MemorySink) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.rows))
	for k := range s.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Rows returns the rows emitted under key, in emission order.
func (s *MemorySink) Rows(key string) []Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows[key]
}

// Stat is a running aggregate of one numeric field under one key.
type Stat struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
}

// aggAcc accumulates one field's moments with Welford's online update:
// the naive sumSq/n - mean^2 form cancels catastrophically when the
// values are large and the spread is small (exactly what microsecond
// telemetry looks like late in a long virtual run).
type aggAcc struct {
	n        int
	mean, m2 float64
	min, max float64
}

func (a *aggAcc) add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

func (a *aggAcc) stat() Stat {
	return Stat{
		N: a.n, Mean: a.mean,
		StdDev: math.Sqrt(a.m2 / float64(a.n)),
		Min:    a.min, Max: a.max,
	}
}

// aggGroup is one key's accumulators, field order preserved.
type aggGroup struct {
	fields map[string]*aggAcc
	order  []string
}

// AggSink aggregates numeric fields on the fly: per key it keeps running
// count/mean/stddev/min/max for every numeric field and discards the rows
// themselves, so memory is bounded by the number of distinct (key, field)
// pairs, not by the number of emitted rows. Non-numeric fields are ignored.
type AggSink struct {
	mu     sync.Mutex
	groups map[string]*aggGroup
}

// NewAggSink returns an empty aggregating sink.
func NewAggSink() *AggSink {
	return &AggSink{groups: map[string]*aggGroup{}}
}

// Emit implements Sink.
func (s *AggSink) Emit(key string, row Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[key]
	if g == nil {
		g = &aggGroup{fields: map[string]*aggAcc{}}
		s.groups[key] = g
	}
	for _, f := range row {
		v, ok := f.Float()
		if !ok {
			continue
		}
		acc := g.fields[f.Name]
		if acc == nil {
			acc = &aggAcc{}
			g.fields[f.Name] = acc
			g.order = append(g.order, f.Name)
		}
		acc.add(v)
	}
	return nil
}

// Flush implements Sink (no-op).
func (s *AggSink) Flush() error { return nil }

// Close implements Sink (no-op; the aggregates stay readable).
func (s *AggSink) Close() error { return nil }

// Keys returns the aggregated keys, sorted.
func (s *AggSink) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.groups))
	for k := range s.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Fields returns a key's numeric field names in first-seen order.
func (s *AggSink) Fields(key string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[key]
	if g == nil {
		return nil
	}
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Stat returns the running aggregate of one field under one key.
func (s *AggSink) Stat(key, field string) (Stat, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[key]
	if g == nil {
		return Stat{}, false
	}
	acc := g.fields[field]
	if acc == nil {
		return Stat{}, false
	}
	return acc.stat(), true
}

// WriteCSV writes every aggregate as one CSV table (key, field, n, mean,
// stddev, min, max), keys sorted and fields in first-seen order.
func (s *AggSink) WriteCSV(w io.Writer) error {
	enc := NewCSVEncoder(w)
	for _, key := range s.Keys() {
		for _, field := range s.Fields(key) {
			st, _ := s.Stat(key, field)
			if err := enc.Encode(Row{
				F("key", key), F("field", field), F("n", st.N),
				F("mean", st.Mean), F("stddev", st.StdDev),
				F("min", st.Min), F("max", st.Max),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// tee fans every call out to all wrapped sinks.
type tee struct {
	sinks []Sink
}

// NewTee returns a Sink that forwards every Emit/Flush/Close to all the
// given sinks, joining their errors.
func NewTee(sinks ...Sink) Sink {
	cp := make([]Sink, len(sinks))
	copy(cp, sinks)
	return &tee{sinks: cp}
}

// Emit implements Sink.
func (t *tee) Emit(key string, row Row) error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.Emit(key, row); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Flush implements Sink.
func (t *tee) Flush() error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close implements Sink.
func (t *tee) Close() error {
	var errs []error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Discard is a Sink that drops every row — the nil-safe default when a
// campaign has no sink configured.
var Discard Sink = discard{}

type discard struct{}

func (discard) Emit(string, Row) error { return nil }
func (discard) Flush() error           { return nil }
func (discard) Close() error           { return nil }

// formatValue renders a field value the way the repository's hand-rolled
// CSV writers did: ints via %d, floats via %g, strings and Stringers
// verbatim.
func formatValue(v any) string {
	switch x := v.(type) {
	case int:
		return fmt.Sprintf("%d", x)
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	case string:
		return x
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprint(v)
}
