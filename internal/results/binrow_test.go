package results

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// binTestRows mirrors the field shapes the harness emits: ints, floats,
// strings and a Stringer (euler.Dir renders through String in CSV).
type binDirStringer int

func (d binDirStringer) String() string {
	if d == 0 {
		return "X"
	}
	return "Y"
}

func binTestRows() []Row {
	var rows []Row
	for i := 0; i < 5; i++ {
		rows = append(rows, Row{
			F("rank", i%3),
			F("q", 1000*(i+1)),
			F("mode", binDirStringer(i%2)),
			F("wall_us", 12.5*float64(i)+0.125),
			F("l2_dcm", float64(i*i)*1e3),
			F("label", fmt.Sprintf("s%d", i)),
			F("flag", i%2 == 0),
		})
	}
	return rows
}

func encodeRows(t *testing.T, enc interface{ Encode(Row) error }, rows []Row) {
	t.Helper()
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBinRoundTripMatchesCSVBytes(t *testing.T) {
	rows := binTestRows()

	// CSV of the original rows — the reference bytes.
	var csvRef bytes.Buffer
	encodeRows(t, NewCSVEncoder(&csvRef), rows)

	// Binary encode, decode, and re-encode both ways.
	var bin bytes.Buffer
	encodeRows(t, NewBinEncoder(&bin), rows)
	decoded, err := ReadBinRows(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(decoded), len(rows))
	}
	var csvFromBin bytes.Buffer
	encodeRows(t, NewCSVEncoder(&csvFromBin), decoded)
	if !bytes.Equal(csvFromBin.Bytes(), csvRef.Bytes()) {
		t.Errorf("CSV re-encoded from binary differs:\n got %q\nwant %q", csvFromBin.String(), csvRef.String())
	}

	// Binary re-encode of the decoded rows is byte-identical too: the
	// format is a pure function of the logical row.
	var bin2 bytes.Buffer
	encodeRows(t, NewBinEncoder(&bin2), decoded)
	if !bytes.Equal(bin2.Bytes(), bin.Bytes()) {
		t.Error("binary encode(decode(encode)) not byte-identical")
	}
}

func TestBinReaderRejectsCorruptShards(t *testing.T) {
	var good bytes.Buffer
	encodeRows(t, NewBinEncoder(&good), binTestRows())
	full := good.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", full[:3]},
		{"bad magic", append([]byte("XXXX\x01"), full[5:]...)},
		{"bad version", append([]byte(binMagic+"\x07"), full[5:]...)},
		{"truncated mid-row", full[:len(full)-3]},
		{"trailing garbage length", append(append([]byte{}, full...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBinRows(bytes.NewReader(tc.data)); err == nil {
				t.Error("corrupt shard accepted")
			}
		})
	}

	// A clean shard still reads after all that.
	if rows, err := ReadBinRows(bytes.NewReader(full)); err != nil || len(rows) != 5 {
		t.Fatalf("clean shard: rows=%d err=%v", len(rows), err)
	}
}

func TestBinReaderRejectsUnknownTag(t *testing.T) {
	var buf bytes.Buffer
	enc := NewBinEncoder(&buf)
	if err := enc.Encode(Row{F("v", 1)}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The tag byte of field "v": header(5) + rowlen(1) + nfields(1) +
	// namelen(1) + name(1) = offset 9.
	data[9] = 0x7f
	if _, err := ReadBinRows(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "unknown tag") {
		t.Errorf("unknown tag accepted: %v", err)
	}
}

func TestBinShardSinkMirrorsCSVShardSink(t *testing.T) {
	dir := t.TempDir()
	csvSink, err := NewCSVShardSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	binSink, err := NewBinShardSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	tee := NewTee(csvSink, binSink)
	keys := []string{"p2/base/c128kB/r0", "p2/base/c512kB/r0"}
	rows := binTestRows()
	for _, k := range keys {
		for _, r := range rows {
			if err := tee.Emit(k, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		csvPath := csvSink.ShardPath(k)
		binPath := binSink.ShardPath(k)
		if filepath.Ext(binPath) != ".bin" {
			t.Fatalf("bin shard path %q", binPath)
		}
		// Same stem, different extension: sibling files.
		if strings.TrimSuffix(csvPath, ".csv") != strings.TrimSuffix(binPath, ".bin") {
			t.Errorf("shard stems differ: %q vs %q", csvPath, binPath)
		}
		csvBytes, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		binRows, err := ReadRowsFile(binPath)
		if err != nil {
			t.Fatal(err)
		}
		var reenc bytes.Buffer
		encodeRows(t, NewCSVEncoder(&reenc), binRows)
		if !bytes.Equal(reenc.Bytes(), csvBytes) {
			t.Errorf("key %q: binary shard does not round-trip to the CSV shard bytes", k)
		}
		// The CSV read side agrees with the binary read side after CSV's
		// best-effort typing is normalized through a re-encode.
		csvRows, err := ReadRowsFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		var fromCSV bytes.Buffer
		encodeRows(t, NewCSVEncoder(&fromCSV), csvRows)
		if !bytes.Equal(fromCSV.Bytes(), csvBytes) {
			t.Errorf("key %q: CSV decode+re-encode changed bytes", k)
		}
	}
}

func TestBinShardSinkAppendReopen(t *testing.T) {
	// Force evictions so shards are reopened in append mode: the magic
	// header must not be written twice.
	dir := t.TempDir()
	sink, err := NewBinShardSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	sink.maxOpen = 1
	rows := binTestRows()
	for i, r := range rows {
		key := fmt.Sprintf("k%d", i%3) // interleave 3 keys through 1 slot
		if err := sink.Emit(key, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := ReadRowsFile(filepath.Join(dir, fmt.Sprintf("k%d.bin", i)))
		if err != nil {
			t.Fatalf("k%d: %v", i, err)
		}
		want := (len(rows) + 2 - i) / 3
		if len(got) != want {
			t.Errorf("k%d: %d rows, want %d", i, len(got), want)
		}
	}
}
