package mpi

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/platform"
)

// chargeAndClock runs a one-rank world whose body charges a fixed mix of
// flops and memory traffic, returning the final virtual clock.
func chargeAndClock(t *testing.T, cfg WorldConfig) float64 {
	t.Helper()
	cfg.Procs = 1
	var clock float64
	w := NewWorld(cfg)
	if err := w.Run(func(r *Rank) {
		base := r.Proc.Alloc(1 << 20)
		r.Proc.ChargeFlops(10_000)
		r.Proc.ChargeStream(base, 4096, 8)    // sequential
		r.Proc.ChargeStream(base, 4096, 4096) // strided, misses
		clock = r.Proc.Now()
	}); err != nil {
		t.Fatal(err)
	}
	return clock
}

// TestCPUTuneDefaultsBitForBit pins the satellite contract: both the zero
// tune and the explicit identity tune leave calibrated timings bit-for-bit
// unchanged, so every pre-Tune config measures exactly what it used to.
func TestCPUTuneDefaultsBitForBit(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	ref := chargeAndClock(t, cfg)

	zero := cfg
	zero.Tune = CPUTune{}
	if got := chargeAndClock(t, zero); got != ref {
		t.Errorf("zero tune drifted the clock: %v vs %v", got, ref)
	}
	one := cfg
	one.Tune = CPUTune{ClockScale: 1, HitScale: 1, MissScale: 1}
	if got := chargeAndClock(t, one); got != ref {
		t.Errorf("identity tune drifted the clock: %v vs %v", got, ref)
	}
}

// TestCPUTuneScalesTimings checks each knob moves virtual time the right
// way: a faster clock shrinks everything proportionally, and a heavier
// miss penalty slows memory-bound work without touching pure compute.
func TestCPUTuneScalesTimings(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	ref := chargeAndClock(t, cfg)

	fast := cfg
	fast.Tune = CPUTune{ClockScale: 2}
	if got := chargeAndClock(t, fast); got >= ref {
		t.Errorf("doubled clock did not speed up: %v vs %v", got, ref)
	} else if ratio := ref / got; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubled clock scaled time by %v, want ~2", ratio)
	}

	slowMem := cfg
	slowMem.Tune = CPUTune{MissScale: 4}
	if got := chargeAndClock(t, slowMem); got <= ref {
		t.Errorf("quadrupled miss penalty did not slow down: %v vs %v", got, ref)
	}

	m := CPUTune{ClockScale: 2, HitScale: 0.5, MissScale: 3}.Apply(platform.XeonModel())
	x := platform.XeonModel()
	if m.ClockGHz != 2*x.ClockGHz || m.HitCycles != 0.5*x.HitCycles || m.MissCycles != 3*x.MissCycles {
		t.Errorf("Apply scaled wrong: %+v", m)
	}
	if m.CyclesPerFlop != x.CyclesPerFlop || m.SeqMissFactor != x.SeqMissFactor || m.CallCycles != x.CallCycles {
		t.Errorf("Apply touched unrelated fields: %+v", m)
	}
}

// TestWorldConfigGoString pins the hash-critical rendering contract: a
// zero tune renders exactly like the pre-Tune struct (no Tune field at
// all), a set tune appends one.
func TestWorldConfigGoString(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	s := fmt.Sprintf("%#v", cfg)
	if strings.Contains(s, "Tune") {
		t.Errorf("zero tune leaked into rendering: %s", s)
	}
	if !strings.HasPrefix(s, "mpi.WorldConfig{Procs:3, CPU:platform.CPUModel{") {
		t.Errorf("unexpected rendering prefix: %s", s)
	}
	if !strings.HasSuffix(s, "InitUS:0, FinalizeUS:0}") {
		t.Errorf("unexpected rendering suffix: %s", s)
	}

	cfg.Tune = CPUTune{ClockScale: 2}
	s = fmt.Sprintf("%#v", cfg)
	if !strings.HasSuffix(s, "Tune:mpi.CPUTune{ClockScale:2, HitScale:0, MissScale:0}}") {
		t.Errorf("tuned rendering missing Tune suffix: %s", s)
	}
}
