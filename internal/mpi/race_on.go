//go:build race

package mpi

// raceEnabled reports whether this build runs under the race detector.
// The heavyweight stress grids trim themselves when it is on: the
// detector multiplies both memory and runtime by small constants, and CI
// runs the full grids in the regular test job anyway.
const raceEnabled = true
