package mpi

import "fmt"

// Wildcards for Recv/Irecv matching.
const (
	// AnySource matches a message from any rank (MPI_ANY_SOURCE).
	AnySource = -1
	// AnyTag matches a message with any tag (MPI_ANY_TAG).
	AnyTag = -2
)

// Comm is a communicator: an ordered group of ranks with a private message
// space. Comm methods must be called by the owning rank's goroutine inside
// World.Run.
//
// Entry points fall in two classes. Rank-local operations (Send, Isend,
// Irecv, Cancel, Wtime, ErrhandlerSet) touch only the calling rank's clock,
// profile and request objects, so under ConservativeParallel they run
// without any synchronization — this is the run-ahead that buys wall-clock
// parallelism (sends buffer their fully computed message for the rank's
// next commit turn). Shared operations (Recv, Wait*, all collectives,
// KeyvalCreate) read or write order-sensitive world state and commit under
// the token discipline via World.lockShared.
type Comm struct {
	world *World
	id    int
	rank  int   // this rank's position within group
	group []int // world ranks of the members
	r     *Rank
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.group) }

// checkPeer validates a peer rank within the communicator.
func (c *Comm) checkPeer(peer int) {
	if peer < 0 || peer >= len(c.group) {
		panic(fmt.Sprintf("mpi: rank %d out of range for communicator of size %d", peer, len(c.group)))
	}
}

// enter wraps an MPI entry point in its TAU timer (group "MPI") and charges
// the fixed software overhead. It returns the function that closes the
// timer. Profile and clock are rank-local, so no lock is needed.
func (c *Comm) enter(name string) func() {
	c.r.Prof.Start(name, "MPI")
	c.r.Proc.Advance(c.world.cfg.Net.SoftwareUS)
	trk := c.world.rankTrack(c.r.rank)
	if trk == nil {
		return func() { c.r.Prof.Stop(name) }
	}
	// Observed: the gap since the previous MPI return is this rank's
	// compute segment, and the entry itself becomes a span. lastOpEnd is
	// rank-local (each rank's entry points run on its own goroutine).
	now := trk.Now()
	if last := c.r.lastOpEnd; last != 0 && now > last {
		trk.Span("compute", "compute", last, now-last)
	}
	sp := trk.Begin("mpi", name)
	return func() {
		c.r.Prof.Stop(name)
		sp.End()
		c.r.lastOpEnd = trk.Now()
	}
}

// bytesOf returns the payload size of a float64 message in bytes.
func bytesOf(n int) int { return 8 * n }

// Request represents a pending nonblocking operation. Requests are owned
// by the rank that created them and must not be shared across ranks.
type Request struct {
	comm     *Comm
	isRecv   bool
	src, tag int
	buf      []float64
	done     bool
	canceled bool
	n        int
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Canceled reports whether the request was canceled.
func (r *Request) Canceled() bool { return r.canceled }

// Count returns the number of float64 values received (0 for sends).
func (r *Request) Count() int { return r.n }

// postSend computes the virtual arrival time and delivers the message: in
// serial mode it enqueues directly (under the world lock); in parallel
// mode it buffers the fully computed message rank-locally, to be flushed
// in program order at the rank's next commit turn. Arrival time and noise
// draw use only the sender's clock and RNG, so the buffered message is
// bit-identical to the one the serial scheduler would enqueue.
func (c *Comm) postSend(dst, tag int, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	arrive := c.r.Proc.Now() + c.world.cfg.Net.PointToPoint(bytesOf(len(data)), c.r.Proc.RNG())
	m := &message{src: c.rank, tag: tag, data: cp, arrive: arrive}
	key := mailKey{comm: c.id, dst: c.group[dst]}
	w := c.world
	if w.opt {
		c.optPostSend(key, m)
	} else if w.par {
		c.r.pending = append(c.r.pending, pendingSend{key: key, msg: m})
	} else {
		w.mu.Lock()
		w.enqueueLocked(key, m)
		w.mu.Unlock()
	}
	c.r.Prof.TriggerEvent("Message size sent", float64(bytesOf(len(data))))
}

// consume completes a matched receive: the receiver's clock advances to the
// arrival time plus the local copy cost, and the payload lands in buf.
// Caller must hold the world lock.
func (c *Comm) consumeLocked(m *message, req *Request) {
	if len(m.data) > len(req.buf) {
		panic(fmt.Sprintf("mpi: message of %d values truncated into buffer of %d", len(m.data), len(req.buf)))
	}
	c.r.Proc.SyncTo(m.arrive)
	n := copy(req.buf, m.data)
	// Local copy cost out of the receive buffer.
	copyUS := float64(bytesOf(n)) / copyBytesPerUS
	c.r.Proc.Advance(copyUS)
	req.n = n
	req.done = true
	c.r.Prof.TriggerEvent("Message size received", float64(bytesOf(n)))
}

// copyBytesPerUS is the memory-copy bandwidth used for landing received
// payloads (about 1.5 GB/s, the paper-era memcpy rate).
const copyBytesPerUS = 1500.0

// Send performs a blocking standard-mode send. Small/medium messages are
// modeled as eagerly buffered: the sender pays the software overhead and a
// local copy, and the message arrives at the destination after the network
// delay. A rank-local operation: it never blocks the sender.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.checkPeer(dst)
	stop := c.enter("MPI_Send()")
	defer stop()
	c.r.Proc.Advance(float64(bytesOf(len(data))) / copyBytesPerUS)
	c.postSend(dst, tag, data)
}

// Recv performs a blocking receive into buf, returning the number of
// float64 values received.
func (c *Comm) Recv(src, tag int, buf []float64) int {
	if src != AnySource {
		c.checkPeer(src)
	}
	stop := c.enter("MPI_Recv()")
	defer stop()
	w := c.world
	if w.opt {
		req := &Request{comm: c, isRecv: true, src: src, tag: tag, buf: buf}
		c.optCompleteRecvs("MPI_Recv()", []*Request{req})
		return req.n
	}
	w.lockShared(c.r.rank)
	defer w.mu.Unlock()
	key := mailKey{comm: c.id, dst: c.group[c.rank]}
	w.blockOn(c.r.rank, blockDesc{op: "MPI_Recv()", comm: c.id, src: src, tag: tag},
		func() bool { return w.hasMatchLocked(key, src, tag) })
	if w.aborted {
		panic(abortPanic{})
	}
	m := w.matchLocked(key, src, tag)
	req := &Request{comm: c, isRecv: true, src: src, tag: tag, buf: buf}
	c.consumeLocked(m, req)
	return req.n
}

// Isend starts a nonblocking send. The returned request is immediately
// complete (eager buffering), matching how the paper's ghost-cell update
// posts all sends before waiting on receives.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	c.checkPeer(dst)
	stop := c.enter("MPI_Isend()")
	defer stop()
	c.postSend(dst, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a nonblocking receive into buf. Complete it with Wait,
// Waitall or Waitsome. Posting is rank-local; only completion touches the
// shared message space.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	if src != AnySource {
		c.checkPeer(src)
	}
	stop := c.enter("MPI_Irecv()")
	defer stop()
	return &Request{comm: c, isRecv: true, src: src, tag: tag, buf: buf}
}

// waitLocked completes one request, blocking if necessary.
func (c *Comm) waitLocked(op string, req *Request) {
	if req.done || req.canceled {
		return
	}
	if !req.isRecv {
		req.done = true
		return
	}
	w := c.world
	key := mailKey{comm: req.comm.id, dst: req.comm.group[req.comm.rank]}
	w.blockOn(c.r.rank, blockDesc{op: op, comm: req.comm.id, src: req.src, tag: req.tag},
		func() bool { return w.hasMatchLocked(key, req.src, req.tag) })
	if w.aborted {
		panic(abortPanic{})
	}
	m := w.matchLocked(key, req.src, req.tag)
	req.comm.consumeLocked(m, req)
}

// pendingRecvs counts the posted receives in reqs that are still open.
func pendingRecvs(reqs []*Request) int {
	n := 0
	for _, r := range reqs {
		if r.isRecv && !r.done && !r.canceled {
			n++
		}
	}
	return n
}

// Wait blocks until the request completes.
func (c *Comm) Wait(req *Request) {
	stop := c.enter("MPI_Wait()")
	defer stop()
	if req.done || req.canceled || !req.isRecv {
		if !req.isRecv {
			req.done = true
		}
		return
	}
	w := c.world
	if w.opt {
		c.optCompleteRecvs("MPI_Wait()", []*Request{req})
		return
	}
	w.lockShared(c.r.rank)
	defer w.mu.Unlock()
	c.waitLocked("MPI_Wait()", req)
}

// Waitall blocks until every request completes.
func (c *Comm) Waitall(reqs []*Request) {
	stop := c.enter("MPI_Waitall()")
	defer stop()
	if pendingRecvs(reqs) == 0 {
		// Only sends (already complete at posting) and settled requests:
		// nothing touches the shared message space.
		for _, r := range reqs {
			if !r.done && !r.canceled && !r.isRecv {
				r.done = true
			}
		}
		return
	}
	w := c.world
	if w.opt {
		for _, r := range reqs {
			if !r.done && !r.canceled && !r.isRecv {
				r.done = true
			}
		}
		c.optCompleteRecvs("MPI_Waitall()", reqs)
		return
	}
	w.lockShared(c.r.rank)
	defer w.mu.Unlock()
	for _, r := range reqs {
		c.waitLocked("MPI_Waitall()", r)
	}
}

// Waitsome blocks until at least one of the pending requests completes and
// returns the indices of all requests completed by this call, in posting
// order. It returns nil when no request is pending (MPI_UNDEFINED). This is
// the call the paper's AMRMesh spends ~25% of its time in (Fig. 3): ghost
// updates and the load-balancing redistribution both post batches of
// nonblocking receives and drain them with Waitsome.
func (c *Comm) Waitsome(reqs []*Request) []int {
	stop := c.enter("MPI_Waitsome()")
	defer stop()

	// Complete any finished sends without blocking — a rank-local fast
	// path: send requests are complete at posting and never consult the
	// shared message space.
	var out []int
	pendingRecv := 0
	for i, r := range reqs {
		if r.done || r.canceled {
			continue
		}
		if !r.isRecv {
			r.done = true
			out = append(out, i)
			continue
		}
		pendingRecv++
	}
	if len(out) > 0 {
		return out
	}
	if pendingRecv == 0 {
		return nil
	}

	w := c.world
	if w.opt {
		return c.optWaitsome(reqs)
	}
	w.lockShared(c.r.rank)
	defer w.mu.Unlock()
	ready := func() bool {
		for _, r := range reqs {
			if r.isRecv && !r.done && !r.canceled {
				key := mailKey{comm: r.comm.id, dst: r.comm.group[r.comm.rank]}
				if w.hasMatchLocked(key, r.src, r.tag) {
					return true
				}
			}
		}
		return false
	}
	w.blockOn(c.r.rank, blockDesc{op: "MPI_Waitsome()", comm: c.id, pending: pendingRecv}, ready)
	if w.aborted {
		panic(abortPanic{})
	}
	for i, r := range reqs {
		if !r.isRecv || r.done || r.canceled {
			continue
		}
		key := mailKey{comm: r.comm.id, dst: r.comm.group[r.comm.rank]}
		if m := w.matchLocked(key, r.src, r.tag); m != nil {
			r.comm.consumeLocked(m, r)
			out = append(out, i)
		}
	}
	return out
}

// Cancel cancels a pending receive request that has not yet been matched.
// Canceling a completed request is a no-op, as in MPI. Rank-local: the
// request belongs to the calling rank.
func (c *Comm) Cancel(req *Request) {
	stop := c.enter("MPI_Cancel()")
	defer stop()
	if !req.done {
		req.canceled = true
	}
}

// Wtime returns the rank's virtual time in seconds (MPI_Wtime semantics).
func (c *Comm) Wtime() float64 {
	stop := c.enter("MPI_Wtime()")
	defer stop()
	return c.r.Proc.Now() * 1e-6
}

// Init models MPI_Init: a synchronizing startup with a substantial
// one-time cost (the Fig. 3 profile shows ~0.66 s per rank).
func (c *Comm) Init() {
	stop := c.enter("MPI_Init()")
	defer stop()
	c.r.Proc.Advance(c.world.cfg.InitUS)
	c.collective(collBarrier, nil, 0, OpSum)
}

// Finalize models MPI_Finalize: a synchronizing teardown.
func (c *Comm) Finalize() {
	stop := c.enter("MPI_Finalize()")
	defer stop()
	c.collective(collBarrier, nil, 0, OpSum)
	c.r.Proc.Advance(c.world.cfg.FinalizeUS)
}

// KeyvalCreate models MPI_Keyval_create: it allocates a fresh attribute key
// (the paper's framework calls it during startup). Id allocation is
// order-sensitive shared state, so it commits under the token.
func (c *Comm) KeyvalCreate() int {
	stop := c.enter("MPI_Keyval_create()")
	defer stop()
	w := c.world
	if w.opt {
		return c.optKeyvalCreate()
	}
	w.lockShared(c.r.rank)
	defer w.mu.Unlock()
	w.nextCommID++ // reuse the id space for keyvals; uniqueness is all MPI promises
	return w.nextCommID
}

// ErrhandlerSet models MPI_Errhandler_set: bookkeeping only.
func (c *Comm) ErrhandlerSet() {
	stop := c.enter("MPI_Errhandler_set()")
	defer stop()
}
