package mpi

import "fmt"

// Wildcards for Recv/Irecv matching.
const (
	// AnySource matches a message from any rank (MPI_ANY_SOURCE).
	AnySource = -1
	// AnyTag matches a message with any tag (MPI_ANY_TAG).
	AnyTag = -2
)

// Comm is a communicator: an ordered group of ranks with a private message
// space. Comm methods must be called by the owning rank's goroutine inside
// World.Run.
type Comm struct {
	world *World
	id    int
	rank  int   // this rank's position within group
	group []int // world ranks of the members
	r     *Rank
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.group) }

// checkPeer validates a peer rank within the communicator.
func (c *Comm) checkPeer(peer int) {
	if peer < 0 || peer >= len(c.group) {
		panic(fmt.Sprintf("mpi: rank %d out of range for communicator of size %d", peer, len(c.group)))
	}
}

// enter wraps an MPI entry point in its TAU timer (group "MPI") and charges
// the fixed software overhead. It returns the function that closes the
// timer.
func (c *Comm) enter(name string) func() {
	c.r.Prof.Start(name, "MPI")
	c.r.Proc.Advance(c.world.cfg.Net.SoftwareUS)
	return func() { c.r.Prof.Stop(name) }
}

// bytesOf returns the payload size of a float64 message in bytes.
func bytesOf(n int) int { return 8 * n }

// Request represents a pending nonblocking operation.
type Request struct {
	comm     *Comm
	isRecv   bool
	src, tag int
	buf      []float64
	done     bool
	canceled bool
	n        int
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Canceled reports whether the request was canceled.
func (r *Request) Canceled() bool { return r.canceled }

// Count returns the number of float64 values received (0 for sends).
func (r *Request) Count() int { return r.n }

// postSend computes the virtual arrival time and enqueues the message.
// Caller must hold the world lock.
func (c *Comm) postSendLocked(dst, tag int, data []float64) {
	cp := make([]float64, len(data))
	copy(cp, data)
	arrive := c.r.Proc.Now() + c.world.cfg.Net.PointToPoint(bytesOf(len(data)), c.r.Proc.RNG())
	c.world.enqueueLocked(mailKey{comm: c.id, dst: c.group[dst]}, &message{
		src: c.rank, tag: tag, data: cp, arrive: arrive,
	})
	c.r.Prof.TriggerEvent("Message size sent", float64(bytesOf(len(data))))
}

// consume completes a matched receive: the receiver's clock advances to the
// arrival time plus the local copy cost, and the payload lands in buf.
// Caller must hold the world lock.
func (c *Comm) consumeLocked(m *message, req *Request) {
	if len(m.data) > len(req.buf) {
		panic(fmt.Sprintf("mpi: message of %d values truncated into buffer of %d", len(m.data), len(req.buf)))
	}
	c.r.Proc.SyncTo(m.arrive)
	n := copy(req.buf, m.data)
	// Local copy cost out of the receive buffer.
	copyUS := float64(bytesOf(n)) / copyBytesPerUS
	c.r.Proc.Advance(copyUS)
	req.n = n
	req.done = true
	c.r.Prof.TriggerEvent("Message size received", float64(bytesOf(n)))
}

// copyBytesPerUS is the memory-copy bandwidth used for landing received
// payloads (about 1.5 GB/s, the paper-era memcpy rate).
const copyBytesPerUS = 1500.0

// Send performs a blocking standard-mode send. Small/medium messages are
// modeled as eagerly buffered: the sender pays the software overhead and a
// local copy, and the message arrives at the destination after the network
// delay.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.checkPeer(dst)
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Send()")
	defer stop()
	c.r.Proc.Advance(float64(bytesOf(len(data))) / copyBytesPerUS)
	c.postSendLocked(dst, tag, data)
}

// Recv performs a blocking receive into buf, returning the number of
// float64 values received.
func (c *Comm) Recv(src, tag int, buf []float64) int {
	if src != AnySource {
		c.checkPeer(src)
	}
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Recv()")
	defer stop()
	key := mailKey{comm: c.id, dst: c.group[c.rank]}
	w.blockOn(c.r.rank, func() bool { return w.hasMatchLocked(key, src, tag) })
	if w.aborted {
		panic(abortPanic{})
	}
	m := w.matchLocked(key, src, tag)
	req := &Request{comm: c, isRecv: true, src: src, tag: tag, buf: buf}
	c.consumeLocked(m, req)
	return req.n
}

// Isend starts a nonblocking send. The returned request is immediately
// complete (eager buffering), matching how the paper's ghost-cell update
// posts all sends before waiting on receives.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	c.checkPeer(dst)
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Isend()")
	defer stop()
	c.postSendLocked(dst, tag, data)
	return &Request{comm: c, done: true}
}

// Irecv posts a nonblocking receive into buf. Complete it with Wait,
// Waitall or Waitsome.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	if src != AnySource {
		c.checkPeer(src)
	}
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Irecv()")
	defer stop()
	return &Request{comm: c, isRecv: true, src: src, tag: tag, buf: buf}
}

// waitLocked completes one request, blocking if necessary.
func (c *Comm) waitLocked(req *Request) {
	if req.done || req.canceled {
		return
	}
	if !req.isRecv {
		req.done = true
		return
	}
	w := c.world
	key := mailKey{comm: req.comm.id, dst: req.comm.group[req.comm.rank]}
	w.blockOn(c.r.rank, func() bool { return w.hasMatchLocked(key, req.src, req.tag) })
	if w.aborted {
		panic(abortPanic{})
	}
	m := w.matchLocked(key, req.src, req.tag)
	req.comm.consumeLocked(m, req)
}

// Wait blocks until the request completes.
func (c *Comm) Wait(req *Request) {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Wait()")
	defer stop()
	c.waitLocked(req)
}

// Waitall blocks until every request completes.
func (c *Comm) Waitall(reqs []*Request) {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Waitall()")
	defer stop()
	for _, r := range reqs {
		c.waitLocked(r)
	}
}

// Waitsome blocks until at least one of the pending requests completes and
// returns the indices of all requests completed by this call, in posting
// order. It returns nil when no request is pending (MPI_UNDEFINED). This is
// the call the paper's AMRMesh spends ~25% of its time in (Fig. 3): ghost
// updates and the load-balancing redistribution both post batches of
// nonblocking receives and drain them with Waitsome.
func (c *Comm) Waitsome(reqs []*Request) []int {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Waitsome()")
	defer stop()

	// Complete any finished sends without blocking.
	var out []int
	pendingRecv := false
	for i, r := range reqs {
		if r.done || r.canceled {
			continue
		}
		if !r.isRecv {
			r.done = true
			out = append(out, i)
			continue
		}
		pendingRecv = true
	}
	if len(out) > 0 {
		return out
	}
	if !pendingRecv {
		return nil
	}

	ready := func() bool {
		for _, r := range reqs {
			if r.isRecv && !r.done && !r.canceled {
				key := mailKey{comm: r.comm.id, dst: r.comm.group[r.comm.rank]}
				if w.hasMatchLocked(key, r.src, r.tag) {
					return true
				}
			}
		}
		return false
	}
	w.blockOn(c.r.rank, ready)
	if w.aborted {
		panic(abortPanic{})
	}
	for i, r := range reqs {
		if !r.isRecv || r.done || r.canceled {
			continue
		}
		key := mailKey{comm: r.comm.id, dst: r.comm.group[r.comm.rank]}
		if m := w.matchLocked(key, r.src, r.tag); m != nil {
			r.comm.consumeLocked(m, r)
			out = append(out, i)
		}
	}
	return out
}

// Cancel cancels a pending receive request that has not yet been matched.
// Canceling a completed request is a no-op, as in MPI.
func (c *Comm) Cancel(req *Request) {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Cancel()")
	defer stop()
	if !req.done {
		req.canceled = true
	}
}

// Wtime returns the rank's virtual time in seconds (MPI_Wtime semantics).
func (c *Comm) Wtime() float64 {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Wtime()")
	defer stop()
	return c.r.Proc.Now() * 1e-6
}

// Init models MPI_Init: a synchronizing startup with a substantial
// one-time cost (the Fig. 3 profile shows ~0.66 s per rank).
func (c *Comm) Init() {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Init()")
	defer stop()
	c.r.Proc.Advance(w.cfg.InitUS)
	c.collectiveLocked(collBarrier, nil, 0, OpSum)
}

// Finalize models MPI_Finalize: a synchronizing teardown.
func (c *Comm) Finalize() {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Finalize()")
	defer stop()
	c.collectiveLocked(collBarrier, nil, 0, OpSum)
	c.r.Proc.Advance(w.cfg.FinalizeUS)
}

// KeyvalCreate models MPI_Keyval_create: it allocates a fresh attribute key
// (the paper's framework calls it during startup).
func (c *Comm) KeyvalCreate() int {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Keyval_create()")
	defer stop()
	w.nextCommID++ // reuse the id space for keyvals; uniqueness is all MPI promises
	return w.nextCommID
}

// ErrhandlerSet models MPI_Errhandler_set: bookkeeping only.
func (c *Comm) ErrhandlerSet() {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := c.enter("MPI_Errhandler_set()")
	defer stop()
}
