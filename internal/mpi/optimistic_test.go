package mpi

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestOptimisticForcedConflict manufactures a guaranteed misprediction: the
// receiver's wildcard Recv speculates on the only published message (rank
// 2's, who sends instantly in real time), while the serial order commits
// rank 1's message first (rank 1 has the smaller virtual clock but sleeps
// in wall-clock time before sending). The scheduler must detect the
// conflict, roll the receiver back, re-execute from the committed truth,
// and still produce a bit-identical trace.
func TestOptimisticForcedConflict(t *testing.T) {
	t.Parallel()
	body := func(sleep bool) func(r *Rank, log *[]string) {
		return func(r *Rank, log *[]string) {
			switch r.Rank() {
			case 0:
				buf := make([]float64, 4)
				for i := 0; i < 2; i++ {
					r.Comm.Recv(AnySource, AnyTag, buf)
					*log = append(*log, fmt.Sprintf("%g@%.3f", buf[0], r.Proc.Now()))
				}
			case 1:
				if sleep {
					// Wall-clock only: give rank 2's message time to be
					// published and speculatively picked first.
					time.Sleep(100 * time.Millisecond)
				}
				r.Proc.Advance(10)
				r.Comm.Send(0, 1, []float64{111})
			case 2:
				r.Proc.Advance(1000)
				r.Comm.Send(0, 2, []float64{222})
			}
		}
	}
	serial := runTraced(t, testConfig(3), body(false))

	cfg := optConfig(3)
	w := NewWorld(cfg)
	tr := worldTrace{log: make([][]string, cfg.Procs)}
	if err := w.Run(func(r *Rank) { body(true)(r, &tr.log[r.Rank()]) }); err != nil {
		t.Fatal(err)
	}
	for _, rk := range w.Ranks() {
		tr.clocks = append(tr.clocks, rk.Proc.Now())
	}
	for r := range serial.clocks {
		if serial.clocks[r] != tr.clocks[r] {
			t.Errorf("rank %d: clock %v (serial) != %v (optimistic)", r, serial.clocks[r], tr.clocks[r])
		}
		if fmt.Sprint(serial.log[r]) != fmt.Sprint(tr.log[r]) {
			t.Errorf("rank %d: receive log differs:\nserial:     %v\noptimistic: %v", r, serial.log[r], tr.log[r])
		}
	}
	s := w.SpecStats()
	if s.SpeculatedOps == 0 || s.Conflicts == 0 || s.Rollbacks == 0 {
		t.Errorf("expected a forced conflict and rollback, got %+v", s)
	}
	if s.ReexecutedUS <= 0 {
		t.Errorf("rollback should have discarded virtual time, got %+v", s)
	}
	if s.PublishedSends != 2 || s.CommittedOps == 0 {
		t.Errorf("commit telemetry wrong: %+v", s)
	}
}

// TestRollbackRestoresRankState drives a rank's undo log directly: after a
// checkpoint, the rank advances its clock, draws from its RNG, touches its
// cache, triggers TAU events and completes a request; rollback must rewind
// every one of those exactly, and re-execution must reproduce the
// discarded RNG draws bit for bit.
func TestRollbackRestoresRankState(t *testing.T) {
	t.Parallel()
	w := NewWorld(optConfig(1))
	r := w.Ranks()[0]

	// Pre-checkpoint history so the checkpoint is not the initial state.
	r.Proc.Advance(7)
	base := r.Proc.Alloc(4096)
	r.Proc.ChargeStream(base, 64, 8)
	r.Prof.TriggerEvent("Message size received", 80)
	for i := 0; i < 5; i++ {
		r.Proc.RNG().Float64()
	}

	req := &Request{comm: r.Comm, isRecv: true, src: 0, tag: 1, buf: []float64{1, 2, 3}}
	undo := r.specCheckpointLocked([]*Request{req})
	wantClock := r.Proc.Now()
	wantCounters := r.Proc.Counters()
	wantEvent := *r.Prof.Event("Message size received")
	taken := &message{src: 0, tag: 1, taken: true}
	undo.taken = append(undo.taken, taken)

	// Speculative damage: clock, FLOPs, cache, RNG, TAU events, request.
	r.Proc.Advance(123.5)
	r.Proc.ChargeFlops(999)
	r.Proc.ChargeStream(base, 256, 8)
	var speculativeDraws []float64
	for i := 0; i < 4; i++ {
		speculativeDraws = append(speculativeDraws, r.Proc.RNG().NormFloat64())
	}
	r.Prof.TriggerEvent("Message size received", 640)
	r.Prof.TriggerEvent("Message size sent", 8)
	req.done = true
	req.n = 3
	copy(req.buf, []float64{9, 9, 9})

	r.rollbackLocked(undo)

	if r.Proc.Now() != wantClock {
		t.Errorf("clock: got %v, want %v", r.Proc.Now(), wantClock)
	}
	if r.Proc.Counters() != wantCounters {
		t.Errorf("counters: got %+v, want %+v", r.Proc.Counters(), wantCounters)
	}
	if e := *r.Prof.Event("Message size received"); e != wantEvent {
		t.Errorf("TAU event not rewound: got %+v, want %+v", e, wantEvent)
	}
	if r.Prof.Event("Message size sent") != nil {
		t.Error("TAU event created during speculation must be removed")
	}
	if req.done || req.n != 0 || req.buf[0] != 1 || req.buf[2] != 3 {
		t.Errorf("request not restored: %+v buf=%v", req, req.buf)
	}
	if taken.taken {
		t.Error("tentatively taken message must return to the published pool")
	}
	// Replay: the same draws must come out of the restored RNG stream.
	for i, want := range speculativeDraws {
		if got := r.Proc.RNG().NormFloat64(); got != want {
			t.Fatalf("RNG draw %d after rollback: got %v, want %v", i, got, want)
		}
	}
}

// TestOptimisticDeadlockReportsSpeculation: the deadlock dump includes the
// speculation telemetry line under the optimistic scheduler.
func TestOptimisticDeadlockReportsSpeculation(t *testing.T) {
	t.Parallel()
	w := NewWorld(optConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			buf := make([]float64, 1)
			r.Comm.Recv(1, 3, buf) // rank 1 never sends
		}
	})
	if err == nil || !strings.Contains(err.Error(), "optimistic speculation:") {
		t.Fatalf("expected speculation telemetry in deadlock report, got %v", err)
	}
}

// TestSpecStatsZeroOutsideOptimistic: telemetry is the zero value for the
// serial and conservative schedulers.
func TestSpecStatsZeroOutsideOptimistic(t *testing.T) {
	t.Parallel()
	for _, cfg := range []WorldConfig{testConfig(2), parConfig(2)} {
		w := NewWorld(cfg)
		if err := w.Run(func(r *Rank) { r.Comm.Barrier() }); err != nil {
			t.Fatal(err)
		}
		if w.SpecStats() != (SpecStats{}) {
			t.Errorf("sched=%v: SpecStats = %+v, want zero", cfg.Sched, w.SpecStats())
		}
	}
}

// TestOptimisticPipelinesSpecificSourceRecvs: the conflict-free fast path
// actually pipelines — a ghost-exchange-shaped pattern completes its
// specific-source receives without a single conflict or rollback.
func TestOptimisticPipelinesSpecificSourceRecvs(t *testing.T) {
	t.Parallel()
	const p = 4
	w := NewWorld(optConfig(p))
	err := w.Run(func(r *Rank) {
		me := r.Rank()
		buf := make([]float64, 8)
		payload := make([]float64, 8)
		for step := 0; step < 10; step++ {
			left, right := (me+p-1)%p, (me+1)%p
			r.Comm.Isend(left, step, payload)
			r.Comm.Isend(right, step, payload)
			r.Comm.Recv(left, step, buf)
			r.Comm.Recv(right, step, buf)
			r.Proc.Advance(50)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.SpecStats()
	if s.Conflicts != 0 || s.Rollbacks != 0 || s.SpeculatedOps != 0 {
		t.Errorf("specific-source pattern must be conflict-free, got %+v", s)
	}
	if s.PipelinedOps == 0 || s.PublishedSends != uint64(p*2*10) {
		t.Errorf("fast path did not pipeline: %+v", s)
	}
}
