package mpi

// Optimistic (Time Warp) rank scheduler.
//
// Under OptimisticParallel every rank goroutine runs freely: sends publish
// immediately to a shared "published" view, receives from a specific source
// complete as soon as the matching message is published (the conflict-free
// fast path that buys pipelining), and wildcard receives speculate — they
// tentatively pick a published message under an undo log and park until the
// commit automaton validates the pick against the serial total order.
//
// The commit automaton replays the serial token discipline over per-rank
// event streams recorded at every MPI entry point: it grants the rank with
// the smallest committed (clock, rank), consumes that rank's events against
// the committed world state (mailboxes, collectives, communicator ids),
// and blocks the rank at events whose serial predicate fails — exactly the
// scheduling points the serial scheduler would take. Speculative outcomes
// that match the committed truth resolve; mismatches mark the event
// conflicted, and the owning rank rolls back (processor clock, cache lines,
// RNG stream, TAU events, request state) and re-executes from the committed
// truth before its MPI call returns.
//
// Because every MPI operation returns only exact serial-equal results, rank
// local state is always exact at operation boundaries: published sends are
// always valid, rollbacks never cascade, and profiles, virtual clocks,
// message orders and rendered bytes stay bit-for-bit identical to Serial.
//
// There is no dedicated committer goroutine: any rank that parks inside an
// MPI operation helps drive the automaton while it waits. The speculation
// window bounds how far a rank's stream may outrun the commit frontier
// (guaranteeing quiescence for the deadlock check); it is fixed at
// specWindow events by default, or adaptive per rank when WorldConfig
// bounds it — halving on every rollback, growing back additively after
// clean commit batches (AIMD).
//
// Collectives complete speculatively once every member's contribution is
// published: the last arriver computes the results — a pure function of
// the contribution set — and a cost draw from a mirror of the shared
// collective-cost RNG. When the draw's commit-order index is provably
// pinned (no draw at all under zero noise, or a full-membership
// communicator with every other communicator speculatively quiescent)
// every member runs ahead without waiting for the commit automaton;
// otherwise the draw is a provisional guess and members park under an
// undo log holding the contribution set, which the commit replay either
// validates (bitwise-equal leave time) or rolls back exactly.

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tau"
)

// specWindow caps how many recorded events a rank's stream may run ahead of
// the commit frontier before the rank parks. It bounds memory growth and
// guarantees every rank eventually parks, which the deadlock check relies
// on. It is the fixed default; WorldConfig.SpecWindowMin/Max replace it
// with a per-rank adaptive window.
const specWindow = 4096

// Adaptive-window tuning: a rollback halves the rank's window
// (multiplicative decrease); specGrowBatch consecutive clean commits grow
// it back by specGrowStep events (additive increase), AIMD-style.
const (
	specGrowBatch = 64
	specGrowStep  = 64
)

// Automaton view of a rank's scheduling state (mirrors the serial
// scheduler's stReady/stBlocked/stDone over the replayed order).
const (
	aReady = iota
	aBlocked
	aDone
)

// Lifecycle of a recorded event's validation.
const (
	esPending = iota
	esConflict
	esResolved
)

// evKind discriminates the recorded event types.
type evKind int

const (
	evSend evKind = iota
	evRecv
	evWaitsome
	evColl
	evKeyval
)

// SpecStats is the optimistic scheduler's speculation telemetry. All
// counters are totals over the run; the zero value is returned for worlds
// not using OptimisticParallel.
type SpecStats struct {
	// PublishedSends counts messages published ahead of their commit turn.
	PublishedSends uint64
	// PipelinedOps counts conflict-free operations (specific-source
	// receives, deterministic Waitsomes) completed without waiting for the
	// commit automaton — the scheduler's wall-clock win.
	PipelinedOps uint64
	// SpeculatedOps counts operations that took a checkpoint and
	// tentatively consumed published messages under an undo log.
	SpeculatedOps uint64
	// CommittedOps counts events the commit automaton validated in serial
	// order (every recorded operation commits exactly once).
	CommittedOps uint64
	// Conflicts counts events whose speculative outcome mismatched the
	// committed truth.
	Conflicts uint64
	// Rollbacks counts rank rollbacks (one per conflicted operation that
	// had speculated).
	Rollbacks uint64
	// WindowStalls counts times a rank parked because its event stream ran
	// a full speculation window ahead of the commit frontier.
	WindowStalls uint64
	// WindowGrows and WindowShrinks count adaptive speculation-window
	// moves: a shrink halves a rank's window after a rollback, a grow adds
	// specGrowStep back after specGrowBatch clean commits. Both stay zero
	// when the window is fixed.
	WindowGrows   uint64
	WindowShrinks uint64
	// WindowMin and WindowMax are the smallest and largest per-rank window
	// sizes observed during the run (both equal the fixed window when
	// adaptation is off).
	WindowMin uint64
	WindowMax uint64
	// SpecCollHits counts collective arrivals served speculatively — the
	// result computed from the published contribution set before the
	// commit turn — and validated by the commit replay.
	SpecCollHits uint64
	// SpecCollRollbacks counts speculative collective arrivals whose
	// predicted leave time mismatched the commit replay, rolling the rank
	// back to the contribution set recorded in its undo log.
	SpecCollRollbacks uint64
	// ReexecutedUS is the total virtual time discarded by rollbacks and
	// re-executed from the committed truth.
	ReexecutedUS float64
}

// SpecStats returns the world's speculation telemetry. It is the zero value
// unless the world runs under OptimisticParallel.
func (w *World) SpecStats() SpecStats {
	if w.o == nil {
		return SpecStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.o.stats
}

// recvSlot is one posted receive inside a recorded receive event. The rank
// fills got with its (speculative or fast-path) pick; the automaton fills
// truth with the committed match and byAuto when it assigned got itself
// while the rank was parked.
type recvSlot struct {
	key      mailKey
	src, tag int
	bufLen   int
	got      *message
	byAuto   bool
	truth    *message
}

// specEvent is one recorded MPI operation in a rank's event stream. The
// rank appends it at operation entry (before parking), so the automaton
// always sees the rank's next scheduling point; clock is the rank's virtual
// clock at that entry and is advanced in place by the automaton as it
// replays consumes.
type specEvent struct {
	kind  evKind
	rank  int
	op    string
	comm  *Comm
	clock float64

	// evSend
	sendKey mailKey
	msg     *message

	// evRecv / evWaitsome
	slots      []recvSlot
	sub        int // next slot the automaton will process (evRecv)
	specDone   bool
	conflicted bool

	// evColl
	collKind   collKind
	collRoot   int
	collOp     Op
	contrib    []float64
	collGen    uint64
	collJoined bool
	collRes    []float64
	collLeave  float64
	collID     int
	// Speculative-completion state: collSpec marks leave/res as computed
	// from the published contribution set ahead of the commit replay,
	// collRunAhead that the completion is provably exact (the rank returns
	// without a verdict), and collSpecContrib the contribution set the
	// speculation consumed, recorded into the verdict-parked rank's undo
	// log.
	collSpec        bool
	collRunAhead    bool
	collSpecContrib [][]float64

	// evKeyval
	keyvalID int

	state int
}

// optState is the optimistic scheduler's shared state, guarded by World.mu.
type optState struct {
	w *World

	// pub is the published view of the message space: every send lands here
	// immediately. Messages move to the committed mailboxes when the
	// automaton replays the send, and leave both views when it replays the
	// consuming receive. taken marks tentative speculative consumption.
	pub map[mailKey][]*message

	// streams/pos are the per-rank recorded events and the commit frontier.
	streams [][]*specEvent
	pos     []int

	// Automaton replay state: per-rank status and committed clock, plus the
	// currently granted rank (-1 when none — a scheduling point is due).
	aStat  []int
	aClock []float64
	cur    int

	finished []bool // rank goroutine returned
	parked   []bool // rank is waiting inside optParkLocked

	// Adaptive speculation window: per-rank current size, the configured
	// bounds, and the per-rank clean-commit streak that drives growth.
	win            []int
	winMin, winMax int
	streak         []int

	// Speculative-collective state. mirror runs every communicator's
	// collective rendezvous over the published arrival order, ahead of the
	// committed collState; specRng replays the shared collective-cost RNG
	// stream for speculative completions. specDraws and commitDraws count
	// cost draws consumed from specRng and from the committed w.rng: their
	// difference is the number of speculative completions running ahead of
	// the commit frontier, which pins the draw index a run-ahead
	// completion will receive at its commit turn.
	mirror      map[int]*specCollMirror
	specRng     *rand.Rand
	specDraws   uint64
	commitDraws uint64

	stats SpecStats
}

// specCollMirror tracks one communicator's in-flight collective over the
// published (speculative) arrival order — the same rendezvous collState
// runs for the committed order, but advanced as arrivals are recorded
// rather than replayed, so its generation counter is always at or ahead
// of the committed one.
type specCollMirror struct {
	gen      uint64
	arrived  int
	kind     collKind
	op       Op
	root     int
	tmax     float64
	contrib  [][]float64
	events   []*specEvent
	mismatch bool
}

// newOptState sizes the scheduler state for the world's rank count.
func newOptState(w *World) *optState {
	n := w.cfg.Procs
	lo, hi := w.cfg.SpecWindowMin, w.cfg.SpecWindowMax
	if lo == 0 && hi == 0 {
		lo, hi = specWindow, specWindow
	}
	o := &optState{
		w:        w,
		pub:      make(map[mailKey][]*message),
		streams:  make([][]*specEvent, n),
		pos:      make([]int, n),
		aStat:    make([]int, n),
		aClock:   make([]float64, n),
		cur:      -1,
		finished: make([]bool, n),
		parked:   make([]bool, n),
		win:      make([]int, n),
		winMin:   lo,
		winMax:   hi,
		streak:   make([]int, n),
		mirror:   make(map[int]*specCollMirror),
		specRng:  rand.New(rand.NewSource(w.cfg.Seed ^ 0x51ca5e)),
	}
	for r := range o.aClock {
		o.aClock[r] = w.ranks[r].Proc.Now()
		o.win[r] = hi // windows start wide and shrink on rollbacks
	}
	o.stats.WindowMin = uint64(hi)
	o.stats.WindowMax = uint64(hi)
	return o
}

// shrinkWindowLocked halves rank's speculation window after a rollback,
// bounded below by the configured minimum, and resets its clean-commit
// streak. A no-op beyond the streak reset when the window is fixed.
func (o *optState) shrinkWindowLocked(rank int) {
	o.streak[rank] = 0
	nw := o.win[rank] / 2
	if nw < o.winMin {
		nw = o.winMin
	}
	if nw == o.win[rank] {
		return
	}
	o.win[rank] = nw
	o.stats.WindowShrinks++
	if uint64(nw) < o.stats.WindowMin {
		o.stats.WindowMin = uint64(nw)
	}
}

// noteCommitLocked advances rank r's clean-commit streak and grows its
// speculation window additively once a full clean batch has committed.
// The automaton's progress broadcast re-checks any rank parked on a
// window stall, so a grow can release it.
func (o *optState) noteCommitLocked(r int) {
	o.streak[r]++
	if o.streak[r] < specGrowBatch {
		return
	}
	o.streak[r] = 0
	nw := o.win[r] + specGrowStep
	if nw > o.winMax {
		nw = o.winMax
	}
	if nw == o.win[r] {
		return
	}
	o.win[r] = nw
	o.stats.WindowGrows++
	if uint64(nw) > o.stats.WindowMax {
		o.stats.WindowMax = uint64(nw)
	}
}

// reqUndo snapshots the mutable fields of one request for rollback.
type reqUndo struct {
	req  *Request
	done bool
	n    int
	buf  []float64
}

// specUndo is the undo log one speculative operation records before
// tentatively consuming anything: processor state (clock, counters, RNG
// position), cache lines, TAU events, request state and the published
// messages it marked taken.
type specUndo struct {
	proc   platform.ProcState
	cache  cache.State
	events tau.EventsCheckpoint
	reqs   []reqUndo
	taken  []*message
	// contrib is the contribution set a speculative collective consumed,
	// recorded so a conflicting commit-order replay re-derives the exact
	// result from the same inputs instead of trusting speculative state.
	contrib [][]float64
}

// specCheckpointLocked records the rank's rollback point. Caller holds the
// world lock (the snapshot itself touches only rank-local state).
func (r *Rank) specCheckpointLocked(reqs []*Request) *specUndo {
	u := &specUndo{
		proc:   r.Proc.Checkpoint(),
		cache:  r.Proc.Cache().Checkpoint(),
		events: r.Prof.CheckpointEvents(),
	}
	for _, q := range reqs {
		ru := reqUndo{req: q, done: q.done, n: q.n}
		if len(q.buf) > 0 {
			ru.buf = append([]float64(nil), q.buf...)
		}
		u.reqs = append(u.reqs, ru)
	}
	return u
}

// rollbackLocked rewinds the rank to the undo log's checkpoint: virtual
// clock, counters, RNG stream position, cache lines, TAU events, request
// state; tentatively taken messages return to the published pool.
func (r *Rank) rollbackLocked(u *specUndo) {
	r.Proc.Restore(u.proc)
	r.Proc.Cache().Restore(u.cache)
	r.Prof.RestoreEvents(u.events)
	for _, ru := range u.reqs {
		ru.req.done = ru.done
		ru.req.n = ru.n
		if ru.buf != nil {
			copy(ru.req.buf, ru.buf)
		}
	}
	for _, m := range u.taken {
		m.taken = false
	}
	u.taken = u.taken[:0]
}

// ---------------------------------------------------------------------------
// Published-view helpers (caller holds w.mu).

// pubFindLocked returns the published message a speculative pick would
// consume for (src, tag), or nil. For a specific source the pick is the
// sender's first untaken matching message — publication order is the
// sender's program order, so this is exactly the committed FIFO match. For
// AnySource it is a heuristic (earliest arrival) validated later by the
// automaton; oversized messages are skipped so a wrong pick cannot trigger
// a spurious truncation panic.
func (o *optState) pubFindLocked(key mailKey, src, tag, bufLen int) *message {
	var best *message
	for _, m := range o.pub[key] {
		if m.taken {
			continue
		}
		if (src != AnySource && m.src != src) || (tag != AnyTag && m.tag != tag) {
			continue
		}
		if src != AnySource {
			return m
		}
		if len(m.data) > bufLen {
			continue
		}
		if best == nil || m.arrive < best.arrive {
			best = m
		}
	}
	return best
}

// pubRemoveLocked drops a committed-and-consumed message from the published
// view.
func (o *optState) pubRemoveLocked(key mailKey, m *message) {
	box := o.pub[key]
	for i, x := range box {
		if x == m {
			o.pub[key] = append(box[:i:i], box[i+1:]...)
			return
		}
	}
}

// appendLocked records an event on the rank's stream, first parking if the
// stream has run a full speculation window ahead of the commit frontier.
func (o *optState) appendLocked(rank int, ev *specEvent) {
	o.windowWaitLocked(rank)
	o.streams[rank] = append(o.streams[rank], ev)
}

// windowWaitLocked parks the rank while its stream is a full speculation
// window ahead of the commit frontier. The predicate re-reads the rank's
// window, so an adaptive grow can release a stalled rank.
func (o *optState) windowWaitLocked(rank int) {
	if len(o.streams[rank])-o.pos[rank] < o.win[rank] {
		return
	}
	o.stats.WindowStalls++
	o.w.rankTrack(rank).Instant("spec", "window stall")
	o.w.optParkLocked(rank, blockDesc{op: "speculation window"}, func() bool {
		return len(o.streams[rank])-o.pos[rank] < o.win[rank]
	})
}

// ---------------------------------------------------------------------------
// Parking, helping and deadlock detection.

// optParkLocked parks the rank until ready() holds. While waiting it helps
// drive the commit automaton (there is no dedicated committer goroutine)
// and runs the deadlock check: if every other live rank is parked or
// finished and the automaton cannot progress, the replayed serial order is
// blocked with every live rank waiting — the exact condition under which
// the serial scheduler declares deadlock. on describes the awaited
// communication for the deadlock report. Caller holds w.mu.
func (w *World) optParkLocked(rank int, on blockDesc, ready func() bool) {
	if ready() {
		return
	}
	o := w.o
	w.status[rank] = stBlocked
	w.blockedOn[rank] = on
	w.blocked[rank] = ready // the deadlock check re-evaluates parked ranks
	// The compute slot is released once, on first parking, and re-acquired
	// once the predicate holds — not around every Wait iteration: releasing
	// broadcasts to slot waiters, and a release per wakeup lets idle parked
	// ranks wake each other in a broadcast storm that starves the ranks
	// doing real work.
	released := false
	for {
		if w.aborted {
			panic(abortPanic{})
		}
		if ready() {
			break
		}
		if w.autoStepLocked() {
			continue
		}
		if o.allOthersIdleLocked(rank) {
			w.optDeadlockLocked()
			panic(abortPanic{})
		}
		o.parked[rank] = true
		if !released {
			w.releaseSlotLocked(rank)
			released = true
		}
		w.cond.Wait()
		o.parked[rank] = false
	}
	if released && !w.acquireSlotLocked(rank) {
		panic(abortPanic{})
	}
	w.status[rank] = stRunning
	w.blockedOn[rank] = blockDesc{}
	w.blocked[rank] = nil
}

// allOthersIdleLocked reports whether every rank but self is parked on a
// still-failing predicate or has finished — the quiescence precondition for
// declaring deadlock. A computing rank could still publish new input, and a
// parked rank whose predicate already holds merely has not been scheduled
// yet: it will wake from the pending broadcast and make progress.
func (o *optState) allOthersIdleLocked(self int) bool {
	for r := range o.parked {
		if r == self {
			continue
		}
		if o.finished[r] {
			continue
		}
		if !o.parked[r] {
			return false
		}
		if o.w.blocked[r] != nil && o.w.blocked[r]() {
			return false
		}
	}
	return true
}

// optDeadlockLocked aborts the world with the same per-rank deadlock errors
// and state dump the serial scheduler produces. Only optParkLocked calls it,
// and only at quiescence, so every live rank's Proc is safe to read.
func (w *World) optDeadlockLocked() {
	w.aborted = true
	report := w.deadlockReportLocked()
	for r := range w.status {
		if w.status[r] == stBlocked {
			w.panics[r] = fmt.Errorf("mpi: deadlock: rank %d blocked at t=%.3fus in %s with no matching communication\n%s",
				r, w.ranks[r].Proc.Now(), w.blockedOn[r], report)
		}
	}
	w.cond.Broadcast()
}

// ---------------------------------------------------------------------------
// The commit automaton (caller holds w.mu).

// autoStepLocked advances the commit automaton as far as it can and reports
// whether any event committed. It replays the serial token discipline over
// the recorded streams: consume the granted rank's events until one blocks,
// then promote and grant the ready rank with the smallest (clock, rank). It
// never declares deadlock — a stall may just mean a computing rank has not
// recorded its next event yet; optParkLocked owns that call.
func (w *World) autoStepLocked() bool {
	o := w.o
	progressed := false
	for {
		if w.aborted {
			break
		}
		if o.cur != -1 {
			if o.consumeSegmentLocked(o.cur) {
				progressed = true
			}
			if o.cur != -1 {
				// The granted rank's stream is exhausted mid-segment: the
				// serial order is inside its still-running compute segment.
				break
			}
			continue
		}
		// Scheduling point: promote blocked ranks whose predicates now hold
		// against committed state, then grant the smallest (clock, rank).
		for r := range o.aStat {
			if o.aStat[r] == aBlocked && o.predHoldsLocked(r) {
				o.aStat[r] = aReady
			}
		}
		next, best := -1, 0.0
		for r := 0; r < len(o.aStat); r++ {
			if o.aStat[r] != aReady {
				continue
			}
			if next == -1 || o.aClock[r] < best {
				next, best = r, o.aClock[r]
			}
		}
		if next == -1 {
			break
		}
		o.cur = next
	}
	if progressed {
		w.cond.Broadcast()
	}
	return progressed
}

// consumeSegmentLocked replays the granted rank's events until one blocks
// or the stream is exhausted, reporting whether any event committed.
func (o *optState) consumeSegmentLocked(r int) bool {
	progressed := false
	for o.pos[r] < len(o.streams[r]) {
		ev := o.streams[r][o.pos[r]]
		if !o.processLocked(ev) {
			o.aStat[r] = aBlocked
			o.aClock[r] = ev.clock
			o.cur = -1
			return progressed
		}
		conflicted := ev.state == esConflict
		o.streams[r][o.pos[r]] = nil // release committed events for GC
		o.pos[r]++
		o.stats.CommittedOps++
		if conflicted {
			o.streak[r] = 0
		} else {
			o.noteCommitLocked(r)
		}
		progressed = true
	}
	if o.finished[r] {
		o.aStat[r] = aDone
		o.aClock[r] = o.w.ranks[r].Proc.Now() // quiescent: goroutine returned
		o.cur = -1
	}
	return progressed
}

// predHoldsLocked evaluates a blocked rank's next event against committed
// state — the automaton's analog of the serial scheduler's blocked[r]().
func (o *optState) predHoldsLocked(r int) bool {
	ev := o.streams[r][o.pos[r]]
	w := o.w
	switch ev.kind {
	case evColl:
		cs := w.colls[ev.comm.id]
		return cs != nil && cs.gen > ev.collGen
	case evRecv:
		s := &ev.slots[ev.sub]
		return w.hasMatchLocked(s.key, s.src, s.tag)
	case evWaitsome:
		for i := range ev.slots {
			s := &ev.slots[i]
			if w.hasMatchLocked(s.key, s.src, s.tag) {
				return true
			}
		}
		return false
	}
	return true
}

// processLocked attempts to commit one event against committed state. It
// returns false when the event's serial predicate fails (the rank blocks at
// this point in the replayed order).
func (o *optState) processLocked(ev *specEvent) bool {
	switch ev.kind {
	case evSend:
		o.w.enqueueLocked(ev.sendKey, ev.msg)
		return true
	case evKeyval:
		o.w.nextCommID++
		ev.keyvalID = o.w.nextCommID
		ev.state = esResolved
		return true
	case evColl:
		return o.processCollLocked(ev)
	case evRecv:
		return o.processRecvLocked(ev)
	case evWaitsome:
		return o.processWaitsomeLocked(ev)
	}
	panic(fmt.Sprintf("mpi: unknown speculative event kind %d", int(ev.kind)))
}

// processCollLocked replays a collective join for the committed order: it
// mirrors collectiveLocked exactly, with the event's recorded entry clock
// and contribution standing in for the rank's live state.
func (o *optState) processCollLocked(ev *specEvent) bool {
	w := o.w
	c := ev.comm
	cs := w.colls[c.id]
	if cs == nil {
		cs = &collState{}
		w.colls[c.id] = cs
	}
	if !ev.collJoined {
		if cs.arrived == 0 {
			cs.kind = ev.collKind
			cs.op = ev.collOp
			cs.root = ev.collRoot
			cs.tmax = 0
			cs.contrib = make([][]float64, len(c.group))
		} else if cs.kind != ev.collKind || cs.root != ev.collRoot {
			panic(fmt.Sprintf("mpi: collective mismatch on comm %d: rank %d issued %v(root=%d) while %v(root=%d) in flight",
				c.id, c.rank, ev.collKind, ev.collRoot, cs.kind, cs.root))
		}
		ev.collGen = cs.gen
		cs.arrived++
		if ev.clock > cs.tmax {
			cs.tmax = ev.clock
		}
		if ev.contrib != nil {
			cs.contrib[c.rank] = ev.contrib
		}
		ev.collJoined = true
		if cs.arrived == len(c.group) {
			c.completeCollectiveLocked(cs)
			o.noteCommitDrawLocked()
		}
	}
	if cs.gen <= ev.collGen {
		return false // parked until the collective's last member arrives
	}
	switch {
	case ev.collSpec && ev.collRunAhead:
		// The rank already ran ahead on this completion, which is exact by
		// construction; a mismatch means the draw-alignment proof is
		// broken, not a race a rollback could repair.
		if ev.collLeave != cs.lastLeave {
			panic(fmt.Sprintf("mpi: optimistic scheduler invariant violation: rank %d %s ran ahead on speculative leave t=%.6fus but committed leave is t=%.6fus",
				ev.rank, ev.op, ev.collLeave, cs.lastLeave))
		}
		o.stats.SpecCollHits++
		ev.state = esResolved
	case ev.collSpec:
		// Verdict for a parked speculative completion: the results are a
		// pure function of the (identical) contribution set, so the leave
		// time — the only value carrying the provisional cost draw — is
		// the whole verdict.
		if ev.collLeave == cs.lastLeave {
			o.stats.SpecCollHits++
			ev.state = esResolved
			break
		}
		o.stats.Conflicts++
		o.w.rankTrack(ev.rank).Instant("spec", "conflict", obs.Arg{Name: "op", Value: ev.op})
		ev.collLeave = cs.lastLeave
		if cs.lastResult != nil {
			ev.collRes = cs.lastResult[c.rank]
		}
		ev.collID = cs.lastID
		ev.state = esConflict
	default:
		ev.collLeave = cs.lastLeave
		if cs.lastResult != nil {
			ev.collRes = cs.lastResult[c.rank]
		}
		ev.collID = cs.lastID
		ev.state = esResolved
	}
	return true
}

// noteCommitDrawLocked records a committed collective completion's cost
// draw and advances the speculative mirror RNG past completions it never
// drew for (Dup/Create and other unspeculated generations), keeping
// specRng aligned with the committed w.rng stream.
func (o *optState) noteCommitDrawLocked() {
	if o.w.cfg.Net.NoiseSigma <= 0 {
		return // the cost is deterministic: neither RNG consumes a draw
	}
	o.commitDraws++
	for o.specDraws < o.commitDraws {
		o.specRng.NormFloat64()
		o.specDraws++
	}
}

// processRecvLocked validates a recorded receive (Recv/Wait/Waitall): it
// performs the authoritative committed-order matches slot by slot,
// replaying the serial clock progression, and compares them against the
// rank's speculative picks. A wildcard mismatch marks the event conflicted
// (the owning rank will roll back and re-execute from the recorded truth);
// a specific-source mismatch is impossible by construction and panics.
func (o *optState) processRecvLocked(ev *specEvent) bool {
	w := o.w
	for ev.sub < len(ev.slots) {
		s := &ev.slots[ev.sub]
		m := w.matchLocked(s.key, s.src, s.tag)
		if m == nil {
			return false // blocked here in the serial order
		}
		switch {
		case ev.conflicted:
			// Past the first mismatch only the truth matters: the rank will
			// re-execute every slot from it.
			s.truth = m
		case s.got == nil:
			// The rank has not picked yet (it is parked): assign the truth
			// as its pick so it completes conflict-free.
			s.got, s.truth, s.byAuto = m, m, true
			m.taken = true
		case s.got == m:
			s.truth = m
		case s.src != AnySource:
			panic(fmt.Sprintf("mpi: optimistic scheduler invariant violation: rank %d %s slot %d picked message (src=%d tag=%d arrive=%.3f) but committed match is (src=%d tag=%d arrive=%.3f)",
				ev.rank, ev.op, ev.sub, s.got.src, s.got.tag, s.got.arrive, m.src, m.tag, m.arrive))
		default:
			ev.conflicted = true
			o.stats.Conflicts++
			o.w.rankTrack(ev.rank).Instant("spec", "conflict", obs.Arg{Name: "op", Value: ev.op})
			s.truth = m
		}
		o.pubRemoveLocked(s.key, m)
		t := m.arrive
		if ev.clock > t {
			t = ev.clock
		}
		n := len(m.data)
		if s.bufLen < n {
			n = s.bufLen // rank-side consume panics on truncation; mirror min
		}
		ev.clock = t + float64(bytesOf(n))/copyBytesPerUS
		ev.sub++
	}
	if ev.conflicted {
		ev.state = esConflict
	} else {
		ev.state = esResolved
	}
	return true
}

// processWaitsomeLocked validates a recorded Waitsome at its serial wake
// point: the committed completion set is every posted receive with a queued
// match, consumed in posting order. If the rank speculated a different set
// (or different messages) the event is conflicted.
func (o *optState) processWaitsomeLocked(ev *specEvent) bool {
	w := o.w
	any := false
	for i := range ev.slots {
		s := &ev.slots[i]
		if w.hasMatchLocked(s.key, s.src, s.tag) {
			any = true
			break
		}
	}
	if !any {
		return false
	}
	conflict := false
	for i := range ev.slots {
		s := &ev.slots[i]
		m := w.matchLocked(s.key, s.src, s.tag)
		s.truth = m
		if m != nil {
			o.pubRemoveLocked(s.key, m)
			t := m.arrive
			if ev.clock > t {
				t = ev.clock
			}
			n := len(m.data)
			if s.bufLen < n {
				n = s.bufLen
			}
			ev.clock = t + float64(bytesOf(n))/copyBytesPerUS
		}
		if ev.specDone {
			if s.got != m {
				if len(ev.slots) == 1 && s.src != AnySource {
					panic(fmt.Sprintf("mpi: optimistic scheduler invariant violation: rank %d single specific-source Waitsome mismatched its committed match", ev.rank))
				}
				conflict = true
			}
		} else if m != nil {
			s.got, s.byAuto = m, true
			m.taken = true
		}
	}
	if conflict {
		o.stats.Conflicts++
		o.w.rankTrack(ev.rank).Instant("spec", "conflict", obs.Arg{Name: "op", Value: ev.op})
		ev.state = esConflict
	} else {
		ev.state = esResolved
	}
	return true
}

// ---------------------------------------------------------------------------
// Rank-side operations (called from Comm entry points when w.opt).

// optPostSend publishes a fully computed message immediately and records
// the send for the committed-order replay. Sends never block (beyond the
// speculation window) and never conflict: arrival time and noise use only
// the sender's clock and RNG, which are exact at every operation boundary.
func (c *Comm) optPostSend(key mailKey, m *message) {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	o := w.o
	ev := &specEvent{kind: evSend, rank: c.r.rank, op: "MPI_Send()", comm: c, clock: c.r.Proc.Now(), sendKey: key, msg: m}
	o.appendLocked(c.r.rank, ev)
	o.pub[key] = append(o.pub[key], m)
	o.stats.PublishedSends++
	w.cond.Broadcast() // a parked receiver may now have a published match
}

// optCompleteRecvs completes the pending receives in reqs in posting order:
// the shared path behind Recv, Wait and Waitall. Specific-source slots
// complete on publication (the conflict-free fast path); if any slot is
// AnySource the whole operation speculates under an undo log and parks for
// the automaton's verdict before returning.
func (c *Comm) optCompleteRecvs(op string, reqs []*Request) {
	w := c.world
	rank := c.r.rank
	w.mu.Lock()
	defer w.mu.Unlock()
	o := w.o

	var slots []recvSlot
	var sreqs []*Request
	spec := false
	for _, q := range reqs {
		if !q.isRecv || q.done || q.canceled {
			continue
		}
		key := mailKey{comm: q.comm.id, dst: q.comm.group[q.comm.rank]}
		slots = append(slots, recvSlot{key: key, src: q.src, tag: q.tag, bufLen: len(q.buf)})
		sreqs = append(sreqs, q)
		if q.src == AnySource {
			spec = true
		}
	}
	if len(slots) == 0 {
		return
	}
	ev := &specEvent{kind: evRecv, rank: rank, op: op, comm: c, clock: c.r.Proc.Now(), slots: slots}
	o.appendLocked(rank, ev)

	var undo *specUndo
	if spec {
		undo = c.r.specCheckpointLocked(sreqs)
		o.stats.SpeculatedOps++
		w.rankTrack(rank).Instant("spec", "speculate", obs.Arg{Name: "op", Value: op})
	}

	for i := range ev.slots {
		s := &ev.slots[i]
		q := sreqs[i]
		w.optParkLocked(rank, blockDesc{op: op, comm: q.comm.id, src: q.src, tag: q.tag}, func() bool {
			return ev.state == esConflict || s.got != nil || o.pubFindLocked(s.key, s.src, s.tag, s.bufLen) != nil
		})
		if ev.state == esConflict {
			break
		}
		if s.got == nil {
			m := o.pubFindLocked(s.key, s.src, s.tag, s.bufLen)
			m.taken = true
			s.got = m
			if undo != nil {
				undo.taken = append(undo.taken, m)
			}
		}
		q.comm.consumeLocked(s.got, q)
	}
	if undo == nil {
		// All slots specific-source: publication order equals committed
		// FIFO order, so the picks are the serial matches by construction.
		o.stats.PipelinedOps++
		return
	}

	// Speculated: hold the operation until the automaton validates it.
	w.optParkLocked(rank, blockDesc{op: op, comm: c.id, src: sreqs[0].src, tag: sreqs[0].tag, pending: len(slots) - 1},
		func() bool { return ev.state != esPending })
	if ev.state == esResolved {
		return
	}
	// Conflict: discard the speculated execution and replay every slot from
	// the committed truth.
	reexec := c.r.Proc.Now() - undo.proc.Clock
	c.r.rollbackLocked(undo)
	o.stats.Rollbacks++
	o.stats.ReexecutedUS += reexec
	o.shrinkWindowLocked(rank)
	w.rankTrack(rank).Instant("spec", "rollback", obs.Arg{Name: "reexec_us", Value: reexec})
	for i := range ev.slots {
		s := &ev.slots[i]
		s.truth.taken = true
		sreqs[i].comm.consumeLocked(s.truth, sreqs[i])
	}
	ev.state = esResolved
}

// optWaitsome implements Waitsome's pending-receive path. With exactly one
// pending specific-source receive the completion set is deterministic and
// the operation pipelines; otherwise the completion set depends on the
// serial wake time, so the rank speculates (consuming every receive that is
// currently matchable in the published view) and parks for the verdict.
func (c *Comm) optWaitsome(reqs []*Request) []int {
	w := c.world
	rank := c.r.rank
	w.mu.Lock()
	defer w.mu.Unlock()
	o := w.o

	var slots []recvSlot
	var sreqs []*Request
	var idxs []int
	for i, q := range reqs {
		if !q.isRecv || q.done || q.canceled {
			continue
		}
		key := mailKey{comm: q.comm.id, dst: q.comm.group[q.comm.rank]}
		slots = append(slots, recvSlot{key: key, src: q.src, tag: q.tag, bufLen: len(q.buf)})
		sreqs = append(sreqs, q)
		idxs = append(idxs, i)
	}
	ev := &specEvent{kind: evWaitsome, rank: rank, op: "MPI_Waitsome()", comm: c, clock: c.r.Proc.Now(), slots: slots}
	o.appendLocked(rank, ev)
	fast := len(slots) == 1 && slots[0].src != AnySource

	w.optParkLocked(rank, blockDesc{op: "MPI_Waitsome()", comm: c.id, pending: len(slots)}, func() bool {
		if ev.state != esPending {
			return true
		}
		for i := range ev.slots {
			s := &ev.slots[i]
			if s.got != nil || o.pubFindLocked(s.key, s.src, s.tag, s.bufLen) != nil {
				return true
			}
		}
		return false
	})

	var out []int
	if ev.state == esResolved && !ev.specDone {
		// The automaton resolved the event while we were parked: its byAuto
		// assignments are the committed completion set.
		for i := range ev.slots {
			s := &ev.slots[i]
			if s.got == nil {
				continue
			}
			sreqs[i].comm.consumeLocked(s.got, sreqs[i])
			out = append(out, idxs[i])
		}
		return out
	}

	var undo *specUndo
	if !fast {
		undo = c.r.specCheckpointLocked(sreqs)
		o.stats.SpeculatedOps++
		w.rankTrack(rank).Instant("spec", "speculate", obs.Arg{Name: "op", Value: "MPI_Waitsome()"})
	}
	for i := range ev.slots {
		s := &ev.slots[i]
		m := s.got
		if m == nil {
			m = o.pubFindLocked(s.key, s.src, s.tag, s.bufLen)
			if m == nil {
				continue
			}
			m.taken = true
			s.got = m
			if undo != nil {
				undo.taken = append(undo.taken, m)
			}
		}
		sreqs[i].comm.consumeLocked(m, sreqs[i])
		out = append(out, idxs[i])
	}
	ev.specDone = true
	if fast {
		o.stats.PipelinedOps++
		return out
	}

	w.optParkLocked(rank, blockDesc{op: "MPI_Waitsome()", comm: c.id, pending: len(slots)},
		func() bool { return ev.state != esPending })
	if ev.state == esResolved {
		return out
	}
	reexec := c.r.Proc.Now() - undo.proc.Clock
	c.r.rollbackLocked(undo)
	o.stats.Rollbacks++
	o.stats.ReexecutedUS += reexec
	o.shrinkWindowLocked(rank)
	w.rankTrack(rank).Instant("spec", "rollback", obs.Arg{Name: "reexec_us", Value: reexec})
	out = out[:0]
	for i := range ev.slots {
		s := &ev.slots[i]
		if s.truth == nil {
			continue
		}
		s.truth.taken = true
		sreqs[i].comm.consumeLocked(s.truth, sreqs[i])
		out = append(out, idxs[i])
	}
	ev.state = esResolved
	return out
}

// optCollective records the rank's arrival at a collective. When every
// peer's contribution is already published the collective completes
// speculatively (specCollCompleteLocked): a provably exact completion
// lets the rank run ahead without waiting for the commit automaton, an
// uncertain one parks it under an undo log — holding the contribution set
// — for the commit replay's verdict, rolling back exactly on a mismatch.
// Otherwise the rank parks until the automaton has replayed every
// member's arrival in the committed order.
func (c *Comm) optCollective(kind collKind, data []float64, root int, op Op) ([]float64, int) {
	w := c.world
	rank := c.r.rank
	w.mu.Lock()
	defer w.mu.Unlock()
	o := w.o
	var contrib []float64
	if data != nil {
		contrib = make([]float64, len(data))
		copy(contrib, data)
	}
	ev := &specEvent{
		kind: evColl, rank: rank, op: "MPI_" + kind.String() + "()", comm: c,
		clock: c.r.Proc.Now(), collKind: kind, collRoot: root, collOp: op, contrib: contrib,
	}
	o.specCollArriveLocked(c, ev)
	o.appendLocked(rank, ev)
	w.optParkLocked(rank, blockDesc{op: ev.op, comm: c.id}, func() bool {
		return ev.state == esResolved || ev.collSpec
	})
	if ev.state == esResolved || ev.collRunAhead {
		// Committed truth, or an exact speculative completion the rank may
		// run ahead on without a verdict.
		if ev.state != esResolved {
			o.stats.PipelinedOps++
		}
		c.r.Proc.SyncTo(ev.collLeave)
		return ev.collRes, ev.collID
	}
	if ev.state == esConflict {
		// The automaton rejected the speculative completion while we were
		// still parked: nothing speculative was ever applied to the rank,
		// so take the committed truth directly.
		ev.state = esResolved
		c.r.Proc.SyncTo(ev.collLeave)
		return ev.collRes, ev.collID
	}
	// Speculative completion with an unpinned cost draw: checkpoint with
	// the contribution set recorded in the undo log, tentatively take the
	// speculative leave time, and park for the automaton's verdict.
	undo := c.r.specCheckpointLocked(nil)
	undo.contrib = ev.collSpecContrib
	o.stats.SpeculatedOps++
	w.rankTrack(rank).Instant("spec", "speculate", obs.Arg{Name: "op", Value: ev.op})
	c.r.Proc.SyncTo(ev.collLeave)
	w.optParkLocked(rank, blockDesc{op: ev.op, comm: c.id}, func() bool { return ev.state != esPending })
	if ev.state == esConflict {
		reexec := c.r.Proc.Now() - undo.proc.Clock
		c.r.rollbackLocked(undo)
		o.stats.Rollbacks++
		o.stats.SpecCollRollbacks++
		o.stats.ReexecutedUS += reexec
		o.shrinkWindowLocked(rank)
		w.rankTrack(rank).Instant("spec", "rollback", obs.Arg{Name: "reexec_us", Value: reexec})
		// Re-execute from the committed truth: the contribution set in the
		// undo log re-derives the exact result (only the cost draw could
		// mismatch); the committed leave time replaces the predicted one.
		if res, _ := collResults(ev.collKind, ev.collOp, ev.collRoot, len(c.group), undo.contrib); res[c.rank] != nil {
			ev.collRes = res[c.rank]
		}
		ev.state = esResolved
		c.r.Proc.SyncTo(ev.collLeave)
	}
	return ev.collRes, ev.collID
}

// specCollArriveLocked records a collective arrival in the speculative
// mirror; when ev completes its generation's membership the mirror closes
// the generation, possibly speculatively (specCollCompleteLocked).
func (o *optState) specCollArriveLocked(c *Comm, ev *specEvent) {
	mir := o.mirror[c.id]
	if mir == nil {
		mir = &specCollMirror{}
		o.mirror[c.id] = mir
	}
	if mir.arrived == 0 {
		mir.kind, mir.op, mir.root = ev.collKind, ev.collOp, ev.collRoot
		mir.tmax = 0
		mir.contrib = make([][]float64, len(c.group))
		mir.events = mir.events[:0]
		mir.mismatch = false
	} else if mir.kind != ev.collKind || mir.root != ev.collRoot {
		// A program error; the commit replay raises the canonical panic.
		mir.mismatch = true
	}
	mir.arrived++
	if ev.clock > mir.tmax {
		mir.tmax = ev.clock
	}
	if ev.contrib != nil {
		mir.contrib[c.rank] = ev.contrib
	}
	mir.events = append(mir.events, ev)
	if mir.arrived == len(c.group) {
		o.specCollCompleteLocked(c, mir)
	}
}

// specCollCompleteLocked closes the mirror's current generation at its
// last arrival, when the full contribution set is published. Data
// collectives complete speculatively: the results are a pure function of
// the contribution set, and the leave time adds a cost draw from the
// mirror RNG. The completion is provably exact — members run ahead of the
// commit automaton — when the cost consumes no draw (NoiseSigma <= 0) or
// when the draw's commit-order index is pinned: a full-membership
// communicator (whose evColl events block every rank's stream behind this
// generation), every other communicator speculatively quiescent, and
// every speculated-but-uncommitted completion an earlier generation of
// this same communicator (the draw-count equality). Otherwise the draw is
// a provisional guess and members park for the commit verdict. Dup and
// Create allocate a communicator id — order-sensitive shared state — and
// stay strictly commit-ordered.
func (o *optState) specCollCompleteLocked(c *Comm, mir *specCollMirror) {
	w := o.w
	kind, op, root, tmax := mir.kind, mir.op, mir.root, mir.tmax
	contrib, events, mismatch := mir.contrib, mir.events, mir.mismatch
	committedGen := uint64(0)
	if cs := w.colls[c.id]; cs != nil {
		committedGen = cs.gen
	}
	genAhead := mir.gen - committedGen
	mir.gen++
	mir.arrived = 0
	mir.contrib = nil
	mir.events = nil
	if mismatch || kind == collDup || kind == collCreate {
		return
	}
	exact := true
	if w.cfg.Net.NoiseSigma > 0 {
		exact = len(c.group) == w.cfg.Procs && o.specDraws == o.commitDraws+genAhead
		if exact {
			// Order-independent boolean fold over the mirror: exact only if
			// every other communicator is speculatively quiescent.
			for id, m := range o.mirror {
				if id == c.id {
					continue
				}
				mgen := uint64(0)
				if cs := w.colls[id]; cs != nil {
					mgen = cs.gen
				}
				if m.gen != mgen || m.arrived != 0 {
					exact = false
					break
				}
			}
		}
	}
	results, bytes := collResults(kind, op, root, len(c.group), contrib)
	cost := w.cfg.Net.Collective(kind.netKind(), len(c.group), bytes, o.specRng)
	if w.cfg.Net.NoiseSigma > 0 {
		o.specDraws++
	}
	leave := tmax + cost
	for _, mev := range events {
		mev.collRunAhead = exact
		mev.collLeave = leave
		mev.collRes = results[mev.comm.rank]
		mev.collSpecContrib = contrib
		mev.collSpec = true
	}
	w.cond.Broadcast()
}

// optKeyvalCreate records an id allocation and parks until the automaton
// replays it — id allocation is order-sensitive shared state.
func (c *Comm) optKeyvalCreate() int {
	w := c.world
	rank := c.r.rank
	w.mu.Lock()
	defer w.mu.Unlock()
	ev := &specEvent{kind: evKeyval, rank: rank, op: "MPI_Keyval_create()", comm: c, clock: c.r.Proc.Now()}
	w.o.appendLocked(rank, ev)
	w.optParkLocked(rank, blockDesc{op: ev.op, comm: c.id}, func() bool { return ev.state == esResolved })
	return ev.keyvalID
}
