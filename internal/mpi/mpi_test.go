package mpi

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/netmodel"
)

// testConfig returns a small, quiet (noise-free) world for exact assertions.
func testConfig(p int) WorldConfig {
	cfg := DefaultConfig()
	cfg.Procs = p
	cfg.Net.NoiseSigma = 0
	return cfg
}

func TestRunExecutesEveryRank(t *testing.T) {
	w := NewWorld(testConfig(4))
	var mu sync.Mutex
	seen := map[int]bool{}
	err := w.Run(func(r *Rank) {
		mu.Lock()
		seen[r.Rank()] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Errorf("ranks seen = %v, want 4", seen)
	}
}

func TestNewWorldInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0 ranks) did not panic")
		}
	}()
	NewWorld(WorldConfig{Procs: 0})
}

func TestSendRecvTransfersData(t *testing.T) {
	w := NewWorld(testConfig(2))
	var got []float64
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Comm.Send(1, 7, []float64{1, 2, 3})
		case 1:
			buf := make([]float64, 3)
			n := r.Comm.Recv(0, 7, buf)
			if n != 3 {
				t.Errorf("Recv n = %d, want 3", n)
			}
			got = buf
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("received %v, want [1 2 3]", got)
	}
}

func TestRecvWaitsForVirtualArrival(t *testing.T) {
	cfg := testConfig(2)
	w := NewWorld(cfg)
	var recvDone float64
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Proc.Advance(1000) // sender is late
			r.Comm.Send(1, 0, []float64{42})
		case 1:
			buf := make([]float64, 1)
			r.Comm.Recv(0, 0, buf)
			recvDone = r.Proc.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver must end past sender departure (1000) plus network latency.
	if recvDone < 1000+cfg.Net.LatencyUS {
		t.Errorf("receive completed at %g, want >= %g", recvDone, 1000+cfg.Net.LatencyUS)
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	w := NewWorld(testConfig(2))
	var got []float64
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				r.Comm.Send(1, 3, []float64{float64(i)})
			}
		case 1:
			buf := make([]float64, 1)
			for i := 0; i < 5; i++ {
				r.Comm.Recv(0, 3, buf)
				got = append(got, buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("messages out of order: %v", got)
		}
	}
}

func TestTagSelectivity(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Comm.Send(1, 1, []float64{1})
			r.Comm.Send(1, 2, []float64{2})
		case 1:
			buf := make([]float64, 1)
			r.Comm.Recv(0, 2, buf) // take tag-2 first
			if buf[0] != 2 {
				t.Errorf("tag 2 recv got %g", buf[0])
			}
			r.Comm.Recv(0, 1, buf)
			if buf[0] != 1 {
				t.Errorf("tag 1 recv got %g", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAndAnyTag(t *testing.T) {
	w := NewWorld(testConfig(3))
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0, 1:
			r.Comm.Send(2, 10+r.Rank(), []float64{float64(r.Rank())})
		case 2:
			buf := make([]float64, 1)
			sum := 0.0
			for i := 0; i < 2; i++ {
				r.Comm.Recv(AnySource, AnyTag, buf)
				sum += buf[0]
			}
			if sum != 1 {
				t.Errorf("AnySource sum = %g, want 1 (ranks 0+1)", sum)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			a := r.Comm.Isend(1, 0, []float64{5})
			b := r.Comm.Isend(1, 1, []float64{6})
			r.Comm.Waitall([]*Request{a, b})
		case 1:
			b0 := make([]float64, 1)
			b1 := make([]float64, 1)
			r0 := r.Comm.Irecv(0, 0, b0)
			r1 := r.Comm.Irecv(0, 1, b1)
			r.Comm.Waitall([]*Request{r1, r0})
			if b0[0] != 5 || b1[0] != 6 {
				t.Errorf("got %g/%g, want 5/6", b0[0], b1[0])
			}
			if !r0.Done() || !r1.Done() {
				t.Error("requests not marked done")
			}
			if r0.Count() != 1 {
				t.Errorf("Count = %d, want 1", r0.Count())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitsomeCompletesAvailable(t *testing.T) {
	w := NewWorld(testConfig(3))
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Comm.Send(2, 0, []float64{1})
		case 1:
			r.Proc.Advance(5_000_000) // very late sender
			r.Comm.Send(2, 1, []float64{2})
		case 2:
			b0 := make([]float64, 1)
			b1 := make([]float64, 1)
			reqs := []*Request{
				r.Comm.Irecv(0, 0, b0),
				r.Comm.Irecv(1, 1, b1),
			}
			completed := map[int]bool{}
			for len(completed) < 2 {
				idx := r.Comm.Waitsome(reqs)
				if idx == nil {
					t.Fatal("Waitsome returned nil with pending requests")
				}
				for _, i := range idx {
					if completed[i] {
						t.Errorf("request %d completed twice", i)
					}
					completed[i] = true
				}
			}
			if b0[0] != 1 || b1[0] != 2 {
				t.Errorf("payloads %g/%g, want 1/2", b0[0], b1[0])
			}
			// Final clock must reflect the late sender.
			if r.Proc.Now() < 5_000_000 {
				t.Errorf("rank 2 clock %g did not wait for late sender", r.Proc.Now())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitsomeNilWhenNothingPending(t *testing.T) {
	w := NewWorld(testConfig(1))
	err := w.Run(func(r *Rank) {
		if got := r.Comm.Waitsome(nil); got != nil {
			t.Errorf("Waitsome(nil) = %v, want nil", got)
		}
		done := &Request{done: true}
		if got := r.Comm.Waitsome([]*Request{done}); got != nil {
			t.Errorf("Waitsome(all done) = %v, want nil", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCancelPreventsCompletion(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			// sends nothing
		case 1:
			buf := make([]float64, 1)
			req := r.Comm.Irecv(0, 9, buf)
			r.Comm.Cancel(req)
			if !req.Canceled() {
				t.Error("request not canceled")
			}
			// Waiting on a canceled request must not block.
			r.Comm.Wait(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTruncationPanics(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Comm.Send(1, 0, []float64{1, 2, 3, 4})
		case 1:
			small := make([]float64, 2)
			r.Comm.Recv(0, 0, small)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("expected truncation panic, got %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		buf := make([]float64, 1)
		r.Comm.Recv(1-r.Rank(), 0, buf) // both receive, nobody sends
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			panic("application failure")
		}
		// rank 0 blocks forever; the abort must unstick it
		buf := make([]float64, 1)
		r.Comm.Recv(1, 0, buf)
	})
	if err == nil || !strings.Contains(err.Error(), "application failure") {
		t.Fatalf("expected body panic to propagate, got %v", err)
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	w := NewWorld(testConfig(3))
	err := w.Run(func(r *Rank) {
		in := []float64{float64(r.Rank() + 1), float64(10 * (r.Rank() + 1))}
		sum := r.Comm.Allreduce(OpSum, in)
		if sum[0] != 6 || sum[1] != 60 {
			t.Errorf("rank %d Allreduce sum = %v, want [6 60]", r.Rank(), sum)
		}
		mx := r.Comm.Allreduce(OpMax, in)
		if mx[0] != 3 || mx[1] != 30 {
			t.Errorf("rank %d Allreduce max = %v, want [3 30]", r.Rank(), mx)
		}
		mn := r.Comm.Allreduce(OpMin, in)
		if mn[0] != 1 || mn[1] != 10 {
			t.Errorf("rank %d Allreduce min = %v", r.Rank(), mn)
		}
		pr := r.Comm.Allreduce(OpProd, []float64{float64(r.Rank() + 1)})
		if pr[0] != 6 {
			t.Errorf("rank %d Allreduce prod = %v, want 6", r.Rank(), pr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSynchronizesClocks(t *testing.T) {
	w := NewWorld(testConfig(3))
	var ends [3]float64
	err := w.Run(func(r *Rank) {
		r.Proc.Advance(float64(r.Rank()) * 100)
		r.Comm.Allreduce(OpSum, []float64{1})
		ends[r.Rank()] = r.Proc.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks leave the collective at (nearly) the same time: the stragglers
	// set the pace. Post-collective bookkeeping differs only by timer stops.
	if ends[0] < 200 || ends[1] < 200 || ends[2] < 200 {
		t.Errorf("collective leave times %v; all must be >= straggler time 200", ends)
	}
	if math.Abs(ends[0]-ends[2]) > 1.0 {
		t.Errorf("leave times diverge: %v", ends)
	}
}

func TestReduceOnlyRootGetsResult(t *testing.T) {
	w := NewWorld(testConfig(3))
	err := w.Run(func(r *Rank) {
		res := r.Comm.Reduce(OpSum, 1, []float64{1})
		if r.Rank() == 1 {
			if res == nil || res[0] != 3 {
				t.Errorf("root result = %v, want [3]", res)
			}
		} else if res != nil {
			t.Errorf("non-root rank %d got result %v", r.Rank(), res)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(testConfig(3))
	err := w.Run(func(r *Rank) {
		buf := make([]float64, 2)
		if r.Rank() == 2 {
			buf[0], buf[1] = 7, 8
		}
		r.Comm.Bcast(2, buf)
		if buf[0] != 7 || buf[1] != 8 {
			t.Errorf("rank %d Bcast buf = %v, want [7 8]", r.Rank(), buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherOrder(t *testing.T) {
	w := NewWorld(testConfig(3))
	err := w.Run(func(r *Rank) {
		out := r.Comm.Allgather([]float64{float64(r.Rank()), float64(r.Rank() * 10)})
		want := []float64{0, 0, 1, 10, 2, 20}
		if len(out) != len(want) {
			t.Fatalf("Allgather len = %d, want %d", len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("Allgather = %v, want %v", out, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierMakesClocksMeet(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Proc.Advance(500)
		}
		r.Comm.Barrier()
		if r.Proc.Now() < 500 {
			t.Errorf("rank %d left barrier at %g, before straggler at 500", r.Rank(), r.Proc.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesMessageSpace(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		dup := r.Comm.Dup()
		switch r.Rank() {
		case 0:
			r.Comm.Send(1, 5, []float64{1}) // world message
			dup.Send(1, 5, []float64{2})    // dup message, same tag
		case 1:
			buf := make([]float64, 1)
			dup.Recv(0, 5, buf)
			if buf[0] != 2 {
				t.Errorf("dup recv got %g, want 2 (world message must not match)", buf[0])
			}
			r.Comm.Recv(0, 5, buf)
			if buf[0] != 1 {
				t.Errorf("world recv got %g, want 1", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCreateSubgroup(t *testing.T) {
	w := NewWorld(testConfig(3))
	err := w.Run(func(r *Rank) {
		sub := r.Comm.CommCreate([]int{0, 2})
		switch r.Rank() {
		case 1:
			if sub != nil {
				t.Error("rank 1 should get nil sub-communicator")
			}
		case 0:
			if sub.Rank() != 0 || sub.Size() != 2 {
				t.Errorf("rank 0 sub rank/size = %d/%d", sub.Rank(), sub.Size())
			}
			sub.Send(1, 0, []float64{9})
		case 2:
			if sub.Rank() != 1 {
				t.Errorf("rank 2 sub rank = %d, want 1", sub.Rank())
			}
			buf := make([]float64, 1)
			sub.Recv(0, 0, buf)
			if buf[0] != 9 {
				t.Errorf("sub recv = %g, want 9", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCreateUnsortedPanics(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		r.Comm.CommCreate([]int{1, 0})
	})
	if err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("expected sorted-group panic, got %v", err)
	}
}

func TestCollectiveMismatchPanics(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Comm.Barrier()
		} else {
			r.Comm.Allreduce(OpSum, []float64{1})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "collective mismatch") {
		t.Fatalf("expected collective mismatch, got %v", err)
	}
}

func TestMPITimersRecorded(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		r.Comm.Init()
		if r.Rank() == 0 {
			r.Comm.Send(1, 0, []float64{1})
		} else {
			buf := make([]float64, 1)
			r.Comm.Recv(0, 0, buf)
		}
		r.Comm.Barrier()
		r.Comm.Wtime()
		r.Comm.KeyvalCreate()
		r.Comm.ErrhandlerSet()
		r.Comm.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := w.Profiles()[0]
	for _, name := range []string{"MPI_Init()", "MPI_Send()", "MPI_Barrier()", "MPI_Wtime()", "MPI_Keyval_create()", "MPI_Errhandler_set()", "MPI_Finalize()"} {
		tm := prof.Lookup(name)
		if tm == nil || tm.Calls() == 0 {
			t.Errorf("timer %s not recorded on rank 0", name)
		}
		if tm != nil && tm.Group() != "MPI" {
			t.Errorf("timer %s in group %q, want MPI", name, tm.Group())
		}
	}
	if w.Profiles()[1].Lookup("MPI_Recv()") == nil {
		t.Error("MPI_Recv() timer missing on rank 1")
	}
	if got := prof.GroupInclusive("MPI"); got <= 0 {
		t.Errorf("GroupInclusive(MPI) = %g, want > 0", got)
	}
}

func TestMessageSizeEvents(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Comm.Send(1, 0, make([]float64, 16))
		} else {
			r.Comm.Recv(0, 0, make([]float64, 16))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e := w.Profiles()[0].Event("Message size sent")
	if e == nil || e.Count() != 1 || e.Mean() != 128 {
		t.Errorf("sender event = %+v, want count 1 mean 128 bytes", e)
	}
	re := w.Profiles()[1].Event("Message size received")
	if re == nil || re.Mean() != 128 {
		t.Errorf("receiver event missing or wrong: %+v", re)
	}
}

// exchangePattern runs a representative multi-phase communication pattern
// and returns the final per-rank clocks.
func exchangePattern(t *testing.T, seed int64) []float64 {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Procs = 3
	cfg.Seed = seed
	w := NewWorld(cfg)
	err := w.Run(func(r *Rank) {
		r.Comm.Init()
		p := r.Comm.Size()
		me := r.Rank()
		for step := 0; step < 4; step++ {
			var reqs []*Request
			bufs := make([][]float64, p)
			for peer := 0; peer < p; peer++ {
				if peer == me {
					continue
				}
				bufs[peer] = make([]float64, 64)
				reqs = append(reqs, r.Comm.Irecv(peer, step, bufs[peer]))
			}
			payload := make([]float64, 64)
			for peer := 0; peer < p; peer++ {
				if peer == me {
					continue
				}
				reqs = append(reqs, r.Comm.Isend(peer, step, payload))
			}
			for {
				idx := r.Comm.Waitsome(reqs)
				if idx == nil {
					break
				}
			}
			r.Proc.ChargeFlops(1000 * (me + 1)) // imbalanced compute
		}
		r.Comm.Allreduce(OpSum, []float64{1})
		r.Comm.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	for i, p := range w.Procs() {
		out[i] = p.Now()
	}
	return out
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := exchangePattern(t, 5)
	b := exchangePattern(t, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rank %d clock differs across identical runs: %.9g vs %.9g", i, a[i], b[i])
		}
	}
	c := exchangePattern(t, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical clocks; noise not seeded")
	}
}

func TestSendToSelf(t *testing.T) {
	w := NewWorld(testConfig(1))
	err := w.Run(func(r *Rank) {
		r.Comm.Send(0, 0, []float64{3.14})
		buf := make([]float64, 1)
		r.Comm.Recv(0, 0, buf)
		if buf[0] != 3.14 {
			t.Errorf("self message = %g", buf[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidPeerPanics(t *testing.T) {
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Comm.Send(5, 0, []float64{1})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected out-of-range panic, got %v", err)
	}
}

func TestWtimeAdvances(t *testing.T) {
	w := NewWorld(testConfig(1))
	err := w.Run(func(r *Rank) {
		t0 := r.Comm.Wtime()
		r.Proc.Advance(1e6) // one virtual second
		t1 := r.Comm.Wtime()
		if d := t1 - t0; math.Abs(d-1.0) > 0.01 {
			t.Errorf("Wtime delta = %g s, want ~1", d)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoiseAffectsArrival(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 2
	cfg.Net = netmodel.Model{LatencyUS: 50, BytesPerUS: 10, NoiseSigma: 0.5, SoftwareUS: 1}
	w := NewWorld(cfg)
	var times []float64
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 10; i++ {
				r.Comm.Send(1, 0, make([]float64, 100))
			}
		} else {
			buf := make([]float64, 100)
			for i := 0; i < 10; i++ {
				t0 := r.Proc.Now()
				r.Comm.Recv(0, 0, buf)
				times = append(times, r.Proc.Now()-t0)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, d := range times {
		distinct[d] = true
	}
	if len(distinct) < 5 {
		t.Errorf("network noise produced only %d distinct receive costs", len(distinct))
	}
}
