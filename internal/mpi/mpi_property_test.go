package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Allreduce(sum) over random per-rank vectors equals the serial
// fold, for any world size 2..5 and vector length 1..32.
func TestPropertyAllreduceMatchesSerialFold(t *testing.T) {
	f := func(seed int64, pRaw, nRaw uint8) bool {
		p := int(pRaw%4) + 2
		n := int(nRaw%32) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([][]float64, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			data[r] = make([]float64, n)
			for i := range data[r] {
				data[r][i] = math.Round(rng.Float64()*1000) / 16
				want[i] += data[r][i]
			}
		}
		cfg := testConfig(p)
		w := NewWorld(cfg)
		ok := true
		err := w.Run(func(rk *Rank) {
			got := rk.Comm.Allreduce(OpSum, data[rk.Rank()])
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: an all-to-all exchange delivers every payload intact for any
// tag assignment.
func TestPropertyAllToAllDelivery(t *testing.T) {
	f := func(seed int64) bool {
		const p = 3
		rng := rand.New(rand.NewSource(seed))
		payload := make([][][]float64, p) // [src][dst]
		for s := 0; s < p; s++ {
			payload[s] = make([][]float64, p)
			for d := 0; d < p; d++ {
				n := rng.Intn(64) + 1
				payload[s][d] = make([]float64, n)
				for i := range payload[s][d] {
					payload[s][d][i] = float64(s*1000+d*100) + rng.Float64()
				}
			}
		}
		cfg := testConfig(p)
		w := NewWorld(cfg)
		ok := true
		err := w.Run(func(rk *Rank) {
			me := rk.Rank()
			var reqs []*Request
			bufs := make([][]float64, p)
			for src := 0; src < p; src++ {
				if src == me {
					continue
				}
				bufs[src] = make([]float64, len(payload[src][me]))
				reqs = append(reqs, rk.Comm.Irecv(src, 5, bufs[src]))
			}
			for dst := 0; dst < p; dst++ {
				if dst != me {
					rk.Comm.Isend(dst, 5, payload[me][dst])
				}
			}
			for rk.Comm.Waitsome(reqs) != nil {
			}
			for src := 0; src < p; src++ {
				if src == me {
					continue
				}
				for i := range bufs[src] {
					if bufs[src][i] != payload[src][me][i] {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDupChainIsolation(t *testing.T) {
	// Nested duplicates each carry an isolated message space.
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		d1 := r.Comm.Dup()
		d2 := d1.Dup()
		switch r.Rank() {
		case 0:
			r.Comm.Send(1, 1, []float64{0})
			d1.Send(1, 1, []float64{1})
			d2.Send(1, 1, []float64{2})
		case 1:
			buf := make([]float64, 1)
			d2.Recv(0, 1, buf)
			if buf[0] != 2 {
				panic("d2 crossed message spaces")
			}
			d1.Recv(0, 1, buf)
			if buf[0] != 1 {
				panic("d1 crossed message spaces")
			}
			r.Comm.Recv(0, 1, buf)
			if buf[0] != 0 {
				panic("world crossed message spaces")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManySmallMessagesStress(t *testing.T) {
	// A thousand interleaved messages per pair survive with correct
	// ordering and no deadlock.
	const n = 1000
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				r.Comm.Send(1, i%7, []float64{float64(i)})
			}
		} else {
			seen := make(map[int][]float64, 7)
			buf := make([]float64, 1)
			for i := 0; i < n; i++ {
				tag := i % 7
				r.Comm.Recv(0, tag, buf)
				seen[tag] = append(seen[tag], buf[0])
			}
			// Per-tag FIFO ordering must hold.
			for tag, vals := range seen {
				for i := 1; i < len(vals); i++ {
					if vals[i] <= vals[i-1] {
						panic("per-tag FIFO violated")
					}
				}
				_ = tag
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAllOpsAgainstFold(t *testing.T) {
	ops := []Op{OpSum, OpMax, OpMin, OpProd}
	folds := []func(a, b float64) float64{
		func(a, b float64) float64 { return a + b },
		math.Max, math.Min,
		func(a, b float64) float64 { return a * b },
	}
	in := [][]float64{{2, -1}, {5, 3}, {-4, 0.5}}
	for k, op := range ops {
		w := NewWorld(testConfig(3))
		want0 := in[0][0]
		want1 := in[0][1]
		for r := 1; r < 3; r++ {
			want0 = folds[k](want0, in[r][0])
			want1 = folds[k](want1, in[r][1])
		}
		err := w.Run(func(r *Rank) {
			got := r.Comm.Allreduce(op, in[r.Rank()])
			if got[0] != want0 || got[1] != want1 {
				panic("reduction mismatch")
			}
		})
		if err != nil {
			t.Fatalf("op %d: %v", k, err)
		}
	}
}

func TestUnknownOpPanics(t *testing.T) {
	// Two ranks so the reduction actually applies the operator.
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		r.Comm.Allreduce(Op(99), []float64{1})
	})
	if err == nil {
		t.Fatal("unknown op accepted")
	}
}
