package mpi

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Allreduce(sum) over random per-rank vectors equals the serial
// fold, for any world size 2..5 and vector length 1..32.
func TestPropertyAllreduceMatchesSerialFold(t *testing.T) {
	f := func(seed int64, pRaw, nRaw uint8) bool {
		p := int(pRaw%4) + 2
		n := int(nRaw%32) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([][]float64, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			data[r] = make([]float64, n)
			for i := range data[r] {
				data[r][i] = math.Round(rng.Float64()*1000) / 16
				want[i] += data[r][i]
			}
		}
		cfg := testConfig(p)
		w := NewWorld(cfg)
		ok := true
		err := w.Run(func(rk *Rank) {
			got := rk.Comm.Allreduce(OpSum, data[rk.Rank()])
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: an all-to-all exchange delivers every payload intact for any
// tag assignment.
func TestPropertyAllToAllDelivery(t *testing.T) {
	f := func(seed int64) bool {
		const p = 3
		rng := rand.New(rand.NewSource(seed))
		payload := make([][][]float64, p) // [src][dst]
		for s := 0; s < p; s++ {
			payload[s] = make([][]float64, p)
			for d := 0; d < p; d++ {
				n := rng.Intn(64) + 1
				payload[s][d] = make([]float64, n)
				for i := range payload[s][d] {
					payload[s][d][i] = float64(s*1000+d*100) + rng.Float64()
				}
			}
		}
		cfg := testConfig(p)
		w := NewWorld(cfg)
		ok := true
		err := w.Run(func(rk *Rank) {
			me := rk.Rank()
			var reqs []*Request
			bufs := make([][]float64, p)
			for src := 0; src < p; src++ {
				if src == me {
					continue
				}
				bufs[src] = make([]float64, len(payload[src][me]))
				reqs = append(reqs, rk.Comm.Irecv(src, 5, bufs[src]))
			}
			for dst := 0; dst < p; dst++ {
				if dst != me {
					rk.Comm.Isend(dst, 5, payload[me][dst])
				}
			}
			for rk.Comm.Waitsome(reqs) != nil {
			}
			for src := 0; src < p; src++ {
				if src == me {
					continue
				}
				for i := range bufs[src] {
					if bufs[src][i] != payload[src][me][i] {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// randomPatternBody builds a deterministic random communication pattern in
// the style of TestPropertyAllToAllDelivery: every rank posts receives from
// all peers, computes a random amount, sends random payloads, drains with
// Waitsome recording the completion order, then closes with a reduction.
// All randomness is drawn from per-rank streams seeded by (seed, rank), so
// the pattern itself is identical across scheduler modes.
func randomPatternBody(seed int64, p int) func(r *Rank, log *[]string) {
	return func(r *Rank, log *[]string) {
		me := r.Rank()
		rng := rand.New(rand.NewSource(seed ^ int64(me)*0x9E3779B9))
		var reqs []*Request
		bufs := make([][]float64, p)
		for src := 0; src < p; src++ {
			if src == me {
				continue
			}
			bufs[src] = make([]float64, 64)
			reqs = append(reqs, r.Comm.Irecv(src, rng.Intn(3), bufs[src]))
		}
		r.Proc.Advance(rng.Float64() * 200)
		for dst := 0; dst < p; dst++ {
			if dst == me {
				continue
			}
			n := rng.Intn(63) + 1
			payload := make([]float64, n)
			for i := range payload {
				payload[i] = float64(me*1000) + rng.Float64()
			}
			// Tags cycle 0..2 on both ends; mismatches resolve through
			// later sends, exercising out-of-order matching.
			for tag := 0; tag < 3; tag++ {
				r.Comm.Isend(dst, tag, payload)
			}
			r.Proc.Advance(rng.Float64() * 40)
		}
		for {
			done := r.Comm.Waitsome(reqs)
			if done == nil {
				break
			}
			for _, i := range done {
				*log = append(*log, fmt.Sprintf("%d:%.6f@%.3f", i, reqs[i].buf[0], r.Proc.Now()))
			}
		}
		sum := r.Comm.Allreduce(OpSum, []float64{r.Proc.Now()})
		*log = append(*log, fmt.Sprintf("sum=%.6f", sum[0]))
	}
}

// Property: any random communication pattern yields bit-identical final
// clocks, profiles and message completion orders under the serial, the
// conservative parallel and the optimistic scheduler — the tentpole
// determinism guarantee.
func TestPropertySchedulerEquivalence(t *testing.T) {
	f := func(seed int64, pRaw, capRaw uint8) bool {
		p := int(pRaw%4) + 2
		body := randomPatternBody(seed, p)
		serialCfg := testConfig(p)
		serialCfg.Net.NoiseSigma = 0.35
		serial := runTraced(t, serialCfg, body)
		for _, mode := range []SchedulerMode{ConservativeParallel, OptimisticParallel} {
			parCfg := serialCfg
			parCfg.Sched = mode
			parCfg.MaxParallelRanks = int(capRaw % 4) // 0 (uncapped) .. 3
			par := runTraced(t, parCfg, body)
			for r := range serial.clocks {
				if serial.clocks[r] != par.clocks[r] ||
					serial.counters[r] != par.counters[r] ||
					!bytes.Equal(serial.profiles[r], par.profiles[r]) ||
					fmt.Sprint(serial.log[r]) != fmt.Sprint(par.log[r]) {
					t.Logf("seed %d p %d sched %v rank %d diverged:\nserial %v\n%v     %v",
						seed, p, mode, r, serial.log[r], mode, par.log[r])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// wildcardPatternBody is randomPatternBody's adversarial cousin for the
// optimistic scheduler: receives use MPI_ANY_SOURCE (and mixed tags), so
// every match is speculative and the commit automaton must arbitrate the
// order. Random compute skews make the real-time publication order diverge
// hard from the virtual-time serial order, forcing mispredictions.
func wildcardPatternBody(seed int64, p int) func(r *Rank, log *[]string) {
	return func(r *Rank, log *[]string) {
		me := r.Rank()
		rng := rand.New(rand.NewSource(seed ^ int64(me)*0x5bd1e995))
		if me == 0 {
			// Rank 0 drains (p-1)*3 wildcard receives one at a time plus a
			// batch of wildcard Irecvs via Waitsome.
			buf := make([]float64, 64)
			for i := 0; i < (p-1)*2; i++ {
				n := r.Comm.Recv(AnySource, AnyTag, buf)
				*log = append(*log, fmt.Sprintf("recv n=%d v=%.6f@%.3f", n, buf[0], r.Proc.Now()))
			}
			var reqs []*Request
			bufs := make([][]float64, p-1)
			for i := range bufs {
				bufs[i] = make([]float64, 64)
				reqs = append(reqs, r.Comm.Irecv(AnySource, AnyTag, bufs[i]))
			}
			for {
				done := r.Comm.Waitsome(reqs)
				if done == nil {
					break
				}
				for _, i := range done {
					*log = append(*log, fmt.Sprintf("some %d=%.6f@%.3f", i, bufs[i][0], r.Proc.Now()))
				}
			}
		} else {
			for i := 0; i < 3; i++ {
				r.Proc.Advance(rng.Float64() * 300)
				n := rng.Intn(32) + 1
				payload := make([]float64, n)
				for j := range payload {
					payload[j] = float64(me*1000+i*10) + rng.Float64()
				}
				r.Comm.Send(0, rng.Intn(3), payload)
			}
		}
		sum := r.Comm.Allreduce(OpSum, []float64{r.Proc.Now()})
		*log = append(*log, fmt.Sprintf("sum=%.6f", sum[0]))
	}
}

// Property: wildcard-heavy patterns — where the optimistic scheduler must
// speculate every match — still produce bit-identical results in all three
// modes, for random seeds and rank caps.
func TestPropertyWildcardSchedulerEquivalence(t *testing.T) {
	f := func(seed int64, pRaw, capRaw uint8) bool {
		p := int(pRaw%4) + 2
		body := wildcardPatternBody(seed, p)
		serialCfg := testConfig(p)
		serialCfg.Net.NoiseSigma = 0.35
		serial := runTraced(t, serialCfg, body)
		for _, mode := range []SchedulerMode{ConservativeParallel, OptimisticParallel} {
			cfg := serialCfg.WithScheduler(mode, int(capRaw%4))
			par := runTraced(t, cfg, body)
			for r := range serial.clocks {
				if serial.clocks[r] != par.clocks[r] ||
					serial.counters[r] != par.counters[r] ||
					!bytes.Equal(serial.profiles[r], par.profiles[r]) ||
					fmt.Sprint(serial.log[r]) != fmt.Sprint(par.log[r]) {
					t.Logf("seed %d p %d sched %v rank %d diverged", seed, p, mode, r)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDupChainIsolation(t *testing.T) {
	// Nested duplicates each carry an isolated message space.
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		d1 := r.Comm.Dup()
		d2 := d1.Dup()
		switch r.Rank() {
		case 0:
			r.Comm.Send(1, 1, []float64{0})
			d1.Send(1, 1, []float64{1})
			d2.Send(1, 1, []float64{2})
		case 1:
			buf := make([]float64, 1)
			d2.Recv(0, 1, buf)
			if buf[0] != 2 {
				panic("d2 crossed message spaces")
			}
			d1.Recv(0, 1, buf)
			if buf[0] != 1 {
				panic("d1 crossed message spaces")
			}
			r.Comm.Recv(0, 1, buf)
			if buf[0] != 0 {
				panic("world crossed message spaces")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManySmallMessagesStress(t *testing.T) {
	// A thousand interleaved messages per pair survive with correct
	// ordering and no deadlock.
	const n = 1000
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < n; i++ {
				r.Comm.Send(1, i%7, []float64{float64(i)})
			}
		} else {
			seen := make(map[int][]float64, 7)
			buf := make([]float64, 1)
			for i := 0; i < n; i++ {
				tag := i % 7
				r.Comm.Recv(0, tag, buf)
				seen[tag] = append(seen[tag], buf[0])
			}
			// Per-tag FIFO ordering must hold.
			for tag, vals := range seen {
				for i := 1; i < len(vals); i++ {
					if vals[i] <= vals[i-1] {
						panic("per-tag FIFO violated")
					}
				}
				_ = tag
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAllOpsAgainstFold(t *testing.T) {
	ops := []Op{OpSum, OpMax, OpMin, OpProd}
	folds := []func(a, b float64) float64{
		func(a, b float64) float64 { return a + b },
		math.Max, math.Min,
		func(a, b float64) float64 { return a * b },
	}
	in := [][]float64{{2, -1}, {5, 3}, {-4, 0.5}}
	for k, op := range ops {
		w := NewWorld(testConfig(3))
		want0 := in[0][0]
		want1 := in[0][1]
		for r := 1; r < 3; r++ {
			want0 = folds[k](want0, in[r][0])
			want1 = folds[k](want1, in[r][1])
		}
		err := w.Run(func(r *Rank) {
			got := r.Comm.Allreduce(op, in[r.Rank()])
			if got[0] != want0 || got[1] != want1 {
				panic("reduction mismatch")
			}
		})
		if err != nil {
			t.Fatalf("op %d: %v", k, err)
		}
	}
}

func TestUnknownOpPanics(t *testing.T) {
	// Two ranks so the reduction actually applies the operator.
	w := NewWorld(testConfig(2))
	err := w.Run(func(r *Rank) {
		r.Comm.Allreduce(Op(99), []float64{1})
	})
	if err == nil {
		t.Fatal("unknown op accepted")
	}
}
