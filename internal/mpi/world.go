// Package mpi implements the MPI-1 subset that CCAFFEINE's SCMD (Single
// Component Multiple Data) execution model relies on, running over
// goroutines inside one process: blocking and nonblocking point-to-point
// (including MPI_Waitsome, the paper's hottest MPI call), collectives,
// and communicator duplication/creation.
//
// Each simulated rank owns a platform.Proc (virtual clock, cache, RNG) and
// a tau.Profile; every MPI entry point is wrapped in a TAU timer of group
// "MPI", exactly like TAU's MPI profiling interface, so the Fig. 3 profile
// rows and the Mastermind's "time in MPI" query come out of the same
// mechanism the paper used.
//
// Scheduling is a conservative, fully deterministic token model: exactly
// one rank executes at a time, and whenever the running rank blocks inside
// MPI, the token passes to the runnable rank with the smallest virtual
// clock. Message arrival times are computed from the sender's clock plus
// the network model, so "time spent waiting in MPI" is the difference
// between virtual arrival and the receiver's entry time — deterministic
// run to run.
package mpi

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/platform"
	"repro/internal/tau"
)

// rank execution states for the token scheduler.
const (
	stReady = iota
	stRunning
	stBlocked
	stDone
)

// CPUTune scales the per-rank CPU model relative to its calibrated base —
// the paper's Section 6 "parameterized by processor speed and a cache
// model" machine knobs, exposed as campaign grid dimensions. Every field
// is a multiplier; the zero value (and 1.0) leaves the calibrated model
// bit-for-bit unchanged.
type CPUTune struct {
	// ClockScale multiplies the core clock (2.0 simulates a CPU twice as
	// fast as the paper's 2.8 GHz Xeon). Zero means 1.
	ClockScale float64
	// HitScale multiplies the cache-hit cycle cost. Zero means 1.
	HitScale float64
	// MissScale multiplies the cache-miss (memory) penalty — a crude DRAM
	// speed knob. Zero means 1.
	MissScale float64
}

// IsZero reports whether the tune leaves the CPU model untouched.
func (t CPUTune) IsZero() bool { return t == CPUTune{} }

// orOne maps the zero value of a multiplier knob to 1.
func orOne(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Apply returns the CPU model with the tune's scales applied. A zero tune
// returns m unchanged (no arithmetic at all, so calibrated timings stay
// bit-for-bit identical).
func (t CPUTune) Apply(m platform.CPUModel) platform.CPUModel {
	if t.IsZero() {
		return m
	}
	m.ClockGHz *= orOne(t.ClockScale)
	m.HitCycles *= orOne(t.HitScale)
	m.MissCycles *= orOne(t.MissScale)
	return m
}

// WorldConfig assembles the simulated machine: P ranks, each with the given
// CPU and cache, connected by the given network.
type WorldConfig struct {
	// Procs is the number of SCMD ranks (the paper used 3).
	Procs int
	// CPU is the per-rank processor model.
	CPU platform.CPUModel
	// Cache is the per-rank cache geometry.
	Cache cache.Config
	// Net is the interconnect model.
	Net netmodel.Model
	// Seed makes all random streams (network noise) reproducible.
	Seed int64
	// InitUS and FinalizeUS are the one-time costs charged by MPI_Init and
	// MPI_Finalize (startup/teardown of the parallel machine). Zero values
	// get defaults matching the Fig. 3 magnitudes.
	InitUS     float64
	FinalizeUS float64
	// Tune scales the CPU model (clock, hit/miss penalties) relative to
	// its calibrated base. The zero value changes nothing.
	Tune CPUTune
}

// legacyWorldConfig mirrors WorldConfig's pre-Tune field set. GoString
// renders through it so configurations that do not use the CPU tune keep
// the exact %#v bytes they had before the field existed — campaign
// checkpoint hashes are SHA-256 digests of that rendering, and stored
// payloads from earlier runs must stay addressable.
type legacyWorldConfig struct {
	Procs      int
	CPU        platform.CPUModel
	Cache      cache.Config
	Net        netmodel.Model
	Seed       int64
	InitUS     float64
	FinalizeUS float64
}

// GoString implements fmt.GoStringer (%#v). A zero Tune renders exactly
// like the pre-Tune WorldConfig; a non-zero Tune appends a Tune field, so
// tuned machines hash distinctly.
func (c WorldConfig) GoString() string {
	legacy := legacyWorldConfig{
		Procs: c.Procs, CPU: c.CPU, Cache: c.Cache, Net: c.Net,
		Seed: c.Seed, InitUS: c.InitUS, FinalizeUS: c.FinalizeUS,
	}
	s := "mpi.WorldConfig" + strings.TrimPrefix(fmt.Sprintf("%#v", legacy), "mpi.legacyWorldConfig")
	if !c.Tune.IsZero() {
		s = strings.TrimSuffix(s, "}") + fmt.Sprintf(", Tune:%#v}", c.Tune)
	}
	return s
}

// DefaultConfig returns the paper-calibrated 3-rank world.
func DefaultConfig() WorldConfig {
	return WorldConfig{
		Procs: 3,
		CPU:   platform.XeonModel(),
		Cache: cache.XeonL2(),
		Net:   netmodel.FastEthernet(),
		Seed:  1,
	}
}

type mailKey struct {
	comm int
	dst  int // world rank of the receiver
}

type message struct {
	src    int // rank within the communicator
	tag    int
	data   []float64
	arrive float64 // virtual arrival time at the destination
	seq    uint64
}

// World is the simulated parallel machine. Create one with NewWorld, then
// call Run with the SCMD body. All exported methods on Comm must be called
// from within the body, on the goroutine Run started for that rank.
type World struct {
	cfg WorldConfig

	mu      sync.Mutex
	cond    *sync.Cond
	ranks   []*Rank
	status  []int
	blocked []func() bool
	current int
	aborted bool

	mailboxes map[mailKey][]*message
	seq       uint64

	colls      map[int]*collState
	nextCommID int
	rng        *rand.Rand

	panics []error
}

// Rank is the execution context handed to the SCMD body for one rank: its
// world communicator, platform processor and TAU profile.
type Rank struct {
	world *World
	rank  int

	// Comm is the rank's MPI_COMM_WORLD analog.
	Comm *Comm
	// Proc is the rank's simulated processor (clock, cache, RNG, heap).
	Proc *platform.Proc
	// Prof is the rank's TAU measurement context. MPI timers appear here
	// under group "MPI".
	Prof *tau.Profile
}

// Rank returns this context's world rank.
func (r *Rank) Rank() int { return r.rank }

// NewWorld builds the simulated machine. It panics on a non-positive rank
// count, mirroring an mpirun misconfiguration.
func NewWorld(cfg WorldConfig) *World {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("mpi: world size %d", cfg.Procs))
	}
	if cfg.InitUS == 0 {
		cfg.InitUS = 600_000
	}
	if cfg.FinalizeUS == 0 {
		cfg.FinalizeUS = 140_000
	}
	w := &World{
		cfg:        cfg,
		current:    -1,
		mailboxes:  make(map[mailKey][]*message),
		colls:      make(map[int]*collState),
		nextCommID: 1,
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x51ca5e)),
		status:     make([]int, cfg.Procs),
		blocked:    make([]func() bool, cfg.Procs),
		panics:     make([]error, cfg.Procs),
	}
	w.cond = sync.NewCond(&w.mu)
	group := make([]int, cfg.Procs)
	for i := range group {
		group[i] = i
	}
	cpu := cfg.Tune.Apply(cfg.CPU)
	for i := 0; i < cfg.Procs; i++ {
		proc := platform.NewProc(i, cpu, cfg.Cache, cfg.Seed)
		prof := tau.NewProfile(proc.Now)
		prof.RegisterMetric("PAPI_L2_DCM", func() float64 { return float64(proc.Counters().L2DCM) })
		prof.RegisterMetric("PAPI_FP_OPS", func() float64 { return float64(proc.Counters().FPOps) })
		r := &Rank{world: w, rank: i, Proc: proc, Prof: prof}
		r.Comm = &Comm{world: w, id: 0, rank: i, group: group, r: r}
		w.ranks = append(w.ranks, r)
		w.status[i] = stReady
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.cfg.Procs }

// Config returns the world's configuration.
func (w *World) Config() WorldConfig { return w.cfg }

// Ranks returns the per-rank contexts (valid after Run for inspection).
func (w *World) Ranks() []*Rank { return w.ranks }

// Profiles returns the per-rank TAU profiles, in rank order.
func (w *World) Profiles() []*tau.Profile {
	out := make([]*tau.Profile, len(w.ranks))
	for i, r := range w.ranks {
		out[i] = r.Prof
	}
	return out
}

// Procs returns the per-rank platform processors, in rank order.
func (w *World) Procs() []*platform.Proc {
	out := make([]*platform.Proc, len(w.ranks))
	for i, r := range w.ranks {
		out[i] = r.Proc
	}
	return out
}

// abortPanic is the sentinel thrown to unwind ranks parked inside MPI when
// the world aborts (deadlock or another rank's panic). It carries no
// diagnostic value of its own and never masks the original error.
type abortPanic struct{}

// Run executes body once per rank (SCMD) and blocks until every rank
// finishes. It returns the first rank panic as an error, or a deadlock
// error if all live ranks blocked on unsatisfiable conditions. A World can
// only be Run once.
func (w *World) Run(body func(*Rank)) error {
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Procs; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				e := recover()
				w.mu.Lock()
				if _, isAbort := e.(abortPanic); e != nil && !isAbort {
					w.panics[rank] = fmt.Errorf("mpi: rank %d panicked: %v\n%s", rank, e, debug.Stack())
					w.aborted = true
				}
				w.status[rank] = stDone
				w.blocked[rank] = nil
				w.advanceLocked()
				w.mu.Unlock()
			}()
			func() {
				w.mu.Lock()
				defer w.mu.Unlock()
				w.waitForTurnLocked(rank)
			}()
			body(w.ranks[rank])
		}(i)
	}
	w.mu.Lock()
	w.advanceLocked()
	w.mu.Unlock()
	wg.Wait()
	for _, err := range w.panics {
		if err != nil {
			return err
		}
	}
	return nil
}

// waitForTurnLocked blocks until the scheduler grants this rank the token.
func (w *World) waitForTurnLocked(rank int) {
	for w.current != rank {
		if w.aborted {
			panic(abortPanic{})
		}
		w.cond.Wait()
	}
	w.status[rank] = stRunning
}

// blockOn parks the running rank until pred() holds, handing the token to
// the runnable rank with the smallest virtual clock meanwhile.
// Caller must hold w.mu and be the current rank.
func (w *World) blockOn(rank int, pred func() bool) {
	if pred() {
		return
	}
	w.status[rank] = stBlocked
	w.blocked[rank] = pred
	w.advanceLocked()
	w.waitForTurnLocked(rank)
	w.blocked[rank] = nil
}

// advanceLocked promotes blocked ranks whose predicates now hold and grants
// the token to the ready rank with the smallest (clock, rank). If no rank
// can run and not all are done, the world is deadlocked: every parked rank
// is woken into a panic.
func (w *World) advanceLocked() {
	if w.aborted {
		w.current = -1
		w.cond.Broadcast()
		return
	}
	for r := range w.status {
		if w.status[r] == stBlocked && w.blocked[r]() {
			w.status[r] = stReady
		}
	}
	next, best := -1, 0.0
	allDone := true
	for r := range w.status {
		switch w.status[r] {
		case stReady:
			allDone = false
			t := w.ranks[r].Proc.Now()
			if next == -1 || t < best {
				next, best = r, t
			}
		case stBlocked, stRunning:
			allDone = false
		}
	}
	w.current = next
	if next == -1 && !allDone {
		// Every live rank is blocked: deadlock. Abort the world so the
		// parked goroutines panic with diagnostics instead of hanging.
		w.aborted = true
		for r := range w.status {
			if w.status[r] == stBlocked {
				w.panics[r] = fmt.Errorf("mpi: deadlock: rank %d blocked at t=%.3fus with no matching communication", r, w.ranks[r].Proc.Now())
			}
		}
	}
	w.cond.Broadcast()
}

// enqueueLocked places a message in a mailbox.
func (w *World) enqueueLocked(key mailKey, m *message) {
	w.seq++
	m.seq = w.seq
	w.mailboxes[key] = append(w.mailboxes[key], m)
}

// matchLocked removes and returns the first message matching (src, tag) in
// FIFO order, or nil.
func (w *World) matchLocked(key mailKey, src, tag int) *message {
	box := w.mailboxes[key]
	for i, m := range box {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			w.mailboxes[key] = append(box[:i:i], box[i+1:]...)
			return m
		}
	}
	return nil
}

// hasMatchLocked reports whether a matching message is queued.
func (w *World) hasMatchLocked(key mailKey, src, tag int) bool {
	for _, m := range w.mailboxes[key] {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			return true
		}
	}
	return false
}
