// Package mpi implements the MPI-1 subset that CCAFFEINE's SCMD (Single
// Component Multiple Data) execution model relies on, running over
// goroutines inside one process: blocking and nonblocking point-to-point
// (including MPI_Waitsome, the paper's hottest MPI call), collectives,
// and communicator duplication/creation.
//
// Each simulated rank owns a platform.Proc (virtual clock, cache, RNG) and
// a tau.Profile; every MPI entry point is wrapped in a TAU timer of group
// "MPI", exactly like TAU's MPI profiling interface, so the Fig. 3 profile
// rows and the Mastermind's "time in MPI" query come out of the same
// mechanism the paper used.
//
// Scheduling is conservative and fully deterministic in both modes:
//
//   - Serial (the zero value) is the original token model: exactly one
//     rank executes at a time, and whenever the running rank blocks inside
//     MPI, the token passes to the runnable rank with the smallest virtual
//     clock. Message arrival times are computed from the sender's clock
//     plus the network model, so "time spent waiting in MPI" is the
//     difference between virtual arrival and the receiver's entry time —
//     deterministic run to run.
//   - ConservativeParallel runs rank goroutines concurrently between
//     communication events: compute segments (which touch only rank-local
//     state — clock, cache, RNG, profile) execute in parallel on real
//     cores, while every operation on order-sensitive shared state
//     (mailboxes, collectives, communicator ids, the collective-cost RNG)
//     commits under the same token discipline the serial scheduler uses,
//     in the same total order. Sends are buffered rank-locally during
//     run-ahead and flushed at the rank's next commit turn. The result is
//     bit-for-bit identical virtual clocks, profiles and message orders —
//     parallelism is purely a wall-clock optimization.
package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tau"
)

// rank execution states for the token scheduler.
const (
	stReady = iota
	stRunning
	stBlocked
	stDone
)

// SchedulerMode selects how World.Run schedules its rank goroutines. All
// modes produce bit-for-bit identical virtual clocks, profiles and
// message orders; they differ only in wall-clock time and core usage.
type SchedulerMode int

const (
	// Serial is the original token scheduler: exactly one rank goroutine
	// executes at a time, so a world uses one core regardless of size.
	Serial SchedulerMode = iota
	// ConservativeParallel executes rank compute segments concurrently,
	// synchronizing only at communication events: each rank runs ahead to
	// its next interaction (its lookahead horizon) on its own goroutine,
	// and shared-state commits replay the serial token order exactly.
	ConservativeParallel
	// OptimisticParallel speculates past order-sensitive operations in the
	// Time Warp style: ranks run ahead publishing sends immediately, match
	// wildcard receives tentatively under an undo log, and a commit
	// automaton replays the serial token order over the recorded event
	// streams, validating every speculative outcome before the operation
	// returns — rolling the rank back and re-executing on a mis-match.
	// Results stay bit-identical to Serial; only wall-clock time changes.
	OptimisticParallel
)

// schedulerModeTokens is the single registry of valid scheduler modes and
// their stable string tokens. String, Validate and flag parsing all read
// this table, so adding a mode cannot silently produce "SchedulerMode(n)"
// scenario keys or pass validation unchecked.
var schedulerModeTokens = map[SchedulerMode]string{
	Serial:               "serial",
	ConservativeParallel: "par",
	OptimisticParallel:   "opt",
}

// String returns the mode's stable token ("serial", "par", "opt"), used by
// the campaign scheduler axis and command-line flags.
func (m SchedulerMode) String() string {
	if tok, ok := schedulerModeTokens[m]; ok {
		return tok
	}
	return fmt.Sprintf("SchedulerMode(%d)", int(m))
}

// ParseSchedulerMode maps a stable token ("serial", "par", "opt") back to
// its SchedulerMode, for command-line flags.
func ParseSchedulerMode(tok string) (SchedulerMode, error) {
	for m, t := range schedulerModeTokens {
		if t == tok {
			return m, nil
		}
	}
	return 0, fmt.Errorf("mpi: unknown scheduler mode %q (want serial, par or opt)", tok)
}

// CPUTune scales the per-rank CPU model relative to its calibrated base —
// the paper's Section 6 "parameterized by processor speed and a cache
// model" machine knobs, exposed as campaign grid dimensions. Every field
// is a multiplier; the zero value (and 1.0) leaves the calibrated model
// bit-for-bit unchanged.
type CPUTune struct {
	// ClockScale multiplies the core clock (2.0 simulates a CPU twice as
	// fast as the paper's 2.8 GHz Xeon). Zero means 1.
	ClockScale float64
	// HitScale multiplies the cache-hit cycle cost. Zero means 1.
	HitScale float64
	// MissScale multiplies the cache-miss (memory) penalty — a crude DRAM
	// speed knob. Zero means 1.
	MissScale float64
}

// IsZero reports whether the tune leaves the CPU model untouched.
func (t CPUTune) IsZero() bool { return t == CPUTune{} }

// orOne maps the zero value of a multiplier knob to 1.
func orOne(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Apply returns the CPU model with the tune's scales applied. A zero tune
// returns m unchanged (no arithmetic at all, so calibrated timings stay
// bit-for-bit identical).
func (t CPUTune) Apply(m platform.CPUModel) platform.CPUModel {
	if t.IsZero() {
		return m
	}
	m.ClockGHz *= orOne(t.ClockScale)
	m.HitCycles *= orOne(t.HitScale)
	m.MissCycles *= orOne(t.MissScale)
	return m
}

// WorldConfig assembles the simulated machine: P ranks, each with the given
// CPU and cache, connected by the given network.
type WorldConfig struct {
	// Procs is the number of SCMD ranks (the paper used 3).
	Procs int
	// CPU is the per-rank processor model.
	CPU platform.CPUModel
	// Cache is the per-rank cache geometry.
	Cache cache.Config
	// Net is the interconnect model.
	Net netmodel.Model
	// Seed makes all random streams (network noise) reproducible.
	Seed int64
	// InitUS and FinalizeUS are the one-time costs charged by MPI_Init and
	// MPI_Finalize (startup/teardown of the parallel machine). Zero values
	// get defaults matching the Fig. 3 magnitudes.
	InitUS     float64
	FinalizeUS float64
	// Tune scales the CPU model (clock, hit/miss penalties) relative to
	// its calibrated base. The zero value changes nothing.
	Tune CPUTune
	// Sched selects the rank scheduler. The zero value is the serial token
	// scheduler; ConservativeParallel and OptimisticParallel run rank
	// compute concurrently with bit-for-bit identical results.
	Sched SchedulerMode
	// MaxParallelRanks caps how many ranks compute concurrently under the
	// parallel schedulers. Zero means no cap (the Go runtime's GOMAXPROCS
	// governs actual parallelism); it is ignored by the serial scheduler.
	MaxParallelRanks int
	// SpecWindowMin and SpecWindowMax bound the optimistic scheduler's
	// per-rank adaptive speculation window: each rank's window starts at
	// SpecWindowMax, halves (never below SpecWindowMin) whenever the rank
	// rolls back, and grows back additively after clean commit batches.
	// Both zero (the default) keeps the fixed 4096-event window, so
	// existing scenario keys and checkpoint hashes stay byte-identical;
	// set both (0 < min <= max) to enable adaptation. min == max pins a
	// fixed window of that size. Ignored outside OptimisticParallel.
	SpecWindowMin int
	SpecWindowMax int
}

// legacyWorldConfig mirrors WorldConfig's pre-Tune field set. GoString
// renders through it so configurations that do not use the CPU tune or the
// parallel scheduler keep the exact %#v bytes they had before those fields
// existed — campaign checkpoint hashes are SHA-256 digests of that
// rendering, and stored payloads from earlier runs must stay addressable.
type legacyWorldConfig struct {
	Procs      int
	CPU        platform.CPUModel
	Cache      cache.Config
	Net        netmodel.Model
	Seed       int64
	InitUS     float64
	FinalizeUS float64
}

// GoString implements fmt.GoStringer (%#v). A zero Tune/Sched renders
// exactly like the pre-Tune WorldConfig; non-default fields are appended,
// so tuned machines and non-default schedulers hash distinctly while
// untouched configs keep byte-identical checkpoint hashes and seeds.
func (c WorldConfig) GoString() string {
	legacy := legacyWorldConfig{
		Procs: c.Procs, CPU: c.CPU, Cache: c.Cache, Net: c.Net,
		Seed: c.Seed, InitUS: c.InitUS, FinalizeUS: c.FinalizeUS,
	}
	s := "mpi.WorldConfig" + strings.TrimPrefix(fmt.Sprintf("%#v", legacy), "mpi.legacyWorldConfig")
	if !c.Tune.IsZero() {
		s = strings.TrimSuffix(s, "}") + fmt.Sprintf(", Tune:%#v}", c.Tune)
	}
	if c.Sched != Serial {
		s = strings.TrimSuffix(s, "}") + fmt.Sprintf(", Sched:%d}", int(c.Sched))
	}
	if c.MaxParallelRanks != 0 {
		s = strings.TrimSuffix(s, "}") + fmt.Sprintf(", MaxParallelRanks:%d}", c.MaxParallelRanks)
	}
	if c.SpecWindowMin != 0 || c.SpecWindowMax != 0 {
		s = strings.TrimSuffix(s, "}") + fmt.Sprintf(", SpecWindowMin:%d, SpecWindowMax:%d}", c.SpecWindowMin, c.SpecWindowMax)
	}
	return s
}

// Validate reports whether the configuration describes a runnable machine.
// It catches misconfigurations — a non-positive rank count, a negative
// parallel-rank cap, an unknown scheduler mode, negative CPU-tune
// multipliers — with a clear error before any simulation state exists,
// instead of a late panic deep inside a run.
func (c WorldConfig) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("mpi: invalid world config: Procs %d (world size must be positive)", c.Procs)
	}
	if _, ok := schedulerModeTokens[c.Sched]; !ok {
		return fmt.Errorf("mpi: invalid world config: unknown scheduler mode %d", int(c.Sched))
	}
	if c.MaxParallelRanks < 0 {
		return fmt.Errorf("mpi: invalid world config: MaxParallelRanks %d (must be >= 0; 0 means no cap)", c.MaxParallelRanks)
	}
	if c.Tune.ClockScale < 0 || c.Tune.HitScale < 0 || c.Tune.MissScale < 0 {
		return fmt.Errorf("mpi: invalid world config: negative CPU tune multiplier %+v", c.Tune)
	}
	if c.SpecWindowMin < 0 || c.SpecWindowMax < 0 {
		return fmt.Errorf("mpi: invalid world config: negative speculation window bounds [%d, %d]", c.SpecWindowMin, c.SpecWindowMax)
	}
	if (c.SpecWindowMin == 0) != (c.SpecWindowMax == 0) {
		return fmt.Errorf("mpi: invalid world config: speculation window bounds [%d, %d] (set both or neither)", c.SpecWindowMin, c.SpecWindowMax)
	}
	if c.SpecWindowMin > c.SpecWindowMax {
		return fmt.Errorf("mpi: invalid world config: speculation window bounds [%d, %d] (min must not exceed max)", c.SpecWindowMin, c.SpecWindowMax)
	}
	return nil
}

// WithRankParallelism returns the config with the scheduler set from a
// single knob, the shape command-line flags (-rankpar) use: 0 keeps the
// serial scheduler, n > 0 enables ConservativeParallel capped at n
// concurrent ranks, and a negative n enables it with no cap. Results are
// bit-identical either way; only wall-clock time changes.
func (c WorldConfig) WithRankParallelism(n int) WorldConfig {
	if n == 0 {
		return c
	}
	return c.WithScheduler(ConservativeParallel, n)
}

// WithScheduler returns the config with the given scheduler mode and
// parallel-rank cap, the shape the -rankmode/-rankpar command-line flags
// use. For the parallel modes, n > 0 caps concurrency at n ranks and n <= 0
// means no cap; for Serial the cap is cleared. Results are bit-identical in
// every mode; only wall-clock time changes.
func (c WorldConfig) WithScheduler(mode SchedulerMode, n int) WorldConfig {
	c.Sched = mode
	if mode != Serial && n > 0 {
		c.MaxParallelRanks = n
	} else {
		c.MaxParallelRanks = 0
	}
	return c
}

// WithSpecWindow returns the config with the optimistic scheduler's
// adaptive speculation window bounded to [min, max] recorded events per
// rank, the shape the -specwindow command-line flag uses. min == max pins
// a fixed window of that size; 0, 0 restores the default fixed
// 4096-event window. The window only changes wall-clock behavior —
// results stay bit-identical — but a non-default window salts the
// checkpoint hash like the other non-serial knobs.
func (c WorldConfig) WithSpecWindow(min, max int) WorldConfig {
	c.SpecWindowMin, c.SpecWindowMax = min, max
	return c
}

// ParseSpecWindow parses a -specwindow flag value: "min:max" bounds the
// adaptive window, a single positive integer pins a fixed window of that
// size, and "" or "0" keeps the default fixed 4096-event window.
func ParseSpecWindow(s string) (min, max int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("mpi: invalid speculation window %q (want \"min:max\", a fixed size, or 0)", s)
	}
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		min, err1 := strconv.Atoi(lo)
		max, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || min <= 0 || max < min {
			return bad()
		}
		return min, max, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return bad()
	}
	if v == 0 {
		return 0, 0, nil
	}
	return v, v, nil
}

// DefaultConfig returns the paper-calibrated 3-rank world.
func DefaultConfig() WorldConfig {
	return WorldConfig{
		Procs: 3,
		CPU:   platform.XeonModel(),
		Cache: cache.XeonL2(),
		Net:   netmodel.FastEthernet(),
		Seed:  1,
	}
}

type mailKey struct {
	comm int
	dst  int // world rank of the receiver
}

type message struct {
	src    int // rank within the communicator
	tag    int
	data   []float64
	arrive float64 // virtual arrival time at the destination
	seq    uint64
	// taken marks a published message tentatively consumed by a
	// speculative receive under the optimistic scheduler: it stays out of
	// later speculative picks while remaining visible to the committed-order
	// replay, which performs the authoritative match.
	taken bool
}

// pendingSend is a send buffered during parallel run-ahead: the message is
// fully computed (payload copy, arrival time from the sender's clock and
// RNG) but not yet visible to receivers. It lands in the world mailbox at
// the sender's next commit turn, in program order, so the mailbox evolves
// exactly as under the serial scheduler.
type pendingSend struct {
	key mailKey
	msg *message
}

// blockDesc describes what a blocked rank is waiting on, for deadlock
// diagnostics. It is a small value stored on every block (the hot path),
// rendered only if the world deadlocks.
type blockDesc struct {
	op       string // MPI entry point, e.g. "MPI_Recv()"
	comm     int
	src, tag int
	pending  int // pending receives (Waitall/Waitsome)
}

// String renders the description for the deadlock report.
func (d blockDesc) String() string {
	if d.op == "" {
		return "?"
	}
	name := strings.TrimSuffix(d.op, "()")
	switch {
	case d.pending > 0:
		return fmt.Sprintf("%s(%d pending receives) on comm %d", name, d.pending, d.comm)
	case strings.Contains(d.op, "Recv") || strings.Contains(d.op, "Wait"):
		src := "any"
		if d.src != AnySource {
			src = fmt.Sprintf("%d", d.src)
		}
		tag := "any"
		if d.tag != AnyTag {
			tag = fmt.Sprintf("%d", d.tag)
		}
		return fmt.Sprintf("%s(src=%s, tag=%s) on comm %d", name, src, tag, d.comm)
	default:
		return fmt.Sprintf("%s on comm %d", name, d.comm)
	}
}

// World is the simulated parallel machine. Create one with NewWorld, then
// call Run with the SCMD body. All exported methods on Comm must be called
// from within the body, on the goroutine Run started for that rank.
type World struct {
	cfg WorldConfig
	par bool // cfg.Sched == ConservativeParallel
	opt bool // cfg.Sched == OptimisticParallel

	// o holds the optimistic scheduler's shared state (published messages,
	// per-rank event streams, the commit automaton). Nil unless opt.
	o *optState

	mu        sync.Mutex
	cond      *sync.Cond
	ranks     []*Rank
	status    []int
	blocked   []func() bool
	blockedOn []blockDesc
	current   int
	aborted   bool

	// Parallel-scheduler state. vclock is each rank's clock as committed at
	// its last scheduling point: while a rank computes ahead its real clock
	// advances without the lock, so the scheduler must never read it —
	// vclock is the serial-replay value the token discipline needs. The
	// slot fields implement the MaxParallelRanks cap.
	vclock   []float64
	slots    int
	active   int
	slotHeld []bool

	mailboxes map[mailKey][]*message
	seq       uint64

	colls      map[int]*collState
	nextCommID int
	rng        *rand.Rand

	panics []error

	// Observability (nil/zero when the global observer is disabled at
	// NewWorld). trk holds one trace lane per rank; met the cached
	// registry instruments. Recording is strictly write-only — nothing
	// here is ever read back into scheduling decisions, so observed and
	// unobserved worlds produce bit-identical results.
	trk []*obs.Track
	met worldMetrics
}

// worldMetrics caches the registry instruments a world records into.
// The zero value (all nil) makes every update a no-op.
type worldMetrics struct {
	worlds        *obs.Counter
	grants        *obs.Counter
	specPub       *obs.Counter
	specPipe      *obs.Counter
	specOps       *obs.Counter
	specCommit    *obs.Counter
	conflicts     *obs.Counter
	rollbacks     *obs.Counter
	windowStalls  *obs.Counter
	windowGrows   *obs.Counter
	windowShrinks *obs.Counter
	collHits      *obs.Counter
	collRollbacks *obs.Counter
	reexecUS      *obs.Histogram
}

// worldSeq numbers observed worlds so their trace tracks stay distinct
// when one process runs many worlds. Only advanced when an observer is
// active; it never influences simulation state.
var worldSeq atomic.Uint64

// rankTrack returns rank r's trace lane, or nil when unobserved.
func (w *World) rankTrack(r int) *obs.Track {
	if w.trk == nil {
		return nil
	}
	return w.trk[r]
}

// Rank is the execution context handed to the SCMD body for one rank: its
// world communicator, platform processor and TAU profile.
type Rank struct {
	world *World
	rank  int

	// pending buffers sends during parallel run-ahead (owner-rank access
	// only; flushed under the world lock at the rank's commit turns).
	pending []pendingSend

	// lastOpEnd is the tracer clock when this rank's previous MPI entry
	// point returned (owner-rank access only; meaningful only when the
	// world is observed). The gap to the next entry is the rank's compute
	// segment, recorded as a span.
	lastOpEnd int64

	// Comm is the rank's MPI_COMM_WORLD analog.
	Comm *Comm
	// Proc is the rank's simulated processor (clock, cache, RNG, heap).
	Proc *platform.Proc
	// Prof is the rank's TAU measurement context. MPI timers appear here
	// under group "MPI".
	Prof *tau.Profile
}

// Rank returns this context's world rank.
func (r *Rank) Rank() int { return r.rank }

// NewWorld builds the simulated machine. It panics with the Validate error
// on a misconfiguration (non-positive rank count, negative parallel-rank
// cap, ...), mirroring an mpirun misconfiguration; callers that want an
// error instead should call cfg.Validate first (grid expansion does).
func NewWorld(cfg WorldConfig) *World {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	if cfg.InitUS == 0 {
		cfg.InitUS = 600_000
	}
	if cfg.FinalizeUS == 0 {
		cfg.FinalizeUS = 140_000
	}
	w := &World{
		cfg:        cfg,
		par:        cfg.Sched == ConservativeParallel,
		opt:        cfg.Sched == OptimisticParallel,
		current:    -1,
		mailboxes:  make(map[mailKey][]*message),
		colls:      make(map[int]*collState),
		nextCommID: 1,
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x51ca5e)),
		status:     make([]int, cfg.Procs),
		blocked:    make([]func() bool, cfg.Procs),
		blockedOn:  make([]blockDesc, cfg.Procs),
		panics:     make([]error, cfg.Procs),
	}
	w.cond = sync.NewCond(&w.mu)
	group := make([]int, cfg.Procs)
	for i := range group {
		group[i] = i
	}
	cpu := cfg.Tune.Apply(cfg.CPU)
	for i := 0; i < cfg.Procs; i++ {
		proc := platform.NewProc(i, cpu, cfg.Cache, cfg.Seed)
		prof := tau.NewProfile(proc.Now)
		prof.RegisterMetric("PAPI_L2_DCM", func() float64 { return float64(proc.Counters().L2DCM) })
		prof.RegisterMetric("PAPI_FP_OPS", func() float64 { return float64(proc.Counters().FPOps) })
		r := &Rank{world: w, rank: i, Proc: proc, Prof: prof}
		r.Comm = &Comm{world: w, id: 0, rank: i, group: group, r: r}
		w.ranks = append(w.ranks, r)
		w.status[i] = stReady
	}
	if w.par || w.opt {
		w.slots = cfg.MaxParallelRanks
		w.slotHeld = make([]bool, cfg.Procs)
		w.vclock = make([]float64, cfg.Procs)
		for i, r := range w.ranks {
			w.vclock[i] = r.Proc.Now()
		}
	}
	if w.opt {
		w.o = newOptState(w)
	}
	if o := obs.Active(); o != nil {
		id := worldSeq.Add(1)
		w.trk = make([]*obs.Track, cfg.Procs)
		for i := range w.trk {
			//repolint:allow obscapture -- one Track per rank, resolved once here at world construction, then reused for every scheduler event
			w.trk[i] = o.Tracer().Track("mpi", fmt.Sprintf("w%d rank %d", id, i))
		}
		reg := o.Metrics()
		w.met = worldMetrics{
			worlds:        reg.Counter("mpi_worlds_total"),
			grants:        reg.Counter("mpi_token_grants_total"),
			specPub:       reg.Counter("mpi_spec_published_sends_total"),
			specPipe:      reg.Counter("mpi_spec_pipelined_ops_total"),
			specOps:       reg.Counter("mpi_spec_speculated_ops_total"),
			specCommit:    reg.Counter("mpi_spec_committed_ops_total"),
			conflicts:     reg.Counter("mpi_spec_conflicts_total"),
			rollbacks:     reg.Counter("mpi_spec_rollbacks_total"),
			windowStalls:  reg.Counter("mpi_spec_window_stalls_total"),
			windowGrows:   reg.Counter("mpi_spec_window_grows_total"),
			windowShrinks: reg.Counter("mpi_spec_window_shrinks_total"),
			collHits:      reg.Counter("mpi_spec_coll_hits_total"),
			collRollbacks: reg.Counter("mpi_spec_coll_rollbacks_total"),
			reexecUS:      reg.Histogram("mpi_spec_reexecuted_us", obs.LatencyBucketsUS),
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.cfg.Procs }

// Config returns the world's configuration.
func (w *World) Config() WorldConfig { return w.cfg }

// Ranks returns the per-rank contexts (valid after Run for inspection).
func (w *World) Ranks() []*Rank { return w.ranks }

// Profiles returns the per-rank TAU profiles, in rank order.
func (w *World) Profiles() []*tau.Profile {
	out := make([]*tau.Profile, len(w.ranks))
	for i, r := range w.ranks {
		out[i] = r.Prof
	}
	return out
}

// Procs returns the per-rank platform processors, in rank order.
func (w *World) Procs() []*platform.Proc {
	out := make([]*platform.Proc, len(w.ranks))
	for i, r := range w.ranks {
		out[i] = r.Proc
	}
	return out
}

// abortPanic is the sentinel thrown to unwind ranks parked inside MPI when
// the world aborts (deadlock or another rank's panic). It carries no
// diagnostic value of its own and never masks the original error.
type abortPanic struct{}

// Run executes body once per rank (SCMD) and blocks until every rank
// finishes. It returns the first rank panic as an error, or a deadlock
// error if all live ranks blocked on unsatisfiable conditions. A World can
// only be Run once.
//
// Under the serial scheduler each goroutine waits for the execution token
// before entering body. Under ConservativeParallel every goroutine starts
// immediately (subject to the MaxParallelRanks cap) and synchronizes with
// the replayed token order only at communication events; a finishing rank
// commits its buffered sends at its token turn before going Done, exactly
// where the serial schedule would have placed them. Under
// OptimisticParallel goroutines also start immediately, publish sends as
// they happen, and speculate past order-sensitive receives; the commit
// automaton validates the recorded event streams against the serial order
// and finishing ranks simply mark their streams complete — the automaton
// commits their tails in serial order.
func (w *World) Run(body func(*Rank)) error {
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Procs; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				e := recover()
				w.mu.Lock()
				if _, isAbort := e.(abortPanic); e != nil && !isAbort {
					w.panics[rank] = fmt.Errorf("mpi: rank %d panicked: %v\n%s", rank, e, debug.Stack())
					w.aborted = true
				}
				w.status[rank] = stDone
				w.blocked[rank] = nil
				w.releaseSlotLocked(rank)
				if w.opt {
					w.o.finished[rank] = true
					w.o.parked[rank] = false
					w.cond.Broadcast()
				} else {
					w.advanceLocked()
				}
				w.mu.Unlock()
			}()
			if w.opt {
				func() {
					w.mu.Lock()
					defer w.mu.Unlock()
					if !w.acquireSlotLocked(rank) {
						panic(abortPanic{})
					}
				}()
				body(w.ranks[rank])
			} else if w.par {
				func() {
					w.mu.Lock()
					defer w.mu.Unlock()
					if !w.acquireSlotLocked(rank) {
						panic(abortPanic{})
					}
				}()
				body(w.ranks[rank])
				// Ordered completion: wait for the commit token and flush
				// any still-buffered sends before the deferred Done.
				w.lockShared(rank)
				w.mu.Unlock()
			} else {
				func() {
					w.mu.Lock()
					defer w.mu.Unlock()
					w.waitForTurnLocked(rank)
				}()
				body(w.ranks[rank])
			}
		}(i)
	}
	if !w.opt {
		w.mu.Lock()
		w.advanceLocked()
		w.mu.Unlock()
	}
	wg.Wait()
	if w.opt {
		// Drain the commit automaton so the committed world state (mailbox
		// residue, communicator ids, telemetry) reflects the full serial
		// order even though every rank has already returned.
		w.mu.Lock()
		if !w.aborted {
			for w.autoStepLocked() {
			}
		}
		w.mu.Unlock()
	}
	if w.met.worlds != nil {
		// Fold the run's speculation telemetry into the registry, so
		// conflict/rollback rates are visible without a deadlock dump.
		w.met.worlds.Inc()
		if w.opt {
			s := w.SpecStats()
			w.met.specPub.Add(s.PublishedSends)
			w.met.specPipe.Add(s.PipelinedOps)
			w.met.specOps.Add(s.SpeculatedOps)
			w.met.specCommit.Add(s.CommittedOps)
			w.met.conflicts.Add(s.Conflicts)
			w.met.rollbacks.Add(s.Rollbacks)
			w.met.windowStalls.Add(s.WindowStalls)
			w.met.windowGrows.Add(s.WindowGrows)
			w.met.windowShrinks.Add(s.WindowShrinks)
			w.met.collHits.Add(s.SpecCollHits)
			w.met.collRollbacks.Add(s.SpecCollRollbacks)
			w.met.reexecUS.Observe(s.ReexecutedUS)
		}
	}
	for _, err := range w.panics {
		if err != nil {
			return err
		}
	}
	return nil
}

// waitForTurnLocked blocks until the scheduler grants this rank the token.
func (w *World) waitForTurnLocked(rank int) {
	for w.current != rank {
		if w.aborted {
			panic(abortPanic{})
		}
		w.cond.Wait()
	}
	w.status[rank] = stRunning
}

// lockShared acquires the world's shared state for an MPI operation that
// reads or writes order-sensitive global state (mailboxes, collectives,
// communicator ids, the collective-cost RNG). In serial mode the calling
// rank already holds the execution token, so this is just the mutex. In
// ConservativeParallel mode the rank additionally waits for the commit
// token — its turn in the replayed serial order — and flushes its buffered
// sends, so every shared mutation happens in exactly the order the serial
// scheduler would produce. Callers must pair it with a deferred
// w.mu.Unlock immediately after it returns.
func (w *World) lockShared(rank int) {
	w.mu.Lock()
	if !w.par {
		return
	}
	if w.current != rank {
		w.releaseSlotLocked(rank)
		for w.current != rank {
			if w.aborted {
				w.mu.Unlock()
				panic(abortPanic{})
			}
			w.cond.Wait()
		}
		if !w.acquireSlotLocked(rank) {
			w.mu.Unlock()
			panic(abortPanic{})
		}
	}
	w.status[rank] = stRunning
	w.flushSendsLocked(rank)
}

// flushSendsLocked commits the rank's buffered sends to the world
// mailboxes in program order. Caller must hold w.mu and, in parallel mode,
// the commit token.
func (w *World) flushSendsLocked(rank int) {
	r := w.ranks[rank]
	for _, ps := range r.pending {
		w.enqueueLocked(ps.key, ps.msg)
	}
	r.pending = r.pending[:0]
}

// acquireSlotLocked claims a compute slot under the MaxParallelRanks cap,
// waiting while the cap is saturated. It reports false when the world
// aborted while waiting. A no-op (true) in serial mode or when the rank
// already holds a slot.
func (w *World) acquireSlotLocked(rank int) bool {
	if !(w.par || w.opt) || w.slotHeld[rank] {
		return !w.aborted
	}
	for w.slots > 0 && w.active >= w.slots {
		if w.aborted {
			return false
		}
		w.cond.Wait()
	}
	if w.aborted {
		return false
	}
	w.active++
	w.slotHeld[rank] = true
	return true
}

// releaseSlotLocked returns the rank's compute slot, waking slot waiters.
func (w *World) releaseSlotLocked(rank int) {
	if !(w.par || w.opt) || !w.slotHeld[rank] {
		return
	}
	w.active--
	w.slotHeld[rank] = false
	w.cond.Broadcast()
}

// schedClockLocked returns rank r's virtual clock as the scheduler may
// safely observe it. In parallel mode a rank that is neither blocked nor
// done may be advancing its clock concurrently without the lock, so the
// scheduler reads the value committed at the rank's last scheduling point
// instead — which is exactly the clock the serial scheduler would see.
func (w *World) schedClockLocked(r int) float64 {
	if w.opt {
		// Only consulted for diagnostics (deadlock report, lookahead
		// horizon): at that point every live rank is parked, so its Proc is
		// quiescent and safe to read under the lock.
		return w.ranks[r].Proc.Now()
	}
	if w.par {
		switch w.status[r] {
		case stBlocked, stDone:
			return w.ranks[r].Proc.Now()
		}
		return w.vclock[r]
	}
	return w.ranks[r].Proc.Now()
}

// blockOn parks the running rank until pred() holds, handing the token to
// the runnable rank with the smallest virtual clock meanwhile. on
// describes the awaited communication for deadlock diagnostics.
// Caller must hold w.mu and be the current rank.
func (w *World) blockOn(rank int, on blockDesc, pred func() bool) {
	if pred() {
		return
	}
	if w.par {
		w.vclock[rank] = w.ranks[rank].Proc.Now()
		w.releaseSlotLocked(rank)
	}
	w.status[rank] = stBlocked
	w.blocked[rank] = pred
	w.blockedOn[rank] = on
	w.advanceLocked()
	w.waitForTurnLocked(rank)
	if w.par && !w.acquireSlotLocked(rank) {
		panic(abortPanic{})
	}
	w.blocked[rank] = nil
	w.blockedOn[rank] = blockDesc{}
}

// advanceLocked promotes blocked ranks whose predicates now hold and grants
// the token to the ready rank with the smallest (clock, rank). If no rank
// can run and not all are done, the world is deadlocked: every parked rank
// is woken into a panic carrying the per-rank state dump and the pending
// lookahead horizon.
func (w *World) advanceLocked() {
	if w.aborted {
		w.current = -1
		w.cond.Broadcast()
		return
	}
	for r := range w.status {
		if w.status[r] == stBlocked && w.blocked[r]() {
			w.status[r] = stReady
		}
	}
	next, best := -1, 0.0
	allDone := true
	for r := range w.status {
		switch w.status[r] {
		case stReady:
			allDone = false
			t := w.schedClockLocked(r)
			if next == -1 || t < best {
				next, best = r, t
			}
		case stBlocked, stRunning:
			allDone = false
		}
	}
	w.current = next
	if next != -1 {
		w.met.grants.Inc()
	}
	if next == -1 && !allDone {
		// Every live rank is blocked: deadlock. Abort the world so the
		// parked goroutines panic with diagnostics instead of hanging.
		w.aborted = true
		report := w.deadlockReportLocked()
		for r := range w.status {
			if w.status[r] == stBlocked {
				w.panics[r] = fmt.Errorf("mpi: deadlock: rank %d blocked at t=%.3fus in %s with no matching communication\n%s",
					r, w.ranks[r].Proc.Now(), w.blockedOn[r], report)
			}
		}
	}
	w.cond.Broadcast()
}

// deadlockReportLocked renders the per-rank state dump plus the pending
// lookahead horizon that advanceLocked attaches to deadlock errors.
func (w *World) deadlockReportLocked() string {
	var sb strings.Builder
	sb.WriteString("world state at deadlock:\n")
	for r := range w.status {
		t := w.schedClockLocked(r)
		switch w.status[r] {
		case stDone:
			fmt.Fprintf(&sb, "  rank %d: done at t=%.3fus\n", r, t)
		case stBlocked:
			fmt.Fprintf(&sb, "  rank %d: blocked at t=%.3fus in %s\n", r, t, w.blockedOn[r])
		default:
			fmt.Fprintf(&sb, "  rank %d: runnable at t=%.3fus\n", r, t)
		}
	}
	if earliest, n := w.pendingArrivalLocked(); n > 0 {
		fmt.Fprintf(&sb, "  %d undelivered message(s), earliest arrival t=%.3fus (none match a posted receive)\n", n, earliest)
	} else {
		sb.WriteString("  no messages in flight\n")
	}
	if h := w.lookaheadHorizonLocked(); !math.IsInf(h, 1) {
		fmt.Fprintf(&sb, "  pending lookahead horizon: t=%.3fus (min of queued arrivals and live clocks + %.3fus net latency)\n",
			h, w.cfg.Net.LatencyUS)
	}
	if w.o != nil {
		s := w.o.stats
		fmt.Fprintf(&sb, "  optimistic speculation: %d sends published, %d ops pipelined, %d speculated, %d committed, %d conflicts, %d rollbacks, %.3fus re-executed, %d window stalls\n",
			s.PublishedSends, s.PipelinedOps, s.SpeculatedOps, s.CommittedOps, s.Conflicts, s.Rollbacks, s.ReexecutedUS, s.WindowStalls)
		fmt.Fprintf(&sb, "  speculation window: %d..%d observed (%d grows, %d shrinks); speculative collectives: %d hits, %d rollbacks\n",
			s.WindowMin, s.WindowMax, s.WindowGrows, s.WindowShrinks, s.SpecCollHits, s.SpecCollRollbacks)
	}
	return sb.String()
}

// pendingArrivalLocked returns the earliest virtual arrival time over all
// queued (undelivered) messages and how many are queued.
func (w *World) pendingArrivalLocked() (earliest float64, n int) {
	earliest = math.Inf(1)
	for _, box := range w.mailboxes {
		for _, m := range box {
			n++
			if m.arrive < earliest {
				earliest = m.arrive
			}
		}
	}
	if w.o != nil {
		// Published messages whose send has not yet committed are in flight
		// too; committed ones already appear in the mailboxes above.
		for _, box := range w.o.pub {
			for _, m := range box {
				if m.seq != 0 {
					continue
				}
				n++
				if m.arrive < earliest {
					earliest = m.arrive
				}
			}
		}
	}
	return earliest, n
}

// lookaheadHorizonLocked computes the conservative lookahead horizon: the
// earliest virtual time at which any parked rank could observe new input.
// It is the minimum over (a) queued message arrival times and (b) every
// live rank's committed clock plus the network model's minimum
// point-to-point latency — no rank can cause an event earlier than that.
// Ranks whose next interaction lies beyond this horizon are the ones the
// parallel scheduler lets run ahead concurrently.
func (w *World) lookaheadHorizonLocked() float64 {
	h, _ := w.pendingArrivalLocked()
	for r := range w.status {
		if w.status[r] == stDone {
			continue
		}
		if t := w.schedClockLocked(r) + w.cfg.Net.LatencyUS; t < h {
			h = t
		}
	}
	return h
}

// enqueueLocked places a message in a mailbox.
func (w *World) enqueueLocked(key mailKey, m *message) {
	w.seq++
	m.seq = w.seq
	w.mailboxes[key] = append(w.mailboxes[key], m)
}

// matchLocked removes and returns the first message matching (src, tag) in
// FIFO order, or nil.
func (w *World) matchLocked(key mailKey, src, tag int) *message {
	box := w.mailboxes[key]
	for i, m := range box {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			w.mailboxes[key] = append(box[:i:i], box[i+1:]...)
			return m
		}
	}
	return nil
}

// hasMatchLocked reports whether a matching message is queued.
func (w *World) hasMatchLocked(key mailKey, src, tag int) bool {
	for _, m := range w.mailboxes[key] {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			return true
		}
	}
	return false
}
