package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// parConfig returns testConfig with the conservative parallel scheduler.
func parConfig(p int) WorldConfig {
	cfg := testConfig(p)
	cfg.Sched = ConservativeParallel
	return cfg
}

// optConfig returns testConfig with the optimistic (Time Warp) scheduler.
func optConfig(p int) WorldConfig {
	cfg := testConfig(p)
	cfg.Sched = OptimisticParallel
	return cfg
}

// worldTrace is everything a scheduler-equivalence test compares: the
// per-rank final clocks and counters, the gob-serialized TAU profiles
// (bit-for-bit), and an application-level receive log.
type worldTrace struct {
	clocks   []float64
	counters []string
	profiles [][]byte
	log      [][]string
}

// runTraced runs body under cfg and snapshots the world. log records one
// slice of strings per rank, appended by the body (rank-local).
func runTraced(t *testing.T, cfg WorldConfig, body func(r *Rank, log *[]string)) worldTrace {
	t.Helper()
	w := NewWorld(cfg)
	tr := worldTrace{log: make([][]string, cfg.Procs)}
	err := w.Run(func(r *Rank) {
		body(r, &tr.log[r.Rank()])
	})
	if err != nil {
		t.Fatalf("sched=%v: %v", cfg.Sched, err)
	}
	for _, r := range w.Ranks() {
		tr.clocks = append(tr.clocks, r.Proc.Now())
		tr.counters = append(tr.counters, fmt.Sprintf("%+v", r.Proc.Counters()))
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(r.Prof); err != nil {
			t.Fatal(err)
		}
		tr.profiles = append(tr.profiles, buf.Bytes())
	}
	return tr
}

// assertTracesEqual compares a serial and a parallel trace bit for bit.
func assertTracesEqual(t *testing.T, serial, par worldTrace) {
	t.Helper()
	for r := range serial.clocks {
		if serial.clocks[r] != par.clocks[r] {
			t.Errorf("rank %d: clock %v (serial) != %v (parallel)", r, serial.clocks[r], par.clocks[r])
		}
		if serial.counters[r] != par.counters[r] {
			t.Errorf("rank %d: counters %s (serial) != %s (parallel)", r, serial.counters[r], par.counters[r])
		}
		if !bytes.Equal(serial.profiles[r], par.profiles[r]) {
			t.Errorf("rank %d: serialized TAU profile differs between schedulers", r)
		}
		if fmt.Sprint(serial.log[r]) != fmt.Sprint(par.log[r]) {
			t.Errorf("rank %d: receive log differs:\nserial:   %v\nparallel: %v", r, serial.log[r], par.log[r])
		}
	}
}

// bothScheds runs the same body under the serial, conservative parallel and
// optimistic schedulers and requires bit-identical traces.
func bothScheds(t *testing.T, p int, body func(r *Rank, log *[]string)) {
	t.Helper()
	serial := runTraced(t, testConfig(p), body)
	assertTracesEqual(t, serial, runTraced(t, parConfig(p), body))
	assertTracesEqual(t, serial, runTraced(t, optConfig(p), body))
}

// TestParallelMatchesSerialPointToPoint covers the ghost-exchange shape:
// every rank posts receives from all peers, sends to all peers, and drains
// with Waitsome — under network noise, with per-rank compute skew.
func TestParallelMatchesSerialPointToPoint(t *testing.T) {
	for _, p := range []int{2, 3, 5} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(p)
			cfg.Net.NoiseSigma = 0.35 // exercise the per-rank noise RNG too
			body := func(r *Rank, log *[]string) {
				me := r.Rank()
				r.Proc.Advance(float64(me*37 + 11))
				var reqs []*Request
				bufs := make([][]float64, p)
				for peer := 0; peer < p; peer++ {
					if peer == me {
						continue
					}
					bufs[peer] = make([]float64, 8)
					reqs = append(reqs, r.Comm.Irecv(peer, 3, bufs[peer]))
				}
				payload := make([]float64, 8)
				for i := range payload {
					payload[i] = float64(me*100 + i)
				}
				for peer := 0; peer < p; peer++ {
					if peer != me {
						r.Comm.Isend(peer, 3, payload)
					}
				}
				for {
					done := r.Comm.Waitsome(reqs)
					if done == nil {
						break
					}
					for _, i := range done {
						*log = append(*log, fmt.Sprintf("req%d@%.3f=%g", i, r.Proc.Now(), reqs[i].buf[0]))
					}
				}
			}
			serial := runTraced(t, cfg, body)
			par := cfg
			par.Sched = ConservativeParallel
			assertTracesEqual(t, serial, runTraced(t, par, body))
			opt := cfg
			opt.Sched = OptimisticParallel
			assertTracesEqual(t, serial, runTraced(t, opt, body))
		})
	}
}

// TestParallelMatchesSerialCollectives mixes collectives, communicator
// duplication and blocking point-to-point with compute between events.
func TestParallelMatchesSerialCollectives(t *testing.T) {
	t.Parallel()
	bothScheds(t, 4, func(r *Rank, log *[]string) {
		me := r.Rank()
		r.Comm.Init()
		r.Proc.Advance(float64(100 - me*13))
		sum := r.Comm.Allreduce(OpSum, []float64{float64(me), 1})
		*log = append(*log, fmt.Sprintf("sum=%v", sum))
		d := r.Comm.Dup()
		if me == 0 {
			d.Send(3, 9, []float64{42})
		}
		if me == 3 {
			buf := make([]float64, 1)
			d.Recv(AnySource, AnyTag, buf)
			*log = append(*log, fmt.Sprintf("recv=%v@%.3f", buf, r.Proc.Now()))
		}
		r.Comm.Barrier()
		got := r.Comm.Allgather([]float64{float64(me * me)})
		*log = append(*log, fmt.Sprintf("gather=%v", got))
		r.Comm.Finalize()
	})
}

// TestParallelMatchesSerialAnySourceOrder pins the order-sensitive case:
// wildcard receives must match messages in the exact order the serial
// scheduler enqueues them, even though parallel senders post concurrently.
func TestParallelMatchesSerialAnySourceOrder(t *testing.T) {
	t.Parallel()
	bothScheds(t, 4, func(r *Rank, log *[]string) {
		me := r.Rank()
		if me == 0 {
			buf := make([]float64, 1)
			for i := 0; i < 9; i++ {
				r.Comm.Recv(AnySource, AnyTag, buf)
				*log = append(*log, fmt.Sprintf("%g@%.3f", buf[0], r.Proc.Now()))
			}
			return
		}
		// Different compute skews so senders hit their sends at different
		// virtual times and in a nontrivial token order.
		rng := rand.New(rand.NewSource(int64(me)))
		for i := 0; i < 3; i++ {
			r.Proc.Advance(rng.Float64() * 50)
			r.Comm.Send(0, me, []float64{float64(me*10 + i)})
		}
	})
}

// TestParallelMaxParallelRanks caps concurrency without changing results.
func TestParallelMaxParallelRanks(t *testing.T) {
	t.Parallel()
	body := func(r *Rank, log *[]string) {
		r.Proc.Advance(float64(r.Rank() + 1))
		got := r.Comm.Allreduce(OpMax, []float64{float64(r.Rank())})
		*log = append(*log, fmt.Sprintf("%v", got))
	}
	serial := runTraced(t, testConfig(5), body)
	for _, cap := range []int{1, 2, 16} {
		for _, mode := range []SchedulerMode{ConservativeParallel, OptimisticParallel} {
			cfg := testConfig(5).WithScheduler(mode, cap)
			assertTracesEqual(t, serial, runTraced(t, cfg, body))
		}
	}
}

// TestDeadlockDiagnosticsBothModes asserts that a mismatched send/recv
// pair produces the extended diagnostic — per-rank state and the pending
// lookahead horizon — instead of hanging, under both schedulers.
func TestDeadlockDiagnosticsBothModes(t *testing.T) {
	for _, cfg := range []WorldConfig{testConfig(3), parConfig(3), optConfig(3)} {
		cfg := cfg
		t.Run(cfg.Sched.String(), func(t *testing.T) {
			t.Parallel()
			w := NewWorld(cfg)
			err := w.Run(func(r *Rank) {
				switch r.Rank() {
				case 0:
					buf := make([]float64, 1)
					r.Comm.Recv(1, 42, buf) // never sent with this tag
				case 1:
					r.Comm.Send(0, 7, []float64{1}) // mismatched tag
				}
			})
			if err == nil {
				t.Fatal("mismatched send/recv did not error")
			}
			for _, want := range []string{
				"deadlock",
				"MPI_Recv(src=1, tag=42) on comm 0",
				"world state at deadlock:",
				"rank 1: done",
				"rank 2: done",
				"undelivered message(s)",
				"pending lookahead horizon",
			} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("diagnostic missing %q:\n%v", want, err)
				}
			}
		})
	}
}

// TestDeadlockInCollectiveDiagnostics names the collective a rank is stuck
// in when the cohort never completes.
func TestDeadlockInCollectiveDiagnostics(t *testing.T) {
	for _, cfg := range []WorldConfig{testConfig(2), parConfig(2), optConfig(2)} {
		cfg := cfg
		t.Run(cfg.Sched.String(), func(t *testing.T) {
			t.Parallel()
			w := NewWorld(cfg)
			err := w.Run(func(r *Rank) {
				if r.Rank() == 0 {
					r.Comm.Barrier() // rank 1 never joins
				}
			})
			if err == nil || !strings.Contains(err.Error(), "MPI_Barrier on comm 0") {
				t.Fatalf("expected barrier deadlock diagnostic, got %v", err)
			}
		})
	}
}

// TestValidateRejectsInvalidConfig covers the new early validation: bad
// scheduler configs fail with a clear error at construction, not a late
// panic mid-run.
func TestValidateRejectsInvalidConfig(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		mut  func(*WorldConfig)
		want string
	}{
		{"procs", func(c *WorldConfig) { c.Procs = 0 }, "Procs 0"},
		{"rankcap", func(c *WorldConfig) { c.MaxParallelRanks = -2 }, "MaxParallelRanks -2"},
		{"mode", func(c *WorldConfig) { c.Sched = SchedulerMode(9) }, "scheduler mode 9"},
		{"tune", func(c *WorldConfig) { c.Tune.ClockScale = -1 }, "CPU tune"},
	}
	for _, tc := range cases {
		cfg := testConfig(2)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
		func() {
			defer func() {
				e := recover()
				if e == nil || !strings.Contains(fmt.Sprint(e), tc.want) {
					t.Errorf("%s: NewWorld panic = %v, want %q", tc.name, e, tc.want)
				}
			}()
			NewWorld(cfg)
		}()
	}
	if err := testConfig(3).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := parConfig(3).Validate(); err != nil {
		t.Errorf("valid parallel config rejected: %v", err)
	}
}

// TestSchedGoStringStability: the zero-value scheduler fields must render
// invisibly (checkpoint hashes digest %#v), and non-default ones must show.
func TestSchedGoStringStability(t *testing.T) {
	t.Parallel()
	plain := fmt.Sprintf("%#v", testConfig(3))
	if strings.Contains(plain, "Sched") || strings.Contains(plain, "MaxParallelRanks") {
		t.Errorf("zero scheduler config visible in rendering: %s", plain)
	}
	cfg := parConfig(3)
	cfg.MaxParallelRanks = 4
	par := fmt.Sprintf("%#v", cfg)
	if !strings.Contains(par, "Sched:1") || !strings.Contains(par, "MaxParallelRanks:4") {
		t.Errorf("non-default scheduler config not rendered: %s", par)
	}
	if !strings.HasPrefix(par, strings.TrimSuffix(plain, "}")) {
		t.Errorf("scheduler fields must append to the legacy rendering:\nplain: %s\npar:   %s", plain, par)
	}
}

// TestParallelBodyPanicPropagates: a rank panic aborts the world and
// surfaces as an error under both parallel schedulers too.
func TestParallelBodyPanicPropagates(t *testing.T) {
	t.Parallel()
	for _, cfg := range []WorldConfig{parConfig(3), optConfig(3)} {
		w := NewWorld(cfg)
		err := w.Run(func(r *Rank) {
			if r.Rank() == 1 {
				panic("application failure")
			}
			r.Comm.Barrier()
		})
		if err == nil || !strings.Contains(err.Error(), "application failure") {
			t.Fatalf("sched=%v: expected rank panic to propagate, got %v", cfg.Sched, err)
		}
	}
}
