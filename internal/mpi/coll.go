package mpi

import (
	"fmt"

	"repro/internal/netmodel"
)

// Op identifies a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

// apply combines two values under the operator.
func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	default:
		panic(fmt.Sprintf("mpi: unknown reduction op %d", int(o)))
	}
}

type collKind int

const (
	collBarrier collKind = iota
	collReduce
	collAllreduce
	collBcast
	collAllgather
	collDup
	collCreate
)

func (k collKind) String() string {
	switch k {
	case collBarrier:
		return "Barrier"
	case collReduce:
		return "Reduce"
	case collAllreduce:
		return "Allreduce"
	case collBcast:
		return "Bcast"
	case collAllgather:
		return "Allgather"
	case collDup:
		return "Comm_dup"
	case collCreate:
		return "Comm_create"
	}
	return "?"
}

func (k collKind) netKind() netmodel.CollectiveKind {
	switch k {
	case collBarrier, collDup, collCreate:
		return netmodel.Barrier
	case collReduce:
		return netmodel.Reduce
	case collAllreduce:
		return netmodel.Allreduce
	case collBcast:
		return netmodel.Bcast
	case collAllgather:
		return netmodel.Allgather
	}
	return netmodel.Barrier
}

// collState is the per-communicator rendezvous for in-flight collectives.
// At most one collective per communicator is in flight at a time (MPI
// requires all ranks to issue collectives in the same order).
type collState struct {
	gen     uint64
	arrived int
	kind    collKind
	op      Op
	root    int
	tmax    float64
	contrib [][]float64

	lastLeave  float64
	lastResult [][]float64 // per-rank results of the completed collective
	lastID     int         // new communicator id for Dup/Create
}

// collective routes the all-ranks rendezvous through the scheduler: under
// the optimistic scheduler the arrival is recorded on the rank's event
// stream and replayed by the commit automaton; under the serial and
// conservative schedulers it runs directly under the commit token.
func (c *Comm) collective(kind collKind, data []float64, root int, op Op) ([]float64, int) {
	w := c.world
	if w.opt {
		return c.optCollective(kind, data, root, op)
	}
	w.lockShared(c.r.rank)
	defer w.mu.Unlock()
	return c.collectiveLocked(kind, data, root, op)
}

// collectiveLocked runs the all-ranks rendezvous: the caller contributes
// data, blocks until every member of the communicator has arrived, and
// leaves at tmax + network cost with its per-rank result. The last arriver
// computes results for everyone. Caller must hold the world lock.
func (c *Comm) collectiveLocked(kind collKind, data []float64, root int, op Op) ([]float64, int) {
	w := c.world
	cs := w.colls[c.id]
	if cs == nil {
		cs = &collState{}
		w.colls[c.id] = cs
	}
	if cs.arrived == 0 {
		cs.kind = kind
		cs.op = op
		cs.root = root
		cs.tmax = 0
		cs.contrib = make([][]float64, len(c.group))
	} else if cs.kind != kind || cs.root != root {
		panic(fmt.Sprintf("mpi: collective mismatch on comm %d: rank %d issued %v(root=%d) while %v(root=%d) in flight",
			c.id, c.rank, kind, root, cs.kind, cs.root))
	}
	myGen := cs.gen
	cs.arrived++
	if t := c.r.Proc.Now(); t > cs.tmax {
		cs.tmax = t
	}
	if data != nil {
		cp := make([]float64, len(data))
		copy(cp, data)
		cs.contrib[c.rank] = cp
	}
	if cs.arrived == len(c.group) {
		c.completeCollectiveLocked(cs)
	} else {
		w.blockOn(c.r.rank, blockDesc{op: "MPI_" + kind.String() + "()", comm: c.id},
			func() bool { return cs.gen > myGen })
		if w.aborted {
			panic(abortPanic{})
		}
	}
	c.r.Proc.SyncTo(cs.lastLeave)
	var res []float64
	if cs.lastResult != nil {
		res = cs.lastResult[c.rank]
	}
	return res, cs.lastID
}

// collResults computes the per-rank results of a completed data collective
// from its contribution set, plus the byte count the network model charges
// — the pure half of completeCollectiveLocked, shared with the optimistic
// scheduler's speculative completion path. Dup and Create are not data
// collectives: they allocate a communicator id (order-sensitive shared
// state) and return empty results here.
func collResults(kind collKind, op Op, root, groupLen int, contrib [][]float64) ([][]float64, int) {
	var bytes int
	results := make([][]float64, groupLen)
	switch kind {
	case collBarrier, collDup, collCreate:
		// no data
	case collAllreduce, collReduce:
		acc := reduceContrib(contrib, op)
		bytes = bytesOf(len(acc))
		for i := range results {
			if kind == collAllreduce || i == root {
				results[i] = acc
			}
		}
	case collBcast:
		src := contrib[root]
		if src == nil {
			panic("mpi: Bcast root contributed no data")
		}
		bytes = bytesOf(len(src))
		for i := range results {
			results[i] = src
		}
	case collAllgather:
		var total []float64
		for i, part := range contrib {
			if part == nil {
				panic(fmt.Sprintf("mpi: Allgather rank %d contributed no data", i))
			}
			total = append(total, part...)
		}
		bytes = bytesOf(len(contrib[0]))
		for i := range results {
			results[i] = total
		}
	default:
		panic(fmt.Sprintf("mpi: unknown collective kind %d", int(kind)))
	}
	return results, bytes
}

// completeCollectiveLocked is run by the last arriving rank: it computes
// every member's result, costs the collective, and releases the others.
func (c *Comm) completeCollectiveLocked(cs *collState) {
	w := c.world
	p := len(c.group)
	results, bytes := collResults(cs.kind, cs.op, cs.root, p, cs.contrib)
	if cs.kind == collDup || cs.kind == collCreate {
		cs.lastID = w.nextCommID
		w.nextCommID++
	}
	cost := w.cfg.Net.Collective(cs.kind.netKind(), p, bytes, w.rng)
	cs.lastLeave = cs.tmax + cost
	cs.lastResult = results
	cs.arrived = 0
	cs.gen++
	// Parked members are promoted at the next scheduling point (when this
	// rank blocks or finishes); shared-state commits are token-ordered in
	// both scheduler modes, so only one rank ever mutates this state at a
	// time.
}

// reduceContrib folds the contributions elementwise under op. All
// contributions must have equal length.
func reduceContrib(contrib [][]float64, op Op) []float64 {
	var acc []float64
	for i, part := range contrib {
		if part == nil {
			panic(fmt.Sprintf("mpi: reduction rank %d contributed no data", i))
		}
		if acc == nil {
			acc = make([]float64, len(part))
			copy(acc, part)
			continue
		}
		if len(part) != len(acc) {
			panic(fmt.Sprintf("mpi: reduction length mismatch %d vs %d", len(part), len(acc)))
		}
		for j, v := range part {
			acc[j] = op.apply(acc[j], v)
		}
	}
	return acc
}

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() {
	stop := c.enter("MPI_Barrier()")
	defer stop()
	c.collective(collBarrier, nil, 0, OpSum)
}

// Allreduce reduces data elementwise across all ranks under op and returns
// the result (identical on every rank).
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	stop := c.enter("MPI_Allreduce()")
	defer stop()
	res, _ := c.collective(collAllreduce, data, 0, op)
	out := make([]float64, len(res))
	copy(out, res)
	return out
}

// Reduce reduces data elementwise to root. It returns the result on root
// and nil elsewhere.
func (c *Comm) Reduce(op Op, root int, data []float64) []float64 {
	c.checkPeer(root)
	stop := c.enter("MPI_Reduce()")
	defer stop()
	res, _ := c.collective(collReduce, data, root, op)
	if res == nil {
		return nil
	}
	out := make([]float64, len(res))
	copy(out, res)
	return out
}

// Bcast broadcasts root's buf into every rank's buf (in place).
func (c *Comm) Bcast(root int, buf []float64) {
	c.checkPeer(root)
	stop := c.enter("MPI_Bcast()")
	defer stop()
	var contrib []float64
	if c.rank == root {
		contrib = buf
	}
	res, _ := c.collective(collBcast, contrib, root, OpSum)
	if c.rank != root {
		if len(res) != len(buf) {
			panic(fmt.Sprintf("mpi: Bcast buffer length %d != root payload %d", len(buf), len(res)))
		}
		copy(buf, res)
	}
}

// Allgather concatenates every rank's equal-length contribution in rank
// order and returns the concatenation on every rank.
func (c *Comm) Allgather(data []float64) []float64 {
	stop := c.enter("MPI_Allgather()")
	defer stop()
	res, _ := c.collective(collAllgather, data, 0, OpSum)
	out := make([]float64, len(res))
	copy(out, res)
	return out
}

// Dup duplicates the communicator: a collective returning a new Comm with
// the same group but a private message space.
func (c *Comm) Dup() *Comm {
	w := c.world
	stop := c.enter("MPI_Comm_dup()")
	defer stop()
	_, id := c.collective(collDup, nil, 0, OpSum)
	return &Comm{world: w, id: id, rank: c.rank, group: c.group, r: c.r}
}

// CommCreate creates a sub-communicator over the given member ranks (ranks
// of c, sorted ascending). Every rank of c must call it with the same
// group; members receive the new Comm, non-members nil.
func (c *Comm) CommCreate(group []int) *Comm {
	for i, g := range group {
		c.checkPeer(g)
		if i > 0 && group[i-1] >= g {
			panic("mpi: CommCreate group must be sorted and duplicate-free")
		}
	}
	w := c.world
	stop := c.enter("MPI_Comm_create()")
	defer stop()
	_, id := c.collective(collCreate, nil, 0, OpSum)
	myNew := -1
	worldGroup := make([]int, len(group))
	for i, g := range group {
		worldGroup[i] = c.group[g]
		if g == c.rank {
			myNew = i
		}
	}
	if myNew < 0 {
		return nil
	}
	return &Comm{world: w, id: id, rank: myNew, group: worldGroup, r: c.r}
}
