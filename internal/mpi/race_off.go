//go:build !race

package mpi

// raceEnabled reports whether this build runs under the race detector;
// see race_on.go.
const raceEnabled = false
