package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"
)

// This file is the wildcard rollback stress grid (ROADMAP item d): a
// property-style corpus sweeping rank count x wildcard density under the
// optimistic scheduler with a deliberately tight adaptive window, so the
// rollback, re-execution and window-shrink machinery runs constantly
// while byte-identity to the serial scheduler is asserted at every grid
// point. The grid trims itself under the race detector (raceEnabled);
// CI's regular test job runs it in full.

// runTracedSpec is runTraced plus the world's speculation telemetry.
func runTracedSpec(t *testing.T, cfg WorldConfig, body func(r *Rank, log *[]string)) (worldTrace, SpecStats) {
	t.Helper()
	w := NewWorld(cfg)
	tr := worldTrace{log: make([][]string, cfg.Procs)}
	err := w.Run(func(r *Rank) {
		body(r, &tr.log[r.Rank()])
	})
	if err != nil {
		t.Fatalf("sched=%v: %v", cfg.Sched, err)
	}
	for _, r := range w.Ranks() {
		tr.clocks = append(tr.clocks, r.Proc.Now())
		tr.counters = append(tr.counters, fmt.Sprintf("%+v", r.Proc.Counters()))
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(r.Prof); err != nil {
			t.Fatal(err)
		}
		tr.profiles = append(tr.profiles, buf.Bytes())
	}
	return tr, w.SpecStats()
}

// wildcardStressBody builds a hub-and-spokes pattern whose wildcard share
// is tunable: every peer sends `rounds` messages to rank 0, a
// density-controlled fraction of them tagged into a wildcard pool (tag 0,
// drained by Recv(AnySource, ...)) and the rest tagged per-sequence for
// specific-source receives. The two tag classes cannot steal from each
// other, so every density is deadlock-free, while the wildcard drains are
// exactly the speculative matches the commit automaton must validate —
// and roll back — against serial arrival order. Skewed sender clocks plus
// network noise make conflicting speculation routine, and a closing
// Allreduce exercises the speculative-collective path in the same run.
func wildcardStressBody(seed int64, p int, density float64) func(r *Rank, log *[]string) {
	const rounds = 6
	wc := int(density * rounds)
	return func(r *Rank, log *[]string) {
		me := r.Rank()
		rng := rand.New(rand.NewSource(seed ^ int64(me)*0x9e3779b9))
		if me == 0 {
			buf := make([]float64, 16)
			// Interleave the wildcard pool and the specific receives in a
			// seed-derived (scheduler-independent) order.
			type rx struct{ src, tag int }
			var plan []rx
			for s := 1; s < p; s++ {
				for j := 0; j < wc; j++ {
					plan = append(plan, rx{AnySource, 0})
				}
				for j := wc; j < rounds; j++ {
					plan = append(plan, rx{s, 1000 + j})
				}
			}
			rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })
			for _, rc := range plan {
				n := r.Comm.Recv(rc.src, rc.tag, buf)
				*log = append(*log, fmt.Sprintf("n=%d v=%.6f@%.3f", n, buf[0], r.Proc.Now()))
			}
		} else {
			for j := 0; j < rounds; j++ {
				r.Proc.Advance(rng.Float64() * 250)
				k := rng.Intn(12) + 1
				payload := make([]float64, k)
				for i := range payload {
					payload[i] = float64(me*1000+j*10) + rng.Float64()
				}
				tag := 0
				if j >= wc {
					tag = 1000 + j
				}
				r.Comm.Send(0, tag, payload)
			}
		}
		sum := r.Comm.Allreduce(OpSum, []float64{r.Proc.Now()})
		*log = append(*log, fmt.Sprintf("sum=%.6f", sum[0]))
	}
}

// TestWildcardRollbackStressGrid sweeps rank count x wildcard density and
// asserts, at every grid point, that the optimistic scheduler under a
// tight adaptive window reproduces the serial trace bit for bit. The
// logged conflict and rollback rates document how speculation failure
// scales with both axes — the data behind ROADMAP item (d).
func TestWildcardRollbackStressGrid(t *testing.T) {
	ranks := []int{2, 4, 8}
	densities := []float64{0, 0.5, 1}
	seeds := []int64{1, 7, 40}
	if raceEnabled {
		// The detector multiplies runtime ~10x; keep one column of each
		// axis so the -race job still crosses every code path.
		ranks = []int{4}
		densities = []float64{1}
		seeds = seeds[:1]
	}
	for _, p := range ranks {
		for _, density := range densities {
			p, density := p, density
			t.Run(fmt.Sprintf("p%d/wc%.0f%%", p, density*100), func(t *testing.T) {
				t.Parallel()
				for _, seed := range seeds {
					body := wildcardStressBody(seed, p, density)
					cfg := testConfig(p)
					cfg.Net.NoiseSigma = 0.35
					serial := runTraced(t, cfg, body)

					opt := cfg
					opt.Sched = OptimisticParallel
					// A tight adaptive window keeps the shrink/grow control
					// loop hot instead of letting speculation run away.
					opt = opt.WithSpecWindow(8, 128)
					tr, stats := runTracedSpec(t, opt, body)
					assertTracesEqual(t, serial, tr)

					ops := stats.SpeculatedOps + stats.PipelinedOps
					if ops == 0 {
						ops = 1
					}
					t.Logf("seed=%d p=%d density=%.2f: spec=%d pipelined=%d conflicts=%d (%.1f%%) rollbacks=%d window=[%d,%d] shrinks=%d grows=%d",
						seed, p, density, stats.SpeculatedOps, stats.PipelinedOps,
						stats.Conflicts, float64(stats.Conflicts)/float64(ops)*100,
						stats.Rollbacks, stats.WindowMin, stats.WindowMax,
						stats.WindowShrinks, stats.WindowGrows)
				}
			})
		}
	}
}
