// Package assembly implements the paper's composite performance model
// (Fig. 10 and Section 6): the application's "dual", a directed graph built
// from the framework's wiring diagram plus the Mastermind's recorded call
// trace, with edge weights equal to invocation counts and vertex weights
// given by the per-component performance models. The composite model serves
// as the cost function for selecting among multiple implementations of a
// functionality (the ICENI-style optimizer of the paper's Section 2), with
// a Quality-of-Service constraint reflecting the EFMFlux-vs-GodunovFlux
// accuracy/performance trade the paper discusses.
package assembly

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// Vertex is one component in the dual, weighted by its predicted compute
// and communication time models (functions of the workload parameter Q).
type Vertex struct {
	Name string
	// Compute predicts compute microseconds per invocation at workload Q.
	Compute perfmodel.Model
	// Comm predicts communication microseconds per invocation (nil for
	// components that never touch MPI).
	Comm perfmodel.Model
	// Q is the workload parameter this component is invoked with.
	Q float64
}

// PredictPerCall returns the vertex's predicted microseconds per
// invocation. Fitted models extrapolated below their sampled range can go
// negative (a linear fit's intercept); predictions clamp at zero.
func (v *Vertex) PredictPerCall() float64 {
	t := 0.0
	if v.Compute != nil {
		t += math.Max(0, v.Compute.Predict(v.Q))
	}
	if v.Comm != nil {
		t += math.Max(0, v.Comm.Predict(v.Q))
	}
	return t
}

// Edge is a caller→callee relationship weighted by invocation count.
type Edge struct {
	From, To string
	Method   string
	Calls    int
}

// Dual is the application's directed performance graph.
type Dual struct {
	vertices map[string]*Vertex
	order    []string
	edges    []Edge
}

// NewDual creates an empty dual.
func NewDual() *Dual {
	return &Dual{vertices: make(map[string]*Vertex)}
}

// AddVertex inserts (or replaces) a component vertex.
func (d *Dual) AddVertex(v Vertex) {
	if _, exists := d.vertices[v.Name]; !exists {
		d.order = append(d.order, v.Name)
	}
	cp := v
	d.vertices[v.Name] = &cp
}

// Vertex returns the named vertex, or nil.
func (d *Dual) Vertex(name string) *Vertex { return d.vertices[name] }

// Vertices returns the vertex names in insertion order.
func (d *Dual) Vertices() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// AddEdge inserts a weighted call edge; unknown endpoints are created as
// model-less vertices.
func (d *Dual) AddEdge(from, to, method string, calls int) {
	for _, n := range []string{from, to} {
		if _, ok := d.vertices[n]; !ok {
			d.AddVertex(Vertex{Name: n})
		}
	}
	d.edges = append(d.edges, Edge{From: from, To: to, Method: method, Calls: calls})
}

// Edges returns the call edges.
func (d *Dual) Edges() []Edge {
	out := make([]Edge, len(d.edges))
	copy(out, d.edges)
	return out
}

// FromTrace builds the dual from a Mastermind call trace: each recorded
// caller→callee edge becomes a weighted edge (the paper's "wiring diagram
// plus call trace" construction). Vertex models are attached afterwards
// with AddVertex.
func FromTrace(edges map[core.CallEdge]int) *Dual {
	d := NewDual()
	keys := make([]core.CallEdge, 0, len(edges))
	for e := range edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return a.Method < b.Method
	})
	for _, e := range keys {
		d.AddEdge(e.Caller, e.Callee, e.Method, edges[e])
	}
	return d
}

// vertexCalls sums the incoming invocation counts per vertex; vertices with
// no incoming edge (drivers) count once.
func (d *Dual) vertexCalls() map[string]int {
	calls := map[string]int{}
	hasIncoming := map[string]bool{}
	for _, e := range d.edges {
		calls[e.To] += e.Calls
		hasIncoming[e.To] = true
	}
	for _, name := range d.order {
		if !hasIncoming[name] {
			calls[name] = 1
		}
	}
	return calls
}

// Contribution returns each vertex's predicted share of the composite cost.
func (d *Dual) Contribution() map[string]float64 {
	calls := d.vertexCalls()
	out := map[string]float64{}
	for name, v := range d.vertices {
		out[name] = float64(calls[name]) * v.PredictPerCall()
	}
	return out
}

// Cost evaluates the composite performance model: the sum over vertices of
// invocation count times the per-invocation prediction.
func (d *Dual) Cost() float64 {
	total := 0.0
	for _, c := range d.Contribution() {
		total += c
	}
	return total
}

// Prune returns a copy of the dual without the subgraphs whose total
// contribution falls below frac of the composite cost — the paper's
// "identify sub-graphs that do not contribute much to the execution time
// and thus can be neglected during component assembly optimization". The
// caller–callee relationship is preserved.
func (d *Dual) Prune(frac float64) *Dual {
	total := d.Cost()
	contrib := d.Contribution()
	// A vertex survives if it, or any downstream vertex reachable from it,
	// contributes at least frac*total.
	adj := map[string][]string{}
	for _, e := range d.edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	memo := map[string]float64{}
	var subtree func(n string, seen map[string]bool) float64
	subtree = func(n string, seen map[string]bool) float64 {
		if v, ok := memo[n]; ok {
			return v
		}
		if seen[n] {
			return 0
		}
		seen[n] = true
		s := contrib[n]
		for _, m := range adj[n] {
			s += subtree(m, seen)
		}
		delete(seen, n)
		memo[n] = s
		return s
	}
	keep := map[string]bool{}
	for _, name := range d.order {
		if subtree(name, map[string]bool{}) >= frac*total {
			keep[name] = true
		}
	}
	out := NewDual()
	for _, name := range d.order {
		if keep[name] {
			out.AddVertex(*d.vertices[name])
		}
	}
	for _, e := range d.edges {
		if keep[e.From] && keep[e.To] {
			out.AddEdge(e.From, e.To, e.Method, e.Calls)
		}
	}
	return out
}

// WriteDOT renders the dual as a Graphviz digraph with vertex weights
// (predicted compute+comm per call) and edge weights (invocation counts) —
// the lower half of the paper's Fig. 10.
func (d *Dual) WriteDOT(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  node [shape=ellipse];\n", title); err != nil {
		return err
	}
	for _, name := range d.order {
		v := d.vertices[name]
		fmt.Fprintf(w, "  %q [label=\"%s\\n%.0f us/call\"];\n", name, name, v.PredictPerCall())
	}
	for _, e := range d.edges {
		fmt.Fprintf(w, "  %q -> %q [label=\"%s x%d\"];\n", e.From, e.To, e.Method, e.Calls)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Implementation is one candidate realization of a functionality, with its
// fitted performance models and a quality-of-service score (the paper's
// accuracy/robustness axis: GodunovFlux is more accurate, EFMFlux faster).
type Implementation struct {
	Name    string
	Compute perfmodel.Model
	Comm    perfmodel.Model
	QoS     float64
}

// Slot is a choice point in the assembly: a vertex of the dual with
// multiple interchangeable implementations.
type Slot struct {
	// Vertex names the dual vertex the chosen implementation replaces.
	Vertex string
	// Impls lists the candidates (the paper's C_i implementations).
	Impls []Implementation
}

// Choice maps slot vertex names to the selected implementation names.
type Choice map[string]string

// Optimizer enumerates the product of implementation choices (the paper's
// Π C_i space) and evaluates the composite model for each, honoring a
// minimum QoS.
type Optimizer struct {
	Dual   *Dual
	Slots  []Slot
	MinQoS float64
}

// Evaluate returns the composite cost under a specific choice. Unknown
// implementation names panic: the optimizer is driven by its own
// enumeration.
func (o *Optimizer) Evaluate(choice Choice) float64 {
	trial := NewDual()
	for _, name := range o.Dual.order {
		v := *o.Dual.vertices[name]
		if implName, ok := choice[name]; ok {
			found := false
			for _, s := range o.Slots {
				if s.Vertex != name {
					continue
				}
				for _, impl := range s.Impls {
					if impl.Name == implName {
						v.Compute, v.Comm = impl.Compute, impl.Comm
						found = true
					}
				}
			}
			if !found {
				panic(fmt.Sprintf("assembly: unknown implementation %q for slot %q", implName, name))
			}
		}
		trial.AddVertex(v)
	}
	for _, e := range o.Dual.edges {
		trial.AddEdge(e.From, e.To, e.Method, e.Calls)
	}
	return trial.Cost()
}

// Result describes one evaluated assembly.
type Result struct {
	Choice Choice
	Cost   float64
	MinQoS float64
}

// Optimize enumerates every admissible assembly and returns the cheapest
// plus the full ranking (cheapest first). Assemblies containing an
// implementation below MinQoS are excluded.
func (o *Optimizer) Optimize() (best Result, ranking []Result, err error) {
	if len(o.Slots) == 0 {
		return Result{Choice: Choice{}, Cost: o.Dual.Cost()}, nil, nil
	}
	var all []Result
	choice := Choice{}
	var walk func(slot int) error
	walk = func(slot int) error {
		if slot == len(o.Slots) {
			minQ := math.Inf(1)
			for _, s := range o.Slots {
				for _, impl := range s.Impls {
					if impl.Name == choice[s.Vertex] && impl.QoS < minQ {
						minQ = impl.QoS
					}
				}
			}
			cp := Choice{}
			for k, v := range choice {
				cp[k] = v
			}
			all = append(all, Result{Choice: cp, Cost: o.Evaluate(cp), MinQoS: minQ})
			return nil
		}
		s := o.Slots[slot]
		if len(s.Impls) == 0 {
			return fmt.Errorf("assembly: slot %q has no implementations", s.Vertex)
		}
		for _, impl := range s.Impls {
			if impl.QoS < o.MinQoS {
				continue
			}
			choice[s.Vertex] = impl.Name
			if err := walk(slot + 1); err != nil {
				return err
			}
		}
		delete(choice, s.Vertex)
		return nil
	}
	if err := walk(0); err != nil {
		return Result{}, nil, err
	}
	if len(all) == 0 {
		return Result{}, nil, fmt.Errorf("assembly: no assembly satisfies MinQoS %.2f", o.MinQoS)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Cost < all[j].Cost })
	return all[0], all, nil
}
