package assembly

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// lin builds a quick linear model.
func lin(c0, c1 float64) perfmodel.Model { return perfmodel.Poly{Coeffs: []float64{c0, c1}} }

// caseDual builds a small application dual resembling Fig. 10:
// driver -> rk2 -> {mesh, flux, states}.
func caseDual() *Dual {
	d := NewDual()
	d.AddVertex(Vertex{Name: "driver", Compute: lin(10, 0), Q: 1})
	d.AddVertex(Vertex{Name: "rk2", Compute: lin(50, 0), Q: 1})
	d.AddVertex(Vertex{Name: "mesh", Compute: lin(100, 0), Comm: lin(2000, 0), Q: 1})
	d.AddVertex(Vertex{Name: "states", Compute: lin(0, 0.05), Q: 10000})
	d.AddVertex(Vertex{Name: "flux", Compute: lin(-963, 0.315), Q: 10000})
	d.AddEdge("driver", "rk2", "advance", 16)
	d.AddEdge("rk2", "mesh", "ghostUpdate", 64)
	d.AddEdge("rk2", "states", "compute", 128)
	d.AddEdge("rk2", "flux", "compute", 128)
	return d
}

func TestCostSumsContributions(t *testing.T) {
	d := caseDual()
	want := 1*10.0 + 16*50 + 64*2100 + 128*(0.05*10000) + 128*(-963+0.315*10000)
	if got := d.Cost(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %g, want %g", got, want)
	}
	contrib := d.Contribution()
	if contrib["driver"] != 10 {
		t.Errorf("driver contribution = %g (no incoming edge => 1 call)", contrib["driver"])
	}
	if contrib["mesh"] != 64*2100 {
		t.Errorf("mesh contribution = %g", contrib["mesh"])
	}
}

func TestVertexPredictPerCall(t *testing.T) {
	v := Vertex{Name: "x", Compute: lin(5, 1), Comm: lin(100, 0), Q: 10}
	if got := v.PredictPerCall(); got != 115 {
		t.Errorf("PredictPerCall = %g, want 115", got)
	}
	bare := Vertex{Name: "y", Q: 10}
	if got := bare.PredictPerCall(); got != 0 {
		t.Errorf("model-less vertex cost = %g", got)
	}
}

func TestFromTraceDeterministic(t *testing.T) {
	edges := map[core.CallEdge]int{
		{Caller: "rk20", Callee: "icc_proxy", Method: "ghostUpdate"}:     64,
		{Caller: "inviscidflux0", Callee: "sc_proxy", Method: "compute"}: 128,
		{Caller: "inviscidflux0", Callee: "g_proxy", Method: "compute"}:  128,
	}
	d1 := FromTrace(edges)
	d2 := FromTrace(edges)
	if len(d1.Edges()) != 3 {
		t.Fatalf("edges = %d", len(d1.Edges()))
	}
	for i, e := range d1.Edges() {
		if d2.Edges()[i] != e {
			t.Fatal("FromTrace not deterministic")
		}
	}
	if d1.Vertex("icc_proxy") == nil {
		t.Error("callee vertex not created")
	}
}

func TestPruneDropsInsignificantSubgraphs(t *testing.T) {
	d := caseDual()
	// A negligible leaf: a logger invoked by the driver costing ~nothing.
	d.AddVertex(Vertex{Name: "logger", Compute: lin(0.5, 0), Q: 1})
	d.AddEdge("driver", "logger", "log", 16)
	p := d.Prune(0.01)
	if p.Vertex("logger") != nil {
		t.Error("negligible leaf survived pruning")
	}
	// The driver's subtree is the whole application: it must survive even
	// though its own contribution is tiny (caller-callee preservation).
	for _, keep := range []string{"driver", "mesh", "flux", "states", "rk2"} {
		if p.Vertex(keep) == nil {
			t.Errorf("%s pruned but significant", keep)
		}
	}
	// Edges touching pruned vertices are gone; others intact.
	for _, e := range p.Edges() {
		if e.From == "logger" || e.To == "logger" {
			t.Errorf("dangling edge %+v", e)
		}
	}
	if len(p.Edges()) != len(d.Edges())-1 {
		t.Errorf("edges after prune = %d, want %d", len(p.Edges()), len(d.Edges())-1)
	}
}

func TestPruneKeepsAncestorsOfSignificantWork(t *testing.T) {
	// A cheap dispatcher above an expensive worker must survive because its
	// subtree is significant (caller-callee relationship preserved).
	d := NewDual()
	d.AddVertex(Vertex{Name: "dispatch", Compute: lin(0.001, 0), Q: 1})
	d.AddVertex(Vertex{Name: "worker", Compute: lin(1e6, 0), Q: 1})
	d.AddEdge("dispatch", "worker", "run", 10)
	p := d.Prune(0.1)
	if p.Vertex("dispatch") == nil {
		t.Error("dispatcher pruned despite expensive subtree")
	}
	if len(p.Edges()) != 1 {
		t.Errorf("edges after prune = %d, want 1", len(p.Edges()))
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := caseDual().WriteDOT(&sb, "dual"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", `"rk2" -> "mesh"`, "ghostUpdate x64", "us/call"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func fluxSlot() Slot {
	return Slot{
		Vertex: "flux",
		Impls: []Implementation{
			{Name: "GodunovFlux", Compute: lin(-963, 0.315), QoS: 1.0},
			{Name: "EFMFlux", Compute: lin(-8.13, 0.16), QoS: 0.7},
		},
	}
}

func TestOptimizerPicksCheaperImplementation(t *testing.T) {
	opt := &Optimizer{Dual: caseDual(), Slots: []Slot{fluxSlot()}}
	best, ranking, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if best.Choice["flux"] != "EFMFlux" {
		t.Errorf("best = %v, want EFMFlux (cheaper at Q=10000)", best.Choice)
	}
	if len(ranking) != 2 {
		t.Fatalf("ranking size = %d, want 2", len(ranking))
	}
	if ranking[0].Cost >= ranking[1].Cost {
		t.Error("ranking not sorted by cost")
	}
	// The gap equals 128 * (Godunov - EFM at Q=1e4).
	wantGap := 128 * ((-963 + 0.315*10000) - (-8.13 + 0.16*10000))
	if got := ranking[1].Cost - ranking[0].Cost; math.Abs(got-wantGap) > 1e-6 {
		t.Errorf("cost gap = %g, want %g", got, wantGap)
	}
}

func TestOptimizerQoSConstraintFlipsChoice(t *testing.T) {
	// Requiring the scientists' accuracy floor excludes EFM: the paper's
	// Quality-of-Service discussion in action.
	opt := &Optimizer{Dual: caseDual(), Slots: []Slot{fluxSlot()}, MinQoS: 0.9}
	best, ranking, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if best.Choice["flux"] != "GodunovFlux" {
		t.Errorf("QoS-constrained best = %v, want GodunovFlux", best.Choice)
	}
	if len(ranking) != 1 {
		t.Errorf("ranking = %d assemblies, want 1 admissible", len(ranking))
	}
}

func TestOptimizerInfeasibleQoS(t *testing.T) {
	opt := &Optimizer{Dual: caseDual(), Slots: []Slot{fluxSlot()}, MinQoS: 2.0}
	if _, _, err := opt.Optimize(); err == nil {
		t.Fatal("impossible QoS floor accepted")
	}
}

func TestOptimizerMultipleSlotsEnumeratesProduct(t *testing.T) {
	d := caseDual()
	statesSlot := Slot{
		Vertex: "states",
		Impls: []Implementation{
			{Name: "StatesV1", Compute: lin(0, 0.05), QoS: 1},
			{Name: "StatesV2", Compute: lin(0, 0.02), QoS: 1},
			{Name: "StatesV3", Compute: lin(0, 0.9), QoS: 1},
		},
	}
	opt := &Optimizer{Dual: d, Slots: []Slot{fluxSlot(), statesSlot}}
	best, ranking, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != 6 { // 2 x 3 product
		t.Fatalf("ranking size = %d, want 6", len(ranking))
	}
	if best.Choice["flux"] != "EFMFlux" || best.Choice["states"] != "StatesV2" {
		t.Errorf("best = %v", best.Choice)
	}
}

func TestOptimizerNoSlots(t *testing.T) {
	d := caseDual()
	opt := &Optimizer{Dual: d}
	best, _, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost != d.Cost() {
		t.Errorf("no-slot cost = %g, want dual cost %g", best.Cost, d.Cost())
	}
}

func TestOptimizerEmptySlotErrors(t *testing.T) {
	opt := &Optimizer{Dual: caseDual(), Slots: []Slot{{Vertex: "flux"}}}
	if _, _, err := opt.Optimize(); err == nil {
		t.Fatal("empty slot accepted")
	}
}

func TestEvaluateUnknownImplementationPanics(t *testing.T) {
	opt := &Optimizer{Dual: caseDual(), Slots: []Slot{fluxSlot()}}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown implementation did not panic")
		}
	}()
	opt.Evaluate(Choice{"flux": "NoSuchFlux"})
}
