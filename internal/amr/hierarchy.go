package amr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/euler"
	"repro/internal/mpi"
	"repro/internal/platform"
)

// PatchMeta is the globally replicated description of one patch. Data for
// the patch exists only on Owner's rank.
type PatchMeta struct {
	// ID is the globally unique, deterministically assigned patch id.
	ID int
	// Level is the refinement level (0 = coarsest).
	Level int
	// Rect is the patch interior in level-local global cell coordinates.
	Rect Rect
	// Owner is the owning rank.
	Owner int
	// Parent is the ID of the enclosing patch one level coarser (-1 at
	// level 0).
	Parent int
}

// Config shapes the hierarchy.
type Config struct {
	// BaseNx, BaseNy are the level-0 grid extents in cells.
	BaseNx, BaseNy int
	// TileNx, TileNy tile the base grid into level-0 patches.
	TileNx, TileNy int
	// MaxLevels is the total number of levels (the paper ran 3).
	MaxLevels int
	// Ratio is the refinement factor between levels (the paper used 2).
	Ratio int
	// Ghost is the ghost-cell width (>= 2 for the MUSCL stencil).
	Ghost int
	// FlagThreshold is the refinement indicator threshold.
	FlagThreshold float64
	// BufferCells pads flagged regions so features stay refined between
	// regrids.
	BufferCells int
	// MinPatchSide is the minimum clustered patch side, in coarse cells.
	MinPatchSide int
	// FillRatio is the clustering efficiency target (flagged/total).
	FillRatio float64
	// Problem is the physical setup used for initial data.
	Problem euler.ShockInterfaceProblem
}

// DefaultConfig returns the case-study hierarchy: a 3-level refinement-
// factor-2 grid over the shock/interface domain.
func DefaultConfig() Config {
	return Config{
		BaseNx: 64, BaseNy: 16,
		TileNx: 16, TileNy: 8,
		MaxLevels: 3, Ratio: 2, Ghost: 2,
		FlagThreshold: 0.04, BufferCells: 2,
		MinPatchSide: 4, FillRatio: 0.7,
		Problem: euler.DefaultShockInterface(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.BaseNx <= 0 || c.BaseNy <= 0:
		return fmt.Errorf("amr: base grid %dx%d", c.BaseNx, c.BaseNy)
	case c.TileNx <= 0 || c.TileNy <= 0 || c.BaseNx%c.TileNx != 0 || c.BaseNy%c.TileNy != 0:
		return fmt.Errorf("amr: tiles %dx%d must divide base %dx%d", c.TileNx, c.TileNy, c.BaseNx, c.BaseNy)
	case c.MaxLevels < 1:
		return fmt.Errorf("amr: MaxLevels %d", c.MaxLevels)
	case c.Ratio < 2:
		return fmt.Errorf("amr: Ratio %d", c.Ratio)
	case c.Ghost < 2:
		return fmt.Errorf("amr: Ghost %d (MUSCL needs 2)", c.Ghost)
	}
	return nil
}

// Hierarchy is the SAMR patch hierarchy of one rank: replicated metadata
// for every level plus the data blocks this rank owns.
type Hierarchy struct {
	cfg    Config
	r      *mpi.Rank // nil in serial use
	levels [][]PatchMeta
	blocks map[int]*euler.Block
	nextID int
}

// New builds the hierarchy: level-0 tiling, initial data, and the initial
// refinement cascade (each level flagged from analytic initial data).
// rank may be nil for serial (single-process) use.
func New(cfg Config, rank *mpi.Rank) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:    cfg,
		r:      rank,
		levels: make([][]PatchMeta, cfg.MaxLevels),
		blocks: make(map[int]*euler.Block),
	}
	// Level-0 tiling with contiguous block distribution over ranks.
	tilesX := cfg.BaseNx / cfg.TileNx
	tilesY := cfg.BaseNy / cfg.TileNy
	nTiles := tilesX * tilesY
	p := h.Size()
	for tj := 0; tj < tilesY; tj++ {
		for ti := 0; ti < tilesX; ti++ {
			idx := tj*tilesX + ti
			m := PatchMeta{
				ID:     h.nextID,
				Level:  0,
				Rect:   NewRect(ti*cfg.TileNx, tj*cfg.TileNy, cfg.TileNx, cfg.TileNy),
				Owner:  idx * p / nTiles,
				Parent: -1,
			}
			h.nextID++
			h.levels[0] = append(h.levels[0], m)
			if m.Owner == h.Rank() {
				h.blocks[m.ID] = h.newPatchBlock(m, true)
			}
		}
	}
	// Initial refinement cascade: flag from the just-initialized data.
	for lev := 0; lev < cfg.MaxLevels-1; lev++ {
		h.GhostExchange(lev)
		h.regridLevel(lev, true)
	}
	return h, nil
}

// Rank returns this rank's id (0 in serial use).
func (h *Hierarchy) Rank() int {
	if h.r == nil {
		return 0
	}
	return h.r.Rank()
}

// Size returns the number of ranks (1 in serial use).
func (h *Hierarchy) Size() int {
	if h.r == nil {
		return 1
	}
	return h.r.Comm.Size()
}

// proc returns the platform processor for cost charging (nil when serial).
func (h *Hierarchy) proc() *platform.Proc {
	if h.r == nil {
		return nil
	}
	return h.r.Proc
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// NumLevels returns the number of levels currently present.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// Level returns the replicated metadata of one level (do not mutate).
func (h *Hierarchy) Level(lev int) []PatchMeta {
	if lev < 0 || lev >= len(h.levels) {
		return nil
	}
	return h.levels[lev]
}

// Block returns the local data block for a patch ID, or nil if the patch is
// remote.
func (h *Hierarchy) Block(id int) *euler.Block { return h.blocks[id] }

// PatchRef pairs a patch's metadata with its local data.
type PatchRef struct {
	Meta  PatchMeta
	Block *euler.Block
}

// LocalPatches returns this rank's patches at a level, ordered by ID.
func (h *Hierarchy) LocalPatches(lev int) []PatchRef {
	var out []PatchRef
	for _, m := range h.Level(lev) {
		if m.Owner == h.Rank() {
			out = append(out, PatchRef{Meta: m, Block: h.blocks[m.ID]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.ID < out[j].Meta.ID })
	return out
}

// CellSize returns the mesh spacing at a level.
func (h *Hierarchy) CellSize(lev int) (dx, dy float64) {
	f := 1.0
	for l := 0; l < lev; l++ {
		f *= float64(h.cfg.Ratio)
	}
	return h.cfg.Problem.Lx / (float64(h.cfg.BaseNx) * f),
		h.cfg.Problem.Ly / (float64(h.cfg.BaseNy) * f)
}

// levelDomain returns the whole-domain rectangle at a level's resolution.
func (h *Hierarchy) levelDomain(lev int) Rect {
	f := 1
	for l := 0; l < lev; l++ {
		f *= h.cfg.Ratio
	}
	return NewRect(0, 0, h.cfg.BaseNx*f, h.cfg.BaseNy*f)
}

// newPatchBlock allocates (and optionally analytically initializes) the
// data block for a patch this rank owns.
func (h *Hierarchy) newPatchBlock(m PatchMeta, initData bool) *euler.Block {
	b := euler.NewBlock(h.proc(), m.Rect.Nx(), m.Rect.Ny(), h.cfg.Ghost)
	if initData {
		dx, dy := h.CellSize(m.Level)
		h.cfg.Problem.InitBlock(b, float64(m.Rect.I0)*dx, float64(m.Rect.J0)*dy, dx, dy)
	}
	return b
}

// MaxWaveSpeed returns the largest wave speed over all local patches (the
// driver reduces it across ranks for the CFL step).
func (h *Hierarchy) MaxWaveSpeed() float64 {
	maxS := 0.0
	for lev := 0; lev < len(h.levels); lev++ {
		for _, p := range h.LocalPatches(lev) {
			if s := p.Block.MaxWaveSpeed(); s > maxS {
				maxS = s
			}
		}
	}
	return maxS
}

// LevelStats summarizes one level.
type LevelStats struct {
	Patches int
	Cells   int
}

// Stats returns per-level patch and cell counts (from replicated metadata,
// identical on every rank).
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for lev, metas := range h.levels {
		for _, m := range metas {
			out[lev].Patches++
			out[lev].Cells += m.Rect.Area()
		}
	}
	return out
}

// LocalCells returns the number of cells owned by this rank across levels,
// the load-balance weight.
func (h *Hierarchy) LocalCells() int {
	n := 0
	for _, metas := range h.levels {
		for _, m := range metas {
			if m.Owner == h.Rank() {
				n += m.Rect.Area()
			}
		}
	}
	return n
}

// DensityImage composes the density field at the finest resolution,
// coarse levels first so finer data overwrites them (Fig. 1's plotted
// field). Under MPI the per-level partial images are summed across ranks;
// every rank returns the full image.
func (h *Hierarchy) DensityImage() (nx, ny int, img []float64) {
	fine := h.levelDomain(len(h.levels) - 1)
	nx, ny = fine.Nx(), fine.Ny()
	img = make([]float64, nx*ny)
	scale := 1
	for l := 0; l < len(h.levels); l++ {
		scale = 1
		for k := l; k < len(h.levels)-1; k++ {
			scale *= h.cfg.Ratio
		}
		part := make([]float64, nx*ny)
		for _, p := range h.LocalPatches(l) {
			for j := 0; j < p.Meta.Rect.Ny(); j++ {
				for i := 0; i < p.Meta.Rect.Nx(); i++ {
					rho := p.Block.At(i, j)[euler.IRho]
					gi0 := (p.Meta.Rect.I0 + i) * scale
					gj0 := (p.Meta.Rect.J0 + j) * scale
					for dj := 0; dj < scale; dj++ {
						for di := 0; di < scale; di++ {
							part[(gj0+dj)*nx+gi0+di] = rho
						}
					}
				}
			}
		}
		if h.r != nil {
			part = h.r.Comm.Allreduce(mpi.OpSum, part)
		}
		for k, v := range part {
			if v != 0 {
				img[k] = v
			}
		}
	}
	return nx, ny, img
}

// TotalMass integrates density over the hierarchy (each region counted at
// its finest covering level), a conservation diagnostic. Serial only
// (used by tests).
func (h *Hierarchy) TotalMass() float64 {
	if h.r != nil {
		panic("amr: TotalMass is a serial diagnostic")
	}
	var mass float64
	for lev := len(h.levels) - 1; lev >= 0; lev-- {
		dx, dy := h.CellSize(lev)
		for _, p := range h.LocalPatches(lev) {
			for j := 0; j < p.Meta.Rect.Ny(); j++ {
				for i := 0; i < p.Meta.Rect.Nx(); i++ {
					gi, gj := p.Meta.Rect.I0+i, p.Meta.Rect.J0+j
					if lev < len(h.levels)-1 && h.coveredByFiner(lev, gi, gj) {
						continue
					}
					mass += p.Block.At(i, j)[euler.IRho] * dx * dy
				}
			}
		}
	}
	return mass
}

// coveredByFiner reports whether cell (gi,gj) at level lev is covered by a
// patch at level lev+1.
func (h *Hierarchy) coveredByFiner(lev, gi, gj int) bool {
	fi, fj := gi*h.cfg.Ratio, gj*h.cfg.Ratio
	for _, m := range h.Level(lev + 1) {
		if fi >= m.Rect.I0 && fi < m.Rect.I1 && fj >= m.Rect.J0 && fj < m.Rect.J1 {
			return true
		}
	}
	return false
}

// parentOf returns the metadata of a patch's parent.
func (h *Hierarchy) parentOf(m PatchMeta) (PatchMeta, bool) {
	if m.Level == 0 || m.Parent < 0 {
		return PatchMeta{}, false
	}
	for _, q := range h.Level(m.Level - 1) {
		if q.ID == m.Parent {
			return q, true
		}
	}
	return PatchMeta{}, false
}

// Imbalance returns max/mean of per-rank cell loads, from replicated
// metadata (identical on every rank). 1.0 is perfect balance.
func (h *Hierarchy) Imbalance() float64 {
	p := h.Size()
	loads := make([]float64, p)
	for _, metas := range h.levels {
		for _, m := range metas {
			loads[m.Owner] += float64(m.Rect.Area())
		}
	}
	var sum, maxL float64
	for _, l := range loads {
		sum += l
		maxL = math.Max(maxL, l)
	}
	if sum == 0 {
		return 1
	}
	return maxL / (sum / float64(p))
}
