package amr

import "repro/internal/euler"

// prolongFlopsPerCell and restrictFlopsPerCell cost the inter-level
// transfer arithmetic (the icc_proxy::prolong / ::restrict rows of Fig. 3).
const (
	prolongFlopsPerCell  = 8 * euler.NVars
	restrictFlopsPerCell = 5 * euler.NVars
)

// prolongGhosts fills the ghost ring of a fine patch by piecewise-constant
// injection from its (local) parent. Same-level exchange and physical BCs
// later overwrite wherever better data exists.
func (h *Hierarchy) prolongGhosts(p PatchRef) {
	q, ok := h.parentOf(p.Meta)
	if !ok {
		return
	}
	pq := h.blocks[q.ID]
	if pq == nil {
		panic("amr: prolongGhosts: parent not local (subtree ownership violated)")
	}
	r := h.cfg.Ratio
	dom := h.levelDomain(p.Meta.Level)
	gz := p.Meta.Rect.Expand(h.cfg.Ghost)
	for gj := gz.J0; gj < gz.J1; gj++ {
		for gi := gz.I0; gi < gz.I1; gi++ {
			// ghost ring only
			if gi >= p.Meta.Rect.I0 && gi < p.Meta.Rect.I1 &&
				gj >= p.Meta.Rect.J0 && gj < p.Meta.Rect.J1 {
				continue
			}
			// outside the domain: physical BC handles it later
			if gi < dom.I0 || gi >= dom.I1 || gj < dom.J0 || gj >= dom.J1 {
				continue
			}
			ci, cj := floorDiv(gi, r), floorDiv(gj, r)
			u := pq.At(ci-q.Rect.I0, cj-q.Rect.J0)
			p.Block.Set(gi-p.Meta.Rect.I0, gj-p.Meta.Rect.J0, u)
		}
	}
	if h.proc() != nil {
		ring := gz.Area() - p.Meta.Rect.Area()
		h.proc().ChargeFlops(2 * ring) // index mapping cost
	}
}

// ProlongInterior fills the interior of a fine block from its parent with
// slope-limited linear interpolation (conservative for even ratios). It is
// used to seed newly created patches at regrid time and is the work behind
// the paper's icc_proxy::prolong row.
func (h *Hierarchy) ProlongInterior(m PatchMeta, b *euler.Block) {
	q, ok := h.parentOf(m)
	if !ok {
		panic("amr: ProlongInterior on level-0 patch")
	}
	pq := h.blocks[q.ID]
	if pq == nil {
		panic("amr: ProlongInterior: parent not local")
	}
	r := h.cfg.Ratio
	for fj := m.Rect.J0; fj < m.Rect.J1; fj++ {
		for fi := m.Rect.I0; fi < m.Rect.I1; fi++ {
			ci, cj := floorDiv(fi, r), floorDiv(fj, r)
			li, lj := ci-q.Rect.I0, cj-q.Rect.J0
			uc := pq.At(li, lj)
			uxm, uxp := pq.At(li-1, lj), pq.At(li+1, lj)
			uym, uyp := pq.At(li, lj-1), pq.At(li, lj+1)
			// Offset of the fine cell center within the coarse cell, in
			// coarse-cell units (±0.25 for ratio 2).
			ox := (float64(fi-ci*r)+0.5)/float64(r) - 0.5
			oy := (float64(fj-cj*r)+0.5)/float64(r) - 0.5
			var u euler.Cons
			for v := 0; v < euler.NVars; v++ {
				sx := mm(uc[v]-uxm[v], uxp[v]-uc[v])
				sy := mm(uc[v]-uym[v], uyp[v]-uc[v])
				u[v] = uc[v] + sx*ox + sy*oy
			}
			b.Set(fi-m.Rect.I0, fj-m.Rect.J0, u)
		}
	}
	if h.proc() != nil {
		h.proc().ChargeFlops(prolongFlopsPerCell * m.Rect.Area())
	}
}

// Restrict projects every local patch of fineLevel onto its parent by
// conservative averaging — the periodic interpolation of the more accurate
// fine solution onto the coarser levels (icc_proxy::restrict in Fig. 3).
func (h *Hierarchy) Restrict(fineLevel int) {
	if fineLevel <= 0 || fineLevel >= len(h.levels) {
		return
	}
	r := h.cfg.Ratio
	area := float64(r * r)
	for _, p := range h.LocalPatches(fineLevel) {
		q, ok := h.parentOf(p.Meta)
		if !ok {
			continue
		}
		pq := h.blocks[q.ID]
		if pq == nil {
			panic("amr: Restrict: parent not local")
		}
		cr := p.Meta.Rect.Coarsen(r)
		for cj := cr.J0; cj < cr.J1; cj++ {
			for ci := cr.I0; ci < cr.I1; ci++ {
				var acc euler.Cons
				for dj := 0; dj < r; dj++ {
					for di := 0; di < r; di++ {
						u := p.Block.At(ci*r+di-p.Meta.Rect.I0, cj*r+dj-p.Meta.Rect.J0)
						for v := 0; v < euler.NVars; v++ {
							acc[v] += u[v]
						}
					}
				}
				for v := 0; v < euler.NVars; v++ {
					acc[v] /= area
				}
				pq.Set(ci-q.Rect.I0, cj-q.Rect.J0, acc)
			}
		}
		if h.proc() != nil {
			h.proc().ChargeFlops(restrictFlopsPerCell * p.Meta.Rect.Area())
		}
	}
}

// mm is the minmod limiter (duplicated from euler to keep the packages
// decoupled at this tiny cost).
func mm(a, b float64) float64 {
	if a > 0 && b > 0 {
		if a < b {
			return a
		}
		return b
	}
	if a < 0 && b < 0 {
		if a > b {
			return a
		}
		return b
	}
	return 0
}
