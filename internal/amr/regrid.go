package amr

import (
	"sort"

	"repro/internal/euler"
)

// proposal is one clustered refinement rectangle, in the coordinates of the
// level being created, tagged with its parent patch.
type proposal struct {
	parent int
	r      Rect
}

// Regrid rebuilds every refined level from fresh flags: level 1 from level
// 0 data, then level 2 from the new level 1, and so on. Existing fine data
// is preserved wherever old and new patches overlap; newly refined regions
// are seeded by prolongation. The grid hierarchy "subjected to a re-grid
// step during the simulation" is what splits the Fig. 9 clusters.
func (h *Hierarchy) Regrid() {
	for lev := 0; lev < h.cfg.MaxLevels-1; lev++ {
		h.GhostExchange(lev)
		h.regridLevel(lev, false)
	}
}

// regridLevel rebuilds level lev+1 from the flags of level lev. When
// initFromProblem is true (initial construction), new patches are filled
// analytically instead of by prolongation.
func (h *Hierarchy) regridLevel(lev int, initFromProblem bool) {
	props := h.localProposals(lev)
	all := h.gatherProposals(props)

	// Canonical ordering gives every rank the same patch IDs.
	sort.Slice(all, func(a, b int) bool {
		x, y := all[a], all[b]
		if x.parent != y.parent {
			return x.parent < y.parent
		}
		if x.r.J0 != y.r.J0 {
			return x.r.J0 < y.r.J0
		}
		if x.r.I0 != y.r.I0 {
			return x.r.I0 < y.r.I0
		}
		if x.r.J1 != y.r.J1 {
			return x.r.J1 < y.r.J1
		}
		return x.r.I1 < y.r.I1
	})

	ownerOf := map[int]int{}
	for _, m := range h.Level(lev) {
		ownerOf[m.ID] = m.Owner
	}
	newMetas := make([]PatchMeta, 0, len(all))
	for _, pr := range all {
		newMetas = append(newMetas, PatchMeta{
			ID:     h.nextID,
			Level:  lev + 1,
			Rect:   pr.r,
			Owner:  ownerOf[pr.parent],
			Parent: pr.parent,
		})
		h.nextID++
	}

	oldMetas := h.Level(lev + 1)
	me := h.Rank()
	for _, m := range newMetas {
		if m.Owner != me {
			continue
		}
		b := h.newPatchBlock(m, initFromProblem)
		if !initFromProblem {
			h.ProlongInterior(m, b)
			// Preserve existing fine data where the new patch overlaps old
			// ones (always rank-local: old and new children of one
			// level-lev footprint share its owner).
			for _, om := range oldMetas {
				if reg, ok := m.Rect.Intersect(om.Rect); ok {
					h.copyInterior(h.blocks[om.ID], om, b, m, reg)
				}
			}
		}
		h.blocks[m.ID] = b
	}
	for _, om := range oldMetas {
		delete(h.blocks, om.ID)
	}
	h.levels[lev+1] = newMetas
}

// copyInterior copies region reg (global fine coordinates) from old patch
// data into a new block.
func (h *Hierarchy) copyInterior(src *euler.Block, sm PatchMeta, dst *euler.Block, dm PatchMeta, reg Rect) {
	if src == nil {
		panic("amr: copyInterior: old patch not local")
	}
	for v := 0; v < euler.NVars; v++ {
		for j := reg.J0; j < reg.J1; j++ {
			for i := reg.I0; i < reg.I1; i++ {
				dst.U[v][dst.Idx(i-dm.Rect.I0, j-dm.Rect.J0)] =
					src.U[v][src.Idx(i-sm.Rect.I0, j-sm.Rect.J0)]
			}
		}
	}
	if h.proc() != nil {
		h.proc().Advance(float64(8*euler.NVars*reg.Area()) / packCopyBytesPerUS)
	}
}

// localProposals flags and clusters every local patch of the level,
// returning child rectangles in fine coordinates.
func (h *Hierarchy) localProposals(lev int) []proposal {
	var out []proposal
	for _, p := range h.LocalPatches(lev) {
		flags := h.flagPatch(p)
		for _, r := range clusterFlags(flags, p.Meta.Rect, h.cfg) {
			out = append(out, proposal{parent: p.Meta.ID, r: r.Refine(h.cfg.Ratio)})
		}
	}
	return out
}

// flagPatch marks interior cells whose refinement indicator exceeds the
// threshold, then buffers the flags by BufferCells (clipped to the patch).
func (h *Hierarchy) flagPatch(p PatchRef) []bool {
	nx, ny := p.Meta.Rect.Nx(), p.Meta.Rect.Ny()
	flags := make([]bool, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if euler.GradientIndicator(p.Block, i, j) > h.cfg.FlagThreshold {
				flags[j*nx+i] = true
			}
		}
	}
	if h.proc() != nil {
		h.proc().ChargeFlops(12 * nx * ny)
	}
	if h.cfg.BufferCells <= 0 {
		return flags
	}
	buffered := make([]bool, nx*ny)
	bc := h.cfg.BufferCells
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if !flags[j*nx+i] {
				continue
			}
			for dj := -bc; dj <= bc; dj++ {
				for di := -bc; di <= bc; di++ {
					ii, jj := i+di, j+dj
					if ii >= 0 && ii < nx && jj >= 0 && jj < ny {
						buffered[jj*nx+ii] = true
					}
				}
			}
		}
	}
	return buffered
}

// clusterFlags groups flagged cells into rectangles by recursive bisection
// (a simplified Berger–Rigoutsos): accept a bounding box once it is
// efficient enough or small enough, otherwise split its longest axis.
// Rectangles are returned in the level's global (coarse) coordinates.
func clusterFlags(flags []bool, patch Rect, cfg Config) []Rect {
	nx := patch.Nx()
	var out []Rect
	var recurse func(r Rect)
	recurse = func(r Rect) {
		// Bounding box of flags within r (local coordinates).
		bb := Rect{I0: r.I1, J0: r.J1, I1: r.I0, J1: r.J0}
		count := 0
		for j := r.J0; j < r.J1; j++ {
			for i := r.I0; i < r.I1; i++ {
				if flags[j*nx+i] {
					count++
					bb.I0 = minInt(bb.I0, i)
					bb.J0 = minInt(bb.J0, j)
					bb.I1 = maxInt(bb.I1, i+1)
					bb.J1 = maxInt(bb.J1, j+1)
				}
			}
		}
		if count == 0 {
			return
		}
		eff := float64(count) / float64(bb.Area())
		if eff >= cfg.FillRatio || (bb.Nx() <= cfg.MinPatchSide && bb.Ny() <= cfg.MinPatchSide) {
			out = append(out, NewRect(patch.I0+bb.I0, patch.J0+bb.J0, bb.Nx(), bb.Ny()))
			return
		}
		if bb.Nx() >= bb.Ny() && bb.Nx() > cfg.MinPatchSide {
			mid := bb.I0 + bb.Nx()/2
			recurse(Rect{I0: bb.I0, J0: bb.J0, I1: mid, J1: bb.J1})
			recurse(Rect{I0: mid, J0: bb.J0, I1: bb.I1, J1: bb.J1})
			return
		}
		if bb.Ny() > cfg.MinPatchSide {
			mid := bb.J0 + bb.Ny()/2
			recurse(Rect{I0: bb.I0, J0: bb.J0, I1: bb.I1, J1: mid})
			recurse(Rect{I0: bb.I0, J0: mid, I1: bb.I1, J1: bb.J1})
			return
		}
		out = append(out, NewRect(patch.I0+bb.I0, patch.J0+bb.J0, bb.Nx(), bb.Ny()))
	}
	recurse(Rect{I0: 0, J0: 0, I1: nx, J1: patch.Ny()})
	return out
}

// gatherProposals exchanges regrid proposals across ranks (Allgather of a
// self-describing serialization) and returns the union.
func (h *Hierarchy) gatherProposals(local []proposal) []proposal {
	if h.r == nil {
		return local
	}
	ser := make([]float64, 0, 1+5*len(local))
	ser = append(ser, float64(len(local)))
	for _, p := range local {
		ser = append(ser, float64(p.parent),
			float64(p.r.I0), float64(p.r.J0), float64(p.r.I1), float64(p.r.J1))
	}
	all := h.r.Comm.Allgather(ser)
	var out []proposal
	k := 0
	for rank := 0; rank < h.Size(); rank++ {
		n := int(all[k])
		k++
		for i := 0; i < n; i++ {
			out = append(out, proposal{
				parent: int(all[k]),
				r:      Rect{I0: int(all[k+1]), J0: int(all[k+2]), I1: int(all[k+3]), J1: int(all[k+4])},
			})
			k += 5
		}
	}
	return out
}
