package amr

import (
	"sort"

	"repro/internal/euler"
	"repro/internal/mpi"
)

// LoadBalance redistributes level-0 patches — each moving together with its
// whole subtree of refined descendants — so that per-rank cell counts even
// out. The assignment is computed deterministically from the replicated
// metadata on every rank (no coordination messages); only the patch data
// migrates, via nonblocking sends drained with MPI_Waitsome (the paper's
// second AMRMesh source of Waitsome time: "load-balancing and domain
// (re-)decomposition"). It returns the number of patches that moved.
func (h *Hierarchy) LoadBalance() int {
	p := h.Size()
	if p <= 1 {
		return 0
	}

	// Subtree root (level-0 ancestor) of every patch.
	rootOf := map[int]int{}
	for _, m := range h.Level(0) {
		rootOf[m.ID] = m.ID
	}
	for lev := 1; lev < len(h.levels); lev++ {
		for _, m := range h.Level(lev) {
			rootOf[m.ID] = rootOf[m.Parent]
		}
	}

	// Subtree loads.
	load := map[int]int{}
	for _, metas := range h.levels {
		for _, m := range metas {
			load[rootOf[m.ID]] += m.Rect.Area()
		}
	}

	// Deterministic greedy assignment: heaviest subtree first onto the
	// least-loaded rank.
	roots := make([]int, 0, len(load))
	for id := range load {
		roots = append(roots, id)
	}
	sort.Slice(roots, func(a, b int) bool {
		if load[roots[a]] != load[roots[b]] {
			return load[roots[a]] > load[roots[b]]
		}
		return roots[a] < roots[b]
	})
	rankLoad := make([]int, p)
	assign := map[int]int{}
	for _, id := range roots {
		best := 0
		for r := 1; r < p; r++ {
			if rankLoad[r] < rankLoad[best] {
				best = r
			}
		}
		assign[id] = best
		rankLoad[best] += load[id]
	}

	// Plan migrations.
	me := h.Rank()
	type move struct {
		meta     PatchMeta
		newOwner int
	}
	var outgoing, incoming []move
	moved := 0
	for lev := range h.levels {
		for i, m := range h.levels[lev] {
			newOwner := assign[rootOf[m.ID]]
			if newOwner == m.Owner {
				continue
			}
			moved++
			if m.Owner == me {
				outgoing = append(outgoing, move{meta: m, newOwner: newOwner})
			}
			if newOwner == me {
				incoming = append(incoming, move{meta: m, newOwner: newOwner})
			}
			h.levels[lev][i].Owner = newOwner
		}
	}
	if moved == 0 || h.r == nil {
		return moved
	}

	comm := h.r.Comm
	// Post receives for incoming patch data (full blocks, ghosts included).
	var reqs []*mpi.Request
	newBlocks := make([]*euler.Block, len(incoming))
	bufs := make([][]float64, len(incoming))
	for i, mv := range incoming {
		b := euler.NewBlock(h.proc(), mv.meta.Rect.Nx(), mv.meta.Rect.Ny(), h.cfg.Ghost)
		newBlocks[i] = b
		bufs[i] = make([]float64, euler.NVars*len(b.U[0]))
		reqs = append(reqs, comm.Irecv(mv.meta.Owner, tagLB+mv.meta.ID, bufs[i]))
	}
	// Ship outgoing blocks.
	for _, mv := range outgoing {
		b := h.blocks[mv.meta.ID]
		buf := make([]float64, 0, euler.NVars*len(b.U[0]))
		for v := 0; v < euler.NVars; v++ {
			buf = append(buf, b.U[v]...)
		}
		if h.proc() != nil {
			h.proc().Advance(float64(8*len(buf)) / packCopyBytesPerUS)
		}
		comm.Isend(mv.newOwner, tagLB+mv.meta.ID, buf)
		delete(h.blocks, mv.meta.ID)
	}
	// Drain with Waitsome, then land the data.
	for {
		if comm.Waitsome(reqs) == nil {
			break
		}
	}
	for i, mv := range incoming {
		b := newBlocks[i]
		n := len(b.U[0])
		for v := 0; v < euler.NVars; v++ {
			copy(b.U[v], bufs[i][v*n:(v+1)*n])
		}
		if h.proc() != nil {
			h.proc().Advance(float64(8*len(bufs[i])) / packCopyBytesPerUS)
		}
		h.blocks[mv.meta.ID] = b
	}
	return moved
}
