package amr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/euler"
	"repro/internal/mpi"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(2, 3, 4, 5)
	if r.Nx() != 4 || r.Ny() != 5 || r.Area() != 20 || r.Empty() {
		t.Errorf("rect %v: nx=%d ny=%d area=%d", r, r.Nx(), r.Ny(), r.Area())
	}
	if (Rect{I0: 1, I1: 1, J0: 0, J1: 5}).Empty() != true {
		t.Error("zero-width rect should be empty")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 4, 4)
	got, ok := a.Intersect(b)
	if !ok || got != NewRect(2, 2, 2, 2) {
		t.Errorf("intersect = %v,%v", got, ok)
	}
	c := NewRect(10, 10, 2, 2)
	if _, ok := a.Intersect(c); ok {
		t.Error("disjoint rects intersected")
	}
	// Touching edges do not overlap (half-open).
	d := NewRect(4, 0, 2, 4)
	if _, ok := a.Intersect(d); ok {
		t.Error("edge-adjacent rects should not intersect")
	}
}

func TestRectRefineCoarsen(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	f := r.Refine(2)
	if f != NewRect(2, 4, 6, 8) {
		t.Errorf("refine = %v", f)
	}
	if c := f.Coarsen(2); c != r {
		t.Errorf("coarsen(refine) = %v, want %v", c, r)
	}
	// Coarsen rounds outward.
	odd := Rect{I0: 1, J0: 1, I1: 3, J1: 3}
	if c := odd.Coarsen(2); c != (Rect{I0: 0, J0: 0, I1: 2, J1: 2}) {
		t.Errorf("outward coarsen = %v", c)
	}
}

func TestRectContainsExpand(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	if !a.Contains(NewRect(2, 2, 3, 3)) {
		t.Error("contains failed")
	}
	if a.Contains(NewRect(8, 8, 4, 4)) {
		t.Error("contains should fail for overflow")
	}
	e := NewRect(2, 2, 2, 2).Expand(1)
	if e != NewRect(1, 1, 4, 4) {
		t.Errorf("expand = %v", e)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int }{
		{4, 2, 2, 2}, {5, 2, 2, 3}, {-1, 2, -1, 0}, {-4, 2, -2, -2}, {-5, 2, -3, -2},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := ceilDiv(c.a, c.b); got != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

// Property: intersect is commutative and contained in both operands.
func TestPropertyIntersect(t *testing.T) {
	f := func(a0, b0, c0, d0, a1, b1, c1, d1 uint8) bool {
		r1 := NewRect(int(a0%20), int(b0%20), int(c0%10)+1, int(d0%10)+1)
		r2 := NewRect(int(a1%20), int(b1%20), int(c1%10)+1, int(d1%10)+1)
		x, ok1 := r1.Intersect(r2)
		y, ok2 := r2.Intersect(r1)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return x == y && r1.Contains(x) && r2.Contains(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// smallConfig is a fast serial hierarchy for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.BaseNx, cfg.BaseNy = 32, 16
	cfg.TileNx, cfg.TileNy = 16, 8
	return cfg
}

func TestHierarchyConstructionSerial(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 3 {
		t.Fatalf("levels = %d, want 3", h.NumLevels())
	}
	// Level 0 tiles the base grid exactly.
	area := 0
	for _, m := range h.Level(0) {
		area += m.Rect.Area()
	}
	if area != 32*16 {
		t.Errorf("level-0 area = %d, want 512", area)
	}
	// Initial refinement found the shock and interface.
	if len(h.Level(1)) == 0 {
		t.Fatal("no level-1 patches; flagging failed")
	}
	if len(h.Level(2)) == 0 {
		t.Fatal("no level-2 patches")
	}
	// Every fine patch is nested in its parent.
	for lev := 1; lev < 3; lev++ {
		for _, m := range h.Level(lev) {
			q, ok := h.parentOf(m)
			if !ok {
				t.Fatalf("patch %d at level %d has no parent", m.ID, lev)
			}
			if !q.Rect.Refine(2).Contains(m.Rect) {
				t.Errorf("patch %d %v not nested in parent %v", m.ID, m.Rect, q.Rect.Refine(2))
			}
			if q.Owner != m.Owner {
				t.Errorf("patch %d owner %d != parent owner %d (subtree affinity)", m.ID, m.Owner, q.Owner)
			}
		}
	}
	// Serial: every patch local.
	for lev := 0; lev < 3; lev++ {
		for _, m := range h.Level(lev) {
			if h.Block(m.ID) == nil {
				t.Fatalf("serial hierarchy missing block for patch %d", m.ID)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.BaseNx = 0 },
		func(c *Config) { c.TileNx = 5 }, // does not divide 32
		func(c *Config) { c.MaxLevels = 0 },
		func(c *Config) { c.Ratio = 1 },
		func(c *Config) { c.Ghost = 1 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestSameLevelGhostExchangeSerial(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Stamp each level-0 patch's interior with its ID, then exchange and
	// verify ghosts carry the neighbor's stamp.
	for _, p := range h.LocalPatches(0) {
		for j := 0; j < p.Meta.Rect.Ny(); j++ {
			for i := 0; i < p.Meta.Rect.Nx(); i++ {
				u := p.Block.At(i, j)
				u[euler.IRhoY] = float64(p.Meta.ID + 100)
				p.Block.Set(i, j, u)
			}
		}
	}
	h.GhostExchange(0)
	left := h.LocalPatches(0)[0]  // tile at (0,0)
	right := h.LocalPatches(0)[1] // tile at (16,0)
	if left.Meta.Rect.I1 != right.Meta.Rect.I0 {
		t.Fatalf("unexpected tile layout: %v then %v", left.Meta.Rect, right.Meta.Rect)
	}
	// left's right ghost must hold right's stamp.
	got := left.Block.At(left.Meta.Rect.Nx(), 2)[euler.IRhoY]
	if got != float64(right.Meta.ID+100) {
		t.Errorf("ghost = %g, want %g", got, float64(right.Meta.ID+100))
	}
	// right's left ghost must hold left's stamp.
	got = right.Block.At(-1, 2)[euler.IRhoY]
	if got != float64(left.Meta.ID+100) {
		t.Errorf("ghost = %g, want %g", got, float64(left.Meta.ID+100))
	}
}

func TestClusterFlagsSingleBox(t *testing.T) {
	cfg := DefaultConfig()
	patch := NewRect(10, 20, 16, 8)
	flags := make([]bool, 16*8)
	for j := 2; j < 5; j++ {
		for i := 3; i < 7; i++ {
			flags[j*16+i] = true
		}
	}
	rects := clusterFlags(flags, patch, cfg)
	if len(rects) != 1 {
		t.Fatalf("clusters = %d, want 1", len(rects))
	}
	want := NewRect(13, 22, 4, 3)
	if rects[0] != want {
		t.Errorf("cluster = %v, want %v", rects[0], want)
	}
}

func TestClusterFlagsEmpty(t *testing.T) {
	if rects := clusterFlags(make([]bool, 64), NewRect(0, 0, 8, 8), DefaultConfig()); len(rects) != 0 {
		t.Errorf("empty flags clustered to %v", rects)
	}
}

func TestClusterFlagsSplitsSparse(t *testing.T) {
	cfg := DefaultConfig()
	// Two far-apart clusters in one patch must yield two rectangles.
	flags := make([]bool, 32*8)
	flags[2*32+2] = true
	flags[2*32+3] = true
	flags[6*32+28] = true
	flags[6*32+29] = true
	rects := clusterFlags(flags, NewRect(0, 0, 32, 8), cfg)
	if len(rects) < 2 {
		t.Fatalf("sparse flags produced %d cluster(s): %v", len(rects), rects)
	}
	total := 0
	for _, r := range rects {
		total += r.Area()
	}
	if total > 64 {
		t.Errorf("clustering wasteful: %d cells for 4 flags", total)
	}
	// All flagged cells covered.
	for _, cell := range [][2]int{{2, 2}, {3, 2}, {28, 6}, {29, 6}} {
		covered := false
		for _, r := range rects {
			if cell[0] >= r.I0 && cell[0] < r.I1 && cell[1] >= r.J0 && cell[1] < r.J1 {
				covered = true
			}
		}
		if !covered {
			t.Errorf("flagged cell %v not covered by %v", cell, rects)
		}
	}
}

func TestProlongRestrictRoundTrip(t *testing.T) {
	// Conservative pair: restricting a prolonged field returns the coarse
	// original exactly.
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fines := h.LocalPatches(1)
	if len(fines) == 0 {
		t.Fatal("no fine patches")
	}
	p := fines[0]
	q, _ := h.parentOf(p.Meta)
	parent := h.Block(q.ID)
	// Snapshot parent's covered region.
	cr := p.Meta.Rect.Coarsen(2)
	before := map[[2]int]euler.Cons{}
	for cj := cr.J0; cj < cr.J1; cj++ {
		for ci := cr.I0; ci < cr.I1; ci++ {
			before[[2]int{ci, cj}] = parent.At(ci-q.Rect.I0, cj-q.Rect.J0)
		}
	}
	h.ProlongInterior(p.Meta, p.Block)
	h.Restrict(1)
	for cj := cr.J0; cj < cr.J1; cj++ {
		for ci := cr.I0; ci < cr.I1; ci++ {
			after := parent.At(ci-q.Rect.I0, cj-q.Rect.J0)
			want := before[[2]int{ci, cj}]
			for v := 0; v < euler.NVars; v++ {
				if math.Abs(after[v]-want[v]) > 1e-11*(1+math.Abs(want[v])) {
					t.Fatalf("cell (%d,%d) var %d: %g != %g (not conservative)",
						ci, cj, v, after[v], want[v])
				}
			}
		}
	}
}

func TestRegridPreservesOverlapData(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tag level-1 data with a recognizable value in IRhoY, then regrid
	// without changing level-0 data: overlapping new patches must keep it.
	marker := 7777.0
	markedCells := map[[2]int]bool{}
	for _, p := range h.LocalPatches(1) {
		for j := 0; j < p.Meta.Rect.Ny(); j++ {
			for i := 0; i < p.Meta.Rect.Nx(); i++ {
				u := p.Block.At(i, j)
				u[euler.IRhoY] = marker
				p.Block.Set(i, j, u)
				markedCells[[2]int{p.Meta.Rect.I0 + i, p.Meta.Rect.J0 + j}] = true
			}
		}
	}
	h.Regrid()
	found, preserved := 0, 0
	for _, p := range h.LocalPatches(1) {
		for j := 0; j < p.Meta.Rect.Ny(); j++ {
			for i := 0; i < p.Meta.Rect.Nx(); i++ {
				if markedCells[[2]int{p.Meta.Rect.I0 + i, p.Meta.Rect.J0 + j}] {
					found++
					if p.Block.At(i, j)[euler.IRhoY] == marker {
						preserved++
					}
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("regrid dropped all previously refined cells")
	}
	if preserved != found {
		t.Errorf("only %d of %d overlapping cells preserved", preserved, found)
	}
}

func TestRegridKeepsNesting(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Regrid()
	for lev := 1; lev < h.NumLevels(); lev++ {
		dom := h.levelDomain(lev)
		for _, m := range h.Level(lev) {
			q, ok := h.parentOf(m)
			if !ok || !q.Rect.Refine(2).Contains(m.Rect) {
				t.Errorf("level %d patch %v not nested (parent ok=%v)", lev, m.Rect, ok)
			}
			if !dom.Contains(m.Rect) {
				t.Errorf("patch %v outside domain %v", m.Rect, dom)
			}
		}
	}
}

// parallelImage builds a P-rank hierarchy, optionally load-balances, and
// returns the composed density image.
func parallelImage(t *testing.T, procs int, balance bool) []float64 {
	t.Helper()
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = procs
	wcfg.Net.NoiseSigma = 0 // noise affects clocks only, but keep it quiet
	w := mpi.NewWorld(wcfg)
	var img []float64
	err := w.Run(func(r *mpi.Rank) {
		h, err := New(smallConfig(), r)
		if err != nil {
			panic(err)
		}
		if balance {
			h.LoadBalance()
			h.GhostExchange(0)
		}
		_, _, im := h.DensityImage()
		if r.Rank() == 0 {
			img = im
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestParallelHierarchyMatchesSerial(t *testing.T) {
	hs, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, serialImg := hs.DensityImage()
	parImg := parallelImage(t, 3, false)
	if len(serialImg) != len(parImg) {
		t.Fatalf("image sizes differ: %d vs %d", len(serialImg), len(parImg))
	}
	for k := range serialImg {
		if serialImg[k] != parImg[k] {
			t.Fatalf("pixel %d differs: serial %g vs parallel %g", k, serialImg[k], parImg[k])
		}
	}
}

func TestParallelDistributesPatches(t *testing.T) {
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = 3
	w := mpi.NewWorld(wcfg)
	err := w.Run(func(r *mpi.Rank) {
		h, err := New(smallConfig(), r)
		if err != nil {
			panic(err)
		}
		// Metadata says multiple owners exist.
		owners := map[int]bool{}
		for _, m := range h.Level(0) {
			owners[m.Owner] = true
		}
		if len(owners) < 2 {
			panic("level 0 not distributed")
		}
		// Blocks exist exactly for local patches.
		for lev := 0; lev < h.NumLevels(); lev++ {
			for _, m := range h.Level(lev) {
				has := h.Block(m.ID) != nil
				if has != (m.Owner == r.Rank()) {
					panic("block locality does not match ownership")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadBalanceReducesImbalanceAndPreservesData(t *testing.T) {
	// A deliberately skewed initial distribution: New assigns tiles
	// contiguously, so the refined region (around shock+interface) piles
	// onto some ranks; LoadBalance must not change the composed field.
	unbalanced := parallelImage(t, 3, false)
	balanced := parallelImage(t, 3, true)
	for k := range unbalanced {
		if unbalanced[k] != balanced[k] {
			t.Fatalf("LoadBalance changed the field at pixel %d: %g vs %g",
				k, unbalanced[k], balanced[k])
		}
	}
}

func TestLoadBalanceImbalanceMetric(t *testing.T) {
	wcfg := mpi.DefaultConfig()
	wcfg.Procs = 3
	w := mpi.NewWorld(wcfg)
	err := w.Run(func(r *mpi.Rank) {
		h, err := New(smallConfig(), r)
		if err != nil {
			panic(err)
		}
		before := h.Imbalance()
		h.LoadBalance()
		after := h.Imbalance()
		if after > before+1e-9 {
			panic("LoadBalance increased imbalance")
		}
		// Every rank must agree on the metric (replicated metadata).
		agreed := r.Comm.Allreduce(mpi.OpMax, []float64{after})
		if agreed[0] != after {
			panic("ranks disagree on imbalance")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTotalMassPositive(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := h.TotalMass()
	if m <= 0 {
		t.Fatalf("total mass = %g", m)
	}
	// Mass should roughly equal the analytic integral: air region ~1*A1 +
	// freon ~3*A2 + post-shock ~1.86*A3 over a 4x1 domain.
	if m < 4 || m > 12 {
		t.Errorf("total mass %g outside plausible range", m)
	}
}

func TestStatsAndLocalCells(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if len(st) != 3 {
		t.Fatalf("stats levels = %d", len(st))
	}
	if st[0].Cells != 512 {
		t.Errorf("level-0 cells = %d, want 512", st[0].Cells)
	}
	total := 0
	for _, s := range st {
		total += s.Cells
	}
	if h.LocalCells() != total {
		t.Errorf("serial LocalCells %d != total %d", h.LocalCells(), total)
	}
	if h.Imbalance() != 1 {
		t.Errorf("serial imbalance = %g, want 1", h.Imbalance())
	}
}

func TestDensityImageCompositesFinest(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, img := h.DensityImage()
	if nx != 32*4 || ny != 16*4 {
		t.Fatalf("image %dx%d, want 128x64", nx, ny)
	}
	// All pixels positive (density), and both phases present.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range img {
		if v <= 0 {
			t.Fatal("non-positive density pixel")
		}
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if minV > 1.01 || maxV < 2.5 {
		t.Errorf("image range [%g,%g] does not span air..Freon", minV, maxV)
	}
}
