// Package amr implements the Structured Adaptive Mesh Refinement substrate
// of the paper's case study (Berger–Oliger/Berger–Colella style, in the
// patch-tree variant of Quirk): a hierarchy of rectangular patches over a
// Cartesian base grid, refined by a constant factor per level, with
// flag-and-cluster regridding, ghost-cell exchange over MPI, conservative
// prolongation/restriction between levels, and workload-driven patch
// redistribution (the paper's "load-balancing and domain re-decomposition",
// both of which drain their nonblocking receives with MPI_Waitsome).
//
// Patch metadata is replicated on every rank (SCMD); patch data lives only
// on the owning rank. Fine patches are nested inside a single parent patch
// and inherit its owner, so inter-level transfers are rank-local and all
// message passing happens in same-level ghost exchanges and load-balance
// migrations — matching where the paper's profile finds its MPI time.
package amr

import "fmt"

// Rect is a half-open index rectangle [I0,I1) x [J0,J1) in the global cell
// coordinates of one refinement level.
type Rect struct {
	I0, J0, I1, J1 int
}

// NewRect builds a rectangle from origin and extents.
func NewRect(i0, j0, nx, ny int) Rect {
	return Rect{I0: i0, J0: j0, I1: i0 + nx, J1: j0 + ny}
}

// Nx returns the width in cells.
func (r Rect) Nx() int { return r.I1 - r.I0 }

// Ny returns the height in cells.
func (r Rect) Ny() int { return r.J1 - r.J0 }

// Area returns the cell count.
func (r Rect) Area() int { return r.Nx() * r.Ny() }

// Empty reports whether the rectangle contains no cells.
func (r Rect) Empty() bool { return r.I1 <= r.I0 || r.J1 <= r.J0 }

// Intersect returns the overlap of two rectangles and whether it is
// non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	out := Rect{
		I0: maxInt(r.I0, o.I0), J0: maxInt(r.J0, o.J0),
		I1: minInt(r.I1, o.I1), J1: minInt(r.J1, o.J1),
	}
	return out, !out.Empty()
}

// Expand grows the rectangle by g cells on every side.
func (r Rect) Expand(g int) Rect {
	return Rect{I0: r.I0 - g, J0: r.J0 - g, I1: r.I1 + g, J1: r.J1 + g}
}

// Refine maps the rectangle to the next finer level.
func (r Rect) Refine(ratio int) Rect {
	return Rect{I0: r.I0 * ratio, J0: r.J0 * ratio, I1: r.I1 * ratio, J1: r.J1 * ratio}
}

// Coarsen maps the rectangle to the next coarser level, rounding outward so
// the result covers the original.
func (r Rect) Coarsen(ratio int) Rect {
	return Rect{
		I0: floorDiv(r.I0, ratio), J0: floorDiv(r.J0, ratio),
		I1: ceilDiv(r.I1, ratio), J1: ceilDiv(r.J1, ratio),
	}
}

// Contains reports whether o lies entirely inside r.
func (r Rect) Contains(o Rect) bool {
	return o.I0 >= r.I0 && o.J0 >= r.J0 && o.I1 <= r.I1 && o.J1 <= r.J1
}

// String renders the rectangle for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.I0, r.I1, r.J0, r.J1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv is integer division rounding toward positive infinity.
func ceilDiv(a, b int) int { return -floorDiv(-a, b) }
