package amr

import (
	"testing"

	"repro/internal/euler"
)

// refinedCentroidX returns the cell-weighted x-centroid of a level's
// patches, in level-0 cell units.
func refinedCentroidX(h *Hierarchy, lev int) float64 {
	f := 1.0
	for l := 0; l < lev; l++ {
		f *= float64(h.cfg.Ratio)
	}
	var wsum, xsum float64
	for _, m := range h.Level(lev) {
		cx := float64(m.Rect.I0+m.Rect.I1) / 2 / f
		a := float64(m.Rect.Area())
		xsum += cx * a
		wsum += a
	}
	if wsum == 0 {
		return 0
	}
	return xsum / wsum
}

// TestRegridTracksMovingShock advances the solution until the shock has
// moved, regrids, and verifies the refined region followed it — the
// feature-tracking behaviour SAMR exists for (and the reason the paper's
// Fig. 9 clusters split after the regrid).
func TestRegridTracksMovingShock(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxLevels = 2
	h, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := refinedCentroidX(h, 1)
	if before == 0 {
		t.Fatal("no initial refinement")
	}

	// Advance level 0 long enough for the shock to cross cells, keeping
	// level 1 data irrelevant (we only flag from level 0 here).
	dx, dy := h.CellSize(0)
	for s := 0; s < 30; s++ {
		speed := 0.0
		for _, p := range h.LocalPatches(0) {
			if v := p.Block.MaxWaveSpeed(); v > speed {
				speed = v
			}
		}
		dt := euler.CFLTimeStep(0.4, dx, dy, speed)
		stepHierarchyLevel0(h, dt)
	}
	h.Regrid()
	after := refinedCentroidX(h, 1)
	if after <= before {
		t.Errorf("refined region did not follow the shock: centroid %g -> %g", before, after)
	}
	// Nesting still holds after the tracked regrid.
	for _, m := range h.Level(1) {
		q, ok := h.parentOf(m)
		if !ok || !q.Rect.Refine(cfg.Ratio).Contains(m.Rect) {
			t.Fatalf("patch %v lost nesting after regrid", m.Rect)
		}
	}
}

// TestRepeatedRegridsStayBounded guards against runaway refinement: the
// flagged area must stay a modest fraction of the domain across regrids.
func TestRepeatedRegridsStayBounded(t *testing.T) {
	h, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	domain := h.levelDomain(1).Area()
	for round := 0; round < 4; round++ {
		h.Regrid()
		cells := 0
		for _, m := range h.Level(1) {
			cells += m.Rect.Area()
		}
		if cells > domain*3/4 {
			t.Fatalf("round %d: level-1 coverage %d of %d cells — runaway refinement", round, cells, domain)
		}
	}
}
