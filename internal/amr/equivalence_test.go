package amr

import (
	"math"
	"testing"

	"repro/internal/euler"
)

// stepHierarchyLevel0 advances every level-0 patch of a serial hierarchy by
// one forward-Euler step, mirroring what RK2's first stage does per patch.
func stepHierarchyLevel0(h *Hierarchy, dt float64) {
	dx, dy := h.CellSize(0)
	h.GhostExchange(0)
	for _, p := range h.LocalPatches(0) {
		b := p.Block
		qLX := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.X)
		qRX := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.X)
		euler.States(nil, b, euler.X, qLX, qRX)
		fx := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.X)
		euler.GodunovFlux(nil, qLX, qRX, fx)
		qLY := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.Y)
		qRY := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.Y)
		euler.States(nil, b, euler.Y, qLY, qRY)
		fy := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.Y)
		euler.GodunovFlux(nil, qLY, qRY, fy)
		euler.ApplyFluxes(nil, b, b, fx, fy, dt, dx, dy)
	}
}

// stepMonolithic advances a single big block covering the same domain.
func stepMonolithic(b *euler.Block, dt, dx, dy float64) {
	b.FillBoundary(true, true, true, true)
	qLX := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.X)
	qRX := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.X)
	euler.States(nil, b, euler.X, qLX, qRX)
	fx := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.X)
	euler.GodunovFlux(nil, qLX, qRX, fx)
	qLY := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.Y)
	qRY := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.Y)
	euler.States(nil, b, euler.Y, qLY, qRY)
	fy := euler.NewEdgeField(nil, b.Nx, b.Ny, euler.Y)
	euler.GodunovFlux(nil, qLY, qRY, fy)
	euler.ApplyFluxes(nil, b, b, fx, fy, dt, dx, dy)
}

// TestDecomposedMatchesMonolithic is the strongest ghost-exchange
// correctness check: a single-level hierarchy tiled into 8 patches must
// evolve bit-identically to one monolithic block covering the domain,
// because the ghost fill supplies exactly the interior values a contiguous
// array would see.
func TestDecomposedMatchesMonolithic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BaseNx, cfg.BaseNy = 64, 16
	cfg.TileNx, cfg.TileNy = 16, 8
	cfg.MaxLevels = 1 // no refinement: pure domain decomposition
	h, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	mono := euler.NewBlock(nil, cfg.BaseNx, cfg.BaseNy, 2)
	dx, dy := h.CellSize(0)
	cfg.Problem.InitBlock(mono, 0, 0, dx, dy)

	const steps = 6
	for s := 0; s < steps; s++ {
		speed := math.Max(h.MaxWaveSpeed(), mono.MaxWaveSpeed())
		dt := euler.CFLTimeStep(0.4, dx, dy, speed)
		stepHierarchyLevel0(h, dt)
		stepMonolithic(mono, dt, dx, dy)
	}

	worst := 0.0
	for _, p := range h.LocalPatches(0) {
		for j := 0; j < p.Meta.Rect.Ny(); j++ {
			for i := 0; i < p.Meta.Rect.Nx(); i++ {
				up := p.Block.At(i, j)
				um := mono.At(p.Meta.Rect.I0+i, p.Meta.Rect.J0+j)
				for v := 0; v < euler.NVars; v++ {
					if d := math.Abs(up[v] - um[v]); d > worst {
						worst = d
					}
				}
			}
		}
	}
	if worst > 1e-12 {
		t.Errorf("decomposed and monolithic solutions diverge: max abs diff %g", worst)
	}
}

// TestDecomposedMatchesMonolithicAfterManySteps pushes the comparison
// through shock passage across patch boundaries.
func TestDecomposedMatchesMonolithicAfterManySteps(t *testing.T) {
	if testing.Short() {
		t.Skip("long equivalence run")
	}
	cfg := DefaultConfig()
	cfg.BaseNx, cfg.BaseNy = 48, 12
	cfg.TileNx, cfg.TileNy = 12, 6
	cfg.MaxLevels = 1
	h, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	mono := euler.NewBlock(nil, cfg.BaseNx, cfg.BaseNy, 2)
	dx, dy := h.CellSize(0)
	cfg.Problem.InitBlock(mono, 0, 0, dx, dy)
	for s := 0; s < 40; s++ {
		speed := mono.MaxWaveSpeed()
		dt := euler.CFLTimeStep(0.4, dx, dy, speed)
		stepHierarchyLevel0(h, dt)
		stepMonolithic(mono, dt, dx, dy)
	}
	for _, p := range h.LocalPatches(0) {
		for j := 0; j < p.Meta.Rect.Ny(); j++ {
			for i := 0; i < p.Meta.Rect.Nx(); i++ {
				up := p.Block.At(i, j)
				um := mono.At(p.Meta.Rect.I0+i, p.Meta.Rect.J0+j)
				for v := 0; v < euler.NVars; v++ {
					if math.Abs(up[v]-um[v]) > 1e-10 {
						t.Fatalf("divergence at patch %d cell (%d,%d) var %d: %g vs %g",
							p.Meta.ID, i, j, v, up[v], um[v])
					}
				}
			}
		}
	}
}
