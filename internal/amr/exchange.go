package amr

import (
	"fmt"
	"sort"

	"repro/internal/euler"
	"repro/internal/mpi"
)

// Message tag bases: ghost exchanges are tagged by level, load-balance
// migrations by patch ID.
const (
	tagGhost = 1_000
	tagLB    = 1_000_000
)

// packCopyBytesPerUS is the local pack/unpack memory bandwidth charged to
// the virtual clock for message assembly.
const packCopyBytesPerUS = 1500.0

// copyRegion is one ghost-fill transfer: cells of region R (global level
// coordinates) copied from the interior of patch srcID into the ghost zone
// of patch dstID.
type copyRegion struct {
	srcID, dstID int
	r            Rect
}

// GhostExchange fills the ghost cells of every local patch at the level:
// first by prolongation from the (local) parent patches, then by same-level
// copies — rank-local directly, remote via nonblocking MPI drained with
// Waitsome — and finally by physical boundary conditions. This is one of
// the paper's two AMRMesh methods that account for its MPI_Waitsome time.
func (h *Hierarchy) GhostExchange(level int) {
	metas := h.Level(level)
	if len(metas) == 0 {
		return
	}
	me := h.Rank()

	// 1. Coarse-fine ghost fill from the local parent.
	if level > 0 {
		for _, p := range h.LocalPatches(level) {
			h.prolongGhosts(p)
		}
	}

	// 2. Same-level exchange. Region lists are derived from replicated
	// metadata in a canonical order, so sender and receiver pack and
	// unpack identically without headers.
	var local []copyRegion
	sendTo := map[int][]copyRegion{}
	recvFrom := map[int][]copyRegion{}
	for _, d := range metas {
		gz := d.Rect.Expand(h.cfg.Ghost)
		for _, s := range metas {
			if s.ID == d.ID {
				continue
			}
			reg, ok := gz.Intersect(s.Rect)
			if !ok {
				continue
			}
			cr := copyRegion{srcID: s.ID, dstID: d.ID, r: reg}
			switch {
			case s.Owner == me && d.Owner == me:
				local = append(local, cr)
			case s.Owner == me:
				sendTo[d.Owner] = append(sendTo[d.Owner], cr)
			case d.Owner == me:
				recvFrom[s.Owner] = append(recvFrom[s.Owner], cr)
			}
		}
	}
	for _, cr := range local {
		h.copyLocalRegion(cr)
	}
	if h.r != nil && (len(sendTo) > 0 || len(recvFrom) > 0) {
		h.exchangeRemote(level, sendTo, recvFrom)
	}

	// 3. Physical boundary conditions override at the domain edge.
	dom := h.levelDomain(level)
	for _, p := range h.LocalPatches(level) {
		p.Block.FillBoundary(
			p.Meta.Rect.I0 == dom.I0, p.Meta.Rect.I1 == dom.I1,
			p.Meta.Rect.J0 == dom.J0, p.Meta.Rect.J1 == dom.J1)
	}
}

// exchangeRemote runs the nonblocking send/receive cycle for one level.
func (h *Hierarchy) exchangeRemote(level int, sendTo, recvFrom map[int][]copyRegion) {
	comm := h.r.Comm
	tag := tagGhost + level

	recvPeers := sortedPeers(recvFrom)
	var reqs []*mpi.Request
	recvBufs := make(map[int][]float64, len(recvPeers))
	for _, peer := range recvPeers {
		buf := make([]float64, regionsSize(recvFrom[peer]))
		recvBufs[peer] = buf
		reqs = append(reqs, comm.Irecv(peer, tag, buf))
	}
	for _, peer := range sortedPeers(sendTo) {
		buf := h.packRegions(sendTo[peer])
		comm.Isend(peer, tag, buf)
	}
	for {
		if comm.Waitsome(reqs) == nil {
			break
		}
	}
	for _, peer := range recvPeers {
		h.unpackRegions(recvFrom[peer], recvBufs[peer])
	}
}

// sortedPeers returns the map's keys in ascending order.
func sortedPeers(m map[int][]copyRegion) []int {
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// regionsSize returns the number of float64 values a region list packs to.
func regionsSize(regions []copyRegion) int {
	n := 0
	for _, cr := range regions {
		n += euler.NVars * cr.r.Area()
	}
	return n
}

// packRegions serializes the region list from local source patches, in list
// order, var-major then row-major per region.
func (h *Hierarchy) packRegions(regions []copyRegion) []float64 {
	buf := make([]float64, 0, regionsSize(regions))
	for _, cr := range regions {
		src, sm, ok := h.blockAndMeta(cr.srcID)
		if !ok {
			panic(fmt.Sprintf("amr: pack: source patch %d not local", cr.srcID))
		}
		for v := 0; v < euler.NVars; v++ {
			for j := cr.r.J0; j < cr.r.J1; j++ {
				for i := cr.r.I0; i < cr.r.I1; i++ {
					buf = append(buf, src.U[v][src.Idx(i-sm.Rect.I0, j-sm.Rect.J0)])
				}
			}
		}
	}
	if h.proc() != nil {
		h.proc().Advance(float64(8*len(buf)) / packCopyBytesPerUS)
	}
	return buf
}

// unpackRegions writes a received buffer into the ghost zones of the local
// destination patches, mirroring packRegions' order.
func (h *Hierarchy) unpackRegions(regions []copyRegion, buf []float64) {
	k := 0
	for _, cr := range regions {
		dst, dm, ok := h.blockAndMeta(cr.dstID)
		if !ok {
			panic(fmt.Sprintf("amr: unpack: destination patch %d not local", cr.dstID))
		}
		for v := 0; v < euler.NVars; v++ {
			for j := cr.r.J0; j < cr.r.J1; j++ {
				for i := cr.r.I0; i < cr.r.I1; i++ {
					dst.U[v][dst.Idx(i-dm.Rect.I0, j-dm.Rect.J0)] = buf[k]
					k++
				}
			}
		}
	}
	if k != len(buf) {
		panic(fmt.Sprintf("amr: unpack consumed %d of %d values", k, len(buf)))
	}
	if h.proc() != nil {
		h.proc().Advance(float64(8*len(buf)) / packCopyBytesPerUS)
	}
}

// copyLocalRegion performs a rank-local ghost fill.
func (h *Hierarchy) copyLocalRegion(cr copyRegion) {
	src, sm, ok := h.blockAndMeta(cr.srcID)
	if !ok {
		panic(fmt.Sprintf("amr: local copy: source %d missing", cr.srcID))
	}
	dst, dm, ok := h.blockAndMeta(cr.dstID)
	if !ok {
		panic(fmt.Sprintf("amr: local copy: destination %d missing", cr.dstID))
	}
	for v := 0; v < euler.NVars; v++ {
		for j := cr.r.J0; j < cr.r.J1; j++ {
			for i := cr.r.I0; i < cr.r.I1; i++ {
				dst.U[v][dst.Idx(i-dm.Rect.I0, j-dm.Rect.J0)] =
					src.U[v][src.Idx(i-sm.Rect.I0, j-sm.Rect.J0)]
			}
		}
	}
	if h.proc() != nil {
		h.proc().Advance(float64(8*euler.NVars*cr.r.Area()) / packCopyBytesPerUS)
	}
}

// blockAndMeta resolves a local patch's block and metadata.
func (h *Hierarchy) blockAndMeta(id int) (*euler.Block, PatchMeta, bool) {
	b, ok := h.blocks[id]
	if !ok {
		return nil, PatchMeta{}, false
	}
	for _, metas := range h.levels {
		for _, m := range metas {
			if m.ID == id {
				return b, m, true
			}
		}
	}
	return nil, PatchMeta{}, false
}
