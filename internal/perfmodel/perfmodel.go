// Package perfmodel builds the paper's per-component performance models
// (Section 5, Eqs. 1–2) by regression on Mastermind records: polynomial
// least-squares fits ("T = -963 + 0.315 Q") and power-law fits on log-log
// axes ("T = exp(1.19 log(Q) - 3.68)"), plus grouped mean/standard-
// deviation statistics over repeated parameter values and fit-quality
// metrics for model selection.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Model predicts a time (microseconds) from one input parameter (the
// paper's array size Q).
type Model interface {
	Predict(q float64) float64
	// String renders the model like the paper's equations.
	String() string
	// DOF returns the number of fitted parameters (for AIC).
	DOF() int
}

// Poly is a polynomial model c0 + c1 q + c2 q^2 + ...
type Poly struct {
	Coeffs []float64
}

// Predict implements Model.
func (p Poly) Predict(q float64) float64 {
	s := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		s = s*q + p.Coeffs[i]
	}
	return s
}

// DOF implements Model.
func (p Poly) DOF() int { return len(p.Coeffs) }

// String renders e.g. "-963 + 0.315*Q + 1.2e-05*Q^2".
func (p Poly) String() string {
	var parts []string
	for i, c := range p.Coeffs {
		switch {
		case i == 0:
			parts = append(parts, fmt.Sprintf("%.4g", c))
		case i == 1:
			parts = append(parts, fmt.Sprintf("%+.4g*Q", c))
		default:
			parts = append(parts, fmt.Sprintf("%+.4g*Q^%d", c, i))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " ")
}

// PowerLaw is T = exp(B*log(q) + LnA) = A * q^B.
type PowerLaw struct {
	LnA, B float64
}

// Predict implements Model.
func (p PowerLaw) Predict(q float64) float64 {
	if q <= 0 {
		return 0
	}
	return math.Exp(p.B*math.Log(q) + p.LnA)
}

// DOF implements Model.
func (p PowerLaw) DOF() int { return 2 }

// String renders the paper's Eq. 1 form: "exp(1.19*log(Q) - 3.68)".
func (p PowerLaw) String() string {
	return fmt.Sprintf("exp(%.4g*log(Q) %+.4g)", p.B, p.LnA)
}

// solveLinear solves A x = b by Gaussian elimination with partial pivoting.
// A is row-major n x n and is destroyed.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return nil, fmt.Errorf("perfmodel: singular normal equations at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// PolyFit fits a degree-d polynomial by least squares. The abscissa is
// internally rescaled to [0,1] before forming the normal equations, which
// keeps high-degree fits over large Q numerically sane.
func PolyFit(x, y []float64, degree int) (Poly, error) {
	if len(x) != len(y) {
		return Poly{}, fmt.Errorf("perfmodel: x/y length mismatch %d/%d", len(x), len(y))
	}
	n := degree + 1
	if len(x) < n {
		return Poly{}, fmt.Errorf("perfmodel: %d points cannot fit degree %d", len(x), degree)
	}
	scale := 0.0
	for _, v := range x {
		if math.Abs(v) > scale {
			scale = math.Abs(v)
		}
	}
	if scale == 0 {
		scale = 1
	}
	// Normal equations in the scaled variable t = x/scale.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	b := make([]float64, n)
	for k := range x {
		t := x[k] / scale
		pows := make([]float64, n)
		p := 1.0
		for i := 0; i < n; i++ {
			pows[i] = p
			p *= t
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] += pows[i] * pows[j]
			}
			b[i] += pows[i] * y[k]
		}
	}
	ct, err := solveLinear(a, b)
	if err != nil {
		return Poly{}, err
	}
	// Unscale: c_i = ct_i / scale^i.
	coeffs := make([]float64, n)
	s := 1.0
	for i := 0; i < n; i++ {
		coeffs[i] = ct[i] / s
		s *= scale
	}
	return Poly{Coeffs: coeffs}, nil
}

// LinFit is a convenience degree-1 PolyFit (the paper's Godunov/EFM form).
func LinFit(x, y []float64) (Poly, error) { return PolyFit(x, y, 1) }

// PowerLawFit fits T = A q^B by linear regression in log-log space,
// ignoring non-positive samples (which have no logarithm).
func PowerLawFit(x, y []float64) (PowerLaw, error) {
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	if len(lx) < 2 {
		return PowerLaw{}, fmt.Errorf("perfmodel: %d positive points cannot fit a power law", len(lx))
	}
	lin, err := PolyFit(lx, ly, 1)
	if err != nil {
		return PowerLaw{}, err
	}
	return PowerLaw{LnA: lin.Coeffs[0], B: lin.Coeffs[1]}, nil
}

// R2 returns the coefficient of determination of the model on (x, y).
func R2(m Model, x, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - m.Predict(x[i])
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// RMSE returns the root-mean-square prediction error.
func RMSE(m Model, x, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	var ss float64
	for i := range y {
		d := y[i] - m.Predict(x[i])
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(y)))
}

// AIC returns the Akaike information criterion (Gaussian residuals),
// lower is better.
func AIC(m Model, x, y []float64) float64 {
	n := float64(len(y))
	if n == 0 {
		return math.Inf(1)
	}
	rss := 0.0
	for i := range y {
		d := y[i] - m.Predict(x[i])
		rss += d * d
	}
	if rss <= 0 {
		rss = 1e-300
	}
	return n*math.Log(rss/n) + 2*float64(m.DOF())
}

// SelectBest returns the candidate with the lowest AIC on (x, y).
func SelectBest(cands []Model, x, y []float64) Model {
	var best Model
	bestAIC := math.Inf(1)
	for _, m := range cands {
		if a := AIC(m, x, y); a < bestAIC {
			best, bestAIC = m, a
		}
	}
	return best
}

// Coefficients names and extracts a fitted model's parameters, the input
// to cross-scenario trend analysis (refitting each coefficient against a
// machine parameter such as cache size — the paper's Section 6
// "coefficients parameterized by a cache model"). PowerLaw yields
// ("lnA", "B") and Poly ("c0", "c1", ...); unknown model kinds yield
// nothing.
func Coefficients(m Model) (names []string, values []float64) {
	switch v := m.(type) {
	case PowerLaw:
		return []string{"lnA", "B"}, []float64{v.LnA, v.B}
	case Poly:
		names = make([]string, len(v.Coeffs))
		values = make([]float64, len(v.Coeffs))
		for i, c := range v.Coeffs {
			names[i] = fmt.Sprintf("c%d", i)
			values[i] = c
		}
		return names, values
	}
	return nil, nil
}

// GroupStat is the aggregate of all samples sharing one parameter value.
type GroupStat struct {
	Q      float64
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// GroupStats aggregates (x, y) samples by exact x value and returns the
// per-group statistics sorted by x — the "average over both modes plus a
// standard deviation" analysis the paper applies before fitting (Figs 6-8).
func GroupStats(x, y []float64) []GroupStat {
	type acc struct {
		n                  int
		sum, sumSq, mn, mx float64
	}
	groups := map[float64]*acc{}
	for i := range x {
		g := groups[x[i]]
		if g == nil {
			g = &acc{mn: y[i], mx: y[i]}
			groups[x[i]] = g
		}
		g.n++
		g.sum += y[i]
		g.sumSq += y[i] * y[i]
		if y[i] < g.mn {
			g.mn = y[i]
		}
		if y[i] > g.mx {
			g.mx = y[i]
		}
	}
	out := make([]GroupStat, 0, len(groups))
	for q, g := range groups {
		n := float64(g.n)
		mean := g.sum / n
		v := g.sumSq/n - mean*mean
		if v < 0 {
			v = 0
		}
		out = append(out, GroupStat{
			Q: q, N: g.n, Mean: mean, StdDev: math.Sqrt(v), Min: g.mn, Max: g.mx,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Q < out[j].Q })
	return out
}

// MeanSeries extracts (Q, mean) from grouped stats.
func MeanSeries(stats []GroupStat) (q, mean []float64) {
	for _, s := range stats {
		q = append(q, s.Q)
		mean = append(mean, s.Mean)
	}
	return q, mean
}

// StdDevSeries extracts (Q, sigma) from grouped stats.
func StdDevSeries(stats []GroupStat) (q, sd []float64) {
	for _, s := range stats {
		q = append(q, s.Q)
		sd = append(sd, s.StdDev)
	}
	return q, sd
}
