package perfmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPolyPredictHorner(t *testing.T) {
	p := Poly{Coeffs: []float64{1, 2, 3}} // 1 + 2q + 3q^2
	if got := p.Predict(2); got != 17 {
		t.Errorf("Predict(2) = %g, want 17", got)
	}
	if got := p.Predict(0); got != 1 {
		t.Errorf("Predict(0) = %g, want 1", got)
	}
}

func TestPolyFitRecoversExactPolynomial(t *testing.T) {
	truth := Poly{Coeffs: []float64{-963, 0.315}}
	var x, y []float64
	for q := 1000.0; q <= 150000; q += 7000 {
		x = append(x, q)
		y = append(y, truth.Predict(q))
	}
	got, err := PolyFit(x, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Coeffs[0]-(-963)) > 1e-6 || math.Abs(got.Coeffs[1]-0.315) > 1e-9 {
		t.Errorf("fit = %v, want [-963 0.315]", got.Coeffs)
	}
	if r2 := R2(got, x, y); r2 < 0.999999 {
		t.Errorf("R2 = %g on exact data", r2)
	}
}

func TestPolyFitQuarticOnLargeQ(t *testing.T) {
	// The paper's Eq. 2 EFM sigma is a quartic over Q up to 1.5e5: the
	// scaled normal equations must stay stable there.
	truth := Poly{Coeffs: []float64{66.7, -0.015, 9.24e-9, -1.12e-13, 3.85e-19}}
	var x, y []float64
	for q := 2000.0; q <= 150000; q += 2000 {
		x = append(x, q)
		y = append(y, truth.Predict(q))
	}
	got, err := PolyFit(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Coeffs {
		rel := math.Abs(got.Coeffs[i]-truth.Coeffs[i]) / (math.Abs(truth.Coeffs[i]) + 1e-300)
		if rel > 1e-4 {
			t.Errorf("coeff %d: %g vs %g (rel %g)", i, got.Coeffs[i], truth.Coeffs[i], rel)
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 1); err == nil {
		t.Error("underdetermined fit accepted")
	}
}

func TestPowerLawFitRecoversEq1(t *testing.T) {
	// The paper's States model: T = exp(1.19 log Q - 3.68).
	truth := PowerLaw{LnA: -3.68, B: 1.19}
	var x, y []float64
	for q := 500.0; q <= 150000; q *= 1.4 {
		x = append(x, q)
		y = append(y, truth.Predict(q))
	}
	got, err := PowerLawFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.B-1.19) > 1e-9 || math.Abs(got.LnA-(-3.68)) > 1e-9 {
		t.Errorf("fit = %+v, want B=1.19 LnA=-3.68", got)
	}
	if !strings.Contains(got.String(), "log(Q)") {
		t.Errorf("String() = %q", got.String())
	}
}

func TestPowerLawFitSkipsNonPositive(t *testing.T) {
	x := []float64{-5, 0, 10, 100, 1000}
	y := []float64{3, 7, 10, 100, 1000} // y = x on the positive part
	got, err := PowerLawFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.B-1) > 1e-9 {
		t.Errorf("B = %g, want 1", got.B)
	}
	if _, err := PowerLawFit([]float64{-1, -2}, []float64{1, 1}); err == nil {
		t.Error("all-negative x accepted")
	}
}

func TestPowerLawPredictNonPositive(t *testing.T) {
	p := PowerLaw{LnA: 0, B: 1}
	if p.Predict(0) != 0 || p.Predict(-3) != 0 {
		t.Error("non-positive q should predict 0")
	}
}

func TestR2AndRMSEOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	truth := Poly{Coeffs: []float64{10, 2}}
	var x, y []float64
	for q := 0.0; q < 100; q++ {
		x = append(x, q)
		y = append(y, truth.Predict(q)+rng.NormFloat64())
	}
	fit, err := LinFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := R2(fit, x, y); r2 < 0.99 {
		t.Errorf("R2 = %g on lightly noisy line", r2)
	}
	if rmse := RMSE(fit, x, y); rmse > 2 {
		t.Errorf("RMSE = %g, want ~1", rmse)
	}
}

func TestR2DegenerateCases(t *testing.T) {
	m := Poly{Coeffs: []float64{5}}
	if got := R2(m, []float64{1, 2}, []float64{5, 5}); got != 1 {
		t.Errorf("perfect fit of constant data: R2 = %g", got)
	}
	if got := R2(m, nil, nil); got != 0 {
		t.Errorf("empty R2 = %g", got)
	}
	bad := Poly{Coeffs: []float64{7}}
	if got := R2(bad, []float64{1, 2}, []float64{5, 5}); got != 0 {
		t.Errorf("wrong constant on constant data: R2 = %g", got)
	}
}

func TestSelectBestPrefersParsimony(t *testing.T) {
	// Linear data: AIC must prefer the linear model over the quartic.
	var x, y []float64
	rng := rand.New(rand.NewSource(9))
	for q := 1.0; q <= 60; q++ {
		x = append(x, q)
		y = append(y, 3+2*q+0.01*rng.NormFloat64())
	}
	lin, _ := PolyFit(x, y, 1)
	quart, _ := PolyFit(x, y, 4)
	best := SelectBest([]Model{quart, lin}, x, y)
	if _, ok := best.(Poly); !ok || best.DOF() != 2 {
		t.Errorf("SelectBest chose DOF=%d, want the linear model", best.DOF())
	}
}

func TestCoefficients(t *testing.T) {
	t.Parallel()
	names, vals := Coefficients(PowerLaw{LnA: -3.68, B: 1.19})
	if len(names) != 2 || names[0] != "lnA" || names[1] != "B" || vals[0] != -3.68 || vals[1] != 1.19 {
		t.Errorf("power law coefficients: %v %v", names, vals)
	}
	names, vals = Coefficients(Poly{Coeffs: []float64{-963, 0.315}})
	if len(names) != 2 || names[0] != "c0" || names[1] != "c1" || vals[0] != -963 || vals[1] != 0.315 {
		t.Errorf("poly coefficients: %v %v", names, vals)
	}
	if names, vals = Coefficients(nil); names != nil || vals != nil {
		t.Errorf("nil model yielded coefficients: %v %v", names, vals)
	}
}

func TestGroupStats(t *testing.T) {
	x := []float64{100, 100, 100, 200, 200}
	y := []float64{10, 20, 30, 5, 15}
	gs := GroupStats(x, y)
	if len(gs) != 2 {
		t.Fatalf("groups = %d, want 2", len(gs))
	}
	if gs[0].Q != 100 || gs[0].N != 3 || gs[0].Mean != 20 {
		t.Errorf("group 0 = %+v", gs[0])
	}
	wantSD := math.Sqrt(200.0 / 3.0)
	if math.Abs(gs[0].StdDev-wantSD) > 1e-12 {
		t.Errorf("group 0 sd = %g, want %g", gs[0].StdDev, wantSD)
	}
	if gs[0].Min != 10 || gs[0].Max != 30 {
		t.Errorf("group 0 min/max = %g/%g", gs[0].Min, gs[0].Max)
	}
	if gs[1].Q != 200 || gs[1].Mean != 10 {
		t.Errorf("group 1 = %+v", gs[1])
	}
	q, mean := MeanSeries(gs)
	if len(q) != 2 || q[0] != 100 || mean[1] != 10 {
		t.Errorf("mean series = %v/%v", q, mean)
	}
	q2, sd := StdDevSeries(gs)
	if len(q2) != 2 || sd[1] <= 0 {
		t.Errorf("sd series = %v/%v", q2, sd)
	}
}

// Property: PolyFit on exactly-polynomial data reproduces predictions.
func TestPropertyPolyFitInterpolates(t *testing.T) {
	f := func(c0, c1 int8, seed int64) bool {
		truth := Poly{Coeffs: []float64{float64(c0), float64(c1) / 16}}
		rng := rand.New(rand.NewSource(seed))
		var x, y []float64
		for i := 0; i < 20; i++ {
			q := 1 + rng.Float64()*1e5
			x = append(x, q)
			y = append(y, truth.Predict(q))
		}
		fit, err := LinFit(x, y)
		if err != nil {
			return false
		}
		for i := range x {
			want := truth.Predict(x[i])
			if math.Abs(fit.Predict(x[i])-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: R2 of a least-squares linear fit is within [0,1] on any data
// where y varies.
func TestPropertyR2Bounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var x, y []float64
		for i := 0; i < 30; i++ {
			x = append(x, rng.Float64()*100)
			y = append(y, rng.Float64()*100)
		}
		fit, err := LinFit(x, y)
		if err != nil {
			return false
		}
		r2 := R2(fit, x, y)
		return r2 >= -1e-9 && r2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestModelStrings(t *testing.T) {
	p := Poly{Coeffs: []float64{-963, 0.315}}
	if s := p.String(); !strings.Contains(s, "-963") || !strings.Contains(s, "*Q") {
		t.Errorf("Poly.String() = %q", s)
	}
	if (Poly{}).String() != "0" {
		t.Error("empty poly should render 0")
	}
	q := Poly{Coeffs: []float64{1, 2, 3}}
	if s := q.String(); !strings.Contains(s, "Q^2") {
		t.Errorf("quadratic string = %q", s)
	}
}
