package perfmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMultiLinFitRecoversExactPlane(t *testing.T) {
	// y = 5 + 0.3*Q + 0.02*DCM
	var rows [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		q := rng.Float64() * 1e5
		dcm := rng.Float64() * 1e6
		rows = append(rows, []float64{q, dcm})
		y = append(y, 5+0.3*q+0.02*dcm)
	}
	m, err := MultiLinFit([]string{"Q", "DCM"}, rows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 0.3, 0.02}
	for i, w := range want {
		if math.Abs(m.Coeffs[i]-w) > 1e-6*(1+math.Abs(w)) {
			t.Errorf("coeff %d = %g, want %g", i, m.Coeffs[i], w)
		}
	}
	if r2 := R2Multi(m, rows, y); r2 < 0.999999 {
		t.Errorf("R2 = %g on exact data", r2)
	}
	s := m.String()
	if !strings.Contains(s, "*Q") || !strings.Contains(s, "*DCM") {
		t.Errorf("String() = %q", s)
	}
}

func TestMultiLinFitErrors(t *testing.T) {
	if _, err := MultiLinFit([]string{"a"}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MultiLinFit([]string{"a", "b"}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined fit accepted")
	}
	if _, err := MultiLinFit([]string{"a", "b"}, [][]float64{{1}, {2}, {3}}, []float64{1, 2, 3}); err == nil {
		t.Error("short feature vector accepted")
	}
}

func TestMultiLinBeatsUnivariateOnBimodalData(t *testing.T) {
	// Construct the States situation: the same Q costs differently in the
	// two modes, but the mode is fully explained by the miss count.
	var rows [][]float64
	var qOnly, y []float64
	for q := 1000.0; q <= 64000; q *= 2 {
		for rep := 0; rep < 4; rep++ {
			// sequential: few misses; strided: many
			seqMiss := q / 8
			strMiss := q * 0.9
			rows = append(rows, []float64{q, seqMiss})
			qOnly = append(qOnly, q)
			y = append(y, 0.02*q+0.05*seqMiss)
			rows = append(rows, []float64{q, strMiss})
			qOnly = append(qOnly, q)
			y = append(y, 0.02*q+0.05*strMiss)
		}
	}
	ml, err := MultiLinFit([]string{"Q", "DCM"}, rows, y)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := LinFit(qOnly, y)
	if err != nil {
		t.Fatal(err)
	}
	r2Multi := R2Multi(ml, rows, y)
	r2Uni := R2(uni, qOnly, y)
	if r2Multi < 0.999999 {
		t.Errorf("cache-aware R2 = %g, want ~1 (DCM explains the mode)", r2Multi)
	}
	if r2Uni >= r2Multi {
		t.Errorf("univariate R2 %g should be below multivariate %g", r2Uni, r2Multi)
	}
}

func TestR2MultiDegenerate(t *testing.T) {
	m := MultiLin{Names: []string{"x"}, Coeffs: []float64{1, 0}}
	if got := R2Multi(m, nil, nil); got != 0 {
		t.Errorf("empty R2Multi = %g", got)
	}
	rows := [][]float64{{1}, {2}}
	if got := R2Multi(MultiLin{Names: []string{"x"}, Coeffs: []float64{5, 0}}, rows, []float64{5, 5}); got != 1 {
		t.Errorf("perfect constant R2Multi = %g", got)
	}
}

// Property: MultiLinFit with a single feature agrees with LinFit.
func TestPropertyMultiLinMatchesLinFit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rows [][]float64
		var x, y []float64
		for i := 0; i < 20; i++ {
			q := rng.Float64() * 1000
			v := 3 + 2*q + rng.NormFloat64()
			rows = append(rows, []float64{q})
			x = append(x, q)
			y = append(y, v)
		}
		ml, err1 := MultiLinFit([]string{"x"}, rows, y)
		lin, err2 := LinFit(x, y)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ml.Coeffs[0]-lin.Coeffs[0]) < 1e-6 &&
			math.Abs(ml.Coeffs[1]-lin.Coeffs[1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
