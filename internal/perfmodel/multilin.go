package perfmodel

import (
	"fmt"
	"math"
	"strings"
)

// MultiLin is a multiple linear model y = c0 + c1*x1 + ... + ck*xk over
// named features — the paper's Section 6 outlook ("the coefficients should
// be parameterized by processor speed and a cache model... the cache
// information collected during these tests will be employed") realized by
// regressing time against both the array size and the recorded cache-miss
// counts (PAPI_L2_DCM deltas).
type MultiLin struct {
	// Names labels the features (without the intercept).
	Names []string
	// Coeffs holds the intercept followed by one coefficient per feature.
	Coeffs []float64
}

// PredictVec evaluates the model on a feature vector (len == len(Names)).
func (m MultiLin) PredictVec(x []float64) float64 {
	s := m.Coeffs[0]
	for i, v := range x {
		s += m.Coeffs[i+1] * v
	}
	return s
}

// String renders e.g. "12.3 + 0.05*Q + 0.21*DCM".
func (m MultiLin) String() string {
	parts := []string{fmt.Sprintf("%.4g", m.Coeffs[0])}
	for i, n := range m.Names {
		parts = append(parts, fmt.Sprintf("%+.4g*%s", m.Coeffs[i+1], n))
	}
	return strings.Join(parts, " ")
}

// MultiLinFit fits y = c0 + Σ ci*xi by least squares. rows holds one
// feature vector per sample. Features are internally rescaled for
// conditioning.
func MultiLinFit(names []string, rows [][]float64, y []float64) (MultiLin, error) {
	k := len(names)
	n := k + 1
	if len(rows) != len(y) {
		return MultiLin{}, fmt.Errorf("perfmodel: rows/y length mismatch %d/%d", len(rows), len(y))
	}
	if len(rows) < n {
		return MultiLin{}, fmt.Errorf("perfmodel: %d samples cannot fit %d coefficients", len(rows), n)
	}
	scale := make([]float64, k)
	for _, r := range rows {
		if len(r) != k {
			return MultiLin{}, fmt.Errorf("perfmodel: feature vector length %d, want %d", len(r), k)
		}
		for j, v := range r {
			if math.Abs(v) > scale[j] {
				scale[j] = math.Abs(v)
			}
		}
	}
	for j := range scale {
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	b := make([]float64, n)
	feat := make([]float64, n)
	for s, r := range rows {
		feat[0] = 1
		for j, v := range r {
			feat[j+1] = v / scale[j]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] += feat[i] * feat[j]
			}
			b[i] += feat[i] * y[s]
		}
	}
	ct, err := solveLinear(a, b)
	if err != nil {
		return MultiLin{}, err
	}
	coeffs := make([]float64, n)
	coeffs[0] = ct[0]
	for j := 0; j < k; j++ {
		coeffs[j+1] = ct[j+1] / scale[j]
	}
	nm := make([]string, k)
	copy(nm, names)
	return MultiLin{Names: nm, Coeffs: coeffs}, nil
}

// R2Multi returns the coefficient of determination of a multivariate model.
func R2Multi(m MultiLin, rows [][]float64, y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - m.PredictVec(rows[i])
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
