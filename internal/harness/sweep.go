package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/cca"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/euler"
	"repro/internal/mpi"
	"repro/internal/results"
)

// Kernel names the three measured components of Section 5.
type Kernel string

// The measured kernels and their paper proxy labels.
const (
	KernelStates  Kernel = "states"
	KernelGodunov Kernel = "godunov"
	KernelEFM     Kernel = "efm"
)

// proxyName returns the paper's proxy instance label for the kernel.
func (k Kernel) proxyName() string {
	switch k {
	case KernelStates:
		return "sc_proxy"
	case KernelGodunov:
		return "g_proxy"
	default:
		return "efm_proxy"
	}
}

// RecordName returns the monitored method name the sweep produces.
func (k Kernel) RecordName() string { return k.proxyName() + "::compute()" }

// SweepConfig drives the Fig. 4–8 measurement campaign: the kernel is
// invoked through its proxy on arrays of increasing size, alternating the
// sequential (X-derivative) and strided (Y-derivative) modes the way the
// application does.
type SweepConfig struct {
	Kernel Kernel
	// Sizes lists the array sizes Q (cells per patch).
	Sizes []int
	// Reps is the number of invocations per size per mode.
	Reps int
	// World is the simulated machine (3 ranks give the per-processor
	// scatter of Fig. 4).
	World mpi.WorldConfig
}

// DefaultSweep returns the calibrated sweep for a kernel: log-spaced sizes
// up to the paper's ~150k-element arrays.
func DefaultSweep(k Kernel) SweepConfig {
	return SweepConfig{
		Kernel: k,
		Sizes:  LogSizes(1_000, 150_000, 12),
		Reps:   4,
		World:  mpi.DefaultConfig(),
	}
}

// LogSizes returns n log-spaced integer sizes in [lo, hi].
func LogSizes(lo, hi, n int) []int {
	if n < 2 {
		return []int{lo}
	}
	out := make([]int, 0, n)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(n-1))
	v := float64(lo)
	for i := 0; i < n; i++ {
		out = append(out, int(v+0.5))
		v *= ratio
	}
	return out
}

// SweepPoint is one proxy-recorded invocation.
type SweepPoint struct {
	Rank   int
	Q      int
	Mode   euler.Dir
	WallUS float64
	// Misses is the invocation's PAPI_L2_DCM delta — the cache information
	// the paper's Section 6 wants folded into the model coefficients.
	Misses float64
}

// SweepResult holds the campaign's samples.
type SweepResult struct {
	Config SweepConfig
	Points []SweepPoint
	// Spec is the world's speculation telemetry, zero unless the sweep ran
	// under the optimistic scheduler. It is carried alongside the points
	// (and through gob checkpoints, which tolerate the added field) but
	// deliberately kept out of Rows(): per-invocation rows must stay
	// byte-identical across scheduler modes, while Spec is wall-clock
	// dependent under opt. SpecRow exposes it as one telemetry row.
	Spec mpi.SpecStats
}

// sweepAspects are the patch tallness factors the sweep cycles through:
// SAMR patches "can be of any size or aspect ratio" (paper §5), and the
// aspect decides whether a strided sweep's working set fits the cache —
// the source of the growing Fig. 4/5 scatter at large Q.
var sweepAspects = []float64{0.7, 1.0, 1.4, 2.0}

// blockShape picks a patch shape with the requested cell count and
// tallness a (ny ~ a*sqrt(Q)).
func blockShape(q int, a float64) (nx, ny int) {
	ny = int(a * math.Sqrt(float64(q)))
	if ny < 4 {
		ny = 4
	}
	nx = q / ny
	if nx < 4 {
		nx = 4
	}
	return nx, ny
}

// RunSweep measures the kernel through the full PMM stack (component,
// proxy, Mastermind, TAU) on every rank. Patch contents vary per rank and
// repetition — a randomized shock/interface crossing — so data-dependent
// kernels (GodunovFlux's Newton iterations) show their real variance.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if len(cfg.Sizes) == 0 || cfg.Reps <= 0 {
		return nil, fmt.Errorf("harness: empty sweep")
	}
	w := mpi.NewWorld(cfg.World)
	res := &SweepResult{Config: cfg}
	perRank := make([][]SweepPoint, cfg.World.Procs)

	err := cca.RunSCMD(w, func(f *cca.Framework, r *mpi.Rank) error {
		app := &components.App{Framework: f}
		components.RegisterClasses(f, components.DefaultAppConfig(), app)
		script := sweepScript(cfg.Kernel)
		if err := f.RunScript(script); err != nil {
			return err
		}
		statesPort, fluxPort, err := sweepPorts(f, cfg.Kernel)
		if err != nil {
			return err
		}
		proc := r.Proc
		rng := proc.RNG()
		problem := euler.DefaultShockInterface()
		for _, q := range cfg.Sizes {
			for _, aspect := range sweepAspects {
				nx, ny := blockShape(q, aspect)
				// Buffers are allocated once per shape and reused across
				// repetitions, as the application reuses its patch arrays:
				// only the first invocation sees a cold cache.
				b := euler.NewBlock(proc, nx, ny, 2)
				fields := map[euler.Dir][3]*euler.EdgeField{}
				for _, dir := range []euler.Dir{euler.X, euler.Y} {
					fields[dir] = [3]*euler.EdgeField{
						euler.NewEdgeField(proc, nx, ny, dir),
						euler.NewEdgeField(proc, nx, ny, dir),
						euler.NewEdgeField(proc, nx, ny, dir),
					}
				}
				for rep := 0; rep < cfg.Reps; rep++ {
					// Fresh field contents per repetition: shock and
					// interface at random positions inside the patch.
					p := problem
					p.ShockX = p.Lx * (0.15 + 0.5*rng.Float64())
					p.InterfaceX = p.ShockX + p.Lx*(0.1+0.3*rng.Float64())
					p.InitBlock(b, 0, 0, p.Lx/float64(nx), p.Ly/float64(ny))
					b.FillBoundary(true, true, true, true)
					for _, dir := range []euler.Dir{euler.X, euler.Y} {
						qL, qR, fl := fields[dir][0], fields[dir][1], fields[dir][2]
						if cfg.Kernel == KernelStates {
							statesPort.Compute(b, dir, qL, qR)
							continue
						}
						// Flux kernels consume reconstructed states: build
						// them unmonitored, then invoke the monitored flux
						// proxy.
						euler.States(proc, b, dir, qL, qR)
						fluxPort.Compute(qL, qR, fl)
					}
				}
			}
		}
		// Harvest the proxy record into sweep points.
		rec := app.Core().Record(cfg.Kernel.RecordName())
		if rec == nil {
			return fmt.Errorf("harness: sweep produced no %s record", cfg.Kernel.RecordName())
		}
		dcmIdx := -1
		for i, n := range rec.MetricNames {
			if n == "PAPI_L2_DCM" {
				dcmIdx = i
			}
		}
		var pts []SweepPoint
		for i := range rec.Invocations {
			inv := &rec.Invocations[i]
			qv, _ := inv.Param("Q")
			mode, _ := inv.Param("mode")
			pt := SweepPoint{
				Rank: r.Rank(), Q: int(qv), Mode: euler.Dir(int(mode)), WallUS: inv.WallUS,
			}
			if dcmIdx >= 0 && dcmIdx < len(inv.MetricDeltas) {
				pt.Misses = inv.MetricDeltas[dcmIdx]
			}
			pts = append(pts, pt)
		}
		perRank[r.Rank()] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pts := range perRank {
		res.Points = append(res.Points, pts...)
	}
	res.Spec = w.SpecStats()
	return res, nil
}

// sweepScript assembles just the kernel, its proxy and the PMM components.
func sweepScript(k Kernel) string {
	switch k {
	case KernelStates:
		return `
instantiate TauMeasurement tau0
instantiate Mastermind mastermind0
instantiate States states0
instantiate StatesProxy sc_proxy
connect mastermind0 measurement tau0 measurement
connect sc_proxy target states0 states
connect sc_proxy monitor mastermind0 monitor
`
	case KernelGodunov:
		return `
instantiate TauMeasurement tau0
instantiate Mastermind mastermind0
instantiate GodunovFlux flux0
instantiate FluxProxy g_proxy
connect mastermind0 measurement tau0 measurement
connect g_proxy target flux0 flux
connect g_proxy monitor mastermind0 monitor
`
	default:
		return `
instantiate TauMeasurement tau0
instantiate Mastermind mastermind0
instantiate EFMFlux flux0
instantiate FluxProxy efm_proxy
connect mastermind0 measurement tau0 measurement
connect efm_proxy target flux0 flux
connect efm_proxy monitor mastermind0 monitor
`
	}
}

// sweepPorts resolves the proxy's provides port for direct invocation.
func sweepPorts(f *cca.Framework, k Kernel) (components.StatesPort, components.FluxPort, error) {
	if k == KernelStates {
		p, err := f.LookupProvides("sc_proxy", "states")
		if err != nil {
			return nil, nil, err
		}
		return p.(components.StatesPort), nil, nil
	}
	p, err := f.LookupProvides(k.proxyName(), "flux")
	if err != nil {
		return nil, nil, err
	}
	return nil, p.(components.FluxPort), nil
}

// ModeSeries splits the sweep into per-mode samples.
func (s *SweepResult) ModeSeries(mode euler.Dir) (q, wall []float64) {
	for _, p := range s.Points {
		if p.Mode == mode {
			q = append(q, float64(p.Q))
			wall = append(wall, p.WallUS)
		}
	}
	return q, wall
}

// AllSeries returns every sample regardless of mode (the paper's
// mode-averaged analysis input).
func (s *SweepResult) AllSeries() (q, wall []float64) {
	for _, p := range s.Points {
		q = append(q, float64(p.Q))
		wall = append(wall, p.WallUS)
	}
	return q, wall
}

// RatioPoint is one Fig. 5 sample: strided/sequential mean time at one
// size on one rank.
type RatioPoint struct {
	Rank  int
	Q     int
	Ratio float64
}

// StridedRatios computes the Fig. 5 series.
func (s *SweepResult) StridedRatios() []RatioPoint {
	type key struct{ rank, q int }
	sums := map[key][2]float64{} // [seqSum, strSum]
	counts := map[key][2]int{}
	for _, p := range s.Points {
		k := key{p.Rank, p.Q}
		sv, cv := sums[k], counts[k]
		if p.Mode == euler.X {
			sv[0] += p.WallUS
			cv[0]++
		} else {
			sv[1] += p.WallUS
			cv[1]++
		}
		sums[k], counts[k] = sv, cv
	}
	var out []RatioPoint
	for k, sv := range sums {
		cv := counts[k]
		if cv[0] == 0 || cv[1] == 0 {
			continue
		}
		out = append(out, RatioPoint{
			Rank: k.rank, Q: k.q,
			Ratio: (sv[1] / float64(cv[1])) / (sv[0] / float64(cv[0])),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Q != out[j].Q {
			return out[i].Q < out[j].Q
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Rows returns the sweep's telemetry rows for streaming into a
// results.Sink: one row per recorded invocation, carrying the Fig. 4
// scatter columns plus the invocation's PAPI_L2_DCM delta.
func (s *SweepResult) Rows() []results.Row {
	rows := make([]results.Row, len(s.Points))
	for i, p := range s.Points {
		rows[i] = results.Row{
			results.F("rank", p.Rank), results.F("q", p.Q),
			results.F("mode", p.Mode), results.F("wall_us", p.WallUS),
			results.F("l2_dcm", p.Misses),
		}
	}
	return rows
}

// SpecKey returns the shard key under which a sweep job's speculation
// telemetry row is emitted: a separate key (and therefore CSV shard)
// from the job's per-invocation rows, so the scheduler-equivalence
// byte-comparisons over the measurement shards stay untouched.
func SpecKey(jobKey string) string { return "spec/" + jobKey }

// SpecRow renders the sweep's scheduler telemetry as one results row:
// the speculation counters plus derived conflict/rollback rates — the
// visibility the adaptive-speculation-window work needs in CSV shards.
// Counters are zero under the serial and conservative schedulers.
func (s *SweepResult) SpecRow() results.Row {
	rate := func(n uint64) float64 {
		if s.Spec.SpeculatedOps == 0 {
			return 0
		}
		return float64(n) / float64(s.Spec.SpeculatedOps)
	}
	return results.Row{
		results.F("sched", s.Config.World.Sched.String()),
		results.F("procs", s.Config.World.Procs),
		results.F("published_sends", int64(s.Spec.PublishedSends)),
		results.F("pipelined_ops", int64(s.Spec.PipelinedOps)),
		results.F("speculated_ops", int64(s.Spec.SpeculatedOps)),
		results.F("committed_ops", int64(s.Spec.CommittedOps)),
		results.F("conflicts", int64(s.Spec.Conflicts)),
		results.F("rollbacks", int64(s.Spec.Rollbacks)),
		results.F("window_stalls", int64(s.Spec.WindowStalls)),
		results.F("window_grows", int64(s.Spec.WindowGrows)),
		results.F("window_shrinks", int64(s.Spec.WindowShrinks)),
		results.F("window_min", int64(s.Spec.WindowMin)),
		results.F("window_max", int64(s.Spec.WindowMax)),
		results.F("spec_coll_hits", int64(s.Spec.SpecCollHits)),
		results.F("spec_coll_rollbacks", int64(s.Spec.SpecCollRollbacks)),
		results.F("reexecuted_us", s.Spec.ReexecutedUS),
		results.F("conflict_rate", rate(s.Spec.Conflicts)),
		results.F("rollback_rate", rate(s.Spec.Rollbacks)),
	}
}

// WriteScatterCSV writes the Fig. 4 scatter.
func (s *SweepResult) WriteScatterCSV(w io.Writer) error {
	enc := results.NewCSVEncoder(w)
	if err := enc.Header("rank", "q", "mode", "wall_us"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if err := enc.Encode(results.Row{
			results.F("rank", p.Rank), results.F("q", p.Q),
			results.F("mode", p.Mode), results.F("wall_us", p.WallUS),
		}); err != nil {
			return err
		}
	}
	return nil
}

// WriteRatiosCSV writes the Fig. 5 series.
func (s *SweepResult) WriteRatiosCSV(w io.Writer) error {
	enc := results.NewCSVEncoder(w)
	if err := enc.Header("rank", "q", "strided_over_sequential"); err != nil {
		return err
	}
	for _, p := range s.StridedRatios() {
		if err := enc.Encode(results.Row{
			results.F("rank", p.Rank), results.F("q", p.Q),
			results.F("strided_over_sequential", p.Ratio),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Record re-derives a core.Record-like view for model fitting.
func (s *SweepResult) Record() *core.Record {
	rec := &core.Record{Method: s.Config.Kernel.RecordName()}
	for _, p := range s.Points {
		rec.Invocations = append(rec.Invocations, core.Invocation{
			Params: []core.Param{
				{Name: "Q", Value: float64(p.Q)},
				{Name: "mode", Value: float64(p.Mode)},
			},
			WallUS:    p.WallUS,
			ComputeUS: p.WallUS,
		})
	}
	return rec
}
