package harness

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/assembly"
	"repro/internal/campaign"
	"repro/internal/euler"
	"repro/internal/perfmodel"
)

// fastCaseStudy shrinks the default run for test speed.
func fastCaseStudy() CaseStudyConfig {
	cfg := DefaultCaseStudy()
	cfg.App.Mesh.BaseNx, cfg.App.Mesh.BaseNy = 48, 12
	cfg.App.Mesh.TileNx, cfg.App.Mesh.TileNy = 12, 6
	cfg.App.Driver.Steps = 6
	cfg.App.Driver.RegridInterval = 3
	return cfg
}

// fastSweep shrinks the default sweep for test speed.
func fastSweep(k Kernel) SweepConfig {
	cfg := DefaultSweep(k)
	cfg.Sizes = LogSizes(2_000, 120_000, 5)
	cfg.Reps = 2
	cfg.World.Procs = 2
	return cfg
}

// shared memoizes the fast case study plus the three fast sweeps and their
// fits, produced once per test binary by a single parallel campaign. Every
// run is deterministic for its config, so sharing changes nothing but wall
// time — and the fixture itself exercises the campaign job graph (sweep ->
// model dependencies, case study alongside).
var shared struct {
	once    sync.Once
	caseRes *CaseStudyResult
	sweeps  map[Kernel]*SweepResult
	models  map[Kernel]*ComponentModel
	err     error
}

func sharedFixtures(t *testing.T) (*CaseStudyResult, map[Kernel]*SweepResult, map[Kernel]*ComponentModel) {
	t.Helper()
	shared.once.Do(func() {
		kernels := []Kernel{KernelStates, KernelGodunov, KernelEFM}
		jobs := []campaign.Job{CaseStudyJob("case", fastCaseStudy())}
		for _, k := range kernels {
			jobs = append(jobs,
				SweepJob("sweep/"+string(k), fastSweep(k)),
				ModelJob("model/"+string(k), "sweep/"+string(k), fastSweep(k)))
		}
		res, err := campaign.Run(context.Background(), campaign.Config{}, jobs)
		if err != nil {
			shared.err = err
			return
		}
		shared.caseRes = res[0].Value.(*CaseStudyResult)
		shared.sweeps = map[Kernel]*SweepResult{}
		shared.models = map[Kernel]*ComponentModel{}
		for i, k := range kernels {
			shared.sweeps[k] = res[1+2*i].Value.(*SweepResult)
			shared.models[k] = res[2+2*i].Value.(*ComponentModel)
		}
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	return shared.caseRes, shared.sweeps, shared.models
}

func TestRunCaseStudyProducesAllArtifacts(t *testing.T) {
	t.Parallel()
	res, _, _ := sharedFixtures(t)
	if len(res.Profiles) != 3 {
		t.Errorf("profiles = %d, want 3", len(res.Profiles))
	}
	if res.ImageNx == 0 || len(res.Image) != res.ImageNx*res.ImageNy {
		t.Error("no density image")
	}
	if !strings.Contains(res.AssemblyDOT, "sc_proxy") {
		t.Error("assembly DOT missing proxies")
	}
	if len(res.Edges) == 0 {
		t.Error("no call trace")
	}
	if res.StepsTaken != 6 {
		t.Errorf("steps = %d", res.StepsTaken)
	}
	var sb strings.Builder
	if err := res.WriteProfile(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FUNCTION SUMMARY (mean):", "MPI_Waitsome()", "int main(int, char **)"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("profile missing %q", want)
		}
	}
}

func TestFig3ShapeWaitsomeShare(t *testing.T) {
	t.Parallel()
	// The headline Fig. 3 claim: about a quarter of the time in
	// MPI_Waitsome. Accept a generous band around the paper's 24.3%.
	res, err := RunCaseStudy(DefaultCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	ws := res.TimerShare("MPI_Waitsome()")
	if ws < 0.12 || ws > 0.45 {
		t.Errorf("MPI_Waitsome share = %.1f%%, want ~25%%", ws*100)
	}
	// Godunov must outweigh States (paper: 12.0%% vs 10.9%%).
	if g, s := res.TimerShare("g_proxy::compute()"), res.TimerShare("sc_proxy::compute()"); g <= s {
		t.Errorf("g_proxy share %.1f%% should exceed sc_proxy %.1f%%", g*100, s*100)
	}
	if res.TimerShare("MPI_Allreduce()") > 0.05 {
		t.Errorf("MPI_Allreduce share %.1f%% should be small", res.TimerShare("MPI_Allreduce()")*100)
	}
}

func TestGhostCommSeriesFig9(t *testing.T) {
	t.Parallel()
	res, _, _ := sharedFixtures(t)
	pts := res.GhostCommSeries()
	if len(pts) == 0 {
		t.Fatal("no ghost-update comm samples")
	}
	levels := map[int]bool{}
	ranks := map[int]bool{}
	for _, p := range pts {
		levels[p.Level] = true
		ranks[p.Rank] = true
		if p.MPIUS < 0 || p.MPIUS > p.WallUS+1e-9 {
			t.Fatalf("bad sample %+v", p)
		}
	}
	if len(levels) < 2 || len(ranks) != 3 {
		t.Errorf("levels %v ranks %v", levels, ranks)
	}
	var sb strings.Builder
	if err := res.WriteGhostCommCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "rank,level,invocation,mpi_us,wall_us") {
		t.Error("CSV header wrong")
	}
}

func TestWritePGM(t *testing.T) {
	t.Parallel()
	res, _, _ := sharedFixtures(t)
	var sb strings.Builder
	if err := res.WritePGM(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "P2\n") {
		t.Error("not a PGM")
	}
	if !strings.Contains(out, "255") {
		t.Error("missing maxval")
	}
	empty := &CaseStudyResult{}
	if err := empty.WritePGM(&sb); err == nil {
		t.Error("empty image accepted")
	}
}

func TestLogSizes(t *testing.T) {
	t.Parallel()
	s := LogSizes(1000, 150000, 12)
	if len(s) != 12 || s[0] != 1000 {
		t.Fatalf("sizes = %v", s)
	}
	if s[11] < 149000 || s[11] > 151000 {
		t.Errorf("last size = %d, want ~150000", s[11])
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatal("sizes not increasing")
		}
	}
}

func TestLogSizesEdgeCases(t *testing.T) {
	t.Parallel()
	// n < 2 collapses to the lower bound alone.
	for _, n := range []int{1, 0, -3} {
		if got := LogSizes(5, 10, n); len(got) != 1 || got[0] != 5 {
			t.Errorf("LogSizes(5, 10, %d) = %v, want [5]", n, got)
		}
	}
	// A degenerate range (lo == hi) yields n copies of that size, not NaNs
	// or zeros — the ratio degenerates to 1.
	if got := LogSizes(7, 7, 4); len(got) != 4 {
		t.Fatalf("LogSizes(7, 7, 4) = %v", got)
	} else {
		for _, v := range got {
			if v != 7 {
				t.Fatalf("LogSizes(7, 7, 4) = %v, want all 7s", got)
			}
		}
	}
}

func TestRunSweepStates(t *testing.T) {
	t.Parallel()
	_, sweeps, _ := sharedFixtures(t)
	sw := sweeps[KernelStates]
	if len(sw.Points) == 0 {
		t.Fatal("no sweep points")
	}
	// Both modes sampled at every size.
	qx, _ := sw.ModeSeries(euler.X)
	qy, _ := sw.ModeSeries(euler.Y)
	if len(qx) == 0 || len(qx) != len(qy) {
		t.Errorf("mode sample counts %d/%d", len(qx), len(qy))
	}
	// Fig. 5 shape: ratio near 1 for the smallest sizes, rising for the
	// largest.
	ratios := sw.StridedRatios()
	if len(ratios) == 0 {
		t.Fatal("no ratios")
	}
	smallAvg, largeAvg := 0.0, 0.0
	ns, nl := 0, 0
	for _, r := range ratios {
		if r.Q < 6000 {
			smallAvg += r.Ratio
			ns++
		}
		if r.Q > 60000 {
			largeAvg += r.Ratio
			nl++
		}
	}
	if ns == 0 || nl == 0 {
		t.Fatal("ratio size coverage missing")
	}
	smallAvg /= float64(ns)
	largeAvg /= float64(nl)
	if smallAvg > 1.6 {
		t.Errorf("small-Q ratio = %.2f, want ~1 (cache resident)", smallAvg)
	}
	if largeAvg < 1.8 {
		t.Errorf("large-Q ratio = %.2f, want substantially above 1", largeAvg)
	}
	if largeAvg <= smallAvg {
		t.Error("ratio must grow with Q (Fig. 5)")
	}
}

func TestSweepCSVWriters(t *testing.T) {
	t.Parallel()
	_, sweeps, _ := sharedFixtures(t)
	sw := sweeps[KernelStates]
	var sb strings.Builder
	if err := sw.WriteScatterCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "rank,q,mode,wall_us") {
		t.Error("scatter header wrong")
	}
	sb.Reset()
	if err := sw.WriteRatiosCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "strided_over_sequential") {
		t.Error("ratio header wrong")
	}
}

func TestRunSweepRejectsEmpty(t *testing.T) {
	t.Parallel()
	if _, err := RunSweep(SweepConfig{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestFitModelsShapes(t *testing.T) {
	t.Parallel()
	_, _, models := sharedFixtures(t)

	// States: power-law mean with superlinear exponent.
	cm := models[KernelStates]
	pl, ok := cm.Mean.(perfmodel.PowerLaw)
	if !ok {
		t.Fatalf("States mean model is %T, want PowerLaw", cm.Mean)
	}
	if pl.B < 0.9 || pl.B > 1.6 {
		t.Errorf("States exponent = %.3f, want ~1.2 (paper: 1.19)", pl.B)
	}
	if cm.MeanR2 < 0.5 {
		t.Errorf("States mean R2 = %.3f, too poor", cm.MeanR2)
	}

	// Godunov: linear mean, sigma growing with Q.
	cmG := models[KernelGodunov]
	lg, ok := cmG.Mean.(perfmodel.Poly)
	if !ok || len(lg.Coeffs) != 2 {
		t.Fatalf("Godunov mean model = %v", cmG.Mean)
	}
	if lg.Coeffs[1] <= 0 {
		t.Error("Godunov slope must be positive")
	}
	sg := cmG.Sigma.(perfmodel.Poly)
	if sg.Coeffs[1] <= 0 {
		t.Error("Godunov sigma must grow with Q (paper Fig. 7)")
	}

	// EFM: linear mean cheaper than Godunov at large Q.
	cmE := models[KernelEFM]
	const bigQ = 100_000
	if cmE.Mean.Predict(bigQ) >= cmG.Mean.Predict(bigQ) {
		t.Errorf("EFM (%.0f us) must be cheaper than Godunov (%.0f us) at Q=%d",
			cmE.Mean.Predict(bigQ), cmG.Mean.Predict(bigQ), bigQ)
	}
	// EFM's variability is far below Godunov's (paper Fig. 8): compare the
	// measured per-group sigmas directly (fitted sigma models extrapolate
	// poorly on the sparse test sweep).
	var sigE, sigG float64
	for _, g := range cmE.Stats {
		sigE += g.StdDev
	}
	for _, g := range cmG.Stats {
		sigG += g.StdDev
	}
	if sigE >= sigG {
		t.Errorf("total EFM sigma (%.0f) must be below Godunov's (%.0f)", sigE, sigG)
	}

	// Report writers.
	var sb strings.Builder
	if err := WriteModelReport(&sb, cmG); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"g_proxy::compute()", "paper", "measured", "R2"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("model report missing %q", want)
		}
	}
	sb.Reset()
	if err := WriteMeanSigmaCSV(&sb, cmG); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "q,n,mean_us,sigma_us") {
		t.Error("mean/sigma CSV header wrong")
	}
}

func TestBuildDualAndOptimize(t *testing.T) {
	t.Parallel()
	res, _, models := sharedFixtures(t)
	dual := BuildDual(res, models)
	if dual.Vertex("sc_proxy") == nil || dual.Vertex("g_proxy") == nil {
		t.Fatal("dual missing kernel vertices")
	}
	if dual.Vertex("icc_proxy") == nil || dual.Vertex("icc_proxy").Comm == nil {
		t.Error("mesh vertex missing comm model")
	}
	if cost := dual.Cost(); cost <= 0 || math.IsNaN(cost) {
		t.Errorf("composite cost = %g", cost)
	}
	var sb strings.Builder
	if err := dual.WriteDOT(&sb, "dual"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "g_proxy") {
		t.Error("dual DOT missing vertices")
	}

	// Optimizer: at large workload EFM wins on cost; the QoS floor brings
	// Godunov back (the paper's trade).
	trial := BuildDual(res, models)
	for _, name := range []string{"g_proxy", "sc_proxy"} {
		if v := trial.Vertex(name); v != nil {
			nv := *v
			nv.Q = 100_000
			trial.AddVertex(nv)
		}
	}
	opt := &assembly.Optimizer{Dual: trial,
		Slots: []assembly.Slot{FluxSlot("g_proxy", models[KernelGodunov], models[KernelEFM])}}
	best, _, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if best.Choice["g_proxy"] != "EFMFlux" {
		t.Errorf("large-Q optimum = %v, want EFMFlux", best.Choice)
	}
	opt.MinQoS = 0.9
	bestQoS, _, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if bestQoS.Choice["g_proxy"] != "GodunovFlux" {
		t.Errorf("QoS-floored optimum = %v, want GodunovFlux", bestQoS.Choice)
	}
}

func TestCaseStudyDeterminism(t *testing.T) {
	t.Parallel()
	// The shared fixture ran the same config through the campaign engine;
	// a fresh serial run must reproduce it exactly.
	r1, _, _ := sharedFixtures(t)
	r2, err := RunCaseStudy(fastCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := r1.MeanSummary(), r2.MeanSummary()
	if len(s1) != len(s2) {
		t.Fatalf("summary row counts differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].InclusiveUS != s2[i].InclusiveUS {
			t.Errorf("row %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}
