package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/campaign"
	"repro/internal/perfmodel"
)

// This file implements the paper's Section 6 outlook: "The models derived
// here are valid only on a similar cluster. Any significant change, such as
// halving of the cache size, will have a large effect on the coefficients
// in the models (though the functional form is expected to remain
// unchanged). Ideally, the coefficients should be parameterized by
// processor speed and a cache model. We will address this in future work,
// where the cache information collected during these tests will be
// employed."
//
// Two instruments:
//
//   - RunCacheStudy refits a kernel's model under different cache sizes and
//     shows the coefficients moving while the functional form stays put;
//   - CacheAwareFit folds the recorded PAPI_L2_DCM deltas into a
//     multivariate model T(Q, DCM), which explains the mode split a
//     Q-only model has to average over.

// CachePoint is one cache-size sample of the study.
type CachePoint struct {
	// CacheKB is the simulated cache capacity.
	CacheKB int
	// Model is the kernel model fitted under that cache.
	Model *ComponentModel
}

// RunCacheStudy refits the kernel under each cache size (in kB). The base
// sweep's other parameters are kept. Each cache size is an independent
// simulated-machine run, so the study executes as a parallel campaign (one
// worker per CPU); the points come back in cacheKBs order and are
// byte-identical to a serial loop.
func RunCacheStudy(base SweepConfig, cacheKBs []int) ([]CachePoint, error) {
	return RunCacheStudyCampaign(context.Background(), campaign.Config{}, base, cacheKBs)
}

// WriteCacheStudy prints the per-cache-size model comparison.
func WriteCacheStudy(w io.Writer, kernel Kernel, pts []CachePoint) error {
	if _, err := fmt.Fprintf(w, "cache-size study for %s (functional form fixed, coefficients move):\n",
		kernel.RecordName()); err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(w, "  %5d kB: T = %s\n", p.CacheKB, p.Model.Mean)
	}
	return nil
}

// CacheAwareFit regresses wall time on both the array size and the
// invocation's recorded cache misses: T = c0 + c1*Q + c2*DCM. It returns
// the multivariate model, its R², and the R² of the Q-only linear fit on
// the identical samples for comparison.
func CacheAwareFit(s *SweepResult) (perfmodel.MultiLin, float64, float64, error) {
	var rows [][]float64
	var qOnly, y []float64
	for _, p := range s.Points {
		rows = append(rows, []float64{float64(p.Q), p.Misses})
		qOnly = append(qOnly, float64(p.Q))
		y = append(y, p.WallUS)
	}
	if len(rows) == 0 {
		return perfmodel.MultiLin{}, 0, 0, fmt.Errorf("harness: no samples")
	}
	ml, err := perfmodel.MultiLinFit([]string{"Q", "DCM"}, rows, y)
	if err != nil {
		return perfmodel.MultiLin{}, 0, 0, err
	}
	r2 := perfmodel.R2Multi(ml, rows, y)
	plain, err := perfmodel.LinFit(qOnly, y)
	if err != nil {
		return perfmodel.MultiLin{}, 0, 0, err
	}
	plainR2 := perfmodel.R2(plain, qOnly, y)
	return ml, r2, plainR2, nil
}
