package harness

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/results"
	"repro/internal/results/store"
	"repro/internal/results/store/lease"
)

// gridTrendBytes renders a streamed grid's trend CSV and report, the
// bytes the distributed acceptance criterion compares.
func gridTrendBytes(t *testing.T, pts []GridPoint) (csv, txt []byte) {
	t.Helper()
	reports, err := BuildTrends(pts, TrendCacheKB)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, txtBuf bytes.Buffer
	if err := WriteTrendCSV(&csvBuf, reports); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrendReport(&txtBuf, reports); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), txtBuf.Bytes()
}

// sinkRows flattens a memory sink into deterministic per-key row dumps.
func sinkRows(s *results.MemorySink) map[string]string {
	out := map[string]string{}
	for _, k := range s.Keys() {
		out[k] = fmt.Sprint(s.Rows(k))
	}
	return out
}

// TestDistributedGridByteIdenticalToSingleProcess is the PR's acceptance
// criterion in miniature: three campaign "processes" (goroutines with
// their own lease managers and sinks — the protocol is identical across
// real processes) partition one trend grid through a shared store. Every
// scenario must execute exactly once in total, and every process's grid
// points, trend bytes and sink rows must match the single-process run
// byte for byte.
func TestDistributedGridByteIdenticalToSingleProcess(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	grid := campaign.Grid{
		Base:         base.World,
		Axes:         []campaign.Dimension{campaign.CacheAxis(128, 256, 512)},
		Replications: 2,
		BaseSeed:     1,
	}
	scs, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}

	// Single-process reference: no store, no claimer.
	refSink := results.NewMemorySink()
	refPts, err := StreamSweepGrid(context.Background(),
		campaign.Config{Workers: 2, Sink: refSink}, base, grid)
	if err != nil {
		t.Fatal(err)
	}
	refCSV, refTXT := gridTrendBytes(t, refPts)
	refRows := sinkRows(refSink)

	// Three coordinator-free workers over one shared store.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const procs = 3
	var wg sync.WaitGroup
	sinks := make([]*results.MemorySink, procs)
	ptsByProc := make([][]GridPoint, procs)
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		mgr, err := lease.Open(st, fmt.Sprintf("w%d", p), lease.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		sinks[p] = results.NewMemorySink()
		cfg := campaign.Config{
			Workers: 2, Store: st, Claimer: mgr, Sink: sinks[p],
			ClaimBackoff: 2 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ptsByProc[p], errs[p] = StreamSweepGrid(context.Background(), cfg, base, grid)
		}()
	}
	wg.Wait()

	for p := 0; p < procs; p++ {
		if errs[p] != nil {
			t.Fatalf("process %d: %v", p, errs[p])
		}
		csv, txt := gridTrendBytes(t, ptsByProc[p])
		if !bytes.Equal(csv, refCSV) {
			t.Errorf("process %d trend CSV differs from single-process run", p)
		}
		if !bytes.Equal(txt, refTXT) {
			t.Errorf("process %d trend report differs from single-process run", p)
		}
		rows := sinkRows(sinks[p])
		if len(rows) != len(refRows) {
			t.Fatalf("process %d streamed %d keys, want %d", p, len(rows), len(refRows))
		}
		for k, want := range refRows {
			if rows[k] != want {
				t.Errorf("process %d rows for %s differ from single-process run", p, k)
			}
		}
	}

	// The lease audit proves zero duplicated executions across the fleet.
	audit, err := lease.ReadAudit(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(audit) != len(scs) {
		t.Fatalf("audit covers %d scenarios, want %d", len(audit), len(scs))
	}
	for _, sc := range scs {
		if owners := audit[sc.Key]; len(owners) != 1 {
			t.Errorf("scenario %s executed %d times by %v", sc.Key, len(owners), owners)
		}
	}
	if n, err := st.Len(); err != nil || n != len(scs) {
		t.Errorf("store holds %d checkpoints, want %d (err=%v)", n, len(scs), err)
	}
}

// TestDistributedCrashRecoveryMatchesGolden kills a worker mid-grid: it
// claimed a scenario and stopped heartbeating without storing anything. A
// second worker must steal the expired lease, run the whole grid, and the
// resumed store's output must match the golden single-process bytes.
func TestDistributedCrashRecoveryMatchesGolden(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	grid := campaign.Grid{
		Base:     base.World,
		Axes:     []campaign.Dimension{campaign.CacheAxis(128, 512)},
		BaseSeed: 1,
	}
	jobs, err := StreamJobs(base, grid)
	if err != nil {
		t.Fatal(err)
	}

	// Golden single-process bytes.
	refSink := results.NewMemorySink()
	refPts, err := StreamSweepGrid(context.Background(),
		campaign.Config{Workers: 1, Sink: refSink}, base, grid)
	if err != nil {
		t.Fatal(err)
	}
	refCSV, refTXT := gridTrendBytes(t, refPts)

	// The "crashed" worker: claims the first scenario, then dies before
	// running it — its heartbeat stops and the lease expires.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := lease.Options{TTL: 150 * time.Millisecond, Heartbeat: 25 * time.Millisecond}
	crashed, err := lease.Open(st, "crashed", opts)
	if err != nil {
		t.Fatal(err)
	}
	if s, err := crashed.TryClaim(jobs[0].Key, jobs[0].Hash); err != nil || s != campaign.ClaimRun {
		t.Fatalf("crashed worker claim = %v, %v", s, err)
	}
	crashed.Close()

	// The survivor runs the full grid against the same store and must
	// steal the stale lease rather than wait forever.
	survivor, err := lease.Open(st, "survivor", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	sink := results.NewMemorySink()
	pts, err := StreamSweepGrid(context.Background(), campaign.Config{
		Workers: 2, Store: st, Claimer: survivor, Sink: sink,
		ClaimBackoff: 10 * time.Millisecond,
	}, base, grid)
	if err != nil {
		t.Fatal(err)
	}
	csv, txt := gridTrendBytes(t, pts)
	if !bytes.Equal(csv, refCSV) || !bytes.Equal(txt, refTXT) {
		t.Error("recovered grid output differs from golden bytes")
	}
	refRows, rows := sinkRows(refSink), sinkRows(sink)
	for k, want := range refRows {
		if rows[k] != want {
			t.Errorf("recovered rows for %s differ from golden", k)
		}
	}

	// Every scenario — including the stolen one — executed exactly once,
	// all by the survivor.
	audit, err := lease.ReadAudit(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if owners := audit[j.Key]; len(owners) != 1 || owners[0] != "survivor" {
			t.Errorf("scenario %s executed by %v, want survivor exactly once", j.Key, owners)
		}
	}
}

// TestDistributedConfigWiring covers the convenience constructor the
// commands use.
func TestDistributedConfigWiring(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cc, mgr, err := DistributedConfig(campaign.Config{Workers: 3}, dir, "w1", lease.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if cc.Store == nil || cc.Claimer == nil || cc.Workers != 3 {
		t.Fatalf("config not wired: %+v", cc)
	}
	if mgr.Owner() != "w1" {
		t.Errorf("owner = %q", mgr.Owner())
	}
	// Empty owner derives a host-pid identity.
	_, mgr2, err := DistributedConfig(campaign.Config{}, dir, "", lease.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if mgr2.Owner() == "" || mgr2.Owner() == mgr.Owner() {
		t.Errorf("derived owner = %q", mgr2.Owner())
	}
}
