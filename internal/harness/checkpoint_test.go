package harness

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/components"
	"repro/internal/results"
	"repro/internal/results/store"
)

// TestCheckpointRoundTripPreservesOutputBytes guards the resume guarantee
// at the payload level: a result decoded from the store must render every
// figure byte-for-byte like the live value.
func TestCheckpointRoundTripPreservesOutputBytes(t *testing.T) {
	t.Parallel()
	caseRes, sweeps, models := sharedFixtures(t)

	sw := sweeps[KernelStates]
	data, err := encodeGob(sw)
	if err != nil {
		t.Fatal(err)
	}
	sw2, err := decodeGob[*SweepResult](data)
	if err != nil {
		t.Fatal(err)
	}
	for name, write := range map[string]func(*SweepResult, *bytes.Buffer) error{
		"scatter": func(s *SweepResult, b *bytes.Buffer) error { return s.WriteScatterCSV(b) },
		"ratios":  func(s *SweepResult, b *bytes.Buffer) error { return s.WriteRatiosCSV(b) },
	} {
		var want, got bytes.Buffer
		if err := write(sw, &want); err != nil {
			t.Fatal(err)
		}
		if err := write(sw2, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("%s CSV drifted through checkpoint", name)
		}
	}
	if fmt.Sprint(sw.Rows()) != fmt.Sprint(sw2.Rows()) {
		t.Error("telemetry rows drifted through checkpoint")
	}

	caseData, err := encodeGob(caseRes)
	if err != nil {
		t.Fatal(err)
	}
	case2, err := decodeGob[*CaseStudyResult](caseData)
	if err != nil {
		t.Fatal(err)
	}
	for name, write := range map[string]func(*CaseStudyResult, *bytes.Buffer) error{
		"profile":   func(r *CaseStudyResult, b *bytes.Buffer) error { return r.WriteProfile(b) },
		"pgm":       func(r *CaseStudyResult, b *bytes.Buffer) error { return r.WritePGM(b) },
		"ghostcomm": func(r *CaseStudyResult, b *bytes.Buffer) error { return r.WriteGhostCommCSV(b) },
	} {
		var want, got bytes.Buffer
		if err := write(caseRes, &want); err != nil {
			t.Fatal(err)
		}
		if err := write(case2, &got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("case-study %s drifted through checkpoint", name)
		}
	}
	if case2.AssemblyDOT != caseRes.AssemblyDOT || len(case2.Edges) != len(caseRes.Edges) {
		t.Error("case-study DOT or trace drifted through checkpoint")
	}

	cm := models[KernelStates]
	cmData, err := encodeGob(cm)
	if err != nil {
		t.Fatal(err)
	}
	cm2, err := decodeGob[*ComponentModel](cmData)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := WriteMeanSigmaCSV(&want, cm); err != nil {
		t.Fatal(err)
	}
	if err := WriteMeanSigmaCSV(&got, cm2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("model CSV drifted through checkpoint")
	}
}

// readShards returns a shard directory's files as name -> content.
func readShards(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(dir + "/" + e.Name())
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	return out
}

// TestStreamGridInterruptResumeByteIdentical is the end-to-end resume
// guarantee: a streamed grid campaign killed mid-run (context cancel) and
// resumed against the same store re-executes zero completed scenarios and
// produces byte-identical streamed output and trend report.
func TestStreamGridInterruptResumeByteIdentical(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	grid := campaign.Grid{
		Base:     base.World,
		Axes:     []campaign.Dimension{campaign.CacheAxis(128, 512)},
		BaseSeed: 1,
	}

	runGrid := func(st campaign.Store, shardDir string, interrupt bool) ([]GridPoint, []campaign.Event, error) {
		sink, err := results.NewCSVShardSink(shardDir)
		if err != nil {
			t.Fatal(err)
		}
		defer sink.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		jobs, err := StreamJobs(base, grid)
		if err != nil {
			t.Fatal(err)
		}
		if interrupt {
			// The second scenario dies mid-run, as if the process were
			// killed after the first checkpointed: it cancels the campaign
			// and produces nothing.
			jobs[1].Run = func(ctx context.Context, _ map[string]any) (any, error) {
				cancel()
				return nil, ctx.Err()
			}
		}
		var events []campaign.Event
		res, err := campaign.Run(ctx, campaign.Config{
			Workers: 1, Store: st, Sink: sink,
			OnProgress: func(e campaign.Event) { events = append(events, e) },
		}, jobs)
		if err != nil {
			return nil, events, err
		}
		pts := make([]GridPoint, len(res))
		for i, r := range res {
			pts[i] = r.Value.(GridPoint)
		}
		return pts, events, nil
	}

	// Reference: an uninterrupted run.
	refStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	refPts, _, err := runGrid(refStore, refDir, false)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: scenario 0 completes and checkpoints, scenario 1 is
	// killed by the context cancel.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := runGrid(st, t.TempDir(), true); err == nil {
		t.Fatal("interrupted grid reported success")
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("store holds %d checkpoints after interrupt (err=%v), want 1", n, err)
	}

	// Resume against the same store: zero completed scenarios re-run.
	resumeDir := t.TempDir()
	resumePts, events, err := runGrid(st, resumeDir, false)
	if err != nil {
		t.Fatal(err)
	}
	var cached, executed int
	for _, e := range events {
		if e.Cached {
			cached++
		} else {
			executed++
		}
	}
	if cached != 1 || executed != 1 {
		t.Errorf("resume: %d cached / %d executed, want 1/1", cached, executed)
	}

	// The resumed run's streamed shards and grid points match the
	// uninterrupted reference byte for byte.
	refShards, resumeShards := readShards(t, refDir), readShards(t, resumeDir)
	if len(refShards) != 2 || len(resumeShards) != 2 {
		t.Fatalf("shard counts: ref=%d resume=%d, want 2", len(refShards), len(resumeShards))
	}
	for name, want := range refShards {
		if got, ok := resumeShards[name]; !ok || got != want {
			t.Errorf("shard %s differs after resume", name)
		}
	}
	var refTrend, resumeTrend bytes.Buffer
	refReports, err := BuildTrends(refPts, TrendCacheKB)
	if err != nil {
		t.Fatal(err)
	}
	resumeReports, err := BuildTrends(resumePts, TrendCacheKB)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrendCSV(&refTrend, refReports); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrendCSV(&resumeTrend, resumeReports); err != nil {
		t.Fatal(err)
	}
	if refTrend.String() != resumeTrend.String() {
		t.Errorf("trend CSV differs after resume:\n--- ref\n%s\n--- resume\n%s",
			refTrend.String(), resumeTrend.String())
	}
}

// TestStreamSweepGridEmitsRowsAndTrend checks the streaming grid's
// contract: points carry fitted models (no buffered sweeps), every
// scenario's rows land in the sink, and the trend report fits each
// coefficient against cache size.
func TestStreamSweepGridEmitsRowsAndTrend(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	grid := campaign.Grid{
		Base:     base.World,
		Axes:     []campaign.Dimension{campaign.CacheAxis(128, 512)},
		BaseSeed: 1,
	}
	sink := results.NewMemorySink()
	pts, err := StreamSweepGrid(context.Background(), campaign.Config{Sink: sink}, base, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Model == nil || p.Kernel != KernelStates {
			t.Errorf("%s: incomplete point %+v", p.Scenario.Key, p)
		}
		rows := sink.Rows(p.Scenario.Key)
		if len(rows) == 0 {
			t.Fatalf("%s: no rows streamed", p.Scenario.Key)
		}
		if _, ok := rows[0][4].Float(); rows[0][4].Name != "l2_dcm" || !ok {
			t.Errorf("%s: unexpected row shape %v", p.Scenario.Key, rows[0])
		}
	}

	reports, err := BuildTrends(pts, TrendCacheKB)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("%d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Kernel != KernelStates || len(r.Points) != 2 || len(r.Fits) != len(r.CoeffNames) {
		t.Errorf("report shape: %+v", r)
	}
	// States fits a power law: coefficients lnA and B.
	if len(r.CoeffNames) != 2 || r.CoeffNames[0] != "lnA" || r.CoeffNames[1] != "B" {
		t.Errorf("coeff names = %v", r.CoeffNames)
	}
	var csv, txt bytes.Buffer
	if err := WriteTrendCSV(&csv, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "kernel,cache_kb,n,coeff,value,trend_fit\n") {
		t.Errorf("trend CSV header: %q", csv.String())
	}
	if err := WriteTrendReport(&txt, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "sc_proxy::compute()") || !strings.Contains(txt.String(), "lnA") {
		t.Errorf("trend report: %q", txt.String())
	}

	// Too few cache sizes to fit a trend is a loud error, as is fitting
	// against an axis the grid never swept.
	if _, err := BuildTrends(pts[:1], TrendCacheKB); err == nil {
		t.Error("single-cache trend succeeded")
	}
	if _, err := BuildTrends(pts, TrendByAxis("nonexistent")); err == nil {
		t.Error("trend against an unswept axis succeeded")
	}
}

// fluxScenario builds a bare scenario carrying only a flux coordinate.
func fluxScenario(flux string) campaign.Scenario {
	return campaign.Scenario{
		Key:    "flux-only",
		Coords: []campaign.Coord{{Axis: campaign.AxisFlux, Key: flux, Value: flux}},
	}
}

// TestScenarioConfigMapping checks the app-level grid axes reach the
// harness configs through their coordinates.
func TestScenarioConfigMapping(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	sc := campaign.Scenario{
		Key: "p2/base/c128kB/m64x32/efm/r0", World: base.World,
		Coords: []campaign.Coord{
			{Axis: campaign.AxisCache, Key: "c128kB", Value: 128},
			{Axis: campaign.AxisMesh, Key: "m64x32", Value: campaign.MeshSize{Nx: 64, Ny: 32}},
			{Axis: campaign.AxisFlux, Key: "efm", Value: "efm"},
		},
	}
	sw, err := scenarioSweepConfig(base, sc)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Kernel != KernelEFM {
		t.Errorf("flux axis did not select kernel: %s", sw.Kernel)
	}
	caseBase := DefaultCaseStudy()
	cs, err := CaseScenarioConfig(caseBase, sc)
	if err != nil {
		t.Fatal(err)
	}
	if cs.App.Mesh.BaseNx != 64 || cs.App.Mesh.BaseNy != 32 {
		t.Errorf("mesh axis not applied: %+v", cs.App.Mesh)
	}
	if cs.App.Flux != components.EFM {
		t.Errorf("flux axis not applied: %v", cs.App.Flux)
	}

	if _, err := scenarioSweepConfig(base, fluxScenario("nonsense")); err == nil {
		t.Error("unknown flux accepted by sweep mapping")
	}
	if _, err := CaseScenarioConfig(caseBase, fluxScenario("states")); err == nil {
		t.Error("states flux accepted by case mapping")
	}

	// A scenario without app-level coordinates keeps the base config.
	plain, err := CaseScenarioConfig(caseBase, campaign.Scenario{World: base.World})
	if err != nil {
		t.Fatal(err)
	}
	if plain.App.Mesh.BaseNx != caseBase.App.Mesh.BaseNx || plain.App.Flux != caseBase.App.Flux {
		t.Errorf("unswept axes perturbed the config")
	}
}

// TestCPUGridInterruptResume runs the satellite resume guarantee on the
// new machine axis: a CPU-axis grid interrupted mid-run resumes against
// the same store (the existing on-disk format) re-executing only the
// unfinished scenario, with points identical to an uninterrupted run.
func TestCPUGridInterruptResume(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	grid := campaign.Grid{
		Base:     base.World,
		Axes:     []campaign.Dimension{campaign.CPUClockAxis(1, 2)},
		BaseSeed: 1,
	}

	run := func(st campaign.Store, interrupt bool) ([]GridPoint, []campaign.Event, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		jobs, err := StreamJobs(base, grid)
		if err != nil {
			t.Fatal(err)
		}
		if interrupt {
			jobs[1].Run = func(ctx context.Context, _ map[string]any) (any, error) {
				cancel()
				return nil, ctx.Err()
			}
		}
		var events []campaign.Event
		res, err := campaign.Run(ctx, campaign.Config{
			Workers: 1, Store: st,
			OnProgress: func(e campaign.Event) { events = append(events, e) },
		}, jobs)
		if err != nil {
			return nil, events, err
		}
		pts := make([]GridPoint, len(res))
		for i, r := range res {
			pts[i] = r.Value.(GridPoint)
		}
		return pts, events, nil
	}

	refStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refPts, _, err := run(refStore, false)
	if err != nil {
		t.Fatal(err)
	}
	if refPts[0].Scenario.Key != "p2/base/c512kB/cpu1x/r0" {
		t.Fatalf("unexpected first key %s", refPts[0].Scenario.Key)
	}
	// The doubled clock halves compute time; the fitted models must differ.
	if reflect.DeepEqual(refPts[0].Model, refPts[1].Model) {
		t.Error("clock scale did not move the fitted model")
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(st, true); err == nil {
		t.Fatal("interrupted CPU grid reported success")
	}
	resumePts, events, err := run(st, false)
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	for _, e := range events {
		if e.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Errorf("resume replayed %d checkpoints, want 1", cached)
	}
	if !reflect.DeepEqual(refPts, resumePts) {
		t.Error("resumed CPU grid points differ from uninterrupted run")
	}
}
