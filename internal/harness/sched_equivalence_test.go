package harness

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/mpi"
)

// This file is the tentpole's headline proof at the harness layer: for
// every scenario of the PR 3 golden grid (the cache-axis trend grid whose
// keys, seeds and hashes are pinned by grid_stability_golden.tsv), the
// conservative parallel scheduler produces bit-for-bit the same sweeps,
// fitted models, profiles, virtual clocks and trend.csv/trend.txt bytes as
// the serial scheduler. Sizes are reduced to keep the test quick; the grid
// structure — axes, replications, seeds — is the golden one.

// goldenTrendGrid rebuilds the PR 3 golden "trend" grid over a reduced
// States sweep.
func goldenTrendGrid(t *testing.T) (SweepConfig, campaign.Grid) {
	t.Helper()
	base := DefaultSweep(KernelStates)
	base.World.Procs = 3
	base.World.Seed = 1
	base.Sizes = base.Sizes[:4]
	base.Reps = 2
	return base, campaign.Grid{
		Base:         base.World,
		Axes:         []campaign.Dimension{campaign.CacheAxis(128, 256, 512, 1024)},
		Replications: 2,
		BaseSeed:     1,
	}
}

// trendBytes streams the grid (serially, workers=1 is enough: determinism
// across workers is already covered elsewhere) and renders trend.csv and
// trend.txt.
func trendBytes(t *testing.T, base SweepConfig, g campaign.Grid) (csv, txt []byte) {
	t.Helper()
	pts, err := StreamSweepGrid(context.Background(), campaign.Config{Workers: 2}, base, g)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := BuildTrends(pts, TrendCacheKB)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, txtBuf bytes.Buffer
	if err := WriteTrendCSV(&csvBuf, reports); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrendReport(&txtBuf, reports); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), txtBuf.Bytes()
}

// withSched returns the sweep config under the given scheduler mode.
func withSched(cfg SweepConfig, mode mpi.SchedulerMode) SweepConfig {
	cfg.World.Sched = mode
	return cfg
}

func TestGoldenGridParallelEquivalence(t *testing.T) {
	t.Parallel()
	base, grid := goldenTrendGrid(t)
	scs, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		cfg := base
		cfg.World = sc.World
		serial, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", sc.Key, err)
		}
		ms, err := FitModels(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []mpi.SchedulerMode{mpi.ConservativeParallel, mpi.OptimisticParallel} {
			par, err := RunSweep(withSched(cfg, mode))
			if err != nil {
				t.Fatalf("%s %v: %v", sc.Key, mode, err)
			}
			if !reflect.DeepEqual(serial.Points, par.Points) {
				t.Errorf("%s: sweep points differ between serial and %v", sc.Key, mode)
				continue
			}
			mp, err := FitModels(par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ms, mp) {
				t.Errorf("%s: fitted models differ between serial and %v", sc.Key, mode)
			}
		}
	}

	// And the rendered trend artifacts, end to end over the whole grid.
	csvS, txtS := trendBytes(t, base, grid)
	for _, mode := range []mpi.SchedulerMode{mpi.ConservativeParallel, mpi.OptimisticParallel} {
		parBase := withSched(base, mode)
		parGrid := grid
		parGrid.Base = parBase.World
		csvP, txtP := trendBytes(t, parBase, parGrid)
		if !bytes.Equal(csvS, csvP) {
			t.Errorf("trend.csv differs between serial and %v:\nserial:\n%s\nparallel:\n%s", mode, csvS, csvP)
		}
		if !bytes.Equal(txtS, txtP) {
			t.Errorf("trend.txt differs between serial and %v:\nserial:\n%s\nparallel:\n%s", mode, txtS, txtP)
		}
	}
}

// TestCaseStudyParallelEquivalence runs the Fig. 3 profile workload — the
// full component application with ghost exchanges, load balancing and the
// Mastermind interposed — under both schedulers and compares profiles,
// per-rank virtual clocks, the rendered FUNCTION SUMMARY and the Fig. 9
// ghost-communication series byte for byte.
func TestCaseStudyParallelEquivalence(t *testing.T) {
	t.Parallel()
	cfg := DefaultCaseStudy()
	cfg.App.Mesh.BaseNx, cfg.App.Mesh.BaseNy = 48, 12
	cfg.App.Mesh.TileNx, cfg.App.Mesh.TileNy = 12, 6
	cfg.App.Driver.Steps = 8
	cfg.App.Driver.RegridInterval = 4

	serial, err := RunCaseStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	render := func(res *CaseStudyResult) (string, string) {
		var prof, ghost strings.Builder
		if err := res.WriteProfile(&prof); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteGhostCommCSV(&ghost); err != nil {
			t.Fatal(err)
		}
		return prof.String(), ghost.String()
	}
	profS, ghostS := render(serial)

	for _, mode := range []mpi.SchedulerMode{mpi.ConservativeParallel, mpi.OptimisticParallel} {
		parCfg := cfg
		parCfg.World.Sched = mode
		par, err := RunCaseStudy(parCfg)
		if err != nil {
			t.Fatal(err)
		}

		for r := range serial.Profiles {
			var bs, bp bytes.Buffer
			if err := gob.NewEncoder(&bs).Encode(serial.Profiles[r]); err != nil {
				t.Fatal(err)
			}
			if err := gob.NewEncoder(&bp).Encode(par.Profiles[r]); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
				t.Errorf("rank %d: serialized TAU profile differs between serial and %v", r, mode)
			}
		}
		profP, ghostP := render(par)
		if profS != profP {
			t.Errorf("FUNCTION SUMMARY differs under %v:\nserial:\n%s\nparallel:\n%s", mode, profS, profP)
		}
		if ghostS != ghostP {
			t.Errorf("ghost-communication CSV differs between serial and %v", mode)
		}
		if serial.SimTime != par.SimTime || serial.StepsTaken != par.StepsTaken {
			t.Errorf("driver progress differs under %v: serial t=%v/%d steps, parallel t=%v/%d steps",
				mode, serial.SimTime, serial.StepsTaken, par.SimTime, par.StepsTaken)
		}
		if !reflect.DeepEqual(serial.Image, par.Image) {
			t.Errorf("density image differs between serial and %v", mode)
		}
	}
}

// TestSchedGridEquivalenceAtScale exercises the campaign-level check the
// SchedAxis exists for: one grid sweeping serial vs parallel (seed-inert,
// so paired scenarios share seeds) crossed with a machine axis; paired
// scenarios must fit identical models.
func TestSchedGridEquivalenceAtScale(t *testing.T) {
	t.Parallel()
	base := DefaultSweep(KernelStates)
	base.World.Procs = 2
	base.Sizes = base.Sizes[:3]
	base.Reps = 2
	g := campaign.Grid{
		Base: base.World,
		Axes: []campaign.Dimension{
			campaign.CacheAxis(128, 512),
			campaign.SchedModeAxis(mpi.Serial, mpi.ConservativeParallel, mpi.OptimisticParallel),
		},
		Replications: 2,
	}
	points, err := RunSweepGrid(context.Background(), campaign.Config{}, base, g)
	if err != nil {
		t.Fatal(err)
	}
	byExperiment := map[string][]GridSweep{}
	for _, p := range points {
		sched := p.Scenario.Label(campaign.AxisSched)
		exp := strings.Replace(p.Scenario.Key, "/"+sched, "", 1)
		byExperiment[exp] = append(byExperiment[exp], p)
	}
	if len(byExperiment) != len(points)/3 {
		t.Fatalf("pairing failed: %d experiments from %d points", len(byExperiment), len(points))
	}
	for exp, group := range byExperiment {
		if len(group) != 3 {
			t.Fatalf("experiment %s has %d scheduler variants, want 3", exp, len(group))
		}
		for _, p := range group[1:] {
			if group[0].Scenario.World.Seed != p.Scenario.World.Seed {
				t.Errorf("experiment %s: seeds differ across the seed-inert sched axis", exp)
			}
			if !reflect.DeepEqual(group[0].Result.Points, p.Result.Points) {
				t.Errorf("experiment %s: sweep points differ between schedulers", exp)
			}
			if !reflect.DeepEqual(group[0].Model, p.Model) {
				t.Errorf("experiment %s: fitted models differ between schedulers", exp)
			}
		}
	}
	if testing.Verbose() {
		fmt.Printf("verified %d scheduler-equivalent experiment pairs\n", len(byExperiment))
	}
}
