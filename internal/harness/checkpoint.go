package harness

import (
	"bytes"
	"encoding/gob"

	"repro/internal/euler"
	"repro/internal/perfmodel"
	"repro/internal/results/store"
)

// This file is the harness's checkpoint codec: every campaign job the
// harness builds carries a configuration hash plus gob encode/decode hooks,
// so a campaign.Config with a Store resumes interrupted runs without
// re-executing finished jobs. Payloads round-trip exactly — gob writes
// float64 bits verbatim and tau.Profile implements GobEncoder — so a
// resumed figure regeneration is byte-identical to an uninterrupted one.

// checkpointVersion salts every job hash; bump it when a payload's wire
// format changes so stale store entries stop matching.
const checkpointVersion = "harness-ckpt-v1"

func init() {
	// Concrete types that travel inside interface-typed fields:
	// perfmodel.Model in ComponentModel, and results.Field values in
	// checkpointed row replays.
	gob.Register(perfmodel.Poly{})
	gob.Register(perfmodel.PowerLaw{})
	gob.Register(euler.X)
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
}

// jobHash fingerprints a job kind plus its full configuration.
func jobHash(kind string, cfgs ...any) string {
	parts := make([]any, 0, len(cfgs)+2)
	parts = append(parts, checkpointVersion, kind)
	parts = append(parts, cfgs...)
	return store.Hash(parts...)
}

// encodeGob marshals a checkpoint payload.
func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeGob unmarshals a checkpoint payload into a T.
func decodeGob[T any](data []byte) (T, error) {
	var v T
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v)
	return v, err
}
