package harness

import (
	"context"

	"repro/internal/campaign"
	"repro/internal/mpi"
	"repro/internal/results"
)

// This file is the bounded-memory grid path: where RunSweepGrid buffers
// every scenario's whole SweepResult, StreamSweepGrid emits each sweep's
// telemetry rows into the campaign sink and keeps only a GridPoint — the
// scenario coordinates and the fitted model — per scenario. A
// thousand-scenario grid therefore streams through a CSV-shard sink with
// memory bounded by the scenarios in flight, not by the grid size.

// GridPoint is one scenario's distilled outcome in a streaming grid run:
// the coordinates, the kernel that was measured (after the flux dimension
// is applied) and the fitted Eq. 1/2 model. The raw sweep is emitted as
// rows and dropped.
type GridPoint struct {
	Scenario campaign.Scenario
	Kernel   Kernel
	Model    *ComponentModel
}

// gridCheckpoint is a stream job's stored payload: the point plus the rows
// it emitted, so a resumed campaign replays the exact same stream. Spec
// carries the sweep's scheduler telemetry so non-serial points replay
// their spec row too (gob tolerates its absence in older payloads, but
// those are invalidated by the "+spec1" hash salt anyway).
type gridCheckpoint struct {
	Point GridPoint
	Rows  []results.Row
	Spec  mpi.SpecStats
}

// StreamJob wraps one grid scenario as a bounded-memory campaign job: run
// the sweep, emit its rows to the campaign sink, fit the model, return
// only the GridPoint.
func StreamJob(base SweepConfig, sc campaign.Scenario) campaign.Job {
	// rows and spec hand the emitted telemetry from Run to Encode (the
	// campaign calls them sequentially on the same worker) without making
	// them part of the job's value, which must stay small.
	var rows []results.Row
	var spec mpi.SpecStats
	return campaign.Job{
		Key:  sc.Key,
		Hash: jobHash(specKind("gridpoint", sc.World), base, sc),
		Encode: func(v any) ([]byte, error) {
			data, err := encodeGob(gridCheckpoint{Point: v.(GridPoint), Rows: rows, Spec: spec})
			rows = nil
			return data, err
		},
		Decode: func(ctx context.Context, data []byte) (any, error) {
			ck, err := decodeGob[gridCheckpoint](data)
			if err != nil {
				return nil, err
			}
			// The scenario comes from the current expansion, not the stored
			// payload: the store matched on (key, hash), so it is the same
			// point, and payloads written before the Dimension redesign
			// carry scenarios without coordinates.
			ck.Point.Scenario = sc
			if err := replayRows(ctx, sc.Key, ck.Rows); err != nil {
				return ck.Point, err
			}
			sw := &SweepResult{Config: SweepConfig{World: sc.World}, Spec: ck.Spec}
			return ck.Point, replaySpecRow(ctx, sc.Key, sw)
		},
		Run: func(ctx context.Context, _ map[string]any) (any, error) {
			cfg, err := scenarioSweepConfig(base, sc)
			if err != nil {
				return nil, err
			}
			sw, err := RunSweep(cfg)
			if err != nil {
				return nil, err
			}
			rows = sw.Rows()
			spec = sw.Spec
			if err := emitRows(ctx, sc.Key, rows); err != nil {
				return nil, err
			}
			if err := emitSpecRow(ctx, sc.Key, sw); err != nil {
				return nil, err
			}
			cm, err := FitModels(sw)
			if err != nil {
				return nil, err
			}
			return GridPoint{Scenario: sc, Kernel: cfg.Kernel, Model: cm}, nil
		},
	}
}

// StreamJobs expands a grid into one StreamJob per scenario.
func StreamJobs(base SweepConfig, g campaign.Grid) ([]campaign.Job, error) {
	scs, err := g.Scenarios()
	if err != nil {
		return nil, err
	}
	jobs := make([]campaign.Job, len(scs))
	for i, sc := range scs {
		jobs[i] = StreamJob(base, sc)
	}
	return jobs, nil
}

// StreamSweepGrid runs a scenario grid with streaming results: each
// scenario's telemetry rows go to cc.Sink (when set) and only the fitted
// GridPoints come back, in scenario order. With cc.Store set the grid is
// checkpointed per scenario: a resumed run re-executes only unfinished
// scenarios and replays the finished ones' rows from the store, so the
// sink output is identical to an uninterrupted run.
func StreamSweepGrid(ctx context.Context, cc campaign.Config, base SweepConfig, g campaign.Grid) ([]GridPoint, error) {
	jobs, err := StreamJobs(base, g)
	if err != nil {
		return nil, err
	}
	res, err := campaign.Run(ctx, cc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]GridPoint, len(res))
	for i, r := range res {
		out[i] = r.Value.(GridPoint)
	}
	return out, nil
}
