package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
	"repro/internal/results"
)

// This file is the cross-scenario analysis the paper's Section 6 sketches:
// "Ideally, the coefficients should be parameterized by processor speed
// and a cache model." A streaming grid run produces one fitted model per
// scenario; the trend report averages the model coefficients per value of
// a chosen numeric axis — cache size, CPU clock scale, rank count, mesh
// cells, or any user-defined numeric dimension — and fits each coefficient
// against that axis, showing the functional form staying put while the
// coefficients move, and giving a first-order predictor for machines the
// sweep never ran on.

// TrendAxis selects the numeric grid dimension a trend report fits model
// coefficients against.
type TrendAxis struct {
	// Name is the stable axis identifier: the CSV x-column header and the
	// -axis flag value ("cache_kb", "cpu_clock", "ranks", "mesh_cells").
	Name string
	// Col is the x column label of the text report ("C_kB").
	Col string
	// Var is the variable letter trend-fit formulas are rendered with
	// (the underlying perfmodel models print their parameter as Q).
	Var string
	// Desc describes the axis in the text report heading.
	Desc string
	// Value extracts a scenario's numeric x coordinate; ok is false when
	// the scenario's grid does not carry the axis.
	Value func(campaign.Scenario) (float64, bool)
}

// The built-in trend axes. TrendCacheKB reproduces the original
// coefficient-vs-cache-size report byte for byte.
var (
	TrendCacheKB = TrendAxis{
		Name: "cache_kb", Col: "C_kB", Var: "C", Desc: "cache size (C in kB)",
		Value: func(sc campaign.Scenario) (float64, bool) { return sc.Num(campaign.AxisCache) },
	}
	TrendCPUClock = TrendAxis{
		Name: "cpu_clock", Col: "K", Var: "K", Desc: "CPU clock scale (K x calibrated)",
		Value: func(sc campaign.Scenario) (float64, bool) {
			c, ok := sc.Coord(campaign.AxisCPU)
			if !ok {
				return 0, false
			}
			t, ok := c.Value.(mpi.CPUTune)
			if !ok {
				return 0, false
			}
			if t.ClockScale == 0 {
				return 1, true
			}
			return t.ClockScale, true
		},
	}
	TrendRanks = TrendAxis{
		Name: "ranks", Col: "P", Var: "P", Desc: "world size (P ranks)",
		Value: func(sc campaign.Scenario) (float64, bool) { return sc.Num(campaign.AxisRank) },
	}
	TrendMeshCells = TrendAxis{
		Name: "mesh_cells", Col: "M", Var: "M", Desc: "base mesh size (M cells)",
		Value: func(sc campaign.Scenario) (float64, bool) {
			c, ok := sc.Coord(campaign.AxisMesh)
			if !ok {
				return 0, false
			}
			m, ok := c.Value.(campaign.MeshSize)
			if !ok {
				return 0, false
			}
			return float64(m.Nx) * float64(m.Ny), true
		},
	}
)

// TrendByAxis builds a selector for any numeric user-defined dimension:
// the x value is the axis's numeric coordinate payload.
func TrendByAxis(axis string) TrendAxis {
	return TrendAxis{
		Name: axis, Col: axis, Var: "X", Desc: fmt.Sprintf("grid axis %q (X)", axis),
		Value: func(sc campaign.Scenario) (float64, bool) { return sc.Num(axis) },
	}
}

// TrendAxisNamed resolves a -axis flag value to a trend axis: one of the
// built-in names, or any other name as a numeric user-defined axis.
func TrendAxisNamed(name string) (TrendAxis, error) {
	switch name {
	case "", TrendCacheKB.Name:
		return TrendCacheKB, nil
	case TrendCPUClock.Name:
		return TrendCPUClock, nil
	case TrendRanks.Name:
		return TrendRanks, nil
	case TrendMeshCells.Name:
		return TrendMeshCells, nil
	}
	if axis, ok := strings.CutPrefix(name, "axis:"); ok {
		return TrendByAxis(axis), nil
	}
	return TrendAxis{}, fmt.Errorf("harness: unknown trend axis %q (want cache_kb, cpu_clock, ranks, mesh_cells, or axis:<name> for a numeric user-defined dimension)", name)
}

// TrendPoint is one axis value's averaged model coefficients.
type TrendPoint struct {
	// X is the trend axis coordinate (cache kB, clock scale, ...).
	X float64
	// N counts the grid points (replications and other collapsed
	// dimensions) averaged into the coefficients.
	N int
	// Coeffs holds the mean coefficient values, aligned with the report's
	// CoeffNames.
	Coeffs []float64
}

// TrendFit is one coefficient's fitted trend against the axis.
type TrendFit struct {
	// Coeff names the coefficient ("lnA", "B", "c0", "c1", ...).
	Coeff string
	// Model predicts the coefficient from the axis value. It is the
	// AIC-best of a linear and (when the values admit one) a power-law
	// candidate.
	Model perfmodel.Model
	// R2 is the fit's coefficient of determination over the trend points.
	R2 float64
}

// TrendReport is one kernel's coefficient-vs-axis analysis.
type TrendReport struct {
	// Kernel is the measured component.
	Kernel Kernel
	// Axis is the swept dimension the coefficients are fitted against.
	Axis TrendAxis
	// CoeffNames labels the fitted model's coefficients.
	CoeffNames []string
	// Points holds the per-axis-value averaged coefficients, ascending.
	Points []TrendPoint
	// Fits holds one trend fit per coefficient, aligned with CoeffNames.
	Fits []TrendFit
}

// BuildTrends groups grid points by kernel and fits every mean-model
// coefficient against the chosen axis. Each kernel needs at least two
// distinct axis values; replications (and any other collapsed dimensions)
// are averaged per axis value first, mirroring the paper's group-then-fit
// regression style.
func BuildTrends(points []GridPoint, axis TrendAxis) ([]*TrendReport, error) {
	byKernel := map[Kernel][]GridPoint{}
	var order []Kernel
	for _, p := range points {
		if _, seen := byKernel[p.Kernel]; !seen {
			order = append(order, p.Kernel)
		}
		byKernel[p.Kernel] = append(byKernel[p.Kernel], p)
	}
	reports := make([]*TrendReport, 0, len(order))
	for _, k := range order {
		r, err := buildTrend(k, axis, byKernel[k])
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// buildTrend is BuildTrends for one kernel's points.
func buildTrend(kernel Kernel, axis TrendAxis, points []GridPoint) (*TrendReport, error) {
	report := &TrendReport{Kernel: kernel, Axis: axis}
	type acc struct {
		n    int
		sums []float64
	}
	byX := map[float64]*acc{}
	for _, p := range points {
		if p.Model == nil {
			return nil, fmt.Errorf("harness: trend: grid point %q has no model", p.Scenario.Key)
		}
		xv, ok := axis.Value(p.Scenario)
		if !ok {
			return nil, fmt.Errorf("harness: trend: scenario %q has no numeric %s coordinate", p.Scenario.Key, axis.Name)
		}
		names, values := perfmodel.Coefficients(p.Model.Mean)
		if len(names) == 0 {
			return nil, fmt.Errorf("harness: trend: %s model %T has no coefficients", kernel, p.Model.Mean)
		}
		if report.CoeffNames == nil {
			report.CoeffNames = names
		}
		if len(values) != len(report.CoeffNames) {
			return nil, fmt.Errorf("harness: trend: %s grid mixes model forms (%d vs %d coefficients)",
				kernel, len(values), len(report.CoeffNames))
		}
		a := byX[xv]
		if a == nil {
			a = &acc{sums: make([]float64, len(values))}
			byX[xv] = a
		}
		a.n++
		for i, v := range values {
			a.sums[i] += v
		}
	}
	if len(byX) < 2 {
		return nil, fmt.Errorf("harness: trend: %s grid has %d distinct %s value(s), need >= 2", kernel, len(byX), axis.Name)
	}
	xs := make([]float64, 0, len(byX))
	for xv := range byX {
		xs = append(xs, xv)
	}
	sort.Float64s(xs)
	for _, xv := range xs {
		a := byX[xv]
		coeffs := make([]float64, len(a.sums))
		for i, s := range a.sums {
			coeffs[i] = s / float64(a.n)
		}
		report.Points = append(report.Points, TrendPoint{X: xv, N: a.n, Coeffs: coeffs})
	}

	x := make([]float64, len(report.Points))
	for i, p := range report.Points {
		x[i] = p.X
	}
	for ci, name := range report.CoeffNames {
		y := make([]float64, len(report.Points))
		for i, p := range report.Points {
			y[i] = p.Coeffs[ci]
		}
		var cands []perfmodel.Model
		if lin, err := perfmodel.LinFit(x, y); err == nil {
			cands = append(cands, lin)
		}
		if pl, err := perfmodel.PowerLawFit(x, y); err == nil {
			cands = append(cands, pl)
		}
		best := perfmodel.SelectBest(cands, x, y)
		if best == nil {
			return nil, fmt.Errorf("harness: trend: no fit for %s coefficient %s", kernel, name)
		}
		report.Fits = append(report.Fits, TrendFit{
			Coeff: name, Model: best, R2: perfmodel.R2(best, x, y),
		})
	}
	return report, nil
}

// trendModelString renders a trend fit with the axis variable letter — the
// underlying perfmodel models print their parameter as Q.
func trendModelString(m perfmodel.Model, axis TrendAxis) string {
	return strings.ReplaceAll(m.String(), "Q", axis.Var)
}

// WriteTrendCSV writes the reports as one long-format CSV: one row per
// (kernel, axis value, coefficient) with the averaged value and the trend
// fit's prediction. The x column is named after the axis ("cache_kb").
func WriteTrendCSV(w io.Writer, reports []*TrendReport) error {
	enc := results.NewCSVEncoder(w)
	for _, r := range reports {
		if err := enc.Header("kernel", r.Axis.Name, "n", "coeff", "value", "trend_fit"); err != nil {
			return err
		}
		for _, p := range r.Points {
			for ci, name := range r.CoeffNames {
				if err := enc.Encode(results.Row{
					results.F("kernel", string(r.Kernel)),
					results.F(r.Axis.Name, p.X),
					results.F("n", p.N),
					results.F("coeff", name),
					results.F("value", p.Coeffs[ci]),
					results.F("trend_fit", r.Fits[ci].Model.Predict(p.X)),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteTrendReport prints the human-readable trend analysis: per kernel,
// the fitted coefficient-vs-axis models and the averaged points they came
// from.
func WriteTrendReport(w io.Writer, reports []*TrendReport) error {
	for ri, r := range reports {
		if ri > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "trend for %s: mean-model coefficients vs %s\n",
			r.Kernel.RecordName(), r.Axis.Desc); err != nil {
			return err
		}
		for _, f := range r.Fits {
			fmt.Fprintf(w, "  %-4s(%s) = %-40s [R2=%.4f]\n", f.Coeff, r.Axis.Var, trendModelString(f.Model, r.Axis), f.R2)
		}
		fmt.Fprintf(w, "  %8s %4s", r.Axis.Col, "n")
		for _, name := range r.CoeffNames {
			fmt.Fprintf(w, " %14s", name)
		}
		fmt.Fprintln(w)
		for _, p := range r.Points {
			fmt.Fprintf(w, "  %8g %4d", p.X, p.N)
			for _, c := range p.Coeffs {
				fmt.Fprintf(w, " %14.6g", c)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
