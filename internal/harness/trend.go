package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/perfmodel"
	"repro/internal/results"
)

// This file is the cross-scenario analysis the paper's Section 6 sketches:
// "Ideally, the coefficients should be parameterized by processor speed
// and a cache model." A streaming grid run produces one fitted model per
// (cache size, replication); the trend report averages the model
// coefficients per cache size and fits each coefficient against the cache
// size itself, showing the functional form staying put while the
// coefficients move — and giving a first-order predictor for machines the
// sweep never ran on.

// TrendPoint is one cache size's averaged model coefficients.
type TrendPoint struct {
	// CacheKB is the scenario cache capacity.
	CacheKB int
	// N counts the grid points (replications and other collapsed
	// dimensions) averaged into the coefficients.
	N int
	// Coeffs holds the mean coefficient values, aligned with the report's
	// CoeffNames.
	Coeffs []float64
}

// TrendFit is one coefficient's fitted trend against cache size.
type TrendFit struct {
	// Coeff names the coefficient ("lnA", "B", "c0", "c1", ...).
	Coeff string
	// Model predicts the coefficient from the cache size in kB. It is the
	// AIC-best of a linear and (when the values admit one) a power-law
	// candidate.
	Model perfmodel.Model
	// R2 is the fit's coefficient of determination over the trend points.
	R2 float64
}

// TrendReport is one kernel's coefficient-vs-cache-size analysis.
type TrendReport struct {
	// Kernel is the measured component.
	Kernel Kernel
	// CoeffNames labels the fitted model's coefficients.
	CoeffNames []string
	// Points holds the per-cache-size averaged coefficients, ascending.
	Points []TrendPoint
	// Fits holds one trend fit per coefficient, aligned with CoeffNames.
	Fits []TrendFit
}

// BuildTrends groups grid points by kernel and fits every mean-model
// coefficient against the cache-size dimension. Each kernel needs at least
// two distinct cache sizes; replications (and any other collapsed
// dimensions) are averaged per cache size first, mirroring the paper's
// group-then-fit regression style.
func BuildTrends(points []GridPoint) ([]*TrendReport, error) {
	byKernel := map[Kernel][]GridPoint{}
	var order []Kernel
	for _, p := range points {
		if _, seen := byKernel[p.Kernel]; !seen {
			order = append(order, p.Kernel)
		}
		byKernel[p.Kernel] = append(byKernel[p.Kernel], p)
	}
	reports := make([]*TrendReport, 0, len(order))
	for _, k := range order {
		r, err := buildTrend(k, byKernel[k])
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// buildTrend is BuildTrends for one kernel's points.
func buildTrend(kernel Kernel, points []GridPoint) (*TrendReport, error) {
	report := &TrendReport{Kernel: kernel}
	type acc struct {
		n    int
		sums []float64
	}
	byCache := map[int]*acc{}
	for _, p := range points {
		if p.Model == nil {
			return nil, fmt.Errorf("harness: trend: grid point %q has no model", p.Scenario.Key)
		}
		names, values := perfmodel.Coefficients(p.Model.Mean)
		if len(names) == 0 {
			return nil, fmt.Errorf("harness: trend: %s model %T has no coefficients", kernel, p.Model.Mean)
		}
		if report.CoeffNames == nil {
			report.CoeffNames = names
		}
		if len(values) != len(report.CoeffNames) {
			return nil, fmt.Errorf("harness: trend: %s grid mixes model forms (%d vs %d coefficients)",
				kernel, len(values), len(report.CoeffNames))
		}
		a := byCache[p.Scenario.CacheKB]
		if a == nil {
			a = &acc{sums: make([]float64, len(values))}
			byCache[p.Scenario.CacheKB] = a
		}
		a.n++
		for i, v := range values {
			a.sums[i] += v
		}
	}
	if len(byCache) < 2 {
		return nil, fmt.Errorf("harness: trend: %s grid has %d cache size(s), need >= 2", kernel, len(byCache))
	}
	caches := make([]int, 0, len(byCache))
	for kb := range byCache {
		caches = append(caches, kb)
	}
	sort.Ints(caches)
	for _, kb := range caches {
		a := byCache[kb]
		coeffs := make([]float64, len(a.sums))
		for i, s := range a.sums {
			coeffs[i] = s / float64(a.n)
		}
		report.Points = append(report.Points, TrendPoint{CacheKB: kb, N: a.n, Coeffs: coeffs})
	}

	x := make([]float64, len(report.Points))
	for i, p := range report.Points {
		x[i] = float64(p.CacheKB)
	}
	for ci, name := range report.CoeffNames {
		y := make([]float64, len(report.Points))
		for i, p := range report.Points {
			y[i] = p.Coeffs[ci]
		}
		var cands []perfmodel.Model
		if lin, err := perfmodel.LinFit(x, y); err == nil {
			cands = append(cands, lin)
		}
		if pl, err := perfmodel.PowerLawFit(x, y); err == nil {
			cands = append(cands, pl)
		}
		best := perfmodel.SelectBest(cands, x, y)
		if best == nil {
			return nil, fmt.Errorf("harness: trend: no fit for %s coefficient %s", kernel, name)
		}
		report.Fits = append(report.Fits, TrendFit{
			Coeff: name, Model: best, R2: perfmodel.R2(best, x, y),
		})
	}
	return report, nil
}

// trendModelString renders a trend fit with C (cache kB) as the variable —
// the underlying perfmodel models print their parameter as Q.
func trendModelString(m perfmodel.Model) string {
	return strings.ReplaceAll(m.String(), "Q", "C")
}

// WriteTrendCSV writes the reports as one long-format CSV: one row per
// (kernel, cache size, coefficient) with the averaged value and the trend
// fit's prediction.
func WriteTrendCSV(w io.Writer, reports []*TrendReport) error {
	enc := results.NewCSVEncoder(w)
	if err := enc.Header("kernel", "cache_kb", "n", "coeff", "value", "trend_fit"); err != nil {
		return err
	}
	for _, r := range reports {
		for _, p := range r.Points {
			for ci, name := range r.CoeffNames {
				if err := enc.Encode(results.Row{
					results.F("kernel", string(r.Kernel)),
					results.F("cache_kb", p.CacheKB),
					results.F("n", p.N),
					results.F("coeff", name),
					results.F("value", p.Coeffs[ci]),
					results.F("trend_fit", r.Fits[ci].Model.Predict(float64(p.CacheKB))),
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteTrendReport prints the human-readable trend analysis: per kernel,
// the fitted coefficient-vs-cache-size models and the averaged points they
// came from.
func WriteTrendReport(w io.Writer, reports []*TrendReport) error {
	for ri, r := range reports {
		if ri > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "trend for %s: mean-model coefficients vs cache size (C in kB)\n",
			r.Kernel.RecordName()); err != nil {
			return err
		}
		for _, f := range r.Fits {
			fmt.Fprintf(w, "  %-4s(C) = %-40s [R2=%.4f]\n", f.Coeff, trendModelString(f.Model), f.R2)
		}
		fmt.Fprintf(w, "  %8s %4s", "C_kB", "n")
		for _, name := range r.CoeffNames {
			fmt.Fprintf(w, " %14s", name)
		}
		fmt.Fprintln(w)
		for _, p := range r.Points {
			fmt.Fprintf(w, "  %8d %4d", p.CacheKB, p.N)
			for _, c := range p.Coeffs {
				fmt.Fprintf(w, " %14.6g", c)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
