package harness

import (
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

// TestWriteTrendCSVMultiKernelSingleHeader pins the long-format CSV
// contract: several kernels' reports share one file with exactly one
// header line (the encoder writes it once), matching the pre-TrendAxis
// output byte for byte.
func TestWriteTrendCSVMultiKernelSingleHeader(t *testing.T) {
	t.Parallel()
	mk := func(k Kernel) *TrendReport {
		lin, err := perfmodel.LinFit([]float64{1, 2}, []float64{3, 5})
		if err != nil {
			t.Fatal(err)
		}
		return &TrendReport{
			Kernel: k, Axis: TrendCacheKB,
			CoeffNames: []string{"c0"},
			Points:     []TrendPoint{{X: 128, N: 1, Coeffs: []float64{3}}, {X: 512, N: 1, Coeffs: []float64{5}}},
			Fits:       []TrendFit{{Coeff: "c0", Model: lin}},
		}
	}
	var sb strings.Builder
	if err := WriteTrendCSV(&sb, []*TrendReport{mk(KernelStates), mk(KernelEFM)}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "kernel,cache_kb,n,coeff,value,trend_fit"); n != 1 {
		t.Errorf("%d header lines, want 1:\n%s", n, out)
	}
	if !strings.HasPrefix(out, "kernel,cache_kb,n,coeff,value,trend_fit\n") {
		t.Errorf("missing leading header:\n%s", out)
	}
	if !strings.Contains(out, "\nefm,128,1,c0,") {
		t.Errorf("second kernel's rows missing:\n%s", out)
	}
}
