package harness

import (
	"fmt"
	"io"

	"repro/internal/assembly"
	"repro/internal/perfmodel"
	"repro/internal/results"
)

// ComponentModel is the fitted performance model of one component: the
// paper's Eqs. 1 (mean execution time) and 2 (standard deviation), with
// goodness-of-fit.
type ComponentModel struct {
	Kernel Kernel
	// Mean is the fitted mean-time model T(Q) in microseconds.
	Mean perfmodel.Model
	// Sigma is the fitted standard-deviation model sigma(Q).
	Sigma perfmodel.Model
	// MeanR2 is the coefficient of determination of the mean fit over the
	// grouped means.
	MeanR2 float64
	// Stats holds the grouped per-Q statistics the fits came from.
	Stats []perfmodel.GroupStat
}

// FitModels reproduces the paper's Section 5 regression analysis on a
// sweep: group the mode-mixed samples by Q, then fit the functional forms
// the paper reports — a power law for States' mean, linear fits for the
// flux kernels' means, linear sigma for Godunov, quartic sigma for EFM, and
// a power-law sigma for States.
func FitModels(s *SweepResult) (*ComponentModel, error) {
	q, wall := s.AllSeries()
	if len(q) == 0 {
		return nil, fmt.Errorf("harness: no samples to fit")
	}
	stats := perfmodel.GroupStats(q, wall)
	qm, mean := perfmodel.MeanSeries(stats)
	qs, sd := perfmodel.StdDevSeries(stats)

	cm := &ComponentModel{Kernel: s.Config.Kernel, Stats: stats}
	var err error
	switch s.Config.Kernel {
	case KernelStates:
		var m perfmodel.PowerLaw
		if m, err = perfmodel.PowerLawFit(qm, mean); err != nil {
			return nil, err
		}
		cm.Mean = m
		var sm perfmodel.PowerLaw
		if sm, err = perfmodel.PowerLawFit(qs, sd); err != nil {
			return nil, err
		}
		cm.Sigma = sm
	case KernelGodunov:
		var m perfmodel.Poly
		if m, err = perfmodel.LinFit(qm, mean); err != nil {
			return nil, err
		}
		cm.Mean = m
		var sm perfmodel.Poly
		if sm, err = perfmodel.LinFit(qs, sd); err != nil {
			return nil, err
		}
		cm.Sigma = sm
	case KernelEFM:
		var m perfmodel.Poly
		if m, err = perfmodel.LinFit(qm, mean); err != nil {
			return nil, err
		}
		cm.Mean = m
		// The paper's quartic sigma needs enough grouped sizes to be more
		// than an (oscillating) interpolant; sparse sweeps fall back to a
		// low-order fit.
		deg := 4
		if len(qs) < 10 {
			deg = 2
		}
		if len(qs) <= deg {
			deg = len(qs) - 1
		}
		var sm perfmodel.Poly
		if sm, err = perfmodel.PolyFit(qs, sd, deg); err != nil {
			return nil, err
		}
		cm.Sigma = sm
	default:
		return nil, fmt.Errorf("harness: unknown kernel %q", s.Config.Kernel)
	}
	cm.MeanR2 = perfmodel.R2(cm.Mean, qm, mean)
	return cm, nil
}

// paperEquation returns the paper's published Eq. 1/Eq. 2 expressions for
// comparison in reports.
func paperEquation(k Kernel) (mean, sigma string) {
	switch k {
	case KernelStates:
		return "exp(1.19*log(Q) - 3.68)", "power law (Eq. 2, OCR-garbled in source)"
	case KernelGodunov:
		return "-963 + 0.315*Q", "-526 + 0.152*Q"
	default:
		return "-8.13 + 0.16*Q", "66.7 - 0.015*Q + ... (quartic)"
	}
}

// WriteModelReport prints the paper-vs-measured model comparison (the
// Eq. 1/Eq. 2 reproduction).
func WriteModelReport(w io.Writer, cm *ComponentModel) error {
	pm, ps := paperEquation(cm.Kernel)
	if _, err := fmt.Fprintf(w, "component: %s\n", cm.Kernel.RecordName()); err != nil {
		return err
	}
	fmt.Fprintf(w, "  mean   (paper):    T = %s\n", pm)
	fmt.Fprintf(w, "  mean   (measured): T = %s   [R2=%.4f]\n", cm.Mean, cm.MeanR2)
	fmt.Fprintf(w, "  sigma  (paper):    s = %s\n", ps)
	fmt.Fprintf(w, "  sigma  (measured): s = %s\n", cm.Sigma)
	for _, g := range cm.Stats {
		fmt.Fprintf(w, "    Q=%8.0f  n=%3d  mean=%12.2f us  sigma=%12.2f us  model=%12.2f us\n",
			g.Q, g.N, g.Mean, g.StdDev, cm.Mean.Predict(g.Q))
	}
	return nil
}

// WriteMeanSigmaCSV writes the Fig. 6/7/8 series: per-Q mean, sigma, and
// the fitted models' predictions.
func WriteMeanSigmaCSV(w io.Writer, cm *ComponentModel) error {
	enc := results.NewCSVEncoder(w)
	if err := enc.Header("q", "n", "mean_us", "sigma_us", "mean_fit_us", "sigma_fit_us"); err != nil {
		return err
	}
	for _, g := range cm.Stats {
		if err := enc.Encode(results.Row{
			results.F("q", g.Q), results.F("n", g.N),
			results.F("mean_us", g.Mean), results.F("sigma_us", g.StdDev),
			results.F("mean_fit_us", cm.Mean.Predict(g.Q)),
			results.F("sigma_fit_us", cm.Sigma.Predict(g.Q)),
		}); err != nil {
			return err
		}
	}
	return nil
}

// BuildDual constructs the Fig. 10 composite-model dual from a case-study
// call trace and the fitted component models. Q values come from the mean
// recorded array sizes.
func BuildDual(res *CaseStudyResult, models map[Kernel]*ComponentModel) *assembly.Dual {
	d := assembly.FromTrace(res.Edges)
	attach := func(vertex string, k Kernel) {
		cm, ok := models[k]
		if !ok || d.Vertex(vertex) == nil {
			return
		}
		v := *d.Vertex(vertex)
		v.Compute = cm.Mean
		v.Q = meanRecordedQ(res, k.RecordName())
		d.AddVertex(v)
	}
	attach("sc_proxy", KernelStates)
	attach("g_proxy", KernelGodunov)
	attach("efm_proxy", KernelEFM)
	// The mesh vertex carries a communication model: mean ghost-update MPI
	// time as a constant (its workload parameter is the level, not Q).
	if v := d.Vertex("icc_proxy"); v != nil {
		if rec := res.Record(0, "icc_proxy::ghostUpdate()"); rec != nil && len(rec.Invocations) > 0 {
			var mpi float64
			for i := range rec.Invocations {
				mpi += rec.Invocations[i].MPIUS
			}
			mpi /= float64(len(rec.Invocations))
			nv := *v
			nv.Comm = perfmodel.Poly{Coeffs: []float64{mpi}}
			nv.Q = 1
			d.AddVertex(nv)
		}
	}
	return d
}

// meanRecordedQ averages the Q parameter over a method's invocations on
// rank 0.
func meanRecordedQ(res *CaseStudyResult, method string) float64 {
	rec := res.Record(0, method)
	if rec == nil || len(rec.Invocations) == 0 {
		return 1
	}
	var sum float64
	n := 0
	for i := range rec.Invocations {
		if q, ok := rec.Invocations[i].Param("Q"); ok {
			sum += q
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// FluxSlot builds the paper's implementation-choice slot: GodunovFlux
// (accurate, QoS 1.0) versus EFMFlux (fast, QoS 0.7), from fitted models.
func FluxSlot(vertex string, godunov, efm *ComponentModel) assembly.Slot {
	return assembly.Slot{
		Vertex: vertex,
		Impls: []assembly.Implementation{
			{Name: "GodunovFlux", Compute: godunov.Mean, QoS: 1.0},
			{Name: "EFMFlux", Compute: efm.Mean, QoS: 0.7},
		},
	}
}
