package harness

import (
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

func TestCacheAwareFitExplainsModeSplit(t *testing.T) {
	t.Parallel()
	_, sweeps, _ := sharedFixtures(t)
	sw := sweeps[KernelStates]
	// The sweep must have recorded per-invocation miss deltas.
	sawMisses := false
	for _, p := range sw.Points {
		if p.Misses > 0 {
			sawMisses = true
		}
	}
	if !sawMisses {
		t.Fatal("sweep points carry no PAPI_L2_DCM deltas")
	}
	ml, r2Aware, r2Plain, err := CacheAwareFit(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Coeffs) != 3 {
		t.Fatalf("cache-aware model = %v", ml)
	}
	// Folding the cache information in must explain strictly more variance
	// than Q alone — the Section 6 claim this extension implements.
	if r2Aware <= r2Plain {
		t.Errorf("cache-aware R2 %.4f should beat Q-only R2 %.4f", r2Aware, r2Plain)
	}
	if r2Aware < 0.9 {
		t.Errorf("cache-aware R2 = %.4f, want > 0.9 (DCM explains the mode split)", r2Aware)
	}
	// The miss coefficient must be positive: misses cost time.
	if ml.Coeffs[2] <= 0 {
		t.Errorf("DCM coefficient = %g, want > 0", ml.Coeffs[2])
	}
}

func TestRunCacheStudyCoefficientsMove(t *testing.T) {
	t.Parallel()
	base := fastSweep(KernelStates)
	base.Sizes = LogSizes(4_000, 100_000, 4)
	pts, err := RunCacheStudy(base, []int{128, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("cache points = %d", len(pts))
	}
	// Same functional form (power law), different coefficients: the small
	// cache makes States more expensive across the sweep.
	small := pts[0].Model.Mean
	big := pts[1].Model.Mean
	if _, ok := small.(perfmodel.PowerLaw); !ok {
		t.Fatalf("small-cache model is %T", small)
	}
	const q = 80_000
	if small.Predict(q) <= big.Predict(q) {
		t.Errorf("128 kB model (%.0f us) should exceed 1 MB model (%.0f us) at Q=%d",
			small.Predict(q), big.Predict(q), q)
	}
	var sb strings.Builder
	if err := WriteCacheStudy(&sb, KernelStates, pts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"128 kB", "1024 kB", "sc_proxy::compute()"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("cache study report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestCacheAwareFitEmpty(t *testing.T) {
	t.Parallel()
	if _, _, _, err := CacheAwareFit(&SweepResult{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
