// Package harness drives the paper's evaluation: it runs the case study
// (Section 5) on the simulated platform and regenerates the data behind
// every figure — the Fig. 3 FUNCTION SUMMARY, the Fig. 4/5 States mode
// comparison, the Fig. 6–8 component models (Eqs. 1–2), the Fig. 9
// per-level communication times, and the Fig. 10 composite-model dual.
package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/amr"
	"repro/internal/cca"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/results"
	"repro/internal/tau"
)

// CaseStudyConfig configures one end-to-end run of the paper's application.
type CaseStudyConfig struct {
	// App is the component assembly configuration.
	App components.AppConfig
	// World is the simulated machine (the paper used 3 ranks of a Xeon
	// cluster).
	World mpi.WorldConfig
}

// DefaultCaseStudy returns the calibrated configuration whose profile
// reproduces the Fig. 3 shape. Two calibrations depart from the raw
// platform defaults, both documented in EXPERIMENTS.md:
//
//   - MPI_Init/Finalize are scaled down in proportion to the shorter
//     virtual run (the paper's 0.66 s Init was ~0.6% of its 112 s main;
//     the same share is kept here), and
//   - the interconnect is the loaded-cluster model, putting the
//     MPI_Waitsome share near the paper's ~25%.
func DefaultCaseStudy() CaseStudyConfig {
	app := components.DefaultAppConfig()
	app.Mesh.BaseNx, app.Mesh.BaseNy = 96, 24
	app.Mesh.TileNx, app.Mesh.TileNy = 24, 12
	app.Driver.Steps = 24
	world := mpi.DefaultConfig()
	world.InitUS = 25_000
	world.FinalizeUS = 6_000
	world.Net.LatencyUS = 72
	world.Net.BytesPerUS = 9.5
	return CaseStudyConfig{App: app, World: world}
}

// CaseStudyResult collects everything the figures need from one run.
type CaseStudyResult struct {
	Config CaseStudyConfig
	// Profiles holds one TAU profile per rank.
	Profiles []*tau.Profile
	// Records holds each rank's Mastermind records (nil if unmonitored).
	Records [][]*core.Record
	// Edges is rank 0's recorded call trace.
	Edges map[core.CallEdge]int
	// ImageNx, ImageNy, Image hold the final density field at finest
	// resolution (Fig. 1).
	ImageNx, ImageNy int
	Image            []float64
	// AssemblyDOT is the component wiring diagram (Fig. 2).
	AssemblyDOT string
	// Stats summarizes the final hierarchy.
	Stats []amr.LevelStats
	// StepsTaken and SimTime report the driver's progress.
	StepsTaken int
	SimTime    float64
}

// RunCaseStudy executes the assembled application under SCMD and gathers
// the per-rank measurements.
func RunCaseStudy(cfg CaseStudyConfig) (*CaseStudyResult, error) {
	w := mpi.NewWorld(cfg.World)
	res := &CaseStudyResult{
		Config:  cfg,
		Records: make([][]*core.Record, cfg.World.Procs),
	}
	err := cca.RunSCMD(w, func(f *cca.Framework, r *mpi.Rank) error {
		app, err := components.BuildApp(f, cfg.App)
		if err != nil {
			return err
		}
		if err := app.Go(); err != nil {
			return err
		}
		// Post-processing: keep its collectives out of the profile using
		// TAU's runtime group control.
		r.Prof.SetGroupEnabled("MPI", false)
		nx, ny, img := app.Mesh.Hierarchy().DensityImage()
		r.Prof.SetGroupEnabled("MPI", true)

		res.Records[r.Rank()] = app.Records()
		if r.Rank() == 0 {
			res.ImageNx, res.ImageNy, res.Image = nx, ny, img
			if app.Core() != nil {
				res.Edges = app.Core().Edges()
			}
			res.Stats = app.Mesh.Stats()
			res.StepsTaken = app.Driver.StepsTaken
			res.SimTime = app.Driver.SimTime
			var sb strings.Builder
			if err := f.WriteDOT(&sb, "case-study-assembly"); err != nil {
				return err
			}
			res.AssemblyDOT = sb.String()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Profiles = w.Profiles()
	return res, nil
}

// MeanSummary computes the cross-rank FUNCTION SUMMARY rows (Fig. 3).
func (r *CaseStudyResult) MeanSummary() []tau.SummaryRow {
	return tau.MeanSummary(r.Profiles)
}

// WriteProfile writes the Fig. 3 table.
func (r *CaseStudyResult) WriteProfile(w io.Writer) error {
	return tau.WriteFunctionSummary(w, "mean", r.MeanSummary())
}

// TimerShare returns a timer's mean inclusive time as a fraction of the
// top-level (maximum inclusive) timer — the Fig. 3 %Time column.
func (r *CaseStudyResult) TimerShare(name string) float64 {
	for _, row := range r.MeanSummary() {
		if row.Name == name {
			return row.PercentTime / 100
		}
	}
	return 0
}

// Record returns rank's record for a monitored method, or nil.
func (r *CaseStudyResult) Record(rank int, method string) *core.Record {
	for _, rec := range r.Records[rank] {
		if rec.Method == method {
			return rec
		}
	}
	return nil
}

// GhostCommPoint is one Fig. 9 sample: the message-passing time of one
// ghost-cell update at one level on one rank.
type GhostCommPoint struct {
	Rank       int
	Level      int
	Invocation int
	MPIUS      float64
	WallUS     float64
}

// GhostCommSeries extracts the Fig. 9 data from the icc_proxy records.
func (r *CaseStudyResult) GhostCommSeries() []GhostCommPoint {
	var out []GhostCommPoint
	for rank := range r.Records {
		rec := r.Record(rank, "icc_proxy::ghostUpdate()")
		if rec == nil {
			continue
		}
		perLevel := map[int]int{}
		for i := range rec.Invocations {
			inv := &rec.Invocations[i]
			lvl, ok := inv.Param("level")
			if !ok {
				continue
			}
			l := int(lvl)
			out = append(out, GhostCommPoint{
				Rank: rank, Level: l, Invocation: perLevel[l],
				MPIUS: inv.MPIUS, WallUS: inv.WallUS,
			})
			perLevel[l]++
		}
	}
	return out
}

// WriteGhostCommCSV writes the Fig. 9 series.
func (r *CaseStudyResult) WriteGhostCommCSV(w io.Writer) error {
	enc := results.NewCSVEncoder(w)
	if err := enc.Header("rank", "level", "invocation", "mpi_us", "wall_us"); err != nil {
		return err
	}
	for _, p := range r.GhostCommSeries() {
		if err := enc.Encode(results.Row{
			results.F("rank", p.Rank), results.F("level", p.Level),
			results.F("invocation", p.Invocation),
			results.F("mpi_us", p.MPIUS), results.F("wall_us", p.WallUS),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the case study's telemetry rows for streaming into a
// results.Sink: the cross-rank FUNCTION SUMMARY, one row per profiled
// timer.
func (r *CaseStudyResult) Rows() []results.Row {
	summary := r.MeanSummary()
	rows := make([]results.Row, len(summary))
	for i, row := range summary {
		rows[i] = results.Row{
			results.F("timer", row.Name), results.F("group", row.Group),
			results.F("percent_time", row.PercentTime),
			results.F("inclusive_us", row.InclusiveUS),
			results.F("exclusive_us", row.ExclusiveUS),
			results.F("calls", row.Calls),
			results.F("us_per_call", row.MicrosPerCall),
		}
	}
	return rows
}

// WritePGM renders the density image as a portable graymap (Fig. 1's
// density snapshot; darker = denser).
func (r *CaseStudyResult) WritePGM(w io.Writer) error {
	if len(r.Image) == 0 {
		return fmt.Errorf("harness: no density image")
	}
	minV, maxV := r.Image[0], r.Image[0]
	for _, v := range r.Image {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", r.ImageNx, r.ImageNy); err != nil {
		return err
	}
	// PGM rows run top to bottom; our j runs bottom to top.
	for j := r.ImageNy - 1; j >= 0; j-- {
		for i := 0; i < r.ImageNx; i++ {
			v := r.Image[j*r.ImageNx+i]
			g := 255 - int((v-minV)/span*255)
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%d", g)
		}
		fmt.Fprintln(w)
	}
	return nil
}
