package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/results/store"
)

// This file carries the observability layer's hard constraint: enabling
// the tracer and metrics registry changes no rendered byte, no scenario
// key, no checkpoint hash and no seed. The proof runs the golden trend
// grid twice — unobserved and observed — and compares everything the
// repository treats as output.

// renderTrendWithRows streams the golden grid into a CSV shard sink and
// returns the rendered trend.csv/trend.txt plus the sink directory.
func renderTrendWithRows(t *testing.T, base SweepConfig, g campaign.Grid, dir string) (csv, txt []byte) {
	t.Helper()
	rowsDir := filepath.Join(dir, "rows")
	sink, err := results.NewCSVShardSink(rowsDir)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := StreamSweepGrid(context.Background(), campaign.Config{Workers: 2, Sink: sink}, base, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	reports, err := BuildTrends(pts, TrendCacheKB)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, txtBuf bytes.Buffer
	if err := WriteTrendCSV(&csvBuf, reports); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrendReport(&txtBuf, reports); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), txtBuf.Bytes()
}

// readDirFiles returns name -> contents for every file under dir.
func readDirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

func TestObservedRunByteIdentical(t *testing.T) {
	base, grid := goldenTrendGrid(t)
	// The optimistic scheduler is the instrumentation-heavy path: spec
	// instants, rollback markers and the SpecStats fold all fire.
	base = withSched(base, mpi.OptimisticParallel)
	grid.Base = base.World

	scs, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	hashBefore := map[string]string{}
	seedBefore := map[string]int64{}
	for _, sc := range scs {
		j := StreamJob(base, sc)
		hashBefore[j.Key] = j.Hash
		seedBefore[sc.Key] = sc.World.Seed
	}

	offDir := t.TempDir()
	csvOff, txtOff := renderTrendWithRows(t, base, grid, offDir)

	o := obs.New(obs.Options{})
	obs.Enable(o)
	defer obs.Disable()

	onDir := t.TempDir()
	csvOn, txtOn := renderTrendWithRows(t, base, grid, onDir)

	if !bytes.Equal(csvOff, csvOn) {
		t.Errorf("trend.csv differs with observability enabled:\noff:\n%s\non:\n%s", csvOff, csvOn)
	}
	if !bytes.Equal(txtOff, txtOn) {
		t.Errorf("trend.txt differs with observability enabled")
	}

	// Scenario keys, derived seeds and checkpoint hashes must not see
	// the observer: re-expand the grid with it enabled and compare.
	scsOn, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scsOn) != len(scs) {
		t.Fatalf("grid expanded to %d scenarios observed, %d unobserved", len(scsOn), len(scs))
	}
	for i, sc := range scsOn {
		if sc.Key != scs[i].Key {
			t.Errorf("scenario %d key changed: %s vs %s", i, sc.Key, scs[i].Key)
		}
		j := StreamJob(base, sc)
		if j.Hash != hashBefore[j.Key] {
			t.Errorf("%s: checkpoint hash changed when observability was enabled", j.Key)
		}
		if sc.World.Seed != seedBefore[sc.Key] {
			t.Errorf("%s: derived seed changed when observability was enabled", sc.Key)
		}
	}

	// Every emitted shard — including the spec/ telemetry shards the
	// optimistic grid adds — must be byte-identical.
	rowsOff := readDirFiles(t, filepath.Join(offDir, "rows"))
	rowsOn := readDirFiles(t, filepath.Join(onDir, "rows"))
	if len(rowsOff) == 0 {
		t.Fatal("no row shards emitted")
	}
	specShards := 0
	for name, off := range rowsOff {
		on, ok := rowsOn[name]
		if !ok {
			t.Errorf("shard %s missing from observed run", name)
			continue
		}
		if !bytes.Equal(off, on) {
			t.Errorf("shard %s differs with observability enabled", name)
		}
		if len(name) > 5 && name[:5] == "spec_" {
			specShards++
		}
	}
	if len(rowsOn) != len(rowsOff) {
		t.Errorf("observed run emitted %d shards, unobserved %d", len(rowsOn), len(rowsOff))
	}
	if specShards == 0 {
		t.Error("optimistic grid emitted no spec_ telemetry shards")
	}

	// The observed run must actually have observed something, and its
	// trace must be schema-valid — silence here would mean the identity
	// above proved nothing.
	tf := o.Tracer().Export()
	if err := obs.ValidateTrace(tf); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	for _, p := range tf.Processes() {
		procs[p] = true
	}
	for _, want := range []string{"campaign", "mpi"} {
		if !procs[want] {
			t.Errorf("trace missing %q process tracks (got %v)", want, tf.Processes())
		}
	}
	if o.Metrics().Counter("campaign_jobs_settled_total").Value() == 0 {
		t.Error("campaign metrics recorded nothing")
	}
	if o.Metrics().Counter("mpi_worlds_total").Value() == 0 {
		t.Error("mpi metrics recorded nothing")
	}
}

// TestSpecRowCheckpointReplay proves a resumed campaign replays the
// spec telemetry row from the checkpoint byte-for-byte instead of
// dropping it or re-running the sweep.
func TestSpecRowCheckpointReplay(t *testing.T) {
	t.Parallel()
	base, grid := goldenTrendGrid(t)
	base = withSched(base, mpi.OptimisticParallel)
	grid.Base = base.World
	grid.Axes = []campaign.Dimension{campaign.CacheAxis(128)}
	grid.Replications = 1

	st, err := store.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	run := func(dir string) map[string][]byte {
		rowsDir := filepath.Join(dir, "rows")
		sink, err := results.NewCSVShardSink(rowsDir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := StreamSweepGrid(context.Background(), campaign.Config{Store: st, Sink: sink}, base, grid); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return readDirFiles(t, rowsDir)
	}
	fresh := run(t.TempDir())
	replayed := run(t.TempDir())
	if len(fresh) != len(replayed) {
		t.Fatalf("fresh run emitted %d shards, replayed %d", len(fresh), len(replayed))
	}
	spec := 0
	for name, a := range fresh {
		if !bytes.Equal(a, replayed[name]) {
			t.Errorf("shard %s differs between fresh and replayed run", name)
		}
		if len(name) > 5 && name[:5] == "spec_" {
			spec++
		}
	}
	if spec == 0 {
		t.Error("no spec shards to compare")
	}
}

// TestSerialSweepEmitsNoSpecRow pins the other half of the contract:
// serial jobs keep their historical hashes and emit no spec shard, so
// the golden serial fingerprints stay stable.
func TestSerialSweepEmitsNoSpecRow(t *testing.T) {
	t.Parallel()
	base, grid := goldenTrendGrid(t)
	grid.Axes = []campaign.Dimension{campaign.CacheAxis(128)}
	grid.Replications = 1
	dir := t.TempDir()
	rowsDir := filepath.Join(dir, "rows")
	sink, err := results.NewCSVShardSink(rowsDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StreamSweepGrid(context.Background(), campaign.Config{Sink: sink}, base, grid); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	for name := range readDirFiles(t, rowsDir) {
		if len(name) > 5 && name[:5] == "spec_" {
			t.Errorf("serial grid emitted spec shard %s", name)
		}
	}
	scs, err := grid.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs {
		if got, want := StreamJob(base, sc).Hash, jobHash("gridpoint", base, sc); got != want {
			t.Errorf("%s: serial hash salted: got %s want %s", sc.Key, got, want)
		}
	}
}
