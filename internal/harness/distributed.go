package harness

import (
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/results/store"
	"repro/internal/results/store/lease"
)

// This file wires the harness's campaigns for coordinator-free
// distributed execution: N independent processes pointed at one shared
// checkpoint store directory partition a job grid through the lease claim
// protocol, each producing the full output set (replayed from the store
// for jobs another process ran) byte-identical to a single-process run.

// DistributedConfig equips a campaign config for multi-process execution
// against the shared store directory: it opens the store, attaches a
// lease manager under the given worker identity, and returns the config
// with Store and Claimer set plus the manager. Close the manager after
// the campaign returns; its Executed list is this process's share of the
// partition. An empty owner derives a host-pid identity — stable for the
// process's lifetime, distinct across a fleet.
func DistributedConfig(cc campaign.Config, dir, owner string, opts lease.Options) (campaign.Config, *lease.Manager, error) {
	if owner == "" {
		owner = DefaultOwner()
	}
	st, err := store.Open(dir)
	if err != nil {
		return cc, nil, err
	}
	mgr, err := lease.Open(st, owner, opts)
	if err != nil {
		return cc, nil, err
	}
	cc.Store = st
	cc.Claimer = mgr
	return cc, mgr, nil
}

// DefaultOwner derives a worker identity from the host name and process
// id — unique across a fleet of simultaneously live workers, which is all
// the lease protocol needs.
//
//repolint:allow wallclock -- the owner id is process identity by design; it names lease and audit files, never simulated state
func DefaultOwner() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
