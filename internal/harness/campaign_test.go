package harness

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
)

// tinySweep is the smallest sweep that still exercises both modes and the
// model fits — campaign correctness tests re-run it several times.
func tinySweep(k Kernel) SweepConfig {
	cfg := DefaultSweep(k)
	cfg.Sizes = LogSizes(2_000, 30_000, 3)
	cfg.Reps = 1
	cfg.World.Procs = 2
	return cfg
}

// TestCampaignWorkerCountInvariance is the engine's core guarantee: a
// campaign's results are byte-identical whether it runs on one worker or
// many, because every job owns a self-contained simulated machine seeded
// from its config, never from scheduling.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	kbs := []int{128, 512}

	serial, err := RunCacheStudyCampaign(context.Background(), campaign.Config{Workers: 1}, base, kbs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCacheStudyCampaign(context.Background(), campaign.Config{Workers: 4}, base, kbs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("cache study differs between 1 and 4 workers")
	}
	var s1, s4 strings.Builder
	if err := WriteCacheStudy(&s1, KernelStates, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCacheStudy(&s4, KernelStates, parallel); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s4.String() {
		t.Errorf("cache study report not byte-identical:\n%s\nvs\n%s", s1.String(), s4.String())
	}
	if serial[0].CacheKB != 128 || serial[1].CacheKB != 512 {
		t.Errorf("points out of submission order: %d, %d", serial[0].CacheKB, serial[1].CacheKB)
	}
}

// TestRunSweepsMatchesSerial checks the parallel multi-kernel driver
// against direct serial RunSweep calls.
func TestRunSweepsMatchesSerial(t *testing.T) {
	t.Parallel()
	cfgs := []SweepConfig{tinySweep(KernelStates), tinySweep(KernelEFM)}
	got, err := RunSweeps(context.Background(), campaign.Config{Workers: 2}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("sweep %d (%s) differs from serial run", i, cfg.Kernel)
		}
	}
}

// TestRunSweepGrid covers the scenario cross product: per-scenario seeds
// must make replications statistically independent while the whole grid
// stays deterministic across worker counts.
func TestRunSweepGrid(t *testing.T) {
	t.Parallel()
	base := tinySweep(KernelStates)
	g := campaign.Grid{
		Base:         base.World,
		Axes:         []campaign.Dimension{campaign.CacheAxis(128, 512)},
		Replications: 2,
		BaseSeed:     7,
	}
	run := func(workers int) []GridSweep {
		pts, err := RunSweepGrid(context.Background(), campaign.Config{Workers: workers}, base, g)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	one := run(1)
	many := run(4)
	if len(one) != 4 {
		t.Fatalf("%d grid points, want 4", len(one))
	}
	if !reflect.DeepEqual(one, many) {
		t.Error("grid study differs between 1 and 4 workers")
	}
	scs, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range one {
		if p.Scenario.Key != scs[i].Key {
			t.Errorf("point %d key %s, want %s", i, p.Scenario.Key, scs[i].Key)
		}
		if p.Model == nil || len(p.Result.Points) == 0 {
			t.Errorf("point %d empty", i)
		}
	}
	// Replications derive distinct, deterministic seeds from the base seed
	// and the scenario key. (Sweep timings themselves are shape-driven and
	// seed-invariant; the seed matters where noise enters, e.g. the
	// network — see TestCaseStudySeedSensitivity.)
	if one[0].Scenario.World.Seed == one[1].Scenario.World.Seed {
		t.Error("replications share a seed")
	}
}

// TestCaseStudySeedSensitivity pins down where per-scenario seeds matter:
// the interconnect's seeded load noise. Two case-study runs differing only
// in seed must disagree on communication time, while replaying either seed
// reproduces it exactly (determinism is per (config, seed), never per
// schedule).
func TestCaseStudySeedSensitivity(t *testing.T) {
	t.Parallel()
	cfg1 := fastCaseStudy()
	cfg1.World.Seed = 11
	cfg2 := fastCaseStudy()
	cfg2.World.Seed = 22
	jobs := []campaign.Job{
		CaseStudyJob("s11", cfg1),
		CaseStudyJob("s11b", cfg1),
		CaseStudyJob("s22", cfg2),
	}
	res, err := campaign.Run(context.Background(), campaign.Config{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	wait := func(i int) float64 {
		return res[i].Value.(*CaseStudyResult).TimerShare("MPI_Waitsome()")
	}
	if wait(0) != wait(1) {
		t.Errorf("same seed, different Waitsome share: %v vs %v", wait(0), wait(1))
	}
	if wait(0) == wait(2) {
		t.Error("different seeds produced identical Waitsome share")
	}
}

// TestCampaignJobFailurePropagates checks error aggregation through the
// harness adapters: an impossible sweep fails its job and the campaign
// reports it.
func TestCampaignJobFailurePropagates(t *testing.T) {
	t.Parallel()
	if _, err := RunSweeps(context.Background(), campaign.Config{}, []SweepConfig{{Kernel: KernelStates}}); err == nil {
		t.Fatal("empty sweep config accepted")
	}
}
