package harness

import (
	"context"
	"fmt"

	"repro/internal/campaign"
)

// This file adapts the experiment drivers to the campaign engine: every
// sweep, case study and model fit becomes a campaign.Job owning its own
// simulated machine, so the paper's whole evaluation — three kernel
// sweeps, the case study, the cache study — runs as one parallel job
// graph. Worker count never changes results: each job's world draws its
// randomness from its own config seed.

// SweepJob wraps RunSweep as a campaign job under the given key.
func SweepJob(key string, cfg SweepConfig) campaign.Job {
	return campaign.Job{Key: key, Run: func(context.Context, map[string]any) (any, error) {
		return RunSweep(cfg)
	}}
}

// CaseStudyJob wraps RunCaseStudy as a campaign job under the given key.
func CaseStudyJob(key string, cfg CaseStudyConfig) campaign.Job {
	return campaign.Job{Key: key, Run: func(context.Context, map[string]any) (any, error) {
		return RunCaseStudy(cfg)
	}}
}

// ModelJob fits Eq. 1/2 models to the sweep produced by the job named
// sweepKey.
func ModelJob(key, sweepKey string) campaign.Job {
	return campaign.Job{Key: key, After: []string{sweepKey},
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			return FitModels(deps[sweepKey].(*SweepResult))
		}}
}

// RunSweeps measures several kernels concurrently, one campaign job per
// sweep. Results come back in input order and are byte-identical to
// looping RunSweep serially.
func RunSweeps(ctx context.Context, cc campaign.Config, cfgs []SweepConfig) ([]*SweepResult, error) {
	jobs := make([]campaign.Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = SweepJob(fmt.Sprintf("sweep/%d/%s", i, cfg.Kernel), cfg)
	}
	res, err := campaign.Run(ctx, cc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*SweepResult, len(res))
	for i, r := range res {
		out[i] = r.Value.(*SweepResult)
	}
	return out, nil
}

// CachePointJob runs the base sweep under one cache size and fits the
// kernel model — one point of the Section 6 cache study.
func CachePointJob(key string, base SweepConfig, cacheKB int) campaign.Job {
	return campaign.Job{Key: key, Run: func(context.Context, map[string]any) (any, error) {
		cfg := base
		cfg.World.Cache.SizeBytes = cacheKB * 1024
		sw, err := RunSweep(cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: cache study at %d kB: %w", cacheKB, err)
		}
		cm, err := FitModels(sw)
		if err != nil {
			return nil, fmt.Errorf("harness: cache study fit at %d kB: %w", cacheKB, err)
		}
		return CachePoint{CacheKB: cacheKB, Model: cm}, nil
	}}
}

// RunCacheStudyCampaign is RunCacheStudy on the campaign engine: one job
// per cache size, executed by cc.Workers workers. Points come back in
// cacheKBs order regardless of which finishes first.
func RunCacheStudyCampaign(ctx context.Context, cc campaign.Config, base SweepConfig, cacheKBs []int) ([]CachePoint, error) {
	jobs := make([]campaign.Job, len(cacheKBs))
	for i, kb := range cacheKBs {
		jobs[i] = CachePointJob(fmt.Sprintf("cache/%dkB", kb), base, kb)
	}
	res, err := campaign.Run(ctx, cc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]CachePoint, len(res))
	for i, r := range res {
		out[i] = r.Value.(CachePoint)
	}
	return out, nil
}

// GridSweep is one grid scenario's measured and fitted outcome.
type GridSweep struct {
	// Scenario locates the point in the grid.
	Scenario campaign.Scenario
	// Result is the scenario's sweep.
	Result *SweepResult
	// Model is the Eq. 1/2 fit of that sweep.
	Model *ComponentModel
}

// RunSweepGrid expands a scenario grid into sweep-and-fit jobs for the
// base config's kernel and runs them as one campaign. The i-th returned
// point corresponds to the i-th expanded scenario.
func RunSweepGrid(ctx context.Context, cc campaign.Config, base SweepConfig, g campaign.Grid) ([]GridSweep, error) {
	scs := g.Scenarios()
	jobs := make([]campaign.Job, len(scs))
	for i, sc := range scs {
		sc := sc
		jobs[i] = campaign.Job{Key: sc.Key, Run: func(context.Context, map[string]any) (any, error) {
			cfg := base
			cfg.World = sc.World
			sw, err := RunSweep(cfg)
			if err != nil {
				return nil, err
			}
			cm, err := FitModels(sw)
			if err != nil {
				return nil, err
			}
			return GridSweep{Scenario: sc, Result: sw, Model: cm}, nil
		}}
	}
	res, err := campaign.Run(ctx, cc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]GridSweep, len(res))
	for i, r := range res {
		out[i] = r.Value.(GridSweep)
	}
	return out, nil
}
