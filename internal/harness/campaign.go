package harness

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/components"
	"repro/internal/mpi"
	"repro/internal/results"
)

// This file adapts the experiment drivers to the campaign engine: every
// sweep, case study and model fit becomes a campaign.Job owning its own
// simulated machine, so the paper's whole evaluation — three kernel
// sweeps, the case study, the cache study — runs as one parallel job
// graph. Worker count never changes results: each job's world draws its
// randomness from its own config seed.
//
// Every job carries a checkpoint hash plus encode/decode hooks, so a
// campaign.Config with a Store resumes an interrupted run without
// re-executing finished jobs; and measurement jobs stream their telemetry
// rows to the campaign sink (campaign.Emit), both live and when replayed
// from the store.

// emitRows streams rows to the ambient campaign sink under key.
func emitRows(ctx context.Context, key string, rows []results.Row) error {
	for _, row := range rows {
		if err := campaign.Emit(ctx, key, row); err != nil {
			return err
		}
	}
	return nil
}

// replayRows is emitRows for Decode hooks: a failure is wrapped with
// campaign.ErrReplay so the campaign fails the job loudly instead of
// re-running it and duplicating the rows already replayed into the sink.
func replayRows(ctx context.Context, key string, rows []results.Row) error {
	if err := emitRows(ctx, key, rows); err != nil {
		return fmt.Errorf("%w: %w", campaign.ErrReplay, err)
	}
	return nil
}

// specKind salts a sweep job's checkpoint-hash kind when its world runs a
// non-serial scheduler. Those jobs emit (and must replay) a
// speculation-telemetry row under SpecKey whose column set defines the
// salt generation — "+spec2" added the adaptive-window and
// speculative-collective columns — so payloads stored under an older row
// schema re-run once; serial jobs keep their byte-stable hashes, and the
// golden grid fingerprints with them.
func specKind(kind string, w mpi.WorldConfig) string {
	if w.Sched != mpi.Serial {
		return kind + "+spec2"
	}
	return kind
}

// emitSpecRow streams the sweep's scheduler-telemetry row under the job's
// spec key. Serial sweeps emit nothing: their telemetry is identically
// zero and the row would perturb the byte-compared serial shard set.
func emitSpecRow(ctx context.Context, jobKey string, sw *SweepResult) error {
	if sw.Config.World.Sched == mpi.Serial {
		return nil
	}
	return campaign.Emit(ctx, SpecKey(jobKey), sw.SpecRow())
}

// replaySpecRow is emitSpecRow for Decode hooks, wrapping failures with
// campaign.ErrReplay like replayRows.
func replaySpecRow(ctx context.Context, jobKey string, sw *SweepResult) error {
	if err := emitSpecRow(ctx, jobKey, sw); err != nil {
		return fmt.Errorf("%w: %w", campaign.ErrReplay, err)
	}
	return nil
}

// SweepJob wraps RunSweep as a checkpointable campaign job under the given
// key, emitting the sweep's telemetry rows to the campaign sink (plus, for
// non-serial worlds, the speculation-telemetry row under SpecKey).
func SweepJob(key string, cfg SweepConfig) campaign.Job {
	return campaign.Job{
		Key:    key,
		Hash:   jobHash(specKind("sweep", cfg.World), cfg),
		Encode: encodeGob,
		Decode: func(ctx context.Context, data []byte) (any, error) {
			sw, err := decodeGob[*SweepResult](data)
			if err != nil {
				return nil, err
			}
			if err := replayRows(ctx, key, sw.Rows()); err != nil {
				return sw, err
			}
			return sw, replaySpecRow(ctx, key, sw)
		},
		Run: func(ctx context.Context, _ map[string]any) (any, error) {
			sw, err := RunSweep(cfg)
			if err != nil {
				return nil, err
			}
			if err := emitRows(ctx, key, sw.Rows()); err != nil {
				return nil, err
			}
			return sw, emitSpecRow(ctx, key, sw)
		},
	}
}

// CaseStudyJob wraps RunCaseStudy as a checkpointable campaign job under
// the given key, emitting the FUNCTION SUMMARY rows to the campaign sink.
func CaseStudyJob(key string, cfg CaseStudyConfig) campaign.Job {
	return campaign.Job{
		Key:    key,
		Hash:   jobHash("case", cfg),
		Encode: encodeGob,
		Decode: func(ctx context.Context, data []byte) (any, error) {
			res, err := decodeGob[*CaseStudyResult](data)
			if err != nil {
				return nil, err
			}
			return res, replayRows(ctx, key, res.Rows())
		},
		Run: func(ctx context.Context, _ map[string]any) (any, error) {
			res, err := RunCaseStudy(cfg)
			if err != nil {
				return nil, err
			}
			return res, emitRows(ctx, key, res.Rows())
		},
	}
}

// ModelJob fits Eq. 1/2 models to the sweep produced by the job named
// sweepKey. The sweep's config makes the fit checkpointable: the fit is a
// pure function of the sweep, which is itself a pure function of cfg.
func ModelJob(key, sweepKey string, cfg SweepConfig) campaign.Job {
	return campaign.Job{Key: key, After: []string{sweepKey},
		Hash:   jobHash("model", cfg),
		Encode: encodeGob,
		Decode: func(_ context.Context, data []byte) (any, error) {
			return decodeGob[*ComponentModel](data)
		},
		Run: func(_ context.Context, deps map[string]any) (any, error) {
			return FitModels(deps[sweepKey].(*SweepResult))
		}}
}

// RunSweeps measures several kernels concurrently, one campaign job per
// sweep. Results come back in input order and are byte-identical to
// looping RunSweep serially.
func RunSweeps(ctx context.Context, cc campaign.Config, cfgs []SweepConfig) ([]*SweepResult, error) {
	jobs := make([]campaign.Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = SweepJob(fmt.Sprintf("sweep/%d/%s", i, cfg.Kernel), cfg)
	}
	res, err := campaign.Run(ctx, cc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*SweepResult, len(res))
	for i, r := range res {
		out[i] = r.Value.(*SweepResult)
	}
	return out, nil
}

// CachePointJob runs the base sweep under one cache size and fits the
// kernel model — one point of the Section 6 cache study.
func CachePointJob(key string, base SweepConfig, cacheKB int) campaign.Job {
	return campaign.Job{
		Key:    key,
		Hash:   jobHash("cachepoint", base, cacheKB),
		Encode: encodeGob,
		Decode: func(_ context.Context, data []byte) (any, error) {
			return decodeGob[CachePoint](data)
		},
		Run: func(context.Context, map[string]any) (any, error) {
			cfg := base
			cfg.World.Cache.SizeBytes = cacheKB * 1024
			sw, err := RunSweep(cfg)
			if err != nil {
				return nil, fmt.Errorf("harness: cache study at %d kB: %w", cacheKB, err)
			}
			cm, err := FitModels(sw)
			if err != nil {
				return nil, fmt.Errorf("harness: cache study fit at %d kB: %w", cacheKB, err)
			}
			return CachePoint{CacheKB: cacheKB, Model: cm}, nil
		}}
}

// RunCacheStudyCampaign is RunCacheStudy on the campaign engine: one job
// per cache size, executed by cc.Workers workers. Points come back in
// cacheKBs order regardless of which finishes first.
func RunCacheStudyCampaign(ctx context.Context, cc campaign.Config, base SweepConfig, cacheKBs []int) ([]CachePoint, error) {
	jobs := make([]campaign.Job, len(cacheKBs))
	for i, kb := range cacheKBs {
		jobs[i] = CachePointJob(fmt.Sprintf("cache/%dkB", kb), base, kb)
	}
	res, err := campaign.Run(ctx, cc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]CachePoint, len(res))
	for i, r := range res {
		out[i] = r.Value.(CachePoint)
	}
	return out, nil
}

// scenarioSweepConfig specializes the base sweep to one grid scenario: the
// scenario's world, plus its flux-axis coordinate, which selects the
// measured kernel ("godunov", "efm", "states"; an absent axis keeps the
// base kernel).
func scenarioSweepConfig(base SweepConfig, sc campaign.Scenario) (SweepConfig, error) {
	cfg := base
	cfg.World = sc.World
	switch flux := sc.Label(campaign.AxisFlux); flux {
	case "":
	case "godunov":
		cfg.Kernel = KernelGodunov
	case "efm":
		cfg.Kernel = KernelEFM
	case "states":
		cfg.Kernel = KernelStates
	default:
		return cfg, fmt.Errorf("harness: unknown flux dimension %q in scenario %q", flux, sc.Key)
	}
	return cfg, nil
}

// CaseScenarioConfig specializes a case-study config to one grid scenario:
// the scenario's world plus the app-level axes — the mesh coordinate sets
// the base grid, the flux coordinate selects the assembly's flux
// implementation.
func CaseScenarioConfig(base CaseStudyConfig, sc campaign.Scenario) (CaseStudyConfig, error) {
	cfg := base
	cfg.World = sc.World
	if c, ok := sc.Coord(campaign.AxisMesh); ok {
		mesh, isMesh := c.Value.(campaign.MeshSize)
		if !isMesh {
			return cfg, fmt.Errorf("harness: mesh axis value %T in scenario %q, want campaign.MeshSize", c.Value, sc.Key)
		}
		cfg.App.Mesh.BaseNx, cfg.App.Mesh.BaseNy = mesh.Nx, mesh.Ny
	}
	switch flux := sc.Label(campaign.AxisFlux); flux {
	case "":
	case "godunov":
		cfg.App.Flux = components.Godunov
	case "efm":
		cfg.App.Flux = components.EFM
	default:
		return cfg, fmt.Errorf("harness: unknown flux dimension %q in scenario %q", flux, sc.Key)
	}
	return cfg, nil
}

// CaseGridJob runs the case study under one grid scenario (world, mesh and
// flux dimensions applied) as a checkpointable campaign job.
func CaseGridJob(base CaseStudyConfig, sc campaign.Scenario) (campaign.Job, error) {
	cfg, err := CaseScenarioConfig(base, sc)
	if err != nil {
		return campaign.Job{}, err
	}
	return CaseStudyJob(sc.Key, cfg), nil
}

// GridSweep is one grid scenario's measured and fitted outcome.
type GridSweep struct {
	// Scenario locates the point in the grid.
	Scenario campaign.Scenario
	// Result is the scenario's sweep.
	Result *SweepResult
	// Model is the Eq. 1/2 fit of that sweep.
	Model *ComponentModel
}

// RunSweepGrid expands a scenario grid into sweep-and-fit jobs for the
// base config's kernel (the flux dimension, when swept, overrides the
// kernel per scenario) and runs them as one campaign. The i-th returned
// point corresponds to the i-th expanded scenario. Each GridSweep buffers
// its whole SweepResult; for grids too large for that, use StreamSweepGrid.
func RunSweepGrid(ctx context.Context, cc campaign.Config, base SweepConfig, g campaign.Grid) ([]GridSweep, error) {
	scs, err := g.Scenarios()
	if err != nil {
		return nil, err
	}
	jobs := make([]campaign.Job, len(scs))
	for i, sc := range scs {
		sc := sc
		jobs[i] = campaign.Job{
			Key:    sc.Key,
			Hash:   jobHash(specKind("gridsweep", sc.World), base, sc),
			Encode: encodeGob,
			Decode: func(ctx context.Context, data []byte) (any, error) {
				gs, err := decodeGob[GridSweep](data)
				if err != nil {
					return nil, err
				}
				// Trust the current expansion for the coordinates; stored
				// payloads may predate the Dimension redesign.
				gs.Scenario = sc
				if err := replayRows(ctx, sc.Key, gs.Result.Rows()); err != nil {
					return gs, err
				}
				return gs, replaySpecRow(ctx, sc.Key, gs.Result)
			},
			Run: func(ctx context.Context, _ map[string]any) (any, error) {
				cfg, err := scenarioSweepConfig(base, sc)
				if err != nil {
					return nil, err
				}
				sw, err := RunSweep(cfg)
				if err != nil {
					return nil, err
				}
				if err := emitRows(ctx, sc.Key, sw.Rows()); err != nil {
					return nil, err
				}
				if err := emitSpecRow(ctx, sc.Key, sw); err != nil {
					return nil, err
				}
				cm, err := FitModels(sw)
				if err != nil {
					return nil, err
				}
				return GridSweep{Scenario: sc, Result: sw, Model: cm}, nil
			}}
	}
	res, err := campaign.Run(ctx, cc, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]GridSweep, len(res))
	for i, r := range res {
		out[i] = r.Value.(GridSweep)
	}
	return out, nil
}
