package tau

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// This file gives Profile a serialized form so finished per-rank profiles
// can travel through the campaign checkpoint store: a run's measurement
// outcome (timer tallies, event moments, metric names, group switches) is
// captured exactly, while the live parts — the time source, the metric
// source callbacks, the running-timer stack — are not, since a
// checkpointed profile exists only to be read. Encoding a profile with
// timers still running is an error; a decoded profile supports every
// read-side method (Timers, Summary, Lookup, Events, ...) but must not be
// Started again.

// profileWire is Profile's serialized form.
type profileWire struct {
	MetricNames []string
	Timers      []timerWire
	Events      []eventWire
	Disabled    []string
}

type timerWire struct {
	Name, Group string
	Calls       uint64
	Incl, Excl  []float64
}

type eventWire struct {
	Name                 string
	Count                uint64
	Sum, SumSq, Min, Max float64
}

// GobEncode implements gob.GobEncoder: the profile's final measurements in
// registration order.
func (p *Profile) GobEncode() ([]byte, error) {
	if len(p.stack) != 0 {
		return nil, fmt.Errorf("tau: cannot encode profile with %d running timers", len(p.stack))
	}
	wire := profileWire{MetricNames: p.MetricNames()}
	for _, t := range p.order {
		wire.Timers = append(wire.Timers, timerWire{
			Name: t.name, Group: t.group, Calls: t.calls,
			Incl: t.incl, Excl: t.excl,
		})
	}
	for _, e := range p.eventOrder {
		wire.Events = append(wire.Events, eventWire{
			Name: e.name, Count: e.count,
			Sum: e.sum, SumSq: e.sumSq, Min: e.min, Max: e.max,
		})
	}
	for g, off := range p.disabled {
		if off {
			wire.Disabled = append(wire.Disabled, g)
		}
	}
	sort.Strings(wire.Disabled)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, rebuilding a read-only profile:
// timer and event identities, orders and tallies round-trip exactly; the
// time and metric sources stay nil.
func (p *Profile) GobDecode(data []byte) error {
	var wire profileWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return err
	}
	*p = Profile{
		metricNames: wire.MetricNames,
		timers:      make(map[string]*Timer, len(wire.Timers)),
		events:      make(map[string]*Event, len(wire.Events)),
		disabled:    make(map[string]bool, len(wire.Disabled)),
	}
	for _, tw := range wire.Timers {
		t := &Timer{name: tw.Name, group: tw.Group, calls: tw.Calls, incl: tw.Incl, excl: tw.Excl}
		p.timers[t.name] = t
		p.order = append(p.order, t)
	}
	for _, ew := range wire.Events {
		e := &Event{name: ew.Name, count: ew.Count, sum: ew.Sum, sumSq: ew.SumSq, min: ew.Min, max: ew.Max}
		p.events[e.name] = e
		p.eventOrder = append(p.eventOrder, e)
	}
	for _, g := range wire.Disabled {
		p.disabled[g] = true
	}
	return nil
}
