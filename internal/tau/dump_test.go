package tau

import (
	"strings"
	"testing"
)

func TestWriteEventSummary(t *testing.T) {
	p, _ := newProfile()
	p.TriggerEvent("Message size sent", 128)
	p.TriggerEvent("Message size sent", 512)
	p.TriggerEvent("AdaptiveFlux switch", 1024)
	var sb strings.Builder
	if err := p.WriteEventSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"USER EVENTS:", "NumSamples", "Std. Dev.",
		"Message size sent", "AdaptiveFlux switch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("event summary missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "320") { // mean of 128 and 512
		t.Errorf("event mean not rendered:\n%s", out)
	}
}

func TestWriteProfileCombinesSections(t *testing.T) {
	p, c := newProfile()
	p.Start("main()", "APP")
	c.tick(1000)
	p.Stop("main()")
	p.TriggerEvent("bytes", 64)
	var sb strings.Builder
	if err := p.WriteProfile(&sb, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "FUNCTION SUMMARY (rank 2):") {
		t.Errorf("missing rank header:\n%s", out)
	}
	if !strings.Contains(out, "USER EVENTS:") {
		t.Errorf("missing events section:\n%s", out)
	}
}

func TestWriteProfileWithoutEvents(t *testing.T) {
	p, c := newProfile()
	p.Start("main()", "APP")
	c.tick(10)
	p.Stop("main()")
	var sb strings.Builder
	if err := p.WriteProfile(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "USER EVENTS:") {
		t.Error("event section printed with no events")
	}
}
