package tau

import "testing"

// TestRestoreEventsRewindsStatsAndRemovesNewEvents verifies that restoring
// an event checkpoint rewinds existing events in place (pointer identity
// preserved) and removes events first triggered after the checkpoint.
func TestRestoreEventsRewindsStatsAndRemovesNewEvents(t *testing.T) {
	clock := 0.0
	p := NewProfile(func() float64 { return clock })
	p.TriggerEvent("bytes sent", 100)
	p.TriggerEvent("bytes sent", 300)
	before := p.Event("bytes sent")
	cp := p.CheckpointEvents()

	p.TriggerEvent("bytes sent", 900)
	p.TriggerEvent("bytes received", 64)
	p.RestoreEvents(cp)

	e := p.Event("bytes sent")
	if e != before {
		t.Fatal("restore must preserve event identity")
	}
	if e.Count() != 2 || e.Mean() != 200 || e.Max() != 300 || e.Min() != 100 {
		t.Errorf("restored stats wrong: count=%d mean=%v min=%v max=%v", e.Count(), e.Mean(), e.Min(), e.Max())
	}
	if p.Event("bytes received") != nil {
		t.Error("event created after checkpoint must be removed")
	}
	if got := len(p.Events()); got != 1 {
		t.Errorf("event order length: got %d, want 1", got)
	}

	// Re-triggering a removed event recreates it from scratch.
	p.TriggerEvent("bytes received", 8)
	if e := p.Event("bytes received"); e == nil || e.Count() != 1 {
		t.Error("re-created event should start fresh")
	}
}

// TestRestoreEventsRejectsForeignCheckpoint verifies prefix checking.
func TestRestoreEventsRejectsForeignCheckpoint(t *testing.T) {
	clock := 0.0
	p := NewProfile(func() float64 { return clock })
	q := NewProfile(func() float64 { return clock })
	p.TriggerEvent("a", 1)
	q.TriggerEvent("b", 1)
	cp := p.CheckpointEvents()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic restoring a foreign checkpoint")
		}
	}()
	q.RestoreEvents(cp)
}
