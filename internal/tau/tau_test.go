package tau

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// fakeClock is a manually advanced virtual clock for tests.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64   { return c.t }
func (c *fakeClock) tick(d float64) { c.t += d }
func newProfile() (*Profile, *fakeClock) {
	c := &fakeClock{}
	return NewProfile(c.now), c
}

func TestBasicStartStop(t *testing.T) {
	p, c := newProfile()
	p.Start("main()", "APP")
	c.tick(100)
	p.Stop("main()")
	tm := p.Lookup("main()")
	if tm == nil {
		t.Fatal("timer not created")
	}
	if tm.Inclusive() != 100 || tm.Exclusive() != 100 {
		t.Errorf("incl/excl = %g/%g, want 100/100", tm.Inclusive(), tm.Exclusive())
	}
	if tm.Calls() != 1 {
		t.Errorf("calls = %d, want 1", tm.Calls())
	}
	if got := tm.MicrosPerCall(); got != 100 {
		t.Errorf("us/call = %g, want 100", got)
	}
}

func TestNestedExclusive(t *testing.T) {
	p, c := newProfile()
	p.Start("outer", "APP")
	c.tick(10)
	p.Start("inner", "APP")
	c.tick(30)
	p.Stop("inner")
	c.tick(5)
	p.Stop("outer")

	outer, inner := p.Lookup("outer"), p.Lookup("inner")
	if outer.Inclusive() != 45 {
		t.Errorf("outer inclusive = %g, want 45", outer.Inclusive())
	}
	if outer.Exclusive() != 15 {
		t.Errorf("outer exclusive = %g, want 15", outer.Exclusive())
	}
	if inner.Inclusive() != 30 || inner.Exclusive() != 30 {
		t.Errorf("inner incl/excl = %g/%g, want 30/30", inner.Inclusive(), inner.Exclusive())
	}
}

func TestRecursiveTimerCountsOutermostInclusive(t *testing.T) {
	p, c := newProfile()
	p.Start("rec", "APP")
	c.tick(10)
	p.Start("rec", "APP") // re-entrant
	c.tick(20)
	p.Stop("rec")
	c.tick(10)
	p.Stop("rec")
	tm := p.Lookup("rec")
	if tm.Inclusive() != 40 {
		t.Errorf("recursive inclusive = %g, want 40 (outermost only)", tm.Inclusive())
	}
	if tm.Exclusive() != 40 {
		t.Errorf("recursive exclusive = %g, want 40 (all self time)", tm.Exclusive())
	}
	if tm.Calls() != 2 {
		t.Errorf("calls = %d, want 2", tm.Calls())
	}
}

func TestMultipleInvocationsAccumulate(t *testing.T) {
	p, c := newProfile()
	for i := 0; i < 4; i++ {
		p.Start("f", "APP")
		c.tick(25)
		p.Stop("f")
	}
	tm := p.Lookup("f")
	if tm.Inclusive() != 100 || tm.Calls() != 4 {
		t.Errorf("incl=%g calls=%d, want 100/4", tm.Inclusive(), tm.Calls())
	}
}

func TestStopMismatchPanics(t *testing.T) {
	p, c := newProfile()
	p.Start("a", "APP")
	c.tick(1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Stop did not panic")
		}
	}()
	p.Stop("b")
}

func TestStopEmptyStackPanics(t *testing.T) {
	p, _ := newProfile()
	defer func() {
		if recover() == nil {
			t.Fatal("Stop with empty stack did not panic")
		}
	}()
	p.Stop("never-started")
}

func TestTimerGroupConflictPanics(t *testing.T) {
	p, _ := newProfile()
	p.Timer("t", "A")
	defer func() {
		if recover() == nil {
			t.Fatal("re-creating timer in different group did not panic")
		}
	}()
	p.Timer("t", "B")
}

func TestGroupDisable(t *testing.T) {
	p, c := newProfile()
	p.SetGroupEnabled("MPI", false)
	if p.GroupEnabled("MPI") {
		t.Fatal("group should be disabled")
	}
	p.Start("MPI_Send()", "MPI")
	c.tick(50)
	p.Stop("MPI_Send()")
	tm := p.Lookup("MPI_Send()")
	if tm == nil {
		t.Fatal("disabled Start should still register the timer identity")
	}
	if tm.Calls() != 0 || tm.Inclusive() != 0 {
		t.Errorf("disabled timer accumulated calls=%d incl=%g", tm.Calls(), tm.Inclusive())
	}
	p.SetGroupEnabled("MPI", true)
	p.Start("MPI_Send()", "MPI")
	c.tick(7)
	p.Stop("MPI_Send()")
	if tm.Inclusive() != 7 || tm.Calls() != 1 {
		t.Errorf("re-enabled timer incl=%g calls=%d, want 7/1", tm.Inclusive(), tm.Calls())
	}
}

func TestDisableRunningGroupPanics(t *testing.T) {
	p, _ := newProfile()
	p.Start("MPI_Recv()", "MPI")
	defer func() {
		if recover() == nil {
			t.Fatal("disabling group with running timer did not panic")
		}
	}()
	p.SetGroupEnabled("MPI", false)
}

func TestGroupInclusiveSumsMPITime(t *testing.T) {
	p, c := newProfile()
	p.Start("app", "APP")
	c.tick(10)
	p.Start("MPI_Isend()", "MPI")
	c.tick(5)
	p.Stop("MPI_Isend()")
	p.Start("MPI_Waitsome()", "MPI")
	c.tick(20)
	p.Stop("MPI_Waitsome()")
	p.Stop("app")
	if got := p.GroupInclusive("MPI"); got != 25 {
		t.Errorf("GroupInclusive(MPI) = %g, want 25", got)
	}
	if got := p.GroupCalls("MPI"); got != 2 {
		t.Errorf("GroupCalls(MPI) = %d, want 2", got)
	}
	if got := p.GroupInclusive("APP"); got != 35 {
		t.Errorf("GroupInclusive(APP) = %g, want 35", got)
	}
}

func TestEvents(t *testing.T) {
	p, _ := newProfile()
	for _, v := range []float64{4, 1, 7, 4} {
		p.TriggerEvent("message size", v)
	}
	e := p.Event("message size")
	if e == nil {
		t.Fatal("event not recorded")
	}
	if e.Count() != 4 || e.Min() != 1 || e.Max() != 7 || e.Mean() != 4 {
		t.Errorf("event stats count=%d min=%g max=%g mean=%g", e.Count(), e.Min(), e.Max(), e.Mean())
	}
	want := math.Sqrt((16+1+49+16)/4.0 - 16)
	if math.Abs(e.StdDev()-want) > 1e-12 {
		t.Errorf("stddev = %g, want %g", e.StdDev(), want)
	}
	if len(p.Events()) != 1 {
		t.Errorf("Events() len = %d, want 1", len(p.Events()))
	}
}

func TestEmptyEventAccessors(t *testing.T) {
	e := &Event{name: "x"}
	if e.Min() != 0 || e.Max() != 0 || e.Mean() != 0 || e.StdDev() != 0 {
		t.Error("empty event accessors should all be 0")
	}
}

func TestMetricsVector(t *testing.T) {
	c := &fakeClock{}
	var flops float64
	p := NewProfile(c.now)
	p.RegisterMetric("PAPI_FP_OPS", func() float64 { return flops })
	p.Start("k", "APP")
	c.tick(10)
	flops += 500
	p.Start("sub", "APP")
	c.tick(5)
	flops += 100
	p.Stop("sub")
	p.Stop("k")
	k := p.Lookup("k")
	if got := k.InclusiveMetric(1); got != 600 {
		t.Errorf("k inclusive FP_OPS = %g, want 600", got)
	}
	if got := k.ExclusiveMetric(1); got != 500 {
		t.Errorf("k exclusive FP_OPS = %g, want 500", got)
	}
	if names := p.MetricNames(); len(names) != 2 || names[0] != WallClock || names[1] != "PAPI_FP_OPS" {
		t.Errorf("MetricNames = %v", names)
	}
	if v, ok := p.CounterValue("PAPI_FP_OPS"); !ok || v != 600 {
		t.Errorf("CounterValue = %g,%v want 600,true", v, ok)
	}
	if _, ok := p.CounterValue("NO_SUCH"); ok {
		t.Error("unknown counter should report !ok")
	}
	if snap := p.Snapshot(); len(snap) != 2 {
		t.Errorf("Snapshot len = %d, want 2", len(snap))
	}
}

func TestRegisterMetricAfterTimersPanics(t *testing.T) {
	p, _ := newProfile()
	p.Timer("t", "APP")
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterMetric after timer creation did not panic")
		}
	}()
	p.RegisterMetric("late", func() float64 { return 0 })
}

func TestRunningAndDepth(t *testing.T) {
	p, _ := newProfile()
	if p.Running() != "" || p.Depth() != 0 {
		t.Error("fresh profile should have empty stack")
	}
	p.Start("a", "APP")
	p.Start("b", "APP")
	if p.Running() != "b" || p.Depth() != 2 {
		t.Errorf("Running=%q Depth=%d, want b/2", p.Running(), p.Depth())
	}
	p.Stop("b")
	p.Stop("a")
}

func TestSummaryOrderingAndPercent(t *testing.T) {
	p, c := newProfile()
	p.Start("main", "APP")
	c.tick(10)
	p.Start("hot", "APP")
	c.tick(60)
	p.Stop("hot")
	p.Start("cold", "APP")
	c.tick(30)
	p.Stop("cold")
	p.Stop("main")
	rows := p.Summary()
	if len(rows) != 3 {
		t.Fatalf("summary rows = %d, want 3", len(rows))
	}
	if rows[0].Name != "main" || rows[1].Name != "hot" || rows[2].Name != "cold" {
		t.Errorf("row order = %s,%s,%s", rows[0].Name, rows[1].Name, rows[2].Name)
	}
	if rows[0].PercentTime != 100 {
		t.Errorf("top row %%time = %g, want 100", rows[0].PercentTime)
	}
	if want := 60.0; rows[1].PercentTime != want {
		t.Errorf("hot %%time = %g, want %g", rows[1].PercentTime, want)
	}
	if rows[0].ExclusiveUS != 10 {
		t.Errorf("main exclusive = %g, want 10", rows[0].ExclusiveUS)
	}
}

func TestMeanSummaryAveragesAcrossRanks(t *testing.T) {
	mk := func(d float64) *Profile {
		p, c := newProfile()
		p.Start("work", "APP")
		c.tick(d)
		p.Stop("work")
		return p
	}
	rows := MeanSummary([]*Profile{mk(100), mk(200), mk(300)})
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0].InclusiveUS != 200 {
		t.Errorf("mean inclusive = %g, want 200", rows[0].InclusiveUS)
	}
	if rows[0].Calls != 1 {
		t.Errorf("mean calls = %g, want 1", rows[0].Calls)
	}
}

func TestMeanSummaryDisjointTimers(t *testing.T) {
	p1, c1 := newProfile()
	p1.Start("only-rank0", "APP")
	c1.tick(90)
	p1.Stop("only-rank0")
	p2, _ := newProfile()
	rows := MeanSummary([]*Profile{p1, p2})
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0].InclusiveUS != 45 {
		t.Errorf("mean inclusive = %g, want 45 (90 over 2 ranks)", rows[0].InclusiveUS)
	}
	if rows[0].Calls != 0.5 {
		t.Errorf("mean calls = %g, want 0.5", rows[0].Calls)
	}
}

func TestMeanSummaryEmpty(t *testing.T) {
	if rows := MeanSummary(nil); rows != nil {
		t.Errorf("MeanSummary(nil) = %v, want nil", rows)
	}
}

func TestWriteFunctionSummaryFormat(t *testing.T) {
	p, c := newProfile()
	p.Start("int main(int, char **)", "APP")
	c.tick(2 * 60 * 1e6) // 2 minutes
	p.Start("MPI_Waitsome()", "MPI")
	c.tick(30e6)
	p.Stop("MPI_Waitsome()")
	p.Stop("int main(int, char **)")
	var sb strings.Builder
	if err := WriteFunctionSummary(&sb, "mean", p.Summary()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"FUNCTION SUMMARY (mean):",
		"%Time", "usec/call",
		"int main(int, char **)",
		"MPI_Waitsome()",
		"2:30.000", // 150 s inclusive formatted m:ss.mmm
		"100.0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q\n%s", want, out)
		}
	}
}

func TestCommaGroup(t *testing.T) {
	cases := map[int64]string{
		0: "0", 5: "5", 999: "999", 1000: "1,000",
		55244: "55,244", 1234567: "1,234,567", -5000: "-5,000",
	}
	for n, want := range cases {
		if got := commaGroup(n); got != want {
			t.Errorf("commaGroup(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFormatInclusive(t *testing.T) {
	if got := formatInclusive(55_244_000); got != "55,244" {
		t.Errorf("formatInclusive(55.244 s) = %q, want 55,244", got)
	}
	if got := formatInclusive(112_032_939); got != "1:52.033" {
		t.Errorf("formatInclusive(112.032939 s) = %q, want 1:52.033", got)
	}
}

// Property: for arbitrary well-nested timer sequences, inclusive time of the
// root equals total elapsed time and the sum of exclusive times over all
// timers equals total elapsed time.
func TestPropertyExclusivePartition(t *testing.T) {
	f := func(ticks []uint8) bool {
		p, c := newProfile()
		names := []string{"a", "b", "d"}
		p.Start("root", "APP")
		depth := 0
		open := []string{}
		for i, tk := range ticks {
			c.tick(float64(tk%50) + 1)
			switch tk % 3 {
			case 0:
				if depth < 3 {
					n := names[i%len(names)]
					// avoid accidental recursion complexity: unique per depth
					n = n + string(rune('0'+depth))
					p.Start(n, "APP")
					open = append(open, n)
					depth++
				}
			case 1:
				if depth > 0 {
					p.Stop(open[len(open)-1])
					open = open[:len(open)-1]
					depth--
				}
			}
		}
		for len(open) > 0 {
			c.tick(1)
			p.Stop(open[len(open)-1])
			open = open[:len(open)-1]
		}
		total := c.t
		p.Stop("root")
		var exclSum float64
		for _, tm := range p.Timers() {
			exclSum += tm.Exclusive()
		}
		root := p.Lookup("root")
		return math.Abs(root.Inclusive()-total) < 1e-9 && math.Abs(exclSum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: event mean always lies within [min, max].
func TestPropertyEventMeanBounded(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		p, _ := newProfile()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true // avoid float64 overflow in sum of squares
			}
			p.TriggerEvent("e", v)
		}
		e := p.Event("e")
		return e.Mean() >= e.Min()-1e-9*math.Abs(e.Min()) &&
			e.Mean() <= e.Max()+1e-9*math.Abs(e.Max())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
