// Package tau reimplements the slice of the TAU (Tuning and Analysis
// Utilities) measurement library that the paper's TAU component exposes
// through its MeasurementPort (paper §4.1):
//
//   - a timing interface — create, name, start, stop and group timers, with
//     aggregate inclusive and exclusive time per timer;
//   - an event interface — named atomic events recording min, max, mean,
//     standard deviation and count;
//   - a control interface — enable or disable all timers of a group at
//     runtime (e.g. the "MPI" group);
//   - a query interface — current values of every metric being measured;
//   - a summary profile dump at program termination (the paper's Fig. 3
//     FUNCTION SUMMARY format).
//
// Instead of wall-clock and PAPI/PCL hardware counters, a Profile reads the
// simulated platform's virtual clock and PAPI-style counter sources; timers
// therefore report deterministic virtual microseconds.
package tau

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// TimeSource yields the current (virtual) time in microseconds.
type TimeSource func() float64

// MetricSource yields the current cumulative value of a hardware metric,
// e.g. PAPI_L2_DCM or PAPI_FP_OPS.
type MetricSource func() float64

// WallClock is the name of metric 0, always present.
const WallClock = "WALL_CLOCK"

// Timer accumulates inclusive and exclusive values for a named code region.
// Values are vectors over the profile's metrics; index 0 is wall-clock
// microseconds.
type Timer struct {
	name  string
	group string
	calls uint64
	depth int
	incl  []float64
	excl  []float64
}

// Name returns the timer's name.
func (t *Timer) Name() string { return t.name }

// Group returns the timer's group identifier.
func (t *Timer) Group() string { return t.group }

// Calls returns the number of times the timer was started.
func (t *Timer) Calls() uint64 { return t.calls }

// Inclusive returns accumulated inclusive time (metric 0) in microseconds,
// counting only completed outermost start/stop pairs.
func (t *Timer) Inclusive() float64 { return t.incl[0] }

// Exclusive returns accumulated exclusive time (metric 0) in microseconds.
func (t *Timer) Exclusive() float64 { return t.excl[0] }

// InclusiveMetric returns the accumulated inclusive value of metric i.
func (t *Timer) InclusiveMetric(i int) float64 { return t.incl[i] }

// ExclusiveMetric returns the accumulated exclusive value of metric i.
func (t *Timer) ExclusiveMetric(i int) float64 { return t.excl[i] }

// MicrosPerCall returns mean inclusive microseconds per call.
func (t *Timer) MicrosPerCall() float64 {
	if t.calls == 0 {
		return 0
	}
	return t.incl[0] / float64(t.calls)
}

// Event is a named atomic event tracking count, min, max, mean and standard
// deviation of the triggered values (paper §4.1 event interface).
type Event struct {
	name  string
	count uint64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Name returns the event name.
func (e *Event) Name() string { return e.name }

// Count returns how many times the event was triggered.
func (e *Event) Count() uint64 { return e.count }

// Min returns the minimum triggered value (0 if never triggered).
func (e *Event) Min() float64 {
	if e.count == 0 {
		return 0
	}
	return e.min
}

// Max returns the maximum triggered value (0 if never triggered).
func (e *Event) Max() float64 {
	if e.count == 0 {
		return 0
	}
	return e.max
}

// Mean returns the mean triggered value (0 if never triggered).
func (e *Event) Mean() float64 {
	if e.count == 0 {
		return 0
	}
	return e.sum / float64(e.count)
}

// StdDev returns the population standard deviation of triggered values.
func (e *Event) StdDev() float64 {
	if e.count == 0 {
		return 0
	}
	n := float64(e.count)
	v := e.sumSq/n - (e.sum/n)*(e.sum/n)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

type frame struct {
	t     *Timer
	start []float64 // metric values at start
	child []float64 // inclusive metric values of completed children
}

// Profile is the per-rank measurement context: a set of timers, events and
// metric sources plus the running-timer stack. A Profile is confined to one
// simulated rank and is not safe for concurrent use.
type Profile struct {
	now           TimeSource
	metricNames   []string
	metricSources []MetricSource
	timers        map[string]*Timer
	order         []*Timer
	events        map[string]*Event
	eventOrder    []*Event
	stack         []frame
	disabled      map[string]bool
	scratch       []float64
}

// NewProfile creates a measurement context reading time from now.
// Metric 0 is always WALL_CLOCK.
func NewProfile(now TimeSource) *Profile {
	p := &Profile{
		now:      now,
		timers:   make(map[string]*Timer),
		events:   make(map[string]*Event),
		disabled: make(map[string]bool),
	}
	p.metricNames = []string{WallClock}
	p.metricSources = []MetricSource{func() float64 { return now() }}
	return p
}

// RegisterMetric adds a hardware metric source (e.g. PAPI_L2_DCM). It must
// be called before any timer is created or started; it panics otherwise,
// since timers carry fixed-size metric vectors.
func (p *Profile) RegisterMetric(name string, src MetricSource) {
	if len(p.stack) != 0 || len(p.timers) != 0 {
		panic("tau: RegisterMetric after timers exist")
	}
	p.metricNames = append(p.metricNames, name)
	p.metricSources = append(p.metricSources, src)
}

// MetricNames returns the names of all registered metrics, WALL_CLOCK first.
func (p *Profile) MetricNames() []string {
	out := make([]string, len(p.metricNames))
	copy(out, p.metricNames)
	return out
}

// readMetrics samples every metric source into a fresh vector.
func (p *Profile) readMetrics() []float64 {
	v := make([]float64, len(p.metricSources))
	for i, src := range p.metricSources {
		v[i] = src()
	}
	return v
}

// Timer returns the timer with the given name, creating it in the given
// group on first use. Reusing a name with a different group panics: timer
// names are global identities in TAU.
func (p *Profile) Timer(name, group string) *Timer {
	if t, ok := p.timers[name]; ok {
		if t.group != group {
			panic(fmt.Sprintf("tau: timer %q re-created in group %q (was %q)", name, group, t.group))
		}
		return t
	}
	t := &Timer{
		name:  name,
		group: group,
		incl:  make([]float64, len(p.metricSources)),
		excl:  make([]float64, len(p.metricSources)),
	}
	p.timers[name] = t
	p.order = append(p.order, t)
	return t
}

// Start begins timing the named region. Starting a timer of a disabled
// group is a no-op. Timers may nest and may re-enter (recursion): only the
// outermost pair contributes to inclusive time.
func (p *Profile) Start(name, group string) {
	t := p.Timer(name, group)
	if p.disabled[group] {
		return
	}
	t.calls++
	t.depth++
	p.stack = append(p.stack, frame{
		t:     t,
		start: p.readMetrics(),
		child: make([]float64, len(p.metricSources)),
	})
}

// Stop ends the most recently started timer. The name must match the top of
// the timer stack; a mismatch is a programming error and panics (mirroring
// TAU's fatal diagnostics). Stopping a timer of a disabled group is a no-op.
func (p *Profile) Stop(name string) {
	if t, ok := p.timers[name]; ok && p.disabled[t.group] {
		return
	}
	if len(p.stack) == 0 {
		panic(fmt.Sprintf("tau: Stop(%q) with empty timer stack", name))
	}
	top := p.stack[len(p.stack)-1]
	if top.t.name != name {
		panic(fmt.Sprintf("tau: Stop(%q) does not match running timer %q", name, top.t.name))
	}
	p.stack = p.stack[:len(p.stack)-1]
	cur := p.readMetrics()
	t := top.t
	t.depth--
	for i := range cur {
		selfIncl := cur[i] - top.start[i]
		t.excl[i] += selfIncl - top.child[i]
		if t.depth == 0 {
			t.incl[i] += selfIncl
		}
		if len(p.stack) > 0 {
			p.stack[len(p.stack)-1].child[i] += selfIncl
		}
	}
}

// Running returns the name of the innermost running timer, or "".
func (p *Profile) Running() string {
	if len(p.stack) == 0 {
		return ""
	}
	return p.stack[len(p.stack)-1].t.name
}

// Depth returns the current timer nesting depth.
func (p *Profile) Depth() int { return len(p.stack) }

// SetGroupEnabled enables or disables every timer of a group (the paper's
// control interface, e.g. disabling all "MPI" timers at runtime). Disabling
// a group with one of its timers running panics: TAU forbids control
// changes that would unbalance the stack.
func (p *Profile) SetGroupEnabled(group string, enabled bool) {
	if !enabled {
		for _, f := range p.stack {
			if f.t.group == group {
				panic(fmt.Sprintf("tau: disabling group %q while timer %q is running", group, f.t.name))
			}
		}
		p.disabled[group] = true
		return
	}
	delete(p.disabled, group)
}

// GroupEnabled reports whether the group's timers are currently enabled.
func (p *Profile) GroupEnabled(group string) bool { return !p.disabled[group] }

// TriggerEvent records one occurrence of the named atomic event.
func (p *Profile) TriggerEvent(name string, value float64) {
	e, ok := p.events[name]
	if !ok {
		e = &Event{name: name}
		p.events[name] = e
		p.eventOrder = append(p.eventOrder, e)
	}
	e.count++
	e.sum += value
	e.sumSq += value * value
	if e.count == 1 || value < e.min {
		e.min = value
	}
	if e.count == 1 || value > e.max {
		e.max = value
	}
}

// Event returns the named event, or nil if it was never triggered.
func (p *Profile) Event(name string) *Event { return p.events[name] }

// EventsCheckpoint is a snapshot of every atomic event's statistics, taken
// with CheckpointEvents and applied with RestoreEvents. It is opaque.
type EventsCheckpoint struct {
	events []Event // value copies, in creation order
}

// CheckpointEvents captures the statistics of every atomic event for a later
// RestoreEvents. Events are small (a name and five numbers), so the snapshot
// costs one value copy per distinct event name — cheap enough to take around
// speculative regions that may trigger events and need undoing.
func (p *Profile) CheckpointEvents() EventsCheckpoint {
	cp := EventsCheckpoint{events: make([]Event, len(p.eventOrder))}
	for i, e := range p.eventOrder {
		cp.events[i] = *e
	}
	return cp
}

// RestoreEvents rewinds every atomic event to a previously captured
// checkpoint: statistics of existing events are restored in place (pointers
// returned by Event/Events stay valid) and events first triggered after the
// checkpoint are removed. The checkpoint must come from this profile:
// event creation order is append-only, so the checkpointed events must be a
// prefix of the current ones, and a mismatch panics.
func (p *Profile) RestoreEvents(cp EventsCheckpoint) {
	if len(cp.events) > len(p.eventOrder) {
		panic("tau: RestoreEvents with checkpoint from another profile or the future")
	}
	for i := range cp.events {
		e := p.eventOrder[i]
		if e.name != cp.events[i].name {
			panic(fmt.Sprintf("tau: RestoreEvents order mismatch: %q vs checkpointed %q", e.name, cp.events[i].name))
		}
		*e = cp.events[i]
	}
	for _, e := range p.eventOrder[len(cp.events):] {
		delete(p.events, e.name)
	}
	p.eventOrder = p.eventOrder[:len(cp.events)]
}

// Events returns all events in creation order.
func (p *Profile) Events() []*Event {
	out := make([]*Event, len(p.eventOrder))
	copy(out, p.eventOrder)
	return out
}

// Lookup returns the named timer, or nil.
func (p *Profile) Lookup(name string) *Timer { return p.timers[name] }

// Timers returns all timers in creation order.
func (p *Profile) Timers() []*Timer {
	out := make([]*Timer, len(p.order))
	copy(out, p.order)
	return out
}

// CounterValue implements the query interface for one metric: the current
// cumulative value of the named metric source. It returns false if the
// metric is unknown.
func (p *Profile) CounterValue(name string) (float64, bool) {
	for i, n := range p.metricNames {
		if n == name {
			if i >= len(p.metricSources) {
				// A decoded (read-only) profile has names but no live
				// sources to sample.
				return 0, false
			}
			return p.metricSources[i](), true
		}
	}
	return 0, false
}

// Snapshot returns the current value of every metric, in metric order
// (the paper's TAU_GET_FUNCTION_VALUES-style query).
func (p *Profile) Snapshot() []float64 { return p.readMetrics() }

// GroupInclusive returns the summed inclusive time (metric 0, microseconds)
// of all completed invocations of timers in the given group. The paper's
// Mastermind computes "MPI time" as exactly this sum over the MPI group.
func (p *Profile) GroupInclusive(group string) float64 {
	var sum float64
	for _, t := range p.order {
		if t.group == group {
			sum += t.incl[0]
		}
	}
	return sum
}

// GroupCalls returns the total number of calls to timers of a group.
func (p *Profile) GroupCalls(group string) uint64 {
	var sum uint64
	for _, t := range p.order {
		if t.group == group {
			sum += t.calls
		}
	}
	return sum
}

// SummaryRow is one line of a FUNCTION SUMMARY profile.
type SummaryRow struct {
	Name          string
	Group         string
	PercentTime   float64 // inclusive share of the maximum inclusive time
	ExclusiveUS   float64
	InclusiveUS   float64
	Calls         float64 // fractional when averaged over ranks
	MicrosPerCall float64
}

// Summary computes the profile's FUNCTION SUMMARY rows, sorted by
// decreasing inclusive time (the Fig. 3 ordering).
func (p *Profile) Summary() []SummaryRow {
	return summarize(p.order, 1)
}

// MeanSummary averages per-rank profiles into the FUNCTION SUMMARY (mean)
// table of Fig. 3: per-timer values are summed across ranks and divided by
// the number of profiles, matching TAU's pprof mean output.
func MeanSummary(profiles []*Profile) []SummaryRow {
	if len(profiles) == 0 {
		return nil
	}
	merged := map[string]*Timer{}
	var order []*Timer
	// Metric count comes from the names, not the sources: a decoded
	// (checkpointed) profile keeps its names and tallies but has no live
	// source callbacks.
	nm := len(profiles[0].metricNames)
	for _, p := range profiles {
		for _, t := range p.order {
			m, ok := merged[t.name]
			if !ok {
				m = &Timer{name: t.name, group: t.group,
					incl: make([]float64, nm), excl: make([]float64, nm)}
				merged[t.name] = m
				order = append(order, m)
			}
			m.calls += t.calls
			for i := 0; i < nm && i < len(t.incl); i++ {
				m.incl[i] += t.incl[i]
				m.excl[i] += t.excl[i]
			}
		}
	}
	return summarize(order, float64(len(profiles)))
}

func summarize(timers []*Timer, ranks float64) []SummaryRow {
	rows := make([]SummaryRow, 0, len(timers))
	var maxIncl float64
	for _, t := range timers {
		if t.incl[0] > maxIncl {
			maxIncl = t.incl[0]
		}
	}
	for _, t := range timers {
		calls := float64(t.calls) / ranks
		incl := t.incl[0] / ranks
		excl := t.excl[0] / ranks
		var perCall float64
		if calls > 0 {
			perCall = incl / calls
		}
		pct := 0.0
		if maxIncl > 0 {
			pct = t.incl[0] / maxIncl * 100
		}
		rows = append(rows, SummaryRow{
			Name: t.name, Group: t.group,
			PercentTime: pct, ExclusiveUS: excl, InclusiveUS: incl,
			Calls: calls, MicrosPerCall: perCall,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].InclusiveUS > rows[j].InclusiveUS })
	return rows
}

// formatInclusive renders an inclusive time the way TAU's pprof does:
// milliseconds below one minute, "m:ss.mmm" above.
func formatInclusive(us float64) string {
	ms := us / 1e3
	if ms < 60_000 {
		return commaGroup(int64(ms + 0.5))
	}
	totalMS := int64(ms + 0.5)
	min := totalMS / 60_000
	rem := totalMS % 60_000
	return fmt.Sprintf("%d:%02d.%03d", min, rem/1000, rem%1000)
}

// commaGroup renders n with thousands separators (55,244).
func commaGroup(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	pre := len(s) % 3
	if pre > 0 {
		b.WriteString(s[:pre])
		if len(s) > pre {
			b.WriteByte(',')
		}
	}
	for i := pre; i < len(s); i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < len(s) {
			b.WriteByte(',')
		}
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// WriteEventSummary writes the atomic-event table TAU appends to its
// profile dumps: per event the count, min, max, mean and standard
// deviation (paper §4.1: "For each event of a given name, the minimum,
// maximum, mean, standard deviation and number of entries are recorded").
func (p *Profile) WriteEventSummary(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "USER EVENTS:"); err != nil {
		return err
	}
	fmt.Fprintln(w, "NumSamples    Min         Max        Mean     Std. Dev.  Event Name")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	for _, e := range p.eventOrder {
		if _, err := fmt.Fprintf(w, "%10d %10.4g %10.4g %10.4g %10.4g  %s\n",
			e.Count(), e.Min(), e.Max(), e.Mean(), e.StdDev(), e.Name()); err != nil {
			return err
		}
	}
	return nil
}

// WriteProfile writes one rank's full profile dump: the function summary
// followed by the user events — what TAU writes to its profile.* files at
// program termination.
func (p *Profile) WriteProfile(w io.Writer, rank int) error {
	if err := WriteFunctionSummary(w, fmt.Sprintf("rank %d", rank), p.Summary()); err != nil {
		return err
	}
	if len(p.eventOrder) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return p.WriteEventSummary(w)
}

// WriteFunctionSummary writes rows in the paper's Fig. 3 layout.
func WriteFunctionSummary(w io.Writer, title string, rows []SummaryRow) error {
	if _, err := fmt.Fprintf(w, "FUNCTION SUMMARY (%s):\n", title); err != nil {
		return err
	}
	io.WriteString(w, "%Time    Exclusive    Inclusive       #Call   Inclusive Name\n")
	io.WriteString(w, "          msec total     msec                  usec/call\n")
	io.WriteString(w, strings.Repeat("-", 78)+"\n")
	for _, r := range rows {
		calls := fmt.Sprintf("%.4g", r.Calls)
		if r.Calls == math.Trunc(r.Calls) {
			calls = fmt.Sprintf("%d", int64(r.Calls))
		}
		_, err := fmt.Fprintf(w, "%5.1f %12s %12s %11s %11d %s\n",
			r.PercentTime,
			commaGroup(int64(r.ExclusiveUS/1e3+0.5)),
			formatInclusive(r.InclusiveUS),
			calls,
			int64(r.MicrosPerCall+0.5),
			r.Name)
		if err != nil {
			return err
		}
	}
	return nil
}
