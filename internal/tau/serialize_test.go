package tau

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// roundTrip gob-encodes and re-decodes a profile.
func roundTrip(t *testing.T, p *Profile) *Profile {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	out := &Profile{}
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestProfileGobRoundTripPreservesSummary(t *testing.T) {
	p, c := newProfile()
	p.Start("main()", "APP")
	c.tick(1000)
	p.Start("MPI_Send()", "MPI")
	c.tick(250)
	p.Stop("MPI_Send()")
	c.tick(10)
	p.Stop("main()")
	p.TriggerEvent("Message size sent", 128)
	p.TriggerEvent("Message size sent", 512)
	p.SetGroupEnabled("POST", false)

	q := roundTrip(t, p)

	var want, got strings.Builder
	if err := p.WriteProfile(&want, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.WriteProfile(&got, 0); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Errorf("profile dump drifted through gob:\n--- want\n%s\n--- got\n%s", want.String(), got.String())
	}
	if q.Lookup("MPI_Send()") == nil || q.Lookup("MPI_Send()").Inclusive() != 250 {
		t.Error("timer tallies lost")
	}
	if e := q.Event("Message size sent"); e == nil || e.Count() != 2 || e.Mean() != 320 {
		t.Error("event moments lost")
	}
	if q.GroupEnabled("POST") {
		t.Error("group switch lost")
	}
	if len(q.MetricNames()) != len(p.MetricNames()) {
		t.Error("metric names lost")
	}
	// MeanSummary must treat decoded and live profiles identically.
	ms1 := MeanSummary([]*Profile{p, p})
	ms2 := MeanSummary([]*Profile{q, q})
	if len(ms1) != len(ms2) {
		t.Fatalf("summary rows %d vs %d", len(ms1), len(ms2))
	}
	for i := range ms1 {
		if ms1[i] != ms2[i] {
			t.Errorf("summary row %d drifted: %+v vs %+v", i, ms1[i], ms2[i])
		}
	}
	// A decoded profile cannot sample live counters, but must say so
	// gracefully.
	if _, ok := q.CounterValue(WallClock); ok {
		t.Error("decoded profile claims live counters")
	}
}

func TestProfileGobEncodeRejectsRunningTimers(t *testing.T) {
	p, _ := newProfile()
	p.Start("main()", "APP")
	if _, err := p.GobEncode(); err == nil {
		t.Error("encoding a running profile succeeded")
	}
}
